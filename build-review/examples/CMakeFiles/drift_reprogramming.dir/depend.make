# Empty dependencies file for drift_reprogramming.
# This may be replaced when dependencies are built.
