file(REMOVE_RECURSE
  "CMakeFiles/drift_reprogramming.dir/drift_reprogramming.cpp.o"
  "CMakeFiles/drift_reprogramming.dir/drift_reprogramming.cpp.o.d"
  "drift_reprogramming"
  "drift_reprogramming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_reprogramming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
