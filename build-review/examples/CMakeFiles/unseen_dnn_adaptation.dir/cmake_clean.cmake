file(REMOVE_RECURSE
  "CMakeFiles/unseen_dnn_adaptation.dir/unseen_dnn_adaptation.cpp.o"
  "CMakeFiles/unseen_dnn_adaptation.dir/unseen_dnn_adaptation.cpp.o.d"
  "unseen_dnn_adaptation"
  "unseen_dnn_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unseen_dnn_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
