# Empty dependencies file for unseen_dnn_adaptation.
# This may be replaced when dependencies are built.
