file(REMOVE_RECURSE
  "CMakeFiles/noise_injection_accuracy.dir/noise_injection_accuracy.cpp.o"
  "CMakeFiles/noise_injection_accuracy.dir/noise_injection_accuracy.cpp.o.d"
  "noise_injection_accuracy"
  "noise_injection_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_injection_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
