# Empty compiler generated dependencies file for noise_injection_accuracy.
# This may be replaced when dependencies are built.
