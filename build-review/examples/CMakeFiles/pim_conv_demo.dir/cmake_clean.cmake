file(REMOVE_RECURSE
  "CMakeFiles/pim_conv_demo.dir/pim_conv_demo.cpp.o"
  "CMakeFiles/pim_conv_demo.dir/pim_conv_demo.cpp.o.d"
  "pim_conv_demo"
  "pim_conv_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_conv_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
