# Empty dependencies file for pim_conv_demo.
# This may be replaced when dependencies are built.
