file(REMOVE_RECURSE
  "libodin_policy.a"
)
