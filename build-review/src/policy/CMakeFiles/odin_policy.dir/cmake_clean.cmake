file(REMOVE_RECURSE
  "CMakeFiles/odin_policy.dir/buffer.cpp.o"
  "CMakeFiles/odin_policy.dir/buffer.cpp.o.d"
  "CMakeFiles/odin_policy.dir/features.cpp.o"
  "CMakeFiles/odin_policy.dir/features.cpp.o.d"
  "CMakeFiles/odin_policy.dir/offline.cpp.o"
  "CMakeFiles/odin_policy.dir/offline.cpp.o.d"
  "CMakeFiles/odin_policy.dir/policy.cpp.o"
  "CMakeFiles/odin_policy.dir/policy.cpp.o.d"
  "CMakeFiles/odin_policy.dir/serialization.cpp.o"
  "CMakeFiles/odin_policy.dir/serialization.cpp.o.d"
  "CMakeFiles/odin_policy.dir/table_policy.cpp.o"
  "CMakeFiles/odin_policy.dir/table_policy.cpp.o.d"
  "libodin_policy.a"
  "libodin_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
