# Empty dependencies file for odin_policy.
# This may be replaced when dependencies are built.
