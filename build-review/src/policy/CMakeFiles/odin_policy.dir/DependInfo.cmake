
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/buffer.cpp" "src/policy/CMakeFiles/odin_policy.dir/buffer.cpp.o" "gcc" "src/policy/CMakeFiles/odin_policy.dir/buffer.cpp.o.d"
  "/root/repo/src/policy/features.cpp" "src/policy/CMakeFiles/odin_policy.dir/features.cpp.o" "gcc" "src/policy/CMakeFiles/odin_policy.dir/features.cpp.o.d"
  "/root/repo/src/policy/offline.cpp" "src/policy/CMakeFiles/odin_policy.dir/offline.cpp.o" "gcc" "src/policy/CMakeFiles/odin_policy.dir/offline.cpp.o.d"
  "/root/repo/src/policy/policy.cpp" "src/policy/CMakeFiles/odin_policy.dir/policy.cpp.o" "gcc" "src/policy/CMakeFiles/odin_policy.dir/policy.cpp.o.d"
  "/root/repo/src/policy/serialization.cpp" "src/policy/CMakeFiles/odin_policy.dir/serialization.cpp.o" "gcc" "src/policy/CMakeFiles/odin_policy.dir/serialization.cpp.o.d"
  "/root/repo/src/policy/table_policy.cpp" "src/policy/CMakeFiles/odin_policy.dir/table_policy.cpp.o" "gcc" "src/policy/CMakeFiles/odin_policy.dir/table_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/odin_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/odin_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ou/CMakeFiles/odin_ou.dir/DependInfo.cmake"
  "/root/repo/build-review/src/reram/CMakeFiles/odin_reram.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dnn/CMakeFiles/odin_dnn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/odin_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
