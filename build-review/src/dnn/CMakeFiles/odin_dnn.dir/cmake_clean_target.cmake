file(REMOVE_RECURSE
  "libodin_dnn.a"
)
