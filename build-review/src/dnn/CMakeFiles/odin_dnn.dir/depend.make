# Empty dependencies file for odin_dnn.
# This may be replaced when dependencies are built.
