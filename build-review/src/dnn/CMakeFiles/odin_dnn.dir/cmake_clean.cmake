file(REMOVE_RECURSE
  "CMakeFiles/odin_dnn.dir/model.cpp.o"
  "CMakeFiles/odin_dnn.dir/model.cpp.o.d"
  "CMakeFiles/odin_dnn.dir/pattern.cpp.o"
  "CMakeFiles/odin_dnn.dir/pattern.cpp.o.d"
  "CMakeFiles/odin_dnn.dir/pruning.cpp.o"
  "CMakeFiles/odin_dnn.dir/pruning.cpp.o.d"
  "CMakeFiles/odin_dnn.dir/zoo.cpp.o"
  "CMakeFiles/odin_dnn.dir/zoo.cpp.o.d"
  "libodin_dnn.a"
  "libodin_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
