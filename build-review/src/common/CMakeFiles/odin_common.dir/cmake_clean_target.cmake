file(REMOVE_RECURSE
  "libodin_common.a"
)
