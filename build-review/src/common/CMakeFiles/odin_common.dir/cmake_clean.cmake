file(REMOVE_RECURSE
  "CMakeFiles/odin_common.dir/crc32.cpp.o"
  "CMakeFiles/odin_common.dir/crc32.cpp.o.d"
  "CMakeFiles/odin_common.dir/parallel.cpp.o"
  "CMakeFiles/odin_common.dir/parallel.cpp.o.d"
  "CMakeFiles/odin_common.dir/table.cpp.o"
  "CMakeFiles/odin_common.dir/table.cpp.o.d"
  "libodin_common.a"
  "libodin_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
