# Empty dependencies file for odin_common.
# This may be replaced when dependencies are built.
