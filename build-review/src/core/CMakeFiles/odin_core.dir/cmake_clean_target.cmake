file(REMOVE_RECURSE
  "libodin_core.a"
)
