# Empty dependencies file for odin_core.
# This may be replaced when dependencies are built.
