file(REMOVE_RECURSE
  "CMakeFiles/odin_core.dir/accuracy.cpp.o"
  "CMakeFiles/odin_core.dir/accuracy.cpp.o.d"
  "CMakeFiles/odin_core.dir/baselines.cpp.o"
  "CMakeFiles/odin_core.dir/baselines.cpp.o.d"
  "CMakeFiles/odin_core.dir/checkpoint.cpp.o"
  "CMakeFiles/odin_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/odin_core.dir/experiment.cpp.o"
  "CMakeFiles/odin_core.dir/experiment.cpp.o.d"
  "CMakeFiles/odin_core.dir/hardware_inference.cpp.o"
  "CMakeFiles/odin_core.dir/hardware_inference.cpp.o.d"
  "CMakeFiles/odin_core.dir/odin.cpp.o"
  "CMakeFiles/odin_core.dir/odin.cpp.o.d"
  "CMakeFiles/odin_core.dir/serving.cpp.o"
  "CMakeFiles/odin_core.dir/serving.cpp.o.d"
  "CMakeFiles/odin_core.dir/trace.cpp.o"
  "CMakeFiles/odin_core.dir/trace.cpp.o.d"
  "libodin_core.a"
  "libodin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
