file(REMOVE_RECURSE
  "CMakeFiles/odin_nn.dir/conv.cpp.o"
  "CMakeFiles/odin_nn.dir/conv.cpp.o.d"
  "CMakeFiles/odin_nn.dir/conv_layer.cpp.o"
  "CMakeFiles/odin_nn.dir/conv_layer.cpp.o.d"
  "CMakeFiles/odin_nn.dir/layers.cpp.o"
  "CMakeFiles/odin_nn.dir/layers.cpp.o.d"
  "CMakeFiles/odin_nn.dir/mlp.cpp.o"
  "CMakeFiles/odin_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/odin_nn.dir/sequential.cpp.o"
  "CMakeFiles/odin_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/odin_nn.dir/tensor.cpp.o"
  "CMakeFiles/odin_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/odin_nn.dir/train.cpp.o"
  "CMakeFiles/odin_nn.dir/train.cpp.o.d"
  "libodin_nn.a"
  "libodin_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
