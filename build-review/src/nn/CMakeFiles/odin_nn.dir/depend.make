# Empty dependencies file for odin_nn.
# This may be replaced when dependencies are built.
