file(REMOVE_RECURSE
  "libodin_nn.a"
)
