
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/odin_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/odin_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/conv_layer.cpp" "src/nn/CMakeFiles/odin_nn.dir/conv_layer.cpp.o" "gcc" "src/nn/CMakeFiles/odin_nn.dir/conv_layer.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/odin_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/odin_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/nn/CMakeFiles/odin_nn.dir/mlp.cpp.o" "gcc" "src/nn/CMakeFiles/odin_nn.dir/mlp.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/odin_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/odin_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/odin_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/odin_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/train.cpp" "src/nn/CMakeFiles/odin_nn.dir/train.cpp.o" "gcc" "src/nn/CMakeFiles/odin_nn.dir/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/odin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
