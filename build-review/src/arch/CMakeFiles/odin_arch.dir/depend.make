# Empty dependencies file for odin_arch.
# This may be replaced when dependencies are built.
