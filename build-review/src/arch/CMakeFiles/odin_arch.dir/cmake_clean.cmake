file(REMOVE_RECURSE
  "CMakeFiles/odin_arch.dir/batching.cpp.o"
  "CMakeFiles/odin_arch.dir/batching.cpp.o.d"
  "CMakeFiles/odin_arch.dir/components.cpp.o"
  "CMakeFiles/odin_arch.dir/components.cpp.o.d"
  "CMakeFiles/odin_arch.dir/noc.cpp.o"
  "CMakeFiles/odin_arch.dir/noc.cpp.o.d"
  "CMakeFiles/odin_arch.dir/overhead.cpp.o"
  "CMakeFiles/odin_arch.dir/overhead.cpp.o.d"
  "CMakeFiles/odin_arch.dir/pipeline.cpp.o"
  "CMakeFiles/odin_arch.dir/pipeline.cpp.o.d"
  "CMakeFiles/odin_arch.dir/system.cpp.o"
  "CMakeFiles/odin_arch.dir/system.cpp.o.d"
  "CMakeFiles/odin_arch.dir/training_core.cpp.o"
  "CMakeFiles/odin_arch.dir/training_core.cpp.o.d"
  "libodin_arch.a"
  "libodin_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
