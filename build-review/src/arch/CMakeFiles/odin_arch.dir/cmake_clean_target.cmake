file(REMOVE_RECURSE
  "libodin_arch.a"
)
