
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/batching.cpp" "src/arch/CMakeFiles/odin_arch.dir/batching.cpp.o" "gcc" "src/arch/CMakeFiles/odin_arch.dir/batching.cpp.o.d"
  "/root/repo/src/arch/components.cpp" "src/arch/CMakeFiles/odin_arch.dir/components.cpp.o" "gcc" "src/arch/CMakeFiles/odin_arch.dir/components.cpp.o.d"
  "/root/repo/src/arch/noc.cpp" "src/arch/CMakeFiles/odin_arch.dir/noc.cpp.o" "gcc" "src/arch/CMakeFiles/odin_arch.dir/noc.cpp.o.d"
  "/root/repo/src/arch/overhead.cpp" "src/arch/CMakeFiles/odin_arch.dir/overhead.cpp.o" "gcc" "src/arch/CMakeFiles/odin_arch.dir/overhead.cpp.o.d"
  "/root/repo/src/arch/pipeline.cpp" "src/arch/CMakeFiles/odin_arch.dir/pipeline.cpp.o" "gcc" "src/arch/CMakeFiles/odin_arch.dir/pipeline.cpp.o.d"
  "/root/repo/src/arch/system.cpp" "src/arch/CMakeFiles/odin_arch.dir/system.cpp.o" "gcc" "src/arch/CMakeFiles/odin_arch.dir/system.cpp.o.d"
  "/root/repo/src/arch/training_core.cpp" "src/arch/CMakeFiles/odin_arch.dir/training_core.cpp.o" "gcc" "src/arch/CMakeFiles/odin_arch.dir/training_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/odin_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dnn/CMakeFiles/odin_dnn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ou/CMakeFiles/odin_ou.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/odin_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/odin_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/reram/CMakeFiles/odin_reram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
