file(REMOVE_RECURSE
  "libodin_reram.a"
)
