
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reram/crossbar.cpp" "src/reram/CMakeFiles/odin_reram.dir/crossbar.cpp.o" "gcc" "src/reram/CMakeFiles/odin_reram.dir/crossbar.cpp.o.d"
  "/root/repo/src/reram/device.cpp" "src/reram/CMakeFiles/odin_reram.dir/device.cpp.o" "gcc" "src/reram/CMakeFiles/odin_reram.dir/device.cpp.o.d"
  "/root/repo/src/reram/endurance.cpp" "src/reram/CMakeFiles/odin_reram.dir/endurance.cpp.o" "gcc" "src/reram/CMakeFiles/odin_reram.dir/endurance.cpp.o.d"
  "/root/repo/src/reram/fault_injection.cpp" "src/reram/CMakeFiles/odin_reram.dir/fault_injection.cpp.o" "gcc" "src/reram/CMakeFiles/odin_reram.dir/fault_injection.cpp.o.d"
  "/root/repo/src/reram/noise.cpp" "src/reram/CMakeFiles/odin_reram.dir/noise.cpp.o" "gcc" "src/reram/CMakeFiles/odin_reram.dir/noise.cpp.o.d"
  "/root/repo/src/reram/programming.cpp" "src/reram/CMakeFiles/odin_reram.dir/programming.cpp.o" "gcc" "src/reram/CMakeFiles/odin_reram.dir/programming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/odin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
