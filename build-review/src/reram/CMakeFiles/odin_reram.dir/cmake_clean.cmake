file(REMOVE_RECURSE
  "CMakeFiles/odin_reram.dir/crossbar.cpp.o"
  "CMakeFiles/odin_reram.dir/crossbar.cpp.o.d"
  "CMakeFiles/odin_reram.dir/device.cpp.o"
  "CMakeFiles/odin_reram.dir/device.cpp.o.d"
  "CMakeFiles/odin_reram.dir/endurance.cpp.o"
  "CMakeFiles/odin_reram.dir/endurance.cpp.o.d"
  "CMakeFiles/odin_reram.dir/fault_injection.cpp.o"
  "CMakeFiles/odin_reram.dir/fault_injection.cpp.o.d"
  "CMakeFiles/odin_reram.dir/noise.cpp.o"
  "CMakeFiles/odin_reram.dir/noise.cpp.o.d"
  "CMakeFiles/odin_reram.dir/programming.cpp.o"
  "CMakeFiles/odin_reram.dir/programming.cpp.o.d"
  "libodin_reram.a"
  "libodin_reram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_reram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
