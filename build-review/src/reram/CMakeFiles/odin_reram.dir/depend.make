# Empty dependencies file for odin_reram.
# This may be replaced when dependencies are built.
