file(REMOVE_RECURSE
  "CMakeFiles/odin_data.dir/synthetic.cpp.o"
  "CMakeFiles/odin_data.dir/synthetic.cpp.o.d"
  "libodin_data.a"
  "libodin_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
