file(REMOVE_RECURSE
  "libodin_data.a"
)
