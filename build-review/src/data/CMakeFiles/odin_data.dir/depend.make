# Empty dependencies file for odin_data.
# This may be replaced when dependencies are built.
