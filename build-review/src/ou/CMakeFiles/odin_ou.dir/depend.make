# Empty dependencies file for odin_ou.
# This may be replaced when dependencies are built.
