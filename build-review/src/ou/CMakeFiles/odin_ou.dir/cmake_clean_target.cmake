file(REMOVE_RECURSE
  "libodin_ou.a"
)
