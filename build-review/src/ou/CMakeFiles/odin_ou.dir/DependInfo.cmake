
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ou/compression.cpp" "src/ou/CMakeFiles/odin_ou.dir/compression.cpp.o" "gcc" "src/ou/CMakeFiles/odin_ou.dir/compression.cpp.o.d"
  "/root/repo/src/ou/cost_model.cpp" "src/ou/CMakeFiles/odin_ou.dir/cost_model.cpp.o" "gcc" "src/ou/CMakeFiles/odin_ou.dir/cost_model.cpp.o.d"
  "/root/repo/src/ou/mapper.cpp" "src/ou/CMakeFiles/odin_ou.dir/mapper.cpp.o" "gcc" "src/ou/CMakeFiles/odin_ou.dir/mapper.cpp.o.d"
  "/root/repo/src/ou/nonideality.cpp" "src/ou/CMakeFiles/odin_ou.dir/nonideality.cpp.o" "gcc" "src/ou/CMakeFiles/odin_ou.dir/nonideality.cpp.o.d"
  "/root/repo/src/ou/reordering.cpp" "src/ou/CMakeFiles/odin_ou.dir/reordering.cpp.o" "gcc" "src/ou/CMakeFiles/odin_ou.dir/reordering.cpp.o.d"
  "/root/repo/src/ou/search.cpp" "src/ou/CMakeFiles/odin_ou.dir/search.cpp.o" "gcc" "src/ou/CMakeFiles/odin_ou.dir/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/odin_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/reram/CMakeFiles/odin_reram.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dnn/CMakeFiles/odin_dnn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/odin_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/odin_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
