file(REMOVE_RECURSE
  "CMakeFiles/odin_ou.dir/compression.cpp.o"
  "CMakeFiles/odin_ou.dir/compression.cpp.o.d"
  "CMakeFiles/odin_ou.dir/cost_model.cpp.o"
  "CMakeFiles/odin_ou.dir/cost_model.cpp.o.d"
  "CMakeFiles/odin_ou.dir/mapper.cpp.o"
  "CMakeFiles/odin_ou.dir/mapper.cpp.o.d"
  "CMakeFiles/odin_ou.dir/nonideality.cpp.o"
  "CMakeFiles/odin_ou.dir/nonideality.cpp.o.d"
  "CMakeFiles/odin_ou.dir/reordering.cpp.o"
  "CMakeFiles/odin_ou.dir/reordering.cpp.o.d"
  "CMakeFiles/odin_ou.dir/search.cpp.o"
  "CMakeFiles/odin_ou.dir/search.cpp.o.d"
  "libodin_ou.a"
  "libodin_ou.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_ou.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
