# Empty compiler generated dependencies file for micro_mvm.
# This may be replaced when dependencies are built.
