file(REMOVE_RECURSE
  "CMakeFiles/micro_mvm.dir/micro_mvm.cpp.o"
  "CMakeFiles/micro_mvm.dir/micro_mvm.cpp.o.d"
  "micro_mvm"
  "micro_mvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
