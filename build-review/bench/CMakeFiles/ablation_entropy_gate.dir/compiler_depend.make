# Empty compiler generated dependencies file for ablation_entropy_gate.
# This may be replaced when dependencies are built.
