file(REMOVE_RECURSE
  "CMakeFiles/ablation_entropy_gate.dir/ablation_entropy_gate.cpp.o"
  "CMakeFiles/ablation_entropy_gate.dir/ablation_entropy_gate.cpp.o.d"
  "ablation_entropy_gate"
  "ablation_entropy_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_entropy_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
