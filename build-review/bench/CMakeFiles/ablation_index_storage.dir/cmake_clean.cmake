file(REMOVE_RECURSE
  "CMakeFiles/ablation_index_storage.dir/ablation_index_storage.cpp.o"
  "CMakeFiles/ablation_index_storage.dir/ablation_index_storage.cpp.o.d"
  "ablation_index_storage"
  "ablation_index_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_index_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
