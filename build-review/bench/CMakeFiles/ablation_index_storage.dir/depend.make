# Empty dependencies file for ablation_index_storage.
# This may be replaced when dependencies are built.
