# Empty dependencies file for fig3_layerwise_ou.
# This may be replaced when dependencies are built.
