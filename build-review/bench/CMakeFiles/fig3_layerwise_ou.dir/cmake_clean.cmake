file(REMOVE_RECURSE
  "CMakeFiles/fig3_layerwise_ou.dir/fig3_layerwise_ou.cpp.o"
  "CMakeFiles/fig3_layerwise_ou.dir/fig3_layerwise_ou.cpp.o.d"
  "fig3_layerwise_ou"
  "fig3_layerwise_ou.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_layerwise_ou.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
