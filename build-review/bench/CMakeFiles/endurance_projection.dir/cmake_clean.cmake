file(REMOVE_RECURSE
  "CMakeFiles/endurance_projection.dir/endurance_projection.cpp.o"
  "CMakeFiles/endurance_projection.dir/endurance_projection.cpp.o.d"
  "endurance_projection"
  "endurance_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endurance_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
