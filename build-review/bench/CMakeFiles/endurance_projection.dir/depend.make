# Empty dependencies file for endurance_projection.
# This may be replaced when dependencies are built.
