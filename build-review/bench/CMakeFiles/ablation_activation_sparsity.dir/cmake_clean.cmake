file(REMOVE_RECURSE
  "CMakeFiles/ablation_activation_sparsity.dir/ablation_activation_sparsity.cpp.o"
  "CMakeFiles/ablation_activation_sparsity.dir/ablation_activation_sparsity.cpp.o.d"
  "ablation_activation_sparsity"
  "ablation_activation_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_activation_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
