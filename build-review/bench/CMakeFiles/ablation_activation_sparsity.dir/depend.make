# Empty dependencies file for ablation_activation_sparsity.
# This may be replaced when dependencies are built.
