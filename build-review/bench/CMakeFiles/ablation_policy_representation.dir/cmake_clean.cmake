file(REMOVE_RECURSE
  "CMakeFiles/ablation_policy_representation.dir/ablation_policy_representation.cpp.o"
  "CMakeFiles/ablation_policy_representation.dir/ablation_policy_representation.cpp.o.d"
  "ablation_policy_representation"
  "ablation_policy_representation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policy_representation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
