# Empty dependencies file for ablation_policy_representation.
# This may be replaced when dependencies are built.
