file(REMOVE_RECURSE
  "CMakeFiles/fig6_energy_latency_vgg11.dir/fig6_energy_latency_vgg11.cpp.o"
  "CMakeFiles/fig6_energy_latency_vgg11.dir/fig6_energy_latency_vgg11.cpp.o.d"
  "fig6_energy_latency_vgg11"
  "fig6_energy_latency_vgg11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_energy_latency_vgg11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
