# Empty dependencies file for fig6_energy_latency_vgg11.
# This may be replaced when dependencies are built.
