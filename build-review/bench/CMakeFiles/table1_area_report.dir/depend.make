# Empty dependencies file for table1_area_report.
# This may be replaced when dependencies are built.
