file(REMOVE_RECURSE
  "CMakeFiles/table1_area_report.dir/table1_area_report.cpp.o"
  "CMakeFiles/table1_area_report.dir/table1_area_report.cpp.o.d"
  "table1_area_report"
  "table1_area_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_area_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
