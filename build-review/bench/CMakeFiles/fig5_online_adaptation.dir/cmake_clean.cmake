file(REMOVE_RECURSE
  "CMakeFiles/fig5_online_adaptation.dir/fig5_online_adaptation.cpp.o"
  "CMakeFiles/fig5_online_adaptation.dir/fig5_online_adaptation.cpp.o.d"
  "fig5_online_adaptation"
  "fig5_online_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_online_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
