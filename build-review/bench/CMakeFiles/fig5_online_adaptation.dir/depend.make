# Empty dependencies file for fig5_online_adaptation.
# This may be replaced when dependencies are built.
