file(REMOVE_RECURSE
  "CMakeFiles/robustness_overhead.dir/robustness_overhead.cpp.o"
  "CMakeFiles/robustness_overhead.dir/robustness_overhead.cpp.o.d"
  "robustness_overhead"
  "robustness_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
