# Empty dependencies file for robustness_overhead.
# This may be replaced when dependencies are built.
