file(REMOVE_RECURSE
  "CMakeFiles/fig7_accuracy_over_runs.dir/fig7_accuracy_over_runs.cpp.o"
  "CMakeFiles/fig7_accuracy_over_runs.dir/fig7_accuracy_over_runs.cpp.o.d"
  "fig7_accuracy_over_runs"
  "fig7_accuracy_over_runs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_accuracy_over_runs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
