# Empty dependencies file for fig7_accuracy_over_runs.
# This may be replaced when dependencies are built.
