# Empty compiler generated dependencies file for fig4_ou_distribution_drift.
# This may be replaced when dependencies are built.
