file(REMOVE_RECURSE
  "CMakeFiles/fig4_ou_distribution_drift.dir/fig4_ou_distribution_drift.cpp.o"
  "CMakeFiles/fig4_ou_distribution_drift.dir/fig4_ou_distribution_drift.cpp.o.d"
  "fig4_ou_distribution_drift"
  "fig4_ou_distribution_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ou_distribution_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
