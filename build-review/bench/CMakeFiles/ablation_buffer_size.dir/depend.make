# Empty dependencies file for ablation_buffer_size.
# This may be replaced when dependencies are built.
