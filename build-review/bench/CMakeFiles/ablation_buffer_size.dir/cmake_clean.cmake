file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffer_size.dir/ablation_buffer_size.cpp.o"
  "CMakeFiles/ablation_buffer_size.dir/ablation_buffer_size.cpp.o.d"
  "ablation_buffer_size"
  "ablation_buffer_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
