file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_parameters.dir/sensitivity_parameters.cpp.o"
  "CMakeFiles/sensitivity_parameters.dir/sensitivity_parameters.cpp.o.d"
  "sensitivity_parameters"
  "sensitivity_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
