# Empty dependencies file for sensitivity_parameters.
# This may be replaced when dependencies are built.
