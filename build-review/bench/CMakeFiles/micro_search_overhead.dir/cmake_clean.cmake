file(REMOVE_RECURSE
  "CMakeFiles/micro_search_overhead.dir/micro_search_overhead.cpp.o"
  "CMakeFiles/micro_search_overhead.dir/micro_search_overhead.cpp.o.d"
  "micro_search_overhead"
  "micro_search_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_search_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
