# Empty dependencies file for micro_search_overhead.
# This may be replaced when dependencies are built.
