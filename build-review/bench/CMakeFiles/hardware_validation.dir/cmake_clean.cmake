file(REMOVE_RECURSE
  "CMakeFiles/hardware_validation.dir/hardware_validation.cpp.o"
  "CMakeFiles/hardware_validation.dir/hardware_validation.cpp.o.d"
  "hardware_validation"
  "hardware_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
