# Empty dependencies file for hardware_validation.
# This may be replaced when dependencies are built.
