# Empty compiler generated dependencies file for ablation_k_sweep.
# This may be replaced when dependencies are built.
