file(REMOVE_RECURSE
  "CMakeFiles/ablation_k_sweep.dir/ablation_k_sweep.cpp.o"
  "CMakeFiles/ablation_k_sweep.dir/ablation_k_sweep.cpp.o.d"
  "ablation_k_sweep"
  "ablation_k_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_k_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
