# Empty compiler generated dependencies file for ablation_row_reorder.
# This may be replaced when dependencies are built.
