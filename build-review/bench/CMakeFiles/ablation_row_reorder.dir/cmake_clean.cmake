file(REMOVE_RECURSE
  "CMakeFiles/ablation_row_reorder.dir/ablation_row_reorder.cpp.o"
  "CMakeFiles/ablation_row_reorder.dir/ablation_row_reorder.cpp.o.d"
  "ablation_row_reorder"
  "ablation_row_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_row_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
