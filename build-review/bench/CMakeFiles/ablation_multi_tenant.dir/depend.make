# Empty dependencies file for ablation_multi_tenant.
# This may be replaced when dependencies are built.
