file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_tenant.dir/ablation_multi_tenant.cpp.o"
  "CMakeFiles/ablation_multi_tenant.dir/ablation_multi_tenant.cpp.o.d"
  "ablation_multi_tenant"
  "ablation_multi_tenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_tenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
