file(REMOVE_RECURSE
  "CMakeFiles/batching_throughput.dir/batching_throughput.cpp.o"
  "CMakeFiles/batching_throughput.dir/batching_throughput.cpp.o.d"
  "batching_throughput"
  "batching_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batching_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
