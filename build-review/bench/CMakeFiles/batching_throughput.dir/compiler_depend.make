# Empty compiler generated dependencies file for batching_throughput.
# This may be replaced when dependencies are built.
