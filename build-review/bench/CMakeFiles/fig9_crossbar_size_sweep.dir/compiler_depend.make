# Empty compiler generated dependencies file for fig9_crossbar_size_sweep.
# This may be replaced when dependencies are built.
