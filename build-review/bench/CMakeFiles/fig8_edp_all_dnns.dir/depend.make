# Empty dependencies file for fig8_edp_all_dnns.
# This may be replaced when dependencies are built.
