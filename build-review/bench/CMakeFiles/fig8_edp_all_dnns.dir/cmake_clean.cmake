file(REMOVE_RECURSE
  "CMakeFiles/fig8_edp_all_dnns.dir/fig8_edp_all_dnns.cpp.o"
  "CMakeFiles/fig8_edp_all_dnns.dir/fig8_edp_all_dnns.cpp.o.d"
  "fig8_edp_all_dnns"
  "fig8_edp_all_dnns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_edp_all_dnns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
