file(REMOVE_RECURSE
  "CMakeFiles/odin_cli.dir/odin_cli.cpp.o"
  "CMakeFiles/odin_cli.dir/odin_cli.cpp.o.d"
  "odin_cli"
  "odin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
