# Empty dependencies file for odin_cli.
# This may be replaced when dependencies are built.
