file(REMOVE_RECURSE
  "CMakeFiles/test_ou_reordering.dir/test_ou_reordering.cpp.o"
  "CMakeFiles/test_ou_reordering.dir/test_ou_reordering.cpp.o.d"
  "test_ou_reordering"
  "test_ou_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ou_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
