# Empty dependencies file for test_ou_reordering.
# This may be replaced when dependencies are built.
