file(REMOVE_RECURSE
  "CMakeFiles/test_ou_grid.dir/test_ou_grid.cpp.o"
  "CMakeFiles/test_ou_grid.dir/test_ou_grid.cpp.o.d"
  "test_ou_grid"
  "test_ou_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ou_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
