file(REMOVE_RECURSE
  "CMakeFiles/test_core_schedule.dir/test_core_schedule.cpp.o"
  "CMakeFiles/test_core_schedule.dir/test_core_schedule.cpp.o.d"
  "test_core_schedule"
  "test_core_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
