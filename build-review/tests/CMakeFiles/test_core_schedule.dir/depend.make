# Empty dependencies file for test_core_schedule.
# This may be replaced when dependencies are built.
