# Empty dependencies file for test_core_hardware.
# This may be replaced when dependencies are built.
