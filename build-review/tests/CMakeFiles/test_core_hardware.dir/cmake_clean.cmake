file(REMOVE_RECURSE
  "CMakeFiles/test_core_hardware.dir/test_core_hardware.cpp.o"
  "CMakeFiles/test_core_hardware.dir/test_core_hardware.cpp.o.d"
  "test_core_hardware"
  "test_core_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
