# Empty dependencies file for test_nn_conv.
# This may be replaced when dependencies are built.
