file(REMOVE_RECURSE
  "CMakeFiles/test_nn_conv.dir/test_nn_conv.cpp.o"
  "CMakeFiles/test_nn_conv.dir/test_nn_conv.cpp.o.d"
  "test_nn_conv"
  "test_nn_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
