file(REMOVE_RECURSE
  "CMakeFiles/test_dnn_pattern.dir/test_dnn_pattern.cpp.o"
  "CMakeFiles/test_dnn_pattern.dir/test_dnn_pattern.cpp.o.d"
  "test_dnn_pattern"
  "test_dnn_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnn_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
