file(REMOVE_RECURSE
  "CMakeFiles/test_ou_compression.dir/test_ou_compression.cpp.o"
  "CMakeFiles/test_ou_compression.dir/test_ou_compression.cpp.o.d"
  "test_ou_compression"
  "test_ou_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ou_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
