file(REMOVE_RECURSE
  "CMakeFiles/test_core_accuracy.dir/test_core_accuracy.cpp.o"
  "CMakeFiles/test_core_accuracy.dir/test_core_accuracy.cpp.o.d"
  "test_core_accuracy"
  "test_core_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
