# Empty dependencies file for test_core_accuracy.
# This may be replaced when dependencies are built.
