# Empty compiler generated dependencies file for test_reram_faults.
# This may be replaced when dependencies are built.
