file(REMOVE_RECURSE
  "CMakeFiles/test_reram_faults.dir/test_reram_faults.cpp.o"
  "CMakeFiles/test_reram_faults.dir/test_reram_faults.cpp.o.d"
  "test_reram_faults"
  "test_reram_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reram_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
