file(REMOVE_RECURSE
  "CMakeFiles/test_core_trace.dir/test_core_trace.cpp.o"
  "CMakeFiles/test_core_trace.dir/test_core_trace.cpp.o.d"
  "test_core_trace"
  "test_core_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
