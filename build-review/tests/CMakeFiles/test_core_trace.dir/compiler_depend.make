# Empty compiler generated dependencies file for test_core_trace.
# This may be replaced when dependencies are built.
