# Empty dependencies file for test_dnn_pruning.
# This may be replaced when dependencies are built.
