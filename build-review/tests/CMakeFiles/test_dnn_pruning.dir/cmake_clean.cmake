file(REMOVE_RECURSE
  "CMakeFiles/test_dnn_pruning.dir/test_dnn_pruning.cpp.o"
  "CMakeFiles/test_dnn_pruning.dir/test_dnn_pruning.cpp.o.d"
  "test_dnn_pruning"
  "test_dnn_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnn_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
