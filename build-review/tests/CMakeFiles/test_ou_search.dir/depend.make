# Empty dependencies file for test_ou_search.
# This may be replaced when dependencies are built.
