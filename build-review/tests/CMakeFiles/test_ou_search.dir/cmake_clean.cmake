file(REMOVE_RECURSE
  "CMakeFiles/test_ou_search.dir/test_ou_search.cpp.o"
  "CMakeFiles/test_ou_search.dir/test_ou_search.cpp.o.d"
  "test_ou_search"
  "test_ou_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ou_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
