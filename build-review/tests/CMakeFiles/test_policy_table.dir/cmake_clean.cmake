file(REMOVE_RECURSE
  "CMakeFiles/test_policy_table.dir/test_policy_table.cpp.o"
  "CMakeFiles/test_policy_table.dir/test_policy_table.cpp.o.d"
  "test_policy_table"
  "test_policy_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
