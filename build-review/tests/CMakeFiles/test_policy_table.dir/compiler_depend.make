# Empty compiler generated dependencies file for test_policy_table.
# This may be replaced when dependencies are built.
