file(REMOVE_RECURSE
  "CMakeFiles/test_core_baselines.dir/test_core_baselines.cpp.o"
  "CMakeFiles/test_core_baselines.dir/test_core_baselines.cpp.o.d"
  "test_core_baselines"
  "test_core_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
