# Empty dependencies file for test_core_baselines.
# This may be replaced when dependencies are built.
