# Empty compiler generated dependencies file for test_ou_nonideality.
# This may be replaced when dependencies are built.
