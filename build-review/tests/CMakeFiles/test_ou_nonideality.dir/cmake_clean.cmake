file(REMOVE_RECURSE
  "CMakeFiles/test_ou_nonideality.dir/test_ou_nonideality.cpp.o"
  "CMakeFiles/test_ou_nonideality.dir/test_ou_nonideality.cpp.o.d"
  "test_ou_nonideality"
  "test_ou_nonideality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ou_nonideality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
