# Empty dependencies file for test_reram_endurance.
# This may be replaced when dependencies are built.
