file(REMOVE_RECURSE
  "CMakeFiles/test_reram_endurance.dir/test_reram_endurance.cpp.o"
  "CMakeFiles/test_reram_endurance.dir/test_reram_endurance.cpp.o.d"
  "test_reram_endurance"
  "test_reram_endurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reram_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
