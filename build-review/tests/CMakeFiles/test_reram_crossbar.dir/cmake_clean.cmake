file(REMOVE_RECURSE
  "CMakeFiles/test_reram_crossbar.dir/test_reram_crossbar.cpp.o"
  "CMakeFiles/test_reram_crossbar.dir/test_reram_crossbar.cpp.o.d"
  "test_reram_crossbar"
  "test_reram_crossbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reram_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
