# Empty compiler generated dependencies file for test_reram_crossbar.
# This may be replaced when dependencies are built.
