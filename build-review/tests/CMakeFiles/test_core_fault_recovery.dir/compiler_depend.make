# Empty compiler generated dependencies file for test_core_fault_recovery.
# This may be replaced when dependencies are built.
