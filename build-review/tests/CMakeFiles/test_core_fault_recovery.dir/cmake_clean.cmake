file(REMOVE_RECURSE
  "CMakeFiles/test_core_fault_recovery.dir/test_core_fault_recovery.cpp.o"
  "CMakeFiles/test_core_fault_recovery.dir/test_core_fault_recovery.cpp.o.d"
  "test_core_fault_recovery"
  "test_core_fault_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_fault_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
