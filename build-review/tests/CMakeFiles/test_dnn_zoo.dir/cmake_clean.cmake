file(REMOVE_RECURSE
  "CMakeFiles/test_dnn_zoo.dir/test_dnn_zoo.cpp.o"
  "CMakeFiles/test_dnn_zoo.dir/test_dnn_zoo.cpp.o.d"
  "test_dnn_zoo"
  "test_dnn_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnn_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
