# Empty dependencies file for test_dnn_zoo.
# This may be replaced when dependencies are built.
