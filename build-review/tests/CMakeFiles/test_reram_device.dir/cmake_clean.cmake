file(REMOVE_RECURSE
  "CMakeFiles/test_reram_device.dir/test_reram_device.cpp.o"
  "CMakeFiles/test_reram_device.dir/test_reram_device.cpp.o.d"
  "test_reram_device"
  "test_reram_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reram_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
