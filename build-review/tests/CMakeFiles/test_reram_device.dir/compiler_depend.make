# Empty compiler generated dependencies file for test_reram_device.
# This may be replaced when dependencies are built.
