# Empty compiler generated dependencies file for test_arch_batching.
# This may be replaced when dependencies are built.
