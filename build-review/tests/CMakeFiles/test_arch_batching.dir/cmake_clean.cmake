file(REMOVE_RECURSE
  "CMakeFiles/test_arch_batching.dir/test_arch_batching.cpp.o"
  "CMakeFiles/test_arch_batching.dir/test_arch_batching.cpp.o.d"
  "test_arch_batching"
  "test_arch_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
