file(REMOVE_RECURSE
  "CMakeFiles/test_ou_activation.dir/test_ou_activation.cpp.o"
  "CMakeFiles/test_ou_activation.dir/test_ou_activation.cpp.o.d"
  "test_ou_activation"
  "test_ou_activation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ou_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
