# Empty compiler generated dependencies file for test_ou_activation.
# This may be replaced when dependencies are built.
