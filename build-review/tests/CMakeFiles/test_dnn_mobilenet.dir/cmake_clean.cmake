file(REMOVE_RECURSE
  "CMakeFiles/test_dnn_mobilenet.dir/test_dnn_mobilenet.cpp.o"
  "CMakeFiles/test_dnn_mobilenet.dir/test_dnn_mobilenet.cpp.o.d"
  "test_dnn_mobilenet"
  "test_dnn_mobilenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnn_mobilenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
