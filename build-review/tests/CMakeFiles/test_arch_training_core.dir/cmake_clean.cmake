file(REMOVE_RECURSE
  "CMakeFiles/test_arch_training_core.dir/test_arch_training_core.cpp.o"
  "CMakeFiles/test_arch_training_core.dir/test_arch_training_core.cpp.o.d"
  "test_arch_training_core"
  "test_arch_training_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_training_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
