# Empty dependencies file for test_arch_training_core.
# This may be replaced when dependencies are built.
