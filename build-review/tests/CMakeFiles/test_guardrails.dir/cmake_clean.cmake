file(REMOVE_RECURSE
  "CMakeFiles/test_guardrails.dir/test_guardrails.cpp.o"
  "CMakeFiles/test_guardrails.dir/test_guardrails.cpp.o.d"
  "test_guardrails"
  "test_guardrails.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guardrails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
