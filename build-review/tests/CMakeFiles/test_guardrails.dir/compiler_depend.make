# Empty compiler generated dependencies file for test_guardrails.
# This may be replaced when dependencies are built.
