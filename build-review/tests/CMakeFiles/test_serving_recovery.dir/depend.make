# Empty dependencies file for test_serving_recovery.
# This may be replaced when dependencies are built.
