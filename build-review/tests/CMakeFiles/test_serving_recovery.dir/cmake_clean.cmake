file(REMOVE_RECURSE
  "CMakeFiles/test_serving_recovery.dir/test_serving_recovery.cpp.o"
  "CMakeFiles/test_serving_recovery.dir/test_serving_recovery.cpp.o.d"
  "test_serving_recovery"
  "test_serving_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serving_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
