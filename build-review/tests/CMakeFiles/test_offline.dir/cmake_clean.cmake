file(REMOVE_RECURSE
  "CMakeFiles/test_offline.dir/test_offline.cpp.o"
  "CMakeFiles/test_offline.dir/test_offline.cpp.o.d"
  "test_offline"
  "test_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
