# Empty dependencies file for test_offline.
# This may be replaced when dependencies are built.
