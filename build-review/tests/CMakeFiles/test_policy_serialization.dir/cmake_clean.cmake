file(REMOVE_RECURSE
  "CMakeFiles/test_policy_serialization.dir/test_policy_serialization.cpp.o"
  "CMakeFiles/test_policy_serialization.dir/test_policy_serialization.cpp.o.d"
  "test_policy_serialization"
  "test_policy_serialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
