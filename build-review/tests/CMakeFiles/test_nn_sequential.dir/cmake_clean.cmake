file(REMOVE_RECURSE
  "CMakeFiles/test_nn_sequential.dir/test_nn_sequential.cpp.o"
  "CMakeFiles/test_nn_sequential.dir/test_nn_sequential.cpp.o.d"
  "test_nn_sequential"
  "test_nn_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
