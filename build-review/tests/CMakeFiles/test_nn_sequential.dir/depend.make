# Empty dependencies file for test_nn_sequential.
# This may be replaced when dependencies are built.
