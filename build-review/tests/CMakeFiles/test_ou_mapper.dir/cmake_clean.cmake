file(REMOVE_RECURSE
  "CMakeFiles/test_ou_mapper.dir/test_ou_mapper.cpp.o"
  "CMakeFiles/test_ou_mapper.dir/test_ou_mapper.cpp.o.d"
  "test_ou_mapper"
  "test_ou_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ou_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
