# Empty compiler generated dependencies file for test_arch_pipeline.
# This may be replaced when dependencies are built.
