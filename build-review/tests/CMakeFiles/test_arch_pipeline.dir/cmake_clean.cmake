file(REMOVE_RECURSE
  "CMakeFiles/test_arch_pipeline.dir/test_arch_pipeline.cpp.o"
  "CMakeFiles/test_arch_pipeline.dir/test_arch_pipeline.cpp.o.d"
  "test_arch_pipeline"
  "test_arch_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
