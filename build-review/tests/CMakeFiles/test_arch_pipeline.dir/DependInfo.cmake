
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arch_pipeline.cpp" "tests/CMakeFiles/test_arch_pipeline.dir/test_arch_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_arch_pipeline.dir/test_arch_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/odin_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/arch/CMakeFiles/odin_arch.dir/DependInfo.cmake"
  "/root/repo/build-review/src/policy/CMakeFiles/odin_policy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ou/CMakeFiles/odin_ou.dir/DependInfo.cmake"
  "/root/repo/build-review/src/reram/CMakeFiles/odin_reram.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dnn/CMakeFiles/odin_dnn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/odin_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/odin_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/odin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
