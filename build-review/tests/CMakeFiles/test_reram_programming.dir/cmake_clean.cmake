file(REMOVE_RECURSE
  "CMakeFiles/test_reram_programming.dir/test_reram_programming.cpp.o"
  "CMakeFiles/test_reram_programming.dir/test_reram_programming.cpp.o.d"
  "test_reram_programming"
  "test_reram_programming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reram_programming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
