# Empty dependencies file for test_reram_programming.
# This may be replaced when dependencies are built.
