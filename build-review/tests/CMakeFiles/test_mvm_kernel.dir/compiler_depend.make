# Empty compiler generated dependencies file for test_mvm_kernel.
# This may be replaced when dependencies are built.
