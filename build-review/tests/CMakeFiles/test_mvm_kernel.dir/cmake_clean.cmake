file(REMOVE_RECURSE
  "CMakeFiles/test_mvm_kernel.dir/test_mvm_kernel.cpp.o"
  "CMakeFiles/test_mvm_kernel.dir/test_mvm_kernel.cpp.o.d"
  "test_mvm_kernel"
  "test_mvm_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mvm_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
