# Empty compiler generated dependencies file for test_core_odin.
# This may be replaced when dependencies are built.
