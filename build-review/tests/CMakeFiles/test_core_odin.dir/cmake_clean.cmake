file(REMOVE_RECURSE
  "CMakeFiles/test_core_odin.dir/test_core_odin.cpp.o"
  "CMakeFiles/test_core_odin.dir/test_core_odin.cpp.o.d"
  "test_core_odin"
  "test_core_odin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_odin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
