# Empty dependencies file for test_core_entropy_gate.
# This may be replaced when dependencies are built.
