file(REMOVE_RECURSE
  "CMakeFiles/test_core_entropy_gate.dir/test_core_entropy_gate.cpp.o"
  "CMakeFiles/test_core_entropy_gate.dir/test_core_entropy_gate.cpp.o.d"
  "test_core_entropy_gate"
  "test_core_entropy_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_entropy_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
