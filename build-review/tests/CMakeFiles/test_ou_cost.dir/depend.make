# Empty dependencies file for test_ou_cost.
# This may be replaced when dependencies are built.
