file(REMOVE_RECURSE
  "CMakeFiles/test_ou_cost.dir/test_ou_cost.cpp.o"
  "CMakeFiles/test_ou_cost.dir/test_ou_cost.cpp.o.d"
  "test_ou_cost"
  "test_ou_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ou_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
