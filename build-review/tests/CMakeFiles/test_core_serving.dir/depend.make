# Empty dependencies file for test_core_serving.
# This may be replaced when dependencies are built.
