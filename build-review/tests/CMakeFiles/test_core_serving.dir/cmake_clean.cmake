file(REMOVE_RECURSE
  "CMakeFiles/test_core_serving.dir/test_core_serving.cpp.o"
  "CMakeFiles/test_core_serving.dir/test_core_serving.cpp.o.d"
  "test_core_serving"
  "test_core_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
