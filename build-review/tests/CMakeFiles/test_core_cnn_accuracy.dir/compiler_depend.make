# Empty compiler generated dependencies file for test_core_cnn_accuracy.
# This may be replaced when dependencies are built.
