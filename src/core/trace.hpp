// Run-trace recording: capture per-run records from a horizon simulation
// and export them as CSV, so downstream users can plot the paper's figures
// from raw data instead of re-parsing bench output.
//
// Naming note: a RunTrace records the *outputs* of a finished walk. It is
// unrelated to core/scenario.hpp's workload traces (ScenarioTrace /
// ArrivalGenerator), which are the deterministic *input* stream of request
// arrivals, churn and chaos events a campaign replays (DESIGN.md §17).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/odin.hpp"

namespace odin::core {

struct TraceRecord {
  int run = 0;
  double time_s = 0.0;
  double elapsed_s = 0.0;
  bool reprogrammed = false;
  bool policy_updated = false;
  int mismatches = 0;
  double energy_j = 0.0;
  double latency_s = 0.0;
  double mean_ou_product = 0.0;
};

class RunTrace {
 public:
  /// Append a record distilled from one Odin run result.
  void record(int run_index, const RunResult& run);

  std::size_t size() const noexcept { return records_.size(); }
  const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }

  /// RFC-4180-style CSV with a header row.
  void write_csv(std::ostream& out) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace odin::core
