#include "core/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string_view>
#include <utility>

#include "arch/noc.hpp"
#include "common/env.hpp"
#include "core/checkpoint.hpp"
#include "core/fleet.hpp"

namespace odin::core {

namespace {

constexpr int kMaxMeshes = 8;
constexpr int kDefaultReplicationEpochs = 4;
constexpr int kMaxReplicationEpochs = 64;
/// Serialized tenant state per replication push (and per restore pull):
/// policy blob + breaker/ledger state at checkpoint granularity.
constexpr double kReplicaBytesPerTenant = 4096.0;

/// Per-mesh shard count: the campaign's shard knob clamped to the mesh,
/// then squeezed so the *global* shard set still fits the u64
/// storm_shard_mask (meshes * K <= 64).
int shards_per_mesh(const CampaignConfig& campaign, int meshes) {
  const int pes_total = std::max(1, campaign.pim.pes);
  int k = std::clamp(campaign.shards, 1, pes_total);
  k = std::min(k, 64 / std::max(1, meshes));
  return std::max(1, k);
}

template <typename T, typename Fn>
void encode_vec(const std::vector<T>& v, common::ByteWriter& out, Fn enc) {
  out.u64(v.size());
  for (const T& x : v) enc(x);
}

bool vec_count(common::ByteReader& in, std::uint64_t& n) {
  n = in.u64();
  return in.ok() && n <= (1u << 24);
}

}  // namespace

int ClusterConfig::resolved_meshes() const {
  long long n = meshes;
  if (n <= 0) {
    n = 1;
    long long v = 0;
    if (common::env_long("ODIN_MESHES", v) && v >= 1) n = v;
  }
  return static_cast<int>(std::clamp<long long>(n, 1, kMaxMeshes));
}

int ClusterConfig::resolved_replication_epochs() const {
  long long n = replication_epochs;
  if (n <= 0) {
    n = kDefaultReplicationEpochs;
    long long v = 0;
    if (common::env_long("ODIN_REPLICATION_EPOCHS", v) && v >= 1) n = v;
  }
  return static_cast<int>(std::clamp<long long>(n, 1, kMaxReplicationEpochs));
}

bool FailoverConfig::resolved_enabled() const {
  if (enabled >= 0) return enabled > 0;
  const char* v = common::env_string("ODIN_FAILOVER");
  if (v == nullptr) return true;
  const std::string_view s(v);
  if (s == "on" || s == "1") return true;
  if (s == "off" || s == "0") return false;
  std::fprintf(stderr,
               "odin: ignoring ODIN_FAILOVER='%s' (not on|off|1|0); "
               "using default (on)\n",
               v);
  return true;
}

// ---------------------------------------------------------------------------
// Cluster state codec (checkpoint payload v7).

void encode_cluster_state(const ClusterState& s, common::ByteWriter& out) {
  out.i32(s.meshes);
  out.i32(s.replication_epochs);
  out.boolean(s.failover);
  out.i32(s.outages_fired);
  out.i32(s.replication_rounds);
  encode_vec(s.mesh_down, out, [&](std::uint8_t v) { out.u8(v); });
  encode_vec(s.mesh_down_until_s, out, [&](double v) { out.f64(v); });
  encode_vec(s.mesh_served, out, [&](std::int64_t v) { out.i64(v); });
  encode_vec(s.replica_runs, out, [&](std::int64_t v) { out.i64(v); });
  encode_vec(s.replica_time_s, out, [&](double v) { out.f64(v); });
  encode_vec(s.replica_mesh, out, [&](std::int32_t v) { out.i32(v); });
  encode_vec(s.tenant_ready_s, out, [&](double v) { out.f64(v); });
  encode_vec(s.tenant_victim, out, [&](std::uint8_t v) { out.u8(v); });
  encode_vec(s.breakers, out, [&](const CircuitBreaker::Snapshot& b) {
    out.i32(b.state);
    out.u64(b.window_bits);
    out.i32(b.window_fill);
    out.i32(b.hold_left);
    out.i32(b.hold_runs);
    out.i32(b.opens);
    out.i32(b.reopens);
    out.i32(b.probes);
    out.i32(b.closes);
  });
  out.i64(s.failovers);
  out.i64(s.restored_stale);
  out.i64(s.lost_runs);
  out.i64(s.outage_dropped);
  out.i64(s.degraded_runs);
  out.i64(s.bootstrap_campaigns);
  out.i64(s.victim_offered);
  out.i64(s.victim_served);
  out.f64(s.rto_max_s);
  out.f64(s.rto_sum_s);
  out.f64(s.rpo_max_s);
  out.f64(s.rpo_sum_s);
  out.f64(s.replication_bytes);
  out.f64(s.replication_s);
  out.f64(s.replication_energy_j);
}

std::optional<ClusterState> decode_cluster_state(common::ByteReader& in) {
  ClusterState s;
  s.meshes = in.i32();
  s.replication_epochs = in.i32();
  s.failover = in.boolean();
  s.outages_fired = in.i32();
  s.replication_rounds = in.i32();
  std::uint64_t n = 0;
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.mesh_down.push_back(in.u8());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i)
    s.mesh_down_until_s.push_back(in.f64());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.mesh_served.push_back(in.i64());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.replica_runs.push_back(in.i64());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.replica_time_s.push_back(in.f64());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.replica_mesh.push_back(in.i32());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.tenant_ready_s.push_back(in.f64());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.tenant_victim.push_back(in.u8());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) {
    CircuitBreaker::Snapshot b;
    b.state = in.i32();
    b.window_bits = in.u64();
    b.window_fill = in.i32();
    b.hold_left = in.i32();
    b.hold_runs = in.i32();
    b.opens = in.i32();
    b.reopens = in.i32();
    b.probes = in.i32();
    b.closes = in.i32();
    s.breakers.push_back(b);
  }
  s.failovers = in.i64();
  s.restored_stale = in.i64();
  s.lost_runs = in.i64();
  s.outage_dropped = in.i64();
  s.degraded_runs = in.i64();
  s.bootstrap_campaigns = in.i64();
  s.victim_offered = in.i64();
  s.victim_served = in.i64();
  s.rto_max_s = in.f64();
  s.rto_sum_s = in.f64();
  s.rpo_max_s = in.f64();
  s.rpo_sum_s = in.f64();
  s.replication_bytes = in.f64();
  s.replication_s = in.f64();
  s.replication_energy_j = in.f64();
  if (!in.ok()) return std::nullopt;
  return s;
}

// ---------------------------------------------------------------------------
// Cluster campaign engine.

namespace {

/// Resolve the outage schedule against the mesh count: draw missing
/// windows and victim meshes from the scenario seed (fork 11 — disjoint
/// from every stream the campaign engine consumes, so a single-mesh
/// cluster still walks the identical arrival/trace streams), ascending
/// start with a mesh-index tie-break.
std::vector<MeshOutage> resolve_outages(const ClusterConfig& config,
                                        std::uint64_t seed, int meshes) {
  common::Rng rng = common::Rng(seed).fork(11);
  std::vector<MeshOutage> outs = config.outages;
  if (outs.empty()) {
    for (int i = 0; i < config.mesh_outages; ++i) {
      MeshOutage o;
      o.start_frac = rng.uniform(0.35, 0.8);
      o.duration_frac = config.outage_duration_frac;
      o.mesh = -1;
      outs.push_back(o);
    }
  }
  for (MeshOutage& o : outs)
    if (o.mesh < 0 || o.mesh >= meshes)
      o.mesh = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(meshes)));
  std::sort(outs.begin(), outs.end(),
            [](const MeshOutage& a, const MeshOutage& b) {
              if (a.start_frac != b.start_frac)
                return a.start_frac < b.start_frac;
              return a.mesh < b.mesh;
            });
  return outs;
}

std::optional<ClusterResult> run_cluster_impl(
    const ClusterConfig& config, const ServingCheckpoint* resume_ckpt) {
  const CampaignConfig& camp = config.campaign;
  ScenarioConfig scfg = camp.scenario;
  scfg.seed = scfg.resolved_seed();
  const ScenarioTrace trace = build_trace(scfg, camp.pim);
  const int M = config.resolved_meshes();
  const int pes_per_mesh = std::max(1, camp.pim.pes);
  const int K = shards_per_mesh(camp, M);
  const int S = M * K;  ///< global shard count
  const int E = std::max(1, camp.epochs);
  const int R = config.resolved_replication_epochs();
  const bool autoscale = camp.autoscale.resolved_enabled();
  const bool fo = config.failover.resolved_enabled();
  const std::size_t T = trace.tenants.size();
  const double h = scfg.horizon_s;

  const std::vector<MeshOutage> outs =
      resolve_outages(config, scfg.seed, M);
  // Per-storm target mesh (fork 12): recomputed every run, never
  // serialized — one draw per trace storm whether or not it fires.
  std::vector<int> storm_mesh(trace.storms.size(), 0);
  {
    common::Rng rng = common::Rng(scfg.seed).fork(12);
    for (int& m : storm_mesh)
      m = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(M)));
  }

  CampaignState st;
  st.seed = scfg.seed;
  st.requests = static_cast<std::uint64_t>(std::max<long long>(
      0, scfg.requests));
  st.tenants = static_cast<std::int32_t>(T);
  st.shards = S;
  st.epochs = E;
  st.autoscale = autoscale;
  {
    // Every mesh starts with the identical K-way cut of its own PE fill
    // order (meshes are geometry clones; their blocks diverge only as
    // each mesh's autoscaler reacts to its own demand).
    const auto blocks =
        fleet_partition_pes(fleet_fill_order(camp.pim, true), K);
    st.shard_pes.resize(static_cast<std::size_t>(S));
    for (int m = 0; m < M; ++m)
      for (std::size_t k = 0; k < blocks.size(); ++k)
        st.shard_pes[static_cast<std::size_t>(m) * blocks.size() + k] =
            static_cast<std::int32_t>(blocks[k].size());
  }
  st.shard_busy_until_s.assign(static_cast<std::size_t>(S), 0.0);
  st.shard_demand.assign(static_cast<std::size_t>(S), 0.0);
  st.tenant_demand.assign(T, 0.0);
  st.tenant_shard = campaign_initial_placement(trace, st.shard_pes);
  st.epoch_energy_j.assign(static_cast<std::size_t>(E), 0.0);
  st.epoch_edp_sum.assign(static_cast<std::size_t>(E), 0.0);
  st.epoch_requests.assign(static_cast<std::size_t>(E), 0);
  st.epoch_misses.assign(static_cast<std::size_t>(E), 0);
  st.epoch_sheds.assign(static_cast<std::size_t>(E), 0);
  st.epoch_slack_p1.assign(static_cast<std::size_t>(E), QuantileSketch(0.01));

  ClusterState cs;
  cs.meshes = M;
  cs.replication_epochs = R;
  cs.failover = fo;
  cs.mesh_down.assign(static_cast<std::size_t>(M), 0);
  cs.mesh_down_until_s.assign(static_cast<std::size_t>(M), 0.0);
  cs.mesh_served.assign(static_cast<std::size_t>(M), 0);
  cs.replica_runs.assign(T, 0);
  cs.replica_time_s.assign(T, 0.0);
  cs.replica_mesh.assign(T, -1);
  cs.tenant_ready_s.assign(T, 0.0);
  cs.tenant_victim.assign(T, 0);

  std::vector<TenantStats> stats(T);
  for (std::size_t i = 0; i < T; ++i) {
    stats[i].name = trace.tenants[i].name;
    stats[i].slo_s = trace.tenants[i].slo_s;
  }
  std::vector<CircuitBreaker> brk(T, CircuitBreaker(BreakerConfig{}));

  reram::FaultScheduleParams fp;
  fp.wordline_fail_rate = 2e-3;
  fp.bitline_fail_rate = 2e-3;
  fp.write_fail_rate = 0.05;
  std::vector<std::unique_ptr<reram::FaultInjector>> inj;
  inj.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s)
    inj.push_back(std::make_unique<reram::FaultInjector>(
        fp, camp.fault_seed + static_cast<std::uint64_t>(s)));

  ArrivalGenerator gen(trace);

  if (resume_ckpt != nullptr) {
    st = resume_ckpt->scenario;
    stats = resume_ckpt->result.tenants;
    cs = resume_ckpt->cluster;
    if (stats.size() != T) return std::nullopt;
    if (st.storm_shard_mask.size() !=
            static_cast<std::size_t>(st.storms_fired) ||
        st.shard_wear.size() != static_cast<std::size_t>(S))
      return std::nullopt;
    if (cs.mesh_down.size() != static_cast<std::size_t>(M) ||
        cs.mesh_down_until_s.size() != static_cast<std::size_t>(M) ||
        cs.mesh_served.size() != static_cast<std::size_t>(M) ||
        cs.replica_runs.size() != T || cs.replica_time_s.size() != T ||
        cs.replica_mesh.size() != T || cs.tenant_ready_s.size() != T ||
        cs.tenant_victim.size() != T || cs.breakers.size() != T)
      return std::nullopt;
    if (cs.outages_fired < 0 ||
        static_cast<std::size_t>(cs.outages_fired) > outs.size())
      return std::nullopt;
    gen.skip(st.next_event);
    // Re-apply fired storms' drift windows to the global shards they
    // actually hit (a dark target mesh left its mask empty).
    for (std::int32_t s = 0; s < st.storms_fired; ++s) {
      const FaultStorm& storm = trace.storms[static_cast<std::size_t>(s)];
      const reram::DriftBurst burst{storm.start_frac * h,
                                    storm.duration_frac * h,
                                    storm.drift_multiplier};
      for (int g = 0; g < S; ++g)
        if ((st.storm_shard_mask[static_cast<std::size_t>(s)] >>
             static_cast<unsigned>(g)) &
            1u)
          inj[static_cast<std::size_t>(g)]->add_burst(burst);
    }
    // Re-apply fired outages' power-down windows (not serialized; pure
    // function of the cursor and the resolved schedule).
    for (std::int32_t oi = 0; oi < cs.outages_fired; ++oi) {
      const MeshOutage& o = outs[static_cast<std::size_t>(oi)];
      const double t0 = o.start_frac * h;
      const double dur = o.duration_frac * h;
      for (int k = 0; k < K; ++k)
        inj[static_cast<std::size_t>(o.mesh * K + k)]->add_power_down(t0,
                                                                      dur);
    }
    for (int s = 0; s < S; ++s)
      if (!inj[static_cast<std::size_t>(s)]->fast_forward(
              st.shard_wear[static_cast<std::size_t>(s)]))
        return std::nullopt;
    for (std::size_t i = 0; i < T; ++i) brk[i].restore(cs.breakers[i]);
  }

  std::optional<CheckpointWriter> writer;
  if (!camp.checkpoint.base_path.empty())
    writer.emplace(camp.checkpoint.base_path);
  const int every = std::max(1, camp.checkpoint.every_runs);

  auto write_checkpoint = [&]() {
    if (!writer.has_value()) return;
    st.shard_wear.resize(static_cast<std::size_t>(S));
    for (int s = 0; s < S; ++s)
      st.shard_wear[static_cast<std::size_t>(s)] =
          inj[static_cast<std::size_t>(s)]->wear_state();
    cs.breakers.resize(T);
    for (std::size_t i = 0; i < T; ++i) cs.breakers[i] = brk[i].snapshot();
    ServingCheckpoint ckpt;
    ckpt.segment = static_cast<std::uint64_t>(st.epoch);
    ckpt.next_run = st.next_event;
    ckpt.segments = E;
    ckpt.horizon_runs = static_cast<int>(std::min<long long>(
        scfg.requests, std::numeric_limits<int>::max()));
    ckpt.t_start_s = 0.0;
    ckpt.t_end_s = h;
    for (const ScenarioTenant& t : trace.tenants)
      ckpt.tenant_names.push_back(t.name);
    ckpt.result.label = "cluster";
    ckpt.result.tenants = stats;
    ckpt.sojourn_cap = static_cast<std::uint64_t>(camp.sojourn_cap);
    ckpt.has_scenario = true;
    ckpt.scenario = st;
    ckpt.has_cluster = true;
    ckpt.cluster = cs;
    writer->write(ckpt);
  };

  // Close one epoch: each *alive* mesh autoscales independently over its
  // own K shards and its own tenants — exactly the campaign close_epoch
  // restricted to the mesh's slice, so a single-mesh cluster reproduces
  // it bitwise. A dark mesh is skipped (nothing served, nothing to cut).
  auto close_epoch = [&]() {
    for (int m = 0; m < M; ++m) {
      if (cs.mesh_down[static_cast<std::size_t>(m)] != 0) continue;
      const std::size_t base = static_cast<std::size_t>(m) *
                               static_cast<std::size_t>(K);
      double total = 0.0;
      for (int k = 0; k < K; ++k)
        total += st.shard_demand[base + static_cast<std::size_t>(k)];
      if (!autoscale || total <= 0.0) continue;
      auto pes_of = [&](std::size_t g) {
        return static_cast<double>(
            std::max<std::int32_t>(1, st.shard_pes[g]));
      };
      const double mean_pp = total / static_cast<double>(pes_per_mesh);
      double max_pp = 0.0;
      for (int k = 0; k < K; ++k) {
        const std::size_t g = base + static_cast<std::size_t>(k);
        max_pp = std::max(max_pp, st.shard_demand[g] / pes_of(g));
      }
      if (max_pp <= camp.autoscale.imbalance_threshold * mean_pp) continue;
      std::vector<double> local(
          st.shard_demand.begin() + static_cast<std::ptrdiff_t>(base),
          st.shard_demand.begin() +
              static_cast<std::ptrdiff_t>(base + static_cast<std::size_t>(K)));
      const auto blocks = rescale_shard_blocks(camp.pim, true, local);
      for (std::size_t k = 0; k < blocks.size(); ++k)
        st.shard_pes[base + k] = static_cast<std::int32_t>(blocks[k].size());
      ++st.rescales;
      for (std::size_t iter = 0; iter < T; ++iter) {
        std::size_t a = base, b = base;
        double hi = -1.0, lo = std::numeric_limits<double>::infinity();
        for (int k = 0; k < K; ++k) {
          const std::size_t g = base + static_cast<std::size_t>(k);
          const double pp = st.shard_demand[g] / pes_of(g);
          if (pp > hi) {
            hi = pp;
            a = g;
          }
          if (pp < lo) {
            lo = pp;
            b = g;
          }
        }
        if (a == b || hi <= kMigrateResidualThreshold * mean_pp) break;
        std::size_t best = T;
        double best_d = 0.0;
        for (std::size_t i = 0; i < T; ++i)
          if (st.tenant_shard[i] == static_cast<std::int32_t>(a) &&
              st.tenant_demand[i] > best_d) {
            best_d = st.tenant_demand[i];
            best = i;
          }
        if (best == T) break;
        const double new_a = (st.shard_demand[a] - best_d) / pes_of(a);
        const double new_b = (st.shard_demand[b] + best_d) / pes_of(b);
        if (std::max(new_a, new_b) >= hi) break;
        st.tenant_shard[best] = static_cast<std::int32_t>(b);
        st.shard_demand[a] -= best_d;
        st.shard_demand[b] += best_d;
        ++st.migrations;
        st.migration_s += camp.autoscale.migration_cost_s;
        st.migration_energy_j += camp.autoscale.migration_energy_j;
      }
    }
    std::fill(st.shard_demand.begin(), st.shard_demand.end(), 0.0);
    std::fill(st.tenant_demand.begin(), st.tenant_demand.end(), 0.0);
  };

  // Replicate every alive tenant's state to a peer mesh at the cadence:
  // ring-wise first alive mesh after home. One inter-mesh transfer per
  // round carries the batched payload; the ledger charges it off the
  // serving path (replication is asynchronous by construction).
  auto replicate = [&](int closing_epoch) {
    if (M <= 1) return;
    if (((closing_epoch + 1) % R) != 0) return;
    double bytes = 0.0;
    for (std::size_t i = 0; i < T; ++i) {
      const int home = st.tenant_shard[i] / K;
      if (cs.mesh_down[static_cast<std::size_t>(home)] != 0) continue;
      int peer = -1;
      for (int d = 1; d < M; ++d) {
        const int c = (home + d) % M;
        if (cs.mesh_down[static_cast<std::size_t>(c)] == 0) {
          peer = c;
          break;
        }
      }
      if (peer < 0) continue;
      cs.replica_runs[i] = stats[i].runs;
      cs.replica_time_s[i] = h * static_cast<double>(closing_epoch + 1) /
                             static_cast<double>(E);
      cs.replica_mesh[i] = static_cast<std::int32_t>(peer);
      bytes += kReplicaBytesPerTenant;
    }
    if (bytes <= 0.0) return;
    const common::EnergyLatency cost = arch::intermesh_transfer(
        static_cast<std::int64_t>(bytes));
    cs.replication_bytes += bytes;
    cs.replication_s += cost.latency_s;
    cs.replication_energy_j += cost.energy_j;
    ++cs.replication_rounds;
  };

  // Mesh loss: darken the mesh (shards unservable, drift clocks paused)
  // and, with failover on and a survivor available, evacuate its tenants
  // in index order — RPO from the replica cursor, destination by
  // least-loaded mesh then least-loaded shard, RTO from the serialized
  // restore queue, breaker pre-opened, destination re-bootstrapped.
  auto fire_outage = [&](const MeshOutage& o) {
    const int m = o.mesh;
    const double t0 = o.start_frac * h;
    const double dur = o.duration_frac * h;
    cs.mesh_down[static_cast<std::size_t>(m)] = 1;
    cs.mesh_down_until_s[static_cast<std::size_t>(m)] = t0 + dur;
    for (int k = 0; k < K; ++k)
      inj[static_cast<std::size_t>(m * K + k)]->add_power_down(t0, dur);
    bool any_alive = false;
    for (int c = 0; c < M; ++c)
      if (cs.mesh_down[static_cast<std::size_t>(c)] == 0) any_alive = true;
    std::vector<double> mesh_demand(static_cast<std::size_t>(M), 0.0);
    for (int g = 0; g < S; ++g)
      mesh_demand[static_cast<std::size_t>(g / K)] +=
          st.shard_demand[static_cast<std::size_t>(g)];
    const std::vector<std::int32_t> mesh_pes(
        static_cast<std::size_t>(M),
        static_cast<std::int32_t>(pes_per_mesh));
    std::vector<std::uint8_t> mesh_ok(static_cast<std::size_t>(M), 0);
    for (int c = 0; c < M; ++c)
      mesh_ok[static_cast<std::size_t>(c)] =
          cs.mesh_down[static_cast<std::size_t>(c)] == 0 ? 1 : 0;
    const double pull_s =
        arch::intermesh_transfer(
            static_cast<std::int64_t>(kReplicaBytesPerTenant))
            .latency_s;
    int restored = 0;
    for (std::size_t i = 0; i < T; ++i) {
      if (st.tenant_shard[i] / K != m) continue;
      cs.tenant_victim[i] = 1;
      if (!fo || !any_alive) continue;  // stranded: dark until revival
      TenantStats& ts = stats[i];
      // RPO: how far behind the freshest replica is.
      double rpo = 0.0;
      if (ts.runs > cs.replica_runs[i]) {
        ++cs.restored_stale;
        ++ts.restored_stale;
        const long long lost =
            static_cast<long long>(ts.runs) - cs.replica_runs[i];
        cs.lost_runs += lost;
        ts.lost_runs += lost;
        rpo = std::max(0.0, t0 - cs.replica_time_s[i]);
      }
      ts.rpo_s = std::max(ts.rpo_s, rpo);
      cs.rpo_sum_s += rpo;
      cs.rpo_max_s = std::max(cs.rpo_max_s, rpo);
      // Destination: least-loaded surviving mesh, then its least-loaded
      // shard (per-PE demand, deterministic tie-breaks).
      const std::size_t tm =
          pick_least_loaded_block(mesh_demand, mesh_pes, mesh_ok);
      assert(tm < mesh_demand.size());
      const std::size_t tb = tm * static_cast<std::size_t>(K);
      const std::vector<double> local_demand(
          st.shard_demand.begin() + static_cast<std::ptrdiff_t>(tb),
          st.shard_demand.begin() +
              static_cast<std::ptrdiff_t>(tb + static_cast<std::size_t>(K)));
      const std::vector<std::int32_t> local_pes(
          st.shard_pes.begin() + static_cast<std::ptrdiff_t>(tb),
          st.shard_pes.begin() +
              static_cast<std::ptrdiff_t>(tb + static_cast<std::size_t>(K)));
      const std::size_t tk =
          pick_least_loaded_block(local_demand, local_pes, {});
      const auto dst = static_cast<std::int32_t>(tb + tk);
      const auto src = static_cast<std::size_t>(st.tenant_shard[i]);
      st.shard_demand[src] -= st.tenant_demand[i];
      st.shard_demand[static_cast<std::size_t>(dst)] += st.tenant_demand[i];
      mesh_demand[static_cast<std::size_t>(m)] -= st.tenant_demand[i];
      mesh_demand[tm] += st.tenant_demand[i];
      st.tenant_shard[i] = dst;
      // RTO: detection once, then the serialized restore queue (one pull
      // plus one reinstatement per victim ahead of this one, inclusive).
      ++restored;
      const double ready = t0 + config.failover.detection_s +
                           static_cast<double>(restored) *
                               (config.failover.restore_s + pull_s);
      cs.tenant_ready_s[i] = ready;
      const double rto = ready - t0;
      ts.rto_s = std::max(ts.rto_s, rto);
      cs.rto_sum_s += rto;
      cs.rto_max_s = std::max(cs.rto_max_s, rto);
      // Restore pull rides the inter-mesh link too.
      cs.replication_bytes += kReplicaBytesPerTenant;
      cs.replication_s += pull_s;
      cs.replication_energy_j +=
          arch::intermesh_transfer(
              static_cast<std::int64_t>(kReplicaBytesPerTenant))
              .energy_j;
      // Re-bootstrap from last-known-good OU config: one write-verify
      // campaign on the destination shard's array (rides the wear
      // fingerprint, so resume replays it).
      inj[static_cast<std::size_t>(dst)]->program_campaign();
      ++cs.bootstrap_campaigns;
      // Degraded admission until a half-open probe passes.
      brk[i].force_open(config.failover.degraded_window);
      ++cs.failovers;
      ++ts.failovers;
    }
  };

  long long served_now = 0;
  bool stopped = false;
  while (st.next_event < st.requests) {
    if (camp.max_requests > 0 && served_now >= camp.max_requests) {
      stopped = true;
      break;
    }
    const ArrivalGenerator::Arrival arr = gen.next();
    const double t = arr.t_s;
    const auto tenant = static_cast<std::size_t>(arr.tenant);

    // Fire due outages, then revive meshes whose window has passed (in
    // that order, so a window fully inside an arrival gap still fires —
    // and its failover still runs — before the mesh comes back).
    while (static_cast<std::size_t>(cs.outages_fired) < outs.size() &&
           outs[static_cast<std::size_t>(cs.outages_fired)].start_frac * h <=
               t) {
      fire_outage(outs[static_cast<std::size_t>(cs.outages_fired)]);
      ++cs.outages_fired;
    }
    for (int m = 0; m < M; ++m)
      if (cs.mesh_down[static_cast<std::size_t>(m)] != 0 &&
          t >= cs.mesh_down_until_s[static_cast<std::size_t>(m)])
        cs.mesh_down[static_cast<std::size_t>(m)] = 0;

    // Fire due storms on their target mesh's current shard blocks. A
    // dark target absorbs the storm (mask stays empty — nothing to burn).
    while (static_cast<std::size_t>(st.storms_fired) < trace.storms.size() &&
           trace.storms[static_cast<std::size_t>(st.storms_fired)].start_frac *
                   h <=
               t) {
      const auto si = static_cast<std::size_t>(st.storms_fired);
      const FaultStorm& storm = trace.storms[si];
      const int tm = storm_mesh[si];
      std::uint64_t mask = 0;
      if (cs.mesh_down[static_cast<std::size_t>(tm)] == 0) {
        const std::size_t base = static_cast<std::size_t>(tm) *
                                 static_cast<std::size_t>(K);
        const std::vector<std::int32_t> local_pes(
            st.shard_pes.begin() + static_cast<std::ptrdiff_t>(base),
            st.shard_pes.begin() +
                static_cast<std::ptrdiff_t>(base +
                                            static_cast<std::size_t>(K)));
        const auto blocks = campaign_blocks_from_counts(camp.pim, local_pes);
        std::vector<std::int32_t> shard_of(
            static_cast<std::size_t>(pes_per_mesh), 0);
        for (std::size_t k = 0; k < blocks.size(); ++k)
          for (int pe : blocks[k])
            shard_of[static_cast<std::size_t>(pe)] =
                static_cast<std::int32_t>(k);
        for (int pe : trace.storm_pes(si))
          mask |= 1ull << static_cast<unsigned>(
                      base + static_cast<std::size_t>(
                                 shard_of[static_cast<std::size_t>(pe)]));
        const reram::DriftBurst burst{storm.start_frac * h,
                                      storm.duration_frac * h,
                                      storm.drift_multiplier};
        for (int g = 0; g < S; ++g)
          if ((mask >> static_cast<unsigned>(g)) & 1u) {
            inj[static_cast<std::size_t>(g)]->add_burst(burst);
            inj[static_cast<std::size_t>(g)]->program_campaigns(
                storm.campaigns);
            st.storm_campaigns_fired += storm.campaigns;
          }
      }
      st.storm_shard_mask.push_back(mask);
      ++st.storms_fired;
    }

    // Epoch rollover(s): close accumulators, autoscale per mesh, then
    // push replicas at the cadence.
    const int ep = std::min(E - 1, static_cast<int>(t / h *
                                                    static_cast<double>(E)));
    while (st.epoch < ep) {
      close_epoch();
      replicate(st.epoch);
      ++st.epoch;
    }

    // Serve. A dark home mesh (or a restore still in flight) drops the
    // arrival — counted, never silently lost.
    const ScenarioTenant& sp = trace.tenants[tenant];
    TenantStats& ts = stats[tenant];
    const auto k = static_cast<std::size_t>(st.tenant_shard[tenant]);
    const int mesh = static_cast<int>(k) / K;
    if (cs.mesh_down[static_cast<std::size_t>(mesh)] != 0 ||
        t < cs.tenant_ready_s[tenant]) {
      ++cs.outage_dropped;
      ++ts.outage_dropped;
      if (cs.tenant_victim[tenant] != 0) ++cs.victim_offered;
      st.clock_s = t;
      ++st.next_event;
      ++served_now;
      if (writer.has_value() && served_now % every == 0) write_checkpoint();
      continue;
    }
    if (cs.tenant_victim[tenant] != 0) {
      ++cs.victim_offered;
      ++cs.victim_served;
    }
    ++cs.mesh_served[static_cast<std::size_t>(mesh)];
    // Degraded admission: a non-closed breaker serves the fallback path
    // until its hold drains; the run that exhausts it is the half-open
    // probe. Closed breakers never consume state, so a single-mesh
    // cluster (no failover ever fires) matches run_campaign bitwise.
    bool degraded = false, probe = false;
    if (brk[tenant].state() != CircuitBreaker::State::kClosed) {
      const bool full = brk[tenant].allow();
      probe = full;
      degraded = !full;
    }
    const double mult = inj[k]->drift_time_multiplier(t);
    const double ff = inj[k]->fault_fraction();
    double service = 0.0, energy = 0.0;
    campaign_price(sp, mult, ff, st.shard_pes[k], service, energy);
    const double demand_service = service;
    const double wait = std::max(0.0, st.shard_busy_until_s[k] - t);
    const bool shed = wait > camp.queue_shed_slo_mult * sp.slo_s;
    double sojourn;
    if (degraded) {
      // Breaker-open fallback: same degraded out-of-band path as a shed,
      // ledgered separately (it is admission policy, not queue pressure).
      campaign_degrade(service, energy);
      sojourn = service;
      ++ts.breaker_open_runs;
      ++cs.degraded_runs;
    } else if (shed) {
      campaign_degrade(service, energy);
      sojourn = service;
      ++ts.shed_runs;
      ++st.sheds;
      ++st.epoch_sheds[static_cast<std::size_t>(st.epoch)];
    } else {
      const double start = std::max(st.shard_busy_until_s[k], t);
      st.shard_busy_until_s[k] = start + service;
      sojourn = st.shard_busy_until_s[k] - t;
    }
    const double slack = sp.slo_s - sojourn;
    if (sojourn > sp.slo_s) {
      ++ts.deadline_misses;
      ++st.misses;
      ++st.epoch_misses[static_cast<std::size_t>(st.epoch)];
    }
    ts.record_sojourn(sojourn, camp.sojourn_cap);
    ++ts.runs;
    ts.service_s += service;
    ts.inference.energy_j += energy;
    ts.inference.latency_s += service;
    const double edp = energy * service;
    st.energy_j += energy;
    st.edp_sum += edp;
    st.sojourn.add(sojourn);
    st.slack_p1.add(slack);
    st.tier_slack_p1[static_cast<int>(sp.tier)].add(slack);
    if (trace.in_flash_phase(t)) {
      ++st.flash_requests;
      st.flash_slack_p1.add(slack);
    }
    const auto e = static_cast<std::size_t>(st.epoch);
    ++st.epoch_requests[e];
    st.epoch_energy_j[e] += energy;
    st.epoch_edp_sum[e] += edp;
    st.epoch_slack_p1[e].add(slack);
    st.shard_demand[k] += demand_service;
    st.tenant_demand[tenant] += demand_service;
    st.clock_s = t;
    if (probe) brk[tenant].record(sojourn <= sp.slo_s);

    ++st.next_event;
    ++served_now;
    if (writer.has_value() && served_now % every == 0) write_checkpoint();
  }
  write_checkpoint();
  (void)stopped;

  st.shard_wear.resize(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s)
    st.shard_wear[static_cast<std::size_t>(s)] =
        inj[static_cast<std::size_t>(s)]->wear_state();
  cs.breakers.resize(T);
  for (std::size_t i = 0; i < T; ++i) cs.breakers[i] = brk[i].snapshot();

  ClusterResult r;
  r.campaign.label = autoscale ? "autoscaled" : "static";
  r.campaign.scenario = scfg;
  r.campaign.shards = S;
  r.campaign.autoscaled = autoscale;
  r.campaign.resumed = resume_ckpt != nullptr;
  r.campaign.roster = trace.tenants;
  r.campaign.tenants = std::move(stats);
  r.campaign.trajectory.reserve(static_cast<std::size_t>(E));
  for (int e = 0; e < E; ++e) {
    const auto i = static_cast<std::size_t>(e);
    CampaignEpoch ep;
    ep.t_end_s = h * static_cast<double>(e + 1) / static_cast<double>(E);
    ep.requests = st.epoch_requests[i];
    ep.misses = st.epoch_misses[i];
    ep.sheds = st.epoch_sheds[i];
    ep.energy_j = st.epoch_energy_j[i];
    ep.edp_sum = st.epoch_edp_sum[i];
    ep.p99_slack_s = st.epoch_slack_p1[i].estimate();
    r.campaign.trajectory.push_back(ep);
  }
  r.campaign.state = std::move(st);
  r.cluster = std::move(cs);
  r.meshes = M;
  r.shards_per_mesh = K;
  r.failover = fo;
  r.replication_epochs = R;
  r.outages = outs;
  return r;
}

}  // namespace

double ClusterResult::victim_recovery() const noexcept {
  if (cluster.victim_offered <= 0) return 1.0;
  return static_cast<double>(cluster.victim_served) /
         static_cast<double>(cluster.victim_offered);
}

double ClusterResult::rto_mean_s() const noexcept {
  return cluster.failovers > 0
             ? cluster.rto_sum_s / static_cast<double>(cluster.failovers)
             : 0.0;
}

double ClusterResult::rpo_mean_s() const noexcept {
  return cluster.failovers > 0
             ? cluster.rpo_sum_s / static_cast<double>(cluster.failovers)
             : 0.0;
}

std::string ClusterResult::summary(bool include_trajectory) const {
  std::string out;
  char line[512];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };
  emit("cluster meshes=%d shards_per_mesh=%d failover=%d "
       "replication_epochs=%d outages=%zu fired=%d\n",
       meshes, shards_per_mesh, failover ? 1 : 0, replication_epochs,
       outages.size(), cluster.outages_fired);
  for (std::size_t i = 0; i < outages.size(); ++i)
    emit("outage %zu mesh=%d start_frac=%.17g duration_frac=%.17g\n", i,
         outages[i].mesh, outages[i].start_frac, outages[i].duration_frac);
  emit("failover failovers=%lld restored_stale=%lld lost_runs=%lld "
       "outage_dropped=%lld degraded_runs=%lld bootstrap_campaigns=%lld\n",
       static_cast<long long>(cluster.failovers),
       static_cast<long long>(cluster.restored_stale),
       static_cast<long long>(cluster.lost_runs),
       static_cast<long long>(cluster.outage_dropped),
       static_cast<long long>(cluster.degraded_runs),
       static_cast<long long>(cluster.bootstrap_campaigns));
  emit("recovery rto_max_s=%.17g rto_mean_s=%.17g rpo_max_s=%.17g "
       "rpo_mean_s=%.17g victim_offered=%lld victim_served=%lld "
       "victim_recovery=%.17g\n",
       cluster.rto_max_s, rto_mean_s(), cluster.rpo_max_s, rpo_mean_s(),
       static_cast<long long>(cluster.victim_offered),
       static_cast<long long>(cluster.victim_served), victim_recovery());
  emit("replication rounds=%d bytes=%.17g time_s=%.17g energy_j=%.17g\n",
       cluster.replication_rounds, cluster.replication_bytes,
       cluster.replication_s, cluster.replication_energy_j);
  for (std::size_t m = 0; m < cluster.mesh_served.size(); ++m)
    emit("mesh %zu served=%lld down=%d\n", m,
         static_cast<long long>(cluster.mesh_served[m]),
         static_cast<int>(cluster.mesh_down[m]));
  out += campaign.summary(include_trajectory);
  return out;
}

ClusterResult run_cluster(const ClusterConfig& config) {
  auto result = run_cluster_impl(config, nullptr);
  assert(result.has_value());  // only a resume checkpoint can fail
  return std::move(*result);
}

std::optional<ClusterResult> resume_cluster(const ClusterConfig& config) {
  if (config.campaign.checkpoint.base_path.empty()) return std::nullopt;
  const auto ckpt =
      load_latest_checkpoint(config.campaign.checkpoint.base_path);
  if (!ckpt.has_value() || !ckpt->has_scenario || !ckpt->has_cluster)
    return std::nullopt;
  // Wrong-geometry refusal, campaign then cluster: the state only
  // reinstates onto the identical scenario AND the identical cluster
  // (mesh count, replication cadence, failover arm).
  ScenarioConfig scfg = config.campaign.scenario;
  scfg.seed = scfg.resolved_seed();
  const int M = config.resolved_meshes();
  const int K = shards_per_mesh(config.campaign, M);
  const CampaignState& s = ckpt->scenario;
  if (s.seed != scfg.seed ||
      s.requests != static_cast<std::uint64_t>(
                        std::max<long long>(0, scfg.requests)) ||
      s.tenants != std::max(1, scfg.tenants) || s.shards != M * K ||
      s.epochs != std::max(1, config.campaign.epochs) ||
      s.autoscale != config.campaign.autoscale.resolved_enabled())
    return std::nullopt;
  if (ckpt->sojourn_cap !=
      static_cast<std::uint64_t>(config.campaign.sojourn_cap))
    return std::nullopt;
  const ClusterState& c = ckpt->cluster;
  if (c.meshes != M ||
      c.replication_epochs != config.resolved_replication_epochs() ||
      c.failover != config.failover.resolved_enabled())
    return std::nullopt;
  ClusterConfig cont = config;
  cont.campaign.max_requests = 0;
  return run_cluster_impl(cont, &*ckpt);
}

// ---------------------------------------------------------------------------
// Cluster scenario-file parser. Cluster keys are consumed here; every
// other line is passed through to parse_scenario with its position
// preserved (consumed lines become blanks), so scenario-level errors
// still report the right line number.

std::optional<ClusterConfig> parse_cluster(std::istream& in) {
  ClusterConfig cfg;
  std::string raw;
  int lineno = 0;
  std::string rest;
  auto fail = [&](const char* why) -> std::optional<ClusterConfig> {
    std::fprintf(stderr, "odin: scenario line %d: %s: %s\n", lineno, why,
                 raw.c_str());
    return std::nullopt;
  };
  auto parse_f64 = [](const std::string& tok, double& out) {
    const char* s = tok.c_str();
    char* end = nullptr;
    out = std::strtod(s, &end);
    return end != s && *end == '\0';
  };
  auto parse_i64 = [](const std::string& tok, long long& out) {
    const char* s = tok.c_str();
    char* end = nullptr;
    out = std::strtoll(s, &end, 10);
    return end != s && *end == '\0';
  };
  while (std::getline(in, raw)) {
    ++lineno;
    std::string text = raw;
    if (const auto hash = text.find('#'); hash != std::string::npos)
      text.resize(hash);
    std::istringstream ls(text);
    std::string key;
    if (!(ls >> key)) {
      rest += raw;
      rest += '\n';
      continue;
    }
    std::vector<std::string> args;
    for (std::string a; ls >> a;) args.push_back(a);
    auto num = [&](std::size_t i, double& v) {
      return i < args.size() && parse_f64(args[i], v);
    };
    auto integer = [&](std::size_t i, long long& v) {
      return i < args.size() && parse_i64(args[i], v);
    };
    long long iv = 0;
    double fv = 0.0;
    if (key == "meshes") {
      if (!integer(0, iv) || iv < 1 || iv > kMaxMeshes)
        return fail("want integer in [1, 8]");
      cfg.meshes = static_cast<int>(iv);
    } else if (key == "replication-epochs") {
      if (!integer(0, iv) || iv < 1 || iv > kMaxReplicationEpochs)
        return fail("want integer in [1, 64]");
      cfg.replication_epochs = static_cast<int>(iv);
    } else if (key == "failover") {
      if (args.size() != 1 || (args[0] != "on" && args[0] != "off" &&
                               args[0] != "1" && args[0] != "0"))
        return fail("want on|off|1|0");
      cfg.failover.enabled = (args[0] == "on" || args[0] == "1") ? 1 : 0;
    } else if (key == "outage") {
      MeshOutage o;
      long long mesh = -1;
      if (!num(0, o.start_frac) || !num(1, o.duration_frac))
        return fail("want: outage START_FRAC DURATION_FRAC [MESH]");
      if (args.size() > 2 && !integer(2, mesh)) return fail("bad MESH");
      o.mesh = static_cast<int>(mesh);
      cfg.outages.push_back(o);
    } else if (key == "mesh-outages") {
      if (!integer(0, iv) || iv < 0) return fail("want integer >= 0");
      cfg.mesh_outages = static_cast<int>(iv);
    } else if (key == "outage-duration-frac") {
      if (!num(0, fv) || fv <= 0.0 || fv > 1.0)
        return fail("want number in (0, 1]");
      cfg.outage_duration_frac = fv;
    } else if (key == "detection-s") {
      if (!num(0, fv) || fv < 0.0) return fail("want number >= 0");
      cfg.failover.detection_s = fv;
    } else if (key == "restore-s") {
      if (!num(0, fv) || fv < 0.0) return fail("want number >= 0");
      cfg.failover.restore_s = fv;
    } else if (key == "degraded-window") {
      if (!integer(0, iv) || iv < 1) return fail("want integer >= 1");
      cfg.failover.degraded_window = static_cast<int>(iv);
    } else {
      rest += raw;
      rest += '\n';
      continue;
    }
    rest += '\n';  // consumed: keep downstream line numbers aligned
  }
  std::istringstream scenario_in(rest);
  auto camp = parse_scenario(scenario_in);
  if (!camp.has_value()) return std::nullopt;
  cfg.campaign = std::move(*camp);
  return cfg;
}

std::optional<ClusterConfig> parse_cluster_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "odin: cannot open scenario file: %s\n",
                 path.c_str());
    return std::nullopt;
  }
  return parse_cluster(in);
}

}  // namespace odin::core
