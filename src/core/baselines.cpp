#include "core/baselines.hpp"

#include <cassert>

#include "common/parallel.hpp"
#include "reram/fault_injection.hpp"

namespace odin::core {

std::vector<ou::OuConfig> paper_baseline_configs() {
  return {{16, 16}, {16, 4}, {9, 8}, {8, 4}};
}

HomogeneousRunner::HomogeneousRunner(const ou::MappedModel& model,
                                     const ou::NonIdealityModel& nonideal,
                                     const ou::OuCostModel& cost,
                                     ou::OuConfig config,
                                     bool reprogram_enabled,
                                     reram::FaultInjector* faults)
    : model_(&model),
      nonideal_(&nonideal),
      cost_(&cost),
      config_(config),
      reprogram_enabled_(reprogram_enabled),
      faults_(faults) {
  // Per-layer costs are independent (the first counts() call scans the
  // weight pattern); combine in layer order so the sum is bitwise stable.
  const auto per_layer = common::parallel_transform(
      model.layer_count(), 1, [&](std::size_t j) {
        return cost
            .layer_cost(model.mapping(j).counts(config), config,
                        model.model().layers[j].activation_sparsity)
            .total();
      });
  for (const common::EnergyLatency& c : per_layer) inference_cost_ += c;
}

common::EnergyLatency HomogeneousRunner::full_reprogram_cost() const {
  const auto per_layer = common::parallel_transform(
      model_->layer_count(), 1,
      [&](std::size_t j) { return cost_->reprogram_cost(model_->mapping(j)); });
  common::EnergyLatency total;
  for (const common::EnergyLatency& c : per_layer) total += c;
  return total;
}

BaselineRunResult HomogeneousRunner::run_inference(double t_s) {
  assert(t_s >= programmed_at_s_);
  BaselineRunResult run;
  run.time_s = t_s;
  double elapsed = t_s - programmed_at_s_;
  // Reprogram when this OU's own total non-ideality crosses the threshold
  // (prior work has no finer knob: the OU size is fixed). Permanent faults
  // raise the floor and drift bursts speed the clock, but the baseline has
  // no notion of either being unrecoverable — when the floor alone exceeds
  // eta it reprograms on every run, accelerating its own wear.
  const double burst =
      faults_ != nullptr ? faults_->drift_time_multiplier(t_s) : 1.0;
  const double fault_nf =
      faults_ != nullptr ? faults_->fault_fraction() : 0.0;
  if (reprogram_enabled_ &&
      nonideal_->total_nf(elapsed * burst, config_) + fault_nf >
          nonideal_->params().eta_total) {
    run.reprogrammed = true;
    run.reprogram = full_reprogram_cost();
    ++reprogram_count_;
    if (faults_ != nullptr) faults_->program_campaign();  // convergence ignored
    programmed_at_s_ = t_s;
    elapsed = nonideal_->device().t0_s;
  }
  run.elapsed_s = elapsed;
  run.inference = inference_cost_;
  return run;
}

}  // namespace odin::core
