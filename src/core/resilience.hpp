// Serving-resilience primitives: admission control, per-tenant circuit
// breakers, and the percentile helper behind the SLO reporting.
//
// Production serving cannot let one slow run (a reprogram storm inside a
// drift burst), one chronically failing tenant, or one hung worker take the
// whole accelerator down with it. Three independent mechanisms bound the
// blast radius, all driven by the same per-request deadline budget
// (common/deadline.hpp):
//  * admission control — a bounded run queue with a shed policy decides
//    what happens when offered load outruns the device (ShedPolicy);
//  * circuit breakers — a per-tenant sliding window of deadline misses and
//    write-verify failures trips the tenant into degraded fallback service,
//    with half-open probing and exponential backoff before full restore
//    (CircuitBreaker);
//  * the hung-work watchdog — wall-clock detection of stuck chunks lives in
//    common/parallel.hpp; the serving loop marks watchdog-cancelled runs
//    shed rather than waiting on them.
// Everything here is deterministic (no real clock, no randomness): the same
// arrival schedule and config produce bitwise-identical outcomes, and all
// mutable state snapshots into the serving checkpoint.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace odin::core {

/// What happens to a run arriving while the bounded queue is full.
enum class ShedPolicy : std::int32_t {
  /// Admit anyway: the queue is effectively unbounded and callers absorb
  /// the backpressure as waiting time (sojourn grows without bound under
  /// sustained overload — the baseline the shedding policies improve on).
  kBlock = 0,
  /// Evict the longest-waiting queued run; it is served by the degraded
  /// fallback path immediately. Freshest work gets the full service.
  kShedOldest = 1,
  /// Reject the arriving run; it is served by the degraded fallback path.
  /// Work already queued keeps its full-service claim.
  kShedNewest = 2,
};

/// Circuit-breaker tuning. The window is a bitmask of the last `window`
/// full-service outcomes; `failure_threshold` failures among them open the
/// breaker for `hold_runs` of the tenant's runs, doubling (by
/// `backoff_factor`, capped at `hold_max_runs`) each time the half-open
/// probe fails again.
struct BreakerConfig {
  int window = 8;
  int failure_threshold = 4;
  int hold_runs = 4;
  double backoff_factor = 2.0;
  int hold_max_runs = 64;
};

/// Deadline-aware batch formation over the admission queue. Disabled (the
/// default) leaves the serving walk identical to unbatched serving; when
/// enabled, drain time groups up to `resolved_max_batch()` queued
/// same-tenant runs into one pipelined pass (arch::batched_inference_cost)
/// — but only while every member's estimated pipeline-exit time keeps its
/// SLO slack non-negative, so batching never trades one member's deadline
/// for throughput.
struct BatchingConfig {
  bool enabled = false;
  /// Upper bound on batch size; 0 defers to ODIN_BATCH_MAX (strict parse,
  /// default 8). Clamped to [1, 1024].
  int max_batch = 0;

  /// The effective cap after the env fallback and clamping.
  int resolved_max_batch() const;
};

/// Per-tenant serving SLOs plus the admission/breaker/watchdog knobs.
/// Disabled (the default) leaves the serving walk bit-identical to the
/// pre-resilience code path.
struct ResilienceConfig {
  bool enabled = false;
  /// Latency SLO applied to tenants without an explicit entry below.
  /// Non-finite or <= 0 means "no SLO": deadlines never expire and misses
  /// are never counted, but queueing/shedding still applies.
  double default_slo_s = std::numeric_limits<double>::infinity();
  /// Per-tenant SLO override, indexed like the tenant vector; entries
  /// <= 0 (or missing) fall back to default_slo_s.
  std::vector<double> tenant_slo_s;
  /// Bounded run-queue depth that triggers the shed policy.
  std::size_t queue_capacity = 8;
  ShedPolicy shed = ShedPolicy::kShedOldest;
  BreakerConfig breaker{};
  /// Simulated cost of one search evaluation (the paper's timing-overhead
  /// proxy made concrete): charged against the deadline and added to the
  /// run's service latency.
  double search_eval_cost_s = 0.0;
  /// Wall-clock bound per guarded run; the watchdog cancels the run's
  /// CancellationToken when real time exceeds it. 0 disables the watchdog
  /// (and with it the only nondeterministic input to the loop).
  double watchdog_bound_s = 0.0;
  /// Test hook (hung-worker simulation): the run with this global schedule
  /// index spins instead of inferencing until the watchdog cancels it.
  /// Negative disables.
  long long hang_run_index = -1;
  /// Deadline-aware batch formation over the admission queue.
  BatchingConfig batching{};
  /// Upper bound on raw sojourn samples retained per tenant. 0 (the
  /// default) keeps every sample — the pre-scenario behaviour, exact
  /// percentiles, and the bitwise pins that compare sojourn vectors. A
  /// positive cap bounds TenantStats memory during million-request
  /// campaigns: past the cap the vector stops growing and percentile
  /// reporting switches to the streaming P^2 sketch (core/sketch.hpp),
  /// which absorbs every sample either way.
  std::size_t sojourn_sample_cap = 0;

  double slo_s(std::size_t tenant) const noexcept {
    const double t = tenant < tenant_slo_s.size() ? tenant_slo_s[tenant] : 0.0;
    const double s = t > 0.0 ? t : default_slo_s;
    return s > 0.0 ? s : std::numeric_limits<double>::infinity();
  }
  bool has_slo(std::size_t tenant) const noexcept {
    return std::isfinite(slo_s(tenant));
  }
};

/// Per-tenant circuit breaker over full-service outcomes.
///
///   Closed --(threshold failures in window)--> Open
///   Open --(hold expires)--> HalfOpen (next run is the probe)
///   HalfOpen --(probe succeeds)--> Closed (window reset, backoff reset)
///   HalfOpen --(probe fails)--> Open (hold *= backoff_factor, capped)
///
/// allow() is called once per run of the tenant *before* serving: true
/// means serve fully, false means serve by the degraded fallback. record()
/// is called with the outcome of every full-service run. Deterministic;
/// snapshot()/restore() round-trip the complete state for checkpointing.
class CircuitBreaker {
 public:
  enum class State : std::int32_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  /// Complete mutable state, for the serving checkpoint.
  struct Snapshot {
    std::int32_t state = 0;
    std::uint64_t window_bits = 0;
    std::int32_t window_fill = 0;
    std::int32_t hold_left = 0;
    std::int32_t hold_runs = 0;
    std::int32_t opens = 0;
    std::int32_t reopens = 0;
    std::int32_t probes = 0;
    std::int32_t closes = 0;
  };

  explicit CircuitBreaker(BreakerConfig config = {});

  /// May this run get full service? Open-state calls advance the hold
  /// countdown; the call that exhausts it transitions to HalfOpen and
  /// returns true (that run is the probe).
  bool allow();

  /// Outcome of a full-service run (deadline met and write-verify clean).
  void record(bool success);

  /// Pre-open the breaker for `hold` of the tenant's runs — the degraded-
  /// admission regime a cross-mesh failover restores a tenant under
  /// (core/cluster.hpp): the restored tenant serves the fallback path until
  /// the hold drains and a half-open probe passes. Counts as an open; the
  /// backoff ladder restarts from the given hold.
  void force_open(int hold);

  State state() const noexcept { return state_; }
  int opens() const noexcept { return opens_; }      ///< Closed -> Open trips
  int reopens() const noexcept { return reopens_; }  ///< failed probes
  int probes() const noexcept { return probes_; }    ///< HalfOpen probe runs
  int closes() const noexcept { return closes_; }    ///< recoveries

  Snapshot snapshot() const;
  void restore(const Snapshot& s);

 private:
  void open_after_failure();

  BreakerConfig config_;
  State state_ = State::kClosed;
  std::uint64_t window_bits_ = 0;  ///< 1 bit per outcome, 1 = failure
  int window_fill_ = 0;
  int hold_left_ = 0;  ///< tenant runs left before the next probe
  int hold_runs_ = 0;  ///< current hold length (escalates on reopen)
  int opens_ = 0;
  int reopens_ = 0;
  int probes_ = 0;
  int closes_ = 0;
};

/// Nearest-rank percentile (p in [0, 100]) of `values`; 0 when empty.
/// Copies and sorts — intended for end-of-horizon reporting, not hot paths.
double percentile(std::vector<double> values, double p);

}  // namespace odin::core
