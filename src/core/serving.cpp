#include "core/serving.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <thread>

#include "arch/batching.hpp"
#include "common/cancellation.hpp"
#include "common/parallel.hpp"
#include "core/checkpoint.hpp"
#include "reram/fault_injection.hpp"

namespace odin::core {

void TenantStats::record_sojourn(double sojourn, std::size_t cap) {
  sojourn_sketch.add(sojourn);
  if (cap == 0 || sojourn_s.size() < cap)
    sojourn_s.push_back(sojourn);
  else
    ++sojourn_dropped;
}

double TenantStats::sojourn_percentile(double p) const {
  if (sojourn_dropped > 0) return sojourn_sketch.percentile(p);
  return percentile(sojourn_s, p);
}

double TenantStats::slack_percentile(double p) const {
  if (slo_s <= 0.0 || sojourn_s.empty()) return 0.0;
  return slo_s - sojourn_percentile(p);
}

common::EnergyLatency ServingResult::total() const noexcept {
  common::EnergyLatency t = programming;
  for (const TenantStats& s : tenants) t += s.inference + s.reprogram;
  return t;
}

int ServingResult::total_mismatches() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.mismatches;
  return n;
}

int ServingResult::total_runs() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.runs;
  return n;
}

int ServingResult::total_retries() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.retries;
  return n;
}

int ServingResult::total_degraded_runs() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.degraded_runs;
  return n;
}

int ServingResult::total_updates_accepted() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.updates_accepted;
  return n;
}

int ServingResult::total_updates_rejected() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.updates_rejected;
  return n;
}

int ServingResult::total_updates_rolled_back() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.updates_rolled_back;
  return n;
}

long long ServingResult::total_buffer_dropped() const noexcept {
  long long n = 0;
  for (const TenantStats& s : tenants) n += s.buffer_dropped;
  return n;
}

long long ServingResult::total_buffer_quarantined() const noexcept {
  long long n = 0;
  for (const TenantStats& s : tenants) n += s.buffer_quarantined;
  return n;
}

int ServingResult::total_shed_runs() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.shed_runs;
  return n;
}

int ServingResult::total_breaker_open_runs() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.breaker_open_runs;
  return n;
}

int ServingResult::total_deadline_misses() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.deadline_misses;
  return n;
}

int ServingResult::total_deferred_reprograms() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.deferred_reprograms;
  return n;
}

int ServingResult::total_searches_truncated() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.searches_truncated;
  return n;
}

int ServingResult::total_breaker_opens() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.breaker_opens;
  return n;
}

int ServingResult::total_breaker_reopens() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.breaker_reopens;
  return n;
}

int ServingResult::total_breaker_probes() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.breaker_probes;
  return n;
}

int ServingResult::total_breaker_closes() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.breaker_closes;
  return n;
}

int ServingResult::total_watchdog_stalls() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.watchdog_stalls;
  return n;
}

int ServingResult::total_batches_formed() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.batches_formed;
  return n;
}

int ServingResult::total_batch_members() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.batch_members;
  return n;
}

int ServingResult::total_batch_slo_capped() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.batch_slo_capped;
  return n;
}

int ServingResult::max_batch() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n = std::max(n, s.max_batch);
  return n;
}

double ServingResult::mean_batch_occupancy() const noexcept {
  const int formed = total_batches_formed();
  if (formed == 0) return 0.0;
  return static_cast<double>(total_batch_members()) /
         static_cast<double>(formed);
}

int ServingResult::total_rows_remapped() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.rows_remapped;
  return n;
}

int ServingResult::total_crossbars_retired() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.crossbars_retired;
  return n;
}

long long ServingResult::total_writes_leveled() const noexcept {
  long long n = 0;
  for (const TenantStats& s : tenants) n += s.writes_leveled;
  return n;
}

int ServingResult::total_wear_deferred_reprograms() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.wear_deferred_reprograms;
  return n;
}

int ServingResult::spares_remaining() const noexcept {
  // The pool is device-global: every served tenant's gauge reads the same
  // shared injector, so the smallest nonzero observation is the current
  // pool (tenants that never served report 0 and are skipped).
  int gauge = 0;
  for (const TenantStats& s : tenants)
    if (s.runs > 0 && s.spares_remaining > 0 &&
        (gauge == 0 || s.spares_remaining < gauge))
      gauge = s.spares_remaining;
  return gauge;
}

double ServingResult::total_service_s() const noexcept {
  double t = 0.0;
  for (const TenantStats& s : tenants) t += s.service_s;
  return t;
}

int ServingResult::total_pipelined_runs() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.pipelined_runs;
  return n;
}

namespace {

/// Contiguous segment boundaries over the run schedule.
std::vector<std::pair<std::size_t, std::size_t>> segment_bounds(
    std::size_t runs, int segments) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t per = runs / static_cast<std::size_t>(segments);
  std::size_t start = 0;
  for (int s = 0; s < segments; ++s) {
    const std::size_t end =
        s + 1 == segments ? runs : start + per;
    out.emplace_back(start, end);
    start = end;
  }
  return out;
}

common::EnergyLatency full_programming_cost(const ou::MappedModel& model,
                                            const ou::OuCostModel& cost) {
  common::EnergyLatency total;
  for (std::size_t j = 0; j < model.layer_count(); ++j)
    total += cost.reprogram_cost(model.mapping(j));
  return total;
}

/// Cost of one degraded fallback serve: plain inference at a fixed
/// homogeneous OU — no search, no reprogram, no controller involvement.
common::EnergyLatency fallback_serve_cost(const ou::MappedModel& model,
                                          const ou::OuCostModel& cost,
                                          ou::OuConfig ou) {
  common::EnergyLatency total;
  for (std::size_t j = 0; j < model.layer_count(); ++j)
    total += cost
                 .layer_cost(model.mapping(j).counts(ou), ou,
                             model.model().layers[j].activation_sparsity)
                 .total();
  return total;
}

}  // namespace

namespace {

/// One driver for both the fresh and the resumed walk. `resume` (optional)
/// positions the walk mid-horizon: totals start from the checkpointed
/// result, the first segment skips its (already charged) switch
/// programming, and the controller state is reinstated verbatim. Returns
/// nullopt only when a resume checkpoint fails to reinstate.
std::optional<ServingResult> serve_odin_impl(
    std::vector<const ou::MappedModel*>& tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    policy::OuPolicy initial_policy, const ServingConfig& config,
    reram::FaultInjector* faults, const ServingCheckpoint* resume) {
  assert(!tenants.empty());
  // Fleet service-time models (empty outside a multi-shard fleet). When
  // absent, every expression below reduces to the unmodeled walk — the
  // shards=1 bitwise pin depends on that.
  const bool modeled = !config.service_models.empty();
  assert(!modeled || config.service_models.size() == tenants.size());
  ServingResult result;
  result.label = "Odin";
  result.tenants.resize(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i)
    result.tenants[i].name = tenants[i]->model().name;

  const auto schedule =
      config.schedule.empty() ? run_schedule(config.horizon)
                              : config.schedule;
  assert(schedule.size() ==
         static_cast<std::size_t>(config.horizon.runs));
  std::vector<std::pair<std::size_t, std::size_t>> bounds;
  if (config.segment_sizes.empty()) {
    bounds = segment_bounds(schedule.size(), config.segments);
  } else {
    assert(config.segment_sizes.size() ==
           static_cast<std::size_t>(config.segments));
    std::size_t start = 0;
    for (std::size_t n : config.segment_sizes) {
      bounds.emplace_back(start, start + n);
      start += n;
    }
    assert(start == schedule.size());
  }

  // The serving walk itself is inherently sequential (the policy carries
  // its learning from segment to segment), but each segment's tenant-switch
  // programming cost is a pure per-layer sum — precompute the arms
  // concurrently and consume them in segment order.
  const auto switch_costs = common::parallel_transform(
      bounds.size(), 1, [&](std::size_t s) {
        return full_programming_cost(*tenants[s % tenants.size()], cost);
      });

  // --- Resilience serving state (inert while res.enabled is false) ---
  // The device is a single FIFO server: busy_until_s is when it frees up,
  // `pending` the bounded run queue of this segment's not-yet-served
  // arrivals. Breakers and the last-known-good fallback OU are per tenant
  // and persist across segments (and across checkpoints).
  const ResilienceConfig& res = config.resilience;
  // Batch formation (inert unless resilience AND batching are enabled):
  // drain time groups queued same-tenant runs into one pipelined pass.
  const bool batching = res.enabled && res.batching.enabled;
  const int batch_cap = batching ? res.batching.resolved_max_batch() : 1;
  std::vector<std::size_t> batch_scratch;      // members being formed
  std::vector<ou::OuConfig> batch_configs;     // per-layer pricing configs
  double busy_until_s = 0.0;
  std::deque<std::size_t> pending;
  std::vector<CircuitBreaker> breakers;
  std::vector<ou::OuConfig> fallback;
  std::optional<common::Watchdog> watchdog;
  common::CancellationToken token;
  if (res.enabled) {
    breakers.reserve(tenants.size());
    fallback.reserve(tenants.size());
    for (const ou::MappedModel* t : tenants) {
      breakers.emplace_back(res.breaker);
      fallback.push_back(ou::OuLevelGrid(t->crossbar_size()).min_config());
    }
    if (res.watchdog_bound_s > 0.0) watchdog.emplace();
  }

  // Wear-leveling segment baselines: the shared injector's counters at the
  // current segment's start, so the segment-end fold attributes only this
  // segment's deltas to its tenant. Restored from the checkpoint on a
  // mid-segment resume (the fold happens at segment end, after the resume).
  int seg_base_rows_remapped = 0;
  int seg_base_crossbars_retired = 0;
  long long seg_base_writes_leveled = 0;

  std::size_t s0 = 0;
  std::size_t i0 = 0;
  if (resume != nullptr) {
    result = resume->result;
    result.resumed = true;
    s0 = static_cast<std::size_t>(resume->segment);
    i0 = static_cast<std::size_t>(resume->next_run);
    if (s0 >= bounds.size() || i0 < bounds[s0].first ||
        i0 > bounds[s0].second)
      return std::nullopt;
    if (res.enabled) {
      busy_until_s = resume->busy_until_s;
      for (std::uint64_t j : resume->pending_runs)
        pending.push_back(static_cast<std::size_t>(j));
      for (std::size_t i = 0; i < tenants.size(); ++i)
        breakers[i].restore(resume->breakers[i]);
      fallback = resume->fallback_ous;
    }
    seg_base_rows_remapped = resume->wear_seg_base_rows_remapped;
    seg_base_crossbars_retired = resume->wear_seg_base_crossbars_retired;
    seg_base_writes_leveled = resume->wear_seg_base_writes_leveled;
  }
  if (res.enabled)
    for (std::size_t i = 0; i < tenants.size(); ++i)
      result.tenants[i].slo_s = res.has_slo(i) ? res.slo_s(i) : 0.0;

  std::unique_ptr<CheckpointWriter> writer;
  if (!config.checkpoint.base_path.empty())
    writer = std::make_unique<CheckpointWriter>(config.checkpoint.base_path);

  auto make_checkpoint = [&](std::size_t seg, std::size_t next_run,
                             OdinController& controller) {
    ServingCheckpoint ckpt;
    ckpt.segment = seg;
    ckpt.next_run = next_run;
    ckpt.segments = config.segments;
    ckpt.horizon_runs = config.horizon.runs;
    ckpt.t_start_s = config.horizon.t_start_s;
    ckpt.t_end_s = config.horizon.t_end_s;
    for (const ou::MappedModel* t : tenants)
      ckpt.tenant_names.push_back(t->model().name);
    ckpt.result = result;
    ckpt.controller = controller.snapshot();
    ckpt.fleet_shards = config.fleet_shards;
    ckpt.fleet_shard_index = config.fleet_shard_index;
    ckpt.has_service_models = modeled;
    ckpt.service_models = config.service_models;
    if (faults != nullptr) {
      ckpt.has_faults = true;
      ckpt.wear = faults->wear_state();
      const reram::WearLevelingParams& lv = faults->params().leveling;
      ckpt.leveling_enabled = lv.enabled;
      if (lv.enabled) {
        ckpt.leveling_spare_rows = lv.resolved_spare_rows();
        ckpt.leveling_wear_budget = lv.resolved_wear_budget();
      }
      ckpt.wear_seg_base_rows_remapped = seg_base_rows_remapped;
      ckpt.wear_seg_base_crossbars_retired = seg_base_crossbars_retired;
      ckpt.wear_seg_base_writes_leveled = seg_base_writes_leveled;
    }
    if (res.enabled) {
      ckpt.has_resilience = true;
      ckpt.shed_policy = static_cast<std::int32_t>(res.shed);
      ckpt.queue_capacity = res.queue_capacity;
      ckpt.busy_until_s = busy_until_s;
      for (std::size_t j : pending)
        ckpt.pending_runs.push_back(static_cast<std::uint64_t>(j));
      for (const CircuitBreaker& b : breakers)
        ckpt.breakers.push_back(b.snapshot());
      ckpt.fallback_ous = fallback;
      ckpt.batching_enabled = batching;
      ckpt.batch_cap = batch_cap;
      ckpt.sojourn_cap =
          static_cast<std::uint64_t>(res.sojourn_sample_cap);
    }
    return ckpt;
  };

  int invocation_runs = 0;  ///< runs served by THIS process (max_runs cap)
  int runs_since_ckpt = 0;
  bool stopped = false;

  policy::OuPolicy policy = std::move(initial_policy);
  for (std::size_t s = s0; s < bounds.size() && !stopped; ++s) {
    const std::size_t tenant_idx = s % tenants.size();
    const ou::MappedModel& tenant = *tenants[tenant_idx];
    TenantStats& stats = result.tenants[tenant_idx];
    const TenantServiceModel svc =
        modeled ? config.service_models[tenant_idx] : TenantServiceModel{};
    const bool resuming = resume != nullptr && s == s0;

    if (!resuming) {
      // Tenant switch: the incoming network's weights are programmed onto
      // the arrays (drift clock starts fresh at the segment's first run).
      // That programming is itself a wear campaign on the shared device.
      // A resumed first segment already paid this before the checkpoint
      // (its campaign is part of the replayed wear fingerprint).
      if (faults != nullptr) {
        // The switch campaign's wear belongs to the incoming tenant:
        // baseline the leveling counters before it runs.
        seg_base_rows_remapped = faults->rows_remapped();
        seg_base_crossbars_retired = faults->crossbars_retired();
        seg_base_writes_leveled = faults->writes_leveled();
      }
      result.programming += switch_costs[s];
      ++result.switches;
      if (faults != nullptr) faults->program_campaign();
    }

    OdinController controller(tenant, nonideal, cost, policy.clone(),
                              config.odin, faults);
    if (resuming) {
      if (!controller.restore(resume->controller)) return std::nullopt;
    } else {
      // Align the controller's drift clock with the programming moment.
      controller.reset_drift_clock(schedule[bounds[s].first]);
    }

    // --- Per-segment serving lambdas (resilience path) ---
    // Full service runs the controller (search + any reprogram) under the
    // tenant's deadline; fallback service bills a plain inference at the
    // tenant's last-known-good OU. Both advance the device's busy_until
    // clock, so shedding relieves overload by skipping the expensive parts
    // (reprogram campaigns and search), not by pretending work is free.
    const double slo = res.enabled
                           ? res.slo_s(tenant_idx)
                           : std::numeric_limits<double>::infinity();
    CircuitBreaker* breaker = res.enabled ? &breakers[tenant_idx] : nullptr;
    auto sync_breaker = [&] {
      stats.breaker_opens = breaker->opens();
      stats.breaker_reopens = breaker->reopens();
      stats.breaker_probes = breaker->probes();
      stats.breaker_closes = breaker->closes();
    };
    auto serve_fallback = [&](std::size_t j, bool shed) {
      const double t_arr = schedule[j];
      const double start = std::max(busy_until_s, t_arr);
      common::EnergyLatency c =
          fallback_serve_cost(tenant, cost, fallback[tenant_idx]);
      // Fallback serves still cross the shard's NoC (no pipeline credit:
      // the degraded path runs unoverlapped).
      if (modeled) c += svc.noc_extra;
      busy_until_s = start + c.latency_s;
      stats.inference += c;
      stats.service_s += c.latency_s;
      ++stats.runs;
      stats.record_sojourn(busy_until_s - t_arr, res.sojourn_sample_cap);
      if (shed)
        ++stats.shed_runs;
      else
        ++stats.breaker_open_runs;
    };
    auto serve_full = [&](std::size_t j) {
      const double t_arr = schedule[j];
      const double start = std::max(busy_until_s, t_arr);
      if (!breaker->allow()) {
        // Breaker holding open: degraded service, search skipped entirely.
        serve_fallback(j, false);
        sync_breaker();
        return;
      }
      token.reset();
      const bool guarded = watchdog.has_value();
      if (guarded)
        watchdog->arm(&token,
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::duration<double>(res.watchdog_bound_s)));
      RunResult run;
      bool hung = false;
      if (guarded && res.hang_run_index >= 0 &&
          static_cast<long long>(j) == res.hang_run_index) {
        // Hung-worker simulation: spin (with a failsafe so a broken
        // watchdog cannot hang the suite) until the watchdog cancels the
        // token, exactly like a stuck chunk that never returns.
        const auto failsafe =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (!token.cancelled() &&
               std::chrono::steady_clock::now() < failsafe)
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        hung = true;
      } else {
        common::Deadline deadline(slo - (start - t_arr),
                                  res.search_eval_cost_s,
                                  guarded ? &token : nullptr);
        run = controller.run_inference(start, &deadline);
      }
      const bool stalled = guarded && watchdog->disarm();
      if (stalled) ++stats.watchdog_stalls;
      if (hung) {
        // The run never reached the controller: serve it degraded, count
        // it shed, and let the breaker see the failure.
        serve_fallback(j, true);
        breaker->record(false);
        sync_breaker();
        return;
      }
      int evals = 0;
      for (const LayerDecision& d : run.decisions) evals += d.evaluations;
      double service =
          run.inference.latency_s + run.reprogram.latency_s +
          static_cast<double>(evals) * res.search_eval_cost_s;
      if (modeled) {
        // A primed pipeline (the device was still busy when this request
        // arrived) serves back-to-back inferences at the overlapped rate;
        // an idle device pays the full fill. NoC transit is charged either
        // way.
        const bool pipelined = start > t_arr && svc.pipeline_overlap < 1.0;
        if (pipelined) ++stats.pipelined_runs;
        service = run.inference.latency_s *
                      (pipelined ? svc.pipeline_overlap : 1.0) +
                  run.reprogram.latency_s +
                  static_cast<double>(evals) * res.search_eval_cost_s +
                  svc.noc_extra.latency_s;
        stats.inference += svc.noc_extra;
      }
      busy_until_s = start + service;
      stats.service_s += service;
      const double sojourn = busy_until_s - t_arr;
      stats.record_sojourn(sojourn, res.sojourn_sample_cap);
      stats.inference += run.inference;
      stats.reprogram += run.reprogram;
      stats.mismatches += run.mismatches;
      stats.degraded_runs += run.degraded ? 1 : 0;
      ++stats.runs;
      const bool miss = std::isfinite(slo) && sojourn > slo;
      if (miss) ++stats.deadline_misses;
      if (run.deadline_deferred_reprogram) ++stats.deferred_reprograms;
      if (run.deadline_stopped_retries) ++stats.deadline_stopped_retries;
      stats.searches_truncated += run.searches_truncated;
      // A crossbar retirement is the device migrating the tenant to a
      // fresh array — planned sparing, not a tenant failure; it must not
      // feed the breaker's failure window.
      const bool success = (!miss && !run.write_verify_failed && !stalled) ||
                           run.crossbar_retired;
      breaker->record(success);
      if (success && !run.decisions.empty())
        fallback[tenant_idx] = run.decisions.front().executed;
      sync_breaker();
    };
    // Would a batch of exactly `members` keep every member's SLO slack
    // non-negative? Estimated with the pipelined batch-cost model at the
    // tenant's last-known-good OU (the actual per-layer decisions are not
    // known until the leader's search runs); member k exits the pipeline
    // after fill + k bottleneck beats.
    auto batch_fits = [&](const std::vector<std::size_t>& members) {
      if (!std::isfinite(slo)) return true;
      const int b = static_cast<int>(members.size());
      const arch::BatchCost est = arch::batched_inference_cost(
          tenant, fallback[tenant_idx], cost, b);
      const double start = std::max(busy_until_s, schedule[members.back()]);
      for (int k = 0; k < b; ++k) {
        const double exit_s = start + est.member_exit_latency_s(k);
        if (exit_s - schedule[members[static_cast<std::size_t>(k)]] > slo)
          return false;
      }
      return true;
    };
    // One pipelined pass over `members` (all queued arrivals of this
    // segment's tenant, in arrival order). The leader run pays the
    // controller once — search, any reprogram, the deadline budget — and
    // its layer decisions price the whole batch through the pipelined
    // BatchCost model; members are billed their own pipeline-exit sojourn.
    auto serve_batch = [&](const std::vector<std::size_t>& members) {
      assert(!members.empty());
      const int b = static_cast<int>(members.size());
      ++stats.batches_formed;
      stats.batch_members += b;
      stats.max_batch = std::max(stats.max_batch, b);
      if (b == 1) {
        serve_full(members.front());
        return;
      }
      const double t_lead = schedule[members.front()];
      const double start = std::max(busy_until_s, schedule[members.back()]);
      if (!breaker->allow()) {
        // Breaker holding open: every member gets the degraded fallback
        // serve (no pipelined pass, no search).
        for (std::size_t j : members) serve_fallback(j, false);
        sync_breaker();
        return;
      }
      token.reset();
      const bool guarded = watchdog.has_value();
      if (guarded)
        watchdog->arm(&token,
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::duration<double>(res.watchdog_bound_s)));
      // The leader (longest-waiting member) has the tightest budget.
      common::Deadline deadline(slo - (start - t_lead),
                                res.search_eval_cost_s,
                                guarded ? &token : nullptr);
      RunResult run = controller.run_inference(start, &deadline);
      const bool stalled = guarded && watchdog->disarm();
      if (stalled) ++stats.watchdog_stalls;
      int evals = 0;
      for (const LayerDecision& d : run.decisions) evals += d.evaluations;
      // Search + reprogram happen once, before the pipeline fills.
      double pre =
          run.reprogram.latency_s +
          static_cast<double>(evals) * res.search_eval_cost_s;
      if (modeled) {
        // The batch's activations cross the NoC once per member; the
        // latency is pipelined behind the pass and charged up front.
        pre += svc.noc_extra.latency_s;
        stats.inference += common::EnergyLatency{
            svc.noc_extra.energy_j * static_cast<double>(b),
            svc.noc_extra.latency_s};
      }
      batch_configs.clear();
      if (run.decisions.size() == tenant.layer_count()) {
        for (const LayerDecision& d : run.decisions)
          batch_configs.push_back(d.executed);
      } else {
        batch_configs.assign(tenant.layer_count(), fallback[tenant_idx]);
      }
      const arch::BatchCost bc =
          arch::batched_inference_cost(tenant, batch_configs, cost, b);
      busy_until_s = start + pre + bc.total.latency_s;
      stats.service_s += pre + bc.total.latency_s;
      stats.inference += bc.total;
      stats.reprogram += run.reprogram;
      stats.mismatches += run.mismatches;
      stats.degraded_runs += run.degraded ? 1 : 0;
      bool any_miss = false;
      for (int k = 0; k < b; ++k) {
        const double sojourn = start + pre + bc.member_exit_latency_s(k) -
                               schedule[members[static_cast<std::size_t>(k)]];
        stats.record_sojourn(sojourn, res.sojourn_sample_cap);
        ++stats.runs;
        if (std::isfinite(slo) && sojourn > slo) {
          ++stats.deadline_misses;
          any_miss = true;
        }
      }
      if (run.deadline_deferred_reprogram) ++stats.deferred_reprograms;
      if (run.deadline_stopped_retries) ++stats.deadline_stopped_retries;
      stats.searches_truncated += run.searches_truncated;
      // Retirement/migration is planned sparing, not failure (see above).
      const bool success =
          (!any_miss && !run.write_verify_failed && !stalled) ||
          run.crossbar_retired;
      breaker->record(success);
      if (success && !run.decisions.empty())
        fallback[tenant_idx] = run.decisions.front().executed;
      sync_breaker();
    };
    auto drain_queue = [&](double until_s) {
      while (!pending.empty() && busy_until_s <= until_s) {
        if (!batching) {
          const std::size_t j = pending.front();
          pending.pop_front();
          serve_full(j);
          continue;
        }
        // Grow the batch from the queue front (arrival order) until the
        // cap, the queue, or a member's deadline slack stops it. The
        // leader always ships — a single run that will miss anyway is
        // serve_full's problem, not formation's.
        batch_scratch.clear();
        batch_scratch.push_back(pending.front());
        pending.pop_front();
        bool slo_capped = false;
        while (static_cast<int>(batch_scratch.size()) < batch_cap &&
               !pending.empty()) {
          batch_scratch.push_back(pending.front());  // candidate member
          if (!batch_fits(batch_scratch)) {
            batch_scratch.pop_back();
            slo_capped = true;
            break;
          }
          pending.pop_front();
        }
        if (slo_capped) ++stats.batch_slo_capped;
        serve_batch(batch_scratch);
      }
    };

    const std::size_t seg_start = resuming ? i0 : bounds[s].first;
    for (std::size_t i = seg_start; i < bounds[s].second; ++i) {
      if (!res.enabled) {
        const RunResult run = controller.run_inference(schedule[i]);
        stats.inference += run.inference;
        stats.reprogram += run.reprogram;
        stats.mismatches += run.mismatches;
        stats.degraded_runs += run.degraded ? 1 : 0;
        double service = run.inference.latency_s + run.reprogram.latency_s;
        if (modeled) {
          // No admission queue here, so back-to-back segment traffic always
          // runs with the pipeline primed.
          stats.inference += svc.noc_extra;
          service = run.inference.latency_s * svc.pipeline_overlap +
                    run.reprogram.latency_s + svc.noc_extra.latency_s;
          if (svc.pipeline_overlap < 1.0) ++stats.pipelined_runs;
        }
        stats.service_s += service;
        ++stats.runs;
      } else {
        // Event-driven FIFO: serve whatever the device finished before
        // this arrival, enqueue it, shed on overflow, then serve it
        // immediately if the device is idle. Serves happen in arrival
        // order, so the walk stays deterministic and resumable.
        const double t_arr = schedule[i];
        drain_queue(t_arr);
        pending.push_back(i);
        if (pending.size() > res.queue_capacity) {
          switch (res.shed) {
            case ShedPolicy::kBlock:
              break;  // unbounded queue: callers absorb the backpressure
            case ShedPolicy::kShedOldest: {
              const std::size_t j = pending.front();
              pending.pop_front();
              serve_fallback(j, true);
              break;
            }
            case ShedPolicy::kShedNewest: {
              const std::size_t j = pending.back();
              pending.pop_back();
              serve_fallback(j, true);
              break;
            }
          }
        }
        drain_queue(t_arr);
      }
      ++invocation_runs;
      ++runs_since_ckpt;

      // The horizon's very last run needs no checkpoint; everything else
      // checkpoints on the period, and a max_runs stop forces a final
      // write so the simulated crash loses nothing.
      const bool horizon_done =
          s + 1 == bounds.size() && i + 1 == bounds[s].second;
      const bool budget_hit =
          config.max_runs > 0 && invocation_runs >= config.max_runs;
      const bool periodic = writer != nullptr &&
                            config.checkpoint.every_runs > 0 &&
                            runs_since_ckpt >= config.checkpoint.every_runs;
      if (!horizon_done && (budget_hit || periodic)) {
        if (writer != nullptr) {
          ServingCheckpoint ckpt = make_checkpoint(s, i + 1, controller);
          writer->write(ckpt);
          runs_since_ckpt = 0;
        }
        if (budget_hit) {
          // Partial return: the in-flight segment's controller counters
          // are not folded in (they are accounted at segment end, which
          // this segment has not reached); the checkpoint carries them.
          stopped = true;
          break;
        }
      }
    }
    if (stopped) break;
    // Segment end is a tenant switch: the outgoing tenant's queue drains
    // completely before the device reprograms for the next one.
    if (res.enabled)
      drain_queue(std::numeric_limits<double>::infinity());
    stats.reprograms += controller.reprogram_count();
    stats.retries += controller.retry_count();
    stats.updates_accepted += controller.updates_accepted();
    stats.updates_rejected += controller.updates_rejected();
    stats.updates_rolled_back += controller.updates_rolled_back();
    stats.buffer_dropped +=
        static_cast<long long>(controller.buffer_dropped());
    stats.buffer_quarantined +=
        static_cast<long long>(controller.buffer_quarantined());
    stats.wear_deferred_reprograms += controller.wear_deferred_reprograms();
    if (faults != nullptr) {
      // Leveling counters are device-global; attribute this segment's delta
      // to the tenant that was serving while it accrued.
      stats.rows_remapped += faults->rows_remapped() - seg_base_rows_remapped;
      stats.crossbars_retired +=
          faults->crossbars_retired() - seg_base_crossbars_retired;
      stats.writes_leveled +=
          faults->writes_leveled() - seg_base_writes_leveled;
      stats.spares_remaining = faults->spares_remaining();
    }
    result.policy_updates += controller.update_count();
    policy = controller.policy().clone();  // carry the learning forward
  }
  return result;
}

}  // namespace

ServingResult serve_with_odin(
    std::vector<const ou::MappedModel*> tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    policy::OuPolicy initial_policy, const ServingConfig& config,
    reram::FaultInjector* faults) {
  auto result = serve_odin_impl(tenants, nonideal, cost,
                                std::move(initial_policy), config, faults,
                                nullptr);
  assert(result.has_value());  // only a resume checkpoint can fail
  return std::move(*result);
}

std::optional<ServingResult> resume_with_odin(
    std::vector<const ou::MappedModel*> tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    const ServingCheckpoint& ckpt, const ServingConfig& config,
    reram::FaultInjector* faults) {
  assert(!tenants.empty());
  // Fingerprint validation: the checkpoint must have been taken under this
  // exact horizon/segment layout and tenant set.
  if (ckpt.segments != config.segments ||
      ckpt.horizon_runs != config.horizon.runs ||
      ckpt.t_start_s != config.horizon.t_start_s ||
      ckpt.t_end_s != config.horizon.t_end_s)
    return std::nullopt;
  if (ckpt.tenant_names.size() != tenants.size()) return std::nullopt;
  for (std::size_t i = 0; i < tenants.size(); ++i)
    if (ckpt.tenant_names[i] != tenants[i]->model().name)
      return std::nullopt;
  if (ckpt.result.tenants.size() != tenants.size()) return std::nullopt;
  // Resilience layout: the queue/breaker state only transfers onto the
  // same admission geometry it was captured under.
  if (ckpt.has_resilience != config.resilience.enabled) return std::nullopt;
  if (config.resilience.enabled) {
    if (ckpt.shed_policy !=
            static_cast<std::int32_t>(config.resilience.shed) ||
        ckpt.queue_capacity != config.resilience.queue_capacity)
      return std::nullopt;
    if (ckpt.breakers.size() != tenants.size() ||
        ckpt.fallback_ous.size() != tenants.size())
      return std::nullopt;
    // Batch formation changes which runs share a pipelined pass, so the
    // queue state only transfers onto the same batching geometry.
    if (ckpt.batching_enabled != config.resilience.batching.enabled)
      return std::nullopt;
    if (config.resilience.batching.enabled &&
        ckpt.batch_cap != config.resilience.batching.resolved_max_batch())
      return std::nullopt;
    // A different retention cap would make the resumed walk's sojourn
    // vectors diverge from the uninterrupted run's, breaking the bitwise
    // resume guarantee (v6 frames carry the cap; older frames decode as 0,
    // matching the only cap that existed when they were written).
    if (ckpt.sojourn_cap !=
        static_cast<std::uint64_t>(config.resilience.sojourn_sample_cap))
      return std::nullopt;
  }
  // Fleet geometry: a shard's checkpoint only transfers onto the same
  // shard of the same-size fleet, and the placement-derived service models
  // must match exactly (a placement change alters every service time).
  if (ckpt.fleet_shards != config.fleet_shards ||
      ckpt.fleet_shard_index != config.fleet_shard_index)
    return std::nullopt;
  if (ckpt.has_service_models != !config.service_models.empty())
    return std::nullopt;
  if (ckpt.has_service_models) {
    if (ckpt.service_models.size() != config.service_models.size())
      return std::nullopt;
    for (std::size_t i = 0; i < config.service_models.size(); ++i) {
      const TenantServiceModel& a = ckpt.service_models[i];
      const TenantServiceModel& b = config.service_models[i];
      if (a.noc_extra.energy_j != b.noc_extra.energy_j ||
          a.noc_extra.latency_s != b.noc_extra.latency_s ||
          a.pipeline_overlap != b.pipeline_overlap)
        return std::nullopt;
    }
  }
  // Device wear: replay the campaign history on the caller's freshly
  // seeded injector and verify the fingerprint. Leveling changes how a
  // campaign count maps to wear, so the knobs must match too.
  if (ckpt.has_faults != (faults != nullptr)) return std::nullopt;
  if (faults != nullptr) {
    const reram::WearLevelingParams& lv = faults->params().leveling;
    if (ckpt.leveling_enabled != lv.enabled) return std::nullopt;
    if (lv.enabled &&
        (ckpt.leveling_spare_rows != lv.resolved_spare_rows() ||
         ckpt.leveling_wear_budget != lv.resolved_wear_budget()))
      return std::nullopt;
  }
  if (faults != nullptr && !faults->fast_forward(ckpt.wear))
    return std::nullopt;

  const ou::OuLevelGrid grid(tenants.front()->crossbar_size());
  return serve_odin_impl(tenants, nonideal, cost, policy::OuPolicy(grid),
                         config, faults, &ckpt);
}

ServingResult serve_with_homogeneous(
    std::vector<const ou::MappedModel*> tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    ou::OuConfig ou, const ServingConfig& config,
    reram::FaultInjector* faults) {
  assert(!tenants.empty());
  ServingResult result;
  result.label = ou.to_string();
  result.tenants.resize(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i)
    result.tenants[i].name = tenants[i]->model().name;

  const auto schedule = run_schedule(config.horizon);
  const auto bounds = segment_bounds(schedule.size(), config.segments);

  // With a fixed OU there is no state carried between segments: every
  // segment is an independent arm. Each arm produces a partial TenantStats
  // plus its switch programming cost; partials combine in segment order, so
  // the totals do not depend on scheduling (the single-threaded path folds
  // the very same per-segment partials). A fault injector is shared wear
  // state — every campaign changes what later segments see — so with one
  // attached the walk must be sequential in segment order instead.
  struct SegmentOutcome {
    common::EnergyLatency programming;
    TenantStats partial;
  };
  auto run_segment = [&](std::size_t s) {
    const ou::MappedModel& tenant = *tenants[s % tenants.size()];
    SegmentOutcome seg;
    seg.programming = full_programming_cost(tenant, cost);
    if (faults != nullptr) faults->program_campaign();  // switch programming
    HomogeneousRunner runner(tenant, nonideal, cost, ou, true, faults);
    runner.reset_drift_clock(schedule[bounds[s].first]);
    for (std::size_t i = bounds[s].first; i < bounds[s].second; ++i) {
      const BaselineRunResult run = runner.run_inference(schedule[i]);
      seg.partial.inference += run.inference;
      seg.partial.reprogram += run.reprogram;
      ++seg.partial.runs;
    }
    seg.partial.reprograms = runner.reprogram_count();
    return seg;
  };
  std::vector<SegmentOutcome> outcomes;
  if (faults != nullptr) {
    outcomes.reserve(bounds.size());
    for (std::size_t s = 0; s < bounds.size(); ++s)
      outcomes.push_back(run_segment(s));
  } else {
    outcomes = common::parallel_transform(bounds.size(), 1, run_segment);
  }
  for (std::size_t s = 0; s < bounds.size(); ++s) {
    TenantStats& stats = result.tenants[s % tenants.size()];
    result.programming += outcomes[s].programming;
    ++result.switches;
    stats.inference += outcomes[s].partial.inference;
    stats.reprogram += outcomes[s].partial.reprogram;
    stats.runs += outcomes[s].partial.runs;
    stats.reprograms += outcomes[s].partial.reprograms;
  }
  return result;
}

}  // namespace odin::core
