#include "core/serving.hpp"

#include <cassert>
#include <memory>

#include "common/parallel.hpp"
#include "core/checkpoint.hpp"
#include "reram/fault_injection.hpp"

namespace odin::core {

common::EnergyLatency ServingResult::total() const noexcept {
  common::EnergyLatency t = programming;
  for (const TenantStats& s : tenants) t += s.inference + s.reprogram;
  return t;
}

int ServingResult::total_mismatches() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.mismatches;
  return n;
}

int ServingResult::total_runs() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.runs;
  return n;
}

int ServingResult::total_retries() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.retries;
  return n;
}

int ServingResult::total_degraded_runs() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.degraded_runs;
  return n;
}

int ServingResult::total_updates_accepted() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.updates_accepted;
  return n;
}

int ServingResult::total_updates_rejected() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.updates_rejected;
  return n;
}

int ServingResult::total_updates_rolled_back() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.updates_rolled_back;
  return n;
}

long long ServingResult::total_buffer_dropped() const noexcept {
  long long n = 0;
  for (const TenantStats& s : tenants) n += s.buffer_dropped;
  return n;
}

long long ServingResult::total_buffer_quarantined() const noexcept {
  long long n = 0;
  for (const TenantStats& s : tenants) n += s.buffer_quarantined;
  return n;
}

namespace {

/// Contiguous segment boundaries over the run schedule.
std::vector<std::pair<std::size_t, std::size_t>> segment_bounds(
    std::size_t runs, int segments) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t per = runs / static_cast<std::size_t>(segments);
  std::size_t start = 0;
  for (int s = 0; s < segments; ++s) {
    const std::size_t end =
        s + 1 == segments ? runs : start + per;
    out.emplace_back(start, end);
    start = end;
  }
  return out;
}

common::EnergyLatency full_programming_cost(const ou::MappedModel& model,
                                            const ou::OuCostModel& cost) {
  common::EnergyLatency total;
  for (std::size_t j = 0; j < model.layer_count(); ++j)
    total += cost.reprogram_cost(model.mapping(j));
  return total;
}

}  // namespace

namespace {

/// One driver for both the fresh and the resumed walk. `resume` (optional)
/// positions the walk mid-horizon: totals start from the checkpointed
/// result, the first segment skips its (already charged) switch
/// programming, and the controller state is reinstated verbatim. Returns
/// nullopt only when a resume checkpoint fails to reinstate.
std::optional<ServingResult> serve_odin_impl(
    std::vector<const ou::MappedModel*>& tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    policy::OuPolicy initial_policy, const ServingConfig& config,
    reram::FaultInjector* faults, const ServingCheckpoint* resume) {
  assert(!tenants.empty());
  ServingResult result;
  result.label = "Odin";
  result.tenants.resize(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i)
    result.tenants[i].name = tenants[i]->model().name;

  const auto schedule = run_schedule(config.horizon);
  const auto bounds =
      segment_bounds(schedule.size(), config.segments);

  // The serving walk itself is inherently sequential (the policy carries
  // its learning from segment to segment), but each segment's tenant-switch
  // programming cost is a pure per-layer sum — precompute the arms
  // concurrently and consume them in segment order.
  const auto switch_costs = common::parallel_transform(
      bounds.size(), 1, [&](std::size_t s) {
        return full_programming_cost(*tenants[s % tenants.size()], cost);
      });

  std::size_t s0 = 0;
  std::size_t i0 = 0;
  if (resume != nullptr) {
    result = resume->result;
    result.resumed = true;
    s0 = static_cast<std::size_t>(resume->segment);
    i0 = static_cast<std::size_t>(resume->next_run);
    if (s0 >= bounds.size() || i0 < bounds[s0].first ||
        i0 > bounds[s0].second)
      return std::nullopt;
  }

  std::unique_ptr<CheckpointWriter> writer;
  if (!config.checkpoint.base_path.empty())
    writer = std::make_unique<CheckpointWriter>(config.checkpoint.base_path);

  auto make_checkpoint = [&](std::size_t seg, std::size_t next_run,
                             OdinController& controller) {
    ServingCheckpoint ckpt;
    ckpt.segment = seg;
    ckpt.next_run = next_run;
    ckpt.segments = config.segments;
    ckpt.horizon_runs = config.horizon.runs;
    ckpt.t_start_s = config.horizon.t_start_s;
    ckpt.t_end_s = config.horizon.t_end_s;
    for (const ou::MappedModel* t : tenants)
      ckpt.tenant_names.push_back(t->model().name);
    ckpt.result = result;
    ckpt.controller = controller.snapshot();
    if (faults != nullptr) {
      ckpt.has_faults = true;
      ckpt.wear = faults->wear_state();
    }
    return ckpt;
  };

  int invocation_runs = 0;  ///< runs served by THIS process (max_runs cap)
  int runs_since_ckpt = 0;
  bool stopped = false;

  policy::OuPolicy policy = std::move(initial_policy);
  for (std::size_t s = s0; s < bounds.size() && !stopped; ++s) {
    const std::size_t tenant_idx = s % tenants.size();
    const ou::MappedModel& tenant = *tenants[tenant_idx];
    TenantStats& stats = result.tenants[tenant_idx];
    const bool resuming = resume != nullptr && s == s0;

    if (!resuming) {
      // Tenant switch: the incoming network's weights are programmed onto
      // the arrays (drift clock starts fresh at the segment's first run).
      // That programming is itself a wear campaign on the shared device.
      // A resumed first segment already paid this before the checkpoint
      // (its campaign is part of the replayed wear fingerprint).
      result.programming += switch_costs[s];
      ++result.switches;
      if (faults != nullptr) faults->program_campaign();
    }

    OdinController controller(tenant, nonideal, cost, policy.clone(),
                              config.odin, faults);
    if (resuming) {
      if (!controller.restore(resume->controller)) return std::nullopt;
    } else {
      // Align the controller's drift clock with the programming moment.
      controller.reset_drift_clock(schedule[bounds[s].first]);
    }

    const std::size_t seg_start = resuming ? i0 : bounds[s].first;
    for (std::size_t i = seg_start; i < bounds[s].second; ++i) {
      const RunResult run = controller.run_inference(schedule[i]);
      stats.inference += run.inference;
      stats.reprogram += run.reprogram;
      stats.mismatches += run.mismatches;
      stats.degraded_runs += run.degraded ? 1 : 0;
      ++stats.runs;
      ++invocation_runs;
      ++runs_since_ckpt;

      // The horizon's very last run needs no checkpoint; everything else
      // checkpoints on the period, and a max_runs stop forces a final
      // write so the simulated crash loses nothing.
      const bool horizon_done =
          s + 1 == bounds.size() && i + 1 == bounds[s].second;
      const bool budget_hit =
          config.max_runs > 0 && invocation_runs >= config.max_runs;
      const bool periodic = writer != nullptr &&
                            config.checkpoint.every_runs > 0 &&
                            runs_since_ckpt >= config.checkpoint.every_runs;
      if (!horizon_done && (budget_hit || periodic)) {
        if (writer != nullptr) {
          ServingCheckpoint ckpt = make_checkpoint(s, i + 1, controller);
          writer->write(ckpt);
          runs_since_ckpt = 0;
        }
        if (budget_hit) {
          // Partial return: the in-flight segment's controller counters
          // are not folded in (they are accounted at segment end, which
          // this segment has not reached); the checkpoint carries them.
          stopped = true;
          break;
        }
      }
    }
    if (stopped) break;
    stats.reprograms += controller.reprogram_count();
    stats.retries += controller.retry_count();
    stats.updates_accepted += controller.updates_accepted();
    stats.updates_rejected += controller.updates_rejected();
    stats.updates_rolled_back += controller.updates_rolled_back();
    stats.buffer_dropped +=
        static_cast<long long>(controller.buffer_dropped());
    stats.buffer_quarantined +=
        static_cast<long long>(controller.buffer_quarantined());
    result.policy_updates += controller.update_count();
    policy = controller.policy().clone();  // carry the learning forward
  }
  return result;
}

}  // namespace

ServingResult serve_with_odin(
    std::vector<const ou::MappedModel*> tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    policy::OuPolicy initial_policy, const ServingConfig& config,
    reram::FaultInjector* faults) {
  auto result = serve_odin_impl(tenants, nonideal, cost,
                                std::move(initial_policy), config, faults,
                                nullptr);
  assert(result.has_value());  // only a resume checkpoint can fail
  return std::move(*result);
}

std::optional<ServingResult> resume_with_odin(
    std::vector<const ou::MappedModel*> tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    const ServingCheckpoint& ckpt, const ServingConfig& config,
    reram::FaultInjector* faults) {
  assert(!tenants.empty());
  // Fingerprint validation: the checkpoint must have been taken under this
  // exact horizon/segment layout and tenant set.
  if (ckpt.segments != config.segments ||
      ckpt.horizon_runs != config.horizon.runs ||
      ckpt.t_start_s != config.horizon.t_start_s ||
      ckpt.t_end_s != config.horizon.t_end_s)
    return std::nullopt;
  if (ckpt.tenant_names.size() != tenants.size()) return std::nullopt;
  for (std::size_t i = 0; i < tenants.size(); ++i)
    if (ckpt.tenant_names[i] != tenants[i]->model().name)
      return std::nullopt;
  if (ckpt.result.tenants.size() != tenants.size()) return std::nullopt;
  // Device wear: replay the campaign history on the caller's freshly
  // seeded injector and verify the fingerprint.
  if (ckpt.has_faults != (faults != nullptr)) return std::nullopt;
  if (faults != nullptr && !faults->fast_forward(ckpt.wear))
    return std::nullopt;

  const ou::OuLevelGrid grid(tenants.front()->crossbar_size());
  return serve_odin_impl(tenants, nonideal, cost, policy::OuPolicy(grid),
                         config, faults, &ckpt);
}

ServingResult serve_with_homogeneous(
    std::vector<const ou::MappedModel*> tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    ou::OuConfig ou, const ServingConfig& config,
    reram::FaultInjector* faults) {
  assert(!tenants.empty());
  ServingResult result;
  result.label = ou.to_string();
  result.tenants.resize(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i)
    result.tenants[i].name = tenants[i]->model().name;

  const auto schedule = run_schedule(config.horizon);
  const auto bounds = segment_bounds(schedule.size(), config.segments);

  // With a fixed OU there is no state carried between segments: every
  // segment is an independent arm. Each arm produces a partial TenantStats
  // plus its switch programming cost; partials combine in segment order, so
  // the totals do not depend on scheduling (the single-threaded path folds
  // the very same per-segment partials). A fault injector is shared wear
  // state — every campaign changes what later segments see — so with one
  // attached the walk must be sequential in segment order instead.
  struct SegmentOutcome {
    common::EnergyLatency programming;
    TenantStats partial;
  };
  auto run_segment = [&](std::size_t s) {
    const ou::MappedModel& tenant = *tenants[s % tenants.size()];
    SegmentOutcome seg;
    seg.programming = full_programming_cost(tenant, cost);
    if (faults != nullptr) faults->program_campaign();  // switch programming
    HomogeneousRunner runner(tenant, nonideal, cost, ou, true, faults);
    runner.reset_drift_clock(schedule[bounds[s].first]);
    for (std::size_t i = bounds[s].first; i < bounds[s].second; ++i) {
      const BaselineRunResult run = runner.run_inference(schedule[i]);
      seg.partial.inference += run.inference;
      seg.partial.reprogram += run.reprogram;
      ++seg.partial.runs;
    }
    seg.partial.reprograms = runner.reprogram_count();
    return seg;
  };
  std::vector<SegmentOutcome> outcomes;
  if (faults != nullptr) {
    outcomes.reserve(bounds.size());
    for (std::size_t s = 0; s < bounds.size(); ++s)
      outcomes.push_back(run_segment(s));
  } else {
    outcomes = common::parallel_transform(bounds.size(), 1, run_segment);
  }
  for (std::size_t s = 0; s < bounds.size(); ++s) {
    TenantStats& stats = result.tenants[s % tenants.size()];
    result.programming += outcomes[s].programming;
    ++result.switches;
    stats.inference += outcomes[s].partial.inference;
    stats.reprogram += outcomes[s].partial.reprogram;
    stats.runs += outcomes[s].partial.runs;
    stats.reprograms += outcomes[s].partial.reprograms;
  }
  return result;
}

}  // namespace odin::core
