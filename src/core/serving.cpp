#include "core/serving.hpp"

#include <cassert>

#include "common/parallel.hpp"
#include "reram/fault_injection.hpp"

namespace odin::core {

common::EnergyLatency ServingResult::total() const noexcept {
  common::EnergyLatency t = programming;
  for (const TenantStats& s : tenants) t += s.inference + s.reprogram;
  return t;
}

int ServingResult::total_mismatches() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.mismatches;
  return n;
}

int ServingResult::total_runs() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.runs;
  return n;
}

int ServingResult::total_retries() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.retries;
  return n;
}

int ServingResult::total_degraded_runs() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.degraded_runs;
  return n;
}

namespace {

/// Contiguous segment boundaries over the run schedule.
std::vector<std::pair<std::size_t, std::size_t>> segment_bounds(
    std::size_t runs, int segments) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t per = runs / static_cast<std::size_t>(segments);
  std::size_t start = 0;
  for (int s = 0; s < segments; ++s) {
    const std::size_t end =
        s + 1 == segments ? runs : start + per;
    out.emplace_back(start, end);
    start = end;
  }
  return out;
}

common::EnergyLatency full_programming_cost(const ou::MappedModel& model,
                                            const ou::OuCostModel& cost) {
  common::EnergyLatency total;
  for (std::size_t j = 0; j < model.layer_count(); ++j)
    total += cost.reprogram_cost(model.mapping(j));
  return total;
}

}  // namespace

ServingResult serve_with_odin(
    std::vector<const ou::MappedModel*> tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    policy::OuPolicy initial_policy, const ServingConfig& config,
    reram::FaultInjector* faults) {
  assert(!tenants.empty());
  ServingResult result;
  result.label = "Odin";
  result.tenants.resize(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i)
    result.tenants[i].name = tenants[i]->model().name;

  const auto schedule = run_schedule(config.horizon);
  const auto bounds =
      segment_bounds(schedule.size(), config.segments);

  // The serving walk itself is inherently sequential (the policy carries
  // its learning from segment to segment), but each segment's tenant-switch
  // programming cost is a pure per-layer sum — precompute the arms
  // concurrently and consume them in segment order.
  const auto switch_costs = common::parallel_transform(
      bounds.size(), 1, [&](std::size_t s) {
        return full_programming_cost(*tenants[s % tenants.size()], cost);
      });

  policy::OuPolicy policy = std::move(initial_policy);
  for (std::size_t s = 0; s < bounds.size(); ++s) {
    const std::size_t tenant_idx = s % tenants.size();
    const ou::MappedModel& tenant = *tenants[tenant_idx];
    TenantStats& stats = result.tenants[tenant_idx];

    // Tenant switch: the incoming network's weights are programmed onto
    // the arrays (drift clock starts fresh at the segment's first run).
    // That programming is itself a wear campaign on the shared device.
    result.programming += switch_costs[s];
    ++result.switches;
    if (faults != nullptr) faults->program_campaign();

    OdinController controller(tenant, nonideal, cost, policy.clone(),
                              config.odin, faults);
    // Align the controller's drift clock with the programming moment.
    controller.reset_drift_clock(schedule[bounds[s].first]);
    for (std::size_t i = bounds[s].first; i < bounds[s].second; ++i) {
      const RunResult run = controller.run_inference(schedule[i]);
      stats.inference += run.inference;
      stats.reprogram += run.reprogram;
      stats.mismatches += run.mismatches;
      stats.degraded_runs += run.degraded ? 1 : 0;
      ++stats.runs;
    }
    stats.reprograms += controller.reprogram_count();
    stats.retries += controller.retry_count();
    result.policy_updates += controller.update_count();
    policy = controller.policy().clone();  // carry the learning forward
  }
  return result;
}

ServingResult serve_with_homogeneous(
    std::vector<const ou::MappedModel*> tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    ou::OuConfig ou, const ServingConfig& config,
    reram::FaultInjector* faults) {
  assert(!tenants.empty());
  ServingResult result;
  result.label = ou.to_string();
  result.tenants.resize(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i)
    result.tenants[i].name = tenants[i]->model().name;

  const auto schedule = run_schedule(config.horizon);
  const auto bounds = segment_bounds(schedule.size(), config.segments);

  // With a fixed OU there is no state carried between segments: every
  // segment is an independent arm. Each arm produces a partial TenantStats
  // plus its switch programming cost; partials combine in segment order, so
  // the totals do not depend on scheduling (the single-threaded path folds
  // the very same per-segment partials). A fault injector is shared wear
  // state — every campaign changes what later segments see — so with one
  // attached the walk must be sequential in segment order instead.
  struct SegmentOutcome {
    common::EnergyLatency programming;
    TenantStats partial;
  };
  auto run_segment = [&](std::size_t s) {
    const ou::MappedModel& tenant = *tenants[s % tenants.size()];
    SegmentOutcome seg;
    seg.programming = full_programming_cost(tenant, cost);
    if (faults != nullptr) faults->program_campaign();  // switch programming
    HomogeneousRunner runner(tenant, nonideal, cost, ou, true, faults);
    runner.reset_drift_clock(schedule[bounds[s].first]);
    for (std::size_t i = bounds[s].first; i < bounds[s].second; ++i) {
      const BaselineRunResult run = runner.run_inference(schedule[i]);
      seg.partial.inference += run.inference;
      seg.partial.reprogram += run.reprogram;
      ++seg.partial.runs;
    }
    seg.partial.reprograms = runner.reprogram_count();
    return seg;
  };
  std::vector<SegmentOutcome> outcomes;
  if (faults != nullptr) {
    outcomes.reserve(bounds.size());
    for (std::size_t s = 0; s < bounds.size(); ++s)
      outcomes.push_back(run_segment(s));
  } else {
    outcomes = common::parallel_transform(bounds.size(), 1, run_segment);
  }
  for (std::size_t s = 0; s < bounds.size(); ++s) {
    TenantStats& stats = result.tenants[s % tenants.size()];
    result.programming += outcomes[s].programming;
    ++result.switches;
    stats.inference += outcomes[s].partial.inference;
    stats.reprogram += outcomes[s].partial.reprogram;
    stats.runs += outcomes[s].partial.runs;
    stats.reprograms += outcomes[s].partial.reprograms;
  }
  return result;
}

}  // namespace odin::core
