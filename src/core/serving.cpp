#include "core/serving.hpp"

#include <cassert>

namespace odin::core {

common::EnergyLatency ServingResult::total() const noexcept {
  common::EnergyLatency t = programming;
  for (const TenantStats& s : tenants) t += s.inference + s.reprogram;
  return t;
}

int ServingResult::total_mismatches() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.mismatches;
  return n;
}

int ServingResult::total_runs() const noexcept {
  int n = 0;
  for (const TenantStats& s : tenants) n += s.runs;
  return n;
}

namespace {

/// Contiguous segment boundaries over the run schedule.
std::vector<std::pair<std::size_t, std::size_t>> segment_bounds(
    std::size_t runs, int segments) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t per = runs / static_cast<std::size_t>(segments);
  std::size_t start = 0;
  for (int s = 0; s < segments; ++s) {
    const std::size_t end =
        s + 1 == segments ? runs : start + per;
    out.emplace_back(start, end);
    start = end;
  }
  return out;
}

common::EnergyLatency full_programming_cost(const ou::MappedModel& model,
                                            const ou::OuCostModel& cost) {
  common::EnergyLatency total;
  for (std::size_t j = 0; j < model.layer_count(); ++j)
    total += cost.reprogram_cost(model.mapping(j));
  return total;
}

}  // namespace

ServingResult serve_with_odin(
    std::vector<const ou::MappedModel*> tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    policy::OuPolicy initial_policy, const ServingConfig& config) {
  assert(!tenants.empty());
  ServingResult result;
  result.label = "Odin";
  result.tenants.resize(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i)
    result.tenants[i].name = tenants[i]->model().name;

  const auto schedule = run_schedule(config.horizon);
  const auto bounds =
      segment_bounds(schedule.size(), config.segments);

  policy::OuPolicy policy = std::move(initial_policy);
  for (std::size_t s = 0; s < bounds.size(); ++s) {
    const std::size_t tenant_idx = s % tenants.size();
    const ou::MappedModel& tenant = *tenants[tenant_idx];
    TenantStats& stats = result.tenants[tenant_idx];

    // Tenant switch: the incoming network's weights are programmed onto
    // the arrays (drift clock starts fresh at the segment's first run).
    result.programming += full_programming_cost(tenant, cost);
    ++result.switches;

    OdinController controller(tenant, nonideal, cost, policy.clone(),
                              config.odin);
    // Align the controller's drift clock with the programming moment.
    controller.reset_drift_clock(schedule[bounds[s].first]);
    for (std::size_t i = bounds[s].first; i < bounds[s].second; ++i) {
      const RunResult run = controller.run_inference(schedule[i]);
      stats.inference += run.inference;
      stats.reprogram += run.reprogram;
      stats.mismatches += run.mismatches;
      ++stats.runs;
    }
    stats.reprograms += controller.reprogram_count();
    result.policy_updates += controller.update_count();
    policy = controller.policy().clone();  // carry the learning forward
  }
  return result;
}

ServingResult serve_with_homogeneous(
    std::vector<const ou::MappedModel*> tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    ou::OuConfig ou, const ServingConfig& config) {
  assert(!tenants.empty());
  ServingResult result;
  result.label = ou.to_string();
  result.tenants.resize(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i)
    result.tenants[i].name = tenants[i]->model().name;

  const auto schedule = run_schedule(config.horizon);
  const auto bounds = segment_bounds(schedule.size(), config.segments);

  for (std::size_t s = 0; s < bounds.size(); ++s) {
    const std::size_t tenant_idx = s % tenants.size();
    const ou::MappedModel& tenant = *tenants[tenant_idx];
    TenantStats& stats = result.tenants[tenant_idx];
    result.programming += full_programming_cost(tenant, cost);
    ++result.switches;

    HomogeneousRunner runner(tenant, nonideal, cost, ou);
    runner.reset_drift_clock(schedule[bounds[s].first]);
    for (std::size_t i = bounds[s].first; i < bounds[s].second; ++i) {
      const BaselineRunResult run = runner.run_inference(schedule[i]);
      stats.inference += run.inference;
      stats.reprogram += run.reprogram;
      ++stats.runs;
    }
    stats.reprograms += runner.reprogram_count();
  }
  return result;
}

}  // namespace odin::core
