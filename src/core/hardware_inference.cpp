#include "core/hardware_inference.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math.hpp"
#include "common/parallel.hpp"

namespace odin::core {

HardwareMlpRunner::HardwareMlpRunner(nn::MultiHeadMlp& model,
                                     reram::DeviceParams device,
                                     int crossbar_size,
                                     std::uint64_t noise_seed)
    : device_(device), crossbar_size_(crossbar_size),
      noise_seed_(noise_seed) {
  auto lower = [&](nn::Dense* dense) {
    MappedLayer layer;
    const nn::Matrix& w = dense->weight().value;
    layer.in_features = w.rows();
    layer.out_features = w.cols();
    layer.bias.assign(dense->bias().value.flat().begin(),
                      dense->bias().value.flat().end());
    // Scale the layer into the cell range [-1, 1].
    double max_abs = 1e-12;
    for (double v : w.flat()) max_abs = std::max(max_abs, std::abs(v));
    layer.weight_scale = max_abs;
    layer.weights.reserve(w.size());
    for (double v : w.flat()) layer.weights.push_back(v / max_abs);
    layer.grid_rows = static_cast<int>(
        common::ceil_div(static_cast<std::int64_t>(layer.in_features),
                         crossbar_size_));
    layer.grid_cols = static_cast<int>(
        common::ceil_div(static_cast<std::int64_t>(layer.out_features),
                         crossbar_size_));
    layers_.push_back(std::move(layer));
  };
  for (nn::Dense* dense : model.trunk_dense()) lower(dense);
  const auto heads = model.head_dense();
  assert(!heads.empty());
  lower(heads.front());  // reference nets are single-head
  for (const MappedLayer& layer : layers_) {
    max_features_ = std::max({max_features_, layer.in_features,
                              layer.out_features});
    max_grid_cols_ = std::max(max_grid_cols_, layer.grid_cols);
  }
  ensure_batch_scratch(1);
  program(device_.t0_s);
}

void HardwareMlpRunner::ensure_batch_scratch(int batch) {
  if (batch <= batch_capacity_) return;
  const std::size_t nb = static_cast<std::size_t>(batch);
  scaled_scratch_.resize(nb * max_features_);
  act_a_.resize(nb * max_features_);
  act_b_.resize(nb * max_features_);
  partial_scratch_.resize(static_cast<std::size_t>(max_grid_cols_) * nb *
                          crossbar_size_);
  in_scale_.resize(nb);
  batch_capacity_ = batch;
}

void HardwareMlpRunner::program(double t_s) {
  // Crossbars are independent: each one owns its own noise stream, derived
  // from the crossbar's global index so the parallel build assigns exactly
  // the seeds the sequential walk (one pre-incremented counter) would.
  std::uint64_t stream = noise_seed_;
  for (MappedLayer& layer : layers_) {
    const std::size_t cells = static_cast<std::size_t>(layer.grid_rows) *
                              static_cast<std::size_t>(layer.grid_cols);
    layer.crossbars.clear();
    layer.crossbars.resize(cells);
    const std::uint64_t layer_stream_base = stream;
    if (noise_seed_ != 0) stream += cells;
    // ~20ns per programmed cell (quantize + optional noise draws).
    const std::size_t program_cost_ns =
        static_cast<std::size_t>(crossbar_size_) * crossbar_size_ * 20;
    common::parallel_for_chunks(
        0, cells, 0,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          // One scratch block per chunk, sized once to the full crossbar;
          // later resizes stay within capacity (no per-cell allocation).
          std::vector<double> block;
          block.reserve(static_cast<std::size_t>(crossbar_size_) *
                        crossbar_size_);
          for (std::size_t k = chunk_begin; k < chunk_end; ++k) {
            const int gr = static_cast<int>(k / layer.grid_cols);
            const int gc = static_cast<int>(k % layer.grid_cols);
            const int rows = std::min<std::int64_t>(
                crossbar_size_,
                static_cast<std::int64_t>(layer.in_features) -
                    static_cast<std::int64_t>(gr) * crossbar_size_);
            const int cols = std::min<std::int64_t>(
                crossbar_size_,
                static_cast<std::int64_t>(layer.out_features) -
                    static_cast<std::int64_t>(gc) * crossbar_size_);
            block.resize(static_cast<std::size_t>(rows) * cols);
            for (int r = 0; r < rows; ++r)
              for (int c = 0; c < cols; ++c)
                block[static_cast<std::size_t>(r) * cols + c] =
                    layer.weights[(static_cast<std::size_t>(gr) *
                                       crossbar_size_ +
                                   r) *
                                      layer.out_features +
                                  static_cast<std::size_t>(gc) *
                                      crossbar_size_ +
                                  c];
            auto xbar =
                noise_seed_ == 0
                    ? std::make_unique<reram::Crossbar>(crossbar_size_,
                                                        device_)
                    : std::make_unique<reram::Crossbar>(
                          crossbar_size_, device_,
                          reram::NoiseModel(reram::NoiseParams{},
                                            layer_stream_base + k + 1));
            xbar->program(block, rows, cols, t_s);
            layer.crossbars[k] = std::move(xbar);
          }
        },
        program_cost_ns);
  }
}

std::int64_t HardwareMlpRunner::programmed_cells() const noexcept {
  std::int64_t cells = 0;
  for (const MappedLayer& layer : layers_)
    for (const auto& xbar : layer.crossbars) cells += xbar->programmed_cells();
  return cells;
}

void HardwareMlpRunner::forward_layer(const MappedLayer& layer,
                                      std::span<const double> input,
                                      ou::OuConfig ou, double t_s,
                                      std::span<double> out) {
  assert(input.size() == layer.in_features);
  assert(out.size() == layer.out_features);
  const int adc_bits = adc_policy_.adc_bits(ou.rows);
  // Inputs are driven in [0, 1]-ish range; scale by the max magnitude so
  // the DAC range is used and undo afterwards (standard input scaling).
  double in_max = 1e-12;
  for (double v : input) in_max = std::max(in_max, std::abs(v));
  double* scaled = scaled_scratch_.data();
  for (std::size_t i = 0; i < input.size(); ++i)
    scaled[i] = input[i] / in_max;

  std::fill(out.begin(), out.end(), 0.0);
  // Grid-column tasks touch disjoint crossbars (each with its own noise
  // stream), disjoint output ranges and disjoint partial-sum slices; per
  // output column the partial sums accumulate in increasing-gr order
  // exactly as the sequential walk does, so the reduction is bitwise
  // deterministic. Cost hint: ~2ns per cell of the column strip.
  const std::size_t strip_cost_ns = static_cast<std::size_t>(
      static_cast<std::size_t>(layer.grid_rows) * crossbar_size_ *
      crossbar_size_ * 2);
  common::parallel_for(
      0, static_cast<std::size_t>(layer.grid_cols), 1,
      [&](std::size_t gc) {
        const std::size_t col0 = gc * crossbar_size_;
        double* partial = partial_scratch_.data() + gc * crossbar_size_;
        for (int gr = 0; gr < layer.grid_rows; ++gr) {
          const std::size_t row0 =
              static_cast<std::size_t>(gr) * crossbar_size_;
          const std::size_t rows =
              std::min<std::size_t>(crossbar_size_, layer.in_features - row0);
          const std::span<const double> slice{scaled + row0, rows};
          reram::Crossbar& xbar =
              *layer.crossbars[static_cast<std::size_t>(gr) *
                                   layer.grid_cols +
                               gc];
          const std::size_t cols =
              static_cast<std::size_t>(xbar.programmed_cols());
          xbar.mvm(slice, ou.rows, ou.cols, t_s, adc_bits,
                   std::span<double>(partial, cols));
          for (std::size_t c = 0; c < cols; ++c)
            out[col0 + c] += partial[c];
        }
      },
      strip_cost_ns);
  // Undo the scalings and add the (digitally stored) bias.
  for (std::size_t c = 0; c < out.size(); ++c)
    out[c] = out[c] * layer.weight_scale * in_max + layer.bias[c];
}

void HardwareMlpRunner::forward_layer(const MappedLayer& layer,
                                      const double* inputs, int batch,
                                      std::size_t in_stride, ou::OuConfig ou,
                                      double t_s, double* out,
                                      std::size_t out_stride) {
  assert(batch >= 1 && batch <= batch_capacity_);
  assert(in_stride >= layer.in_features);
  assert(out_stride >= layer.out_features);
  const int adc_bits = adc_policy_.adc_bits(ou.rows);
  const std::size_t nb = static_cast<std::size_t>(batch);
  // Per-query DAC scaling, identical to the single-query path; the scaled
  // panel is packed tight (stride = in_features) for the crossbar GEMM.
  for (int b = 0; b < batch; ++b) {
    const double* in = inputs + static_cast<std::size_t>(b) * in_stride;
    double in_max = 1e-12;
    for (std::size_t i = 0; i < layer.in_features; ++i)
      in_max = std::max(in_max, std::abs(in[i]));
    in_scale_[static_cast<std::size_t>(b)] = in_max;
    double* scaled =
        scaled_scratch_.data() + static_cast<std::size_t>(b) * layer.in_features;
    for (std::size_t i = 0; i < layer.in_features; ++i)
      scaled[i] = in[i] / in_max;
  }
  for (int b = 0; b < batch; ++b) {
    double* ob = out + static_cast<std::size_t>(b) * out_stride;
    std::fill(ob, ob + layer.out_features, 0.0);
  }
  // Same grid-column decomposition as the single-query path (disjoint
  // crossbars, outputs and partial slabs; increasing-gr accumulation per
  // column), with each crossbar evaluating the whole batch per visit.
  const std::size_t strip_cost_ns = static_cast<std::size_t>(
      static_cast<std::size_t>(layer.grid_rows) * crossbar_size_ *
      crossbar_size_ * nb * 2);
  const double* scaled_base = scaled_scratch_.data();
  common::parallel_for(
      0, static_cast<std::size_t>(layer.grid_cols), 1,
      [&](std::size_t gc) {
        const std::size_t col0 = gc * crossbar_size_;
        double* partial =
            partial_scratch_.data() + gc * nb * crossbar_size_;
        for (int gr = 0; gr < layer.grid_rows; ++gr) {
          const std::size_t row0 =
              static_cast<std::size_t>(gr) * crossbar_size_;
          reram::Crossbar& xbar =
              *layer.crossbars[static_cast<std::size_t>(gr) *
                                   layer.grid_cols +
                               gc];
          const std::size_t cols =
              static_cast<std::size_t>(xbar.programmed_cols());
          // Query b's row slice starts at scaled[b * in_features + row0];
          // the batched mvm reads it via in_stride = in_features.
          xbar.mvm({scaled_base + row0,
                    nb * layer.in_features - row0},
                   batch, layer.in_features, ou.rows, ou.cols, t_s, adc_bits,
                   std::span<double>(partial, nb * cols), cols);
          for (int b = 0; b < batch; ++b) {
            double* ob = out + static_cast<std::size_t>(b) * out_stride + col0;
            const double* pb = partial + static_cast<std::size_t>(b) * cols;
            for (std::size_t c = 0; c < cols; ++c) ob[c] += pb[c];
          }
        }
      },
      strip_cost_ns);
  for (int b = 0; b < batch; ++b) {
    double* ob = out + static_cast<std::size_t>(b) * out_stride;
    const double in_max = in_scale_[static_cast<std::size_t>(b)];
    for (std::size_t c = 0; c < layer.out_features; ++c)
      ob[c] = ob[c] * layer.weight_scale * in_max + layer.bias[c];
  }
}

std::span<const double> HardwareMlpRunner::forward_all(
    std::span<const double> input, ou::OuConfig ou, double t_s) {
  std::copy(input.begin(), input.end(), act_a_.begin());
  std::size_t width = input.size();
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    forward_layer(layers_[i], {act_a_.data(), width}, ou, t_s,
                  {act_b_.data(), layers_[i].out_features});
    width = layers_[i].out_features;
    for (std::size_t j = 0; j < width; ++j)
      if (act_b_[j] < 0.0) act_b_[j] = 0.0;  // ReLU in the output register
    act_a_.swap(act_b_);
  }
  const MappedLayer& head = layers_.back();
  forward_layer(head, {act_a_.data(), width}, ou, t_s,
                {act_b_.data(), head.out_features});
  return {act_b_.data(), head.out_features};
}

std::vector<double> HardwareMlpRunner::logits(std::span<const double> input,
                                              ou::OuConfig ou, double t_s) {
  const auto out = forward_all(input, ou, t_s);
  return std::vector<double>(out.begin(), out.end());
}

int HardwareMlpRunner::predict(std::span<const double> input, ou::OuConfig ou,
                               double t_s) {
  return static_cast<int>(common::argmax(forward_all(input, ou, t_s)));
}

double HardwareMlpRunner::accuracy(const nn::Dataset& data, ou::OuConfig ou,
                                   double t_s) {
  if (data.size() == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (predict(data.inputs.row(i), ou, t_s) == data.labels[0][i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

std::span<const double> HardwareMlpRunner::forward_all(
    std::span<const double> inputs, int batch, std::size_t in_stride,
    ou::OuConfig ou, double t_s) {
  assert(batch >= 1);
  ensure_batch_scratch(batch);
  const std::size_t nb = static_cast<std::size_t>(batch);
  std::size_t width = layers_.front().in_features;
  assert(in_stride >= width);
  assert(inputs.size() >= (nb - 1) * in_stride + width);
  for (std::size_t b = 0; b < nb; ++b)
    std::copy_n(inputs.data() + b * in_stride, width,
                act_a_.data() + b * width);
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    forward_layer(layers_[i], act_a_.data(), batch, width, ou, t_s,
                  act_b_.data(), layers_[i].out_features);
    width = layers_[i].out_features;
    for (std::size_t j = 0; j < nb * width; ++j)
      if (act_b_[j] < 0.0) act_b_[j] = 0.0;  // ReLU in the output register
    act_a_.swap(act_b_);
  }
  const MappedLayer& head = layers_.back();
  forward_layer(head, act_a_.data(), batch, width, ou, t_s, act_b_.data(),
                head.out_features);
  return {act_b_.data(), nb * head.out_features};
}

void HardwareMlpRunner::logits(std::span<const double> inputs, int batch,
                               std::size_t in_stride, ou::OuConfig ou,
                               double t_s, std::span<double> out) {
  const auto panel = forward_all(inputs, batch, in_stride, ou, t_s);
  assert(out.size() >= panel.size());
  std::copy(panel.begin(), panel.end(), out.begin());
}

void HardwareMlpRunner::predict(std::span<const double> inputs, int batch,
                                std::size_t in_stride, ou::OuConfig ou,
                                double t_s, std::span<int> out) {
  assert(out.size() >= static_cast<std::size_t>(batch));
  const auto panel = forward_all(inputs, batch, in_stride, ou, t_s);
  const std::size_t k = layers_.back().out_features;
  for (int b = 0; b < batch; ++b)
    out[static_cast<std::size_t>(b)] = static_cast<int>(
        common::argmax(panel.subspan(static_cast<std::size_t>(b) * k, k)));
}

double HardwareMlpRunner::accuracy(const nn::Dataset& data, ou::OuConfig ou,
                                   double t_s, int batch) {
  if (data.size() == 0) return 0.0;
  batch = std::max(batch, 1);
  std::vector<int> preds(static_cast<std::size_t>(batch));
  const std::size_t stride = data.inputs.cols();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < data.size(); i += static_cast<std::size_t>(batch)) {
    const int b = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(batch),
                              data.size() - i));
    // Dataset rows are contiguous, so the row block is already a panel.
    predict({data.inputs.row(i).data(),
             (static_cast<std::size_t>(b) - 1) * stride + stride},
            b, stride, ou, t_s, preds);
    for (int k = 0; k < b; ++k)
      if (preds[static_cast<std::size_t>(k)] ==
          data.labels[0][i + static_cast<std::size_t>(k)])
        ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

}  // namespace odin::core
