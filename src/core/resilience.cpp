#include "core/resilience.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "common/env.hpp"

namespace odin::core {

int BatchingConfig::resolved_max_batch() const {
  long long cap = max_batch;
  if (cap <= 0) {
    cap = 8;  // default when neither the config nor the env pins it
    long long v = 0;
    if (common::env_long("ODIN_BATCH_MAX", v) && v >= 1) cap = v;
  }
  return static_cast<int>(std::clamp<long long>(cap, 1, 1024));
}

namespace {

/// Failure bits set among the window's filled slots.
int failures_in(std::uint64_t bits, int fill) {
  const std::uint64_t mask =
      fill >= 64 ? ~0ull : ((1ull << fill) - 1ull);
  return static_cast<int>(std::popcount(bits & mask));
}

}  // namespace

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  assert(config_.window >= 1 && config_.window <= 64);
  assert(config_.failure_threshold >= 1);
  assert(config_.hold_runs >= 1);
  assert(config_.backoff_factor >= 1.0);
  assert(config_.hold_max_runs >= config_.hold_runs);
  hold_runs_ = config_.hold_runs;
}

bool CircuitBreaker::allow() {
  if (state_ == State::kClosed) return true;
  if (state_ == State::kHalfOpen) return true;  // the probe is in flight
  if (--hold_left_ > 0) return false;
  // Hold expired: this run probes whether the tenant has recovered.
  state_ = State::kHalfOpen;
  ++probes_;
  return true;
}

void CircuitBreaker::record(bool success) {
  if (state_ == State::kHalfOpen) {
    if (success) {
      // Recovery: full restore with a clean slate and the base hold.
      state_ = State::kClosed;
      window_bits_ = 0;
      window_fill_ = 0;
      hold_runs_ = config_.hold_runs;
      ++closes_;
    } else {
      // Still failing: back off exponentially before the next probe.
      hold_runs_ = std::min(
          config_.hold_max_runs,
          static_cast<int>(
              static_cast<double>(hold_runs_) * config_.backoff_factor));
      hold_left_ = hold_runs_;
      state_ = State::kOpen;
      ++reopens_;
    }
    return;
  }
  if (state_ != State::kClosed) return;  // open runs are not full-service
  window_bits_ = (window_bits_ << 1) | (success ? 0ull : 1ull);
  window_fill_ = std::min(window_fill_ + 1, config_.window);
  if (failures_in(window_bits_, window_fill_) >= config_.failure_threshold)
    open_after_failure();
}

void CircuitBreaker::force_open(int hold) {
  state_ = State::kOpen;
  hold_runs_ = std::max(1, hold);
  hold_left_ = hold_runs_;
  window_bits_ = 0;
  window_fill_ = 0;
  ++opens_;
}

void CircuitBreaker::open_after_failure() {
  state_ = State::kOpen;
  hold_left_ = hold_runs_;
  window_bits_ = 0;
  window_fill_ = 0;
  ++opens_;
}

CircuitBreaker::Snapshot CircuitBreaker::snapshot() const {
  Snapshot s;
  s.state = static_cast<std::int32_t>(state_);
  s.window_bits = window_bits_;
  s.window_fill = window_fill_;
  s.hold_left = hold_left_;
  s.hold_runs = hold_runs_;
  s.opens = opens_;
  s.reopens = reopens_;
  s.probes = probes_;
  s.closes = closes_;
  return s;
}

void CircuitBreaker::restore(const Snapshot& s) {
  state_ = static_cast<State>(s.state);
  window_bits_ = s.window_bits;
  window_fill_ = s.window_fill;
  hold_left_ = s.hold_left;
  hold_runs_ = std::max(s.hold_runs, config_.hold_runs);
  opens_ = s.opens;
  reopens_ = s.reopens;
  probes_ = s.probes;
  closes_ = s.closes;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  const auto n = static_cast<double>(values.size());
  const auto rank = static_cast<std::size_t>(std::clamp(
      std::ceil(p / 100.0 * n) - 1.0, 0.0, n - 1.0));
  return values[rank];
}

}  // namespace odin::core
