#include "core/trace.hpp"

#include <ostream>

namespace odin::core {

void RunTrace::record(int run_index, const RunResult& run) {
  TraceRecord rec;
  rec.run = run_index;
  rec.time_s = run.time_s;
  rec.elapsed_s = run.elapsed_s;
  rec.reprogrammed = run.reprogrammed;
  rec.policy_updated = run.policy_updated;
  rec.mismatches = run.mismatches;
  rec.energy_j = run.inference.energy_j + run.reprogram.energy_j;
  rec.latency_s = run.inference.latency_s + run.reprogram.latency_s;
  double product = 0.0;
  for (const auto& d : run.decisions)
    product += static_cast<double>(d.executed.product());
  rec.mean_ou_product =
      run.decisions.empty()
          ? 0.0
          : product / static_cast<double>(run.decisions.size());
  records_.push_back(rec);
}

void RunTrace::write_csv(std::ostream& out) const {
  out << "run,time_s,elapsed_s,reprogrammed,policy_updated,mismatches,"
         "energy_j,latency_s,mean_ou_product\n";
  out.precision(12);
  for (const TraceRecord& r : records_) {
    out << r.run << ',' << r.time_s << ',' << r.elapsed_s << ','
        << (r.reprogrammed ? 1 : 0) << ',' << (r.policy_updated ? 1 : 0)
        << ',' << r.mismatches << ',' << r.energy_j << ',' << r.latency_s
        << ',' << r.mean_ou_product << '\n';
  }
}

}  // namespace odin::core
