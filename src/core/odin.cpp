#include "core/odin.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/binary_io.hpp"
#include "core/accuracy.hpp"
#include "policy/serialization.hpp"
#include "reram/fault_injection.hpp"

namespace odin::core {

namespace {

/// Largest constraint excess the accuracy guardrail tolerates: the excess x
/// at which ideal * (1 - loss(x)) falls to the floor, inverted through the
/// surrogate's saturating ramp. Unbounded when even the saturated loss
/// keeps accuracy above the floor.
double guardrail_excess(const FaultPolicy& fp, const AccuracyParams& acc) {
  if (fp.ideal_accuracy <= 0.0)
    return std::numeric_limits<double>::infinity();
  const double max_loss = 1.0 - fp.accuracy_floor / fp.ideal_accuracy;
  if (max_loss <= 0.0) return 0.0;
  if (max_loss >= acc.max_drop)
    return std::numeric_limits<double>::infinity();
  return acc.excess_saturation *
         std::pow(max_loss / acc.max_drop, 1.0 / acc.exponent);
}

}  // namespace

OdinController::OdinController(const ou::MappedModel& model,
                               const ou::NonIdealityModel& nonideal,
                               const ou::OuCostModel& cost,
                               policy::OuPolicy policy, OdinConfig config,
                               reram::FaultInjector* faults)
    : model_(&model),
      nonideal_(&nonideal),
      cost_(&cost),
      grid_(model.crossbar_size()),
      nf_cache_(nonideal, grid_),
      policy_(std::move(policy)),
      buffer_(config.buffer_capacity),
      config_(config),
      faults_(faults) {
  assert(policy_.grid().crossbar_size() == model.crossbar_size());
  assert(config_.fault.max_program_attempts >= 1);
  // A pre-worn device (e.g. inherited across a tenant switch) starts from
  // its current measured health, not from a pristine assumption.
  if (faults_ != nullptr) {
    health_fraction_ = faults_->fault_fraction();
    retired_seen_ = faults_->crossbars_retired();
  }
}

int OdinController::rows_remapped() const noexcept {
  return faults_ != nullptr ? faults_->rows_remapped() : 0;
}

int OdinController::spares_remaining() const noexcept {
  return faults_ != nullptr ? faults_->spares_remaining() : 0;
}

int OdinController::crossbars_retired() const noexcept {
  return faults_ != nullptr ? faults_->crossbars_retired() : 0;
}

long long OdinController::writes_leveled() const noexcept {
  return faults_ != nullptr ? faults_->writes_leveled() : 0;
}

common::EnergyLatency OdinController::full_reprogram_cost() const {
  common::EnergyLatency total;
  for (std::size_t j = 0; j < model_->layer_count(); ++j)
    total += cost_->reprogram_cost(model_->mapping(j));
  return total;
}

RunResult OdinController::run_inference(double t_s,
                                        common::Deadline* deadline) {
  assert(t_s >= programmed_at_s_);
  RunResult run;
  run.time_s = t_s;

  const int layer_count = static_cast<int>(model_->layer_count());
  const FaultPolicy& fp = config_.fault;
  const double t0 = nonideal_->device().t0_s;
  const double burst =
      faults_ != nullptr ? faults_->drift_time_multiplier(t_s) : 1.0;
  double elapsed = t_s - programmed_at_s_;
  double fault_nf = fp.fault_nf_weight * health_fraction_;

  // Algorithm 1, lines 7-8, fault-aware: drift is device-global, so if the
  // most drift-tolerant configuration fails for the least sensitive layer,
  // no layer has a feasible OU. Reprogramming resets the drift clock — but
  // only helps when the *measured* permanent-fault floor leaves headroom at
  // a fresh clock; otherwise every campaign would be wasted wear and the
  // loop would reprogram forever (the livelock this policy removes).
  bool reprogram_due = nonideal_->reprogram_required(elapsed * burst, grid_,
                                                     1.0, fault_nf,
                                                     eta_scale_);
  // Wear-aware deferral: on a wear-hot array, every campaign spends scarce
  // remaining lifetime. Grant one extra eta step (fp.wear_defer_eta) before
  // paying for it — if the drift fits the relaxed budget, serve this run on
  // the drifted array and leave the campaign due. Bounded by construction:
  // once drift exceeds even the relaxed budget, the campaign runs.
  if (reprogram_due && !degraded_ && faults_ != nullptr &&
      faults_->wear_hot() &&
      !nonideal_->reprogram_required(elapsed * burst, grid_, 1.0, fault_nf,
                                     eta_scale_ * fp.wear_defer_eta)) {
    run.wear_deferred_reprogram = true;
    ++wear_deferred_reprograms_;
    reprogram_due = false;
  }
  if (reprogram_due) {
    const bool recoverable =
        !degraded_ &&
        !nonideal_->reprogram_required(t0, grid_, 1.0, fault_nf, 1.0);
    // Deadline gate: a reprogram campaign is the single most expensive
    // thing a run can do. When the remaining budget cannot absorb even the
    // first attempt's latency, defer the campaign — serve this run
    // best-effort on the most drift-tolerant corner of the drifted array
    // (degraded_ is NOT set; the device is healthy, just out of time) and
    // leave the campaign due for a run with more headroom.
    const bool deferred = recoverable && deadline != nullptr &&
                          !deadline->allows(full_reprogram_cost().latency_s);
    if (deferred) run.deadline_deferred_reprogram = true;
    if (recoverable && !deferred) {
      run.reprogrammed = true;
      ++reprogram_count_;
      const common::EnergyLatency attempt = full_reprogram_cost();
      run.reprogram += attempt;
      if (deadline != nullptr) deadline->charge(attempt.latency_s);
      bool converged = faults_ == nullptr || faults_->program_campaign();
      int attempts = 1;
      // Bounded retries with escalating verify windows: each retry is a
      // full write-verify campaign (it wears the array again) whose
      // latency grows by the backoff factor. Under a deadline each retry
      // must also fit the remaining budget — when it no longer does, the
      // loop gives up early (best-effort: the array keeps whatever the
      // last campaign achieved; the controller is not marked degraded).
      while (!converged && attempts < fp.max_program_attempts) {
        common::EnergyLatency retry = attempt;
        retry.latency_s *=
            std::pow(fp.retry_backoff, static_cast<double>(attempts));
        if (deadline != nullptr && !deadline->allows(retry.latency_s)) {
          run.deadline_stopped_retries = true;
          break;
        }
        run.reprogram += retry;
        if (deadline != nullptr) deadline->charge(retry.latency_s);
        converged = faults_->program_campaign();
        ++attempts;
      }
      run.program_retries = attempts - 1;
      retry_count_ += run.program_retries;
      programmed_at_s_ = t_s;
      elapsed = t0;
      // Post-program read-verify: refresh the measured health map.
      if (faults_ != nullptr) {
        health_fraction_ = faults_->fault_fraction();
        fault_nf = fp.fault_nf_weight * health_fraction_;
        // Proactive retirement: a campaign that exhausted the spare pool
        // retired the crossbar and migrated the tenant to a fresh array
        // (FaultInjector swaps in place). Migration clears the degradation
        // ladder — the relaxations earned on the dying array do not apply
        // to the new one.
        if (faults_->crossbars_retired() > retired_seen_) {
          retired_seen_ = faults_->crossbars_retired();
          run.crossbar_retired = true;
          degraded_ = false;
          eta_scale_ = 1.0;
        }
      }
      if (!converged) {
        run.write_verify_failed = true;
        // Exhausting every allowed attempt means the writes themselves do
        // not converge — permanent damage, so degrade. Stopping because
        // the *deadline* ran out says nothing about the device; the next
        // unhurried run simply retries.
        if (!run.deadline_stopped_retries) degraded_ = true;
      }
      // Livelock cap: if the freshly programmed array still violates eta,
      // or it is over its stuck-cell budget, another campaign cannot help —
      // degrade instead of reprogramming again next run.
      if (nonideal_->reprogram_required(t0, grid_, 1.0, fault_nf, 1.0) ||
          health_fraction_ > fp.stuck_cell_budget)
        degraded_ = true;
    } else if (!recoverable) {
      degraded_ = true;
    }
    if (degraded_ &&
        nonideal_->reprogram_required(elapsed * burst, grid_, 1.0, fault_nf,
                                      eta_scale_)) {
      // Controlled eta-relaxation: widen the budgets step by step until the
      // minimum OU is admitted, bounded by the hard ceiling and by the
      // accuracy guardrail (relaxation admits configurations whose
      // constraint excess reaches (scale - 1) * eta, and the surrogate maps
      // that excess to an accuracy drop).
      const AccuracyParams acc{.ideal_accuracy = fp.ideal_accuracy};
      const double excess_cap = guardrail_excess(fp, acc);
      const double scale_cap =
          std::min(fp.eta_relax_max,
                   1.0 + excess_cap / nonideal_->params().eta_total);
      while (eta_scale_ < scale_cap &&
             nonideal_->reprogram_required(elapsed * burst, grid_, 1.0,
                                           fault_nf, eta_scale_)) {
        eta_scale_ = std::min(eta_scale_ * fp.eta_relax_step, scale_cap);
      }
      if (nonideal_->reprogram_required(elapsed * burst, grid_, 1.0,
                                        fault_nf, eta_scale_))
        run.accuracy_floor_hit = true;  // guardrail bound before feasibility
    }
  }
  run.elapsed_s = elapsed;
  run.degraded = degraded_;
  if (degraded_) ++degraded_runs_;
  run.fault_fraction = health_fraction_;
  run.eta_scale = eta_scale_;
  // Surrogate accuracy of this run: the minimum OU's excess over the
  // *unrelaxed* budget (relaxation changes what is admitted, not the
  // physics) through the saturating loss ramp.
  {
    const AccuracyModel acc_model(
        AccuracyParams{.ideal_accuracy = fp.ideal_accuracy});
    const double min_total =
        nonideal_->total_nf(elapsed * burst, grid_.min_config());
    const double excess = std::max(
        0.0, min_total + fault_nf - nonideal_->params().eta_total);
    run.estimated_accuracy =
        fp.ideal_accuracy * (1.0 - acc_model.loss_from_excess(excess));
  }

  const double drift_s = elapsed * burst;  ///< drift-effective elapsed time
  nf_cache_.rebuild(drift_s);

  run.decisions.reserve(model_->layer_count());
  for (std::size_t j = 0; j < model_->layer_count(); ++j) {
    const auto& layer = model_->model().layers[j];
    const policy::Features phi =
        policy::extract_features(layer, layer_count, drift_s);

    LayerDecision decision;
    decision.policy_choice = policy_.predict(phi);  // line 5

    ou::LayerContext ctx{
        .mapping = &model_->mapping(j),
        .cost = cost_,
        .nonideal = nonideal_,
        .grid = &grid_,
        .cache = &nf_cache_,
        .elapsed_s = drift_s,
        .sensitivity = nonideal_->layer_sensitivity(layer.index, layer_count),
        .nf_floor = fault_nf,
        .eta_scale = eta_scale_,
        .deadline = deadline,
    };

    // Entropy-gate extension: a confident, feasible policy prediction is
    // executed without invoking the search (and produces no training
    // example — the gate only opens when the policy has converged). The
    // gate stays closed while a promotion is on probation: probation is an
    // audit of the freshly promoted policy, and a confidently *wrong*
    // policy (e.g. one retrained inside a drift burst) would otherwise
    // skip the very searches that expose its mispredictions.
    const bool gated =
        config_.entropy_gate >= 0.0 && probation_left_ == 0 &&
        policy_.prediction_entropy(phi) < config_.entropy_gate &&
        ctx.feasible(decision.policy_choice);
    if (gated) {
      decision.executed = decision.policy_choice;
      decision.evaluations = 0;
      ++run.searches_skipped;
    } else {
      const ou::SearchResult best =  // line 6
          config_.search == SearchKind::kExhaustive
              ? ou::exhaustive_search(ctx)
              : ou::resource_bounded_search(ctx, decision.policy_choice,
                                            config_.search_steps);
      decision.evaluations = best.evaluations;
      if (best.truncated) ++run.searches_truncated;
      // When healthy and unhurried, a feasible config always exists here
      // (reprogramming was handled above and the sensitivity-scaled IR
      // constraint admits the minimum OU). A degraded array whose
      // relaxation was capped by the accuracy guardrail can leave the
      // whole grid infeasible, a deferred reprogram leaves it drifted past
      // eta, and a truncated search may simply not have reached a feasible
      // point — in all three the run still completes on the most
      // fault-tolerant corner.
      assert(best.found || degraded_ || best.truncated ||
             run.deadline_deferred_reprogram);
      decision.executed = best.found ? best.best : grid_.min_config();
    }
    decision.mismatch = decision.executed != decision.policy_choice;

    run.inference +=
        cost_->layer_cost(ctx.mapping->counts(decision.executed),
                          decision.executed, layer.activation_sparsity)
            .total();

    if (decision.mismatch) {  // lines 9-10
      ++run.mismatches;
      buffer_.add(phi, decision.executed);
    }
    run.decisions.push_back(decision);
  }

  observe_mismatch_rate(run, layer_count);
  // A controller on probation defers retraining until the verdict on the
  // last promotion is in (overflowing examples are dropped and counted),
  // so a rollback target is never itself an unvetted policy.
  if (probation_left_ == 0)
    maybe_update_policy(run, drift_s, fault_nf);  // line 11, guarded
  run.buffer_dropped = buffer_.dropped();
  if (faults_ != nullptr) {
    run.rows_remapped = faults_->rows_remapped();
    run.spares_remaining = faults_->spares_remaining();
    run.crossbars_retired = faults_->crossbars_retired();
    run.writes_leveled = faults_->writes_leveled();
  }
  return run;
}

void OdinController::observe_mismatch_rate(RunResult& run, int layer_count) {
  const GuardPolicy& gp = config_.guard;
  if (probation_left_ > 0) {
    probation_mismatches_ += run.mismatches;
    probation_layers_ += layer_count;
    if (--probation_left_ == 0) {
      const double rate =
          static_cast<double>(probation_mismatches_) /
          static_cast<double>(std::max<long long>(probation_layers_, 1));
      const double threshold = std::max(
          gp.rollback_rate_floor, gp.rollback_rate_factor * pre_update_rate_);
      if (rate > threshold && last_good_policy_.has_value()) {
        // The promotion looked fine in shadow but mispredicts massively in
        // live traffic (e.g. it was trained and evaluated inside a drift
        // burst that has since passed): reinstate the last-known-good
        // policy and quarantine the batch that taught the bad behaviour.
        policy_ = last_good_policy_->clone();
        buffer_.quarantine_batch(last_update_batch_);
        ++updates_rolled_back_;
        run.update_rolled_back = true;
        mismatch_rate_ema_ = pre_update_rate_;
      }
      last_good_policy_.reset();
      last_update_batch_.clear();
      probation_mismatches_ = probation_layers_ = 0;
    }
    return;
  }
  const double run_rate = layer_count > 0
                              ? static_cast<double>(run.mismatches) /
                                    static_cast<double>(layer_count)
                              : 0.0;
  mismatch_rate_ema_ =
      (1.0 - gp.rate_alpha) * mismatch_rate_ema_ + gp.rate_alpha * run_rate;
}

void OdinController::maybe_update_policy(RunResult& run, double drift_s,
                                         double fault_nf) {
  if (!buffer_.full()) return;
  const GuardPolicy& gp = config_.guard;
  if (!gp.enabled) {  // vanilla Algorithm 1: promote unconditionally
    policy_.train(buffer_.to_dataset(grid_), config_.update_options);
    buffer_.reset();
    ++update_count_;
    ++updates_accepted_;
    run.policy_updated = true;
    return;
  }

  // Holdout split: every stride-th entry is withheld from the retrain and
  // scores candidate-vs-incumbent label agreement.
  const std::vector<policy::ReplayBuffer::Entry> batch = buffer_.entries();
  const int stride = std::max(
      2, static_cast<int>(std::lround(
             1.0 / std::clamp(gp.holdout_fraction, 0.05, 0.5))));
  nn::Dataset train_data;
  std::vector<policy::ReplayBuffer::Entry> holdout;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (static_cast<int>(i % static_cast<std::size_t>(stride)) ==
        stride - 1)
      holdout.push_back(batch[i]);
    else
      policy::OuPolicy::append_example(train_data, batch[i].features, grid_,
                                       batch[i].best);
  }

  policy::OuPolicy candidate = policy_.clone();
  if (train_data.size() > 0)
    candidate.train(train_data, config_.update_options);

  // Shadow evaluation: holdout agreement plus the current tenant's layer
  // set at the current drift (the exact contexts the next runs will see).
  const int layer_count = static_cast<int>(model_->layer_count());
  struct Score {
    double holdout_acc = 1.0;
    double edp = 0.0;
    double feasible_rate = 1.0;
    bool sane = true;
  };
  auto score = [&](policy::OuPolicy& p) {
    Score s;
    if (!holdout.empty()) {
      int agree = 0;
      for (const auto& e : holdout)
        if (p.predict(e.features) == e.best) ++agree;
      s.holdout_acc =
          static_cast<double>(agree) / static_cast<double>(holdout.size());
    }
    int feasible = 0;
    for (std::size_t j = 0; j < model_->layer_count(); ++j) {
      const auto& layer = model_->model().layers[j];
      const policy::Features phi =
          policy::extract_features(layer, layer_count, drift_s);
      const ou::OuConfig cfg = p.predict(phi);
      const ou::LayerContext ctx{
          .mapping = &model_->mapping(j),
          .cost = cost_,
          .nonideal = nonideal_,
          .grid = &grid_,
          .cache = &nf_cache_,
          .elapsed_s = drift_s,
          .sensitivity =
              nonideal_->layer_sensitivity(layer.index, layer_count),
          .nf_floor = fault_nf,
          .eta_scale = eta_scale_,
      };
      s.edp += ctx.edp(cfg);
      if (ctx.feasible(cfg)) ++feasible;
      const double entropy = p.prediction_entropy(phi);
      s.sane = s.sane && std::isfinite(entropy) && entropy >= 0.0 &&
               entropy <= 1.0 + 1e-9;
    }
    s.feasible_rate = layer_count > 0 ? static_cast<double>(feasible) /
                                            static_cast<double>(layer_count)
                                      : 1.0;
    s.sane = s.sane && std::isfinite(s.edp);
    return s;
  };

  const Score inc = score(policy_);
  const Score cand = score(candidate);
  const bool accepted =
      candidate.weights_finite() && cand.sane &&
      cand.holdout_acc >= inc.holdout_acc - gp.holdout_slack &&
      cand.edp <= inc.edp * (1.0 + gp.max_edp_regression) &&
      cand.feasible_rate >= inc.feasible_rate - gp.max_feasibility_drop;

  if (accepted) {
    last_good_policy_ = policy_.clone();
    last_update_batch_ = batch;
    policy_ = std::move(candidate);
    buffer_.reset();
    ++update_count_;
    ++updates_accepted_;
    run.policy_updated = true;
    probation_left_ = std::max(gp.probation_runs, 0);
    probation_mismatches_ = probation_layers_ = 0;
    pre_update_rate_ = mismatch_rate_ema_;
    if (probation_left_ == 0) {  // probation disabled: promote outright
      last_good_policy_.reset();
      last_update_batch_.clear();
    }
  } else {
    buffer_.quarantine_contents();
    ++updates_rejected_;
    run.update_rejected = true;
  }
}

ControllerSnapshot OdinController::snapshot() {
  ControllerSnapshot s;
  s.programmed_at_s = programmed_at_s_;
  s.reprogram_count = reprogram_count_;
  s.update_count = update_count_;
  s.health_fraction = health_fraction_;
  s.degraded = degraded_;
  s.eta_scale = eta_scale_;
  s.retry_count = retry_count_;
  s.degraded_runs = degraded_runs_;
  s.wear_deferred_reprograms = wear_deferred_reprograms_;
  s.retired_seen = retired_seen_;
  s.updates_accepted = updates_accepted_;
  s.updates_rejected = updates_rejected_;
  s.updates_rolled_back = updates_rolled_back_;
  s.probation_left = probation_left_;
  s.probation_mismatches = probation_mismatches_;
  s.probation_layers = probation_layers_;
  s.pre_update_rate = pre_update_rate_;
  s.mismatch_rate_ema = mismatch_rate_ema_;
  s.buffer_entries = buffer_.entries();
  s.buffer_quarantine = buffer_.quarantined_entries();
  s.last_update_batch = last_update_batch_;
  s.buffer_dropped = buffer_.dropped();
  s.buffer_quarantine_hits = buffer_.quarantine_hits();
  common::ByteWriter policy_bytes;
  policy::save_policy_binary(policy_, policy_bytes);
  s.policy_blob = policy_bytes.bytes();
  if (last_good_policy_.has_value()) {
    common::ByteWriter last_good_bytes;
    policy::save_policy_binary(*last_good_policy_, last_good_bytes);
    s.last_good_blob = last_good_bytes.bytes();
  }
  return s;
}

bool OdinController::restore(const ControllerSnapshot& s) {
  common::ByteReader policy_bytes(s.policy_blob);
  std::optional<policy::OuPolicy> restored =
      policy::load_policy_binary(policy_bytes);
  if (!restored.has_value() ||
      restored->grid().crossbar_size() != grid_.crossbar_size())
    return false;
  std::optional<policy::OuPolicy> last_good;
  if (!s.last_good_blob.empty()) {
    common::ByteReader last_good_bytes(s.last_good_blob);
    last_good = policy::load_policy_binary(last_good_bytes);
    if (!last_good.has_value() ||
        last_good->grid().crossbar_size() != grid_.crossbar_size())
      return false;
  }
  policy_ = std::move(*restored);
  last_good_policy_ = std::move(last_good);
  programmed_at_s_ = s.programmed_at_s;
  reprogram_count_ = s.reprogram_count;
  update_count_ = s.update_count;
  health_fraction_ = s.health_fraction;
  degraded_ = s.degraded;
  eta_scale_ = s.eta_scale;
  retry_count_ = s.retry_count;
  degraded_runs_ = s.degraded_runs;
  wear_deferred_reprograms_ = s.wear_deferred_reprograms;
  retired_seen_ = s.retired_seen;
  updates_accepted_ = s.updates_accepted;
  updates_rejected_ = s.updates_rejected;
  updates_rolled_back_ = s.updates_rolled_back;
  probation_left_ = s.probation_left;
  probation_mismatches_ = s.probation_mismatches;
  probation_layers_ = s.probation_layers;
  pre_update_rate_ = s.pre_update_rate;
  mismatch_rate_ema_ = s.mismatch_rate_ema;
  buffer_.restore(s.buffer_entries, s.buffer_quarantine, s.buffer_dropped,
                  s.buffer_quarantine_hits);
  last_update_batch_ = s.last_update_batch;
  return true;
}

}  // namespace odin::core
