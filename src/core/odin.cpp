#include "core/odin.hpp"

#include <algorithm>
#include <cassert>

namespace odin::core {

OdinController::OdinController(const ou::MappedModel& model,
                               const ou::NonIdealityModel& nonideal,
                               const ou::OuCostModel& cost,
                               policy::OuPolicy policy, OdinConfig config)
    : model_(&model),
      nonideal_(&nonideal),
      cost_(&cost),
      grid_(model.crossbar_size()),
      nf_cache_(nonideal, grid_),
      policy_(std::move(policy)),
      buffer_(config.buffer_capacity),
      config_(config) {
  assert(policy_.grid().crossbar_size() == model.crossbar_size());
}

common::EnergyLatency OdinController::full_reprogram_cost() const {
  common::EnergyLatency total;
  for (std::size_t j = 0; j < model_->layer_count(); ++j)
    total += cost_->reprogram_cost(model_->mapping(j));
  return total;
}

RunResult OdinController::run_inference(double t_s) {
  assert(t_s >= programmed_at_s_);
  RunResult run;
  run.time_s = t_s;

  const int layer_count = static_cast<int>(model_->layer_count());
  double elapsed = t_s - programmed_at_s_;

  // Algorithm 1, lines 7-8: drift is device-global, so if the most
  // drift-tolerant configuration fails for the least sensitive layer, no
  // layer has a feasible OU and the device is reprogrammed (clock reset).
  if (nonideal_->reprogram_required(elapsed, grid_, 1.0)) {
    run.reprogrammed = true;
    run.reprogram = full_reprogram_cost();
    ++reprogram_count_;
    programmed_at_s_ = t_s;
    elapsed = nonideal_->device().t0_s;
  }
  run.elapsed_s = elapsed;
  nf_cache_.rebuild(elapsed);

  run.decisions.reserve(model_->layer_count());
  for (std::size_t j = 0; j < model_->layer_count(); ++j) {
    const auto& layer = model_->model().layers[j];
    const policy::Features phi =
        policy::extract_features(layer, layer_count, elapsed);

    LayerDecision decision;
    decision.policy_choice = policy_.predict(phi);  // line 5

    ou::LayerContext ctx{
        .mapping = &model_->mapping(j),
        .cost = cost_,
        .nonideal = nonideal_,
        .grid = &grid_,
        .cache = &nf_cache_,
        .elapsed_s = elapsed,
        .sensitivity = nonideal_->layer_sensitivity(layer.index, layer_count),
    };

    // Entropy-gate extension: a confident, feasible policy prediction is
    // executed without invoking the search (and produces no training
    // example — the gate only opens when the policy has converged).
    const bool gated =
        config_.entropy_gate >= 0.0 &&
        policy_.prediction_entropy(phi) < config_.entropy_gate &&
        ctx.feasible(decision.policy_choice);
    if (gated) {
      decision.executed = decision.policy_choice;
      decision.evaluations = 0;
      ++run.searches_skipped;
    } else {
      const ou::SearchResult best =  // line 6
          config_.search == SearchKind::kExhaustive
              ? ou::exhaustive_search(ctx)
              : ou::resource_bounded_search(ctx, decision.policy_choice,
                                            config_.search_steps);
      decision.evaluations = best.evaluations;
      // A feasible config always exists here: reprogramming was handled
      // above and the sensitivity-scaled IR constraint admits the minimum
      // OU.
      assert(best.found);
      decision.executed = best.best;
    }
    decision.mismatch = decision.executed != decision.policy_choice;

    run.inference +=
        cost_->layer_cost(ctx.mapping->counts(decision.executed),
                          decision.executed, layer.activation_sparsity)
            .total();

    if (decision.mismatch) {  // lines 9-10
      ++run.mismatches;
      buffer_.add(phi, decision.executed);
    }
    run.decisions.push_back(decision);
  }

  if (buffer_.full()) {  // line 11
    policy_.train(buffer_.to_dataset(grid_), config_.update_options);
    buffer_.reset();
    ++update_count_;
    run.policy_updated = true;
  }
  return run;
}

}  // namespace odin::core
