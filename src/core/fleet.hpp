// Fleet-scale sharded serving: partition the 36-PE mesh into shards, place
// tenants onto shards NoC- and wear-aware, and run one serving loop per
// shard concurrently on the thread pool.
//
// The placement objective (DESIGN.md §16) combines three terms per tenant:
//  * NoC transit — the inter-layer activation traffic of the tenant's
//    layers placed onto the shard's PE block (arch::SystemModel::map_onto
//    over arch::NocModel), normalized per tenant across candidate shards;
//  * load balance — the shard's crossbar fill after taking the tenant,
//    relative to the fleet-wide mean;
//  * wear — the shard device's consumed lifetime fraction plus its fault
//    fraction (reram::FaultInjector), so new tenants prefer least-worn
//    shards and migrate off wear-hot arrays.
// Greedy seeding (largest tenant first, best shard by the score) is
// followed by `refine_passes` single-tenant best-move passes that accept
// strict global-objective decreases — deterministic, no randomness.
//
// Each shard then runs the full PR 5-7 serving loop (admission queue,
// breakers, batching, checkpoints) over its own tenants, with a
// placement-derived TenantServiceModel charging NoC transit per serve and
// crediting inter-layer pipelining across the shard's PEs
// (arch::interlayer_pipeline). A single-shard fleet passes the ServingConfig
// through untouched and is bitwise identical to serve_with_odin.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/components.hpp"
#include "core/serving.hpp"

namespace odin::core {

struct FleetConfig {
  /// Template ServingConfig every shard derives its own loop from (horizon
  /// and segments are split across shards by tenant membership).
  ServingConfig serving{};
  arch::PimConfig pim{};
  /// Shard count; <= 0 defers to ODIN_SHARDS (strict env_long parse,
  /// default 1). Clamped to [1, pim.pes].
  int shards = 0;
  /// NoC-aware greedy-then-refine placement; false = placement-oblivious
  /// round-robin (tenant t -> shard t % shards), the comparison baseline.
  bool noc_aware = true;
  /// Steer tenants away from worn/faulty shard devices (no-op without
  /// per-shard fault injectors).
  bool wear_aware = true;
  /// Single-tenant best-move refinement passes after greedy seeding.
  int refine_passes = 2;
  /// Inter-layer activation precision on the NoC.
  int activation_bits = 8;

  int resolved_shards() const;
};

/// One tenant's placement outcome.
struct TenantPlacement {
  int tenant = 0;  ///< index into the fleet's tenant vector
  int shard = 0;
  std::int64_t crossbars = 0;  ///< footprint (crossbars occupied)
  int pes_spanned = 0;         ///< PEs of the shard the layers landed on
  /// Inter-layer activation transit per inference on the shard's block.
  common::EnergyLatency noc_per_inference;
  /// Steady-state inter-layer pipeline factor across those PEs.
  double pipeline_overlap = 1.0;
  /// The wear term moved this tenant off the shard a wear-blind score
  /// would have picked.
  bool wear_displaced = false;
};

struct FleetPlacement {
  int shards = 1;
  /// Global PE ids per shard, in fill order (contiguous blocks of the
  /// boustrophedon mesh walk when NoC-aware, row-major otherwise).
  std::vector<std::vector<int>> shard_pes;
  std::vector<TenantPlacement> tenants;  ///< indexed by tenant
  std::vector<std::int64_t> shard_load;  ///< crossbars per shard
  double load_imbalance = 1.0;  ///< max shard load / mean shard load
  double objective = 0.0;       ///< final global objective value
};

/// PE fill order across the mesh. The boustrophedon (snake) walk keeps
/// consecutive ids mesh-adjacent, so a shard's contiguous block is compact
/// and its internal hop distances small; row-major (snake = false) is the
/// oblivious baseline. Public because the scenario engine's storm
/// footprints and the campaign autoscaler share this spatial layout.
std::vector<int> fleet_fill_order(const arch::PimConfig& pim,
                                  bool snake = true);

/// Near-equal contiguous chunks of the fill order, one per shard (the
/// first `pes % shards` shards get the extra PE).
std::vector<std::vector<int>> fleet_partition_pes(const std::vector<int>& order,
                                                  int shards);

/// Reactive autoscaling step (DESIGN.md §17): re-cut the fill order into
/// contiguous shard blocks apportioned to `shard_demand` (largest-remainder
/// rounding, one-PE floor per shard, deterministic tie-breaks). Shards keep
/// their index — a demand shift slides the block boundaries along the
/// snake, so neighbouring shards trade mesh-adjacent PEs instead of
/// scattering.
std::vector<std::vector<int>> rescale_shard_blocks(
    const arch::PimConfig& pim, bool snake,
    const std::vector<double>& shard_demand);

/// Index of the block with the lowest per-PE demand (`demand[i] /
/// max(1, pes[i])`), deterministic lowest-index tie-break. A non-empty
/// `eligible` bitmap (parallel to `demand`) restricts the candidates;
/// returns demand.size() when nothing is eligible. The cluster failover
/// path (core/cluster) picks both the target mesh and the target shard
/// within it this way.
std::size_t pick_least_loaded_block(const std::vector<double>& demand,
                                    const std::vector<std::int32_t>& pes,
                                    const std::vector<std::uint8_t>& eligible);

/// Place `tenants` onto the fleet's shards. `shard_faults` (optional, one
/// per shard, entries may be null) feeds the wear term.
FleetPlacement place_fleet(
    const std::vector<const ou::MappedModel*>& tenants,
    const ou::OuCostModel& cost, const FleetConfig& config,
    const std::vector<const reram::FaultInjector*>& shard_faults = {});

/// Outcome of a fleet run: the placement plus one ServingResult per shard.
struct FleetResult {
  FleetPlacement placement;
  std::vector<ServingResult> shards;
  /// Tenant indices served by each shard (ascending; order matches the
  /// shard's local tenant vector and its ServingResult::tenants).
  std::vector<std::vector<int>> shard_tenants;

  int total_runs() const noexcept;
  /// Wall-clock the shard's device spent serving (service + switch
  /// programming) — the makespan denominator.
  double shard_busy_s(std::size_t shard) const noexcept;
  double makespan_s() const noexcept;
  /// Aggregate throughput: total runs over the slowest shard's busy time.
  double aggregate_images_per_s() const noexcept;
  /// Run-weighted mean per-request EDP across tenants:
  /// sum_t(E_t * L_t / R_t) / sum_t(R_t) over every tenant of every shard
  /// (inference + reprogram). Aggregated per tenant, not per shard, so the
  /// figure is invariant to how tenants are grouped onto shards.
  double edp_per_request() const noexcept;
  /// Pooled deadline-slack percentile across every SLO-bearing tenant of
  /// every shard: the slack at the p-th percentile sojourn (p99 slack =
  /// the 1st-percentile slack sample). 0 when no SLO samples exist.
  double slack_percentile(double p) const;
};

/// Serve the fleet: place, derive per-shard ServingConfigs, run every
/// shard's loop concurrently (common::parallel_transform), one cloned
/// policy per shard. `shard_faults` (optional, one per shard, entries may
/// be null) are each shard's private device wear state. With
/// resolved_shards() == 1 the serving walk is bitwise identical to
/// serve_with_odin on the unmodified config.
FleetResult serve_fleet(
    const std::vector<const ou::MappedModel*>& tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    policy::OuPolicy initial_policy, const FleetConfig& config,
    const std::vector<reram::FaultInjector*>& shard_faults = {});

/// Resume an interrupted fleet from each shard's checkpoint pair (the
/// fleet writes shard k's pair at `<base>.shard<k>.a/.b`; a single-shard
/// fleet uses `<base>.a/.b` unchanged). Placement is recomputed — it is a
/// pure function of tenants and config, so it reproduces the interrupted
/// run's geometry; `shard_faults` must be freshly constructed injectors
/// (their wear is replayed and verified per shard). Shards without a
/// checkpoint run fresh; a shard whose checkpoint fails to reinstate fails
/// the whole resume. The fleet's `serving.max_runs` crash hook is cleared
/// on resume.
std::optional<FleetResult> resume_fleet(
    const std::vector<const ou::MappedModel*>& tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    policy::OuPolicy initial_policy, const FleetConfig& config,
    const std::vector<reram::FaultInjector*>& shard_faults = {});

}  // namespace odin::core
