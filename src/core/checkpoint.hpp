// Crash-safe checkpoint/restore of the multi-tenant serving state.
//
// A production serving process must survive being killed at any moment: the
// adapted policy, the replay buffer (including quarantined batches), the
// drift clock, the guardrail's probation state, the accumulated per-tenant
// energy/latency totals and the device's wear history are all state that a
// restart would otherwise silently reset. This layer persists all of it.
//
// Durability contract (DESIGN.md §12):
//  * framed & checksummed — a fixed header (magic, version, sequence,
//    payload size, CRC-32 of the payload) is validated before any payload
//    byte is trusted, so a torn or bit-flipped file is detected, never
//    parsed;
//  * atomic — each write goes to `<slot>.tmp`, is flushed (fsync where
//    available), then renamed over the slot, so a crash mid-write leaves
//    the previous slot contents intact;
//  * double-buffered — writes alternate between `<base>.a` and `<base>.b`;
//    the loader picks the valid slot with the highest sequence number and
//    falls back to the other when the newest write was torn. Two
//    independent failures are required to lose all serving state.
//
// The device's stochastic wear state is NOT serialized bit-by-bit: the
// FaultInjector's randomness is a pure function of (seed, campaign count),
// so the checkpoint stores the campaign-count fingerprint and resume
// replays it (FaultInjector::fast_forward), verifying the fingerprint.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/binary_io.hpp"
#include "core/cluster.hpp"
#include "core/odin.hpp"
#include "core/scenario.hpp"
#include "core/serving.hpp"
#include "reram/fault_injection.hpp"
#include "reram/wear_leveling.hpp"

namespace odin::core {

/// On-disk payload version. Version 2 added the resilience serving state
/// (queue, breakers, fallback OUs, per-tenant SLO counters); version 3
/// added the batch-formation surface (per-tenant batch counters plus the
/// batching fingerprint); version 4 added the wear-leveling surface (the
/// leveling fingerprint, retirement count, per-segment attribution bases,
/// controller wear counters and behavioral per-crossbar wear maps);
/// version 5 added the fleet surface (shard geometry fingerprint,
/// placement-derived per-tenant service models, per-tenant service-time and
/// pipelined-run counters); version 6 added the scenario surface (the
/// sojourn retention cap fingerprint, per-tenant streaming sojourn sketches
/// with their dropped-sample counters, and the campaign-engine state —
/// arrival cursor, shard clocks/wear, autoscaler accumulators, trajectory
/// sketches); version 7 added the cluster surface (cluster geometry
/// fingerprint, outage/replication cursors, per-tenant replica cursors and
/// failover breakers, RTO/RPO ledgers, plus the per-tenant failover
/// counters on TenantStats). Older frames are still accepted, with every
/// added field defaulting to the feature-disabled state (v6 frames decode
/// as a single-mesh cluster with replication and failover off).
inline constexpr std::uint32_t kCheckpointVersion = 7;

/// The complete serving state at a run boundary. `segment`/`next_run`
/// locate the resume point: the next inference to execute is
/// schedule[next_run] inside `segment` (whose tenant-switch programming
/// already happened and is already accounted in `result`).
struct ServingCheckpoint {
  /// Monotone write counter (assigned by CheckpointWriter).
  std::uint64_t sequence = 0;
  /// Resume position.
  std::uint64_t segment = 0;
  std::uint64_t next_run = 0;
  /// Configuration fingerprint — resume refuses a checkpoint taken under a
  /// different horizon/segment layout or tenant set.
  int segments = 0;
  int horizon_runs = 0;
  double t_start_s = 0.0;
  double t_end_s = 0.0;
  std::vector<std::string> tenant_names;
  /// Accumulated serving totals up to (but excluding) next_run.
  ServingResult result;
  /// The in-flight controller (policy, buffer, guard, drift clock).
  ControllerSnapshot controller;
  /// Device wear fingerprint (meaningful when has_faults).
  bool has_faults = false;
  reram::FaultInjector::WearState wear;
  /// Measured per-crossbar health maps from the last read-verify, when the
  /// serving path tracks them (may be empty).
  std::vector<reram::CrossbarHealth> health_maps;
  /// Resilience serving state (v2+; all defaulted when decoding a v1
  /// frame or when the walk ran with resilience disabled).
  bool has_resilience = false;
  std::int32_t shed_policy = 0;      ///< fingerprint: ShedPolicy in force
  std::uint64_t queue_capacity = 0;  ///< fingerprint: admission bound
  double busy_until_s = 0.0;         ///< when the FIFO device frees up
  std::vector<std::uint64_t> pending_runs;  ///< queued arrival indices
  std::vector<CircuitBreaker::Snapshot> breakers;  ///< one per tenant
  std::vector<ou::OuConfig> fallback_ous;          ///< one per tenant
  /// Batch-formation fingerprint (v3+; defaulted for older frames). The
  /// queue state only transfers onto the same batching geometry.
  bool batching_enabled = false;
  std::int32_t batch_cap = 0;  ///< resolved max batch in force
  /// Wear-leveling state (v4+; defaulted for older frames). The fingerprint
  /// fields gate resume: a leveled campaign history only replays correctly
  /// under the same spare pool and wear budget. The seg-base fields restore
  /// mid-segment per-tenant attribution of the device-global counters.
  bool leveling_enabled = false;
  std::int32_t leveling_spare_rows = 0;   ///< resolved pool in force
  double leveling_wear_budget = 0.0;      ///< resolved budget fraction
  int wear_seg_base_rows_remapped = 0;
  int wear_seg_base_crossbars_retired = 0;
  long long wear_seg_base_writes_leveled = 0;
  /// Measured per-crossbar wear maps (Crossbar::wear_map), when the serving
  /// path tracks behavioral crossbars; empty otherwise — and always empty
  /// when decoding a pre-v4 frame.
  std::vector<reram::WearMap> wear_maps;
  /// Fleet surface (v5+; defaulted for older frames, which decode as shard
  /// 0 of a single-shard fleet). A shard's checkpoint only resumes onto the
  /// same shard index of the same-size fleet under the same
  /// placement-derived service models.
  std::int32_t fleet_shards = 1;
  std::int32_t fleet_shard_index = 0;
  bool has_service_models = false;
  std::vector<TenantServiceModel> service_models;
  /// Scenario surface (v6+; defaulted for older frames). `sojourn_cap` is
  /// a resume fingerprint: a different retention cap would desynchronize
  /// the sojourn vectors of a resumed walk. The campaign state is only
  /// meaningful when has_scenario (the scenario engine's checkpoints); the
  /// plain serving loop writes it defaulted.
  std::uint64_t sojourn_cap = 0;
  bool has_scenario = false;
  CampaignState scenario;
  /// Cluster surface (v7+; defaulted for older frames, which decode as a
  /// single-mesh cluster with replication and failover off). Only
  /// meaningful when has_cluster (the cluster engine's checkpoints); a
  /// cluster frame refuses plain resume_campaign and vice versa.
  bool has_cluster = false;
  ClusterState cluster;
};

/// Payload codec (no framing). decode returns nullopt on truncation or a
/// shape mismatch; framing, CRC and the version field are the file layer's
/// job — it passes the frame's version down so older payloads decode with
/// the fields they actually carry.
void encode_checkpoint(const ServingCheckpoint& ckpt,
                       common::ByteWriter& out);
std::optional<ServingCheckpoint> decode_checkpoint(
    common::ByteReader& in, std::uint32_t version = kCheckpointVersion);

/// Double-buffered atomic checkpoint file pair (`<base>.a` / `<base>.b`).
/// Construction scans existing slots so sequence numbers keep increasing
/// across process restarts and the next write targets the older slot.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::string base_path);

  /// Serialize + frame `ckpt` (its `sequence` is overwritten with the next
  /// number) and atomically replace the older slot. Returns false on I/O
  /// failure (the previous slots are untouched).
  bool write(ServingCheckpoint& ckpt);

  std::uint64_t last_sequence() const noexcept { return sequence_; }
  const std::string& base_path() const noexcept { return base_; }

 private:
  std::string base_;
  std::uint64_t sequence_ = 0;
  int next_slot_ = 0;  ///< 0 = ".a", 1 = ".b"
};

/// Parse and validate one checkpoint file: header magic/version, payload
/// size, CRC, then payload decode. nullopt on any failure.
std::optional<ServingCheckpoint> load_checkpoint_file(
    const std::string& path);

/// Load the newest valid checkpoint of the `<base>.a`/`<base>.b` pair. A
/// corrupt or torn slot is skipped and the other slot is used — this is the
/// crash-fallback path the fuzz tests exercise.
std::optional<ServingCheckpoint> load_latest_checkpoint(
    const std::string& base_path);

}  // namespace odin::core
