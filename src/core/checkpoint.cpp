#include "core/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/crc32.hpp"

namespace odin::core {

namespace {

constexpr char kMagic[8] = {'O', 'D', 'I', 'N', 'C', 'K', 'P', 'T'};
/// Oldest payload version this build still decodes (newer builds keep
/// reading the fields old payloads carry and default the rest).
constexpr std::uint32_t kMinVersion = 1;
/// Frame: magic(8) + version(4) + sequence(8) + payload size(8) + crc(4).
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8 + 4;
/// Refuse absurd payloads before allocating (a corrupt size field must not
/// drive a multi-gigabyte read).
constexpr std::uint64_t kMaxPayload = 1ull << 30;

void encode_energy(const common::EnergyLatency& e, common::ByteWriter& out) {
  out.f64(e.energy_j);
  out.f64(e.latency_s);
}

common::EnergyLatency decode_energy(common::ByteReader& in) {
  common::EnergyLatency e;
  e.energy_j = in.f64();
  e.latency_s = in.f64();
  return e;
}

void encode_entries(const std::vector<policy::ReplayBuffer::Entry>& entries,
                    common::ByteWriter& out) {
  out.u64(entries.size());
  for (const auto& e : entries) {
    for (double v : e.features.to_array()) out.f64(v);
    out.i32(e.best.rows);
    out.i32(e.best.cols);
  }
}

bool decode_entries(common::ByteReader& in,
                    std::vector<policy::ReplayBuffer::Entry>& entries) {
  const std::uint64_t count = in.u64();
  if (!in.ok() || count > (1u << 24)) return false;
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    policy::ReplayBuffer::Entry e;
    e.features.layer_position = in.f64();
    e.features.sparsity = in.f64();
    e.features.kernel = in.f64();
    e.features.log_time = in.f64();
    e.best.rows = in.i32();
    e.best.cols = in.i32();
    entries.push_back(e);
  }
  return in.ok();
}

void encode_tenant(const TenantStats& t, common::ByteWriter& out) {
  out.str(t.name);
  out.i32(t.runs);
  out.i32(t.reprograms);
  out.i32(t.mismatches);
  out.i32(t.retries);
  out.i32(t.degraded_runs);
  out.i32(t.updates_accepted);
  out.i32(t.updates_rejected);
  out.i32(t.updates_rolled_back);
  out.i64(t.buffer_dropped);
  out.i64(t.buffer_quarantined);
  encode_energy(t.inference, out);
  encode_energy(t.reprogram, out);
  // v2: resilience surface.
  out.f64(t.slo_s);
  out.i32(t.shed_runs);
  out.i32(t.breaker_open_runs);
  out.i32(t.deadline_misses);
  out.i32(t.deferred_reprograms);
  out.i32(t.deadline_stopped_retries);
  out.i32(t.searches_truncated);
  out.i32(t.breaker_opens);
  out.i32(t.breaker_reopens);
  out.i32(t.breaker_probes);
  out.i32(t.breaker_closes);
  out.i32(t.watchdog_stalls);
  out.u64(t.sojourn_s.size());
  for (double v : t.sojourn_s) out.f64(v);
  // v3: batch-formation surface.
  out.i32(t.batches_formed);
  out.i32(t.batch_members);
  out.i32(t.max_batch);
  out.i32(t.batch_slo_capped);
  // v4: wear-leveling surface.
  out.i32(t.rows_remapped);
  out.i32(t.crossbars_retired);
  out.i64(t.writes_leveled);
  out.i32(t.wear_deferred_reprograms);
  out.i32(t.spares_remaining);
  // v5: fleet service surface.
  out.f64(t.service_s);
  out.i32(t.pipelined_runs);
  // v6: bounded-sojourn surface.
  encode_sojourn_sketch(t.sojourn_sketch, out);
  out.i64(t.sojourn_dropped);
  // v7: cluster failover surface.
  out.i32(t.failovers);
  out.i32(t.restored_stale);
  out.i64(t.lost_runs);
  out.i64(t.outage_dropped);
  out.f64(t.rpo_s);
  out.f64(t.rto_s);
}

std::optional<TenantStats> decode_tenant(common::ByteReader& in,
                                         std::uint32_t version) {
  TenantStats t;
  t.name = in.str();
  t.runs = in.i32();
  t.reprograms = in.i32();
  t.mismatches = in.i32();
  t.retries = in.i32();
  t.degraded_runs = in.i32();
  t.updates_accepted = in.i32();
  t.updates_rejected = in.i32();
  t.updates_rolled_back = in.i32();
  t.buffer_dropped = in.i64();
  t.buffer_quarantined = in.i64();
  t.inference = decode_energy(in);
  t.reprogram = decode_energy(in);
  if (version >= 2) {
    t.slo_s = in.f64();
    t.shed_runs = in.i32();
    t.breaker_open_runs = in.i32();
    t.deadline_misses = in.i32();
    t.deferred_reprograms = in.i32();
    t.deadline_stopped_retries = in.i32();
    t.searches_truncated = in.i32();
    t.breaker_opens = in.i32();
    t.breaker_reopens = in.i32();
    t.breaker_probes = in.i32();
    t.breaker_closes = in.i32();
    t.watchdog_stalls = in.i32();
    const std::uint64_t samples = in.u64();
    if (!in.ok() || samples > (1u << 24)) return std::nullopt;
    t.sojourn_s.reserve(samples);
    for (std::uint64_t i = 0; i < samples; ++i)
      t.sojourn_s.push_back(in.f64());
  }
  if (version >= 3) {
    t.batches_formed = in.i32();
    t.batch_members = in.i32();
    t.max_batch = in.i32();
    t.batch_slo_capped = in.i32();
  }
  if (version >= 4) {
    t.rows_remapped = in.i32();
    t.crossbars_retired = in.i32();
    t.writes_leveled = in.i64();
    t.wear_deferred_reprograms = in.i32();
    t.spares_remaining = in.i32();
  }
  if (version >= 5) {
    t.service_s = in.f64();
    t.pipelined_runs = in.i32();
  }
  if (version >= 6) {
    if (!decode_sojourn_sketch(in, t.sojourn_sketch)) return std::nullopt;
    t.sojourn_dropped = in.i64();
  }
  if (version >= 7) {
    t.failovers = in.i32();
    t.restored_stale = in.i32();
    t.lost_runs = in.i64();
    t.outage_dropped = in.i64();
    t.rpo_s = in.f64();
    t.rto_s = in.f64();
  }
  if (!in.ok()) return std::nullopt;
  return t;
}

void encode_controller(const ControllerSnapshot& c, common::ByteWriter& out) {
  out.f64(c.programmed_at_s);
  out.i32(c.reprogram_count);
  out.i32(c.update_count);
  out.f64(c.health_fraction);
  out.boolean(c.degraded);
  out.f64(c.eta_scale);
  out.i32(c.retry_count);
  out.i32(c.degraded_runs);
  out.i32(c.updates_accepted);
  out.i32(c.updates_rejected);
  out.i32(c.updates_rolled_back);
  out.i32(c.probation_left);
  out.i64(c.probation_mismatches);
  out.i64(c.probation_layers);
  out.f64(c.pre_update_rate);
  out.f64(c.mismatch_rate_ema);
  encode_entries(c.buffer_entries, out);
  encode_entries(c.buffer_quarantine, out);
  encode_entries(c.last_update_batch, out);
  out.u64(c.buffer_dropped);
  out.u64(c.buffer_quarantine_hits);
  out.str(c.policy_blob);
  out.str(c.last_good_blob);
}

bool decode_controller(common::ByteReader& in, ControllerSnapshot& c) {
  c.programmed_at_s = in.f64();
  c.reprogram_count = in.i32();
  c.update_count = in.i32();
  c.health_fraction = in.f64();
  c.degraded = in.boolean();
  c.eta_scale = in.f64();
  c.retry_count = in.i32();
  c.degraded_runs = in.i32();
  c.updates_accepted = in.i32();
  c.updates_rejected = in.i32();
  c.updates_rolled_back = in.i32();
  c.probation_left = in.i32();
  c.probation_mismatches = in.i64();
  c.probation_layers = in.i64();
  c.pre_update_rate = in.f64();
  c.mismatch_rate_ema = in.f64();
  if (!decode_entries(in, c.buffer_entries)) return false;
  if (!decode_entries(in, c.buffer_quarantine)) return false;
  if (!decode_entries(in, c.last_update_batch)) return false;
  c.buffer_dropped = in.u64();
  c.buffer_quarantine_hits = in.u64();
  c.policy_blob = in.str();
  c.last_good_blob = in.str();
  return in.ok();
}

std::string slot_path(const std::string& base, int slot) {
  return base + (slot == 0 ? ".a" : ".b");
}

/// Frame checksum over sequence + payload size + payload, so a bit flip in
/// the header's mutable fields (not just the payload) is detected too.
std::uint32_t frame_crc(std::uint64_t sequence, const std::string& payload) {
  common::ByteWriter meta;
  meta.u64(sequence);
  meta.u64(payload.size());
  const std::uint32_t seed =
      common::crc32(meta.bytes().data(), meta.bytes().size());
  return common::crc32(payload.data(), payload.size(), seed);
}

/// Header fields of one framed file; nullopt when the frame is invalid.
struct Frame {
  std::uint32_t version = 0;
  std::uint64_t sequence = 0;
  std::string payload;
};

std::optional<Frame> read_frame(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char header[kHeaderSize];
  if (!in.read(header, static_cast<std::streamsize>(kHeaderSize)))
    return std::nullopt;
  common::ByteReader hr(std::string_view(header, kHeaderSize));
  char magic[8];
  for (char& m : magic) m = static_cast<char>(hr.u8());
  if (std::string_view(magic, 8) != std::string_view(kMagic, 8))
    return std::nullopt;
  Frame frame;
  frame.version = hr.u32();
  // Forward compatibility: older payloads (>= kMinVersion) decode with
  // defaults for the fields they predate; payloads from a *newer* build
  // are rejected (their layout is unknown, not merely longer).
  if (frame.version < kMinVersion || frame.version > kCheckpointVersion)
    return std::nullopt;
  frame.sequence = hr.u64();
  const std::uint64_t size = hr.u64();
  const std::uint32_t crc = hr.u32();
  if (size > kMaxPayload) return std::nullopt;
  frame.payload.resize(size);
  if (!in.read(frame.payload.data(), static_cast<std::streamsize>(size)))
    return std::nullopt;  // torn write: payload shorter than the header says
  if (frame_crc(frame.sequence, frame.payload) != crc)
    return std::nullopt;  // bit rot / partial overwrite
  return frame;
}

bool write_frame(const std::string& path, std::uint64_t sequence,
                 const std::string& payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    common::ByteWriter header;
    for (char m : kMagic) header.u8(static_cast<std::uint8_t>(m));
    header.u32(kCheckpointVersion);
    header.u64(sequence);
    header.u64(payload.size());
    header.u32(frame_crc(sequence, payload));
    out.write(header.bytes().data(),
              static_cast<std::streamsize>(header.bytes().size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) return false;
  }
#if defined(__unix__) || defined(__APPLE__)
  // Flush file contents to stable storage before the rename publishes it;
  // a crash between rename and data reaching disk must not produce a slot
  // whose header is durable but whose payload is not (the CRC would catch
  // it, but the previous checkpoint would be lost for nothing).
  if (std::FILE* f = std::fopen(tmp.c_str(), "rb")) {
    fsync(fileno(f));
    std::fclose(f);
  }
#endif
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

void encode_checkpoint(const ServingCheckpoint& ckpt,
                       common::ByteWriter& out) {
  out.u64(ckpt.segment);
  out.u64(ckpt.next_run);
  out.i32(ckpt.segments);
  out.i32(ckpt.horizon_runs);
  out.f64(ckpt.t_start_s);
  out.f64(ckpt.t_end_s);
  out.u64(ckpt.tenant_names.size());
  for (const std::string& name : ckpt.tenant_names) out.str(name);
  out.str(ckpt.result.label);
  out.u64(ckpt.result.tenants.size());
  for (const TenantStats& t : ckpt.result.tenants) encode_tenant(t, out);
  encode_energy(ckpt.result.programming, out);
  out.i32(ckpt.result.switches);
  out.i32(ckpt.result.policy_updates);
  encode_controller(ckpt.controller, out);
  out.boolean(ckpt.has_faults);
  out.i32(ckpt.wear.campaigns);
  out.i32(ckpt.wear.stuck_cells);
  out.i32(ckpt.wear.failed_wordlines);
  out.i32(ckpt.wear.failed_bitlines);
  out.u64(ckpt.health_maps.size());
  for (const reram::CrossbarHealth& h : ckpt.health_maps)
    reram::encode_health(h, out);
  // v2: resilience serving state.
  out.boolean(ckpt.has_resilience);
  out.i32(ckpt.shed_policy);
  out.u64(ckpt.queue_capacity);
  out.f64(ckpt.busy_until_s);
  out.u64(ckpt.pending_runs.size());
  for (std::uint64_t j : ckpt.pending_runs) out.u64(j);
  out.u64(ckpt.breakers.size());
  for (const CircuitBreaker::Snapshot& b : ckpt.breakers) {
    out.i32(b.state);
    out.u64(b.window_bits);
    out.i32(b.window_fill);
    out.i32(b.hold_left);
    out.i32(b.hold_runs);
    out.i32(b.opens);
    out.i32(b.reopens);
    out.i32(b.probes);
    out.i32(b.closes);
  }
  out.u64(ckpt.fallback_ous.size());
  for (const ou::OuConfig& c : ckpt.fallback_ous) {
    out.i32(c.rows);
    out.i32(c.cols);
  }
  // v3: batch-formation fingerprint.
  out.boolean(ckpt.batching_enabled);
  out.i32(ckpt.batch_cap);
  // v4: wear-leveling state. Controller wear counters ride here rather than
  // in encode_controller, which is unversioned.
  out.boolean(ckpt.leveling_enabled);
  out.i32(ckpt.leveling_spare_rows);
  out.f64(ckpt.leveling_wear_budget);
  out.i32(ckpt.wear.crossbars_retired);
  out.i32(ckpt.wear_seg_base_rows_remapped);
  out.i32(ckpt.wear_seg_base_crossbars_retired);
  out.i64(ckpt.wear_seg_base_writes_leveled);
  out.i32(ckpt.controller.wear_deferred_reprograms);
  out.i32(ckpt.controller.retired_seen);
  out.u64(ckpt.wear_maps.size());
  for (const reram::WearMap& m : ckpt.wear_maps)
    reram::encode_wear_map(m, out);
  // v5: fleet surface.
  out.i32(ckpt.fleet_shards);
  out.i32(ckpt.fleet_shard_index);
  out.boolean(ckpt.has_service_models);
  out.u64(ckpt.service_models.size());
  for (const TenantServiceModel& m : ckpt.service_models) {
    out.f64(m.noc_extra.energy_j);
    out.f64(m.noc_extra.latency_s);
    out.f64(m.pipeline_overlap);
  }
  // v6: scenario surface.
  out.u64(ckpt.sojourn_cap);
  out.boolean(ckpt.has_scenario);
  encode_campaign_state(ckpt.scenario, out);
  // v7: cluster surface.
  out.boolean(ckpt.has_cluster);
  encode_cluster_state(ckpt.cluster, out);
}

std::optional<ServingCheckpoint> decode_checkpoint(common::ByteReader& in,
                                                   std::uint32_t version) {
  ServingCheckpoint ckpt;
  ckpt.segment = in.u64();
  ckpt.next_run = in.u64();
  ckpt.segments = in.i32();
  ckpt.horizon_runs = in.i32();
  ckpt.t_start_s = in.f64();
  ckpt.t_end_s = in.f64();
  const std::uint64_t names = in.u64();
  if (!in.ok() || names > (1u << 16)) return std::nullopt;
  for (std::uint64_t i = 0; i < names; ++i)
    ckpt.tenant_names.push_back(in.str());
  ckpt.result.label = in.str();
  const std::uint64_t tenants = in.u64();
  if (!in.ok() || tenants > (1u << 16)) return std::nullopt;
  for (std::uint64_t i = 0; i < tenants; ++i) {
    auto tenant = decode_tenant(in, version);
    if (!tenant.has_value()) return std::nullopt;
    ckpt.result.tenants.push_back(std::move(*tenant));
  }
  ckpt.result.programming = decode_energy(in);
  ckpt.result.switches = in.i32();
  ckpt.result.policy_updates = in.i32();
  ckpt.result.resumed = true;
  if (!decode_controller(in, ckpt.controller)) return std::nullopt;
  ckpt.has_faults = in.boolean();
  ckpt.wear.campaigns = in.i32();
  ckpt.wear.stuck_cells = in.i32();
  ckpt.wear.failed_wordlines = in.i32();
  ckpt.wear.failed_bitlines = in.i32();
  const std::uint64_t maps = in.u64();
  if (!in.ok() || maps > (1u << 16)) return std::nullopt;
  for (std::uint64_t i = 0; i < maps; ++i) {
    auto health = reram::decode_health(in);
    if (!health.has_value()) return std::nullopt;
    ckpt.health_maps.push_back(std::move(*health));
  }
  if (version >= 2) {
    ckpt.has_resilience = in.boolean();
    ckpt.shed_policy = in.i32();
    ckpt.queue_capacity = in.u64();
    ckpt.busy_until_s = in.f64();
    const std::uint64_t queued = in.u64();
    if (!in.ok() || queued > (1u << 24)) return std::nullopt;
    for (std::uint64_t i = 0; i < queued; ++i)
      ckpt.pending_runs.push_back(in.u64());
    const std::uint64_t breakers = in.u64();
    if (!in.ok() || breakers > (1u << 16)) return std::nullopt;
    for (std::uint64_t i = 0; i < breakers; ++i) {
      CircuitBreaker::Snapshot b;
      b.state = in.i32();
      b.window_bits = in.u64();
      b.window_fill = in.i32();
      b.hold_left = in.i32();
      b.hold_runs = in.i32();
      b.opens = in.i32();
      b.reopens = in.i32();
      b.probes = in.i32();
      b.closes = in.i32();
      ckpt.breakers.push_back(b);
    }
    const std::uint64_t fallbacks = in.u64();
    if (!in.ok() || fallbacks > (1u << 16)) return std::nullopt;
    for (std::uint64_t i = 0; i < fallbacks; ++i) {
      ou::OuConfig c;
      c.rows = in.i32();
      c.cols = in.i32();
      ckpt.fallback_ous.push_back(c);
    }
  }
  if (version >= 3) {
    ckpt.batching_enabled = in.boolean();
    ckpt.batch_cap = in.i32();
  }
  if (version >= 4) {
    ckpt.leveling_enabled = in.boolean();
    ckpt.leveling_spare_rows = in.i32();
    ckpt.leveling_wear_budget = in.f64();
    ckpt.wear.crossbars_retired = in.i32();
    ckpt.wear_seg_base_rows_remapped = in.i32();
    ckpt.wear_seg_base_crossbars_retired = in.i32();
    ckpt.wear_seg_base_writes_leveled = in.i64();
    ckpt.controller.wear_deferred_reprograms = in.i32();
    ckpt.controller.retired_seen = in.i32();
    const std::uint64_t wear_maps = in.u64();
    if (!in.ok() || wear_maps > (1u << 16)) return std::nullopt;
    for (std::uint64_t i = 0; i < wear_maps; ++i) {
      auto map = reram::decode_wear_map(in);
      if (!map.has_value()) return std::nullopt;
      ckpt.wear_maps.push_back(std::move(*map));
    }
  }
  if (version >= 5) {
    ckpt.fleet_shards = in.i32();
    ckpt.fleet_shard_index = in.i32();
    ckpt.has_service_models = in.boolean();
    const std::uint64_t models = in.u64();
    if (!in.ok() || models > (1u << 16)) return std::nullopt;
    for (std::uint64_t i = 0; i < models; ++i) {
      TenantServiceModel m;
      m.noc_extra.energy_j = in.f64();
      m.noc_extra.latency_s = in.f64();
      m.pipeline_overlap = in.f64();
      ckpt.service_models.push_back(m);
    }
  }
  if (version >= 6) {
    ckpt.sojourn_cap = in.u64();
    ckpt.has_scenario = in.boolean();
    auto scenario = decode_campaign_state(in);
    if (!scenario.has_value()) return std::nullopt;
    ckpt.scenario = std::move(*scenario);
  }
  if (version >= 7) {
    ckpt.has_cluster = in.boolean();
    auto cluster = decode_cluster_state(in);
    if (!cluster.has_value()) return std::nullopt;
    ckpt.cluster = std::move(*cluster);
  }
  if (!in.ok()) return std::nullopt;
  return ckpt;
}

CheckpointWriter::CheckpointWriter(std::string base_path)
    : base_(std::move(base_path)) {
  // Continue the sequence across restarts and aim the first write at the
  // slot that is stale (or invalid) so the newest good checkpoint is never
  // the one being overwritten.
  std::uint64_t seq[2] = {0, 0};
  bool valid[2] = {false, false};
  for (int slot = 0; slot < 2; ++slot)
    if (const auto frame = read_frame(slot_path(base_, slot))) {
      seq[slot] = frame->sequence;
      valid[slot] = true;
    }
  sequence_ = std::max(seq[0], seq[1]);
  if (valid[0] && (!valid[1] || seq[0] > seq[1]))
    next_slot_ = 1;
  else
    next_slot_ = 0;
}

bool CheckpointWriter::write(ServingCheckpoint& ckpt) {
  ckpt.sequence = sequence_ + 1;
  common::ByteWriter payload;
  encode_checkpoint(ckpt, payload);
  if (!write_frame(slot_path(base_, next_slot_), ckpt.sequence,
                   payload.bytes()))
    return false;
  sequence_ = ckpt.sequence;
  next_slot_ = 1 - next_slot_;
  return true;
}

std::optional<ServingCheckpoint> load_checkpoint_file(
    const std::string& path) {
  const auto frame = read_frame(path);
  if (!frame.has_value()) return std::nullopt;
  common::ByteReader reader(frame->payload);
  auto ckpt = decode_checkpoint(reader, frame->version);
  if (ckpt.has_value()) ckpt->sequence = frame->sequence;
  return ckpt;
}

std::optional<ServingCheckpoint> load_latest_checkpoint(
    const std::string& base_path) {
  std::optional<ServingCheckpoint> best;
  for (int slot = 0; slot < 2; ++slot) {
    auto ckpt = load_checkpoint_file(slot_path(base_path, slot));
    if (ckpt.has_value() &&
        (!best.has_value() || ckpt->sequence > best->sequence))
      best = std::move(ckpt);
  }
  return best;
}

}  // namespace odin::core
