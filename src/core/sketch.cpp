#include "core/sketch.hpp"

#include <algorithm>
#include <cmath>

namespace odin::core {

namespace {

/// Marker i's desired position after n observations (1-based, i in [0, 5)):
/// 1 + (n - 1) * d_i with d = {0, p/2, p, (1+p)/2, 1}.
double desired_pos(double p, std::uint64_t n, int i) noexcept {
  const double d[5] = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
  return 1.0 + (static_cast<double>(n) - 1.0) * d[i];
}

}  // namespace

void QuantileSketch::add(double x) noexcept {
  if (n_ < 5) {
    // Initialization phase: buffer the first five observations sorted in
    // the marker-height slots.
    q_[n_] = x;
    ++n_;
    std::sort(q_.begin(), q_.begin() + static_cast<std::ptrdiff_t>(n_));
    if (n_ == 5)
      for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
    return;
  }

  // Locate the cell containing x and stretch the extremes if needed.
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x < q_[1]) {
    k = 0;
  } else if (x < q_[2]) {
    k = 1;
  } else if (x < q_[3]) {
    k = 2;
  } else if (x <= q_[4]) {
    k = 3;
  } else {
    q_[4] = x;
    k = 3;
  }
  ++n_;
  for (int i = k + 1; i < 5; ++i) ++pos_[i];

  // Nudge the three interior markers toward their desired positions using
  // the P-squared parabolic interpolation, falling back to linear when the
  // parabola would leave the markers unsorted.
  for (int i = 1; i <= 3; ++i) {
    const double want = desired_pos(p_, n_, i);
    const double drift = want - static_cast<double>(pos_[i]);
    const std::int64_t below = pos_[i] - pos_[i - 1];
    const std::int64_t above = pos_[i + 1] - pos_[i];
    if ((drift >= 1.0 && above > 1) || (drift <= -1.0 && below > 1)) {
      const int d = drift >= 1.0 ? 1 : -1;
      const double nd = static_cast<double>(d);
      const double np = static_cast<double>(pos_[i]);
      const double np_lo = static_cast<double>(pos_[i - 1]);
      const double np_hi = static_cast<double>(pos_[i + 1]);
      double cand =
          q_[i] + nd / (np_hi - np_lo) *
                      ((np - np_lo + nd) * (q_[i + 1] - q_[i]) / (np_hi - np) +
                       (np_hi - np - nd) * (q_[i] - q_[i - 1]) / (np - np_lo));
      if (cand <= q_[i - 1] || cand >= q_[i + 1])
        cand = q_[i] + nd * (q_[i + d] - q_[i]) /
                           static_cast<double>(pos_[i + d] - pos_[i]);
      q_[i] = cand;
      pos_[i] += d;
    }
  }
}

double QuantileSketch::estimate() const noexcept {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact nearest-rank over the sorted buffer (matches
    // core::percentile's ceil(p * n) rank convention).
    const double rank = p_ * static_cast<double>(n_);
    std::size_t idx =
        rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
    if (idx >= n_) idx = n_ - 1;
    return q_[idx];
  }
  return q_[2];
}

void encode_sketch(const QuantileSketch& s, common::ByteWriter& out) {
  const QuantileSketch::State st = s.state();
  out.f64(st.p);
  out.u64(st.n);
  for (double q : st.q) out.f64(q);
  for (std::int64_t p : st.pos) out.i64(p);
}

bool decode_sketch(common::ByteReader& in, QuantileSketch& s) {
  QuantileSketch::State st;
  st.p = in.f64();
  st.n = in.u64();
  for (double& q : st.q) q = in.f64();
  for (std::int64_t& p : st.pos) p = in.i64();
  if (!in.ok()) return false;
  s.restore(st);
  return true;
}

SojournSketch::SojournSketch() noexcept {
  for (std::size_t i = 0; i < kQuantiles; ++i)
    q_[i] = QuantileSketch(kTracked[i]);
}

void SojournSketch::add(double x) noexcept {
  for (auto& sk : q_) sk.add(x);
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

double SojournSketch::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  // Knot sequence (percent, value): (0, min), tracked quantiles, (100, max).
  double xs[kQuantiles + 2];
  double ys[kQuantiles + 2];
  xs[0] = 0.0;
  ys[0] = min_;
  for (std::size_t i = 0; i < kQuantiles; ++i) {
    xs[i + 1] = kTracked[i] * 100.0;
    ys[i + 1] = q_[i].estimate();
  }
  xs[kQuantiles + 1] = 100.0;
  ys[kQuantiles + 1] = max_;
  const double pc = std::clamp(p, 0.0, 100.0);
  for (std::size_t i = 0; i + 1 < kQuantiles + 2; ++i) {
    if (pc <= xs[i + 1]) {
      const double span = xs[i + 1] - xs[i];
      if (span <= 0.0) return ys[i + 1];
      const double f = (pc - xs[i]) / span;
      return ys[i] + f * (ys[i + 1] - ys[i]);
    }
  }
  return max_;
}

bool operator==(const SojournSketch& a, const SojournSketch& b) noexcept {
  return a.q_ == b.q_ && a.count_ == b.count_ && a.min_ == b.min_ &&
         a.max_ == b.max_ && a.sum_ == b.sum_;
}

void encode_sojourn_sketch(const SojournSketch& s, common::ByteWriter& out) {
  for (const auto& sk : s.q_) encode_sketch(sk, out);
  out.u64(s.count_);
  out.f64(s.min_);
  out.f64(s.max_);
  out.f64(s.sum_);
}

bool decode_sojourn_sketch(common::ByteReader& in, SojournSketch& s) {
  for (auto& sk : s.q_) {
    if (!decode_sketch(in, sk)) return false;
  }
  s.count_ = in.u64();
  s.min_ = in.f64();
  s.max_ = in.f64();
  s.sum_ = in.f64();
  return in.ok();
}

}  // namespace odin::core
