// Homogeneous-OU baselines — the state of the art the paper compares
// against: one fixed OU size for every layer of every DNN, with device
// reprogramming whenever that OU's total non-ideality crosses eta.
// Paper Sec. V-C uses (16x16), (16x4), (9x8) and (8x4) from [16][24][34].
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "ou/cost_model.hpp"
#include "ou/mapped_model.hpp"
#include "ou/nonideality.hpp"

namespace odin::reram {
class FaultInjector;
}

namespace odin::core {

/// The four homogeneous configurations from prior work.
std::vector<ou::OuConfig> paper_baseline_configs();

struct BaselineRunResult {
  double time_s = 0.0;
  double elapsed_s = 0.0;
  bool reprogrammed = false;
  common::EnergyLatency inference;
  common::EnergyLatency reprogram;
};

class HomogeneousRunner {
 public:
  /// `reprogram_enabled = false` models the Fig. 7 "without reprogramming"
  /// curves: the device keeps drifting and accuracy decays.
  /// `faults` (optional, caller-owned): prior-work baselines see the fault
  /// floor in their reprogram check but have no recovery policy — once
  /// permanent faults push the floor over eta they reprogram every run,
  /// wearing the array further (the thrash the Odin loop avoids).
  HomogeneousRunner(const ou::MappedModel& model,
                    const ou::NonIdealityModel& nonideal,
                    const ou::OuCostModel& cost, ou::OuConfig config,
                    bool reprogram_enabled = true,
                    reram::FaultInjector* faults = nullptr);

  BaselineRunResult run_inference(double t_s);

  ou::OuConfig config() const noexcept { return config_; }
  int reprogram_count() const noexcept { return reprogram_count_; }
  double programmed_at_s() const noexcept { return programmed_at_s_; }

  /// External (re)programming event at `t_s` (cost accounted by caller).
  void reset_drift_clock(double t_s) noexcept { programmed_at_s_ = t_s; }

  /// Per-inference cost is time-invariant for a fixed OU; cached.
  const common::EnergyLatency& inference_cost() const noexcept {
    return inference_cost_;
  }
  common::EnergyLatency full_reprogram_cost() const;

 private:
  const ou::MappedModel* model_;
  const ou::NonIdealityModel* nonideal_;
  const ou::OuCostModel* cost_;
  ou::OuConfig config_;
  bool reprogram_enabled_;
  reram::FaultInjector* faults_ = nullptr;  ///< caller-owned, may be null
  common::EnergyLatency inference_cost_;
  double programmed_at_s_ = 0.0;
  int reprogram_count_ = 0;
};

}  // namespace odin::core
