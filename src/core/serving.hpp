// Multi-tenant serving simulation — the deployment scenario that motivates
// Odin (Sec. I: "an OU configuration computed offline for a known DNN model
// at design time may not be optimal for unseen DNNs at runtime").
//
// A PIM accelerator in production does not run one network forever: new
// models are deployed over time. The ServingSimulator rotates inference
// traffic across a set of workloads along the drift horizon; one policy
// serves them all, carrying what it learned from each tenant to the next
// (every layer is featurized the same way, so knowledge transfers). The
// comparison baselines run each tenant at a fixed homogeneous OU.
//
// The device keeps drifting across tenant switches — switching DNNs remaps
// weights onto (re)programmed crossbars, which also resets the drift clock
// for the incoming tenant's arrays and is charged as a programming event.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/resilience.hpp"
#include "core/sketch.hpp"

namespace odin::core {

/// Periodic crash-safe checkpointing of the Odin serving walk (see
/// core/checkpoint.hpp for the file format and durability contract).
struct CheckpointConfig {
  /// Base path of the double-buffered pair (`<base>.a` / `<base>.b`).
  /// Empty disables checkpointing.
  std::string base_path;
  /// Write a checkpoint after every N inference runs (>= 1).
  int every_runs = 25;
};

/// Per-tenant service-time model the fleet scheduler derives from its
/// placement: NoC transit charged on every serve, and the steady-state
/// inter-layer pipeline overlap applied to back-to-back inferences. Empty
/// `ServingConfig::service_models` (the default, and always the case for a
/// single-shard fleet) leaves the serving walk bitwise identical to the
/// unmodeled loop.
struct TenantServiceModel {
  /// Inter-PE activation traffic per inference (arch::SystemMapping's
  /// noc_per_inference for this tenant's shard placement).
  common::EnergyLatency noc_extra;
  /// Steady-state service time as a fraction of unpipelined latency
  /// (arch::InterLayerPipeline::overlap_factor); applies only when the
  /// request arrives while the device is busy (the pipeline is primed).
  double pipeline_overlap = 1.0;
};

struct ServingConfig {
  HorizonConfig horizon{};
  /// How many contiguous segments the horizon is divided into; tenants are
  /// assigned round-robin (segments >= tenant count uses each at least
  /// once).
  int segments = 6;
  OdinConfig odin{};
  CheckpointConfig checkpoint{};
  /// Crash-simulation hook: when > 0, serve at most this many inference
  /// runs in this invocation (a final checkpoint is forced when
  /// checkpointing is enabled) and return the partial result. 0 = serve
  /// the whole horizon.
  int max_runs = 0;
  /// Deadline/admission/breaker/watchdog layer (core/resilience.hpp).
  /// Disabled by default: the serving walk is then bit-identical to the
  /// pre-resilience behaviour.
  ResilienceConfig resilience{};
  /// Fleet surface (core/fleet.hpp fills these; empty/defaults outside a
  /// fleet). One entry per tenant, parallel to the `tenants` argument.
  std::vector<TenantServiceModel> service_models;
  int fleet_shards = 1;       ///< total shards in the owning fleet
  int fleet_shard_index = 0;  ///< this loop's shard id in [0, fleet_shards)
  /// Explicit arrival/drift schedule: when non-empty, replaces the
  /// logspace run_schedule(horizon) and must hold horizon.runs ascending
  /// times. The fleet passes each shard the global schedule's slices for
  /// its member segments so a tenant serves at the same drift times
  /// regardless of how the fleet is sharded.
  std::vector<double> schedule;
  /// Explicit per-segment run counts paired with `schedule`: when
  /// non-empty, replaces the equal split of segment_bounds (one entry per
  /// segment, summing to horizon.runs).
  std::vector<std::size_t> segment_sizes;
};

struct TenantStats {
  std::string name;
  int runs = 0;
  int reprograms = 0;  ///< drift-triggered only (switch programming separate)
  int mismatches = 0;
  int retries = 0;        ///< extra write-verify attempts on this tenant
  int degraded_runs = 0;  ///< runs this tenant served in degraded mode
  /// Update-guardrail surface (zero while the guard is disabled).
  int updates_accepted = 0;
  int updates_rejected = 0;
  int updates_rolled_back = 0;
  /// Replay-buffer observability: examples dropped at saturation and
  /// entries held in quarantine while serving this tenant.
  long long buffer_dropped = 0;
  long long buffer_quarantined = 0;
  /// Resilience surface (all zero while resilience is disabled). A "run"
  /// below is one arrival of this tenant's traffic; every arrival is served
  /// exactly once, either fully (controller + search) or by the degraded
  /// fallback (last-known-good homogeneous OU, no search, no reprogram).
  double slo_s = 0.0;            ///< latency SLO in force (0 = none/disabled)
  int shed_runs = 0;             ///< admission-control sheds (queue overflow)
  int breaker_open_runs = 0;     ///< fallback serves while the breaker held
  int deadline_misses = 0;       ///< full serves whose sojourn overran the SLO
  int deferred_reprograms = 0;   ///< campaigns pushed out by the deadline
  int deadline_stopped_retries = 0;  ///< retry loops cut short by the budget
  int searches_truncated = 0;    ///< layer searches stopped at best-so-far
  int breaker_opens = 0;         ///< Closed -> Open trips
  int breaker_reopens = 0;       ///< failed half-open probes
  int breaker_probes = 0;        ///< half-open probe runs granted
  int breaker_closes = 0;        ///< recoveries back to Closed
  int watchdog_stalls = 0;       ///< hung runs cancelled by the watchdog
  /// Batch-formation surface (all zero while batching is disabled). A
  /// batch is one pipelined pass over >= 1 queued same-tenant runs.
  int batches_formed = 0;   ///< pipelined passes (including size-1 batches)
  int batch_members = 0;    ///< runs served inside those passes
  int max_batch = 0;        ///< largest batch this tenant saw
  int batch_slo_capped = 0; ///< batches stopped short by a member's slack
  /// Wear-leveling surface (all zero without a leveling-enabled injector).
  /// Deltas of the shared device's leveling counters accrued while this
  /// tenant's segments were being served.
  int rows_remapped = 0;      ///< worn rows absorbed by the spare pool
  int crossbars_retired = 0;  ///< pool exhaustions (tenant migrated)
  long long writes_leveled = 0;      ///< row writes redirected off-identity
  int wear_deferred_reprograms = 0;  ///< campaigns deferred while wear-hot
  /// Gauge, not a delta: spare rows left in the device's current pool after
  /// this tenant's most recent segment.
  int spares_remaining = 0;
  /// Fleet surface (zero outside a multi-shard fleet): wall-clock busy time
  /// this tenant held its shard's device, and runs that were served at the
  /// pipelined (overlapped) rate because the pipeline was primed.
  double service_s = 0.0;
  int pipelined_runs = 0;
  /// Cluster failover surface (zero outside a multi-mesh cluster —
  /// core/cluster.hpp; rides checkpoint payload v7).
  int failovers = 0;             ///< evacuations off a lost mesh
  int restored_stale = 0;        ///< restores from a replica missing serves
  long long lost_runs = 0;       ///< serves newer than the restored replica
  long long outage_dropped = 0;  ///< arrivals dropped while dark/restoring
  double rpo_s = 0.0;            ///< worst replica staleness at failover
  double rto_s = 0.0;            ///< worst outage-to-ready recovery time
  /// Per-served-run sojourn (queue wait + service latency), in arrival
  /// order; feeds the percentile reporting below. Retention is bounded by
  /// ResilienceConfig::sojourn_sample_cap (0 = keep all).
  std::vector<double> sojourn_s;
  /// Streaming percentile sketch fed by *every* sojourn sample, including
  /// those the cap dropped from the vector; rides checkpoint payload v6.
  SojournSketch sojourn_sketch;
  /// Samples the cap kept out of sojourn_s (0 while uncapped).
  long long sojourn_dropped = 0;
  common::EnergyLatency inference;
  common::EnergyLatency reprogram;

  /// Record one sojourn sample under retention cap `cap` (0 = unbounded):
  /// always feeds the sketch, appends to the vector only below the cap.
  void record_sojourn(double sojourn, std::size_t cap);

  /// Nearest-rank percentile of the sojourn samples (p in [0, 100]).
  /// Exact while every sample was retained; the sketch estimate once the
  /// cap dropped any.
  double sojourn_percentile(double p) const;
  /// Deadline slack at the same rank: slo_s - sojourn_percentile(p)
  /// (negative = the SLO was missed at that rank; 0 when no SLO was set).
  double slack_percentile(double p) const;
};

struct ServingResult {
  std::string label;
  std::vector<TenantStats> tenants;
  common::EnergyLatency programming;  ///< tenant-switch (re)programming
  int switches = 0;
  int policy_updates = 0;
  /// True when this result was produced by resuming from a checkpoint
  /// (totals include the pre-crash prefix).
  bool resumed = false;

  common::EnergyLatency total() const noexcept;
  double total_edp() const noexcept { return total().edp(); }
  int total_mismatches() const noexcept;
  int total_runs() const noexcept;
  int total_retries() const noexcept;
  int total_degraded_runs() const noexcept;
  int total_updates_accepted() const noexcept;
  int total_updates_rejected() const noexcept;
  int total_updates_rolled_back() const noexcept;
  long long total_buffer_dropped() const noexcept;
  long long total_buffer_quarantined() const noexcept;
  /// Resilience totals (all zero while resilience is disabled).
  int total_shed_runs() const noexcept;
  int total_breaker_open_runs() const noexcept;
  int total_deadline_misses() const noexcept;
  int total_deferred_reprograms() const noexcept;
  int total_searches_truncated() const noexcept;
  int total_breaker_opens() const noexcept;
  int total_breaker_reopens() const noexcept;
  int total_breaker_probes() const noexcept;
  int total_breaker_closes() const noexcept;
  int total_watchdog_stalls() const noexcept;
  /// Batch-formation totals (zero while batching is disabled).
  int total_batches_formed() const noexcept;
  int total_batch_members() const noexcept;
  int total_batch_slo_capped() const noexcept;
  /// Largest batch formed anywhere; 0 when batching never ran.
  int max_batch() const noexcept;
  /// Mean members per formed batch (the occupancy figure; 0 when none).
  double mean_batch_occupancy() const noexcept;
  /// Wear-leveling totals (zero while leveling is disabled).
  int total_rows_remapped() const noexcept;
  int total_crossbars_retired() const noexcept;
  long long total_writes_leveled() const noexcept;
  int total_wear_deferred_reprograms() const noexcept;
  /// Spare rows left in the device's current pool (the smallest gauge any
  /// served tenant observed; 0 while leveling is disabled).
  int spares_remaining() const noexcept;
  /// Fleet totals (zero outside a multi-shard fleet).
  double total_service_s() const noexcept;
  int total_pipelined_runs() const noexcept;
};

/// Serve `tenants` (non-owning; must outlive the call) with one adapting
/// Odin policy. `initial_policy` is typically offline-bootstrapped.
/// `faults` (caller-owned, optional) is the shared device wear state: every
/// tenant-switch programming and every drift-triggered reprogram advances
/// it, and each segment's controller consumes its measured health.
ServingResult serve_with_odin(
    std::vector<const ou::MappedModel*> tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    policy::OuPolicy initial_policy, const ServingConfig& config = {},
    reram::FaultInjector* faults = nullptr);

/// Serve the same traffic with a fixed homogeneous OU configuration. With
/// `faults` the segment walk runs sequentially (wear is shared state);
/// without it the arms are independent and run concurrently.
ServingResult serve_with_homogeneous(
    std::vector<const ou::MappedModel*> tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    ou::OuConfig ou, const ServingConfig& config = {},
    reram::FaultInjector* faults = nullptr);

struct ServingCheckpoint;  // core/checkpoint.hpp

/// Continue an interrupted serve_with_odin from `ckpt` (typically obtained
/// via load_latest_checkpoint). `config` and `tenants` must match the
/// original invocation (validated against the checkpoint's fingerprint) and
/// `faults`, when used originally, must be a freshly constructed injector
/// with the original seed/schedule — its wear is replayed and verified.
/// Returns nullopt when the checkpoint does not match this configuration.
std::optional<ServingResult> resume_with_odin(
    std::vector<const ou::MappedModel*> tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    const ServingCheckpoint& ckpt, const ServingConfig& config = {},
    reram::FaultInjector* faults = nullptr);

}  // namespace odin::core
