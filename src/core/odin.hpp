// OdinController — the online learning loop of Algorithm 1, extended with
// fault-tolerant serving.
//
// Per inference run at wall-clock time t:
//   1. If even the minimum OU violates the non-ideality constraint for the
//      elapsed drift, reprogram the ReRAM cells (cost accounted, drift clock
//      reset) before inferencing (lines 7-8) — but only when a fresh
//      programming pass can actually restore feasibility. Measured permanent
//      faults (stuck cells, dead peripheral lines) survive every write, so
//      once the post-program read-verify shows the fresh array still
//      violating eta, the controller stops reprogramming (no livelock),
//      enters degraded mode, and serves the rest of the horizon under a
//      bounded eta-relaxation schedule with an accuracy guardrail.
//   2. For each layer: extract features Phi, predict (R,C) with the current
//      policy (line 5), run the best-OU search (line 6; resource-bounded by
//      default, exhaustive optionally), execute the layer with the best
//      configuration, and on a policy/search mismatch push (Phi, (R,C)*)
//      into the training buffer (lines 9-10).
//   3. When the buffer fills, retrain the policy on its contents and reset
//      it (line 11).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.hpp"
#include "common/units.hpp"
#include "ou/cost_model.hpp"
#include "ou/mapped_model.hpp"
#include "ou/nonideality.hpp"
#include "ou/search.hpp"
#include "policy/buffer.hpp"
#include "policy/policy.hpp"

namespace odin::reram {
class FaultInjector;
}

namespace odin::core {

enum class SearchKind { kResourceBounded, kExhaustive };

/// Recovery policy for permanent device damage (stuck cells, dead lines,
/// non-converging writes). All thresholds act on the *measured* health the
/// post-program read-verify reports, never on the injector's ground truth.
struct FaultPolicy {
  /// Write-verify attempts per reprogram before giving up (>= 1).
  int max_program_attempts = 3;
  /// Each retry escalates its verify window: attempt k's latency is the
  /// base programming latency x backoff^k (energy is per-campaign).
  double retry_backoff = 2.0;
  /// Measured fault fraction above which the array is marked degraded and
  /// further reprogramming (which wears it further) is withheld.
  double stuck_cell_budget = 0.02;
  /// Conversion from measured stuck-cell fraction to the OU-independent
  /// conductance-error floor entering the feasibility checks (a stuck cell
  /// is O(1) wrong relative to G_ON, so ~1).
  double fault_nf_weight = 1.0;
  /// Degraded-mode eta relaxation: multiplicative step per escalation and
  /// the hard ceiling on the cumulative factor.
  double eta_relax_step = 1.5;
  double eta_relax_max = 4.0;
  /// Accuracy guardrail: relaxation stops widening the budgets once the
  /// constraint excess it would admit drives the estimated accuracy (via
  /// the core/accuracy surrogate at `ideal_accuracy`) below this floor.
  double ideal_accuracy = 0.92;
  double accuracy_floor = 0.75;
  /// Wear-aware reprogram deferral: when the device reports wear-hot (its
  /// leveled wear consumed the wear budget's share of projected lifetime),
  /// a due campaign is deferred as long as the drift still fits inside one
  /// extra eta-relaxation step of this factor. Once drift exceeds even the
  /// relaxed budget the campaign runs — one bounded step, so deferral can
  /// never livelock into serving an infeasible array.
  double wear_defer_eta = 1.25;
};

/// Guardrail for the online policy update (extension over Algorithm 1's
/// unconditional line-11 retrain). A retrained candidate is first
/// shadow-evaluated against the incumbent — on a holdout slice of the
/// replay buffer and on the current tenant's layer set at the current
/// drift — and promoted only when it does not regress; a promoted
/// candidate then serves a probation window during which a mismatch-rate
/// explosion rolls the controller back to the last-known-good policy.
/// Rejected and rolled-back batches are quarantined in the replay buffer
/// so poisoned supervision (e.g. labels recorded inside a drift burst) is
/// not re-learned. Off by default: vanilla Algorithm 1 promotes every
/// retrain, which keeps the paper-faithful loop bit-identical.
struct GuardPolicy {
  bool enabled = false;
  /// Fraction of buffer entries held out of the retrain and used to score
  /// candidate vs incumbent label agreement.
  double holdout_fraction = 0.25;
  /// Candidate holdout accuracy may fall below the incumbent's by at most
  /// this before the update is rejected (the candidate trained on the
  /// batch should at least match the incumbent on held-out labels).
  double holdout_slack = 0.10;
  /// Shadow EDP over the tenant's layer set: the candidate's predicted
  /// configurations may cost at most (1 + this) x the incumbent's.
  double max_edp_regression = 0.05;
  /// DeltaG-feasibility rate over the layer set: the candidate's rate may
  /// fall below the incumbent's by at most this.
  double max_feasibility_drop = 0.0;
  /// Post-promotion probation: number of runs to watch before the update
  /// is declared last-known-good.
  int probation_runs = 6;
  /// Roll back when the probation mismatch rate exceeds
  /// max(rollback_rate_floor, rollback_rate_factor x pre-update EMA rate).
  double rollback_rate_factor = 3.0;
  double rollback_rate_floor = 0.60;
  /// Smoothing of the trailing per-run mismatch-rate EMA.
  double rate_alpha = 0.2;
};

struct OdinConfig {
  SearchKind search = SearchKind::kResourceBounded;
  int search_steps = 3;  ///< the paper's K
  std::size_t buffer_capacity = 50;
  nn::TrainOptions update_options{.epochs = 100, .batch_size = 10,
                                  .learning_rate = 5e-3,
                                  .shuffle_seed = 0x0d1e};
  /// Entropy-gated search (extension, see bench/ablation_entropy_gate):
  /// when the policy's prediction entropy is below this threshold and its
  /// choice is feasible, the choice is executed without running the search
  /// at all. Negative disables the gate (vanilla Algorithm 1).
  double entropy_gate = -1.0;
  FaultPolicy fault{};
  GuardPolicy guard{};
};

struct LayerDecision {
  ou::OuConfig policy_choice;
  ou::OuConfig executed;  ///< the search's best (what actually runs)
  bool mismatch = false;
  int evaluations = 0;
};

struct RunResult {
  double time_s = 0.0;
  double elapsed_s = 0.0;  ///< since last programming, after any reprogram
  bool reprogrammed = false;
  bool policy_updated = false;  ///< a retrain was promoted this run
  /// Guardrail surface: a retrain was rejected by the shadow evaluation /
  /// a promoted update was reverted at the end of its probation window.
  bool update_rejected = false;
  bool update_rolled_back = false;
  std::size_t buffer_dropped = 0;  ///< cumulative buffer-full drops so far
  int mismatches = 0;
  int searches_skipped = 0;  ///< layers served by the entropy gate
  /// Fault-recovery surface of this run.
  bool degraded = false;            ///< controller is in degraded mode
  bool write_verify_failed = false; ///< all programming attempts exhausted
  bool accuracy_floor_hit = false;  ///< guardrail capped the eta relaxation
  int program_retries = 0;          ///< extra write-verify attempts this run
  double fault_fraction = 0.0;      ///< measured health (last read-verify)
  double eta_scale = 1.0;           ///< relaxation factor in effect
  double estimated_accuracy = 0.0;  ///< surrogate accuracy for this run
  /// Deadline surface (all false/0 when run without a deadline).
  /// A required reprogram campaign was deferred because its latency did
  /// not fit the remaining budget; the run was served best-effort on the
  /// drifted array instead (the campaign stays due for a later run).
  bool deadline_deferred_reprogram = false;
  /// The write-verify retry loop stopped early because the next escalated
  /// retry no longer fit the budget (the array may be unverified, but the
  /// controller is NOT ratcheted into degraded mode for it).
  bool deadline_stopped_retries = false;
  int searches_truncated = 0;  ///< layer searches cut short by the deadline
  /// Wear-leveling surface (all false/0 without a leveling-enabled
  /// FaultInjector attached).
  /// A due campaign was deferred because the array is wear-hot and one
  /// extra eta step still admits the drift (the campaign stays due).
  bool wear_deferred_reprogram = false;
  /// A campaign this run exhausted the spare pool: the crossbar was retired
  /// and the tenant migrated to a fresh array (degradation ladder cleared).
  bool crossbar_retired = false;
  /// Cumulative leveling totals after this run (injector-wide).
  int rows_remapped = 0;
  int spares_remaining = 0;
  int crossbars_retired = 0;
  long long writes_leveled = 0;
  common::EnergyLatency inference;
  common::EnergyLatency reprogram;
  std::vector<LayerDecision> decisions;  ///< one per layer
};

/// Resumable controller state: everything run_inference mutates, with the
/// policies captured as binary blobs (policy/serialization). Produced by
/// OdinController::snapshot and consumed by restore; the serving checkpoint
/// (core/checkpoint) embeds one of these verbatim.
struct ControllerSnapshot {
  double programmed_at_s = 0.0;
  int reprogram_count = 0;
  int update_count = 0;
  double health_fraction = 0.0;
  bool degraded = false;
  double eta_scale = 1.0;
  int retry_count = 0;
  int degraded_runs = 0;
  /// Wear-leveling state (payload v4; zero for older checkpoints).
  int wear_deferred_reprograms = 0;
  int retired_seen = 0;
  /// Guardrail state.
  int updates_accepted = 0;
  int updates_rejected = 0;
  int updates_rolled_back = 0;
  int probation_left = 0;
  long long probation_mismatches = 0;
  long long probation_layers = 0;
  double pre_update_rate = 0.0;
  double mismatch_rate_ema = 0.0;
  /// Replay-buffer state.
  std::vector<policy::ReplayBuffer::Entry> buffer_entries;
  std::vector<policy::ReplayBuffer::Entry> buffer_quarantine;
  std::vector<policy::ReplayBuffer::Entry> last_update_batch;
  std::size_t buffer_dropped = 0;
  std::size_t buffer_quarantine_hits = 0;
  /// Policies (save_policy_binary blobs; last_good empty when absent).
  std::string policy_blob;
  std::string last_good_blob;
};

class OdinController {
 public:
  /// `policy` is typically the offline-bootstrapped policy; Odin owns and
  /// keeps adapting it. All referenced objects must outlive the controller.
  /// `faults` (optional, caller-owned) is the device's fault schedule: each
  /// programming attempt advances its wear, and its read-verify health
  /// feeds the feasibility checks and the degradation policy.
  OdinController(const ou::MappedModel& model,
                 const ou::NonIdealityModel& nonideal,
                 const ou::OuCostModel& cost, policy::OuPolicy policy,
                 OdinConfig config = {},
                 reram::FaultInjector* faults = nullptr);

  /// One inference run at absolute time `t_s` (monotonically increasing
  /// across calls). Returns everything that happened during the run.
  /// `deadline` (optional, caller-owned) bounds the work this run may do:
  /// reprogram campaigns and retries that do not fit the remaining budget
  /// are deferred, and the per-layer search stops with its best-so-far
  /// configuration when the budget runs out. Null (the default) is the
  /// unbounded pre-resilience behaviour, bit for bit.
  RunResult run_inference(double t_s, common::Deadline* deadline = nullptr);

  int reprogram_count() const noexcept { return reprogram_count_; }
  int update_count() const noexcept { return update_count_; }
  double programmed_at_s() const noexcept { return programmed_at_s_; }
  /// Guardrail counters (accepted == update_count when the guard is off).
  int updates_accepted() const noexcept { return updates_accepted_; }
  int updates_rejected() const noexcept { return updates_rejected_; }
  int updates_rolled_back() const noexcept { return updates_rolled_back_; }
  /// Replay-buffer observability.
  std::size_t buffer_dropped() const noexcept { return buffer_.dropped(); }
  std::size_t buffer_quarantined() const noexcept {
    return buffer_.quarantined();
  }

  /// Capture / reinstate the full mutable state (crash-safe serving).
  /// restore returns false when a policy blob fails to decode; the
  /// controller is left unchanged in that case.
  ControllerSnapshot snapshot();
  bool restore(const ControllerSnapshot& snap);
  /// Fault-recovery state.
  bool degraded() const noexcept { return degraded_; }
  int retry_count() const noexcept { return retry_count_; }
  int degraded_run_count() const noexcept { return degraded_runs_; }
  double measured_fault_fraction() const noexcept { return health_fraction_; }
  double eta_scale() const noexcept { return eta_scale_; }
  /// Wear-leveling surface (0 without a leveling-enabled injector).
  int wear_deferred_reprograms() const noexcept {
    return wear_deferred_reprograms_;
  }
  int rows_remapped() const noexcept;
  int spares_remaining() const noexcept;
  int crossbars_retired() const noexcept;
  long long writes_leveled() const noexcept;

  /// Declare that the weights were (re)programmed at `t_s` by an external
  /// event (e.g. a tenant switch that remapped the arrays); the cost of
  /// that event is the caller's to account.
  void reset_drift_clock(double t_s) noexcept { programmed_at_s_ = t_s; }
  policy::OuPolicy& policy() noexcept { return policy_; }
  const ou::MappedModel& model() const noexcept { return *model_; }
  const ou::OuLevelGrid& grid() const noexcept { return grid_; }

  /// Total cost of reprogramming every layer of the model.
  common::EnergyLatency full_reprogram_cost() const;

 private:
  const ou::MappedModel* model_;
  const ou::NonIdealityModel* nonideal_;
  const ou::OuCostModel* cost_;
  ou::OuLevelGrid grid_;
  /// Per-drift-step memo of the NF factors, rebuilt at the top of each run
  /// and shared read-only by every layer's search.
  ou::NonIdealityCache nf_cache_;
  policy::OuPolicy policy_;
  policy::ReplayBuffer buffer_;
  OdinConfig config_;
  reram::FaultInjector* faults_ = nullptr;  ///< caller-owned, may be null
  double programmed_at_s_ = 0.0;
  int reprogram_count_ = 0;
  int update_count_ = 0;
  /// Measured device health (read-verify after the last programming pass).
  double health_fraction_ = 0.0;
  /// Degraded mode: reprogramming cannot restore feasibility (or the array
  /// is over its stuck-cell budget / write-verify stopped converging), so
  /// the controller serves under relaxed budgets instead of reprogramming.
  bool degraded_ = false;
  double eta_scale_ = 1.0;  ///< ratcheting relaxation factor (>= 1)
  int retry_count_ = 0;
  int degraded_runs_ = 0;
  /// Wear-leveling observation: campaigns deferred for wear, and the
  /// injector's retired-crossbar count already folded into this
  /// controller's state (a delta above it means a migration happened).
  int wear_deferred_reprograms_ = 0;
  int retired_seen_ = 0;
  /// Guardrail state (see GuardPolicy). The incumbent that a promotion
  /// displaced is kept until its successor survives probation; the batch
  /// that trained the promotion is kept so a rollback can quarantine it.
  int updates_accepted_ = 0;
  int updates_rejected_ = 0;
  int updates_rolled_back_ = 0;
  int probation_left_ = 0;
  long long probation_mismatches_ = 0;
  long long probation_layers_ = 0;
  double pre_update_rate_ = 0.0;
  double mismatch_rate_ema_ = 0.0;
  std::optional<policy::OuPolicy> last_good_policy_;
  std::vector<policy::ReplayBuffer::Entry> last_update_batch_;

  void observe_mismatch_rate(RunResult& run, int layer_count);
  void maybe_update_policy(RunResult& run, double drift_s, double fault_nf);
};

}  // namespace odin::core
