// OdinController — the online learning loop of Algorithm 1.
//
// Per inference run at wall-clock time t:
//   1. If even the minimum OU violates the non-ideality constraint for the
//      elapsed drift, reprogram the ReRAM cells (cost accounted, drift clock
//      reset) before inferencing (lines 7-8).
//   2. For each layer: extract features Phi, predict (R,C) with the current
//      policy (line 5), run the best-OU search (line 6; resource-bounded by
//      default, exhaustive optionally), execute the layer with the best
//      configuration, and on a policy/search mismatch push (Phi, (R,C)*)
//      into the training buffer (lines 9-10).
//   3. When the buffer fills, retrain the policy on its contents and reset
//      it (line 11).
#pragma once

#include <vector>

#include "common/units.hpp"
#include "ou/cost_model.hpp"
#include "ou/mapped_model.hpp"
#include "ou/nonideality.hpp"
#include "ou/search.hpp"
#include "policy/buffer.hpp"
#include "policy/policy.hpp"

namespace odin::core {

enum class SearchKind { kResourceBounded, kExhaustive };

struct OdinConfig {
  SearchKind search = SearchKind::kResourceBounded;
  int search_steps = 3;  ///< the paper's K
  std::size_t buffer_capacity = 50;
  nn::TrainOptions update_options{.epochs = 100, .batch_size = 10,
                                  .learning_rate = 5e-3,
                                  .shuffle_seed = 0x0d1e};
  /// Entropy-gated search (extension, see bench/ablation_entropy_gate):
  /// when the policy's prediction entropy is below this threshold and its
  /// choice is feasible, the choice is executed without running the search
  /// at all. Negative disables the gate (vanilla Algorithm 1).
  double entropy_gate = -1.0;
};

struct LayerDecision {
  ou::OuConfig policy_choice;
  ou::OuConfig executed;  ///< the search's best (what actually runs)
  bool mismatch = false;
  int evaluations = 0;
};

struct RunResult {
  double time_s = 0.0;
  double elapsed_s = 0.0;  ///< since last programming, after any reprogram
  bool reprogrammed = false;
  bool policy_updated = false;
  int mismatches = 0;
  int searches_skipped = 0;  ///< layers served by the entropy gate
  common::EnergyLatency inference;
  common::EnergyLatency reprogram;
  std::vector<LayerDecision> decisions;  ///< one per layer
};

class OdinController {
 public:
  /// `policy` is typically the offline-bootstrapped policy; Odin owns and
  /// keeps adapting it. All referenced objects must outlive the controller.
  OdinController(const ou::MappedModel& model,
                 const ou::NonIdealityModel& nonideal,
                 const ou::OuCostModel& cost, policy::OuPolicy policy,
                 OdinConfig config = {});

  /// One inference run at absolute time `t_s` (monotonically increasing
  /// across calls). Returns everything that happened during the run.
  RunResult run_inference(double t_s);

  int reprogram_count() const noexcept { return reprogram_count_; }
  int update_count() const noexcept { return update_count_; }
  double programmed_at_s() const noexcept { return programmed_at_s_; }

  /// Declare that the weights were (re)programmed at `t_s` by an external
  /// event (e.g. a tenant switch that remapped the arrays); the cost of
  /// that event is the caller's to account.
  void reset_drift_clock(double t_s) noexcept { programmed_at_s_ = t_s; }
  policy::OuPolicy& policy() noexcept { return policy_; }
  const ou::MappedModel& model() const noexcept { return *model_; }
  const ou::OuLevelGrid& grid() const noexcept { return grid_; }

  /// Total cost of reprogramming every layer of the model.
  common::EnergyLatency full_reprogram_cost() const;

 private:
  const ou::MappedModel* model_;
  const ou::NonIdealityModel* nonideal_;
  const ou::OuCostModel* cost_;
  ou::OuLevelGrid grid_;
  /// Per-drift-step memo of the NF factors, rebuilt at the top of each run
  /// and shared read-only by every layer's search.
  ou::NonIdealityCache nf_cache_;
  policy::OuPolicy policy_;
  policy::ReplayBuffer buffer_;
  OdinConfig config_;
  double programmed_at_s_ = 0.0;
  int reprogram_count_ = 0;
  int update_count_ = 0;
};

}  // namespace odin::core
