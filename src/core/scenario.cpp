#include "core/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <numbers>
#include <sstream>
#include <utility>

#include "common/env.hpp"
#include "core/checkpoint.hpp"
#include "core/fleet.hpp"

namespace odin::core {

namespace {

constexpr std::uint64_t kDefaultScenarioSeed = 1;

/// Inter-layer pipeline speedup per extra PE of a shard block (the
/// campaign-scale stand-in for arch::interlayer_pipeline).
constexpr double kSpeedPerExtraPe = 0.25;

/// Drift/fault pricing: a storm's drift multiplier inflates service (more
/// verify/search work) and energy; the injector's unusable-cell fraction
/// adds retry overhead on both.
constexpr double kDriftServiceFactor = 0.5;
constexpr double kDriftEnergyFactor = 0.25;
constexpr double kFaultRetryFactor = 2.0;
/// Degraded out-of-band (shed) service relative to the full path.
constexpr double kShedServiceFactor = 0.5;
constexpr double kShedEnergyFactor = 0.6;
/// Base inference energy per second of base service time.
constexpr double kEnergyPerServiceSecond = 0.2;

double tier_slo_mult(const ScenarioConfig& c, PriorityTier t) noexcept {
  switch (t) {
    case PriorityTier::kGold: return c.gold_slo_mult;
    case PriorityTier::kSilver: return c.silver_slo_mult;
    default: return c.bronze_slo_mult;
  }
}

}  // namespace

double campaign_shard_speed(int pes) noexcept {
  return 1.0 + kSpeedPerExtraPe * static_cast<double>(std::max(1, pes) - 1);
}

void campaign_price(const ScenarioTenant& t, double drift_mult,
                    double fault_fraction, int pes, double& service_s,
                    double& energy_j) noexcept {
  const double penal = (1.0 + kDriftServiceFactor * (drift_mult - 1.0)) *
                       (1.0 + kFaultRetryFactor * fault_fraction);
  const double speed = campaign_shard_speed(pes);
  service_s = t.service_s * penal / speed;
  energy_j = t.energy_j * (1.0 + kDriftEnergyFactor * (drift_mult - 1.0)) *
             (1.0 + kFaultRetryFactor * fault_fraction);
}

void campaign_degrade(double& service_s, double& energy_j) noexcept {
  service_s *= kShedServiceFactor;
  energy_j *= kShedEnergyFactor;
}

std::vector<std::vector<int>> campaign_blocks_from_counts(
    const arch::PimConfig& pim, const std::vector<std::int32_t>& counts) {
  const std::vector<int> order = fleet_fill_order(pim, true);
  std::vector<std::vector<int>> out(counts.size());
  std::size_t pos = 0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    const auto take = static_cast<std::size_t>(std::max<std::int32_t>(
        0, counts[k]));
    out[k].assign(order.begin() + static_cast<std::ptrdiff_t>(pos),
                  order.begin() + static_cast<std::ptrdiff_t>(pos + take));
    pos += take;
  }
  return out;
}

const char* tier_name(PriorityTier tier) {
  switch (tier) {
    case PriorityTier::kGold: return "gold";
    case PriorityTier::kSilver: return "silver";
    default: return "bronze";
  }
}

std::uint64_t ScenarioConfig::resolved_seed() const {
  if (seed != 0) return seed;
  long long v = 0;
  if (common::env_long("ODIN_SCENARIO_SEED", v) && v >= 1)
    return static_cast<std::uint64_t>(v);
  return kDefaultScenarioSeed;
}

bool AutoscaleConfig::resolved_enabled() const {
  if (enabled >= 0) return enabled > 0;
  const char* v = common::env_string("ODIN_AUTOSCALE");
  if (v == nullptr) return true;
  const std::string_view s(v);
  if (s == "on" || s == "1") return true;
  if (s == "off" || s == "0") return false;
  std::fprintf(stderr,
               "odin: ignoring ODIN_AUTOSCALE='%s' (not on|off|1|0); "
               "using default (on)\n",
               v);
  return true;
}

double ScenarioTrace::diurnal(double t_s) const {
  const double amp = std::clamp(config.diurnal_amplitude, 0.0, 0.95);
  const double phase = 2.0 * std::numbers::pi *
                       static_cast<double>(config.diurnal_cycles) * t_s /
                       config.horizon_s;
  return 1.0 + amp * std::sin(phase - std::numbers::pi / 2.0);
}

bool ScenarioTrace::crowd_active(std::size_t crowd, double t_s) const {
  const FlashCrowd& f = flash[crowd];
  const double start = f.start_frac * config.horizon_s;
  return t_s >= start && t_s < start + f.duration_frac * config.horizon_s;
}

bool ScenarioTrace::in_flash_phase(double t_s) const {
  for (std::size_t c = 0; c < flash.size(); ++c)
    if (crowd_active(c, t_s)) return true;
  return false;
}

double ScenarioTrace::tenant_weight(std::size_t i, double t_s) const {
  const ScenarioTenant& t = tenants[i];
  if (t_s < t.arrive_s || t_s >= t.depart_s) return 0.0;
  double w = t.weight;
  for (std::size_t c = 0; c < flash.size(); ++c)
    if (((t.flash_mask >> c) & 1u) != 0 && crowd_active(c, t_s))
      w *= flash[c].multiplier;
  return w;
}

std::vector<int> ScenarioTrace::storm_pes(std::size_t storm) const {
  const FaultStorm& s = storms[storm];
  const int cx = s.center_pe % pim.mesh_x;
  const int cy = s.center_pe / pim.mesh_x;
  std::vector<int> out;
  for (int y = 0; y < pim.mesh_y; ++y)
    for (int x = 0; x < pim.mesh_x; ++x)
      if (std::abs(x - cx) <= s.radius && std::abs(y - cy) <= s.radius)
        out.push_back(y * pim.mesh_x + x);
  return out;
}

ScenarioTrace build_trace(const ScenarioConfig& config,
                          const arch::PimConfig& pim) {
  ScenarioTrace trace;
  trace.config = config;
  trace.config.seed = config.resolved_seed();
  trace.pim = pim;
  const double h = config.horizon_s;
  const auto T = static_cast<std::size_t>(std::max(1, config.tenants));

  common::Rng root(trace.config.seed);
  common::Rng tenant_rng = root.fork(1);
  common::Rng flash_rng = root.fork(2);
  common::Rng storm_rng = root.fork(3);

  // Flash-crowd windows (at most 32 — ScenarioTenant::flash_mask width).
  if (!config.flash.empty()) {
    trace.flash = config.flash;
  } else {
    for (int c = 0; c < std::min(config.flash_crowds, 32); ++c) {
      FlashCrowd f;
      f.start_frac = flash_rng.uniform(0.35, 0.75);
      f.duration_frac = config.flash_duration_frac;
      f.multiplier = config.flash_multiplier;
      f.tenant_frac = config.flash_tenant_frac;
      trace.flash.push_back(f);
    }
  }
  if (trace.flash.size() > 32) trace.flash.resize(32);

  // Fault storms: drawn (or copied), centers resolved, ascending starts.
  const int pes = std::max(1, pim.pes);
  if (!config.storms.empty()) {
    trace.storms = config.storms;
    for (FaultStorm& s : trace.storms)
      if (s.center_pe < 0 || s.center_pe >= pes)
        s.center_pe = static_cast<int>(
            storm_rng.uniform_index(static_cast<std::uint64_t>(pes)));
  } else {
    for (int i = 0; i < config.fault_storms; ++i) {
      FaultStorm s;
      s.start_frac = storm_rng.uniform(0.25, 0.85);
      s.duration_frac = config.storm_duration_frac;
      s.drift_multiplier = config.storm_drift_multiplier;
      s.center_pe = static_cast<int>(
          storm_rng.uniform_index(static_cast<std::uint64_t>(pes)));
      s.radius = config.storm_radius;
      s.campaigns = config.storm_campaigns;
      trace.storms.push_back(s);
    }
  }
  std::sort(trace.storms.begin(), trace.storms.end(),
            [](const FaultStorm& a, const FaultStorm& b) {
              if (a.start_frac != b.start_frac)
                return a.start_frac < b.start_frac;
              return a.center_pe < b.center_pe;
            });

  // Tenants: tiers by index share, weights/service scales/churn windows
  // from the seed. Flash crowds target *contiguous index ranges* — initial
  // placement below is contiguous too, so a crowd's load lands on one or
  // two shards (the correlated overload the autoscaler exists for).
  trace.tenants.resize(T);
  const auto gold_n = static_cast<std::size_t>(
      std::clamp(config.gold_share, 0.0, 1.0) * static_cast<double>(T));
  const auto silver_n = static_cast<std::size_t>(
      std::clamp(config.gold_share + config.silver_share, 0.0, 1.0) *
      static_cast<double>(T));
  std::vector<double> scale(T, 1.0);
  for (std::size_t i = 0; i < T; ++i) {
    ScenarioTenant& t = trace.tenants[i];
    char name[16];
    std::snprintf(name, sizeof(name), "t%05zu", i);
    t.name = name;
    t.tier = i < gold_n ? PriorityTier::kGold
             : i < silver_n ? PriorityTier::kSilver
                            : PriorityTier::kBronze;
    t.weight = tenant_rng.uniform(0.5, 2.0);
    scale[i] = tenant_rng.uniform(0.5, 3.0);
    // Churn: tenant 0 is pinned always-active so the arrival process never
    // goes empty; churned tenants get a late arrival and/or early
    // departure. Non-churned tenants never depart (the horizon end is not
    // a departure — arrivals may run slightly past it).
    const bool churned = i > 0 && tenant_rng.bernoulli(config.churn_frac);
    const double a = tenant_rng.uniform();
    const double d = tenant_rng.uniform();
    if (churned) {
      t.arrive_s = 0.5 * h * a;
      t.depart_s = h * (0.55 + 0.45 * d);
    } else {
      t.arrive_s = 0.0;
      t.depart_s = std::numeric_limits<double>::infinity();
    }
  }
  for (std::size_t c = 0; c < trace.flash.size(); ++c) {
    const auto len = static_cast<std::size_t>(std::clamp(
        trace.flash[c].tenant_frac, 0.0, 1.0) * static_cast<double>(T));
    const std::size_t start = flash_rng.uniform_index(T);
    for (std::size_t j = 0; j < len; ++j)
      trace.tenants[(start + j) % T].flash_mask |= 1u << c;
  }

  // Service-time calibration: pick the base unit so mean offered load hits
  // target_utilization of the initial fleet's service capacity (shard k
  // retires service-seconds at rate shard_speed(pes_k)).
  const int shards_for_cal = std::max(1, std::min(pes, 6));
  const auto blocks = fleet_partition_pes(fleet_fill_order(pim, true),
                                          shards_for_cal);
  double capacity = 0.0;
  for (const auto& b : blocks)
    capacity += campaign_shard_speed(static_cast<int>(b.size()));
  double wsum = 0.0, wscale = 0.0;
  for (std::size_t i = 0; i < T; ++i) {
    wsum += trace.tenants[i].weight;
    wscale += trace.tenants[i].weight * scale[i];
  }
  const double mean_scale = wscale / wsum;
  const double unit = std::clamp(config.target_utilization, 0.01, 0.99) *
                      capacity * h /
                      (static_cast<double>(config.requests) * mean_scale);
  const double mean_service = unit * mean_scale;
  for (std::size_t i = 0; i < T; ++i) {
    ScenarioTenant& t = trace.tenants[i];
    t.service_s = unit * scale[i];
    t.energy_j = kEnergyPerServiceSecond * t.service_s;
    t.slo_s = tier_slo_mult(config, t.tier) * mean_service;
  }

  trace.base_rate = static_cast<double>(config.requests) / (h * wsum);
  return trace;
}

ArrivalGenerator::ArrivalGenerator(const ScenarioTrace& trace)
    : trace_(&trace), rng_(common::Rng(trace.config.seed).fork(7)) {
  // Weight-profile change points: churn edges and flash-crowd edges. The
  // per-tenant weight is piecewise constant between them (diurnal shaping
  // enters through the rate, not the pick weights).
  for (const ScenarioTenant& t : trace.tenants) {
    if (t.arrive_s > 0.0) boundaries_.push_back(t.arrive_s);
    if (std::isfinite(t.depart_s)) boundaries_.push_back(t.depart_s);
  }
  const double h = trace.config.horizon_s;
  for (const FlashCrowd& f : trace.flash) {
    boundaries_.push_back(f.start_frac * h);
    boundaries_.push_back((f.start_frac + f.duration_frac) * h);
  }
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());
  rebuild_cdf();
}

void ArrivalGenerator::rebuild_cdf() {
  cdf_.resize(trace_->tenants.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < trace_->tenants.size(); ++i) {
    sum += trace_->tenant_weight(i, t_);
    cdf_[i] = sum;
  }
}

ArrivalGenerator::Arrival ArrivalGenerator::next() {
  for (;;) {
    const double total = cdf_.empty() ? 0.0 : cdf_.back();
    if (total <= 0.0) {
      // Everyone inactive: jump to the next change point (tenant 0 is
      // always-active, so this only happens before a synthetic trace's
      // first arrival edge).
      assert(next_boundary_ < boundaries_.size());
      t_ = boundaries_[next_boundary_++];
      rebuild_cdf();
      continue;
    }
    const double rate = trace_->base_rate * trace_->diurnal(t_) * total;
    const double u = rng_.uniform();
    const double dt = -std::log1p(-u) / rate;
    if (next_boundary_ < boundaries_.size() &&
        t_ + dt >= boundaries_[next_boundary_]) {
      // The exponential gap is memoryless: restart it at the boundary
      // under the new weight profile instead of carrying residuals.
      t_ = boundaries_[next_boundary_++];
      rebuild_cdf();
      continue;
    }
    t_ += dt;
    const double pick = rng_.uniform() * total;
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), pick);
    auto tenant = static_cast<std::size_t>(
        std::distance(cdf_.begin(), it));
    if (tenant >= cdf_.size()) tenant = cdf_.size() - 1;
    ++emitted_;
    return {t_, static_cast<int>(tenant)};
  }
}

void ArrivalGenerator::skip(std::uint64_t events) {
  for (std::uint64_t i = 0; i < events; ++i) next();
}

// ---------------------------------------------------------------------------
// Campaign state codec (checkpoint payload v6).

namespace {

template <typename T, typename Fn>
void encode_vec(const std::vector<T>& v, common::ByteWriter& out, Fn enc) {
  out.u64(v.size());
  for (const T& x : v) enc(x);
}

bool vec_count(common::ByteReader& in, std::uint64_t& n) {
  n = in.u64();
  return in.ok() && n <= (1u << 24);
}

}  // namespace

void encode_campaign_state(const CampaignState& s, common::ByteWriter& out) {
  out.u64(s.seed);
  out.u64(s.requests);
  out.i32(s.tenants);
  out.i32(s.shards);
  out.i32(s.epochs);
  out.boolean(s.autoscale);
  out.u64(s.next_event);
  out.f64(s.clock_s);
  out.i32(s.epoch);
  out.i32(s.storms_fired);
  out.i32(s.rescales);
  out.i64(s.migrations);
  out.i64(s.storm_campaigns_fired);
  out.i64(s.misses);
  out.i64(s.sheds);
  out.i64(s.flash_requests);
  out.f64(s.energy_j);
  out.f64(s.edp_sum);
  out.f64(s.migration_s);
  out.f64(s.migration_energy_j);
  encode_vec(s.shard_busy_until_s, out, [&](double v) { out.f64(v); });
  encode_vec(s.shard_pes, out, [&](std::int32_t v) { out.i32(v); });
  encode_vec(s.tenant_shard, out, [&](std::int32_t v) { out.i32(v); });
  encode_vec(s.shard_demand, out, [&](double v) { out.f64(v); });
  encode_vec(s.tenant_demand, out, [&](double v) { out.f64(v); });
  encode_vec(s.shard_wear, out, [&](const reram::FaultInjector::WearState& w) {
    out.i32(w.campaigns);
    out.i32(w.stuck_cells);
    out.i32(w.failed_wordlines);
    out.i32(w.failed_bitlines);
    out.i32(w.crossbars_retired);
  });
  encode_vec(s.storm_shard_mask, out, [&](std::uint64_t v) { out.u64(v); });
  encode_sketch(s.slack_p1, out);
  encode_sketch(s.flash_slack_p1, out);
  for (const QuantileSketch& q : s.tier_slack_p1) encode_sketch(q, out);
  encode_sojourn_sketch(s.sojourn, out);
  encode_vec(s.epoch_energy_j, out, [&](double v) { out.f64(v); });
  encode_vec(s.epoch_edp_sum, out, [&](double v) { out.f64(v); });
  encode_vec(s.epoch_requests, out, [&](std::int64_t v) { out.i64(v); });
  encode_vec(s.epoch_misses, out, [&](std::int64_t v) { out.i64(v); });
  encode_vec(s.epoch_sheds, out, [&](std::int64_t v) { out.i64(v); });
  encode_vec(s.epoch_slack_p1, out,
             [&](const QuantileSketch& q) { encode_sketch(q, out); });
}

std::optional<CampaignState> decode_campaign_state(common::ByteReader& in) {
  CampaignState s;
  s.seed = in.u64();
  s.requests = in.u64();
  s.tenants = in.i32();
  s.shards = in.i32();
  s.epochs = in.i32();
  s.autoscale = in.boolean();
  s.next_event = in.u64();
  s.clock_s = in.f64();
  s.epoch = in.i32();
  s.storms_fired = in.i32();
  s.rescales = in.i32();
  s.migrations = in.i64();
  s.storm_campaigns_fired = in.i64();
  s.misses = in.i64();
  s.sheds = in.i64();
  s.flash_requests = in.i64();
  s.energy_j = in.f64();
  s.edp_sum = in.f64();
  s.migration_s = in.f64();
  s.migration_energy_j = in.f64();
  std::uint64_t n = 0;
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.shard_busy_until_s.push_back(in.f64());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.shard_pes.push_back(in.i32());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.tenant_shard.push_back(in.i32());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.shard_demand.push_back(in.f64());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.tenant_demand.push_back(in.f64());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) {
    reram::FaultInjector::WearState w;
    w.campaigns = in.i32();
    w.stuck_cells = in.i32();
    w.failed_wordlines = in.i32();
    w.failed_bitlines = in.i32();
    w.crossbars_retired = in.i32();
    s.shard_wear.push_back(w);
  }
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.storm_shard_mask.push_back(in.u64());
  if (!decode_sketch(in, s.slack_p1)) return std::nullopt;
  if (!decode_sketch(in, s.flash_slack_p1)) return std::nullopt;
  for (QuantileSketch& q : s.tier_slack_p1)
    if (!decode_sketch(in, q)) return std::nullopt;
  if (!decode_sojourn_sketch(in, s.sojourn)) return std::nullopt;
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.epoch_energy_j.push_back(in.f64());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.epoch_edp_sum.push_back(in.f64());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.epoch_requests.push_back(in.i64());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.epoch_misses.push_back(in.i64());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) s.epoch_sheds.push_back(in.i64());
  if (!vec_count(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) {
    QuantileSketch q;
    if (!decode_sketch(in, q)) return std::nullopt;
    s.epoch_slack_p1.push_back(q);
  }
  if (!in.ok()) return std::nullopt;
  return s;
}

// ---------------------------------------------------------------------------
// Campaign engine.

// Contiguity matters here: flash crowds target contiguous tenant index
// ranges, so a crowd's overload lands shard-local.
std::vector<std::int32_t> campaign_initial_placement(
    const ScenarioTrace& trace, const std::vector<std::int32_t>& shard_pes) {
  const std::size_t T = trace.tenants.size();
  const std::size_t K = shard_pes.size();
  double total = 0.0;
  std::vector<double> demand(T, 0.0);
  for (std::size_t i = 0; i < T; ++i) {
    demand[i] = trace.tenants[i].weight * trace.tenants[i].service_s;
    total += demand[i];
  }
  double pes_total = 0.0;
  for (std::int32_t p : shard_pes) pes_total += static_cast<double>(p);
  std::vector<std::int32_t> out(T, 0);
  std::size_t k = 0;
  double acc = 0.0, cut = total * static_cast<double>(shard_pes[0]) / pes_total;
  for (std::size_t i = 0; i < T; ++i) {
    if (acc >= cut && k + 1 < K) {
      ++k;
      cut += total * static_cast<double>(shard_pes[k]) / pes_total;
    }
    out[i] = static_cast<std::int32_t>(k);
    acc += demand[i];
  }
  return out;
}

namespace {

struct TierAgg {
  int tenants = 0;
  std::int64_t runs = 0;
  std::int64_t misses = 0;
  std::int64_t sheds = 0;
};

std::optional<CampaignResult> run_campaign_impl(
    const CampaignConfig& config, const ServingCheckpoint* resume_ckpt) {
  ScenarioConfig scfg = config.scenario;
  scfg.seed = scfg.resolved_seed();
  const ScenarioTrace trace = build_trace(scfg, config.pim);
  const int pes_total = std::max(1, config.pim.pes);
  const int K = std::clamp(config.shards, 1, pes_total);
  const int E = std::max(1, config.epochs);
  const bool autoscale = config.autoscale.resolved_enabled();
  const std::size_t T = trace.tenants.size();
  const double h = scfg.horizon_s;

  CampaignState st;
  st.seed = scfg.seed;
  st.requests = static_cast<std::uint64_t>(std::max<long long>(
      0, scfg.requests));
  st.tenants = static_cast<std::int32_t>(T);
  st.shards = K;
  st.epochs = E;
  st.autoscale = autoscale;
  {
    const auto blocks =
        fleet_partition_pes(fleet_fill_order(config.pim, true), K);
    st.shard_pes.resize(static_cast<std::size_t>(K));
    for (std::size_t k = 0; k < blocks.size(); ++k)
      st.shard_pes[k] = static_cast<std::int32_t>(blocks[k].size());
  }
  st.shard_busy_until_s.assign(static_cast<std::size_t>(K), 0.0);
  st.shard_demand.assign(static_cast<std::size_t>(K), 0.0);
  st.tenant_demand.assign(T, 0.0);
  st.tenant_shard = campaign_initial_placement(trace, st.shard_pes);
  st.epoch_energy_j.assign(static_cast<std::size_t>(E), 0.0);
  st.epoch_edp_sum.assign(static_cast<std::size_t>(E), 0.0);
  st.epoch_requests.assign(static_cast<std::size_t>(E), 0);
  st.epoch_misses.assign(static_cast<std::size_t>(E), 0);
  st.epoch_sheds.assign(static_cast<std::size_t>(E), 0);
  st.epoch_slack_p1.assign(static_cast<std::size_t>(E), QuantileSketch(0.01));

  std::vector<TenantStats> stats(T);
  for (std::size_t i = 0; i < T; ++i) {
    stats[i].name = trace.tenants[i].name;
    stats[i].slo_s = trace.tenants[i].slo_s;
  }

  // Per-shard device wear: storms fire campaigns and drift windows on the
  // shards whose PE blocks they overlap.
  reram::FaultScheduleParams fp;
  fp.wordline_fail_rate = 2e-3;
  fp.bitline_fail_rate = 2e-3;
  fp.write_fail_rate = 0.05;
  std::vector<std::unique_ptr<reram::FaultInjector>> inj;
  inj.reserve(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k)
    inj.push_back(std::make_unique<reram::FaultInjector>(
        fp, config.fault_seed + static_cast<std::uint64_t>(k)));

  ArrivalGenerator gen(trace);

  if (resume_ckpt != nullptr) {
    st = resume_ckpt->scenario;
    stats = resume_ckpt->result.tenants;
    if (stats.size() != T) return std::nullopt;
    gen.skip(st.next_event);
    // Re-apply fired storms' drift windows to the shards they actually
    // hit, then replay each shard's campaign history against its wear
    // fingerprint (FaultInjector::fast_forward).
    if (st.storm_shard_mask.size() !=
            static_cast<std::size_t>(st.storms_fired) ||
        st.shard_wear.size() != static_cast<std::size_t>(K))
      return std::nullopt;
    for (std::int32_t s = 0; s < st.storms_fired; ++s) {
      const FaultStorm& storm = trace.storms[static_cast<std::size_t>(s)];
      const reram::DriftBurst burst{storm.start_frac * h,
                                    storm.duration_frac * h,
                                    storm.drift_multiplier};
      for (int k = 0; k < K; ++k)
        if ((st.storm_shard_mask[static_cast<std::size_t>(s)] >>
             static_cast<unsigned>(k)) &
            1u)
          inj[static_cast<std::size_t>(k)]->add_burst(burst);
    }
    for (int k = 0; k < K; ++k)
      if (!inj[static_cast<std::size_t>(k)]->fast_forward(
              st.shard_wear[static_cast<std::size_t>(k)]))
        return std::nullopt;
  }

  std::optional<CheckpointWriter> writer;
  if (!config.checkpoint.base_path.empty())
    writer.emplace(config.checkpoint.base_path);
  const int every = std::max(1, config.checkpoint.every_runs);

  auto write_checkpoint = [&]() {
    if (!writer.has_value()) return;
    st.shard_wear.resize(static_cast<std::size_t>(K));
    for (int k = 0; k < K; ++k)
      st.shard_wear[static_cast<std::size_t>(k)] =
          inj[static_cast<std::size_t>(k)]->wear_state();
    ServingCheckpoint ckpt;
    ckpt.segment = static_cast<std::uint64_t>(st.epoch);
    ckpt.next_run = st.next_event;
    ckpt.segments = E;
    ckpt.horizon_runs = static_cast<int>(std::min<long long>(
        scfg.requests, std::numeric_limits<int>::max()));
    ckpt.t_start_s = 0.0;
    ckpt.t_end_s = h;
    for (const ScenarioTenant& t : trace.tenants)
      ckpt.tenant_names.push_back(t.name);
    ckpt.result.label = "campaign";
    ckpt.result.tenants = stats;
    ckpt.sojourn_cap = static_cast<std::uint64_t>(config.sojourn_cap);
    ckpt.has_scenario = true;
    ckpt.scenario = st;
    writer->write(ckpt);
  };

  // Close epoch `e`'s accumulators and (maybe) autoscale for the next one:
  // re-cut PE blocks proportionally to the epoch's shard demand, then
  // migrate tenants off still-overloaded shards. Migration cost is
  // ledgered, never added to a shard's FIFO clock — off the critical path.
  auto close_epoch = [&]() {
    double total = 0.0;
    for (double d : st.shard_demand) total += d;
    if (autoscale && total > 0.0) {
      auto pes_of = [&](std::size_t k) {
        return static_cast<double>(std::max<std::int32_t>(1, st.shard_pes[k]));
      };
      const double mean_pp = total / static_cast<double>(pes_total);
      double max_pp = 0.0;
      for (std::size_t k = 0; k < st.shard_demand.size(); ++k)
        max_pp = std::max(max_pp, st.shard_demand[k] / pes_of(k));
      if (max_pp > config.autoscale.imbalance_threshold * mean_pp) {
        const auto blocks =
            rescale_shard_blocks(config.pim, true, st.shard_demand);
        for (std::size_t k = 0; k < blocks.size(); ++k)
          st.shard_pes[k] = static_cast<std::int32_t>(blocks[k].size());
        ++st.rescales;
        // Tenant migration: peel the hottest tenants off the most
        // overloaded shard onto the coolest until per-PE demand flattens
        // (or no move improves it). Deterministic tie-breaks.
        for (std::size_t iter = 0; iter < T; ++iter) {
          std::size_t a = 0, b = 0;
          double hi = -1.0, lo = std::numeric_limits<double>::infinity();
          for (std::size_t k = 0; k < st.shard_demand.size(); ++k) {
            const double pp = st.shard_demand[k] / pes_of(k);
            if (pp > hi) {
              hi = pp;
              a = k;
            }
            if (pp < lo) {
              lo = pp;
              b = k;
            }
          }
          // The rescale above equalizes per-PE demand only to 1-PE
          // granularity; migration chases the rounding residual, so its
          // stop bar sits well below the rescale trigger.
          if (a == b || hi <= kMigrateResidualThreshold * mean_pp) break;
          std::size_t best = T;
          double best_d = 0.0;
          for (std::size_t i = 0; i < T; ++i)
            if (st.tenant_shard[i] == static_cast<std::int32_t>(a) &&
                st.tenant_demand[i] > best_d) {
              best_d = st.tenant_demand[i];
              best = i;
            }
          if (best == T) break;
          const double new_a = (st.shard_demand[a] - best_d) / pes_of(a);
          const double new_b = (st.shard_demand[b] + best_d) / pes_of(b);
          if (std::max(new_a, new_b) >= hi) break;
          st.tenant_shard[best] = static_cast<std::int32_t>(b);
          st.shard_demand[a] -= best_d;
          st.shard_demand[b] += best_d;
          ++st.migrations;
          st.migration_s += config.autoscale.migration_cost_s;
          st.migration_energy_j += config.autoscale.migration_energy_j;
        }
      }
    }
    std::fill(st.shard_demand.begin(), st.shard_demand.end(), 0.0);
    std::fill(st.tenant_demand.begin(), st.tenant_demand.end(), 0.0);
  };

  long long served_now = 0;
  bool stopped = false;
  while (st.next_event < st.requests) {
    if (config.max_requests > 0 && served_now >= config.max_requests) {
      stopped = true;
      break;
    }
    const ArrivalGenerator::Arrival arr = gen.next();
    const double t = arr.t_s;
    const auto tenant = static_cast<std::size_t>(arr.tenant);

    // Fire due storms: drift window + correlated campaign burst on every
    // shard whose block owns an affected PE (trace clock, not draws).
    while (static_cast<std::size_t>(st.storms_fired) < trace.storms.size() &&
           trace.storms[static_cast<std::size_t>(st.storms_fired)].start_frac *
                   h <=
               t) {
      const auto si = static_cast<std::size_t>(st.storms_fired);
      const FaultStorm& storm = trace.storms[si];
      const auto blocks = campaign_blocks_from_counts(config.pim, st.shard_pes);
      std::vector<std::int32_t> shard_of(
          static_cast<std::size_t>(pes_total), 0);
      for (std::size_t k = 0; k < blocks.size(); ++k)
        for (int pe : blocks[k])
          shard_of[static_cast<std::size_t>(pe)] =
              static_cast<std::int32_t>(k);
      std::uint64_t mask = 0;
      for (int pe : trace.storm_pes(si))
        mask |= 1ull << static_cast<unsigned>(
                    shard_of[static_cast<std::size_t>(pe)]);
      const reram::DriftBurst burst{storm.start_frac * h,
                                    storm.duration_frac * h,
                                    storm.drift_multiplier};
      for (int k = 0; k < K; ++k)
        if ((mask >> static_cast<unsigned>(k)) & 1u) {
          inj[static_cast<std::size_t>(k)]->add_burst(burst);
          inj[static_cast<std::size_t>(k)]->program_campaigns(storm.campaigns);
          st.storm_campaigns_fired += storm.campaigns;
        }
      st.storm_shard_mask.push_back(mask);
      ++st.storms_fired;
    }

    // Epoch rollover(s) before serving: close accumulators, autoscale.
    const int ep = std::min(E - 1, static_cast<int>(t / h *
                                                    static_cast<double>(E)));
    while (st.epoch < ep) {
      close_epoch();
      ++st.epoch;
    }

    // Serve on the tenant's shard: FIFO queue, service priced by the PE
    // block, the injector's drift window and its fault fraction.
    const ScenarioTenant& sp = trace.tenants[tenant];
    TenantStats& ts = stats[tenant];
    const auto k = static_cast<std::size_t>(st.tenant_shard[tenant]);
    const double mult = inj[k]->drift_time_multiplier(t);
    const double ff = inj[k]->fault_fraction();
    double service = 0.0, energy = 0.0;
    campaign_price(sp, mult, ff, st.shard_pes[k], service, energy);
    const double demand_service = service;
    const double wait = std::max(0.0, st.shard_busy_until_s[k] - t);
    const bool shed = wait > config.queue_shed_slo_mult * sp.slo_s;
    double sojourn;
    if (shed) {
      // Degraded out-of-band serve: does not occupy the shard's FIFO.
      campaign_degrade(service, energy);
      sojourn = service;
      ++ts.shed_runs;
      ++st.sheds;
      ++st.epoch_sheds[static_cast<std::size_t>(st.epoch)];
    } else {
      const double start = std::max(st.shard_busy_until_s[k], t);
      st.shard_busy_until_s[k] = start + service;
      sojourn = st.shard_busy_until_s[k] - t;
    }
    const double slack = sp.slo_s - sojourn;
    if (sojourn > sp.slo_s) {
      ++ts.deadline_misses;
      ++st.misses;
      ++st.epoch_misses[static_cast<std::size_t>(st.epoch)];
    }
    ts.record_sojourn(sojourn, config.sojourn_cap);
    ++ts.runs;
    ts.service_s += service;
    ts.inference.energy_j += energy;
    ts.inference.latency_s += service;
    const double edp = energy * service;
    st.energy_j += energy;
    st.edp_sum += edp;
    st.sojourn.add(sojourn);
    st.slack_p1.add(slack);
    st.tier_slack_p1[static_cast<int>(sp.tier)].add(slack);
    if (trace.in_flash_phase(t)) {
      ++st.flash_requests;
      st.flash_slack_p1.add(slack);
    }
    const auto e = static_cast<std::size_t>(st.epoch);
    ++st.epoch_requests[e];
    st.epoch_energy_j[e] += energy;
    st.epoch_edp_sum[e] += edp;
    st.epoch_slack_p1[e].add(slack);
    st.shard_demand[k] += demand_service;
    st.tenant_demand[tenant] += demand_service;
    st.clock_s = t;

    ++st.next_event;
    ++served_now;
    if (writer.has_value() && served_now % every == 0) write_checkpoint();
  }
  write_checkpoint();
  (void)stopped;

  st.shard_wear.resize(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k)
    st.shard_wear[static_cast<std::size_t>(k)] =
        inj[static_cast<std::size_t>(k)]->wear_state();

  CampaignResult r;
  r.label = autoscale ? "autoscaled" : "static";
  r.scenario = scfg;
  r.shards = K;
  r.autoscaled = autoscale;
  r.resumed = resume_ckpt != nullptr;
  r.roster = trace.tenants;
  r.tenants = std::move(stats);
  r.trajectory.reserve(static_cast<std::size_t>(E));
  for (int e = 0; e < E; ++e) {
    const auto i = static_cast<std::size_t>(e);
    CampaignEpoch ep;
    ep.t_end_s = h * static_cast<double>(e + 1) / static_cast<double>(E);
    ep.requests = st.epoch_requests[i];
    ep.misses = st.epoch_misses[i];
    ep.sheds = st.epoch_sheds[i];
    ep.energy_j = st.epoch_energy_j[i];
    ep.edp_sum = st.epoch_edp_sum[i];
    ep.p99_slack_s = st.epoch_slack_p1[i].estimate();
    r.trajectory.push_back(ep);
  }
  r.state = std::move(st);
  return r;
}

}  // namespace

std::int64_t CampaignResult::requests() const noexcept {
  return static_cast<std::int64_t>(state.next_event);
}

double CampaignResult::p99_slack_s() const noexcept {
  return state.slack_p1.estimate();
}

double CampaignResult::flash_p99_slack_s() const noexcept {
  return state.flash_slack_p1.estimate();
}

double CampaignResult::tier_p99_slack_s(PriorityTier tier) const noexcept {
  return state.tier_slack_p1[static_cast<int>(tier)].estimate();
}

double CampaignResult::edp_per_request() const noexcept {
  return state.next_event > 0
             ? state.edp_sum / static_cast<double>(state.next_event)
             : 0.0;
}

std::string CampaignResult::summary(bool include_trajectory) const {
  std::string out;
  char line[512];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };
  emit("scenario seed=%llu tenants=%d requests=%lld shards=%d epochs=%d "
       "autoscale=%d\n",
       static_cast<unsigned long long>(scenario.seed),
       static_cast<int>(roster.size()),
       static_cast<long long>(state.requests), shards, state.epochs,
       autoscaled ? 1 : 0);
  emit("totals requests=%lld misses=%lld sheds=%lld migrations=%lld "
       "rescales=%d storms=%d storm_campaigns=%lld\n",
       static_cast<long long>(state.next_event),
       static_cast<long long>(state.misses),
       static_cast<long long>(state.sheds),
       static_cast<long long>(state.migrations), state.rescales,
       state.storms_fired,
       static_cast<long long>(state.storm_campaigns_fired));
  emit("latency p99_slack_s=%.17g flash_p99_slack_s=%.17g "
       "flash_requests=%lld sojourn_p99_s=%.17g sojourn_mean_s=%.17g\n",
       p99_slack_s(), flash_p99_slack_s(),
       static_cast<long long>(state.flash_requests),
       state.sojourn.percentile(99.0), state.sojourn.mean());
  emit("energy total_j=%.17g edp_per_request=%.17g migration_s=%.17g "
       "migration_energy_j=%.17g\n",
       state.energy_j, edp_per_request(), state.migration_s,
       state.migration_energy_j);
  TierAgg agg[3];
  for (std::size_t i = 0; i < roster.size(); ++i) {
    TierAgg& a = agg[static_cast<int>(roster[i].tier)];
    ++a.tenants;
    a.runs += tenants[i].runs;
    a.misses += tenants[i].deadline_misses;
    a.sheds += tenants[i].shed_runs;
  }
  for (int tier = 0; tier < 3; ++tier)
    emit("tier %s tenants=%d runs=%lld misses=%lld sheds=%lld "
         "p99_slack_s=%.17g\n",
         tier_name(static_cast<PriorityTier>(tier)), agg[tier].tenants,
         static_cast<long long>(agg[tier].runs),
         static_cast<long long>(agg[tier].misses),
         static_cast<long long>(agg[tier].sheds),
         state.tier_slack_p1[tier].estimate());
  if (include_trajectory)
    for (std::size_t e = 0; e < trajectory.size(); ++e) {
      const CampaignEpoch& ep = trajectory[e];
      emit("epoch %zu t_end_s=%.17g requests=%lld misses=%lld sheds=%lld "
           "p99_slack_s=%.17g edp_per_request=%.17g\n",
           e, ep.t_end_s, static_cast<long long>(ep.requests),
           static_cast<long long>(ep.misses),
           static_cast<long long>(ep.sheds), ep.p99_slack_s,
           ep.edp_per_request());
    }
  return out;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  auto result = run_campaign_impl(config, nullptr);
  assert(result.has_value());  // only a resume checkpoint can fail
  return std::move(*result);
}

std::optional<CampaignResult> resume_campaign(const CampaignConfig& config) {
  if (config.checkpoint.base_path.empty()) return std::nullopt;
  const auto ckpt = load_latest_checkpoint(config.checkpoint.base_path);
  if (!ckpt.has_value() || !ckpt->has_scenario || ckpt->has_cluster)
    return std::nullopt;
  // Wrong-geometry refusal: the campaign state only reinstates onto the
  // identical scenario (seed/requests/tenants/shards/epochs/autoscale and
  // the sojourn retention cap).
  ScenarioConfig scfg = config.scenario;
  scfg.seed = scfg.resolved_seed();
  const int pes_total = std::max(1, config.pim.pes);
  const CampaignState& s = ckpt->scenario;
  if (s.seed != scfg.seed ||
      s.requests != static_cast<std::uint64_t>(
                        std::max<long long>(0, scfg.requests)) ||
      s.tenants != std::max(1, scfg.tenants) ||
      s.shards != std::clamp(config.shards, 1, pes_total) ||
      s.epochs != std::max(1, config.epochs) ||
      s.autoscale != config.autoscale.resolved_enabled())
    return std::nullopt;
  if (ckpt->sojourn_cap != static_cast<std::uint64_t>(config.sojourn_cap))
    return std::nullopt;
  CampaignConfig cont = config;
  cont.max_requests = 0;
  return run_campaign_impl(cont, &*ckpt);
}

void apply_trace_to_serving(const ScenarioTrace& trace, ServingConfig& sc) {
  const int runs = sc.horizon.runs;
  const int segs = std::max(1, sc.segments);
  assert(runs >= segs);
  ArrivalGenerator gen(trace);
  std::vector<double> arrivals(static_cast<std::size_t>(runs));
  for (double& t : arrivals) t = gen.next().t_s;
  const double lo = arrivals.front();
  const double hi = arrivals.back();
  const double span = hi > lo ? hi - lo : 1.0;
  // Affine map onto the serving horizon, preserving the arrival density.
  sc.schedule.resize(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i)
    sc.schedule[i] = sc.horizon.t_start_s +
                     (arrivals[i] - lo) / span *
                         (sc.horizon.t_end_s - sc.horizon.t_start_s);
  // Per-segment run counts follow the arrival density over equal time
  // bins; every segment keeps at least one run (a tenant switch with zero
  // serves would be pure programming noise).
  std::vector<std::size_t> sizes(static_cast<std::size_t>(segs), 0);
  for (double t : arrivals) {
    auto bin = static_cast<std::size_t>((t - lo) / span *
                                        static_cast<double>(segs));
    if (bin >= sizes.size()) bin = sizes.size() - 1;
    ++sizes[bin];
  }
  for (std::size_t b = 0; b < sizes.size(); ++b) {
    while (sizes[b] == 0) {
      const auto big = static_cast<std::size_t>(std::distance(
          sizes.begin(), std::max_element(sizes.begin(), sizes.end())));
      if (sizes[big] <= 1) break;
      --sizes[big];
      ++sizes[b];
    }
  }
  sc.segment_sizes = std::move(sizes);
}

// ---------------------------------------------------------------------------
// Scenario-file parser (docs/scenario_format.md).

namespace {

bool parse_f64(const std::string& tok, double& out) {
  const char* s = tok.c_str();
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

bool parse_i64(const std::string& tok, long long& out) {
  const char* s = tok.c_str();
  char* end = nullptr;
  out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0';
}

}  // namespace

std::optional<CampaignConfig> parse_scenario(std::istream& in) {
  CampaignConfig cfg;
  std::string raw;
  int lineno = 0;
  auto fail = [&](const char* why) -> std::optional<CampaignConfig> {
    std::fprintf(stderr, "odin: scenario line %d: %s: %s\n", lineno, why,
                 raw.c_str());
    return std::nullopt;
  };
  while (std::getline(in, raw)) {
    ++lineno;
    std::string text = raw;
    if (const auto hash = text.find('#'); hash != std::string::npos)
      text.resize(hash);
    std::istringstream ls(text);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line
    std::vector<std::string> args;
    for (std::string a; ls >> a;) args.push_back(a);
    auto num = [&](std::size_t i, double& v) {
      return i < args.size() && parse_f64(args[i], v);
    };
    auto integer = [&](std::size_t i, long long& v) {
      return i < args.size() && parse_i64(args[i], v);
    };
    long long iv = 0;
    double fv = 0.0;
    if (key == "seed") {
      if (!integer(0, iv) || iv < 1) return fail("want integer >= 1");
      cfg.scenario.seed = static_cast<std::uint64_t>(iv);
    } else if (key == "tenants") {
      if (!integer(0, iv) || iv < 1) return fail("want integer >= 1");
      cfg.scenario.tenants = static_cast<int>(iv);
    } else if (key == "requests") {
      if (!integer(0, iv) || iv < 1) return fail("want integer >= 1");
      cfg.scenario.requests = iv;
    } else if (key == "horizon-s") {
      if (!num(0, fv) || fv <= 0.0) return fail("want number > 0");
      cfg.scenario.horizon_s = fv;
    } else if (key == "diurnal-cycles") {
      if (!integer(0, iv) || iv < 0) return fail("want integer >= 0");
      cfg.scenario.diurnal_cycles = static_cast<int>(iv);
    } else if (key == "diurnal-amplitude") {
      if (!num(0, fv) || fv < 0.0 || fv >= 1.0)
        return fail("want number in [0, 1)");
      cfg.scenario.diurnal_amplitude = fv;
    } else if (key == "churn-frac") {
      if (!num(0, fv) || fv < 0.0 || fv > 1.0)
        return fail("want number in [0, 1]");
      cfg.scenario.churn_frac = fv;
    } else if (key == "target-utilization") {
      if (!num(0, fv) || fv <= 0.0 || fv >= 1.0)
        return fail("want number in (0, 1)");
      cfg.scenario.target_utilization = fv;
    } else if (key == "gold-share") {
      if (!num(0, fv)) return fail("want number");
      cfg.scenario.gold_share = fv;
    } else if (key == "silver-share") {
      if (!num(0, fv)) return fail("want number");
      cfg.scenario.silver_share = fv;
    } else if (key == "gold-slo-mult") {
      if (!num(0, fv) || fv <= 0.0) return fail("want number > 0");
      cfg.scenario.gold_slo_mult = fv;
    } else if (key == "silver-slo-mult") {
      if (!num(0, fv) || fv <= 0.0) return fail("want number > 0");
      cfg.scenario.silver_slo_mult = fv;
    } else if (key == "bronze-slo-mult") {
      if (!num(0, fv) || fv <= 0.0) return fail("want number > 0");
      cfg.scenario.bronze_slo_mult = fv;
    } else if (key == "flash") {
      FlashCrowd f;
      if (!num(0, f.start_frac) || !num(1, f.duration_frac) ||
          !num(2, f.multiplier))
        return fail("want: flash START_FRAC DURATION_FRAC MULT [TENANT_FRAC]");
      if (args.size() > 3 && !num(3, f.tenant_frac))
        return fail("bad TENANT_FRAC");
      cfg.scenario.flash.push_back(f);
    } else if (key == "storm") {
      FaultStorm s;
      long long radius = 1, campaigns = 4, center = -1;
      if (!num(0, s.start_frac) || !num(1, s.duration_frac) ||
          !num(2, s.drift_multiplier) || !integer(3, radius) ||
          !integer(4, campaigns))
        return fail(
            "want: storm START_FRAC DURATION_FRAC MULT RADIUS CAMPAIGNS "
            "[CENTER_PE]");
      if (args.size() > 5 && !integer(5, center)) return fail("bad CENTER_PE");
      s.radius = static_cast<int>(radius);
      s.campaigns = static_cast<int>(campaigns);
      s.center_pe = static_cast<int>(center);
      cfg.scenario.storms.push_back(s);
    } else if (key == "shards") {
      if (!integer(0, iv) || iv < 1) return fail("want integer >= 1");
      cfg.shards = static_cast<int>(iv);
    } else if (key == "epochs") {
      if (!integer(0, iv) || iv < 1) return fail("want integer >= 1");
      cfg.epochs = static_cast<int>(iv);
    } else if (key == "autoscale") {
      if (args.size() != 1 || (args[0] != "on" && args[0] != "off" &&
                               args[0] != "1" && args[0] != "0"))
        return fail("want on|off|1|0");
      cfg.autoscale.enabled = (args[0] == "on" || args[0] == "1") ? 1 : 0;
    } else if (key == "sojourn-cap") {
      if (!integer(0, iv) || iv < 0) return fail("want integer >= 0");
      cfg.sojourn_cap = static_cast<std::size_t>(iv);
    } else if (key == "checkpoint") {
      if (args.size() != 1) return fail("want one path");
      cfg.checkpoint.base_path = args[0];
    } else if (key == "checkpoint-every") {
      if (!integer(0, iv) || iv < 1) return fail("want integer >= 1");
      cfg.checkpoint.every_runs = static_cast<int>(iv);
    } else if (key == "fault-seed") {
      if (!integer(0, iv) || iv < 0) return fail("want integer >= 0");
      cfg.fault_seed = static_cast<std::uint64_t>(iv);
    } else if (key == "shed-slo-mult") {
      if (!num(0, fv) || fv <= 0.0) return fail("want number > 0");
      cfg.queue_shed_slo_mult = fv;
    } else {
      return fail("unknown key");
    }
  }
  return cfg;
}

std::optional<CampaignConfig> parse_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "odin: cannot open scenario file: %s\n",
                 path.c_str());
    return std::nullopt;
  }
  return parse_scenario(in);
}

}  // namespace odin::core
