#include "core/experiment.hpp"

#include <cassert>

#include "common/math.hpp"
#include "common/parallel.hpp"

namespace odin::core {

ou::MappedModel Setup::make_mapped(dnn::DnnModel model,
                                   int crossbar_size) const {
  const int c = crossbar_size > 0 ? crossbar_size : pim.tile.crossbar_size;
  return ou::MappedModel(dnn::prune_model(std::move(model), prune_seed), c);
}

std::vector<double> run_schedule(const HorizonConfig& horizon) {
  assert(horizon.runs >= 2);
  return common::logspace(horizon.t_start_s, horizon.t_end_s,
                          static_cast<std::size_t>(horizon.runs));
}

std::vector<double> make_schedule(ScheduleKind kind,
                                  const HorizonConfig& horizon,
                                  std::uint64_t seed) {
  assert(horizon.runs >= 2);
  const auto n = static_cast<std::size_t>(horizon.runs);
  switch (kind) {
    case ScheduleKind::kLogUniform:
      return run_schedule(horizon);
    case ScheduleKind::kUniform: {
      std::vector<double> out(n);
      const double step =
          (horizon.t_end_s - horizon.t_start_s) / static_cast<double>(n - 1);
      for (std::size_t i = 0; i < n; ++i)
        out[i] = horizon.t_start_s + step * static_cast<double>(i);
      return out;
    }
    case ScheduleKind::kPoisson: {
      // Exponential inter-arrivals at the uniform mean rate, clamped to the
      // horizon; deterministic given the seed.
      common::Rng rng(seed);
      const double mean_gap =
          (horizon.t_end_s - horizon.t_start_s) / static_cast<double>(n);
      std::vector<double> out;
      out.reserve(n);
      double t = horizon.t_start_s;
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(std::min(t, horizon.t_end_s));
        double u = rng.uniform();
        while (u <= 0.0) u = rng.uniform();
        t += -mean_gap * std::log(u);
      }
      return out;
    }
  }
  return run_schedule(horizon);
}

AggregateResult simulate_homogeneous(
    const ou::MappedModel& model, const ou::NonIdealityModel& nonideal,
    const ou::OuCostModel& cost, ou::OuConfig config,
    const HorizonConfig& horizon, common::EnergyLatency per_run_extra,
    bool reprogram_enabled, reram::FaultInjector* faults) {
  HomogeneousRunner runner(model, nonideal, cost, config, reprogram_enabled,
                           faults);
  AggregateResult agg;
  agg.label = config.to_string();
  for (double t : run_schedule(horizon)) {
    const BaselineRunResult run = runner.run_inference(t);
    agg.inference += run.inference + per_run_extra;
    agg.reprogram += run.reprogram;
    ++agg.runs;
  }
  agg.reprograms = runner.reprogram_count();
  return agg;
}

std::vector<AggregateResult> simulate_homogeneous_sweep(
    const ou::MappedModel& model, const ou::NonIdealityModel& nonideal,
    const ou::OuCostModel& cost, std::span<const ou::OuConfig> configs,
    const HorizonConfig& horizon, common::EnergyLatency per_run_extra,
    bool reprogram_enabled) {
  return common::parallel_transform(configs.size(), 1, [&](std::size_t i) {
    return simulate_homogeneous(model, nonideal, cost, configs[i], horizon,
                                per_run_extra, reprogram_enabled);
  });
}

AggregateResult simulate_odin(OdinController& controller,
                              const HorizonConfig& horizon,
                              common::EnergyLatency per_run_extra,
                              const arch::OverheadModel* overhead) {
  AggregateResult agg;
  agg.label = "Odin";
  for (double t : run_schedule(horizon)) {
    const RunResult run = controller.run_inference(t);
    common::EnergyLatency inf = run.inference + per_run_extra;
    if (overhead != nullptr) {
      inf.energy_j += overhead->prediction_energy_j(run.inference.latency_s);
      inf.latency_s +=
          overhead->prediction_latency_s(run.inference.latency_s);
    }
    agg.inference += inf;
    agg.reprogram += run.reprogram;
    agg.mismatches += run.mismatches;
    agg.searches_skipped += run.searches_skipped;
    agg.program_retries += run.program_retries;
    agg.degraded_runs += run.degraded ? 1 : 0;
    ++agg.runs;
  }
  agg.reprograms = controller.reprogram_count();
  agg.policy_updates = controller.update_count();
  agg.updates_accepted = controller.updates_accepted();
  agg.updates_rejected = controller.updates_rejected();
  agg.updates_rolled_back = controller.updates_rolled_back();
  agg.buffer_dropped = static_cast<long long>(controller.buffer_dropped());
  agg.buffer_quarantined =
      static_cast<long long>(controller.buffer_quarantined());
  if (overhead != nullptr)
    agg.inference.energy_j +=
        overhead->total_update_energy_j(agg.policy_updates);
  return agg;
}

policy::OuPolicy offline_policy_excluding(
    const Setup& setup, dnn::Family excluded, int crossbar_size,
    const policy::OfflineTrainConfig& config) {
  const int c =
      crossbar_size > 0 ? crossbar_size : setup.pim.tile.crossbar_size;
  std::vector<std::unique_ptr<ou::MappedModel>> known;
  for (dnn::DnnModel& model : dnn::paper_workloads()) {
    if (model.family == excluded) continue;
    known.push_back(std::make_unique<ou::MappedModel>(
        setup.make_mapped(std::move(model), c)));
  }
  std::vector<const ou::MappedModel*> ptrs;
  ptrs.reserve(known.size());
  for (const auto& m : known) ptrs.push_back(m.get());

  const ou::NonIdealityModel nonideal = setup.make_nonideality(c);
  const ou::OuCostModel cost = setup.make_cost();
  const ou::OuLevelGrid grid(c);
  return policy::train_offline_policy(ptrs, nonideal, cost, grid, config);
}

}  // namespace odin::core
