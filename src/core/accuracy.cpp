#include "core/accuracy.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"

namespace odin::core {

double AccuracyModel::loss_from_excess(double excess) const noexcept {
  if (excess <= 0.0) return 0.0;
  const double f = std::clamp(excess / params_.excess_saturation, 0.0, 1.0);
  return params_.max_drop * std::pow(f, params_.exponent);
}

double AccuracyModel::effective_excess(
    const ou::MappedModel& model, std::span<const ou::OuConfig> configs,
    double elapsed_s, const ou::NonIdealityModel& nonideal,
    double extra_nf) const {
  assert(configs.size() == model.layer_count());
  const int layer_count = static_cast<int>(model.layer_count());
  const auto& ni = nonideal.params();
  double weighted = 0.0;
  double weight_sum = 0.0;
  for (std::size_t j = 0; j < configs.size(); ++j) {
    const auto& layer = model.model().layers[j];
    const double s = nonideal.layer_sensitivity(layer.index, layer_count);
    const double total = nonideal.total_nf(elapsed_s, configs[j]);
    const double ir = nonideal.ir_nf(elapsed_s, configs[j]);
    const double excess =
        std::max(0.0, total + extra_nf - ni.eta_total) +
        params_.ir_excess_weight * std::max(0.0, s * ir - ni.eta_ir);
    weighted += s * excess;
    weight_sum += s;
  }
  return weight_sum > 0.0 ? weighted / weight_sum : 0.0;
}

double AccuracyModel::estimate(const ou::MappedModel& model,
                               std::span<const ou::OuConfig> configs,
                               double elapsed_s,
                               const ou::NonIdealityModel& nonideal,
                               double extra_nf) const {
  const double excess =
      effective_excess(model, configs, elapsed_s, nonideal, extra_nf);
  return params_.ideal_accuracy * (1.0 - loss_from_excess(excess));
}

double AccuracyModel::estimate_homogeneous(
    const ou::MappedModel& model, ou::OuConfig config, double elapsed_s,
    const ou::NonIdealityModel& nonideal, double extra_nf) const {
  std::vector<ou::OuConfig> configs(model.layer_count(), config);
  return estimate(model, configs, elapsed_s, nonideal, extra_nf);
}

MonteCarloAccuracy::MonteCarloAccuracy(const data::SyntheticDataset& dataset,
                                       MonteCarloConfig config)
    : config_(config),
      model_(
          nn::MlpConfig{
              .inputs = dataset.feature_count(config.pool),
              .hidden = {config.hidden},
              .heads = {static_cast<std::size_t>(dataset.spec().classes)}},
          config.seed) {
  // Disjoint train/test: sample indices never overlap because test rows
  // start beyond the training range.
  train_ = dataset.as_feature_dataset(config_.train_samples, config_.pool);
  nn::Dataset all = dataset.as_feature_dataset(
      config_.train_samples + config_.test_samples, config_.pool);
  test_.inputs = nn::Matrix(config_.test_samples, all.inputs.cols());
  test_.labels.assign(1, std::vector<int>(config_.test_samples));
  for (std::size_t i = 0; i < config_.test_samples; ++i) {
    auto src = all.inputs.row(config_.train_samples + i);
    auto dst = test_.inputs.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
    test_.labels[0][i] = all.labels[0][config_.train_samples + i];
  }

  nn::TrainOptions options;
  options.epochs = config_.epochs;
  options.batch_size = 32;
  options.learning_rate = 3e-3;
  options.shuffle_seed = config_.seed ^ 0x7a1b;
  nn::fit(model_, train_, options);

  for (nn::Parameter* p : model_.parameters()) pristine_.push_back(p->value);
}

double MonteCarloAccuracy::evaluate() {
  return nn::exact_match_accuracy(model_, test_);
}

double MonteCarloAccuracy::ideal_accuracy() { return evaluate(); }

double MonteCarloAccuracy::accuracy_under(double drift_nf, double ir_nf,
                                          std::uint64_t noise_seed) {
  common::Rng rng(config_.seed ^ (noise_seed * 0x9e3779b97f4a7c15ULL));
  const double shrink = std::clamp(1.0 - drift_nf, 0.0, 1.0);
  const double sigma = std::max(ir_nf, 0.0) * config_.ir_noise_scale;
  auto params = model_.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto w = params[i]->value.flat();
    for (double& v : w)
      v = v * shrink + sigma * std::abs(v) * rng.normal();
  }
  const double acc = evaluate();
  // Restore in place: the shapes never change, so copying into the live
  // storage avoids reallocating every parameter matrix per trial.
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto src = pristine_[i].flat();
    auto dst = params[i]->value.flat();
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return acc;
}

}  // namespace odin::core
