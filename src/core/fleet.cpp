#include "core/fleet.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <utility>

#include "arch/pipeline.hpp"
#include "arch/system.hpp"
#include "common/env.hpp"
#include "common/parallel.hpp"
#include "core/checkpoint.hpp"
#include "reram/fault_injection.hpp"

namespace odin::core {

namespace {

/// Relative weights of the placement score's terms (DESIGN.md §16). Wear
/// dominates on purpose: a wear-hot shard must lose a tenant even when it
/// is the NoC-optimal home.
constexpr double kLoadWeight = 1.0;
constexpr double kWearWeight = 4.0;

/// A tenant's prospective cost on one shard's PE block.
struct ShardCandidate {
  common::EnergyLatency noc;
  double overlap = 1.0;
  int pes_spanned = 0;
};

ShardCandidate evaluate_candidate(const arch::SystemModel& system,
                                  const ou::MappedModel& tenant,
                                  const std::vector<double>& layer_latency_s,
                                  const std::vector<int>& pes,
                                  int activation_bits) {
  const arch::SystemMapping m = system.map_onto(
      tenant.model(), pes, tenant.crossbar_size(), activation_bits);
  ShardCandidate cand;
  cand.noc = m.noc_per_inference;
  for (std::int64_t load : m.pe_load)
    if (load > 0) ++cand.pes_spanned;
  // Pipeline stages: consecutive layers sharing a home PE form one stage;
  // a PE boundary is where activations cross the NoC and the next request
  // can be admitted behind this one.
  std::vector<double> stages;
  for (std::size_t j = 0; j < m.placements.size(); ++j) {
    if (j == 0 || m.placements[j].pe != m.placements[j - 1].pe)
      stages.push_back(0.0);
    stages.back() += layer_latency_s[j];
  }
  cand.overlap = arch::interlayer_pipeline(stages).overlap_factor;
  return cand;
}

double shard_wear_penalty(const reram::FaultInjector* faults) {
  if (faults == nullptr) return 0.0;
  return faults->wear_fraction() + faults->fault_fraction() +
         (faults->wear_hot() ? 1.0 : 0.0);
}

/// Derive shard `shard`'s ServingConfig from the fleet template: its share
/// of the segment walk and horizon traffic, its members' SLOs in local
/// order, the placement-derived service models, and a private checkpoint
/// pair. A single-shard fleet returns the template untouched — that is the
/// bitwise-compatibility contract with serve_with_odin.
ServingConfig shard_serving_config(const FleetConfig& config,
                                   const FleetPlacement& placement,
                                   const std::vector<int>& members, int shard,
                                   int shards) {
  ServingConfig sc = config.serving;
  if (shards <= 1 || members.empty()) return sc;
  sc.fleet_shards = shards;
  sc.fleet_shard_index = shard;
  const int total_tenants = static_cast<int>(placement.tenants.size());
  const int global_segments = std::max(config.serving.segments, 1);
  // This shard serves the global segments whose round-robin tenant lives
  // here, at the global walk's own arrival/drift times: the shard's
  // serving loop gets the global logspace slices of those segments, so a
  // tenant's serves (drift clock, OU decisions, physical cost) are the
  // same no matter how the fleet is sharded — only queueing changes.
  const std::vector<double> global_schedule =
      run_schedule(config.serving.horizon);
  const std::size_t runs = global_schedule.size();
  const std::size_t per = runs / static_cast<std::size_t>(global_segments);
  std::vector<double> schedule;
  std::vector<std::size_t> sizes;
  std::size_t start = 0;
  for (int s = 0; s < global_segments; ++s) {
    const std::size_t end = s + 1 == global_segments ? runs : start + per;
    if (std::find(members.begin(), members.end(), s % total_tenants) !=
        members.end()) {
      schedule.insert(schedule.end(),
                      global_schedule.begin() + static_cast<long>(start),
                      global_schedule.begin() + static_cast<long>(end));
      sizes.push_back(end - start);
    }
    start = end;
  }
  sc.segments = static_cast<int>(sizes.size());
  sc.horizon.runs = static_cast<int>(schedule.size());
  sc.schedule = std::move(schedule);
  sc.segment_sizes = std::move(sizes);
  if (!config.serving.resilience.tenant_slo_s.empty()) {
    std::vector<double> slo;
    slo.reserve(members.size());
    for (int g : members) {
      const auto& global = config.serving.resilience.tenant_slo_s;
      slo.push_back(static_cast<std::size_t>(g) < global.size()
                        ? global[static_cast<std::size_t>(g)]
                        : 0.0);
    }
    sc.resilience.tenant_slo_s = std::move(slo);
  }
  sc.service_models.clear();
  sc.service_models.reserve(members.size());
  for (int g : members) {
    const TenantPlacement& p = placement.tenants[static_cast<std::size_t>(g)];
    TenantServiceModel m;
    m.noc_extra = p.noc_per_inference;
    m.pipeline_overlap = p.pipeline_overlap;
    sc.service_models.push_back(m);
  }
  if (!sc.checkpoint.base_path.empty())
    sc.checkpoint.base_path += ".shard" + std::to_string(shard);
  return sc;
}

}  // namespace

std::vector<int> fleet_fill_order(const arch::PimConfig& pim, bool snake) {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(pim.pes));
  for (int y = 0; y < pim.mesh_y; ++y)
    for (int x = 0; x < pim.mesh_x; ++x) {
      const int col = snake && (y % 2 == 1) ? pim.mesh_x - 1 - x : x;
      order.push_back(y * pim.mesh_x + col);
    }
  return order;
}

std::vector<std::vector<int>> fleet_partition_pes(
    const std::vector<int>& order, int shards) {
  std::vector<std::vector<int>> out(static_cast<std::size_t>(shards));
  const std::size_t per = order.size() / static_cast<std::size_t>(shards);
  const std::size_t extra = order.size() % static_cast<std::size_t>(shards);
  std::size_t pos = 0;
  for (std::size_t k = 0; k < out.size(); ++k) {
    const std::size_t take = per + (k < extra ? 1 : 0);
    out[k].assign(order.begin() + static_cast<std::ptrdiff_t>(pos),
                  order.begin() + static_cast<std::ptrdiff_t>(pos + take));
    pos += take;
  }
  return out;
}

std::vector<std::vector<int>> rescale_shard_blocks(
    const arch::PimConfig& pim, bool snake,
    const std::vector<double>& shard_demand) {
  const std::vector<int> order = fleet_fill_order(pim, snake);
  const std::size_t K = shard_demand.size();
  assert(K >= 1 && order.size() >= K);
  // Largest-remainder apportionment of the PEs over the demand vector with
  // a one-PE floor per shard. All-zero demand degrades to the equal split.
  double total = 0.0;
  for (double d : shard_demand) total += std::max(d, 0.0);
  if (total <= 0.0) return fleet_partition_pes(order, static_cast<int>(K));
  const std::size_t spare = order.size() - K;  ///< PEs beyond the floor
  std::vector<std::size_t> pes(K, 1);
  std::vector<double> frac(K, 0.0);
  std::size_t given = 0;
  for (std::size_t k = 0; k < K; ++k) {
    const double ideal =
        static_cast<double>(spare) * std::max(shard_demand[k], 0.0) / total;
    const auto whole = static_cast<std::size_t>(ideal);
    pes[k] += whole;
    frac[k] = ideal - static_cast<double>(whole);
    given += whole;
  }
  // Hand out the rounding remainder by descending fractional part; ties
  // break on the lower shard index so the cut is deterministic.
  std::vector<std::size_t> by_frac(K);
  for (std::size_t k = 0; k < K; ++k) by_frac[k] = k;
  std::sort(by_frac.begin(), by_frac.end(),
            [&](std::size_t a, std::size_t b) {
              if (frac[a] != frac[b]) return frac[a] > frac[b];
              return a < b;
            });
  for (std::size_t i = 0; given < spare && i < K; ++i, ++given)
    ++pes[by_frac[i]];
  std::vector<std::vector<int>> out(K);
  std::size_t pos = 0;
  for (std::size_t k = 0; k < K; ++k) {
    out[k].assign(order.begin() + static_cast<std::ptrdiff_t>(pos),
                  order.begin() + static_cast<std::ptrdiff_t>(pos + pes[k]));
    pos += pes[k];
  }
  return out;
}

std::size_t pick_least_loaded_block(const std::vector<double>& demand,
                                    const std::vector<std::int32_t>& pes,
                                    const std::vector<std::uint8_t>& eligible) {
  std::size_t best = demand.size();
  double best_pp = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < demand.size(); ++i) {
    if (!eligible.empty() && (i >= eligible.size() || eligible[i] == 0))
      continue;
    const double p = static_cast<double>(
        i < pes.size() ? std::max<std::int32_t>(1, pes[i]) : 1);
    const double pp = demand[i] / p;
    if (pp < best_pp) {
      best_pp = pp;
      best = i;
    }
  }
  return best;
}

int FleetConfig::resolved_shards() const {
  long long n = shards;
  if (n <= 0) {
    n = 1;
    long long v = 0;
    if (common::env_long("ODIN_SHARDS", v) && v >= 1) n = v;
  }
  const long long cap = pim.pes > 0 ? pim.pes : 1;
  return static_cast<int>(std::clamp<long long>(n, 1, cap));
}

FleetPlacement place_fleet(
    const std::vector<const ou::MappedModel*>& tenants,
    const ou::OuCostModel& cost, const FleetConfig& config,
    const std::vector<const reram::FaultInjector*>& shard_faults) {
  assert(!tenants.empty());
  const int shards = config.resolved_shards();
  const std::size_t T = tenants.size();
  const std::size_t K = static_cast<std::size_t>(shards);

  FleetPlacement out;
  out.shards = shards;
  out.shard_pes =
      fleet_partition_pes(fleet_fill_order(config.pim, config.noc_aware),
                          shards);

  const arch::SystemModel system(config.pim);
  // Per-layer reference latencies (the grid's minimum OU — the same
  // config the serving loop's fallback path prices with), shared across
  // candidate shards.
  std::vector<std::vector<double>> layer_latency(T);
  std::vector<std::int64_t> footprint(T, 0);
  for (std::size_t t = 0; t < T; ++t) {
    const ou::MappedModel& m = *tenants[t];
    const ou::OuConfig ref =
        ou::OuLevelGrid(m.crossbar_size()).min_config();
    layer_latency[t].reserve(m.layer_count());
    for (std::size_t j = 0; j < m.layer_count(); ++j)
      layer_latency[t].push_back(
          cost.layer_cost(m.mapping(j).counts(ref), ref,
                          m.model().layers[j].activation_sparsity)
              .total()
              .latency_s);
    const arch::SystemMapping full =
        system.map_onto(m.model(), out.shard_pes[0], m.crossbar_size(),
                        config.activation_bits);
    footprint[t] = full.crossbars_used;
  }

  // Candidate costs for every (tenant, shard) pair, and each tenant's
  // normalization denominator.
  std::vector<std::vector<ShardCandidate>> cand(T);
  std::vector<double> max_noc(T, 0.0);
  for (std::size_t t = 0; t < T; ++t) {
    cand[t].reserve(K);
    for (std::size_t k = 0; k < K; ++k) {
      cand[t].push_back(evaluate_candidate(system, *tenants[t],
                                           layer_latency[t], out.shard_pes[k],
                                           config.activation_bits));
      max_noc[t] = std::max(max_noc[t], cand[t][k].noc.latency_s);
    }
  }
  auto noc_norm = [&](std::size_t t, std::size_t k) {
    return max_noc[t] > 0.0 ? cand[t][k].noc.latency_s / max_noc[t] : 0.0;
  };
  std::vector<double> wear(K, 0.0);
  if (config.wear_aware)
    for (std::size_t k = 0; k < K && k < shard_faults.size(); ++k)
      wear[k] = shard_wear_penalty(shard_faults[k]);

  const std::int64_t total_foot =
      std::accumulate(footprint.begin(), footprint.end(), std::int64_t{0});
  const double target = std::max(
      static_cast<double>(total_foot) / static_cast<double>(shards), 1.0);

  std::vector<int> shard_of(T, 0);
  std::vector<std::int64_t> load(K, 0);
  std::vector<bool> displaced(T, false);

  if (!config.noc_aware) {
    // Placement-oblivious baseline: round-robin by tenant index.
    for (std::size_t t = 0; t < T; ++t) {
      shard_of[t] = static_cast<int>(t % K);
      load[t % K] += footprint[t];
    }
  } else {
    // Greedy seeding, largest footprint first (big tenants pick freely;
    // small ones fill the gaps).
    std::vector<std::size_t> greedy_order(T);
    std::iota(greedy_order.begin(), greedy_order.end(), std::size_t{0});
    std::stable_sort(greedy_order.begin(), greedy_order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return footprint[a] > footprint[b];
                     });
    for (std::size_t t : greedy_order) {
      std::size_t best = 0, blind = 0;
      double best_score = std::numeric_limits<double>::infinity();
      double blind_score = std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < K; ++k) {
        const double load_term =
            (static_cast<double>(load[k]) + static_cast<double>(footprint[t])) /
            target;
        const double s = noc_norm(t, k) + kLoadWeight * load_term;
        if (s < blind_score) {
          blind_score = s;
          blind = k;
        }
        const double full = s + kWearWeight * wear[k];
        if (full < best_score) {
          best_score = full;
          best = k;
        }
      }
      shard_of[t] = static_cast<int>(best);
      load[best] += footprint[t];
      displaced[t] = best != blind;
    }

    // Single-tenant best-move refinement on the global objective.
    auto objective = [&](const std::vector<int>& assign,
                         const std::vector<std::int64_t>& l) {
      double noc_sum = 0.0, wear_sum = 0.0;
      for (std::size_t t = 0; t < T; ++t) {
        noc_sum += noc_norm(t, static_cast<std::size_t>(assign[t]));
        wear_sum += wear[static_cast<std::size_t>(assign[t])];
      }
      const std::int64_t max_load = *std::max_element(l.begin(), l.end());
      const double mean =
          static_cast<double>(total_foot) / static_cast<double>(shards);
      const double imbalance =
          mean > 0.0 ? static_cast<double>(max_load) / mean : 1.0;
      return noc_sum + kLoadWeight * imbalance + kWearWeight * wear_sum;
    };
    double obj = objective(shard_of, load);
    for (int pass = 0; pass < config.refine_passes; ++pass) {
      bool moved = false;
      for (std::size_t t = 0; t < T; ++t) {
        const int from = shard_of[t];
        int best_to = from;
        double best_obj = obj;
        for (std::size_t k = 0; k < K; ++k) {
          if (static_cast<int>(k) == from) continue;
          shard_of[t] = static_cast<int>(k);
          load[static_cast<std::size_t>(from)] -= footprint[t];
          load[k] += footprint[t];
          const double trial = objective(shard_of, load);
          shard_of[t] = from;
          load[static_cast<std::size_t>(from)] += footprint[t];
          load[k] -= footprint[t];
          if (trial < best_obj - 1e-12) {
            best_obj = trial;
            best_to = static_cast<int>(k);
          }
        }
        if (best_to != from) {
          load[static_cast<std::size_t>(from)] -= footprint[t];
          load[static_cast<std::size_t>(best_to)] += footprint[t];
          shard_of[t] = best_to;
          obj = best_obj;
          moved = true;
        }
      }
      if (!moved) break;
    }
  }

  out.tenants.reserve(T);
  for (std::size_t t = 0; t < T; ++t) {
    const std::size_t k = static_cast<std::size_t>(shard_of[t]);
    TenantPlacement p;
    p.tenant = static_cast<int>(t);
    p.shard = shard_of[t];
    p.crossbars = footprint[t];
    p.pes_spanned = cand[t][k].pes_spanned;
    p.noc_per_inference = cand[t][k].noc;
    p.pipeline_overlap = cand[t][k].overlap;
    p.wear_displaced = displaced[t];
    out.tenants.push_back(p);
  }
  out.shard_load = load;
  const std::int64_t max_load = *std::max_element(load.begin(), load.end());
  const double mean =
      static_cast<double>(total_foot) / static_cast<double>(shards);
  out.load_imbalance =
      mean > 0.0 ? static_cast<double>(max_load) / mean : 1.0;
  {
    double noc_sum = 0.0, wear_sum = 0.0;
    for (std::size_t t = 0; t < T; ++t) {
      noc_sum += noc_norm(t, static_cast<std::size_t>(shard_of[t]));
      wear_sum += wear[static_cast<std::size_t>(shard_of[t])];
    }
    out.objective =
        noc_sum + kLoadWeight * out.load_imbalance + kWearWeight * wear_sum;
  }
  return out;
}

int FleetResult::total_runs() const noexcept {
  int n = 0;
  for (const ServingResult& s : shards) n += s.total_runs();
  return n;
}

double FleetResult::shard_busy_s(std::size_t shard) const noexcept {
  return shards[shard].total_service_s() +
         shards[shard].programming.latency_s;
}

double FleetResult::makespan_s() const noexcept {
  double m = 0.0;
  for (std::size_t k = 0; k < shards.size(); ++k)
    m = std::max(m, shard_busy_s(k));
  return m;
}

double FleetResult::aggregate_images_per_s() const noexcept {
  const double m = makespan_s();
  return m > 0.0 ? static_cast<double>(total_runs()) / m : 0.0;
}

double FleetResult::edp_per_request() const noexcept {
  // Aggregate per TENANT, not per shard: a tenant's E*L/R is intrinsic to
  // its serves, so the run-weighted mean is invariant to how tenants are
  // grouped onto shards. A per-shard aggregate would mix cross products of
  // different tenants' energies and latencies and drift with the sharding.
  double num = 0.0;
  long long runs = 0;
  for (const ServingResult& s : shards) {
    for (const TenantStats& t : s.tenants) {
      if (t.runs == 0) continue;
      const common::EnergyLatency e = t.inference + t.reprogram;
      num += e.energy_j * e.latency_s / static_cast<double>(t.runs);
      runs += t.runs;
    }
  }
  return runs > 0 ? num / static_cast<double>(runs) : 0.0;
}

double FleetResult::slack_percentile(double p) const {
  std::vector<double> slack;
  for (const ServingResult& s : shards)
    for (const TenantStats& t : s.tenants) {
      if (t.slo_s <= 0.0) continue;
      for (double v : t.sojourn_s) slack.push_back(t.slo_s - v);
    }
  if (slack.empty()) return 0.0;
  // The slack at the p-th percentile sojourn is the (100-p)-th percentile
  // slack sample (slower requests have less slack).
  return percentile(std::move(slack), 100.0 - p);
}

FleetResult serve_fleet(const std::vector<const ou::MappedModel*>& tenants,
                        const ou::NonIdealityModel& nonideal,
                        const ou::OuCostModel& cost,
                        policy::OuPolicy initial_policy,
                        const FleetConfig& config,
                        const std::vector<reram::FaultInjector*>& shard_faults) {
  assert(!tenants.empty());
  const int shards = config.resolved_shards();
  FleetResult out;
  const std::vector<const reram::FaultInjector*> cfaults(shard_faults.begin(),
                                                         shard_faults.end());
  out.placement = place_fleet(tenants, cost, config, cfaults);
  out.shard_tenants.assign(static_cast<std::size_t>(shards), {});
  for (const TenantPlacement& p : out.placement.tenants)
    out.shard_tenants[static_cast<std::size_t>(p.shard)].push_back(p.tenant);

  // clone() is non-const: mint every shard's policy before the parallel
  // region so the pool workers never touch the shared original.
  std::vector<policy::OuPolicy> policies;
  policies.reserve(static_cast<std::size_t>(shards));
  for (int k = 0; k < shards; ++k) policies.push_back(initial_policy.clone());

  out.shards = common::parallel_transform(
      static_cast<std::size_t>(shards), 1, [&](std::size_t k) {
        const std::vector<int>& members = out.shard_tenants[k];
        if (members.empty()) {
          ServingResult empty;
          empty.label = "Odin";
          return empty;
        }
        std::vector<const ou::MappedModel*> local;
        local.reserve(members.size());
        for (int g : members)
          local.push_back(tenants[static_cast<std::size_t>(g)]);
        const ServingConfig sc = shard_serving_config(
            config, out.placement, members, static_cast<int>(k), shards);
        if (sc.horizon.runs == 0) {
          // Fewer global segments than tenants: these members never serve
          // (matching the single-shard walk, which skips them too).
          ServingResult empty;
          empty.label = "Odin";
          return empty;
        }
        reram::FaultInjector* faults =
            k < shard_faults.size() ? shard_faults[k] : nullptr;
        return serve_with_odin(local, nonideal, cost,
                               std::move(policies[k]), sc, faults);
      });
  return out;
}

std::optional<FleetResult> resume_fleet(
    const std::vector<const ou::MappedModel*>& tenants,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    policy::OuPolicy initial_policy, const FleetConfig& config,
    const std::vector<reram::FaultInjector*>& shard_faults) {
  assert(!tenants.empty());
  const int shards = config.resolved_shards();
  FleetResult out;
  const std::vector<const reram::FaultInjector*> cfaults(shard_faults.begin(),
                                                         shard_faults.end());
  // Placement is a pure function of (tenants, config, fresh injectors), so
  // recomputing it reproduces the interrupted run's geometry — and the
  // per-shard checkpoints verify that via the service-model fingerprint.
  out.placement = place_fleet(tenants, cost, config, cfaults);
  out.shard_tenants.assign(static_cast<std::size_t>(shards), {});
  for (const TenantPlacement& p : out.placement.tenants)
    out.shard_tenants[static_cast<std::size_t>(p.shard)].push_back(p.tenant);

  out.shards.resize(static_cast<std::size_t>(shards));
  for (std::size_t k = 0; k < static_cast<std::size_t>(shards); ++k) {
    const std::vector<int>& members = out.shard_tenants[k];
    if (members.empty()) {
      out.shards[k].label = "Odin";
      continue;
    }
    std::vector<const ou::MappedModel*> local;
    local.reserve(members.size());
    for (int g : members) local.push_back(tenants[static_cast<std::size_t>(g)]);
    ServingConfig sc = shard_serving_config(config, out.placement, members,
                                            static_cast<int>(k), shards);
    if (sc.horizon.runs == 0) {
      out.shards[k].label = "Odin";
      continue;
    }
    sc.max_runs = 0;  // the crash hook belongs to the interrupted invocation
    reram::FaultInjector* faults =
        k < shard_faults.size() ? shard_faults[k] : nullptr;
    std::optional<ServingCheckpoint> ckpt;
    if (!sc.checkpoint.base_path.empty())
      ckpt = load_latest_checkpoint(sc.checkpoint.base_path);
    if (ckpt.has_value()) {
      auto resumed =
          resume_with_odin(local, nonideal, cost, *ckpt, sc, faults);
      if (!resumed.has_value()) return std::nullopt;
      out.shards[k] = std::move(*resumed);
    } else {
      out.shards[k] = serve_with_odin(local, nonideal, cost,
                                      initial_policy.clone(), sc, faults);
    }
  }
  return out;
}

}  // namespace odin::core
