// Accuracy under non-ideality — the PytorX substitute (DESIGN.md §3).
//
// Two complementary evaluators:
//
//  * AccuracyModel: an analytical surrogate aligned with Algorithm 1's
//    constraints. A layer only loses accuracy when its conductance error
//    EXCEEDS the budgets the search enforces (eta on the total error,
//    eta_ir on the sensitivity-scaled IR term); the sensitivity-weighted
//    mean excess maps through a saturating ramp to an accuracy drop. By
//    construction Odin (which keeps every layer within budget) holds the
//    ideal accuracy, while a drifting homogeneous configuration without
//    reprogramming decays — exactly Fig. 7's shape. Deterministic and fast.
//
//  * MonteCarloAccuracy: an empirical check. A reference classifier is
//    trained (from scratch, in-process) on a synthetic dataset; its weights
//    are perturbed exactly the way the device errors act — a global drift
//    shrink plus IR-drop-scaled noise — and accuracy is re-measured on held
//    -out data. Tests use it to validate that the surrogate's monotone
//    shape matches real classifier behaviour.
#pragma once

#include <cstdint>
#include <span>

#include "data/synthetic.hpp"
#include "nn/mlp.hpp"
#include "ou/mapped_model.hpp"
#include "ou/nonideality.hpp"
#include "ou/ou_config.hpp"

namespace odin::core {

struct AccuracyParams {
  double ideal_accuracy = 0.92;  ///< clean inference accuracy
  /// Constraint excess at which the loss ramp saturates. Calibrated against
  /// Fig. 7: a never-reprogrammed 16x16 configuration accumulates ~0.8%
  /// excess over eta by 1e8 s with the DESIGN.md §4 drift constants, and the
  /// paper reports a ~22% accuracy drop there.
  double excess_saturation = 0.02;
  double max_drop = 0.60;  ///< drop at saturation (toward chance level)
  double exponent = 1.0;   ///< shape of the loss ramp
  /// IR-drop budget violations count with this weight: the eta_ir budget is
  /// deliberately conservative (IR errors are spatially correlated and
  /// partially compensable), so exceeding it is less damaging than the same
  /// excess of global drift error.
  double ir_excess_weight = 0.3;
};

class AccuracyModel {
 public:
  explicit AccuracyModel(AccuracyParams params) : params_(params) {}

  const AccuracyParams& params() const noexcept { return params_; }

  /// Accuracy-loss fraction for a given constraint excess.
  double loss_from_excess(double excess) const noexcept;

  /// Constraint excess of a network where layer j runs with `configs[j]`
  /// at `elapsed_s`: the sensitivity-weighted mean over layers of
  ///   max(0, NF_total_j + extra_nf - eta) +
  ///   w_ir * max(0, s_j * NF_ir_j - eta_ir).
  /// Zero whenever every layer satisfies Algorithm 1's constraints.
  /// `extra_nf` is an OU-independent error floor (the measured stuck-cell
  /// fraction of a faulty array); 0 for a healthy device.
  double effective_excess(const ou::MappedModel& model,
                          std::span<const ou::OuConfig> configs,
                          double elapsed_s,
                          const ou::NonIdealityModel& nonideal,
                          double extra_nf = 0.0) const;

  /// Estimated accuracy for per-layer configurations.
  double estimate(const ou::MappedModel& model,
                  std::span<const ou::OuConfig> configs, double elapsed_s,
                  const ou::NonIdealityModel& nonideal,
                  double extra_nf = 0.0) const;

  /// Estimated accuracy when every layer uses the same configuration.
  double estimate_homogeneous(const ou::MappedModel& model,
                              ou::OuConfig config, double elapsed_s,
                              const ou::NonIdealityModel& nonideal,
                              double extra_nf = 0.0) const;

 private:
  AccuracyParams params_;
};

struct MonteCarloConfig {
  std::size_t train_samples = 600;
  std::size_t test_samples = 200;
  int pool = 4;              ///< spatial downsample of the synthetic images
  std::size_t hidden = 64;
  int epochs = 40;
  std::uint64_t seed = 0xacc5eed;
  /// IR-drop error acts like input-dependent noise on the effective
  /// weights; this converts an IR NF into a relative noise sigma.
  double ir_noise_scale = 1.5;
};

class MonteCarloAccuracy {
 public:
  MonteCarloAccuracy(const data::SyntheticDataset& dataset,
                     MonteCarloConfig config = {});

  /// Accuracy of the unperturbed reference classifier on held-out data.
  double ideal_accuracy();

  /// Accuracy after injecting device errors: weights shrink by the drift
  /// NF and gain zero-mean noise proportional to the IR NF. The model is
  /// restored afterwards; calls are independent.
  double accuracy_under(double drift_nf, double ir_nf,
                        std::uint64_t noise_seed = 1);

 private:
  double evaluate();

  MonteCarloConfig config_;
  nn::MultiHeadMlp model_;
  nn::Dataset train_;
  nn::Dataset test_;
  std::vector<nn::Matrix> pristine_;
};

}  // namespace odin::core
