// Experiment driver: shared setup and horizon simulation for the paper's
// evaluation (Figs. 3-9). Benches and examples build on these helpers so
// every table is produced from one consistent configuration.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "arch/overhead.hpp"
#include "arch/system.hpp"
#include "core/baselines.hpp"
#include "core/odin.hpp"
#include "dnn/zoo.hpp"
#include "policy/offline.hpp"

namespace odin::core {

/// One consistent instantiation of every model/parameter set (Tables I-II
/// plus DESIGN.md §4 calibration). Benches construct exactly one.
struct Setup {
  reram::DeviceParams device{};
  ou::NonIdealityParams nonideality_params{};
  ou::CostParams cost_params{};
  arch::PimConfig pim{};
  arch::OverheadParams overhead_params{};
  std::uint64_t prune_seed = 0x0d1e5eed;

  /// `crossbar_size` scales Eq. 4's wire length (0 = the tile's native).
  ou::NonIdealityModel make_nonideality(int crossbar_size = 0) const {
    return ou::NonIdealityModel(
        device, nonideality_params,
        crossbar_size > 0 ? crossbar_size : pim.tile.crossbar_size);
  }
  ou::OuCostModel make_cost() const {
    return ou::OuCostModel(cost_params, device);
  }
  arch::SystemModel make_system() const { return arch::SystemModel(pim); }
  arch::OverheadModel make_overhead() const {
    return arch::OverheadModel(overhead_params, pim);
  }

  /// Prune + map a workload at `crossbar_size` (0 = the tile's native 128).
  ou::MappedModel make_mapped(dnn::DnnModel model,
                              int crossbar_size = 0) const;
};

/// The inferencing horizon (paper: t0 = 1 s to 1e8 s) sampled with
/// log-spaced inference runs — drift is a power law in time, so linear
/// schedules would waste the horizon's decades.
struct HorizonConfig {
  double t_start_s = 1.0;
  double t_end_s = 1e8;
  /// Dense enough that the late-horizon run spacing resolves the 16x16
  /// configuration's ~2e6 s reprogramming period.
  int runs = 800;
};

std::vector<double> run_schedule(const HorizonConfig& horizon);

/// Alternative inference-arrival processes for the schedule-sensitivity
/// ablation (bench/ablation_schedules): the paper does not pin down the
/// arrival process, and the EDP totals depend on how much of the traffic
/// lands late in the drift horizon.
enum class ScheduleKind {
  kLogUniform,  ///< constant runs per decade (the default run_schedule)
  kUniform,     ///< constant runs per second — traffic concentrates late
  kPoisson,     ///< memoryless arrivals at the uniform rate
};

std::vector<double> make_schedule(ScheduleKind kind,
                                  const HorizonConfig& horizon,
                                  std::uint64_t seed = 0x5c4ed);

/// Totals over a horizon simulation.
struct AggregateResult {
  std::string label;
  int runs = 0;
  int reprograms = 0;
  int policy_updates = 0;
  int mismatches = 0;
  int searches_skipped = 0;  ///< entropy-gated layers (0 for baselines)
  int program_retries = 0;   ///< extra write-verify attempts (Odin only)
  int degraded_runs = 0;     ///< runs served in degraded mode (Odin only)
  /// Update-guardrail counters (Odin only; zero while the guard is off).
  int updates_accepted = 0;
  int updates_rejected = 0;
  int updates_rolled_back = 0;
  long long buffer_dropped = 0;      ///< replay-buffer saturation drops
  long long buffer_quarantined = 0;  ///< entries held in quarantine at end
  common::EnergyLatency inference;  ///< incl. NoC and prediction overhead
  common::EnergyLatency reprogram;

  common::EnergyLatency total() const noexcept {
    return inference + reprogram;
  }
  double inference_edp() const noexcept { return inference.edp(); }
  double total_edp() const noexcept { return total().edp(); }
};

/// Simulate a homogeneous baseline across the horizon. `per_run_extra` is
/// added to every run (NoC activation traffic). `faults` (caller-owned,
/// optional) makes every reprogram advance the device's wear campaign.
AggregateResult simulate_homogeneous(
    const ou::MappedModel& model, const ou::NonIdealityModel& nonideal,
    const ou::OuCostModel& cost, ou::OuConfig config,
    const HorizonConfig& horizon,
    common::EnergyLatency per_run_extra = {}, bool reprogram_enabled = true,
    reram::FaultInjector* faults = nullptr);

/// Simulate several homogeneous baseline arms concurrently (each arm is an
/// independent horizon walk). Results land in `configs` order and are
/// bitwise identical to calling simulate_homogeneous per config.
std::vector<AggregateResult> simulate_homogeneous_sweep(
    const ou::MappedModel& model, const ou::NonIdealityModel& nonideal,
    const ou::OuCostModel& cost, std::span<const ou::OuConfig> configs,
    const HorizonConfig& horizon,
    common::EnergyLatency per_run_extra = {}, bool reprogram_enabled = true);

/// Simulate Odin across the horizon; adds NoC traffic, the prediction
/// power/latency overhead, and the amortized policy-update energy.
AggregateResult simulate_odin(OdinController& controller,
                              const HorizonConfig& horizon,
                              common::EnergyLatency per_run_extra = {},
                              const arch::OverheadModel* overhead = nullptr);

/// Leave-one-family-out offline policy (paper Sec. V-A): bootstraps from
/// every paper workload whose family differs from `excluded`, at the given
/// crossbar size.
policy::OuPolicy offline_policy_excluding(
    const Setup& setup, dnn::Family excluded, int crossbar_size = 0,
    const policy::OfflineTrainConfig& config = {});

}  // namespace odin::core
