// Hardware-in-the-loop inference: execute a trained MultiHeadMlp on the
// behavioural ReRAM crossbar model, OU cycle by OU cycle.
//
// Each Dense layer's weight matrix is scaled into the cell range, tiled
// onto 128x128 crossbars and evaluated as analog OU MVMs with the
// reconfigurable ADC at clamp(ceil(log2 R), 3, 6) bits; partial sums merge
// digitally (the S+A path), biases and ReLU apply at the output register.
// Conductance drift applies between programming and inference time.
//
// This is the circuit-level counterpart of the analytical accuracy
// surrogate: tests/bench use it to confirm that accuracy measured through
// the actual analog datapath behaves the way the surrogate assumes
// (fine-OU + fresh cells ~ software accuracy; coarse OUs and drift erode
// it).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/train.hpp"
#include "ou/cost_model.hpp"
#include "ou/ou_config.hpp"
#include "reram/crossbar.hpp"

namespace odin::core {

class HardwareMlpRunner {
 public:
  /// Snapshots `model`'s current parameters; the model itself is not
  /// retained. `noise_seed` != 0 enables stochastic programming/read noise.
  HardwareMlpRunner(nn::MultiHeadMlp& model, reram::DeviceParams device,
                    int crossbar_size = 128, std::uint64_t noise_seed = 0);

  /// (Re)program every crossbar at absolute time `t_s`.
  void program(double t_s);

  /// Cells carrying weights across all layers.
  std::int64_t programmed_cells() const noexcept;

  /// Raw head-0 output logits of a forward pass at absolute time `t_s`
  /// with every layer using `ou` — the direct measure of analog-datapath
  /// fidelity (classification accuracy is much more forgiving: drift jitter
  /// preserves weight signs, which is often all argmax needs).
  std::vector<double> logits(std::span<const double> input, ou::OuConfig ou,
                             double t_s);

  /// Forward pass at absolute time `t_s` with every layer using `ou`.
  /// Returns the head-0 argmax class (the reference nets are single-head).
  int predict(std::span<const double> input, ou::OuConfig ou, double t_s);

  /// Classification accuracy over a dataset (labels from head 0).
  double accuracy(const nn::Dataset& data, ou::OuConfig ou, double t_s);

 private:
  /// One Dense layer lowered onto a grid of crossbars.
  struct MappedLayer {
    std::size_t in_features = 0;
    std::size_t out_features = 0;
    double weight_scale = 1.0;  ///< max |w|; cells store w / scale
    std::vector<double> bias;
    std::vector<double> weights;  ///< row-major, scaled into [-1, 1]
    std::vector<std::unique_ptr<reram::Crossbar>> crossbars;  ///< row-major grid
    int grid_rows = 0;
    int grid_cols = 0;
  };

  /// Evaluate one layer into `out` (size = layer.out_features). Uses the
  /// member scratch buffers; no heap allocation in steady state.
  void forward_layer(const MappedLayer& layer, std::span<const double> input,
                     ou::OuConfig ou, double t_s, std::span<double> out);

  /// Full forward pass; returns a span over the internal activation buffer
  /// holding the head-0 logits (valid until the next forward call).
  std::span<const double> forward_all(std::span<const double> input,
                                      ou::OuConfig ou, double t_s);

  reram::DeviceParams device_;
  int crossbar_size_;
  std::uint64_t noise_seed_;
  ou::CostParams adc_policy_;  ///< for the bits-from-R rule
  std::vector<MappedLayer> layers_;  ///< trunk denses then the single head

  // Reusable forward-pass scratch, sized once to the widest layer: the
  // scaled input, the activation ping-pong pair, and one partial-sum slice
  // per grid column (each parallel grid-column task owns its own slice).
  // No per-call heap allocation in forward_layer steady state.
  std::vector<double> scaled_scratch_;
  std::vector<double> act_a_;
  std::vector<double> act_b_;
  std::vector<double> partial_scratch_;  ///< grid_cols x crossbar_size flat
};

}  // namespace odin::core
