// Hardware-in-the-loop inference: execute a trained MultiHeadMlp on the
// behavioural ReRAM crossbar model, OU cycle by OU cycle.
//
// Each Dense layer's weight matrix is scaled into the cell range, tiled
// onto 128x128 crossbars and evaluated as analog OU MVMs with the
// reconfigurable ADC at clamp(ceil(log2 R), 3, 6) bits; partial sums merge
// digitally (the S+A path), biases and ReLU apply at the output register.
// Conductance drift applies between programming and inference time.
//
// This is the circuit-level counterpart of the analytical accuracy
// surrogate: tests/bench use it to confirm that accuracy measured through
// the actual analog datapath behaves the way the surrogate assumes
// (fine-OU + fresh cells ~ software accuracy; coarse OUs and drift erode
// it).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/train.hpp"
#include "ou/cost_model.hpp"
#include "ou/ou_config.hpp"
#include "reram/crossbar.hpp"

namespace odin::core {

class HardwareMlpRunner {
 public:
  /// Snapshots `model`'s current parameters; the model itself is not
  /// retained. `noise_seed` != 0 enables stochastic programming/read noise.
  HardwareMlpRunner(nn::MultiHeadMlp& model, reram::DeviceParams device,
                    int crossbar_size = 128, std::uint64_t noise_seed = 0);

  /// (Re)program every crossbar at absolute time `t_s`.
  void program(double t_s);

  /// Cells carrying weights across all layers.
  std::int64_t programmed_cells() const noexcept;

  /// Raw head-0 output logits of a forward pass at absolute time `t_s`
  /// with every layer using `ou` — the direct measure of analog-datapath
  /// fidelity (classification accuracy is much more forgiving: drift jitter
  /// preserves weight signs, which is often all argmax needs).
  std::vector<double> logits(std::span<const double> input, ou::OuConfig ou,
                             double t_s);

  /// Forward pass at absolute time `t_s` with every layer using `ou`.
  /// Returns the head-0 argmax class (the reference nets are single-head).
  int predict(std::span<const double> input, ou::OuConfig ou, double t_s);

  /// Classification accuracy over a dataset (labels from head 0).
  double accuracy(const nn::Dataset& data, ou::OuConfig ou, double t_s);

  /// Batched forward pass: query b reads inputs[b * in_stride,
  /// + layer-0 in_features) and its head-0 logits land in out[b * K, (b+1)
  /// * K) with K = head out_features. Runs every layer through the batched
  /// crossbar GEMM (plane walked once per batch), producing logits bitwise
  /// identical to `batch` single-query calls; zero heap allocation once
  /// the scratch has warmed up to `batch`.
  void logits(std::span<const double> inputs, int batch,
              std::size_t in_stride, ou::OuConfig ou, double t_s,
              std::span<double> out);

  /// Batched argmax predictions (head 0), one per query.
  void predict(std::span<const double> inputs, int batch,
               std::size_t in_stride, ou::OuConfig ou, double t_s,
               std::span<int> out);

  /// Classification accuracy evaluated `batch` dataset rows at a time.
  /// Identical result to the single-query overload.
  double accuracy(const nn::Dataset& data, ou::OuConfig ou, double t_s,
                  int batch);

 private:
  /// One Dense layer lowered onto a grid of crossbars.
  struct MappedLayer {
    std::size_t in_features = 0;
    std::size_t out_features = 0;
    double weight_scale = 1.0;  ///< max |w|; cells store w / scale
    std::vector<double> bias;
    std::vector<double> weights;  ///< row-major, scaled into [-1, 1]
    std::vector<std::unique_ptr<reram::Crossbar>> crossbars;  ///< row-major grid
    int grid_rows = 0;
    int grid_cols = 0;
  };

  /// Evaluate one layer into `out` (size = layer.out_features). Uses the
  /// member scratch buffers; no heap allocation in steady state.
  void forward_layer(const MappedLayer& layer, std::span<const double> input,
                     ou::OuConfig ou, double t_s, std::span<double> out);

  /// Batched layer evaluation: query b reads inputs[b * in_stride,
  /// + in_features) and writes out[b * out_stride, + out_features).
  void forward_layer(const MappedLayer& layer, const double* inputs,
                     int batch, std::size_t in_stride, ou::OuConfig ou,
                     double t_s, double* out, std::size_t out_stride);

  /// Full forward pass; returns a span over the internal activation buffer
  /// holding the head-0 logits (valid until the next forward call).
  std::span<const double> forward_all(std::span<const double> input,
                                      ou::OuConfig ou, double t_s);

  /// Batched full forward pass; returns the batch x head-out_features
  /// logits panel (tight stride) in the internal activation buffer.
  std::span<const double> forward_all(std::span<const double> inputs,
                                      int batch, std::size_t in_stride,
                                      ou::OuConfig ou, double t_s);

  /// Grow the forward scratch to hold `batch` queries (monotonic; called
  /// once per new high-water mark, so the steady state allocates nothing).
  void ensure_batch_scratch(int batch);

  reram::DeviceParams device_;
  int crossbar_size_;
  std::uint64_t noise_seed_;
  ou::CostParams adc_policy_;  ///< for the bits-from-R rule
  std::vector<MappedLayer> layers_;  ///< trunk denses then the single head

  // Reusable forward-pass scratch, sized to the widest layer times the
  // batch high-water mark (ensure_batch_scratch): the scaled input panel,
  // the activation ping-pong pair, one partial-sum slab per grid column
  // (each parallel grid-column task owns its own slab), and the per-query
  // DAC scale factors. No per-call heap allocation in steady state.
  std::size_t max_features_ = 1;
  int max_grid_cols_ = 1;
  int batch_capacity_ = 0;
  std::vector<double> scaled_scratch_;
  std::vector<double> act_a_;
  std::vector<double> act_b_;
  std::vector<double> partial_scratch_;  ///< grid_cols x batch x xbar_size
  std::vector<double> in_scale_;         ///< per-query input max magnitude
};

}  // namespace odin::core
