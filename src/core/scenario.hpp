// Trace-driven scenario engine: seeded, replayable million-request
// campaigns over the sharded fleet, with diurnal load, flash crowds,
// tenant priority tiers, tenant churn, correlated fault storms, and a
// reactive PE-block autoscaler.
//
// Naming note: this is the *workload* trace layer — the deterministic
// stream of request arrivals, churn and chaos events a campaign replays.
// It is unrelated to core/trace.hpp, which records per-run *outputs* of a
// finished walk into a CSV (see the disambiguation note there).
//
// Design (DESIGN.md §17):
//  * ScenarioConfig → build_trace() expands one seed into the full cast:
//    tenants with tier-derived SLO budgets, arrival weights, service
//    costs and active windows (churn); flash-crowd windows targeting a
//    deterministic tenant subset; fault storms pinned to a center PE and
//    a Chebyshev radius on the mesh, so spatially adjacent PEs — and
//    therefore adjacent shard blocks of the boustrophedon fill — fail
//    together.
//  * ArrivalGenerator turns the trace into a deterministic event stream.
//    Every event consumes a fixed number of RNG draws, so a resumed
//    campaign replays the stream to its cursor instead of serializing
//    generator state (the same replay idiom as FaultInjector).
//  * run_campaign() drives an analytic fleet model at millions of
//    requests: per-shard FIFO clocks, service times scaled by the shard's
//    PE block (inter-layer pipelining) and inflated by the shard
//    injector's drift multiplier and fault fraction; storms fire
//    FaultInjector campaigns from the trace clock; an epoch-cadence
//    autoscaler re-cuts PE blocks (core/fleet rescale_shard_blocks) and
//    migrates tenants off overloaded shards, charging migrations off the
//    critical path. All percentile reporting is streaming (core/sketch),
//    so memory stays bounded at any request count.
//  * The whole campaign state rides checkpoint payload v6
//    (core/checkpoint), so a campaign can crash mid-storm and resume
//    bitwise; wrong-geometry checkpoints are refused via the fingerprint
//    fields of CampaignState.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "arch/components.hpp"
#include "common/binary_io.hpp"
#include "common/rng.hpp"
#include "core/serving.hpp"
#include "core/sketch.hpp"
#include "reram/fault_injection.hpp"

namespace odin::core {

/// Tenant priority tiers, each mapping to a distinct SLO budget
/// (ScenarioConfig::*_slo_mult, tightest for gold).
enum class PriorityTier : std::int32_t { kGold = 0, kSilver = 1, kBronze = 2 };

const char* tier_name(PriorityTier tier);

/// One flash-crowd burst: for `duration_frac` of the horizon starting at
/// `start_frac`, the targeted tenant subset's arrival weight is multiplied
/// by `multiplier`.
struct FlashCrowd {
  double start_frac = 0.5;
  double duration_frac = 0.04;
  double multiplier = 8.0;
  /// Fraction of tenants this crowd targets (the subset is drawn
  /// deterministically from the trace seed).
  double tenant_frac = 0.10;
};

/// One correlated fault storm: a drift-acceleration window plus a burst of
/// write-verify campaigns, hitting every PE within Chebyshev distance
/// `radius` of `center_pe` on the mesh — spatial adjacency, not
/// independent draws. Shards owning an affected PE take the hit together.
struct FaultStorm {
  double start_frac = 0.5;
  double duration_frac = 0.03;
  double drift_multiplier = 6.0;
  int center_pe = -1;  ///< global PE id; -1 = drawn from the trace seed
  int radius = 1;
  /// Extra FaultInjector campaigns fired per affected shard when the
  /// storm begins (its correlated programming/wear activity).
  int campaigns = 4;
};

/// Reactive autoscaling policy over the campaign fleet.
struct AutoscaleConfig {
  /// Tri-state: < 0 defers to ODIN_AUTOSCALE ("on"/"off"/"1"/"0", strict
  /// parse, garbage warns and keeps the default on), 0 = off, > 0 = on.
  int enabled = -1;
  /// Re-cut PE blocks only when max/mean per-PE shard demand over the last
  /// epoch exceeds this factor (hysteresis against thrashing).
  double imbalance_threshold = 1.25;
  /// Per moved tenant: remap/reprogram cost charged to the migration
  /// ledger — off the critical path, never the serving FIFO.
  double migration_cost_s = 2e-3;
  double migration_energy_j = 5e-4;

  bool resolved_enabled() const;
};

struct ScenarioConfig {
  /// 0 defers to ODIN_SCENARIO_SEED (strict env_long parse, values >= 1;
  /// default 1).
  std::uint64_t seed = 0;
  int tenants = 64;
  long long requests = 100'000;
  /// Wall-clock span the arrival process is calibrated to cover.
  double horizon_s = 86'400.0;
  /// Diurnal rate shaping: 1 + amplitude * sin(...) with `cycles` full
  /// periods across the horizon (trough at t = 0).
  int diurnal_cycles = 1;
  double diurnal_amplitude = 0.6;
  /// Flash crowds; when `flash` is empty, `flash_crowds` windows are drawn
  /// from the seed with the defaults below.
  std::vector<FlashCrowd> flash;
  int flash_crowds = 2;
  double flash_multiplier = 5.0;
  double flash_duration_frac = 0.03;
  double flash_tenant_frac = 0.10;
  /// Fraction of tenants with a partial lifetime (late arrival and/or
  /// early departure) — the churn population.
  double churn_frac = 0.25;
  /// Fault storms; when `storms` is empty, `fault_storms` are drawn from
  /// the seed with the defaults below.
  std::vector<FaultStorm> storms;
  int fault_storms = 2;
  double storm_drift_multiplier = 3.0;
  double storm_duration_frac = 0.03;
  int storm_radius = 1;
  int storm_campaigns = 4;
  /// Tier population shares (bronze takes the remainder) and SLO budgets
  /// as multiples of the calibrated mean service time.
  double gold_share = 0.10;
  double silver_share = 0.30;
  double gold_slo_mult = 12.0;
  double silver_slo_mult = 24.0;
  double bronze_slo_mult = 48.0;
  /// Mean offered load as a fraction of initial fleet service capacity;
  /// the per-tenant service times are calibrated to hit it, so flash
  /// crowds create real transient overload instead of idling.
  double target_utilization = 0.45;

  std::uint64_t resolved_seed() const;
};

/// One tenant of the expanded trace.
struct ScenarioTenant {
  std::string name;
  PriorityTier tier = PriorityTier::kBronze;
  double slo_s = 0.0;
  double weight = 1.0;     ///< relative arrival weight while active
  double service_s = 0.0;  ///< calibrated base service time (1-PE, no faults)
  double energy_j = 0.0;   ///< base inference energy
  double arrive_s = 0.0;   ///< active window start (churn)
  double depart_s = 0.0;   ///< active window end
  std::uint32_t flash_mask = 0;  ///< bit c set = targeted by crowd c
};

/// The fully expanded, deterministic scenario: same config + seed =>
/// identical trace, bit for bit.
struct ScenarioTrace {
  ScenarioConfig config;  ///< with the seed resolved
  arch::PimConfig pim;
  std::vector<ScenarioTenant> tenants;
  std::vector<FlashCrowd> flash;   ///< resolved windows
  std::vector<FaultStorm> storms;  ///< resolved, ascending start, center >= 0
  /// Arrival-rate scale: lambda(t) = base_rate * diurnal(t) * sum of
  /// active tenant weights (with flash multipliers).
  double base_rate = 0.0;

  double diurnal(double t_s) const;
  bool crowd_active(std::size_t crowd, double t_s) const;
  /// True when any flash crowd is active at t (the "flash phase" the
  /// bench compares autoscaled vs static placement over).
  bool in_flash_phase(double t_s) const;
  /// Effective arrival weight of tenant i at time t (0 while churned out;
  /// amplified by flash crowds targeting it).
  double tenant_weight(std::size_t i, double t_s) const;
  /// Global PE ids within the storm's Chebyshev radius of its center.
  std::vector<int> storm_pes(std::size_t storm) const;
};

/// Expand `config` against the mesh geometry. Deterministic.
ScenarioTrace build_trace(const ScenarioConfig& config,
                          const arch::PimConfig& pim = {});

/// Deterministic arrival stream over a trace. Each next() consumes exactly
/// two RNG draws (inter-arrival gap, tenant pick), so skip(n) replays a
/// prefix cheaply and a resumed campaign reaches the identical stream
/// state without serializing the generator.
class ArrivalGenerator {
 public:
  explicit ArrivalGenerator(const ScenarioTrace& trace);

  struct Arrival {
    double t_s = 0.0;
    int tenant = 0;
  };
  Arrival next();
  void skip(std::uint64_t events);
  std::uint64_t emitted() const noexcept { return emitted_; }
  double clock_s() const noexcept { return t_; }

 private:
  void rebuild_cdf();

  const ScenarioTrace* trace_;
  common::Rng rng_;
  double t_ = 0.0;
  std::uint64_t emitted_ = 0;
  std::vector<double> cdf_;  ///< prefix sums of tenant weights at t_
  std::vector<double> boundaries_;  ///< times the weight profile changes
  std::size_t next_boundary_ = 0;
};

// ---------------------------------------------------------------------------
// Campaign pricing/placement primitives, exported for core/cluster. The
// cluster engine runs the identical analytic serve over a multi-mesh shard
// set, so these must be the *same functions* — a single-mesh cluster is
// bitwise-identical to run_campaign only because both walk the same
// expressions in the same order.

/// Analytic service rate of one shard block: inter-layer pipelining across
/// the block's PEs speeds back-to-back service up linearly in the extras.
double campaign_shard_speed(int pes) noexcept;

/// Price one serve of tenant `t` on a `pes`-wide block under the given
/// drift multiplier and unusable-cell fraction — exactly the expressions
/// run_campaign serves with (drift inflates service and energy, faults add
/// retry overhead on both, the block speed divides service).
void campaign_price(const ScenarioTenant& t, double drift_mult,
                    double fault_fraction, int pes, double& service_s,
                    double& energy_j) noexcept;

/// Reprice an already-priced serve for the degraded out-of-band path (shed
/// or breaker-open fallback): shorter, cheaper, off the shard FIFO.
void campaign_degrade(double& service_s, double& energy_j) noexcept;

/// Contiguous shard blocks with the given per-shard PE counts, cut along
/// the snake fill order — the shape rescale_shard_blocks produces, so the
/// counts alone reconstruct the blocks on resume.
std::vector<std::vector<int>> campaign_blocks_from_counts(
    const arch::PimConfig& pim, const std::vector<std::int32_t>& counts);

/// Demand-balanced contiguous initial placement: tenant index ranges map
/// to shards in order, boundaries chosen so each shard's expected demand
/// share matches its PE share.
std::vector<std::int32_t> campaign_initial_placement(
    const ScenarioTrace& trace, const std::vector<std::int32_t>& shard_pes);

/// Per-PE demand bar the tenant-migration loop flattens toward after a
/// rescale (which equalizes only to 1-PE granularity).
inline constexpr double kMigrateResidualThreshold = 1.05;

/// Durable campaign-engine state (checkpoint payload v6). The fingerprint
/// block gates resume — a checkpoint only reinstates onto the identical
/// scenario geometry; the rest positions the replay (arrival cursor,
/// per-shard clocks and wear, autoscaler accumulators, sketches, the
/// trajectory so far).
struct CampaignState {
  // Fingerprint.
  std::uint64_t seed = 0;
  std::uint64_t requests = 0;
  std::int32_t tenants = 0;
  std::int32_t shards = 0;
  std::int32_t epochs = 0;
  bool autoscale = false;
  // Cursor.
  std::uint64_t next_event = 0;  ///< arrivals already served
  double clock_s = 0.0;
  std::int32_t epoch = 0;
  std::int32_t storms_fired = 0;
  // Ledgers.
  std::int32_t rescales = 0;
  std::int64_t migrations = 0;
  std::int64_t storm_campaigns_fired = 0;
  std::int64_t misses = 0;
  std::int64_t sheds = 0;
  std::int64_t flash_requests = 0;
  double energy_j = 0.0;
  double edp_sum = 0.0;  ///< sum of per-request energy * service latency
  double migration_s = 0.0;
  double migration_energy_j = 0.0;
  // Fleet state.
  std::vector<double> shard_busy_until_s;
  std::vector<std::int32_t> shard_pes;  ///< current PE count per shard
  std::vector<std::int32_t> tenant_shard;
  std::vector<double> shard_demand;   ///< service demand this epoch
  std::vector<double> tenant_demand;  ///< per-tenant, same window
  std::vector<reram::FaultInjector::WearState> shard_wear;
  /// Shards each fired storm's bursts landed on (bit k = shard k): blocks
  /// move under autoscaling, so resume re-applies bursts to the shards
  /// they actually hit, not the shards that own those PEs now.
  std::vector<std::uint64_t> storm_shard_mask;
  // Streaming aggregates. p99 slack is the 1st-percentile slack sample,
  // so the sketches track p = 0.01 over slack.
  QuantileSketch slack_p1{0.01};
  QuantileSketch flash_slack_p1{0.01};
  QuantileSketch tier_slack_p1[3] = {QuantileSketch(0.01), QuantileSketch(0.01),
                                     QuantileSketch(0.01)};
  SojournSketch sojourn;
  // Trajectory so far (one entry per epoch, fixed size `epochs`).
  std::vector<double> epoch_energy_j;
  std::vector<double> epoch_edp_sum;
  std::vector<std::int64_t> epoch_requests;
  std::vector<std::int64_t> epoch_misses;
  std::vector<std::int64_t> epoch_sheds;
  std::vector<QuantileSketch> epoch_slack_p1;
};

void encode_campaign_state(const CampaignState& s, common::ByteWriter& out);
std::optional<CampaignState> decode_campaign_state(common::ByteReader& in);

struct CampaignConfig {
  ScenarioConfig scenario{};
  arch::PimConfig pim{};
  /// Initial shard count (clamped to [1, pim.pes]).
  int shards = 6;
  AutoscaleConfig autoscale{};
  /// Trajectory resolution and autoscale cadence.
  int epochs = 48;
  /// Per-tenant raw sojourn retention (TenantStats::record_sojourn cap);
  /// the sketches absorb everything past it. 0 = unbounded.
  std::size_t sojourn_cap = 64;
  /// Checkpointing: `every_runs` counts served requests here.
  CheckpointConfig checkpoint{};
  /// Crash hook: serve at most this many requests in this invocation
  /// (forces a final checkpoint when enabled). 0 = run to completion.
  long long max_requests = 0;
  /// Per-shard injector seeds are fault_seed + shard index.
  std::uint64_t fault_seed = 0x0dd5eed;
  /// Shed (degraded out-of-band service) when queue wait exceeds this
  /// multiple of the tenant's SLO.
  double queue_shed_slo_mult = 8.0;
};

/// Per-epoch trajectory point of a finished (or interrupted) campaign.
struct CampaignEpoch {
  double t_end_s = 0.0;
  std::int64_t requests = 0;
  std::int64_t misses = 0;
  std::int64_t sheds = 0;
  double energy_j = 0.0;
  double edp_sum = 0.0;
  double p99_slack_s = 0.0;
  double edp_per_request() const noexcept {
    return requests > 0 ? edp_sum / static_cast<double>(requests) : 0.0;
  }
};

struct CampaignResult {
  std::string label;
  ScenarioConfig scenario;  ///< seed resolved
  int shards = 1;
  bool autoscaled = false;
  bool resumed = false;
  std::vector<ScenarioTenant> roster;
  std::vector<TenantStats> tenants;  ///< parallel to roster
  std::vector<CampaignEpoch> trajectory;
  CampaignState state;  ///< final engine state (ledgers, sketches)

  std::int64_t requests() const noexcept;
  double p99_slack_s() const noexcept;
  double flash_p99_slack_s() const noexcept;
  double tier_p99_slack_s(PriorityTier tier) const noexcept;
  double edp_per_request() const noexcept;

  /// Deterministic plain-text summary: same seed => byte-identical output
  /// (no wall clocks, no host state), so campaign runs diff across PRs.
  std::string summary(bool include_trajectory = true) const;
};

/// Run the campaign from the start. Deterministic and single-threaded.
CampaignResult run_campaign(const CampaignConfig& config);

/// Resume an interrupted campaign from its checkpoint pair. nullopt when
/// no valid checkpoint exists or its fingerprint does not match `config`
/// (different seed/requests/tenants/shards/epochs/autoscale — the
/// wrong-geometry refusal).
std::optional<CampaignResult> resume_campaign(const CampaignConfig& config);

/// Export the trace's first `sc.horizon.runs` arrivals into an explicit
/// ServingConfig schedule: arrival times are mapped affinely onto the
/// serving horizon and the per-segment run counts follow the arrival
/// density (each segment keeps at least one run), so the real serving
/// loop (core/serving, core/fleet) runs under scenario-shaped load at
/// small horizons while the campaign engine scales the same trace to
/// millions of requests analytically.
void apply_trace_to_serving(const ScenarioTrace& trace, ServingConfig& sc);

/// Parse a scenario file (docs/scenario_format.md): `key value` lines,
/// `#` comments, repeated `flash`/`storm` directives. Returns nullopt and
/// names the offending line on stderr for malformed input.
std::optional<CampaignConfig> parse_scenario(std::istream& in);
std::optional<CampaignConfig> parse_scenario_file(const std::string& path);

}  // namespace odin::core
