// Cross-mesh failover: replicated checkpoints, mesh-loss fault domains,
// and bounded-RTO tenant evacuation (DESIGN.md §18).
//
// One PE mesh — however well it shards (core/fleet), autoscales and
// storm-hardens (core/scenario) — is still one fault domain: a power or
// interconnect event takes every shard on it down together. The cluster
// layer runs N independent meshes, each serving its own slice of the
// tenant set through the identical campaign-engine analytics, and makes
// whole-mesh loss a first-class, recoverable event:
//
//  * mesh-loss fault domains — seeded outage windows (MeshOutage) take one
//    mesh's shards dark for part of the horizon, replayable from the
//    scenario seed exactly like PR 9's fault storms. While dark, the
//    mesh's arrivals are dropped (counted, never silently lost) and its
//    injectors report a paused drift clock (FaultInjector::add_power_down).
//  * checkpoint replication — at an epoch cadence, every tenant's durable
//    state is mirrored to a peer mesh over the inter-mesh link
//    (arch::intermesh_transfer), and the replica's age is tracked so a
//    failover can report exactly how much each tenant lost (RPO).
//  * failover — when a mesh dies with failover enabled, its tenants are
//    restored from the freshest surviving replica onto the least-loaded
//    surviving mesh (core/fleet pick_least_loaded_block at mesh then
//    shard granularity), under degraded admission: breakers pre-opened
//    (CircuitBreaker::force_open) so restored tenants serve the cheap
//    fallback path until a half-open probe passes, and the destination
//    array is re-bootstrapped with a write-verify campaign. Per-tenant
//    recovery time (RTO) is the outage-to-ready gap, serialized restores
//    queuing behind one detection delay.
//
// Determinism: a single-mesh cluster is bitwise-identical to
// run_campaign — it walks the same arrival stream through the same
// pricing expressions (campaign_price) over the same shard geometry — and
// every cluster decision (outage windows, storm target meshes, failover
// destinations) is a pure function of the seeds and the state, so
// same-seed replay and mid-campaign resume reproduce the summary byte for
// byte. The cluster state rides checkpoint payload v7; v6 frames decode
// as a single-mesh cluster with replication and failover off.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/binary_io.hpp"
#include "core/resilience.hpp"
#include "core/scenario.hpp"

namespace odin::core {

/// One mesh-loss window: mesh `mesh` is dark (all shards unservable, drift
/// clocks paused) for `duration_frac` of the horizon starting at
/// `start_frac`. A negative mesh index is resolved from the scenario seed.
struct MeshOutage {
  double start_frac = 0.5;
  double duration_frac = 0.25;
  int mesh = -1;  ///< victim mesh; -1 = drawn from the seed
};

/// Failover policy for tenants on a lost mesh.
struct FailoverConfig {
  /// Tri-state: < 0 defers to ODIN_FAILOVER ("on"/"off"/"1"/"0", strict
  /// parse, garbage warns and keeps the default on), 0 = off, > 0 = on.
  int enabled = -1;
  /// Outage-to-detection delay before the first restore can start.
  double detection_s = 30.0;
  /// Per-tenant restore work on the destination (state reinstatement,
  /// admission re-registration); restores are serialized, so the i-th
  /// victim waits behind i - 1 of these plus i replica pulls.
  double restore_s = 2.0;
  /// Breaker hold (in tenant runs) a restored tenant is pre-opened for —
  /// the degraded-admission regime until the half-open probe passes.
  int degraded_window = 8;

  bool resolved_enabled() const;
};

struct ClusterConfig {
  /// The per-mesh campaign (scenario, shards *per mesh*, autoscale,
  /// epochs, checkpointing). One mesh reproduces run_campaign bitwise.
  CampaignConfig campaign{};
  /// Mesh count; <= 0 defers to ODIN_MESHES (strict env_long parse,
  /// default 1). Clamped to [1, 8].
  int meshes = 0;
  /// Outage windows; when empty, `mesh_outages` windows are drawn from the
  /// scenario seed with `outage_duration_frac` each.
  std::vector<MeshOutage> outages;
  int mesh_outages = 1;
  double outage_duration_frac = 0.25;
  /// Replicate tenant state to a peer mesh every this many epochs; <= 0
  /// defers to ODIN_REPLICATION_EPOCHS (strict parse, default 4). Clamped
  /// to [1, 64].
  int replication_epochs = 0;
  FailoverConfig failover{};

  int resolved_meshes() const;
  int resolved_replication_epochs() const;
};

/// Durable cluster-engine state (checkpoint payload v7). The fingerprint
/// block extends CampaignState's resume gate to the cluster geometry; the
/// rest positions the outage/replication replay and carries the failover
/// ledgers. A v6 frame decodes to the defaults: one mesh, nothing fired,
/// empty per-mesh/per-tenant vectors (sized on first use).
struct ClusterState {
  // Fingerprint.
  std::int32_t meshes = 1;
  std::int32_t replication_epochs = 0;
  bool failover = false;
  // Cursor.
  std::int32_t outages_fired = 0;
  std::int32_t replication_rounds = 0;
  // Per-mesh.
  std::vector<std::uint8_t> mesh_down;
  std::vector<double> mesh_down_until_s;
  std::vector<std::int64_t> mesh_served;
  // Per-tenant replication/restore surface.
  std::vector<std::int64_t> replica_runs;   ///< runs captured by the replica
  std::vector<double> replica_time_s;       ///< when it was taken (0 = never)
  std::vector<std::int32_t> replica_mesh;   ///< where it lives (-1 = none)
  std::vector<double> tenant_ready_s;       ///< restore completion time
  std::vector<std::uint8_t> tenant_victim;  ///< ever evacuated off a mesh
  /// Per-tenant degraded-admission breakers (the failover path force-opens
  /// them; closed breakers never consume state, so a single-mesh cluster
  /// stays bitwise-identical to run_campaign).
  std::vector<CircuitBreaker::Snapshot> breakers;
  // Ledgers.
  std::int64_t failovers = 0;        ///< tenant evacuations off a lost mesh
  std::int64_t restored_stale = 0;   ///< restores from a replica missing serves
  std::int64_t lost_runs = 0;        ///< serves newer than the restored replica
  std::int64_t outage_dropped = 0;   ///< arrivals dropped while dark/restoring
  std::int64_t degraded_runs = 0;    ///< breaker-open fallback serves
  std::int64_t bootstrap_campaigns = 0;  ///< destination re-bootstrap writes
  std::int64_t victim_offered = 0;   ///< post-outage arrivals for victims
  std::int64_t victim_served = 0;    ///< of those, actually served
  double rto_max_s = 0.0;
  double rto_sum_s = 0.0;
  double rpo_max_s = 0.0;
  double rpo_sum_s = 0.0;
  double replication_bytes = 0.0;
  double replication_s = 0.0;
  double replication_energy_j = 0.0;
};

void encode_cluster_state(const ClusterState& s, common::ByteWriter& out);
std::optional<ClusterState> decode_cluster_state(common::ByteReader& in);

struct ClusterResult {
  CampaignResult campaign;  ///< fleet-wide campaign surface (all meshes)
  ClusterState cluster;     ///< final cluster state (ledgers, cursors)
  int meshes = 1;
  int shards_per_mesh = 1;
  bool failover = true;
  int replication_epochs = 4;
  std::vector<MeshOutage> outages;  ///< resolved windows, ascending start

  /// Post-outage served fraction of victim-tenant arrivals (1 when no
  /// outage produced victims) — the bench's recovery figure.
  double victim_recovery() const noexcept;
  double rto_mean_s() const noexcept;
  double rpo_mean_s() const noexcept;

  /// Deterministic plain-text summary: the cluster block (geometry,
  /// outages, failover/replication ledgers, per-mesh serve counts)
  /// followed by the campaign summary. Same seed => byte-identical.
  std::string summary(bool include_trajectory = true) const;
};

/// Run the cluster campaign from the start. Deterministic and
/// single-threaded; with resolved_meshes() == 1 the campaign block of the
/// result is bitwise-identical to run_campaign on `config.campaign`.
ClusterResult run_cluster(const ClusterConfig& config);

/// Resume an interrupted cluster campaign from its checkpoint pair.
/// nullopt when no valid v7 cluster checkpoint exists or either
/// fingerprint (campaign geometry or cluster geometry:
/// meshes/replication_epochs/failover) does not match `config`.
std::optional<ClusterResult> resume_cluster(const ClusterConfig& config);

/// Parse a cluster scenario file: the scenario keys of
/// docs/scenario_format.md plus the cluster keys (`meshes`,
/// `replication-epochs`, `failover`, `outage START_FRAC DURATION_FRAC
/// [MESH]`, `mesh-outages`, `outage-duration-frac`, `detection-s`,
/// `restore-s`, `degraded-window`). Returns nullopt and names the
/// offending line on stderr for malformed input.
std::optional<ClusterConfig> parse_cluster(std::istream& in);
std::optional<ClusterConfig> parse_cluster_file(const std::string& path);

}  // namespace odin::core
