// Streaming percentile sketches with bounded, checkpointable state.
//
// A million-request campaign cannot afford one double per served request
// just to report p99 sojourn at the end (1e6 requests x 1e3 tenants would
// be gigabytes). The P² algorithm (Jain & Chlamtac, CACM 1985) estimates a
// single quantile online with five markers — five heights, five integer
// positions — updated in O(1) per observation. The state is a handful of
// doubles and integers, so it serializes exactly (bit-for-bit) into the
// serving checkpoint and a resumed campaign continues the estimate as if
// it had never crashed.
//
// SojournSketch bundles the fixed quantile set the serving reports use
// (p50/p90/p95/p99) plus exact min/max/count/sum, and interpolates between
// the tracked points for intermediate percentile queries.
#pragma once

#include <array>
#include <cstdint>

#include "common/binary_io.hpp"

namespace odin::core {

/// One-quantile P² estimator. Deterministic: the estimate is a pure
/// function of the observation sequence, with no randomness and no
/// allocation, so two walks that feed identical samples agree bitwise.
class QuantileSketch {
 public:
  explicit QuantileSketch(double p = 0.99) noexcept : p_(p) {}

  void add(double x) noexcept;

  /// Current estimate of the p-quantile. Exact (nearest-rank on the
  /// buffered observations) while count() <= 5; 0 when empty.
  double estimate() const noexcept;

  double quantile_p() const noexcept { return p_; }
  std::uint64_t count() const noexcept { return n_; }

  /// Exact serialized form; restoring it reproduces the estimator
  /// bit-for-bit (all state is doubles and integers).
  struct State {
    double p = 0.99;
    std::uint64_t n = 0;
    std::array<double, 5> q{};        ///< marker heights
    std::array<std::int64_t, 5> pos{};  ///< marker positions (1-based)
  };
  State state() const noexcept { return {p_, n_, q_, pos_}; }
  void restore(const State& s) noexcept {
    p_ = s.p;
    n_ = s.n;
    q_ = s.q;
    pos_ = s.pos;
  }

  friend bool operator==(const QuantileSketch& a,
                         const QuantileSketch& b) noexcept {
    return a.p_ == b.p_ && a.n_ == b.n_ && a.q_ == b.q_ && a.pos_ == b.pos_;
  }

 private:
  double p_ = 0.99;
  std::uint64_t n_ = 0;
  std::array<double, 5> q_{};
  std::array<std::int64_t, 5> pos_{};
};

void encode_sketch(const QuantileSketch& s, common::ByteWriter& out);
/// Overwrites `s` from the stream; false on truncation (reader !ok()).
bool decode_sketch(common::ByteReader& in, QuantileSketch& s);

/// The bounded-memory percentile surface a tenant keeps when raw sojourn
/// retention is capped: four P² estimators at the report quantiles plus
/// exact extremes and mean. ~200 bytes regardless of sample count.
class SojournSketch {
 public:
  SojournSketch() noexcept;

  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Percentile estimate for p in [0, 100]: piecewise-linear through
  /// (0, min), the tracked quantiles (50/90/95/99) and (100, max).
  double percentile(double p) const noexcept;

  friend bool operator==(const SojournSketch& a,
                         const SojournSketch& b) noexcept;

  static constexpr std::size_t kQuantiles = 4;
  static constexpr std::array<double, kQuantiles> kTracked = {0.50, 0.90,
                                                              0.95, 0.99};

  friend void encode_sojourn_sketch(const SojournSketch& s,
                                    common::ByteWriter& out);
  friend bool decode_sojourn_sketch(common::ByteReader& in, SojournSketch& s);

 private:
  std::array<QuantileSketch, kQuantiles> q_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

void encode_sojourn_sketch(const SojournSketch& s, common::ByteWriter& out);
bool decode_sojourn_sketch(common::ByteReader& in, SojournSketch& s);

}  // namespace odin::core
