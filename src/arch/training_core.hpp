// Digital PIM training core — the substrate behind the policy update.
//
// The paper (Sec. V-A, following ReHy [31]) uses a dedicated ReRAM digital
// PIM core for the 32-bit floating-point gradient computation of the OU
// policy update. We model it as a MAC-rate/energy engine and use it to
// *derive* the 0.22 uJ-per-update figure the paper reports (Sec. V-E):
// 100 epochs over the 50-example buffer on the ~300-parameter MLP is a few
// million MACs at digital-PIM energy (~0.07 pJ/MAC at 32 nm).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace odin::arch {

struct TrainingCoreParams {
  double energy_per_mac_j = 0.049 * units::pJ;  ///< fp32 MAC, digital PIM
  double macs_per_second = 50e9;                ///< sustained throughput
  /// Forward + backward costs ~3x the forward MAC count (standard rule).
  double backprop_factor = 3.0;
};

class TrainingCoreModel {
 public:
  explicit TrainingCoreModel(TrainingCoreParams params = {})
      : params_(params) {}

  const TrainingCoreParams& params() const noexcept { return params_; }

  /// MACs for one policy update: epochs x examples x parameters, times the
  /// forward+backward factor.
  std::int64_t update_macs(std::int64_t parameters, int buffer_entries,
                           int epochs) const noexcept;

  /// Energy / latency of one policy update.
  common::EnergyLatency update_cost(std::int64_t parameters,
                                    int buffer_entries,
                                    int epochs) const noexcept;

 private:
  TrainingCoreParams params_;
};

}  // namespace odin::arch
