// Mesh network-on-chip model: XY dimension-order routing over the paper's
// 6x6 PE mesh, with per-hop flit energy/latency constants of conventional
// 32 nm mesh routers (Table I: 32-bit flits, 8-port routers).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace odin::arch {

struct NocParams {
  int flit_bits = 32;
  /// 3-stage router pipeline + link traversal at 1.2 GHz.
  double hop_latency_s = 2.5 * units::ns;
  double hop_energy_per_flit_j = 0.15 * units::pJ;
};

/// Inter-mesh replication link (core/cluster): a serial chip-to-chip
/// channel carrying checkpoint replicas and failover restores between
/// meshes — orders of magnitude slower and costlier per byte than the
/// on-die NoC above, which is exactly why replication is asynchronous and
/// cadence-driven rather than per-serve.
struct InterMeshLinkParams {
  double bandwidth_bytes_per_s = 4.0e9;  ///< sustained payload rate
  double setup_latency_s = 1.0e-6;       ///< per-transfer serialization setup
  double energy_per_byte_j = 20.0 * units::pJ;
};

/// Cost of moving `bytes` across the inter-mesh link. Deterministic pure
/// function; zero or negative byte counts cost nothing.
common::EnergyLatency intermesh_transfer(std::int64_t bytes,
                                         InterMeshLinkParams params = {});

class NocModel {
 public:
  NocModel(int mesh_x, int mesh_y, NocParams params = {});

  int mesh_x() const noexcept { return mesh_x_; }
  int mesh_y() const noexcept { return mesh_y_; }
  int nodes() const noexcept { return mesh_x_ * mesh_y_; }
  const NocParams& params() const noexcept { return params_; }

  /// Manhattan hop count between PE indices (row-major node ids).
  int hops(int src, int dst) const noexcept;

  /// Mean hop count under uniform-random traffic — the standard
  /// (mesh_x + mesh_y) / 3 closed form, computed exactly here.
  double average_hops() const noexcept;

  /// Cost of moving `bits` of payload across `hops` hops. Flits pipeline
  /// through the network: latency = (hops + flits - 1) * hop_latency.
  common::EnergyLatency transfer(std::int64_t bits, int hops) const noexcept;

  /// Transfer with the uniform-traffic average hop count.
  common::EnergyLatency transfer_average(std::int64_t bits) const noexcept;

 private:
  int mesh_x_, mesh_y_;
  NocParams params_;
};

}  // namespace odin::arch
