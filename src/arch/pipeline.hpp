// Tile-pipeline throughput analysis.
//
// The paper's Eq. 1 premises that "ADC is the critical part of the
// pipeline" (Sec. III-B). This module checks that premise instead of
// assuming it: it totals the per-stage work of executing one layer —
// eDRAM fetch, DAC/wordline drive, analog OU evaluation + ADC conversion,
// shift-and-add merging, output-register writeback — against per-stage
// sustained rates, and reports the bottleneck. bench/pipeline_breakdown
// prints the shares across OU configurations.
#pragma once

#include <array>
#include <string>

#include "dnn/layer_desc.hpp"
#include "ou/cost_model.hpp"
#include "ou/mapper.hpp"

namespace odin::arch {

enum class PipelineStage : int {
  kEdramFetch = 0,
  kDacDrive,
  kAdcConvert,
  kShiftAdd,
  kWriteback,
  kCount,
};

std::string stage_name(PipelineStage stage);

struct PipelineRates {
  double edram_bytes_per_s = 48e9;   ///< 384-bit bus at 1.2 GHz (Table I)
  double dac_rows_per_s = 9.6e9;     ///< 128 DACs per crossbar, 1.2 GHz
  /// One ADC per crossbar (Table I: 96 ADCs, 96 arrays); per-conversion
  /// time follows the cost model's bits x 0.83 ns.
  double adc_conversions_per_s = 3.0e8;
  double sa_ops_per_s = 9.6e9;       ///< 96 S+A units
  double writeback_bytes_per_s = 24e9;
};

struct PipelineAnalysis {
  std::array<double, static_cast<int>(PipelineStage::kCount)> stage_time_s{};
  PipelineStage bottleneck = PipelineStage::kAdcConvert;
  double total_time_s = 0.0;       ///< sum of stage times (sequential bound)
  double bottleneck_time_s = 0.0;  ///< perfectly-pipelined bound

  double share(PipelineStage stage) const noexcept {
    return total_time_s > 0.0
               ? stage_time_s[static_cast<int>(stage)] / total_time_s
               : 0.0;
  }
};

/// Analyze one layer executed with `config` (per-crossbar view: the work of
/// the bottleneck crossbar, which sets tile latency).
PipelineAnalysis analyze_layer(const dnn::LayerDescriptor& layer,
                               const ou::OuCounts& counts,
                               ou::OuConfig config,
                               const ou::CostParams& cost_params,
                               const PipelineRates& rates = {});

}  // namespace odin::arch
