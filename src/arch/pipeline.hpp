// Tile-pipeline throughput analysis.
//
// The paper's Eq. 1 premises that "ADC is the critical part of the
// pipeline" (Sec. III-B). This module checks that premise instead of
// assuming it: it totals the per-stage work of executing one layer —
// eDRAM fetch, DAC/wordline drive, analog OU evaluation + ADC conversion,
// shift-and-add merging, output-register writeback — against per-stage
// sustained rates, and reports the bottleneck. bench/pipeline_breakdown
// prints the shares across OU configurations.
#pragma once

#include <array>
#include <span>
#include <string>

#include "dnn/layer_desc.hpp"
#include "ou/cost_model.hpp"
#include "ou/mapper.hpp"

namespace odin::arch {

enum class PipelineStage : int {
  kEdramFetch = 0,
  kDacDrive,
  kAdcConvert,
  kShiftAdd,
  kWriteback,
  kCount,
};

std::string stage_name(PipelineStage stage);

struct PipelineRates {
  double edram_bytes_per_s = 48e9;   ///< 384-bit bus at 1.2 GHz (Table I)
  double dac_rows_per_s = 9.6e9;     ///< 128 DACs per crossbar, 1.2 GHz
  /// One ADC per crossbar (Table I: 96 ADCs, 96 arrays); per-conversion
  /// time follows the cost model's bits x 0.83 ns.
  double adc_conversions_per_s = 3.0e8;
  double sa_ops_per_s = 9.6e9;       ///< 96 S+A units
  double writeback_bytes_per_s = 24e9;
};

struct PipelineAnalysis {
  std::array<double, static_cast<int>(PipelineStage::kCount)> stage_time_s{};
  PipelineStage bottleneck = PipelineStage::kAdcConvert;
  double total_time_s = 0.0;       ///< sum of stage times (sequential bound)
  double bottleneck_time_s = 0.0;  ///< perfectly-pipelined bound

  double share(PipelineStage stage) const noexcept {
    return total_time_s > 0.0
               ? stage_time_s[static_cast<int>(stage)] / total_time_s
               : 0.0;
  }
};

/// Analyze one layer executed with `config` (per-crossbar view: the work of
/// the bottleneck crossbar, which sets tile latency).
PipelineAnalysis analyze_layer(const dnn::LayerDescriptor& layer,
                               const ou::OuCounts& counts,
                               ou::OuConfig config,
                               const ou::CostParams& cost_params,
                               const PipelineRates& rates = {});

/// Inter-layer pipeline across PEs: when a network's layers are placed on
/// several PEs, consecutive inferences overlap — PE k works on request n
/// while PE k+1 finishes request n-1. The steady-state beat is the slowest
/// stage; the first request still pays the full fill.
struct InterLayerPipeline {
  int stages = 0;
  double fill_s = 0.0;        ///< first-request latency (sum of stages)
  double bottleneck_s = 0.0;  ///< steady-state per-request beat (max stage)
  /// Steady-state service time as a fraction of the unpipelined latency:
  /// bottleneck / fill. 1.0 when there is at most one stage (nothing to
  /// overlap) or the stage times are degenerate.
  double overlap_factor = 1.0;
};

/// Fold per-stage latencies (one entry per PE holding a contiguous run of
/// layers, in execution order) into the inter-layer pipeline figure the
/// fleet scheduler bills per-shard service times with.
InterLayerPipeline interlayer_pipeline(std::span<const double> stage_latency_s);

}  // namespace odin::arch
