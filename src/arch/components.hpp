// PIM tile component catalogue — paper Table I, verbatim.
//
// Tile: 1.2 GHz, 32 nm, 0.28 mm^2; 96 ReRAM crossbars of 128x128 2-bit
// cells; 96 reconfigurable 3-6 bit ADCs; eDRAM buffer; IR/OR registers;
// OU controller; sigmoid / shift-and-add / maxpool units; mesh router.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace odin::arch {

struct ComponentSpec {
  std::string name;
  std::string spec;  ///< free-text specification column of Table I
  double area_mm2 = 0.0;
};

/// The rows of Table I, in paper order.
const std::vector<ComponentSpec>& tile_components();

/// Sum of component areas (paper headline: 0.28 mm^2).
double tile_area_mm2();

struct TileConfig {
  int crossbars = 96;
  int crossbar_size = 128;
  int adcs = 96;
  int bits_per_cell = 2;
  double frequency_hz = 1.2e9;
  double edram_bytes = 64 * units::KiB;
  int edram_bus_width = 384;

  /// Weight cells available in one tile.
  long long cell_capacity() const noexcept {
    return static_cast<long long>(crossbars) * crossbar_size * crossbar_size;
  }
};

struct PimConfig {
  int pes = 36;           ///< paper Sec. V-A: 36 PEs on a mesh NoC
  int tiles_per_pe = 4;
  int mesh_x = 6;
  int mesh_y = 6;
  TileConfig tile;

  long long total_crossbars() const noexcept {
    return static_cast<long long>(pes) * tiles_per_pe * tile.crossbars;
  }
  long long total_cells() const noexcept {
    return static_cast<long long>(pes) * tiles_per_pe *
           tile.cell_capacity();
  }
  double system_area_mm2() const;
};

/// Reconfigurable successive-approximation ADC (Table I: 3-6 bits). The
/// precision is lowered by disabling LSB stages, which shortens the
/// conversion and saves capacitor-array energy.
class ReconfigurableAdc {
 public:
  ReconfigurableAdc(int min_bits = 3, int max_bits = 6,
                    double energy_per_bit_j = 0.08 * units::pJ,
                    double latency_per_bit_s = 0.83 * units::ns)
      : min_bits_(min_bits), max_bits_(max_bits),
        energy_per_bit_j_(energy_per_bit_j),
        latency_per_bit_s_(latency_per_bit_s) {}

  int clamp_bits(int requested) const noexcept;
  double conversion_energy_j(int bits) const noexcept;
  double conversion_latency_s(int bits) const noexcept;
  int min_bits() const noexcept { return min_bits_; }
  int max_bits() const noexcept { return max_bits_; }

 private:
  int min_bits_, max_bits_;
  double energy_per_bit_j_;
  double latency_per_bit_s_;
};

}  // namespace odin::arch
