// Online-learning hardware overhead model — paper Sec. V-E.
//
// The paper synthesizes the OU/ADC controllers and the online-learning
// datapath at 32 nm and reports the resulting areas/power; we account those
// reported values (re-synthesis is out of scope, DESIGN.md §3) and derive
// the percentages the paper quotes so bench/overhead_analysis can check
// them against Table I.
#pragma once

#include "arch/components.hpp"
#include "common/units.hpp"

namespace odin::arch {

struct OverheadParams {
  /// OU + ADC controller logic (registers, muxes, comparators) per tile.
  double ou_adc_controller_area_mm2 = 0.005;
  /// Total online-learning hardware (policy inference + update engine +
  /// training buffer) across the 36-PE system.
  double online_learning_area_mm2 = 0.076;
  /// OU-size prediction (policy MLP forward pass) power.
  double prediction_power_w = 0.14 * units::mW;
  /// Latency penalty of prediction vs static homogeneous 16x16 inferencing.
  double prediction_latency_fraction = 0.009;
  /// One policy update: 100 epochs on the 50-example buffer, run on the
  /// dedicated digital PIM core.
  double policy_update_energy_j = 0.22 * units::uJ;
  /// Training-example buffer: 50 entries (paper: 0.35 KB).
  int buffer_entries = 50;
  int bytes_per_entry = 7;  ///< 4 quantized features + OU levels + tag
};

class OverheadModel {
 public:
  OverheadModel(OverheadParams params, PimConfig config)
      : params_(params), config_(config) {}

  const OverheadParams& params() const noexcept { return params_; }

  /// Controller area as a fraction of the tile (paper: 1.8% of 0.28 mm^2).
  double controller_tile_fraction() const noexcept;

  /// Online-learning area as a fraction of the 36-PE system (paper: 0.2%).
  double learning_system_fraction() const noexcept;

  /// Buffer storage in bytes (paper: 0.35 KB).
  double buffer_bytes() const noexcept;

  /// Energy spent on prediction during an inference of `latency_s`.
  double prediction_energy_j(double latency_s) const noexcept;

  /// Extra latency prediction adds to an inference of `latency_s`.
  double prediction_latency_s(double latency_s) const noexcept;

  /// Amortized update energy given `updates` over an inferencing horizon.
  double total_update_energy_j(int updates) const noexcept;

 private:
  OverheadParams params_;
  PimConfig config_;
};

}  // namespace odin::arch
