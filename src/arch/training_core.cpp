#include "arch/training_core.hpp"

#include <cmath>

namespace odin::arch {

std::int64_t TrainingCoreModel::update_macs(std::int64_t parameters,
                                            int buffer_entries,
                                            int epochs) const noexcept {
  const double forward = static_cast<double>(parameters) * buffer_entries *
                         epochs;
  return static_cast<std::int64_t>(
      std::llround(forward * params_.backprop_factor));
}

common::EnergyLatency TrainingCoreModel::update_cost(
    std::int64_t parameters, int buffer_entries, int epochs) const noexcept {
  const auto macs = static_cast<double>(
      update_macs(parameters, buffer_entries, epochs));
  return common::EnergyLatency{
      .energy_j = macs * params_.energy_per_mac_j,
      .latency_s = macs / params_.macs_per_second,
  };
}

}  // namespace odin::arch
