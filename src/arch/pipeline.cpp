#include "arch/pipeline.hpp"

#include <algorithm>

namespace odin::arch {

std::string stage_name(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kEdramFetch: return "eDRAM fetch";
    case PipelineStage::kDacDrive: return "DAC drive";
    case PipelineStage::kAdcConvert: return "ADC convert";
    case PipelineStage::kShiftAdd: return "shift-add";
    case PipelineStage::kWriteback: return "OR writeback";
    case PipelineStage::kCount: break;
  }
  return "?";
}

PipelineAnalysis analyze_layer(const dnn::LayerDescriptor& layer,
                               const ou::OuCounts& counts,
                               ou::OuConfig config,
                               const ou::CostParams& cost_params,
                               const PipelineRates& rates) {
  const auto cycles = static_cast<double>(counts.max_ou_cycles_per_xbar);
  const double R = config.rows;
  const double C = config.cols;
  const int bits = cost_params.adc_bits(config.rows);

  PipelineAnalysis out;
  auto set = [&](PipelineStage stage, double amount, double rate) {
    out.stage_time_s[static_cast<int>(stage)] = amount / rate;
  };
  // Input activations fetched once per spatial position (1 byte each).
  set(PipelineStage::kEdramFetch,
      static_cast<double>(layer.fan_in) * layer.spatial_positions,
      rates.edram_bytes_per_s);
  // Each OU cycle drives R wordlines.
  set(PipelineStage::kDacDrive, cycles * R, rates.dac_rows_per_s);
  // Each OU cycle performs C conversions; conversion time scales with bits
  // relative to the 6-bit nominal rate.
  set(PipelineStage::kAdcConvert,
      cycles * C * (static_cast<double>(bits) / 6.0),
      rates.adc_conversions_per_s);
  // Each conversion result is merged once.
  set(PipelineStage::kShiftAdd, cycles * C, rates.sa_ops_per_s);
  // Outputs written back once per position (1 byte each).
  set(PipelineStage::kWriteback,
      static_cast<double>(layer.outputs) * layer.spatial_positions,
      rates.writeback_bytes_per_s);

  out.total_time_s = 0.0;
  out.bottleneck_time_s = 0.0;
  for (int s = 0; s < static_cast<int>(PipelineStage::kCount); ++s) {
    out.total_time_s += out.stage_time_s[static_cast<std::size_t>(s)];
    if (out.stage_time_s[static_cast<std::size_t>(s)] >
        out.bottleneck_time_s) {
      out.bottleneck_time_s = out.stage_time_s[static_cast<std::size_t>(s)];
      out.bottleneck = static_cast<PipelineStage>(s);
    }
  }
  return out;
}

InterLayerPipeline interlayer_pipeline(
    std::span<const double> stage_latency_s) {
  InterLayerPipeline out;
  out.stages = static_cast<int>(stage_latency_s.size());
  for (double s : stage_latency_s) {
    const double t = std::max(s, 0.0);
    out.fill_s += t;
    out.bottleneck_s = std::max(out.bottleneck_s, t);
  }
  if (out.stages <= 1 || out.fill_s <= 0.0) {
    out.bottleneck_s = out.fill_s;
    out.overlap_factor = 1.0;
  } else {
    out.overlap_factor = out.bottleneck_s / out.fill_s;
  }
  return out;
}

}  // namespace odin::arch
