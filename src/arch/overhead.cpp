#include "arch/overhead.hpp"

namespace odin::arch {

double OverheadModel::controller_tile_fraction() const noexcept {
  return params_.ou_adc_controller_area_mm2 / tile_area_mm2();
}

double OverheadModel::learning_system_fraction() const noexcept {
  return params_.online_learning_area_mm2 / config_.system_area_mm2();
}

double OverheadModel::buffer_bytes() const noexcept {
  return static_cast<double>(params_.buffer_entries) *
         params_.bytes_per_entry;
}

double OverheadModel::prediction_energy_j(double latency_s) const noexcept {
  return params_.prediction_power_w * latency_s;
}

double OverheadModel::prediction_latency_s(double latency_s) const noexcept {
  return params_.prediction_latency_fraction * latency_s;
}

double OverheadModel::total_update_energy_j(int updates) const noexcept {
  return params_.policy_update_energy_j * static_cast<double>(updates);
}

}  // namespace odin::arch
