// System-level model: place a DNN's layers onto the 36-PE mesh and account
// for the inter-layer activation traffic the NoC carries each inference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/components.hpp"
#include "arch/noc.hpp"
#include "common/math.hpp"
#include "dnn/model.hpp"

namespace odin::arch {

struct LayerPlacement {
  int layer_index = 0;
  std::int64_t crossbars = 0;  ///< crossbars the layer occupies
  int pe = 0;                  ///< home PE (first PE holding its weights)
};

struct SystemMapping {
  std::vector<LayerPlacement> placements;
  std::int64_t crossbars_used = 0;
  double utilization = 0.0;  ///< used / available crossbars (of the span)
  /// Crossbars actually filled per PE, indexed by global PE id (covers
  /// spill PEs, which LayerPlacement's home field does not).
  std::vector<std::int64_t> pe_load;
  /// NoC cost of streaming every layer's output activations to the next
  /// layer's home PE, once per inference.
  common::EnergyLatency noc_per_inference;
};

class SystemModel {
 public:
  explicit SystemModel(PimConfig config, NocParams noc_params = {});

  const PimConfig& config() const noexcept { return config_; }
  const NocModel& noc() const noexcept { return noc_; }

  /// Crossbar slots one PE offers at `crossbar_size` (0 = the tile's
  /// native): the tile's memristor area is held constant when sweeping the
  /// crossbar dimension, so capacity scales with (native / size)^2.
  std::int64_t crossbars_per_pe(int crossbar_size = 0) const noexcept;

  /// Greedy in-order placement over the whole mesh; `crossbar_size`
  /// defaults to the tile's (override for the Fig. 9 crossbar-size sweep).
  /// `activation_bits` is the inter-layer activation precision on the NoC.
  SystemMapping map(const dnn::DnnModel& model, int crossbar_size = 0,
                    int activation_bits = 8) const;

  /// The same greedy placement restricted to `pes` (global PE ids, in fill
  /// order — the fleet scheduler hands each shard its own block here).
  /// Spill wraps around within the span. map() is exactly
  /// map_onto(model, {0..pes-1}, ...).
  SystemMapping map_onto(const dnn::DnnModel& model, std::span<const int> pes,
                         int crossbar_size = 0, int activation_bits = 8) const;

 private:
  PimConfig config_;
  NocModel noc_;
  std::vector<int> all_pes_;  ///< identity span backing map()
};

}  // namespace odin::arch
