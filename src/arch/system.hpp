// System-level model: place a DNN's layers onto the 36-PE mesh and account
// for the inter-layer activation traffic the NoC carries each inference.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/components.hpp"
#include "arch/noc.hpp"
#include "common/math.hpp"
#include "dnn/model.hpp"

namespace odin::arch {

struct LayerPlacement {
  int layer_index = 0;
  std::int64_t crossbars = 0;  ///< crossbars the layer occupies
  int pe = 0;                  ///< home PE (first PE holding its weights)
};

struct SystemMapping {
  std::vector<LayerPlacement> placements;
  std::int64_t crossbars_used = 0;
  double utilization = 0.0;  ///< used / available crossbars
  /// NoC cost of streaming every layer's output activations to the next
  /// layer's home PE, once per inference.
  common::EnergyLatency noc_per_inference;
};

class SystemModel {
 public:
  explicit SystemModel(PimConfig config, NocParams noc_params = {});

  const PimConfig& config() const noexcept { return config_; }
  const NocModel& noc() const noexcept { return noc_; }

  /// Greedy in-order placement; `crossbar_size` defaults to the tile's
  /// (override for the Fig. 9 crossbar-size sweep). `activation_bits` is
  /// the inter-layer activation precision on the NoC.
  SystemMapping map(const dnn::DnnModel& model, int crossbar_size = 0,
                    int activation_bits = 8) const;

 private:
  PimConfig config_;
  NocModel noc_;
};

}  // namespace odin::arch
