// Inter-layer pipelining for batched inference (ISAAC-style).
//
// Weights stay resident, so consecutive images can flow through the layer
// pipeline: while layer j processes image i, layer j-1 processes image
// i+1. Steady-state throughput is then set by the slowest layer (the
// pipeline bottleneck), not the sum of layer latencies; energy stays
// linear in the batch. This converts the per-inference costs of the OU
// cost model into batched latency/throughput figures and exposes a second
// effect of OU sizing: the layer-wise choice changes which layer is the
// bottleneck.
#pragma once

#include <span>
#include <vector>

#include "common/units.hpp"
#include "ou/cost_model.hpp"
#include "ou/mapped_model.hpp"

namespace odin::arch {

struct BatchCost {
  common::EnergyLatency total;     ///< whole batch, pipelined
  double fill_latency_s = 0.0;     ///< first image end-to-end (sum of layers)
  double bottleneck_latency_s = 0.0;  ///< slowest layer per image
  int bottleneck_layer = 0;
  /// Images per second in steady state (1 / bottleneck).
  double throughput_ips = 0.0;

  /// Latency until batch member `k` (0-based, in admission order) drains
  /// out of the pipeline: the fill plus k bottleneck beats. The last
  /// member's exit equals total.latency_s; serving uses this to check each
  /// member's deadline slack before forming a batch.
  double member_exit_latency_s(int k) const noexcept {
    return fill_latency_s + static_cast<double>(k) * bottleneck_latency_s;
  }
};

/// Cost of `batch` images through `model` with per-layer OU `configs`.
/// Latency = fill + (batch - 1) * bottleneck; energy = batch * per-image.
BatchCost batched_inference_cost(const ou::MappedModel& model,
                                 std::span<const ou::OuConfig> configs,
                                 const ou::OuCostModel& cost, int batch);

/// Convenience: every layer at the same configuration.
BatchCost batched_inference_cost(const ou::MappedModel& model,
                                 ou::OuConfig config,
                                 const ou::OuCostModel& cost, int batch);

}  // namespace odin::arch
