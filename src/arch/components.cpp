#include "arch/components.hpp"

#include <algorithm>

namespace odin::arch {

const std::vector<ComponentSpec>& tile_components() {
  static const std::vector<ComponentSpec> kTable{
      {"eDRAM buffer", "size: 64KB", 0.083},
      {"eDRAM bus", "buswidth: 384", 0.09},
      {"Router", "flit: 32, port 8", 0.0375},
      {"Sigmoid, S+A, Maxpool", "number: 2, 96, 1", 0.0038},
      {"OR, IR", "size: 3KB, 2KB", 0.0282},
      {"OU Control", "number: 1", 0.0048},
      {"ADC (with control)", "number: 96; reconfigurable 3 to 6 bits", 0.03},
      {"DAC, S+H", "number: 96x128", 0.0025},
      {"Memristor array",
       "number: 96, size: 128x128, bits/cell: 2, OU size: varying", 0.0024},
  };
  return kTable;
}

double tile_area_mm2() {
  double total = 0.0;
  for (const auto& c : tile_components()) total += c.area_mm2;
  return total;
}

double PimConfig::system_area_mm2() const {
  return static_cast<double>(pes) * tiles_per_pe * tile_area_mm2();
}

int ReconfigurableAdc::clamp_bits(int requested) const noexcept {
  return std::clamp(requested, min_bits_, max_bits_);
}

double ReconfigurableAdc::conversion_energy_j(int bits) const noexcept {
  return energy_per_bit_j_ * static_cast<double>(clamp_bits(bits));
}

double ReconfigurableAdc::conversion_latency_s(int bits) const noexcept {
  return latency_per_bit_s_ * static_cast<double>(clamp_bits(bits));
}

}  // namespace odin::arch
