#include "arch/system.hpp"

#include <algorithm>
#include <cassert>

namespace odin::arch {

SystemModel::SystemModel(PimConfig config, NocParams noc_params)
    : config_(config), noc_(config.mesh_x, config.mesh_y, noc_params) {
  assert(config.mesh_x * config.mesh_y == config.pes);
  all_pes_.reserve(static_cast<std::size_t>(config_.pes));
  for (int p = 0; p < config_.pes; ++p) all_pes_.push_back(p);
}

std::int64_t SystemModel::crossbars_per_pe(int crossbar_size) const noexcept {
  const int c = crossbar_size > 0 ? crossbar_size : config_.tile.crossbar_size;
  // Crossbars per PE scale with (tile size / crossbar size)^2 when sweeping
  // the crossbar dimension: the tile's memristor area is held constant.
  const int native = config_.tile.crossbar_size;
  return static_cast<std::int64_t>(
      config_.tiles_per_pe * config_.tile.crossbars *
      (static_cast<std::int64_t>(native / c) * (native / c)));
}

SystemMapping SystemModel::map(const dnn::DnnModel& model, int crossbar_size,
                               int activation_bits) const {
  return map_onto(model, all_pes_, crossbar_size, activation_bits);
}

SystemMapping SystemModel::map_onto(const dnn::DnnModel& model,
                                    std::span<const int> pes,
                                    int crossbar_size,
                                    int activation_bits) const {
  assert(!pes.empty());
  const int c = crossbar_size > 0 ? crossbar_size : config_.tile.crossbar_size;
  const std::int64_t per_pe = crossbars_per_pe(crossbar_size);

  SystemMapping out;
  out.pe_load.assign(static_cast<std::size_t>(config_.pes), 0);
  std::int64_t free_in_pe = per_pe;
  std::size_t slot = 0;  ///< position in the fill order `pes`
  auto advance = [&] {
    slot = (slot + 1) % pes.size();
    free_in_pe = per_pe;
  };
  for (const auto& layer : model.layers) {
    const std::int64_t need = common::ceil_div(layer.fan_in, c) *
                              common::ceil_div(layer.outputs, c);
    if (need > free_in_pe && free_in_pe < per_pe) advance();
    // A layer larger than a whole PE spills into subsequent PEs; its home
    // stays where it starts.
    out.placements.push_back({layer.index, need, pes[slot]});
    std::int64_t remaining = need;
    while (remaining > 0) {
      const std::int64_t take = std::min(remaining, free_in_pe);
      remaining -= take;
      free_in_pe -= take;
      out.pe_load[static_cast<std::size_t>(pes[slot])] += take;
      if (free_in_pe == 0 && remaining > 0) advance();
    }
    out.crossbars_used += need;
  }
  const std::int64_t available =
      per_pe * static_cast<std::int64_t>(pes.size());
  out.utilization = available > 0
                        ? static_cast<double>(out.crossbars_used) /
                              static_cast<double>(available)
                        : 0.0;

  for (std::size_t i = 0; i + 1 < out.placements.size(); ++i) {
    const auto& layer = model.layers[i];
    const std::int64_t bits = static_cast<std::int64_t>(layer.outputs) *
                              layer.spatial_positions * activation_bits;
    // Only a real PE boundary crosses the mesh: consecutive layers that
    // share a home PE hand activations through the tile's eDRAM buffer,
    // which the tile energy table already accounts for.
    const int h = noc_.hops(out.placements[i].pe, out.placements[i + 1].pe);
    if (h > 0) out.noc_per_inference += noc_.transfer(bits, h);
  }
  return out;
}

}  // namespace odin::arch
