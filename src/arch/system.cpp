#include "arch/system.hpp"

#include <algorithm>
#include <cassert>

namespace odin::arch {

SystemModel::SystemModel(PimConfig config, NocParams noc_params)
    : config_(config), noc_(config.mesh_x, config.mesh_y, noc_params) {
  assert(config.mesh_x * config.mesh_y == config.pes);
}

SystemMapping SystemModel::map(const dnn::DnnModel& model, int crossbar_size,
                               int activation_bits) const {
  const int c = crossbar_size > 0 ? crossbar_size : config_.tile.crossbar_size;
  // Crossbars per PE scale with (tile size / crossbar size)^2 when sweeping
  // the crossbar dimension: the tile's memristor area is held constant.
  const int native = config_.tile.crossbar_size;
  const std::int64_t per_pe = static_cast<std::int64_t>(
      config_.tiles_per_pe * config_.tile.crossbars *
      (static_cast<std::int64_t>(native / c) * (native / c)));

  SystemMapping out;
  std::int64_t free_in_pe = per_pe;
  int pe = 0;
  for (const auto& layer : model.layers) {
    const std::int64_t need = common::ceil_div(layer.fan_in, c) *
                              common::ceil_div(layer.outputs, c);
    if (need > free_in_pe && free_in_pe < per_pe) {
      pe = (pe + 1) % config_.pes;
      free_in_pe = per_pe;
    }
    // A layer larger than a whole PE spills into subsequent PEs; its home
    // stays where it starts.
    out.placements.push_back({layer.index, need, pe});
    std::int64_t remaining = need;
    while (remaining > 0) {
      const std::int64_t take = std::min(remaining, free_in_pe);
      remaining -= take;
      free_in_pe -= take;
      if (free_in_pe == 0 && remaining > 0) {
        pe = (pe + 1) % config_.pes;
        free_in_pe = per_pe;
      }
    }
    out.crossbars_used += need;
  }
  const std::int64_t available =
      per_pe * static_cast<std::int64_t>(config_.pes);
  out.utilization = available > 0
                        ? static_cast<double>(out.crossbars_used) /
                              static_cast<double>(available)
                        : 0.0;

  for (std::size_t i = 0; i + 1 < out.placements.size(); ++i) {
    const auto& layer = model.layers[i];
    const std::int64_t bits = static_cast<std::int64_t>(layer.outputs) *
                              layer.spatial_positions * activation_bits;
    const int h = noc_.hops(out.placements[i].pe, out.placements[i + 1].pe);
    out.noc_per_inference += noc_.transfer(bits, std::max(h, 1));
  }
  return out;
}

}  // namespace odin::arch
