#include "arch/batching.hpp"

#include <cassert>

namespace odin::arch {

BatchCost batched_inference_cost(const ou::MappedModel& model,
                                 std::span<const ou::OuConfig> configs,
                                 const ou::OuCostModel& cost, int batch) {
  assert(configs.size() == model.layer_count());
  assert(batch >= 1);
  BatchCost out;
  double per_image_energy = 0.0;
  for (std::size_t j = 0; j < model.layer_count(); ++j) {
    const auto& layer = model.model().layers[j];
    const auto layer_cost =
        cost.layer_cost(model.mapping(j).counts(configs[j]), configs[j],
                        layer.activation_sparsity);
    const double latency = layer_cost.total().latency_s;
    per_image_energy += layer_cost.total().energy_j;
    out.fill_latency_s += latency;
    if (latency > out.bottleneck_latency_s) {
      out.bottleneck_latency_s = latency;
      out.bottleneck_layer = static_cast<int>(j);
    }
  }
  out.total.energy_j = per_image_energy * static_cast<double>(batch);
  out.total.latency_s =
      out.fill_latency_s +
      static_cast<double>(batch - 1) * out.bottleneck_latency_s;
  out.throughput_ips = out.bottleneck_latency_s > 0.0
                           ? 1.0 / out.bottleneck_latency_s
                           : 0.0;
  return out;
}

BatchCost batched_inference_cost(const ou::MappedModel& model,
                                 ou::OuConfig config,
                                 const ou::OuCostModel& cost, int batch) {
  std::vector<ou::OuConfig> configs(model.layer_count(), config);
  return batched_inference_cost(model, configs, cost, batch);
}

}  // namespace odin::arch
