#include "arch/noc.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>

#include "common/math.hpp"

namespace odin::arch {

common::EnergyLatency intermesh_transfer(std::int64_t bytes,
                                         InterMeshLinkParams params) {
  if (bytes <= 0) return {};
  return common::EnergyLatency{
      .energy_j = params.energy_per_byte_j * static_cast<double>(bytes),
      .latency_s = params.setup_latency_s +
                   static_cast<double>(bytes) / params.bandwidth_bytes_per_s,
  };
}

NocModel::NocModel(int mesh_x, int mesh_y, NocParams params)
    : mesh_x_(mesh_x), mesh_y_(mesh_y), params_(params) {
  assert(mesh_x > 0 && mesh_y > 0);
}

int NocModel::hops(int src, int dst) const noexcept {
  assert(src >= 0 && src < nodes() && dst >= 0 && dst < nodes());
  const int sx = src % mesh_x_, sy = src / mesh_x_;
  const int dx = dst % mesh_x_, dy = dst / mesh_x_;
  return std::abs(sx - dx) + std::abs(sy - dy);
}

double NocModel::average_hops() const noexcept {
  // Exact mean Manhattan distance between two independent uniform nodes.
  double total = 0.0;
  for (int a = 0; a < nodes(); ++a)
    for (int b = 0; b < nodes(); ++b) total += hops(a, b);
  return total / (static_cast<double>(nodes()) * nodes());
}

common::EnergyLatency NocModel::transfer(std::int64_t bits,
                                         int hops) const noexcept {
  if (bits <= 0 || hops <= 0) return {};
  const std::int64_t flits = common::ceil_div(bits, params_.flit_bits);
  return common::EnergyLatency{
      .energy_j = params_.hop_energy_per_flit_j *
                  static_cast<double>(flits) * hops,
      .latency_s = params_.hop_latency_s *
                   static_cast<double>(hops + flits - 1),
  };
}

common::EnergyLatency NocModel::transfer_average(
    std::int64_t bits) const noexcept {
  const int avg = static_cast<int>(std::lround(average_hops()));
  return transfer(bits, std::max(avg, 1));
}

}  // namespace odin::arch
