#include "reram/device.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace odin::reram {

double drift_conductance(const DeviceParams& p, double t_s) noexcept {
  const double t = std::max(t_s, p.t0_s);
  return p.g_on_s * std::pow(t / p.t0_s, -p.drift_coefficient);
}

double effective_conductance(const DeviceParams& p, double t_s, int rows,
                             int cols, double wire_scale) noexcept {
  assert(rows >= 1 && cols >= 1 && wire_scale > 0.0);
  return effective_conductance_given_drift(p, drift_conductance(p, t_s),
                                           rows, cols, wire_scale);
}

double conductance_error(const DeviceParams& p, double t_s, int rows,
                         int cols, double wire_scale) noexcept {
  return std::abs(p.g_on_s -
                  effective_conductance(p, t_s, rows, cols, wire_scale));
}

double relative_conductance_error(const DeviceParams& p, double t_s,
                                  int rows, int cols,
                                  double wire_scale) noexcept {
  return conductance_error(p, t_s, rows, cols, wire_scale) / p.g_on_s;
}

NonIdealityComponents nonideality_components(const DeviceParams& p,
                                             double t_s, int rows, int cols,
                                             double wire_scale) noexcept {
  const double g_drift = drift_conductance(p, t_s);
  const double g_eff =
      effective_conductance(p, t_s, rows, cols, wire_scale);
  return NonIdealityComponents{
      .drift = (p.g_on_s - g_drift) / p.g_on_s,
      .ir_drop = (g_drift - g_eff) / p.g_on_s,
  };
}

}  // namespace odin::reram
