#include "reram/device.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace odin::reram {

double drift_conductance(const DeviceParams& p, double t_s) noexcept {
  const double t = std::max(t_s, p.t0_s);
  return p.g_on_s * std::pow(t / p.t0_s, -p.drift_coefficient);
}

double effective_conductance(const DeviceParams& p, double t_s, int rows,
                             int cols, double wire_scale) noexcept {
  assert(rows >= 1 && cols >= 1 && wire_scale > 0.0);
  const double g_drift = drift_conductance(p, t_s);
  const double series_r =
      p.r_wire_ohm * static_cast<double>(rows + cols) * wire_scale;
  return 1.0 / (1.0 / g_drift + series_r);
}

double conductance_error(const DeviceParams& p, double t_s, int rows,
                         int cols, double wire_scale) noexcept {
  return std::abs(p.g_on_s -
                  effective_conductance(p, t_s, rows, cols, wire_scale));
}

double relative_conductance_error(const DeviceParams& p, double t_s,
                                  int rows, int cols,
                                  double wire_scale) noexcept {
  return conductance_error(p, t_s, rows, cols, wire_scale) / p.g_on_s;
}

NonIdealityComponents nonideality_components(const DeviceParams& p,
                                             double t_s, int rows, int cols,
                                             double wire_scale) noexcept {
  const double g_drift = drift_conductance(p, t_s);
  const double g_eff =
      effective_conductance(p, t_s, rows, cols, wire_scale);
  return NonIdealityComponents{
      .drift = (p.g_on_s - g_drift) / p.g_on_s,
      .ir_drop = (g_drift - g_eff) / p.g_on_s,
  };
}

double quantize_weight_to_conductance(const DeviceParams& p,
                                      double weight_magnitude) noexcept {
  const double w = std::clamp(weight_magnitude, 0.0, 1.0);
  const int top = p.levels() - 1;
  const int level = static_cast<int>(std::lround(w * top));
  const double frac = static_cast<double>(level) / static_cast<double>(top);
  return p.g_off_s + frac * (p.g_on_s - p.g_off_s);
}

double conductance_to_weight(const DeviceParams& p,
                             double conductance_s) noexcept {
  const double frac = (conductance_s - p.g_off_s) / (p.g_on_s - p.g_off_s);
  return std::clamp(frac, 0.0, 1.0);
}

}  // namespace odin::reram
