// Fault-injection campaigns and post-programming read-verify.
//
// The controller-visible fault surface of a ReRAM deployment has four
// ingredients the drift model alone cannot produce:
//
//  * endurance wear — every whole-array write-verify campaign stresses the
//    cells; with per-cell Weibull lifetimes (reram/endurance) the stuck
//    fraction ratchets up with each campaign and writes cannot undo it,
//  * peripheral failures — wordline/bitline drivers die per campaign,
//    taking a whole line of cells with them,
//  * drift bursts — temporary thermal/voltage events that accelerate the
//    apparent drift clock for a window of wall-clock time,
//  * write-verify non-convergence — a programming campaign that exhausts
//    its pulse budget without reaching tolerance.
//
// FaultInjector schedules all four deterministically from one seed, at the
// analytic granularity OdinController works at (device-global fractions).
// read_verify() is the behavioural counterpart: it scans an actual Crossbar
// after programming and produces a per-OU-window health map, the measured
// signal the recovery policy consumes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/binary_io.hpp"
#include "common/rng.hpp"
#include "reram/crossbar.hpp"
#include "reram/endurance.hpp"
#include "reram/wear_leveling.hpp"

namespace odin::reram {

/// One temporary drift acceleration window (e.g. a thermal event): while
/// active, elapsed-since-programming is multiplied by `multiplier` before
/// entering the drift law, so the apparent non-ideality spikes and then
/// returns to the baseline trajectory when the burst ends.
struct DriftBurst {
  double start_s = 0.0;
  double duration_s = 0.0;
  double multiplier = 1.0;  ///< >= 1; 1 is a no-op
};

struct FaultScheduleParams {
  /// Weibull wear model for the tracked-cell population.
  EnduranceParams endurance{};
  /// Size of the virtual cell population whose lifetimes are sampled; sets
  /// the resolution of stuck_cell_fraction (1/tracked_cells).
  int tracked_cells = 4096;
  /// Per-line, per-campaign failure probability of wordline / bitline
  /// peripheral drivers (a failed line disables its whole row / column).
  double wordline_fail_rate = 0.0;
  double bitline_fail_rate = 0.0;
  /// Lines per array dimension (the crossbar size).
  int array_lines = 128;
  /// Probability that one write-verify campaign exhausts its pulse budget
  /// without converging.
  double write_fail_rate = 0.0;
  /// Deterministic drift-burst schedule (wall-clock windows).
  std::vector<DriftBurst> bursts{};
  /// Wear leveling (DESIGN.md §15). When enabled, rotation divides per-cell
  /// wear accrual by (array_lines + spare_rows) / array_lines, the spare
  /// pool absorbs worn rows before they surface as stuck cells, and a
  /// crossbar whose pool is exhausted is retired in place: the tenant
  /// migrates to a fresh array (lifetimes resampled, peripheral failures
  /// cleared) instead of serving from a dying one.
  WearLevelingParams leveling{};
};

/// Deterministic fault schedule along the serving horizon. All randomness
/// flows from the constructor seed; campaigns advance sequentially (the
/// control loop is sequential), so two injectors with equal seeds and equal
/// campaign histories agree bitwise.
class FaultInjector {
 public:
  FaultInjector(FaultScheduleParams params, std::uint64_t seed);

  /// One whole-array write-verify campaign: wears the tracked cells, may
  /// fail peripheral drivers, and reports whether the campaign converged
  /// (false = the pulse budget ran out above tolerance).
  bool program_campaign();

  int campaigns() const noexcept { return campaigns_; }

  /// Run `n` campaigns back-to-back — the correlated write activity of a
  /// fault storm, driven from the scenario trace clock rather than
  /// independent draws. Returns how many failed to converge.
  int program_campaigns(int n) {
    int failed = 0;
    for (int i = 0; i < n; ++i)
      if (!program_campaign()) ++failed;
    return failed;
  }

  /// Append a drift-acceleration window at runtime (the scenario engine
  /// injects storm windows from the trace clock this way). Bursts consume
  /// no randomness, so the (seed, campaign count) replay fingerprint and
  /// fast_forward are unaffected.
  void add_burst(const DriftBurst& burst) { params_.bursts.push_back(burst); }

  /// Mark a power-down window — a cluster mesh outage (core/cluster) seen
  /// from this array: while the window covers `t_s` the device is dark,
  /// powered_down() is true and drift_time_multiplier reports 0 (the drift
  /// clock pauses with the array unpowered; nothing is servable anyway).
  /// Windows consume no randomness — the same replay contract as
  /// add_burst — and are not serialized: the cluster engine re-applies
  /// fired outages from its own cursor on resume.
  void add_power_down(double start_s, double duration_s) {
    power_downs_.push_back(DriftBurst{start_s, duration_s, 0.0});
  }

  /// True while a power-down window covers `t_s`.
  bool powered_down(double t_s) const noexcept;

  /// Fraction of cells stuck from endurance wear after the campaigns so far.
  double stuck_cell_fraction() const noexcept;
  /// Fraction of the array covered by failed wordlines / bitlines.
  double peripheral_fraction() const noexcept;
  /// Combined unusable-cell fraction (independent overlap), in [0, 1].
  double fault_fraction() const noexcept;

  int failed_wordlines() const noexcept { return failed_wl_; }
  int failed_bitlines() const noexcept { return failed_bl_; }

  /// Worn rows absorbed by the spare pool, cumulative across retired
  /// crossbars (0 with leveling off).
  int rows_remapped() const noexcept;
  /// Spare rows left in the current crossbar's pool (0 with leveling off).
  int spares_remaining() const noexcept;
  /// Crossbars retired (pool exhausted, tenant migrated to a fresh array).
  int crossbars_retired() const noexcept { return crossbars_retired_; }
  /// Row writes routed through the leveling layer (array_lines per leveled
  /// campaign).
  long long writes_leveled() const noexcept { return writes_leveled_; }

  /// True when the current crossbar's leveled wear has consumed the wear
  /// budget's share of its projected lifetime — the controller's signal to
  /// defer wear-expensive reprograms when drift allows it.
  bool wear_hot() const noexcept;

  /// Consumed share of the current crossbar's projected lifetime (leveled
  /// campaigns over the 1e-3 failure-budget cycle count), >= 0 and
  /// unclamped — >1 means the array outlived its budget. The fleet
  /// placement uses this to steer tenants toward least-worn shards.
  double wear_fraction() const noexcept;

  /// Elapsed-time multiplier at wall-clock `t_s` (>= 1 while powered; 1
  /// outside bursts). Overlapping bursts compound multiplicatively. Inside
  /// a power-down window the array is dark and the multiplier is 0.
  double drift_time_multiplier(double t_s) const noexcept;

  const FaultScheduleParams& params() const noexcept { return params_; }

  /// Durable wear state for the serving checkpoint. The RNG stream is not
  /// serialized: all randomness is a pure function of (seed, campaign
  /// history), so a freshly seeded injector replays `campaigns` campaigns
  /// to reach the identical state — the counters here double as a
  /// fingerprint that the replay is verified against.
  struct WearState {
    int campaigns = 0;
    int stuck_cells = 0;
    int failed_wordlines = 0;
    int failed_bitlines = 0;
    /// Retired-crossbar count (0 for pre-leveling checkpoints; encoded only
    /// in payload v4 frames).
    int crossbars_retired = 0;
  };
  WearState wear_state() const noexcept {
    return {campaigns_, stuck_cells_, failed_wl_, failed_bl_,
            crossbars_retired_};
  }

  /// Replay `state.campaigns` campaigns on this (freshly constructed,
  /// identically seeded) injector and verify the resulting wear matches
  /// the fingerprint. Returns false — leaving the injector mid-replay — on
  /// a mismatch (different seed or schedule than the checkpointed run).
  bool fast_forward(const WearState& state);

 private:
  /// Leveled per-cell wear of the current crossbar, in equivalent
  /// campaigns: rotation spreads campaign writes over array + spare rows.
  double leveled_campaigns() const noexcept;

  FaultScheduleParams params_;
  common::Rng rng_;
  std::vector<double> lifetimes_;  ///< sorted sampled cell lifetimes
  int campaigns_ = 0;
  int stuck_cells_ = 0;
  int failed_wl_ = 0;
  int failed_bl_ = 0;
  // Wear-leveling state (params_.leveling.enabled). All of it is a pure
  // function of (seed, campaign count) — retirement resamples lifetimes
  // from rng_ at a deterministic point — so fast_forward replays it.
  int campaign_base_ = 0;  ///< campaigns_ when the current crossbar started
  int remapped_now_ = 0;   ///< worn rows absorbed in the current crossbar
  int crossbars_retired_ = 0;
  long long writes_leveled_ = 0;
  /// Power-down windows (mesh outages); multiplier field unused.
  std::vector<DriftBurst> power_downs_;
};

/// Stuck-cell count of one OU window of the programmed region.
struct OuWindowHealth {
  int row0 = 0;
  int col0 = 0;
  int stuck = 0;
};

/// Post-programming read-verify result for one crossbar: the per-OU-window
/// stuck-cell map plus the aggregates the recovery policy gates on.
struct CrossbarHealth {
  int ou_rows = 0;
  int ou_cols = 0;
  std::int64_t stuck_cells = 0;
  std::int64_t scanned_cells = 0;
  int worst_window_stuck = 0;
  double fault_fraction = 0.0;        ///< stuck / scanned
  double worst_window_fraction = 0.0; ///< worst window's stuck / window size
  bool degraded = false;              ///< fault_fraction > stuck_budget
  std::vector<OuWindowHealth> windows;
};

/// Read back the programmed region of `xbar` window by window (the same
/// (ou_rows x ou_cols) tiling the MVM path uses) and count cells whose
/// stored state cannot track their target — the permanent stuck-at
/// population. Marks the result degraded when the overall stuck fraction
/// exceeds `stuck_budget`.
CrossbarHealth read_verify(const Crossbar& xbar, int ou_rows, int ou_cols,
                           double stuck_budget);

/// Binary encode/decode of a measured health map (core/checkpoint embeds
/// the maps so a resumed process serves from the same measured state
/// instead of a pristine assumption). decode returns nullopt on truncated
/// or inconsistent input.
void encode_health(const CrossbarHealth& health, common::ByteWriter& out);
std::optional<CrossbarHealth> decode_health(common::ByteReader& in);

}  // namespace odin::reram
