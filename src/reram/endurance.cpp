#include "reram/endurance.hpp"

#include <cmath>
#include <limits>

namespace odin::reram {

double EnduranceModel::failure_fraction(double cycles) const noexcept {
  if (cycles <= 0.0) return 0.0;
  const double x = cycles / params_.characteristic_cycles;
  return 1.0 - std::exp(-std::pow(x, params_.shape));
}

double EnduranceModel::cycles_to_failure_budget(
    double budget) const noexcept {
  if (budget <= 0.0) return 0.0;
  if (budget >= 1.0) return std::numeric_limits<double>::infinity();
  // Invert F(n): n = eta * (-ln(1 - budget))^(1/beta).
  return params_.characteristic_cycles *
         std::pow(-std::log(1.0 - budget), 1.0 / params_.shape);
}

double EnduranceModel::sample_lifetime(common::Rng& rng) const noexcept {
  double u = rng.uniform();
  while (u <= 0.0) u = rng.uniform();
  return params_.characteristic_cycles *
         std::pow(-std::log(u), 1.0 / params_.shape);
}

double EnduranceModel::lifetime_seconds(double reprograms_per_horizon,
                                        double horizon_s,
                                        double budget) const noexcept {
  if (reprograms_per_horizon <= 0.0)
    return std::numeric_limits<double>::infinity();
  const double budget_cycles = cycles_to_failure_budget(budget);
  return budget_cycles / reprograms_per_horizon * horizon_s;
}

double EnduranceModel::leveled_lifetime_seconds(
    double reprograms_per_horizon, double horizon_s, int array_rows,
    int spare_rows, int row_cells, double budget) const noexcept {
  if (reprograms_per_horizon <= 0.0)
    return std::numeric_limits<double>::infinity();
  if (array_rows <= 0 || row_cells <= 0 || spare_rows < 0)
    return lifetime_seconds(reprograms_per_horizon, horizon_s, budget);
  // Spares absorb whole worn rows: the first worn cell of a row retires the
  // row, so up to spare_rows / (array_rows * row_cells) of the cell
  // population can fail before one stuck cell is visible.
  const double absorbed =
      static_cast<double>(spare_rows) /
      (static_cast<double>(array_rows) * static_cast<double>(row_cells));
  const double budget_cycles = cycles_to_failure_budget(budget + absorbed);
  // Rotation spreads writes: each campaign charges array_rows row writes
  // across array_rows + spare_rows physical rows.
  const double spread =
      static_cast<double>(array_rows) /
      static_cast<double>(array_rows + spare_rows);
  return budget_cycles / spread / reprograms_per_horizon * horizon_s;
}

}  // namespace odin::reram
