// Behavioural ReRAM crossbar model.
//
// Stores a weight matrix as differentially encoded multi-level-cell
// conductances and evaluates analog matrix-vector products at Operation-Unit
// (OU) granularity, applying the deterministic non-idealities of
// reram/device.hpp (conductance drift, IR-drop) plus stochastic read noise,
// and quantizing each column output through an ADC of configurable
// precision. This is the substrate the Monte-Carlo accuracy evaluator and
// the micro-benchmarks exercise; the analytical cost models in src/ou do not
// need cell-level state.
//
// Hot-path layout (DESIGN.md §11): the MVM kernel never touches device
// physics per cell. program() folds sign * conductance_to_weight(g) into a
// contiguous column-major weight plane; per-cell drift factors and the
// IR-drop tile are tabulated once per distinct elapsed time and reused by
// every mvm / weight_rms_error / effective_weight call at that timestamp.
// The planes are arithmetically identical to what the per-cell walk
// computed, so kernel outputs are bitwise unchanged (pinned by
// tests/test_mvm_kernel.cpp against the reference kernel).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "reram/device.hpp"
#include "reram/endurance.hpp"
#include "reram/noise.hpp"
#include "reram/wear_leveling.hpp"

namespace odin::reram {

/// How IR drop is applied across an activated OU.
enum class IrModel {
  /// Eq. 4 verbatim: one effective series resistance R_wire * (R + C) for
  /// every cell of the OU (the analytical models' view).
  kLumped,
  /// Position-dependent: cell (r, c) of the OU sees R_wire * (r + c + 2)
  /// wire segments — cells far from the drivers degrade more, and Eq. 4's
  /// lumped value is the far-corner worst case.
  kSpatial,
};

class Crossbar {
 public:
  /// Where stochastic read-noise draws come from when a NoiseModel is
  /// attached.
  enum class ReadNoiseStream {
    /// One shared sequential RNG; draw order is the kernel's cell visit
    /// order, so the noisy MVM must run its OU tiles sequentially. This is
    /// the legacy stream the seed-compat tests pin.
    kSequential,
    /// Counter-based: each draw is a pure function of (seed, cell index,
    /// mvm epoch), so draws are schedule-independent and the noisy path
    /// can use the same parallel column-block schedule as the noiseless
    /// one while staying seed-deterministic.
    kCounterBased,
  };

  /// A crossbar of `size` x `size` cells. If `noise` is provided, writes and
  /// reads are perturbed stochastically (including any stuck-at-faults its
  /// params enable); otherwise they are deterministic.
  Crossbar(int size, DeviceParams device,
           std::optional<NoiseModel> noise = std::nullopt,
           IrModel ir_model = IrModel::kLumped);

  int size() const noexcept { return size_; }
  const DeviceParams& device() const noexcept { return device_; }

  /// Program a row-major weight block (values in [-1, 1]) into the top-left
  /// corner of the array at absolute time `at_time_s`. Rows/cols beyond the
  /// block keep their previous contents. Resets the drift clock for the
  /// whole array (reprogramming is array-granular, as in the paper).
  /// Rebuilds the weight plane and invalidates the drift/IR caches.
  void program(std::span<const double> weights, int rows, int cols,
               double at_time_s);

  /// Wall-clock moment of the most recent (re)programming.
  double programmed_at_s() const noexcept { return programmed_at_s_; }

  /// Number of cells carrying live weights (for reprogramming energy).
  std::int64_t programmed_cells() const noexcept { return programmed_cells_; }

  /// Cells stuck at G_ON / G_OFF by permanent faults (0 without noise).
  std::int64_t faulty_cells() const noexcept { return faulty_cells_; }

  /// Permanent fault state of one cell (kNone when no faults are modelled).
  CellFault cell_fault(int row, int col) const noexcept {
    if (fault_.empty()) return CellFault::kNone;
    return static_cast<CellFault>(
        fault_[static_cast<std::size_t>(row) * size_ + col]);
  }

  /// Attach a write-wear model: every subsequent program() counts as one
  /// write-verify campaign, and cells whose sampled Weibull lifetime the
  /// campaign count crosses become permanently stuck (polarity sampled per
  /// cell: an over-SET filament sticks on, a broken one sticks off). All
  /// lifetimes and polarities are drawn up front from `seed`, so wear is
  /// deterministic regardless of how reads interleave with writes.
  void attach_endurance(const EnduranceModel& model, std::uint64_t seed);

  /// Write campaigns applied so far (0 until the first program()).
  int program_campaigns() const noexcept { return program_campaigns_; }

  /// Enable wear leveling: subsequent program() calls rotate the
  /// logical→physical row map, accrue per-physical-row write counts, and
  /// retire rows whose wear crosses the budget onto the spare pool. The
  /// mapping never touches logical cell state, so MVM outputs are bitwise
  /// identical to an unleveled crossbar programmed with the same weights
  /// (tests/test_mvm_kernel.cpp pins this). Call before the first program().
  void enable_wear_leveling(const WearLevelingParams& params);
  bool wear_leveling_enabled() const noexcept { return leveling_.enabled; }

  /// Physical rows retired onto the spare pool so far.
  std::int64_t rows_remapped() const noexcept { return rows_remapped_; }
  /// Retirement budget left in the spare pool (0 when leveling is off —
  /// the next worn row then shows up as stuck cells instead of remapping).
  int spares_remaining() const noexcept {
    return leveling_.enabled
               ? spare_budget_ - static_cast<int>(rows_remapped_)
               : 0;
  }
  /// Row writes redirected to a non-identity physical row by rotation or
  /// remapping (the "spread" the leveling layer achieved).
  std::int64_t writes_leveled() const noexcept { return writes_leveled_; }

  /// Durable wear/remap state for the serving checkpoint (payload v4).
  /// Empty (rows == 0) until leveling is enabled and the first campaign ran.
  WearMap wear_map() const;
  /// Restore checkpointed wear state. Leveling must already be enabled with
  /// the same geometry; returns false (state untouched) on a mismatch.
  bool restore_wear_map(const WearMap& map);

  IrModel ir_model() const noexcept { return ir_model_; }

  /// Select the read-noise stream (default kSequential, the legacy shared
  /// RNG). Only meaningful with a NoiseModel attached.
  void set_read_noise_stream(ReadNoiseStream mode) noexcept {
    read_stream_ = mode;
  }
  ReadNoiseStream read_noise_stream() const noexcept { return read_stream_; }

  /// Build (or refresh) the drift/IR caches for timestamp `t_s`. mvm and
  /// friends do this lazily; call it explicitly before handing the same
  /// crossbar to concurrent readers so the first touch does not race.
  void prepare(double t_s) const { ensure_planes(t_s); }

  /// The signed weight a cell would ideally contribute (post-quantization,
  /// no drift / IR-drop / noise).
  double ideal_weight(int row, int col) const;

  /// The signed weight the cell effectively contributes at absolute time
  /// `t_s` when read inside an OU activating `ou_rows` x `ou_cols` cells.
  /// With a NoiseModel attached, each cell drifts with its own sampled
  /// coefficient (cell-to-cell drift variation — the effect that erodes
  /// *relative* weight structure over time); without one, drift is the
  /// uniform device nominal.
  double effective_weight(int row, int col, double t_s, int ou_rows,
                          int ou_cols) const;

  /// Analog MVM of one OU window: output[c] = sum_r in[r] * W_eff[r][c],
  /// each column quantized by an ADC of `adc_bits` (full scale = ou_rows,
  /// the worst-case column current). `input` has `ou_rows` entries.
  std::vector<double> mvm_ou(std::span<const double> input, int row0,
                             int ou_rows, int col0, int ou_cols, double t_s,
                             int adc_bits);

  /// Allocation-free variant: writes the `ou_cols` column outputs into the
  /// caller-provided `out` (the steady-state path).
  void mvm_ou(std::span<const double> input, int row0, int ou_rows, int col0,
              int ou_cols, double t_s, int adc_bits, std::span<double> out);

  /// Batched OU pass: `batch` queries packed back to back (query b occupies
  /// inputs[b * ou_rows, (b+1) * ou_rows)); writes out[b * ou_cols + c].
  /// The drift/IR planes are refreshed once for the whole batch, the input
  /// panel is transposed once, and the inner loop is a register-blocked
  /// GEMM (reram/batch_gemm.hpp) — bitwise identical to `batch` sequential
  /// single-query calls (DESIGN.md §14). With a NoiseModel attached, falls
  /// back to the sequential per-query path (each query keeps its own
  /// read-noise epoch / draw order).
  void mvm_ou(std::span<const double> inputs, int batch, int row0,
              int ou_rows, int col0, int ou_cols, double t_s, int adc_bits,
              std::span<double> out);

  /// Full programmed-region MVM composed of (ou_rows x ou_cols) OU passes
  /// with partial sums accumulated digitally (shift-and-add path).
  std::vector<double> mvm(std::span<const double> input, int ou_rows,
                          int ou_cols, double t_s, int adc_bits);

  /// Allocation-free variant: zero-fills out[0, programmed_cols) and
  /// accumulates the OU partial sums there. `out` must have at least
  /// programmed_cols() entries.
  void mvm(std::span<const double> input, int ou_rows, int ou_cols,
           double t_s, int adc_bits, std::span<double> out);

  /// Batched full-region MVM: query b reads inputs[b * in_stride,
  /// + programmed_rows) and its outputs land in out[b * out_stride,
  /// + programmed_cols) (zero-filled first). The strides let callers hand
  /// in 2-D activation panels directly. Same per-query OU composition and
  /// accumulation order as the single-query path, so results are bitwise
  /// identical to `batch` sequential mvm calls; the batch amortizes the
  /// plane/IR-table walk and vectorizes across queries.
  void mvm(std::span<const double> inputs, int batch, std::size_t in_stride,
           int ou_rows, int ou_cols, double t_s, int adc_bits,
           std::span<double> out, std::size_t out_stride);

  /// Ideal (float) MVM over the programmed region, for error measurement.
  std::vector<double> ideal_mvm(std::span<const double> input) const;

  /// RMS error between ideal and effective weights over the programmed
  /// region at time t under an (ou_rows x ou_cols) activation pattern.
  double weight_rms_error(double t_s, int ou_rows, int ou_cols) const;

  int programmed_rows() const noexcept { return live_rows_; }
  int programmed_cols() const noexcept { return live_cols_; }

  /// Raw cell state, row-major (for the pinned reference kernel and
  /// introspection; the hot path reads the column-major planes instead).
  std::span<const double> conductances() const noexcept {
    return conductance_s_;
  }
  std::span<const std::int8_t> signs() const noexcept { return sign_; }
  /// Per-cell drift exponents; empty means the uniform device nominal.
  std::span<const double> drift_coefficients() const noexcept {
    return drift_coeff_;
  }

 private:
  /// The leveled half of program(): retire physical rows whose accrued wear
  /// crossed the budget (while spares remain), advance the rotation, rebuild
  /// the logical→physical map over the surviving rows, charge this
  /// campaign's writes, and project physical faults (sampled + wear-out)
  /// into the logical fault_ map for rows [0, rows).
  void apply_wear_leveling(int rows);
  /// True when accrued writes (or measured wear-out) call for retiring
  /// physical row `p`.
  bool row_wear_exceeded(int p) const;

  /// Uniform (device-nominal) degradation: drift x IR-drop, as a factor.
  double degradation_factor(double t_s, int ou_rows, int ou_cols) const;
  /// IR-drop-only factor (G_eff / G_drift) for a specific cell position
  /// within the OU (kSpatial). The hot paths read the elapsed-keyed tables
  /// instead: ir_table_ (per cell position) and lumped_ir_table_ (per
  /// activated OU perimeter rows + cols).
  double ir_factor_at(double t_s, int row_in_ou, int col_in_ou) const;
  /// Per-cell drift factor (t/t0)^(-v_i); uniform v without a NoiseModel.
  double cell_drift_factor(std::size_t idx, double elapsed_s) const;
  double quantize_adc(double value, double full_scale, int adc_bits) const;

  /// Refresh the per-timestamp caches (drift plane, effective plane, IR
  /// tile, nominal drift factor) if `t_s` maps to a different elapsed time
  /// than the cached one. Returns the elapsed time. Mutates only the
  /// `mutable` cache members; not safe against concurrent first touch (see
  /// prepare()).
  double ensure_planes(double t_s) const;

  /// The OU kernel proper. Caches must be valid for `t_s` (ensure_planes).
  /// Writes (accumulate = false) or adds (accumulate = true) the quantized
  /// column outputs into out[0, ou_cols). `epoch` feeds the counter-based
  /// read-noise stream and is ignored otherwise.
  void ou_kernel(std::span<const double> input, int row0, int ou_rows,
                 int col0, int ou_cols, double t_s, int adc_bits,
                 std::uint64_t epoch, std::span<double> out, bool accumulate);

  int size_;
  DeviceParams device_;
  std::optional<NoiseModel> noise_;
  IrModel ir_model_;
  ReadNoiseStream read_stream_ = ReadNoiseStream::kSequential;
  std::vector<double> conductance_s_;  ///< programmed magnitudes (siemens)
  std::vector<std::int8_t> sign_;      ///< -1 / 0 / +1 per cell
  std::vector<double> drift_coeff_;    ///< per-cell v (empty = uniform)
  std::vector<std::int8_t> fault_;     ///< CellFault per cell (empty = none)
  std::vector<double> wear_lifetime_;  ///< campaigns until wear-out (empty =
                                       ///< no endurance model attached)
  std::vector<std::int8_t> wear_polarity_;  ///< CellFault once worn out
  std::optional<EnduranceParams> endurance_params_;  ///< from attach_endurance

  // Wear-leveling state (enable_wear_leveling). The map is tracking-only:
  // logical cell state stays logical, physical rows accrue the wear. When
  // leveling is on, sampled stuck-at faults and wear-out both live on
  // physical cells (phys_fault_) and project into the logical fault_ map
  // through row_map_ on every program().
  WearLevelingParams leveling_{};
  int spare_budget_ = 0;                  ///< resolved retirement budget
  double row_cycle_budget_ = 0.0;         ///< campaigns per row before retire
  std::vector<std::int32_t> row_map_;     ///< logical → physical row
  std::vector<std::int64_t> row_writes_;  ///< campaigns per physical row
  std::vector<std::uint8_t> row_retired_;  ///< 1 = physical row retired
  std::vector<std::int8_t> phys_fault_;   ///< sampled faults, physical order
  std::int64_t rotation_ = 0;
  std::int64_t rows_remapped_ = 0;
  std::int64_t writes_leveled_ = 0;

  // Precomputed planes (DESIGN.md §11). weight_plane_ is column-major
  // (plane[c * size + r]) so the kernel's inner row loop is unit-stride; it
  // is rebuilt eagerly by program(). The drift-dependent caches are keyed
  // by elapsed-since-programming and rebuilt lazily (mutable: const readers
  // like weight_rms_error build them on first touch).
  std::vector<double> weight_plane_;  ///< sign * c2w(g), column-major
  mutable std::vector<double> drift_plane_;  ///< per-cell (t/t0)^-v, col-major
  mutable std::vector<double> eff_plane_;    ///< weight * drift, col-major
  mutable std::vector<double> ir_table_;     ///< ir_factor_at by r+c (kSpatial)
  mutable std::vector<double> lumped_ir_table_;  ///< ir_factor by R+C
  mutable double uniform_drift_factor_ = 1.0;
  mutable double plane_elapsed_ = -1.0;  ///< cache key; < 0 = invalid

  // Batched-path scratch (grown on first use, reused afterwards so the
  // steady state allocates nothing): the transposed input panel
  // (in_t[r * batch + b]) and the pre-quantization GEMM accumulators.
  std::vector<double> batch_in_t_;
  std::vector<double> batch_acc_;

  std::uint64_t mvm_epoch_ = 0;  ///< counter-based read-noise epoch
  int program_campaigns_ = 0;
  double programmed_at_s_ = 0.0;
  std::int64_t programmed_cells_ = 0;
  std::int64_t faulty_cells_ = 0;
  int live_rows_ = 0;
  int live_cols_ = 0;
};

}  // namespace odin::reram
