// Batched OU inner kernel: a register-blocked GEMM over the column-major
// weight plane, plus the SIMD dispatch that selects between an explicit
// AVX2 implementation and a portable scalar one.
//
// Contract (DESIGN.md §14): for a batch of B queries packed transposed
// (`in_t[r * batch + b]` = element r of query b), the kernel computes
//
//   acc[c * batch + b] = sum_r in_t[r * batch + b] * w(c, r)
//
// where column c of the plane starts at `colbase + c * col_stride` and
//   w(c, r) = col_c[r]                  (irt == nullptr, lumped IR)
//   w(c, r) = col_c[r] * irt[c + r]     (irt != nullptr, spatial IR)
//
// Every implementation zeroes `acc` first, forms w exactly as the
// single-query kernel does (one multiply), and accumulates each query
// lane in strictly increasing r order with separate multiply and add
// (no FMA contraction; the kernel TUs build with -ffp-contract=off).
// Because IEEE-754 arithmetic is deterministic per lane, the batched
// result is bitwise identical to B sequential single-query dot products
// regardless of batch size or instruction set — pinned by
// tests/test_mvm_kernel.cpp.
#pragma once

#include <cstddef>

namespace odin::reram::gemm {

/// Inner-kernel instruction set. kAvx2 vectorizes across the batch
/// dimension (4 queries per ymm register); kScalar is the portable
/// fallback with the same per-lane operation order.
enum class SimdMode { kScalar, kAvx2 };

/// "scalar" / "avx2" (for logs and bench output).
const char* simd_mode_name(SimdMode mode) noexcept;

/// True when the AVX2 kernel was compiled in AND the CPU supports it.
bool avx2_available() noexcept;

/// Strict parse of an ODIN_SIMD value ("avx2" or "scalar"). Returns
/// false on anything else, leaving `out` untouched.
bool parse_simd_mode(const char* text, SimdMode& out) noexcept;

/// Best mode available on this build/CPU (kAvx2 when possible).
SimdMode default_simd_mode() noexcept;

/// Resolve the mode from ODIN_SIMD with the strict-env contract: unset
/// picks default_simd_mode(); garbage warns to stderr and picks the
/// default; "avx2" on a machine without AVX2 warns and degrades to
/// scalar.
SimdMode simd_mode_from_env() noexcept;

/// The mode ou_gemm dispatches to. Resolved from ODIN_SIMD on first use
/// and cached; override with set_simd_mode (tests, CLI).
SimdMode active_simd_mode() noexcept;

/// Force the dispatch mode. kAvx2 silently degrades to kScalar when
/// unavailable, so callers can request it unconditionally.
void set_simd_mode(SimdMode mode) noexcept;

/// Dispatching entry point (see the contract above).
void ou_gemm(const double* in_t, int batch, int rows, const double* colbase,
             std::size_t col_stride, int cols, const double* irt, double* acc);

/// Portable implementation (always compiled).
void ou_gemm_scalar(const double* in_t, int batch, int rows,
                    const double* colbase, std::size_t col_stride, int cols,
                    const double* irt, double* acc);

/// AVX2 implementation; only defined when the toolchain supports -mavx2
/// (never call directly — go through ou_gemm / set_simd_mode).
void ou_gemm_avx2(const double* in_t, int batch, int rows,
                  const double* colbase, std::size_t col_stride, int cols,
                  const double* irt, double* acc);

}  // namespace odin::reram::gemm
