#include "reram/batch_gemm.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "common/env.hpp"

namespace odin::reram::gemm {

namespace {

/// Active dispatch mode; -1 = not yet resolved from ODIN_SIMD.
std::atomic<int> g_mode{-1};

}  // namespace

const char* simd_mode_name(SimdMode mode) noexcept {
  return mode == SimdMode::kAvx2 ? "avx2" : "scalar";
}

bool avx2_available() noexcept {
#if defined(ODIN_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool parse_simd_mode(const char* text, SimdMode& out) noexcept {
  if (text == nullptr) return false;
  if (std::strcmp(text, "scalar") == 0) {
    out = SimdMode::kScalar;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    out = SimdMode::kAvx2;
    return true;
  }
  return false;
}

SimdMode default_simd_mode() noexcept {
  return avx2_available() ? SimdMode::kAvx2 : SimdMode::kScalar;
}

SimdMode simd_mode_from_env() noexcept {
  const char* env = common::env_string("ODIN_SIMD");
  if (env == nullptr) return default_simd_mode();
  SimdMode mode;
  if (!parse_simd_mode(env, mode)) {
    std::fprintf(stderr,
                 "odin: ignoring ODIN_SIMD='%s' (want avx2|scalar); "
                 "using default\n",
                 env);
    return default_simd_mode();
  }
  if (mode == SimdMode::kAvx2 && !avx2_available()) {
    std::fprintf(stderr,
                 "odin: ODIN_SIMD=avx2 requested but AVX2 is unavailable; "
                 "using scalar\n");
    return SimdMode::kScalar;
  }
  return mode;
}

SimdMode active_simd_mode() noexcept {
  int mode = g_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = static_cast<int>(simd_mode_from_env());
    g_mode.store(mode, std::memory_order_relaxed);
  }
  return static_cast<SimdMode>(mode);
}

void set_simd_mode(SimdMode mode) noexcept {
  if (mode == SimdMode::kAvx2 && !avx2_available()) mode = SimdMode::kScalar;
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void ou_gemm_scalar(const double* in_t, int batch, int rows,
                    const double* colbase, std::size_t col_stride, int cols,
                    const double* irt, double* acc) {
  for (int c = 0; c < cols; ++c) {
    const double* col = colbase + static_cast<std::size_t>(c) * col_stride;
    const double* irtc = irt != nullptr ? irt + c : nullptr;
    double* accc = acc + static_cast<std::size_t>(c) * batch;
    for (int b = 0; b < batch; ++b) accc[b] = 0.0;
    for (int r = 0; r < rows; ++r) {
      const double w = irtc != nullptr ? col[r] * irtc[r] : col[r];
      const double* inr = in_t + static_cast<std::size_t>(r) * batch;
      for (int b = 0; b < batch; ++b) accc[b] += inr[b] * w;
    }
  }
}

void ou_gemm(const double* in_t, int batch, int rows, const double* colbase,
             std::size_t col_stride, int cols, const double* irt,
             double* acc) {
#if defined(ODIN_HAVE_AVX2)
  if (active_simd_mode() == SimdMode::kAvx2) {
    ou_gemm_avx2(in_t, batch, rows, colbase, col_stride, cols, irt, acc);
    return;
  }
#endif
  ou_gemm_scalar(in_t, batch, rows, colbase, col_stride, cols, irt, acc);
}

}  // namespace odin::reram::gemm
