// Endurance-aware wear leveling: row rotation, spare-row remapping, and
// the wear map that rides the serving checkpoint.
//
// PR 2 gave crossbars per-cell Weibull endurance wear; nothing steered the
// writes, so every reprogram campaign hammered the same physical rows until
// their cells died. This module supplies the management layer (DESIGN.md
// §15):
//
//  * rotation — successive campaigns shift the logical→physical row map so
//    write wear spreads across the whole array instead of the logical block,
//  * spare-row remapping — a bounded pool of replacement rows absorbs rows
//    whose projected remaining lifetime (or measured wear) crosses a budget,
//  * the WearMap — per-physical-row campaign counts plus the remap state,
//    serialized into checkpoint payload v4 alongside CrossbarHealth.
//
// The mapping is tracking-only: logical cell state (conductances, signs,
// weight plane) stays in logical order, so the MVM plane kernel is bitwise
// untouched by leveling (pinned in tests/test_mvm_kernel.cpp). Only wear
// accrual and the wear-fault projection consult the physical map.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/binary_io.hpp"

namespace odin::reram {

/// Wear-leveling knobs, shared by the behavioural Crossbar and the analytic
/// FaultInjector. Disabled (the default) leaves both bit-identical to the
/// pre-leveling code paths.
struct WearLevelingParams {
  bool enabled = false;
  /// Rotate the logical→physical row map every campaign (the cheap layer of
  /// the ladder; remap-on-wear still applies when this is off).
  bool rotate = true;
  /// Spare-row pool size per crossbar; 0 defers to ODIN_SPARE_ROWS (strict
  /// parse, default 16). Clamped to [1, 512].
  int spare_rows = 0;
  /// Fraction of a row's projected wear-out lifetime that may be consumed
  /// before the row is proactively retired, as an integer percent; 0 defers
  /// to ODIN_WEAR_BUDGET (strict parse, default 80). Clamped to [1, 100].
  int wear_budget_percent = 0;
  /// Explicit per-row write-campaign cap overriding the projected lifetime
  /// (test hook: forces retirement without an endurance model). 0 = derive
  /// from the attached EnduranceModel.
  double row_cycle_budget = 0.0;

  /// Effective spare-pool size after the env fallback and clamping.
  int resolved_spare_rows() const;
  /// Effective wear budget as a fraction in (0, 1].
  double resolved_wear_budget() const;
};

/// Durable per-crossbar wear/remap state (checkpoint payload v4). Vectors
/// are indexed by physical row; `remap` maps logical row → physical row for
/// the most recent campaign (empty until the first leveled program).
struct WearMap {
  std::int32_t rows = 0;        ///< physical rows tracked
  std::int32_t spare_rows = 0;  ///< retirement budget (resolved)
  std::int64_t rotation = 0;    ///< rotation offset of the current map
  std::vector<std::int64_t> row_writes;  ///< write campaigns per physical row
  std::vector<std::uint8_t> retired;     ///< 1 = physical row retired
  std::vector<std::int32_t> remap;       ///< logical → physical row
  std::int64_t rows_remapped = 0;        ///< retirements applied so far
  std::int64_t writes_leveled = 0;       ///< row writes redirected off-identity
};

/// Binary codec for the checkpoint frame (same idiom as encode_health).
/// decode returns nullopt on truncated or inconsistent input.
void encode_wear_map(const WearMap& map, common::ByteWriter& out);
std::optional<WearMap> decode_wear_map(common::ByteReader& in);

}  // namespace odin::reram
