// ReRAM endurance (write wear) model.
//
// Every program-verify campaign stresses the cells; after enough write
// cycles, cells fail permanently (typically stuck). ReRAM endurance is
// O(1e6-1e12) cycles device-to-device; with per-cell Weibull-distributed
// lifetimes, the expected stuck-cell fraction after n reprogramming
// campaigns is F(n) = 1 - exp(-(n / eta)^beta).
//
// The paper never discusses wear, but it compounds its own argument: the
// 16x16 baseline's ~45 reprograms per 1e8 s horizon cost endurance as well
// as energy, and over a device lifetime the reprogram-hungry schemes burn
// through write budget Odin never spends. bench/endurance_projection
// quantifies this.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace odin::reram {

struct EnduranceParams {
  /// Weibull scale: characteristic lifetime in write campaigns. One
  /// campaign = one whole-array write-verify pass (which itself is ~15
  /// pulses, see ProgramVerifyModel); 2e5 campaigns ~ 3e6 pulse-level
  /// writes, a conservative analog-ReRAM figure.
  double characteristic_cycles = 2e5;
  /// Weibull shape (> 1: wear-out dominated, the usual regime).
  double shape = 1.8;
};

class EnduranceModel {
 public:
  explicit EnduranceModel(EnduranceParams params = {}) : params_(params) {}

  const EnduranceParams& params() const noexcept { return params_; }

  /// Expected fraction of cells failed after `cycles` write campaigns.
  double failure_fraction(double cycles) const noexcept;

  /// Write campaigns until the expected failure fraction reaches
  /// `budget` (e.g. 1e-3 = 0.1% stuck cells, a typical ECC ceiling).
  double cycles_to_failure_budget(double budget) const noexcept;

  /// Sample one cell's lifetime (in campaigns).
  double sample_lifetime(common::Rng& rng) const noexcept;

  /// Device lifetime in seconds for a scheme that reprograms
  /// `reprograms_per_horizon` times every `horizon_s`, before the stuck
  /// fraction crosses `budget`.
  double lifetime_seconds(double reprograms_per_horizon, double horizon_s,
                          double budget = 1e-3) const noexcept;

  /// Same projection with wear leveling on: rotation spreads each campaign's
  /// row writes over `array_rows + spare_rows` physical rows (so per-cell
  /// wear accrues at array_rows / (array_rows + spare_rows) campaigns per
  /// campaign), and the spare pool absorbs the first `spare_rows` worn rows
  /// before any stuck cell becomes visible — raising the tolerable failure
  /// fraction from `budget` to budget + spare_rows / (array_rows *
  /// row_cells). The ratio to lifetime_seconds is the leveling extension
  /// bench/endurance_projection reports.
  double leveled_lifetime_seconds(double reprograms_per_horizon,
                                  double horizon_s, int array_rows,
                                  int spare_rows, int row_cells,
                                  double budget = 1e-3) const noexcept;

 private:
  EnduranceParams params_;
};

}  // namespace odin::reram
