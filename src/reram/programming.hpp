// Write-verify (program-verify) model for analog multi-level ReRAM cells.
//
// Programming a cell to an analog target is iterative: apply a partial
// SET/RESET pulse, read back, repeat until the stored conductance is within
// tolerance. Each iteration multiplies the residual error by a convergence
// factor < 1, so the iteration count is logarithmic in the demanded
// precision. The DeviceParams write-cost constants used by the reprogramming
// accounting are *derived* from this model (see the coherence test in
// tests/test_reram_programming.cpp): for 2-bit cells the defaults work out
// to ~0.9 nJ and ~2 us per wordline — the numbers behind Fig. 6's
// reprogramming overheads.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "reram/device.hpp"

namespace odin::reram {

struct ProgramVerifyParams {
  double pulse_energy_j = 30.0 * units::pJ;   ///< one partial SET/RESET
  double pulse_duration_s = 70.0 * units::ns;
  double verify_energy_j = 5.0 * units::pJ;   ///< read-back per iteration
  double verify_duration_s = 30.0 * units::ns;
  /// Initial relative conductance error after the first blind pulse.
  double initial_sigma = 0.35;
  /// Residual-error multiplier per write-verify iteration.
  double convergence_rate = 0.85;
  /// Upfront RESET (erase to G_OFF) before re-targeting, per cell.
  double reset_energy_j = 235.0 * units::pJ;
  double reset_duration_s = 100.0 * units::ns;
  int max_iterations = 64;
};

class ProgramVerifyModel {
 public:
  explicit ProgramVerifyModel(ProgramVerifyParams params = {})
      : params_(params) {}

  const ProgramVerifyParams& params() const noexcept { return params_; }

  /// Verify tolerance for a cell storing `bits_per_cell` levels: a tenth of
  /// the level spacing, relative to G_ON (standard half-margin practice
  /// with guard band).
  double tolerance_for(const DeviceParams& device) const noexcept;

  /// Iterations needed to bring the residual under `rel_tolerance`.
  int iterations_for(double rel_tolerance) const noexcept;

  /// Deterministic per-cell programming cost at the device's tolerance.
  common::EnergyLatency cell_cost(const DeviceParams& device) const noexcept;

  /// Latency to write one wordline: cells on a row are programmed in
  /// parallel by the column drivers, so the row takes as long as its
  /// worst-case cell.
  double row_latency_s(const DeviceParams& device) const noexcept;

  /// Stochastic single-cell write for validation: returns the iteration
  /// count actually used (error shrinks by a noisy factor each round).
  int simulate_write(const DeviceParams& device, common::Rng& rng) const;

 private:
  ProgramVerifyParams params_;
};

}  // namespace odin::reram
