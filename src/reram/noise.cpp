#include "reram/noise.hpp"

// NoiseModel is header-only today; this translation unit anchors the library
// target and is the place sampled-noise tables would live if profiles grow.
