// Stochastic non-ideality sources layered on top of the deterministic
// device model: programming (write) variation, read (thermal/shot) noise and
// cell-to-cell drift-coefficient variation. Used by the crossbar MVM path
// and by the Monte-Carlo accuracy evaluator.
#pragma once

#include "common/rng.hpp"
#include "reram/device.hpp"

namespace odin::reram {

/// Magnitudes follow the ReRAM variability literature (e.g. PytorX-style
/// noise injection): programming error is a few percent of the programmed
/// conductance, read noise well under a percent per access, and the drift
/// exponent itself varies cell to cell.
struct NoiseParams {
  double program_sigma = 0.02;  ///< rel. std-dev of programmed conductance
  double read_sigma = 0.003;    ///< rel. std-dev per analog read
  double drift_coeff_sigma = 0.10;  ///< rel. std-dev of the drift exponent v
  /// Stuck-at-fault rates: cells permanently stuck at G_ON (stuck-on,
  /// typically from over-forming) or G_OFF (stuck-off, broken filament).
  /// Sampled once per cell at programming time; writes cannot fix them.
  double stuck_on_rate = 0.0;
  double stuck_off_rate = 0.0;
};

/// Outcome of the per-cell fault lottery.
enum class CellFault { kNone, kStuckOn, kStuckOff };

class NoiseModel {
 public:
  NoiseModel(NoiseParams params, std::uint64_t seed)
      : params_(params), seed_(seed), rng_(seed) {}

  /// Conductance actually stored after a write targeting `target_s`.
  double programmed(double target_s) noexcept {
    return clamp_positive(target_s *
                          (1.0 + params_.program_sigma * rng_.normal()));
  }

  /// One analog read of a cell currently at `stored_s`.
  double read(double stored_s) noexcept {
    return clamp_positive(stored_s *
                          (1.0 + params_.read_sigma * rng_.normal()));
  }

  /// Counter-based read: the draw comes from a private stream derived from
  /// (seed, stream) instead of the shared sequential RNG, so the value
  /// depends only on the cell/epoch identity encoded in `stream` — never on
  /// how many draws other cells made first. This is what lets the noisy MVM
  /// path use the same parallel column-block schedule as the noiseless one
  /// while staying seed-deterministic (Crossbar::ReadNoiseStream).
  double read_at(double stored_s, std::uint64_t stream) const noexcept {
    std::uint64_t sm = seed_ ^ (stream * 0x9e3779b97f4a7c15ULL);
    common::Rng rng(common::splitmix64(sm));
    return clamp_positive(stored_s *
                          (1.0 + params_.read_sigma * rng.normal()));
  }

  /// Per-cell drift coefficient, jittered around the device nominal.
  double cell_drift_coefficient(const DeviceParams& dev) noexcept {
    const double v =
        dev.drift_coefficient *
        (1.0 + params_.drift_coeff_sigma * rng_.normal());
    return v > 0.0 ? v : dev.drift_coefficient;
  }

  /// Sample the permanent fault state of a cell.
  CellFault cell_fault() noexcept {
    const double u = rng_.uniform();
    if (u < params_.stuck_on_rate) return CellFault::kStuckOn;
    if (u < params_.stuck_on_rate + params_.stuck_off_rate)
      return CellFault::kStuckOff;
    return CellFault::kNone;
  }

  const NoiseParams& params() const noexcept { return params_; }

 private:
  static double clamp_positive(double g) noexcept { return g > 0.0 ? g : 0.0; }

  NoiseParams params_;
  std::uint64_t seed_;
  common::Rng rng_;
};

}  // namespace odin::reram
