// AVX2 OU GEMM. This TU alone is compiled with -mavx2 (and, like the
// other kernel TUs, -ffp-contract=off); ou_gemm only dispatches here
// after a runtime __builtin_cpu_supports("avx2") check.
//
// Vectorization is across the *batch* dimension: one ymm register holds
// the accumulators of 4 queries for one output column, and the r loop
// performs the same multiply-then-add per lane, in the same order, as
// the scalar kernel — which is what makes the result bitwise identical
// to sequential single-query calls (no horizontal reductions, no FMA).
#include "reram/batch_gemm.hpp"

#if defined(ODIN_HAVE_AVX2)

#include <immintrin.h>

namespace odin::reram::gemm {

void ou_gemm_avx2(const double* in_t, int batch, int rows,
                  const double* colbase, std::size_t col_stride, int cols,
                  const double* irt, double* acc) {
  const int bvec = batch & ~3;  // multiple-of-4 query prefix
  for (int c0 = 0; c0 < cols; c0 += 4) {
    const int nc = cols - c0 < 4 ? cols - c0 : 4;
    // Register block: 4 output columns x 4 query lanes. The input panel
    // row is loaded once per r and reused by every column in the block.
    for (int b0 = 0; b0 < bvec; b0 += 4) {
      __m256d accv[4];
      for (int cc = 0; cc < nc; ++cc) accv[cc] = _mm256_setzero_pd();
      for (int r = 0; r < rows; ++r) {
        const __m256d x =
            _mm256_loadu_pd(in_t + static_cast<std::size_t>(r) * batch + b0);
        for (int cc = 0; cc < nc; ++cc) {
          const int c = c0 + cc;
          const double* col =
              colbase + static_cast<std::size_t>(c) * col_stride;
          const double w = irt != nullptr ? col[r] * irt[c + r] : col[r];
          accv[cc] =
              _mm256_add_pd(accv[cc], _mm256_mul_pd(x, _mm256_set1_pd(w)));
        }
      }
      for (int cc = 0; cc < nc; ++cc)
        _mm256_storeu_pd(
            acc + static_cast<std::size_t>(c0 + cc) * batch + b0, accv[cc]);
    }
    // Query tail (batch % 4): scalar, same per-lane operation order.
    for (int b = bvec; b < batch; ++b) {
      for (int cc = 0; cc < nc; ++cc) {
        const int c = c0 + cc;
        const double* col = colbase + static_cast<std::size_t>(c) * col_stride;
        const double* irtc = irt != nullptr ? irt + c : nullptr;
        double a = 0.0;
        if (irtc != nullptr) {
          for (int r = 0; r < rows; ++r) {
            const double w = col[r] * irtc[r];
            a += in_t[static_cast<std::size_t>(r) * batch + b] * w;
          }
        } else {
          for (int r = 0; r < rows; ++r)
            a += in_t[static_cast<std::size_t>(r) * batch + b] * col[r];
        }
        acc[static_cast<std::size_t>(c) * batch + b] = a;
      }
    }
  }
}

}  // namespace odin::reram::gemm

#endif  // ODIN_HAVE_AVX2
