// ReRAM device model: Table II parameters, conductance drift (paper Eq. 3),
// IR-drop-degraded effective conductance and conductance error (paper Eq. 4),
// and weight <-> multi-level-cell conductance quantization.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/units.hpp"

namespace odin::reram {

/// Device & crossbar electrical parameters (paper Table II), plus the write
/// costs that NeuroSim-style models need for the reprogramming accounting.
///
/// Calibration note (see DESIGN.md §4): the paper lists v = 0.2 s^-1, but
/// that value drains G_ON within seconds and contradicts the paper's own
/// reprogramming counts in Fig. 6 (16x16 reprogrammed every ~2.3e6 s). We
/// keep Eq. 3 structurally exact and default v to the calibrated 0.0021 so
/// the Fig. 6 / Fig. 8 shapes reproduce; `paper_drift_coefficient` preserves
/// the printed value for reference.
struct DeviceParams {
  double g_on_s = 333.0 * units::uS;    ///< ON-state conductance
  double g_off_s = 0.33 * units::uS;    ///< OFF-state conductance
  double r_wire_ohm = 1.0 * units::ohm; ///< per-cell crossbar wire resistance
  double drift_coefficient = 0.00213;   ///< calibrated v (dimensionless)
  double t0_s = 1.0 * units::s;         ///< reference time after programming
  int bits_per_cell = 2;                ///< multi-level cell (Table I)

  /// Write (programming) cost per cell. A single SET/RESET pulse is O(1) pJ,
  /// but programming analog multi-level cells to precision takes tens of
  /// write-verify iterations (program-verify loops dominate, cf. Re2fresh
  /// [18]); the effective per-cell cost is O(100) pJ and per-row write-verify
  /// time is O(1) us.
  double write_energy_per_cell_j = 900.0 * units::pJ;
  double write_latency_per_row_s = 2.0 * units::us;

  static constexpr double paper_drift_coefficient = 0.2;  ///< as printed

  /// Number of distinct conductance levels a cell can store.
  int levels() const noexcept { return 1 << bits_per_cell; }
};

/// Paper Eq. 3: G_drift(t) = G_ON * (t / t0)^(-v).
/// `t_s` is wall-clock time elapsed since the cells were (re)programmed,
/// clamped below at t0 (the model is defined for t >= t0).
double drift_conductance(const DeviceParams& p, double t_s) noexcept;

/// Paper Eq. 4: effective conductance seen through the IR-drop voltage
/// divider when an OU of `rows` x `cols` cells is activated concurrently:
///   G_eff = 1 / ( 1/G_drift(t) + R_wire * (rows + cols) * wire_scale )
/// `wire_scale` models the crossbar-size dependence the paper's sensitivity
/// analysis relies on (Sec. V-D: "as we scale down the crossbar size, the
/// impact of crossbar non-idealities reduces"): an activated word/bitline
/// physically spans the whole crossbar, so its resistance scales with the
/// crossbar dimension. wire_scale = crossbar_size / 128 — exactly Eq. 4 at
/// the paper's reference 128x128 array.
double effective_conductance(const DeviceParams& p, double t_s, int rows,
                             int cols, double wire_scale = 1.0) noexcept;

/// Eq. 4 with the drift term already evaluated: lets callers that sweep OU
/// shapes at one fixed elapsed time (the plane/tile caches, the nonideality
/// cache rebuild) hoist the std::pow out of their loop. Bitwise identical
/// to effective_conductance(p, t_s, ...) when `g_drift_s` equals
/// drift_conductance(p, t_s).
inline double effective_conductance_given_drift(const DeviceParams& p,
                                                double g_drift_s, int rows,
                                                int cols,
                                                double wire_scale = 1.0)
    noexcept {
  const double series_r =
      p.r_wire_ohm * static_cast<double>(rows + cols) * wire_scale;
  return 1.0 / (1.0 / g_drift_s + series_r);
}

/// Paper Eq. 4: conductance error  dG = | G_ON - G_eff |.
double conductance_error(const DeviceParams& p, double t_s, int rows,
                         int cols, double wire_scale = 1.0) noexcept;

/// dG normalized by G_ON — the dimensionless non-ideality factor (NF) that
/// Algorithm 1 compares against the threshold eta.
double relative_conductance_error(const DeviceParams& p, double t_s,
                                  int rows, int cols,
                                  double wire_scale = 1.0) noexcept;

/// Split Eq. 4 into its two physical components, both normalized by G_ON:
/// the global drift loss (OU-independent) and the IR-drop loss (grows with
/// rows + cols). Their sum equals relative_conductance_error exactly.
struct NonIdealityComponents {
  double drift;    ///< (G_ON - G_drift) / G_ON
  double ir_drop;  ///< (G_drift - G_eff) / G_ON
  double total() const noexcept { return drift + ir_drop; }
};
NonIdealityComponents nonideality_components(const DeviceParams& p,
                                             double t_s, int rows, int cols,
                                             double wire_scale = 1.0) noexcept;

/// Quantize a weight in [-1, 1] onto a signed pair of multi-level cells
/// (positive and negative columns, the standard differential encoding).
/// Returns the conductance the *positive* path programs; the caller holds
/// the sign. Level 0 maps to G_OFF, the top level to G_ON.
/// Inline: the crossbar's plane build and the pinned reference kernel both
/// run this per cell and want it folded into their loops.
inline double quantize_weight_to_conductance(const DeviceParams& p,
                                             double weight_magnitude)
    noexcept {
  const double w = weight_magnitude < 0.0
                       ? 0.0
                       : (weight_magnitude > 1.0 ? 1.0 : weight_magnitude);
  const int top = p.levels() - 1;
  const int level = static_cast<int>(std::lround(w * top));
  const double frac = static_cast<double>(level) / static_cast<double>(top);
  return p.g_off_s + frac * (p.g_on_s - p.g_off_s);
}

/// Inverse of quantize_weight_to_conductance: conductance -> magnitude.
inline double conductance_to_weight(const DeviceParams& p,
                                    double conductance_s) noexcept {
  const double frac = (conductance_s - p.g_off_s) / (p.g_on_s - p.g_off_s);
  return frac < 0.0 ? 0.0 : (frac > 1.0 ? 1.0 : frac);
}

}  // namespace odin::reram
