#include "reram/crossbar.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/parallel.hpp"
#include "reram/batch_gemm.hpp"

namespace odin::reram {

namespace {

/// Rough per-cell kernel cost in nanoseconds, used as the parallel_for
/// work hint: the plane kernel is a couple of fused multiply-adds per cell,
/// the counter-based noisy kernel pays an RNG construction + Box-Muller.
constexpr std::size_t kPlaneCellCostNs = 2;
constexpr std::size_t kNoisyCellCostNs = 60;

}  // namespace

Crossbar::Crossbar(int size, DeviceParams device,
                   std::optional<NoiseModel> noise, IrModel ir_model)
    : size_(size),
      device_(device),
      noise_(std::move(noise)),
      ir_model_(ir_model),
      conductance_s_(static_cast<std::size_t>(size) * size, device.g_off_s),
      sign_(static_cast<std::size_t>(size) * size, 0),
      weight_plane_(static_cast<std::size_t>(size) * size, 0.0) {
  assert(size > 0);
}

void Crossbar::attach_endurance(const EnduranceModel& model,
                                std::uint64_t seed) {
  common::Rng rng(seed);
  endurance_params_ = model.params();
  wear_lifetime_.resize(conductance_s_.size());
  wear_polarity_.resize(conductance_s_.size());
  for (std::size_t i = 0; i < wear_lifetime_.size(); ++i) {
    wear_lifetime_[i] = model.sample_lifetime(rng);
    wear_polarity_[i] = static_cast<std::int8_t>(
        rng.bernoulli(0.5) ? CellFault::kStuckOn : CellFault::kStuckOff);
  }
}

void Crossbar::enable_wear_leveling(const WearLevelingParams& params) {
  leveling_ = params;
  leveling_.enabled = true;
  spare_budget_ = params.resolved_spare_rows();
}

bool Crossbar::row_wear_exceeded(int p) const {
  const std::int64_t writes = row_writes_[static_cast<std::size_t>(p)];
  if (writes <= 0) return false;
  // Projected trigger: the row consumed its share of the wear budget.
  if (row_cycle_budget_ > 0.0 &&
      static_cast<double>(writes) >= row_cycle_budget_)
    return true;
  // Measured trigger: a cell of the row already wore out.
  if (!wear_lifetime_.empty()) {
    const std::size_t base = static_cast<std::size_t>(p) * size_;
    for (int c = 0; c < size_; ++c)
      if (wear_lifetime_[base + c] <= static_cast<double>(writes)) return true;
  }
  return false;
}

void Crossbar::apply_wear_leveling(int rows) {
  if (row_writes_.empty()) {
    row_writes_.assign(static_cast<std::size_t>(size_), 0);
    row_retired_.assign(static_cast<std::size_t>(size_), 0);
  }
  // Per-row retirement cap: explicit test hook, else the wear budget's
  // share of the projected row wear-out lifetime (the cycle count at which
  // a row is expected to contain its first worn cell).
  row_cycle_budget_ = leveling_.row_cycle_budget;
  if (row_cycle_budget_ <= 0.0 && endurance_params_)
    row_cycle_budget_ =
        leveling_.resolved_wear_budget() *
        EnduranceModel(*endurance_params_)
            .cycles_to_failure_budget(1.0 / static_cast<double>(size_));
  // Retire-then-map: rows whose wear (through the previous campaign)
  // crossed the budget leave the rotation set, as long as the spare budget
  // holds and enough physical rows survive to carry the logical block.
  int alive = 0;
  for (std::uint8_t r : row_retired_) alive += r == 0 ? 1 : 0;
  for (int p = 0; p < size_; ++p) {
    if (spares_remaining() <= 0 || alive - 1 < rows) break;
    if (row_retired_[static_cast<std::size_t>(p)] == 0 &&
        row_wear_exceeded(p)) {
      row_retired_[static_cast<std::size_t>(p)] = 1;
      ++rows_remapped_;
      --alive;
    }
  }
  // Rotate and rebuild the logical→physical map over the survivors.
  if (leveling_.rotate && program_campaigns_ > 1) ++rotation_;
  std::vector<std::int32_t> avail;
  avail.reserve(static_cast<std::size_t>(alive));
  for (int p = 0; p < size_; ++p)
    if (row_retired_[static_cast<std::size_t>(p)] == 0) avail.push_back(p);
  row_map_.resize(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r)
    row_map_[static_cast<std::size_t>(r)] = avail[static_cast<std::size_t>(
        (static_cast<std::int64_t>(r) + rotation_) %
        static_cast<std::int64_t>(avail.size()))];
  // Charge this campaign's writes against the mapped physical rows.
  for (int r = 0; r < rows; ++r) {
    const int p = row_map_[static_cast<std::size_t>(r)];
    ++row_writes_[static_cast<std::size_t>(p)];
    if (p != r) ++writes_leveled_;
  }
  // Project physical faults (sampled stuck-at + wear-out, including this
  // campaign's wear) into the logical fault map the write loop consumes.
  const bool any_fault = !phys_fault_.empty() || !wear_lifetime_.empty();
  if (!any_fault) return;
  fault_.assign(conductance_s_.size(),
                static_cast<std::int8_t>(CellFault::kNone));
  faulty_cells_ = 0;
  for (int r = 0; r < rows; ++r) {
    const std::size_t pb =
        static_cast<std::size_t>(row_map_[static_cast<std::size_t>(r)]) *
        size_;
    const std::size_t lb = static_cast<std::size_t>(r) * size_;
    const double writes = static_cast<double>(
        row_writes_[static_cast<std::size_t>(
            row_map_[static_cast<std::size_t>(r)])]);
    for (int c = 0; c < size_; ++c) {
      std::int8_t f = phys_fault_.empty()
                          ? static_cast<std::int8_t>(CellFault::kNone)
                          : phys_fault_[pb + c];
      if (static_cast<CellFault>(f) == CellFault::kNone &&
          !wear_lifetime_.empty() && wear_lifetime_[pb + c] <= writes)
        f = wear_polarity_[pb + c];
      fault_[lb + c] = f;
      if (static_cast<CellFault>(f) != CellFault::kNone) ++faulty_cells_;
    }
  }
}

WearMap Crossbar::wear_map() const {
  WearMap map;
  if (!leveling_.enabled || row_writes_.empty()) return map;
  map.rows = size_;
  map.spare_rows = spare_budget_;
  map.rotation = rotation_;
  map.row_writes = row_writes_;
  map.retired = row_retired_;
  map.remap = row_map_;
  map.rows_remapped = rows_remapped_;
  map.writes_leveled = writes_leveled_;
  return map;
}

bool Crossbar::restore_wear_map(const WearMap& map) {
  if (map.rows == 0) return true;  // empty map: nothing tracked yet
  if (!leveling_.enabled || map.rows != size_ ||
      map.spare_rows != spare_budget_ ||
      map.row_writes.size() != static_cast<std::size_t>(size_) ||
      map.retired.size() != static_cast<std::size_t>(size_))
    return false;
  rotation_ = map.rotation;
  row_writes_ = map.row_writes;
  row_retired_ = map.retired;
  row_map_ = map.remap;
  rows_remapped_ = map.rows_remapped;
  writes_leveled_ = map.writes_leveled;
  return true;
}

void Crossbar::program(std::span<const double> weights, int rows, int cols,
                       double at_time_s) {
  assert(rows >= 0 && rows <= size_ && cols >= 0 && cols <= size_);
  assert(weights.size() == static_cast<std::size_t>(rows) * cols);
  programmed_cells_ = 0;
  ++program_campaigns_;
  if (noise_ && drift_coeff_.empty())
    drift_coeff_.assign(conductance_s_.size(), device_.drift_coefficient);
  // Stuck-at-faults are a property of the array, not of a write: sample
  // them once, on the first programming pass. With wear leveling they are
  // sampled onto *physical* cells (same draw order) and projected into the
  // logical map by apply_wear_leveling below.
  std::vector<std::int8_t>& fault_store =
      leveling_.enabled ? phys_fault_ : fault_;
  const bool sample_faults = noise_ && fault_store.empty() &&
                             (noise_->params().stuck_on_rate > 0.0 ||
                              noise_->params().stuck_off_rate > 0.0);
  if (sample_faults) {
    fault_store.assign(conductance_s_.size(),
                       static_cast<std::int8_t>(CellFault::kNone));
    for (std::int8_t& f : fault_store) {
      const CellFault cell = noise_->cell_fault();
      f = static_cast<std::int8_t>(cell);
      if (!leveling_.enabled && cell != CellFault::kNone) ++faulty_cells_;
    }
  }
  if (leveling_.enabled) {
    // Leveled wear path: rotate/remap the row map, charge per-physical-row
    // writes, retire budget-crossing rows onto the spare pool, and rebuild
    // the logical fault map from the physical one.
    apply_wear_leveling(rows);
  } else if (!wear_lifetime_.empty()) {
    // Unleveled endurance wear: this campaign may push cells past their
    // lifetime. Worn cells join the permanent fault map and, like the
    // sampled stuck-at population, survive every later write.
    if (fault_.empty())
      fault_.assign(conductance_s_.size(),
                    static_cast<std::int8_t>(CellFault::kNone));
    for (std::size_t i = 0; i < wear_lifetime_.size(); ++i) {
      if (wear_lifetime_[i] <= static_cast<double>(program_campaigns_) &&
          static_cast<CellFault>(fault_[i]) == CellFault::kNone) {
        fault_[i] = wear_polarity_[i];
        ++faulty_cells_;
      }
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double w = weights[static_cast<std::size_t>(r) * cols + c];
      const std::size_t idx = static_cast<std::size_t>(r) * size_ + c;
      double g = quantize_weight_to_conductance(device_, std::abs(w));
      if (noise_) {
        g = noise_->programmed(g);
        drift_coeff_[idx] = noise_->cell_drift_coefficient(device_);
      }
      std::int8_t sign =
          static_cast<std::int8_t>(w > 0.0 ? 1 : (w < 0.0 ? -1 : 0));
      if (!fault_.empty()) {
        const auto f = static_cast<CellFault>(fault_[idx]);
        if (f == CellFault::kStuckOn) {
          g = device_.g_on_s;
          if (sign == 0) sign = 1;  // the stuck filament conducts anyway
        } else if (f == CellFault::kStuckOff) {
          g = device_.g_off_s;
          sign = 0;
        }
      }
      conductance_s_[idx] = g;
      sign_[idx] = sign;
      // Fold sign * conductance_to_weight into the column-major plane —
      // exactly the product the kernel used to form per access.
      weight_plane_[static_cast<std::size_t>(c) * size_ + r] =
          sign == 0 ? 0.0
                    : static_cast<double>(sign) *
                          conductance_to_weight(device_, g);
      if (sign_[idx] != 0) ++programmed_cells_;
    }
  }
  programmed_at_s_ = at_time_s;
  live_rows_ = rows;
  live_cols_ = cols;
  // New weights / drift coefficients: every elapsed-keyed cache is stale.
  plane_elapsed_ = -1.0;
}

double Crossbar::ideal_weight(int row, int col) const {
  return weight_plane_[static_cast<std::size_t>(col) * size_ + row];
}

double Crossbar::degradation_factor(double t_s, int ou_rows,
                                    int ou_cols) const {
  // Multiplicative degradation shared by all cells in the activated OU:
  // the ratio of Eq. 4's effective conductance to the pristine G_ON.
  const double elapsed = std::max(t_s - programmed_at_s_, device_.t0_s);
  return effective_conductance(device_, elapsed, ou_rows, ou_cols) /
         device_.g_on_s;
}

double Crossbar::ir_factor_at(double t_s, int row_in_ou,
                              int col_in_ou) const {
  // Cell-position path length: (r + 1) wordline + (c + 1) bitline segments.
  const double elapsed = std::max(t_s - programmed_at_s_, device_.t0_s);
  const double g_drift = drift_conductance(device_, elapsed);
  const double series =
      device_.r_wire_ohm * static_cast<double>(row_in_ou + col_in_ou + 2);
  return (1.0 / (1.0 / g_drift + series)) / g_drift;
}

double Crossbar::cell_drift_factor(std::size_t idx, double elapsed_s) const {
  const double v = drift_coeff_.empty() ? device_.drift_coefficient
                                        : drift_coeff_[idx];
  return std::pow(std::max(elapsed_s, device_.t0_s) / device_.t0_s, -v);
}

double Crossbar::ensure_planes(double t_s) const {
  const double elapsed = std::max(t_s - programmed_at_s_, device_.t0_s);
  if (elapsed == plane_elapsed_) return elapsed;
  // Uniform (device-nominal) drift factor — the whole drift story when no
  // NoiseModel sampled per-cell exponents.
  uniform_drift_factor_ =
      std::pow(std::max(elapsed, device_.t0_s) / device_.t0_s,
               -device_.drift_coefficient);
  if (ir_model_ == IrModel::kSpatial) {
    // ir_factor_at depends only on (r_in_ou + c_in_ou), so one diagonal
    // table covers every OU shape; the kernel indexes it at c + r, which
    // is unit-stride along the inner row loop.
    const double g_drift = drift_conductance(device_, elapsed);
    ir_table_.resize(static_cast<std::size_t>(2 * size_ - 1));
    for (int s = 0; s < 2 * size_ - 1; ++s) {
      const double series =
          device_.r_wire_ohm * static_cast<double>(s + 2);
      ir_table_[static_cast<std::size_t>(s)] =
          (1.0 / (1.0 / g_drift + series)) / g_drift;
    }
  } else {
    // Same diagonal trick for the lumped model: ir_factor depends only on
    // ou_rows + ou_cols, and recomputing it per OU call costs two pows —
    // which would dominate small-OU passes (a 4x4 sweep of a 128x128
    // array makes 1024 of them).
    const double g_drift = drift_conductance(device_, elapsed);
    lumped_ir_table_.resize(static_cast<std::size_t>(2 * size_ + 1));
    for (int s = 0; s <= 2 * size_; ++s) {
      const double series = device_.r_wire_ohm * static_cast<double>(s);
      lumped_ir_table_[static_cast<std::size_t>(s)] =
          (1.0 / (1.0 / g_drift + series)) / g_drift;
    }
  }
  if (!drift_coeff_.empty()) {
    // Per-cell drift: one pow per cell per *distinct timestamp* instead of
    // per access. eff_plane_ folds the factor into the weight plane so the
    // noiseless kernel stays a plain dot product.
    const std::size_t cells = conductance_s_.size();
    drift_plane_.resize(cells);
    eff_plane_.resize(cells);
    for (int c = 0; c < size_; ++c) {
      for (int r = 0; r < size_; ++r) {
        const std::size_t rm = static_cast<std::size_t>(r) * size_ + c;
        const std::size_t cm = static_cast<std::size_t>(c) * size_ + r;
        const double f = cell_drift_factor(rm, elapsed);
        drift_plane_[cm] = f;
        eff_plane_[cm] = weight_plane_[cm] * f;
      }
    }
  }
  plane_elapsed_ = elapsed;
  return elapsed;
}

double Crossbar::effective_weight(int row, int col, double t_s, int ou_rows,
                                  int ou_cols) const {
  ensure_planes(t_s);
  const std::size_t cm = static_cast<std::size_t>(col) * size_ + row;
  const double drift =
      drift_coeff_.empty() ? uniform_drift_factor_ : drift_plane_[cm];
  const double ir =
      ir_model_ == IrModel::kSpatial
          ? ir_table_[static_cast<std::size_t>(row % ou_rows +
                                               col % ou_cols)]
          : lumped_ir_table_[static_cast<std::size_t>(ou_rows + ou_cols)];
  return weight_plane_[cm] * drift * ir;
}

double Crossbar::quantize_adc(double value, double full_scale,
                              int adc_bits) const {
  assert(adc_bits >= 1 && full_scale > 0.0);
  const double levels = static_cast<double>((1 << adc_bits) - 1);
  // Bipolar ADC: the differential column current spans [-FS, +FS].
  const double clamped = std::clamp(value, -full_scale, full_scale);
  const double code = std::round((clamped + full_scale) / (2 * full_scale) *
                                 levels);
  return code / levels * 2 * full_scale - full_scale;
}

void Crossbar::ou_kernel(std::span<const double> input, int row0, int ou_rows,
                         int col0, int ou_cols, double t_s, int adc_bits,
                         std::uint64_t epoch, std::span<double> out,
                         bool accumulate) {
  const bool spatial = ir_model_ == IrModel::kSpatial;
  const double lumped_ir =
      spatial ? 1.0
              : lumped_ir_table_[static_cast<std::size_t>(ou_rows + ou_cols)];
  const bool uniform_drift = drift_coeff_.empty();
  const double nominal_drift = uniform_drift ? uniform_drift_factor_ : 1.0;
  const double full_scale = static_cast<double>(ou_rows);
  if (!noise_) {
    // Dense branch-free path: the plane already holds sign * weight (and
    // the drift factor when it is per-cell); the inner row loop is a
    // unit-stride dot product. Zero-sign cells contribute exact zeros, so
    // the accumulator matches the old skip-if-zero walk bit for bit.
    const double* plane =
        (uniform_drift ? weight_plane_ : eff_plane_).data();
    for (int c = 0; c < ou_cols; ++c) {
      const double* col =
          plane + static_cast<std::size_t>(col0 + c) * size_ + row0;
      double acc = 0.0;
      if (spatial) {
        const double* irt = ir_table_.data() + c;  // irt[r] = ir(r + c)
        for (int r = 0; r < ou_rows; ++r) {
          const double w = col[r] * irt[r];
          acc += input[static_cast<std::size_t>(r)] * w;
        }
      } else {
        for (int r = 0; r < ou_rows; ++r)
          acc += input[static_cast<std::size_t>(r)] * col[r];
      }
      acc *= lumped_ir * nominal_drift;
      const double q = quantize_adc(acc, full_scale, adc_bits);
      if (accumulate)
        out[static_cast<std::size_t>(c)] += q;
      else
        out[static_cast<std::size_t>(c)] = q;
    }
    return;
  }
  // Noisy path: conductances are perturbed per access, so the weight
  // conversion cannot be precomputed — but the drift plane and IR table
  // still replace the per-cell pow / divisions.
  const bool counter = read_stream_ == ReadNoiseStream::kCounterBased;
  const std::uint64_t cells =
      static_cast<std::uint64_t>(size_) * static_cast<std::uint64_t>(size_);
  for (int c = 0; c < ou_cols; ++c) {
    const std::size_t col_base =
        static_cast<std::size_t>(col0 + c) * size_ + row0;
    const double* drift_col =
        uniform_drift ? nullptr : drift_plane_.data() + col_base;
    const double* irt = spatial ? ir_table_.data() + c : nullptr;
    double acc = 0.0;
    for (int r = 0; r < ou_rows; ++r) {
      const std::size_t idx =
          static_cast<std::size_t>(row0 + r) * size_ + (col0 + c);
      if (sign_[idx] == 0) continue;
      double g = conductance_s_[idx];
      g = counter ? noise_->read_at(g, epoch * cells + idx)
                  : noise_->read(g);
      double w = sign_[idx] * conductance_to_weight(device_, g);
      if (!uniform_drift) w *= drift_col[r];
      if (spatial) w *= irt[r];
      acc += input[static_cast<std::size_t>(r)] * w;
    }
    acc *= lumped_ir * nominal_drift;
    const double q = quantize_adc(acc, full_scale, adc_bits);
    if (accumulate)
      out[static_cast<std::size_t>(c)] += q;
    else
      out[static_cast<std::size_t>(c)] = q;
  }
}

void Crossbar::mvm_ou(std::span<const double> input, int row0, int ou_rows,
                      int col0, int ou_cols, double t_s, int adc_bits,
                      std::span<double> out) {
  assert(static_cast<int>(input.size()) == ou_rows);
  assert(static_cast<int>(out.size()) >= ou_cols);
  assert(row0 >= 0 && row0 + ou_rows <= size_);
  assert(col0 >= 0 && col0 + ou_cols <= size_);
  ensure_planes(t_s);
  std::uint64_t epoch = 0;
  if (noise_ && read_stream_ == ReadNoiseStream::kCounterBased)
    epoch = mvm_epoch_++;
  ou_kernel(input, row0, ou_rows, col0, ou_cols, t_s, adc_bits, epoch, out,
            /*accumulate=*/false);
}

void Crossbar::mvm_ou(std::span<const double> inputs, int batch, int row0,
                      int ou_rows, int col0, int ou_cols, double t_s,
                      int adc_bits, std::span<double> out) {
  assert(batch >= 1);
  assert(inputs.size() >=
         static_cast<std::size_t>(batch) * static_cast<std::size_t>(ou_rows));
  assert(out.size() >=
         static_cast<std::size_t>(batch) * static_cast<std::size_t>(ou_cols));
  if (noise_) {
    // Perturbed conductances force a per-query walk; going through the
    // public single-query entry keeps each query's epoch / RNG draw order
    // exactly what a standalone call would have used.
    for (int b = 0; b < batch; ++b)
      mvm_ou(inputs.subspan(static_cast<std::size_t>(b) * ou_rows,
                            static_cast<std::size_t>(ou_rows)),
             row0, ou_rows, col0, ou_cols, t_s, adc_bits,
             out.subspan(static_cast<std::size_t>(b) * ou_cols,
                         static_cast<std::size_t>(ou_cols)));
    return;
  }
  assert(row0 >= 0 && row0 + ou_rows <= size_);
  assert(col0 >= 0 && col0 + ou_cols <= size_);
  ensure_planes(t_s);
  const std::size_t nb = static_cast<std::size_t>(batch);
  batch_in_t_.resize(static_cast<std::size_t>(ou_rows) * nb);
  batch_acc_.resize(static_cast<std::size_t>(ou_cols) * nb);
  for (int b = 0; b < batch; ++b)
    for (int r = 0; r < ou_rows; ++r)
      batch_in_t_[static_cast<std::size_t>(r) * nb + b] =
          inputs[static_cast<std::size_t>(b) * ou_rows + r];
  const bool spatial = ir_model_ == IrModel::kSpatial;
  const bool uniform_drift = drift_coeff_.empty();
  const double* plane = (uniform_drift ? weight_plane_ : eff_plane_).data();
  gemm::ou_gemm(batch_in_t_.data(), batch, ou_rows,
                plane + static_cast<std::size_t>(col0) * size_ + row0, size_,
                ou_cols, spatial ? ir_table_.data() : nullptr,
                batch_acc_.data());
  // Same epilogue as the single-query kernel: acc * (lumped_ir *
  // nominal_drift), then the bipolar ADC, per (query, column).
  const double lumped_ir =
      spatial ? 1.0
              : lumped_ir_table_[static_cast<std::size_t>(ou_rows + ou_cols)];
  const double nominal_drift = uniform_drift ? uniform_drift_factor_ : 1.0;
  const double factor = lumped_ir * nominal_drift;
  const double full_scale = static_cast<double>(ou_rows);
  for (int c = 0; c < ou_cols; ++c) {
    const double* accc = batch_acc_.data() + static_cast<std::size_t>(c) * nb;
    for (int b = 0; b < batch; ++b)
      out[static_cast<std::size_t>(b) * ou_cols + c] =
          quantize_adc(accc[b] * factor, full_scale, adc_bits);
  }
}

std::vector<double> Crossbar::mvm_ou(std::span<const double> input, int row0,
                                     int ou_rows, int col0, int ou_cols,
                                     double t_s, int adc_bits) {
  std::vector<double> out(static_cast<std::size_t>(ou_cols), 0.0);
  mvm_ou(input, row0, ou_rows, col0, ou_cols, t_s, adc_bits,
         std::span<double>(out));
  return out;
}

void Crossbar::mvm(std::span<const double> input, int ou_rows, int ou_cols,
                   double t_s, int adc_bits, std::span<double> out) {
  assert(static_cast<int>(input.size()) >= live_rows_);
  assert(static_cast<int>(out.size()) >= live_cols_);
  std::fill(out.begin(), out.begin() + live_cols_, 0.0);
  ensure_planes(t_s);
  const bool counter =
      noise_ && read_stream_ == ReadNoiseStream::kCounterBased;
  std::uint64_t epoch = 0;
  if (counter) epoch = mvm_epoch_++;
  // Column blocks write disjoint output ranges, and each column's partial
  // sums accumulate in increasing-r0 order regardless of scheduling, so
  // results are bitwise identical to the sequential pass. With the legacy
  // sequential noise stream the draw order pins the OU visit order, so
  // that path stays sequential; the counter-based stream is
  // schedule-independent and rides the parallel path.
  const std::size_t col_blocks = static_cast<std::size_t>(
      (live_cols_ + ou_cols - 1) / std::max(ou_cols, 1));
  auto column_block = [&](std::size_t i) {
    const int c0 = static_cast<int>(i) * ou_cols;
    const int cols = std::min(ou_cols, live_cols_ - c0);
    for (int r0 = 0; r0 < live_rows_; r0 += ou_rows) {
      const int rows = std::min(ou_rows, live_rows_ - r0);
      const std::span<const double> slice{input.data() + r0,
                                          static_cast<std::size_t>(rows)};
      ou_kernel(slice, r0, rows, c0, cols, t_s, adc_bits, epoch,
                out.subspan(static_cast<std::size_t>(c0),
                            static_cast<std::size_t>(cols)),
                /*accumulate=*/true);
    }
  };
  if (noise_ && !counter) {
    // Original OU visit order (r0 outer), which fixes the RNG draw order.
    for (int r0 = 0; r0 < live_rows_; r0 += ou_rows) {
      const int rows = std::min(ou_rows, live_rows_ - r0);
      const std::span<const double> slice{input.data() + r0,
                                          static_cast<std::size_t>(rows)};
      for (int c0 = 0; c0 < live_cols_; c0 += ou_cols) {
        const int cols = std::min(ou_cols, live_cols_ - c0);
        ou_kernel(slice, r0, rows, c0, cols, t_s, adc_bits, epoch,
                  out.subspan(static_cast<std::size_t>(c0),
                              static_cast<std::size_t>(cols)),
                  /*accumulate=*/true);
      }
    }
  } else {
    const std::size_t block_cost_ns =
        static_cast<std::size_t>(live_rows_) *
        static_cast<std::size_t>(std::max(ou_cols, 1)) *
        (counter ? kNoisyCellCostNs : kPlaneCellCostNs);
    common::parallel_for(0, col_blocks, 1, column_block, block_cost_ns);
  }
}

void Crossbar::mvm(std::span<const double> inputs, int batch,
                   std::size_t in_stride, int ou_rows, int ou_cols, double t_s,
                   int adc_bits, std::span<double> out,
                   std::size_t out_stride) {
  assert(batch >= 1);
  assert(in_stride >= static_cast<std::size_t>(live_rows_));
  assert(out_stride >= static_cast<std::size_t>(live_cols_));
  assert(inputs.size() >= static_cast<std::size_t>(batch - 1) * in_stride +
                              static_cast<std::size_t>(live_rows_));
  assert(out.size() >= static_cast<std::size_t>(batch - 1) * out_stride +
                           static_cast<std::size_t>(live_cols_));
  if (noise_) {
    // Per-query path (see the batched mvm_ou): preserves each query's
    // epoch and RNG draw order exactly.
    for (int b = 0; b < batch; ++b)
      mvm(inputs.subspan(static_cast<std::size_t>(b) * in_stride,
                         static_cast<std::size_t>(live_rows_)),
          ou_rows, ou_cols, t_s, adc_bits,
          out.subspan(static_cast<std::size_t>(b) * out_stride,
                      static_cast<std::size_t>(live_cols_)));
    return;
  }
  for (int b = 0; b < batch; ++b) {
    double* ob = out.data() + static_cast<std::size_t>(b) * out_stride;
    std::fill(ob, ob + live_cols_, 0.0);
  }
  ensure_planes(t_s);
  if (live_rows_ == 0 || live_cols_ == 0) return;
  const std::size_t nb = static_cast<std::size_t>(batch);
  // Transpose the query panel once: in_t[r * batch + b]. This is the whole
  // cache-tiling story — every OU tile of every column block then reads
  // contiguous batch-rows, and each plane column is walked once per batch
  // instead of once per query.
  batch_in_t_.resize(static_cast<std::size_t>(live_rows_) * nb);
  for (int b = 0; b < batch; ++b)
    for (int r = 0; r < live_rows_; ++r)
      batch_in_t_[static_cast<std::size_t>(r) * nb + b] =
          inputs[static_cast<std::size_t>(b) * in_stride + r];
  const bool spatial = ir_model_ == IrModel::kSpatial;
  const bool uniform_drift = drift_coeff_.empty();
  const double* plane = (uniform_drift ? weight_plane_ : eff_plane_).data();
  const double* irt = spatial ? ir_table_.data() : nullptr;
  const double nominal_drift = uniform_drift ? uniform_drift_factor_ : 1.0;
  const std::size_t col_blocks = static_cast<std::size_t>(
      (live_cols_ + ou_cols - 1) / std::max(ou_cols, 1));
  // Each column block owns a disjoint accumulator slab and a disjoint
  // output column range, so blocks parallelize exactly like the
  // single-query path; per query the r0 tiles accumulate in increasing
  // order, keeping results bitwise identical to sequential calls.
  const std::size_t block_acc = static_cast<std::size_t>(ou_cols) * nb;
  batch_acc_.resize(col_blocks * block_acc);
  auto column_block = [&](std::size_t i) {
    const int c0 = static_cast<int>(i) * ou_cols;
    const int cols = std::min(ou_cols, live_cols_ - c0);
    double* acc = batch_acc_.data() + i * block_acc;
    for (int r0 = 0; r0 < live_rows_; r0 += ou_rows) {
      const int rows = std::min(ou_rows, live_rows_ - r0);
      gemm::ou_gemm(batch_in_t_.data() + static_cast<std::size_t>(r0) * nb,
                    batch, rows,
                    plane + static_cast<std::size_t>(c0) * size_ + r0, size_,
                    cols, irt, acc);
      const double lumped_ir =
          spatial
              ? 1.0
              : lumped_ir_table_[static_cast<std::size_t>(rows + cols)];
      const double factor = lumped_ir * nominal_drift;
      const double full_scale = static_cast<double>(rows);
      for (int c = 0; c < cols; ++c) {
        const double* accc = acc + static_cast<std::size_t>(c) * nb;
        for (int b = 0; b < batch; ++b)
          out[static_cast<std::size_t>(b) * out_stride + c0 + c] +=
              quantize_adc(accc[b] * factor, full_scale, adc_bits);
      }
    }
  };
  const std::size_t block_cost_ns = static_cast<std::size_t>(live_rows_) *
                                    static_cast<std::size_t>(ou_cols) * nb *
                                    kPlaneCellCostNs;
  common::parallel_for(0, col_blocks, 1, column_block, block_cost_ns);
}

std::vector<double> Crossbar::mvm(std::span<const double> input, int ou_rows,
                                  int ou_cols, double t_s, int adc_bits) {
  std::vector<double> out(static_cast<std::size_t>(live_cols_), 0.0);
  mvm(input, ou_rows, ou_cols, t_s, adc_bits, std::span<double>(out));
  return out;
}

std::vector<double> Crossbar::ideal_mvm(std::span<const double> input) const {
  assert(static_cast<int>(input.size()) >= live_rows_);
  std::vector<double> out(static_cast<std::size_t>(live_cols_), 0.0);
  // Column-major plane walk: per output column the accumulation order over
  // r is the same increasing-r order the row-major walk produced, so the
  // result is unchanged — but the inner loop is now a unit-stride dot
  // product with no per-cell conversion.
  for (int c = 0; c < live_cols_; ++c) {
    const double* col =
        weight_plane_.data() + static_cast<std::size_t>(c) * size_;
    double acc = 0.0;
    for (int r = 0; r < live_rows_; ++r)
      acc += input[static_cast<std::size_t>(r)] * col[r];
    out[static_cast<std::size_t>(c)] = acc;
  }
  return out;
}

double Crossbar::weight_rms_error(double t_s, int ou_rows, int ou_cols) const {
  if (live_rows_ == 0 || live_cols_ == 0) return 0.0;
  ensure_planes(t_s);
  const bool spatial = ir_model_ == IrModel::kSpatial;
  const bool uniform_drift = drift_coeff_.empty();
  const double lumped_ir =
      spatial ? 1.0
              : lumped_ir_table_[static_cast<std::size_t>(ou_rows + ou_cols)];
  double acc = 0.0;
  std::int64_t n = 0;
  // Row-major accumulation order preserved; the per-cell values come from
  // the planes instead of a pow + divisions per cell.
  for (int r = 0; r < live_rows_; ++r) {
    for (int c = 0; c < live_cols_; ++c) {
      const std::size_t cm = static_cast<std::size_t>(c) * size_ + r;
      const double ideal = weight_plane_[cm];
      const double driftw = uniform_drift
                                ? ideal * uniform_drift_factor_
                                : eff_plane_[cm];
      const double ir =
          spatial ? ir_table_[static_cast<std::size_t>(r % ou_rows +
                                                       c % ou_cols)]
                  : lumped_ir;
      const double eff = driftw * ir;
      const double d = ideal - eff;
      acc += d * d;
      ++n;
    }
  }
  return std::sqrt(acc / static_cast<double>(n));
}

}  // namespace odin::reram
