#include "reram/crossbar.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/parallel.hpp"

namespace odin::reram {

Crossbar::Crossbar(int size, DeviceParams device,
                   std::optional<NoiseModel> noise, IrModel ir_model)
    : size_(size),
      device_(device),
      noise_(std::move(noise)),
      ir_model_(ir_model),
      conductance_s_(static_cast<std::size_t>(size) * size, device.g_off_s),
      sign_(static_cast<std::size_t>(size) * size, 0) {
  assert(size > 0);
}

void Crossbar::attach_endurance(const EnduranceModel& model,
                                std::uint64_t seed) {
  common::Rng rng(seed);
  wear_lifetime_.resize(conductance_s_.size());
  wear_polarity_.resize(conductance_s_.size());
  for (std::size_t i = 0; i < wear_lifetime_.size(); ++i) {
    wear_lifetime_[i] = model.sample_lifetime(rng);
    wear_polarity_[i] = static_cast<std::int8_t>(
        rng.bernoulli(0.5) ? CellFault::kStuckOn : CellFault::kStuckOff);
  }
}

void Crossbar::program(std::span<const double> weights, int rows, int cols,
                       double at_time_s) {
  assert(rows >= 0 && rows <= size_ && cols >= 0 && cols <= size_);
  assert(weights.size() == static_cast<std::size_t>(rows) * cols);
  programmed_cells_ = 0;
  ++program_campaigns_;
  if (noise_ && drift_coeff_.empty())
    drift_coeff_.assign(conductance_s_.size(), device_.drift_coefficient);
  // Stuck-at-faults are a property of the array, not of a write: sample
  // them once, on the first programming pass.
  const bool sample_faults = noise_ && fault_.empty() &&
                             (noise_->params().stuck_on_rate > 0.0 ||
                              noise_->params().stuck_off_rate > 0.0);
  if (sample_faults) {
    fault_.assign(conductance_s_.size(),
                  static_cast<std::int8_t>(CellFault::kNone));
    for (std::int8_t& f : fault_) {
      const CellFault cell = noise_->cell_fault();
      f = static_cast<std::int8_t>(cell);
      if (cell != CellFault::kNone) ++faulty_cells_;
    }
  }
  // Endurance wear: this campaign may push cells past their lifetime. Worn
  // cells join the permanent fault map and, like the sampled stuck-at
  // population, survive every later write.
  if (!wear_lifetime_.empty()) {
    if (fault_.empty())
      fault_.assign(conductance_s_.size(),
                    static_cast<std::int8_t>(CellFault::kNone));
    for (std::size_t i = 0; i < wear_lifetime_.size(); ++i) {
      if (wear_lifetime_[i] <= static_cast<double>(program_campaigns_) &&
          static_cast<CellFault>(fault_[i]) == CellFault::kNone) {
        fault_[i] = wear_polarity_[i];
        ++faulty_cells_;
      }
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double w = weights[static_cast<std::size_t>(r) * cols + c];
      const std::size_t idx = static_cast<std::size_t>(r) * size_ + c;
      double g = quantize_weight_to_conductance(device_, std::abs(w));
      if (noise_) {
        g = noise_->programmed(g);
        drift_coeff_[idx] = noise_->cell_drift_coefficient(device_);
      }
      std::int8_t sign =
          static_cast<std::int8_t>(w > 0.0 ? 1 : (w < 0.0 ? -1 : 0));
      if (!fault_.empty()) {
        const auto f = static_cast<CellFault>(fault_[idx]);
        if (f == CellFault::kStuckOn) {
          g = device_.g_on_s;
          if (sign == 0) sign = 1;  // the stuck filament conducts anyway
        } else if (f == CellFault::kStuckOff) {
          g = device_.g_off_s;
          sign = 0;
        }
      }
      conductance_s_[idx] = g;
      sign_[idx] = sign;
      if (sign_[idx] != 0) ++programmed_cells_;
    }
  }
  programmed_at_s_ = at_time_s;
  live_rows_ = rows;
  live_cols_ = cols;
}

double Crossbar::ideal_weight(int row, int col) const {
  const std::size_t idx = static_cast<std::size_t>(row) * size_ + col;
  if (sign_[idx] == 0) return 0.0;
  return sign_[idx] * conductance_to_weight(device_, conductance_s_[idx]);
}

double Crossbar::degradation_factor(double t_s, int ou_rows,
                                    int ou_cols) const {
  // Multiplicative degradation shared by all cells in the activated OU:
  // the ratio of Eq. 4's effective conductance to the pristine G_ON.
  const double elapsed = std::max(t_s - programmed_at_s_, device_.t0_s);
  return effective_conductance(device_, elapsed, ou_rows, ou_cols) /
         device_.g_on_s;
}

double Crossbar::ir_factor(double t_s, int ou_rows, int ou_cols) const {
  const double elapsed = std::max(t_s - programmed_at_s_, device_.t0_s);
  return effective_conductance(device_, elapsed, ou_rows, ou_cols) /
         drift_conductance(device_, elapsed);
}

double Crossbar::ir_factor_at(double t_s, int row_in_ou,
                              int col_in_ou) const {
  // Cell-position path length: (r + 1) wordline + (c + 1) bitline segments.
  const double elapsed = std::max(t_s - programmed_at_s_, device_.t0_s);
  const double g_drift = drift_conductance(device_, elapsed);
  const double series =
      device_.r_wire_ohm * static_cast<double>(row_in_ou + col_in_ou + 2);
  return (1.0 / (1.0 / g_drift + series)) / g_drift;
}

double Crossbar::cell_drift_factor(std::size_t idx, double elapsed_s) const {
  const double v = drift_coeff_.empty() ? device_.drift_coefficient
                                        : drift_coeff_[idx];
  return std::pow(std::max(elapsed_s, device_.t0_s) / device_.t0_s, -v);
}

double Crossbar::effective_weight(int row, int col, double t_s, int ou_rows,
                                  int ou_cols) const {
  const std::size_t idx = static_cast<std::size_t>(row) * size_ + col;
  const double elapsed = std::max(t_s - programmed_at_s_, device_.t0_s);
  const double ir = ir_model_ == IrModel::kSpatial
                        ? ir_factor_at(t_s, row % ou_rows, col % ou_cols)
                        : ir_factor(t_s, ou_rows, ou_cols);
  return ideal_weight(row, col) * cell_drift_factor(idx, elapsed) * ir;
}

double Crossbar::quantize_adc(double value, double full_scale,
                              int adc_bits) const {
  assert(adc_bits >= 1 && full_scale > 0.0);
  const double levels = static_cast<double>((1 << adc_bits) - 1);
  // Bipolar ADC: the differential column current spans [-FS, +FS].
  const double clamped = std::clamp(value, -full_scale, full_scale);
  const double code = std::round((clamped + full_scale) / (2 * full_scale) *
                                 levels);
  return code / levels * 2 * full_scale - full_scale;
}

std::vector<double> Crossbar::mvm_ou(std::span<const double> input, int row0,
                                     int ou_rows, int col0, int ou_cols,
                                     double t_s, int adc_bits) {
  assert(static_cast<int>(input.size()) == ou_rows);
  assert(row0 >= 0 && row0 + ou_rows <= size_);
  assert(col0 >= 0 && col0 + ou_cols <= size_);
  const double elapsed = std::max(t_s - programmed_at_s_, device_.t0_s);
  const bool spatial = ir_model_ == IrModel::kSpatial;
  const double lumped_ir = spatial ? 1.0 : ir_factor(t_s, ou_rows, ou_cols);
  const bool uniform_drift = drift_coeff_.empty();
  const double nominal_drift =
      uniform_drift ? cell_drift_factor(0, elapsed) : 1.0;
  std::vector<double> out(static_cast<std::size_t>(ou_cols), 0.0);
  for (int c = 0; c < ou_cols; ++c) {
    double acc = 0.0;
    for (int r = 0; r < ou_rows; ++r) {
      const std::size_t idx =
          static_cast<std::size_t>(row0 + r) * size_ + (col0 + c);
      if (sign_[idx] == 0) continue;
      double g = conductance_s_[idx];
      if (noise_) g = noise_->read(g);
      double w = sign_[idx] * conductance_to_weight(device_, g);
      if (!uniform_drift) w *= cell_drift_factor(idx, elapsed);
      if (spatial) w *= ir_factor_at(t_s, r, c);
      acc += input[static_cast<std::size_t>(r)] * w;
    }
    acc *= lumped_ir * nominal_drift;
    out[static_cast<std::size_t>(c)] =
        quantize_adc(acc, static_cast<double>(ou_rows), adc_bits);
  }
  return out;
}

std::vector<double> Crossbar::mvm(std::span<const double> input, int ou_rows,
                                  int ou_cols, double t_s, int adc_bits) {
  assert(static_cast<int>(input.size()) >= live_rows_);
  std::vector<double> out(static_cast<std::size_t>(live_cols_), 0.0);
  // Column blocks write disjoint output ranges, and each column's partial
  // sums accumulate in increasing-r0 order regardless of scheduling, so
  // results are bitwise identical to the sequential pass. Read noise draws
  // from the crossbar's single RNG stream, so the noisy path must stay
  // sequential to preserve the draw order.
  const std::size_t col_blocks = static_cast<std::size_t>(
      (live_cols_ + ou_cols - 1) / std::max(ou_cols, 1));
  auto column_block = [&](std::size_t i) {
    const int c0 = static_cast<int>(i) * ou_cols;
    const int cols = std::min(ou_cols, live_cols_ - c0);
    for (int r0 = 0; r0 < live_rows_; r0 += ou_rows) {
      const int rows = std::min(ou_rows, live_rows_ - r0);
      const std::span<const double> slice{input.data() + r0,
                                          static_cast<std::size_t>(rows)};
      const auto part = mvm_ou(slice, r0, rows, c0, cols, t_s, adc_bits);
      for (int c = 0; c < cols; ++c)
        out[static_cast<std::size_t>(c0 + c)] +=
            part[static_cast<std::size_t>(c)];
    }
  };
  if (noise_) {
    // Original OU visit order (r0 outer), which fixes the RNG draw order.
    for (int r0 = 0; r0 < live_rows_; r0 += ou_rows) {
      const int rows = std::min(ou_rows, live_rows_ - r0);
      const std::span<const double> slice{input.data() + r0,
                                          static_cast<std::size_t>(rows)};
      for (int c0 = 0; c0 < live_cols_; c0 += ou_cols) {
        const int cols = std::min(ou_cols, live_cols_ - c0);
        const auto part = mvm_ou(slice, r0, rows, c0, cols, t_s, adc_bits);
        for (int c = 0; c < cols; ++c)
          out[static_cast<std::size_t>(c0 + c)] +=
              part[static_cast<std::size_t>(c)];
      }
    }
  } else {
    common::parallel_for(0, col_blocks, 1, column_block);
  }
  return out;
}

std::vector<double> Crossbar::ideal_mvm(std::span<const double> input) const {
  assert(static_cast<int>(input.size()) >= live_rows_);
  std::vector<double> out(static_cast<std::size_t>(live_cols_), 0.0);
  for (int r = 0; r < live_rows_; ++r) {
    const double x = input[static_cast<std::size_t>(r)];
    if (x == 0.0) continue;
    for (int c = 0; c < live_cols_; ++c)
      out[static_cast<std::size_t>(c)] += x * ideal_weight(r, c);
  }
  return out;
}

double Crossbar::weight_rms_error(double t_s, int ou_rows, int ou_cols) const {
  if (live_rows_ == 0 || live_cols_ == 0) return 0.0;
  double acc = 0.0;
  std::int64_t n = 0;
  for (int r = 0; r < live_rows_; ++r) {
    for (int c = 0; c < live_cols_; ++c) {
      const double d =
          ideal_weight(r, c) - effective_weight(r, c, t_s, ou_rows, ou_cols);
      acc += d * d;
      ++n;
    }
  }
  return std::sqrt(acc / static_cast<double>(n));
}

}  // namespace odin::reram
