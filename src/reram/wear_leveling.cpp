#include "reram/wear_leveling.hpp"

#include <algorithm>

#include "common/env.hpp"

namespace odin::reram {

int WearLevelingParams::resolved_spare_rows() const {
  long long v = spare_rows;
  if (v <= 0) {
    v = 16;
    common::env_long("ODIN_SPARE_ROWS", v);
  }
  return static_cast<int>(std::clamp<long long>(v, 1, 512));
}

double WearLevelingParams::resolved_wear_budget() const {
  long long v = wear_budget_percent;
  if (v <= 0) {
    v = 80;
    common::env_long("ODIN_WEAR_BUDGET", v);
  }
  return static_cast<double>(std::clamp<long long>(v, 1, 100)) / 100.0;
}

void encode_wear_map(const WearMap& map, common::ByteWriter& out) {
  out.i32(map.rows);
  out.i32(map.spare_rows);
  out.i64(map.rotation);
  out.i64(map.rows_remapped);
  out.i64(map.writes_leveled);
  out.u64(map.row_writes.size());
  for (std::int64_t w : map.row_writes) out.i64(w);
  out.u64(map.retired.size());
  for (std::uint8_t r : map.retired) out.boolean(r != 0);
  out.u64(map.remap.size());
  for (std::int32_t p : map.remap) out.i32(p);
}

std::optional<WearMap> decode_wear_map(common::ByteReader& in) {
  WearMap map;
  map.rows = in.i32();
  map.spare_rows = in.i32();
  map.rotation = in.i64();
  map.rows_remapped = in.i64();
  map.writes_leveled = in.i64();
  const std::uint64_t writes = in.u64();
  if (!in.ok() || writes > (1u << 24)) return std::nullopt;
  map.row_writes.reserve(writes);
  for (std::uint64_t i = 0; i < writes; ++i) map.row_writes.push_back(in.i64());
  const std::uint64_t retired = in.u64();
  if (!in.ok() || retired > (1u << 24)) return std::nullopt;
  map.retired.reserve(retired);
  for (std::uint64_t i = 0; i < retired; ++i)
    map.retired.push_back(in.boolean() ? 1 : 0);
  const std::uint64_t remap = in.u64();
  if (!in.ok() || remap > (1u << 24)) return std::nullopt;
  map.remap.reserve(remap);
  for (std::uint64_t i = 0; i < remap; ++i) map.remap.push_back(in.i32());
  if (!in.ok()) return std::nullopt;
  return map;
}

}  // namespace odin::reram
