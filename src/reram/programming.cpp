#include "reram/programming.hpp"

#include <algorithm>
#include <cmath>

namespace odin::reram {

double ProgramVerifyModel::tolerance_for(
    const DeviceParams& device) const noexcept {
  const double spacing =
      (device.g_on_s - device.g_off_s) /
      static_cast<double>(device.levels() - 1);
  return 0.1 * spacing / device.g_on_s;
}

int ProgramVerifyModel::iterations_for(double rel_tolerance) const noexcept {
  if (rel_tolerance >= params_.initial_sigma) return 1;
  const double k = std::log(rel_tolerance / params_.initial_sigma) /
                   std::log(params_.convergence_rate);
  return std::min(params_.max_iterations,
                  static_cast<int>(std::ceil(k)));
}

common::EnergyLatency ProgramVerifyModel::cell_cost(
    const DeviceParams& device) const noexcept {
  const int iters = iterations_for(tolerance_for(device));
  return common::EnergyLatency{
      .energy_j = params_.reset_energy_j +
                  iters * (params_.pulse_energy_j + params_.verify_energy_j),
      .latency_s = params_.reset_duration_s +
                   iters * (params_.pulse_duration_s +
                            params_.verify_duration_s),
  };
}

double ProgramVerifyModel::row_latency_s(
    const DeviceParams& device) const noexcept {
  return cell_cost(device).latency_s;
}

int ProgramVerifyModel::simulate_write(const DeviceParams& device,
                                       common::Rng& rng) const {
  const double tol = tolerance_for(device);
  double error = params_.initial_sigma * (0.5 + rng.uniform());
  int iters = 0;
  while (error > tol && iters < params_.max_iterations) {
    ++iters;
    // Noisy convergence: each pulse removes a random share of the error
    // around the nominal rate.
    const double rate =
        std::clamp(params_.convergence_rate + 0.1 * rng.normal(), 0.5, 0.99);
    error *= rate;
  }
  return std::max(iters, 1);
}

}  // namespace odin::reram
