#include "reram/fault_injection.hpp"

#include <algorithm>
#include <cassert>

namespace odin::reram {

FaultInjector::FaultInjector(FaultScheduleParams params, std::uint64_t seed)
    : params_(std::move(params)), rng_(seed) {
  assert(params_.tracked_cells > 0 && params_.array_lines > 0);
  const EnduranceModel endurance(params_.endurance);
  lifetimes_.reserve(static_cast<std::size_t>(params_.tracked_cells));
  for (int i = 0; i < params_.tracked_cells; ++i)
    lifetimes_.push_back(endurance.sample_lifetime(rng_));
  std::sort(lifetimes_.begin(), lifetimes_.end());
}

double FaultInjector::leveled_campaigns() const noexcept {
  const int spares = params_.leveling.resolved_spare_rows();
  const double spread =
      static_cast<double>(params_.array_lines) /
      static_cast<double>(params_.array_lines + spares);
  return static_cast<double>(campaigns_ - campaign_base_) * spread;
}

bool FaultInjector::program_campaign() {
  ++campaigns_;
  if (params_.leveling.enabled) {
    // Leveled wear: rotation spreads each campaign over array + spare rows,
    // and the spare pool absorbs worn rows before any cell is visibly
    // stuck. Pool exhaustion retires the crossbar in place — the tenant
    // migrates to a fresh array (lifetimes resampled at this deterministic
    // point in the RNG stream, peripheral failures cleared) rather than
    // serving from a dying one.
    writes_leveled_ += params_.array_lines;
    const int spares = params_.leveling.resolved_spare_rows();
    const int worn = static_cast<int>(
        std::upper_bound(lifetimes_.begin(), lifetimes_.end(),
                         leveled_campaigns()) -
        lifetimes_.begin());
    if (worn > spares) {
      ++crossbars_retired_;
      campaign_base_ = campaigns_;
      remapped_now_ = 0;
      stuck_cells_ = 0;
      failed_wl_ = 0;
      failed_bl_ = 0;
      const EnduranceModel endurance(params_.endurance);
      for (double& life : lifetimes_) life = endurance.sample_lifetime(rng_);
      std::sort(lifetimes_.begin(), lifetimes_.end());
    } else {
      remapped_now_ = worn;
      stuck_cells_ = 0;
    }
    // Peripheral drivers and write-verify convergence as below.
    if (params_.wordline_fail_rate > 0.0) {
      const int alive = params_.array_lines - failed_wl_;
      for (int i = 0; i < alive; ++i)
        if (rng_.bernoulli(params_.wordline_fail_rate)) ++failed_wl_;
    }
    if (params_.bitline_fail_rate > 0.0) {
      const int alive = params_.array_lines - failed_bl_;
      for (int i = 0; i < alive; ++i)
        if (rng_.bernoulli(params_.bitline_fail_rate)) ++failed_bl_;
    }
    return !rng_.bernoulli(params_.write_fail_rate);
  }
  // Endurance wear: cells whose sampled lifetime the campaign count has now
  // crossed become permanently stuck.
  stuck_cells_ = static_cast<int>(
      std::upper_bound(lifetimes_.begin(), lifetimes_.end(),
                       static_cast<double>(campaigns_)) -
      lifetimes_.begin());
  // Peripheral drivers: each still-working line survives this campaign's
  // write stress with probability 1 - rate.
  if (params_.wordline_fail_rate > 0.0) {
    const int alive = params_.array_lines - failed_wl_;
    for (int i = 0; i < alive; ++i)
      if (rng_.bernoulli(params_.wordline_fail_rate)) ++failed_wl_;
  }
  if (params_.bitline_fail_rate > 0.0) {
    const int alive = params_.array_lines - failed_bl_;
    for (int i = 0; i < alive; ++i)
      if (rng_.bernoulli(params_.bitline_fail_rate)) ++failed_bl_;
  }
  // Write-verify convergence of the campaign itself.
  return !rng_.bernoulli(params_.write_fail_rate);
}

bool FaultInjector::fast_forward(const WearState& state) {
  if (state.campaigns < campaigns_) return false;
  while (campaigns_ < state.campaigns) program_campaign();
  return campaigns_ == state.campaigns &&
         stuck_cells_ == state.stuck_cells &&
         failed_wl_ == state.failed_wordlines &&
         failed_bl_ == state.failed_bitlines &&
         crossbars_retired_ == state.crossbars_retired;
}

int FaultInjector::rows_remapped() const noexcept {
  if (!params_.leveling.enabled) return 0;
  return crossbars_retired_ * params_.leveling.resolved_spare_rows() +
         remapped_now_;
}

int FaultInjector::spares_remaining() const noexcept {
  if (!params_.leveling.enabled) return 0;
  return params_.leveling.resolved_spare_rows() - remapped_now_;
}

bool FaultInjector::wear_hot() const noexcept {
  if (!params_.leveling.enabled) return false;
  const EnduranceModel endurance(params_.endurance);
  return leveled_campaigns() >=
         params_.leveling.resolved_wear_budget() *
             endurance.cycles_to_failure_budget(1e-3);
}

double FaultInjector::wear_fraction() const noexcept {
  const EnduranceModel endurance(params_.endurance);
  const double budget = endurance.cycles_to_failure_budget(1e-3);
  const double worn = params_.leveling.enabled
                          ? leveled_campaigns()
                          : static_cast<double>(campaigns_);
  return budget > 0.0 ? worn / budget : 0.0;
}

double FaultInjector::stuck_cell_fraction() const noexcept {
  return static_cast<double>(stuck_cells_) /
         static_cast<double>(params_.tracked_cells);
}

double FaultInjector::peripheral_fraction() const noexcept {
  const double wl = static_cast<double>(failed_wl_) /
                    static_cast<double>(params_.array_lines);
  const double bl = static_cast<double>(failed_bl_) /
                    static_cast<double>(params_.array_lines);
  return 1.0 - (1.0 - wl) * (1.0 - bl);
}

double FaultInjector::fault_fraction() const noexcept {
  const double f =
      1.0 - (1.0 - stuck_cell_fraction()) * (1.0 - peripheral_fraction());
  return std::clamp(f, 0.0, 1.0);
}

bool FaultInjector::powered_down(double t_s) const noexcept {
  for (const DriftBurst& w : power_downs_)
    if (t_s >= w.start_s && t_s < w.start_s + w.duration_s) return true;
  return false;
}

double FaultInjector::drift_time_multiplier(double t_s) const noexcept {
  if (powered_down(t_s)) return 0.0;
  double m = 1.0;
  for (const DriftBurst& b : params_.bursts)
    if (t_s >= b.start_s && t_s < b.start_s + b.duration_s)
      m *= std::max(b.multiplier, 1.0);
  return m;
}

CrossbarHealth read_verify(const Crossbar& xbar, int ou_rows, int ou_cols,
                           double stuck_budget) {
  assert(ou_rows > 0 && ou_cols > 0);
  CrossbarHealth health;
  health.ou_rows = ou_rows;
  health.ou_cols = ou_cols;
  const int rows = xbar.programmed_rows();
  const int cols = xbar.programmed_cols();
  for (int r0 = 0; r0 < rows; r0 += ou_rows) {
    const int wr = std::min(ou_rows, rows - r0);
    for (int c0 = 0; c0 < cols; c0 += ou_cols) {
      const int wc = std::min(ou_cols, cols - c0);
      OuWindowHealth window{r0, c0, 0};
      for (int r = r0; r < r0 + wr; ++r)
        for (int c = c0; c < c0 + wc; ++c)
          if (xbar.cell_fault(r, c) != CellFault::kNone) ++window.stuck;
      health.stuck_cells += window.stuck;
      health.scanned_cells += static_cast<std::int64_t>(wr) * wc;
      health.worst_window_stuck =
          std::max(health.worst_window_stuck, window.stuck);
      health.worst_window_fraction =
          std::max(health.worst_window_fraction,
                   static_cast<double>(window.stuck) /
                       static_cast<double>(wr * wc));
      health.windows.push_back(window);
    }
  }
  if (health.scanned_cells > 0)
    health.fault_fraction = static_cast<double>(health.stuck_cells) /
                            static_cast<double>(health.scanned_cells);
  health.degraded = health.fault_fraction > stuck_budget;
  return health;
}

void encode_health(const CrossbarHealth& health, common::ByteWriter& out) {
  out.i32(health.ou_rows);
  out.i32(health.ou_cols);
  out.i64(health.stuck_cells);
  out.i64(health.scanned_cells);
  out.i32(health.worst_window_stuck);
  out.f64(health.fault_fraction);
  out.f64(health.worst_window_fraction);
  out.boolean(health.degraded);
  out.u64(health.windows.size());
  for (const OuWindowHealth& w : health.windows) {
    out.i32(w.row0);
    out.i32(w.col0);
    out.i32(w.stuck);
  }
}

std::optional<CrossbarHealth> decode_health(common::ByteReader& in) {
  CrossbarHealth health;
  health.ou_rows = in.i32();
  health.ou_cols = in.i32();
  health.stuck_cells = in.i64();
  health.scanned_cells = in.i64();
  health.worst_window_stuck = in.i32();
  health.fault_fraction = in.f64();
  health.worst_window_fraction = in.f64();
  health.degraded = in.boolean();
  const std::uint64_t count = in.u64();
  if (!in.ok() || count > (1u << 24)) return std::nullopt;
  health.windows.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    OuWindowHealth w;
    w.row0 = in.i32();
    w.col0 = in.i32();
    w.stuck = in.i32();
    health.windows.push_back(w);
  }
  if (!in.ok()) return std::nullopt;
  return health;
}

}  // namespace odin::reram
