#include "policy/table_policy.hpp"

#include <cassert>
#include <limits>

namespace odin::policy {

void TablePolicy::add(const Features& features, ou::OuConfig best) {
  Entry entry{features.to_array(), best};
  if (entries_.size() < capacity_) {
    entries_.push_back(entry);
  } else {
    entries_[next_slot_] = entry;
    next_slot_ = (next_slot_ + 1) % capacity_;
  }
}

void TablePolicy::add_dataset(const nn::Dataset& data) {
  assert(data.labels.size() == 2);
  for (std::size_t i = 0; i < data.size(); ++i) {
    Features f;
    f.layer_position = data.inputs(i, 0);
    f.sparsity = data.inputs(i, 1);
    f.kernel = data.inputs(i, 2);
    f.log_time = data.inputs(i, 3);
    add(f, grid_.config_at(data.labels[0][i], data.labels[1][i]));
  }
}

ou::OuConfig TablePolicy::predict(const Features& features) const {
  if (entries_.empty()) return {16, 16};
  const auto phi = features.to_array();
  double best_dist = std::numeric_limits<double>::infinity();
  const Entry* best = nullptr;
  for (const Entry& e : entries_) {
    double d = 0.0;
    for (std::size_t k = 0; k < phi.size(); ++k) {
      const double diff = phi[k] - e.phi[k];
      d += diff * diff;
    }
    if (d < best_dist) {
      best_dist = d;
      best = &e;
    }
  }
  return best->best;
}

double TablePolicy::accuracy_on(const nn::Dataset& data) const {
  if (data.size() == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    Features f;
    f.layer_position = data.inputs(i, 0);
    f.sparsity = data.inputs(i, 1);
    f.kernel = data.inputs(i, 2);
    f.log_time = data.inputs(i, 3);
    const ou::OuConfig pred = predict(f);
    if (pred == grid_.config_at(data.labels[0][i], data.labels[1][i]))
      ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

}  // namespace odin::policy
