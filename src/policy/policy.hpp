// The OU configuration policy pi(Phi, Theta) — paper Sec. III-A / V-A.
//
// A multi-output MLP classifier: 4 input features, a small ReLU trunk, and
// two independent softmax heads of `grid.levels()` classes each (6 for a
// 128x128 crossbar) choosing the discrete OU height and width levels.
#pragma once

#include <cstdint>

#include "nn/mlp.hpp"
#include "nn/train.hpp"
#include "ou/ou_config.hpp"
#include "policy/features.hpp"

namespace odin::policy {

struct PolicyConfig {
  std::size_t hidden_width = 16;
  std::uint64_t init_seed = 0x0d1e;
};

class OuPolicy {
 public:
  OuPolicy(const ou::OuLevelGrid& grid, PolicyConfig config = {});

  /// Independent policy with identical parameters (the MLP's polymorphic
  /// layers make the class move-only; cloning is explicit).
  OuPolicy clone();

  const ou::OuLevelGrid& grid() const noexcept { return grid_; }

  /// pi(Phi): the OU configuration the current parameters choose.
  ou::OuConfig predict(const Features& features);

  /// Per-head (row level, col level) probabilities.
  std::vector<std::vector<double>> predict_proba(const Features& features);

  /// Mean normalized entropy of the two output heads in [0, 1]: 0 = fully
  /// confident, 1 = uniform. Used by the entropy-gated search extension
  /// (skip the search when the policy is confident — cf. the authors'
  /// uncertainty-aware online learning line of work [27]).
  double prediction_entropy(const Features& features);

  /// Train on a supervised dataset of (Phi, best levels) rows.
  ///
  /// Hardened against non-finite supervision: NaN/Inf feature values are
  /// clamped before the gradient steps run (counted in
  /// `sanitized_inputs`), and if training still leaves any weight
  /// non-finite the pre-training parameters are restored wholesale
  /// (counted in `nonfinite_recoveries`), so predict() never sees a
  /// poisoned parameter set.
  nn::TrainResult train(const nn::Dataset& data,
                        const nn::TrainOptions& options);

  /// True when every parameter value is finite.
  bool weights_finite();

  /// Feature values clamped by train()'s input sanitizer (cumulative).
  std::size_t sanitized_inputs() const noexcept { return sanitized_inputs_; }
  /// Trainings whose result was discarded for non-finite weights.
  std::size_t nonfinite_recoveries() const noexcept {
    return nonfinite_recoveries_;
  }

  /// Build one supervised row from a feature vector and a best config.
  static void append_example(nn::Dataset& data, const Features& features,
                             const ou::OuLevelGrid& grid,
                             ou::OuConfig best);

  nn::MultiHeadMlp& mlp() noexcept { return mlp_; }
  std::size_t parameter_count() { return mlp_.parameter_count(); }

 private:
  ou::OuLevelGrid grid_;
  PolicyConfig config_;
  nn::MultiHeadMlp mlp_;
  std::size_t sanitized_inputs_ = 0;
  std::size_t nonfinite_recoveries_ = 0;
};

}  // namespace odin::policy
