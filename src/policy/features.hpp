// Feature extraction — paper Sec. III-A.
//
// Phi_1: neural-layer identifier (position; early layers are more accuracy-
//        critical), normalized by layer count.
// Phi_2: weight sparsity in [0, 1].
// Phi_3: kernel size, normalized by the largest kernel in common use (7).
// Phi_4: inference time elapsed since the device was programmed; drift is a
//        power law, so the feature is log-scaled across the [t0, 1e8 s]
//        horizon.
#pragma once

#include <array>

#include "dnn/layer_desc.hpp"

namespace odin::policy {

struct Features {
  double layer_position = 0.0;  ///< Phi_1, in [0, 1]
  double sparsity = 0.0;        ///< Phi_2, in [0, 1]
  double kernel = 0.0;          ///< Phi_3, in (0, 1]
  double log_time = 0.0;        ///< Phi_4, in [0, 1]

  std::array<double, 4> to_array() const noexcept {
    return {layer_position, sparsity, kernel, log_time};
  }
  static constexpr std::size_t kCount = 4;
};

/// Build the feature vector for `layer` of a `layer_count`-layer network at
/// `elapsed_s` seconds since programming.
Features extract_features(const dnn::LayerDescriptor& layer, int layer_count,
                          double elapsed_s) noexcept;

}  // namespace odin::policy
