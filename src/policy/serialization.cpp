#include "policy/serialization.hpp"

#include <istream>
#include <ostream>
#include <string>

namespace odin::policy {

namespace {
constexpr const char* kMagic = "odin-policy";
constexpr int kVersion = 1;
}  // namespace

void save_policy(const OuPolicy& policy, std::ostream& out) {
  // Serialization needs the parameter values; predict paths are non-const,
  // so we clone through a const_cast-free copy of the handle.
  OuPolicy& mutable_policy = const_cast<OuPolicy&>(policy);
  out << kMagic << ' ' << kVersion << '\n';
  out << policy.grid().crossbar_size() << ' '
      << mutable_policy.mlp().config().hidden.front() << '\n';
  out.precision(17);
  for (nn::Parameter* p : mutable_policy.mlp().parameters()) {
    out << p->value.rows() << ' ' << p->value.cols() << '\n';
    for (double v : p->value.flat()) out << v << ' ';
    out << '\n';
  }
}

void save_policy_binary(const OuPolicy& policy, common::ByteWriter& out) {
  OuPolicy& mutable_policy = const_cast<OuPolicy&>(policy);
  out.i32(policy.grid().crossbar_size());
  out.u64(mutable_policy.mlp().config().hidden.front());
  for (nn::Parameter* p : mutable_policy.mlp().parameters()) {
    out.u64(p->value.rows());
    out.u64(p->value.cols());
    for (double v : p->value.flat()) out.f64(v);
  }
}

std::optional<OuPolicy> load_policy_binary(common::ByteReader& in) {
  const int crossbar = in.i32();
  const std::size_t hidden = in.u64();
  if (!in.ok() || crossbar < 4 || (crossbar & (crossbar - 1)) != 0 ||
      hidden == 0 || hidden > 4096)
    return std::nullopt;

  PolicyConfig config;
  config.hidden_width = hidden;
  OuPolicy policy{ou::OuLevelGrid(crossbar), config};
  for (nn::Parameter* p : policy.mlp().parameters()) {
    const std::size_t rows = in.u64();
    const std::size_t cols = in.u64();
    if (!in.ok() || rows != p->value.rows() || cols != p->value.cols())
      return std::nullopt;
    for (double& v : p->value.flat()) v = in.f64();
  }
  if (!in.ok()) return std::nullopt;
  return policy;
}

std::optional<OuPolicy> load_policy(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic || version != kVersion)
    return std::nullopt;
  int crossbar = 0;
  std::size_t hidden = 0;
  if (!(in >> crossbar >> hidden) || crossbar < 4 || hidden == 0)
    return std::nullopt;

  PolicyConfig config;
  config.hidden_width = hidden;
  OuPolicy policy{ou::OuLevelGrid(crossbar), config};
  for (nn::Parameter* p : policy.mlp().parameters()) {
    std::size_t rows = 0, cols = 0;
    if (!(in >> rows >> cols) || rows != p->value.rows() ||
        cols != p->value.cols())
      return std::nullopt;
    for (double& v : p->value.flat())
      if (!(in >> v)) return std::nullopt;
  }
  return policy;
}

}  // namespace odin::policy
