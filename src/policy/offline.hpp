// Offline policy bootstrap — paper Sec. III / V-A.
//
// The offline policy is trained at design time from known DNNs: for each
// known workload, sampled across the drift horizon, the exhaustive search
// labels every layer with its best OU configuration; up to 500 such
// (Phi, (R,C)*) examples train the MLP policy. The paper's protocol is
// leave-one-family-out: to evaluate on (say) VGG models, the offline policy
// is built from the ResNet / GoogLeNet / DenseNet / ViT workloads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ou/cost_model.hpp"
#include "ou/mapped_model.hpp"
#include "ou/nonideality.hpp"
#include "policy/policy.hpp"

namespace odin::policy {

struct OfflineTrainConfig {
  std::size_t max_examples = 500;  ///< paper: up to 500 training examples
  int time_samples = 8;            ///< per model, log-spaced over horizon
  double t_start_s = 1.0;
  double t_end_s = 1e8;
  nn::TrainOptions train_options{.epochs = 200, .batch_size = 16,
                                 .learning_rate = 1e-2,
                                 .shuffle_seed = 0x0ff1};
  std::uint64_t subsample_seed = 0x5ab5;
};

/// Exhaustively label every (layer, time sample) of the known workloads and
/// build the supervised dataset (capped at max_examples by deterministic
/// uniform subsampling).
nn::Dataset build_offline_dataset(
    std::span<const ou::MappedModel* const> known_models,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    const ou::OuLevelGrid& grid, const OfflineTrainConfig& config = {});

/// Convenience: build the dataset and train a fresh policy on it.
OuPolicy train_offline_policy(
    std::span<const ou::MappedModel* const> known_models,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    const ou::OuLevelGrid& grid, const OfflineTrainConfig& config = {},
    PolicyConfig policy_config = {});

}  // namespace odin::policy
