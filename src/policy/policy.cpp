#include "policy/policy.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace odin::policy {

namespace {
nn::MlpConfig make_mlp_config(const ou::OuLevelGrid& grid,
                              const PolicyConfig& config) {
  nn::MlpConfig mlp;
  mlp.inputs = Features::kCount;
  mlp.hidden = {config.hidden_width};
  mlp.heads = {static_cast<std::size_t>(grid.levels()),
               static_cast<std::size_t>(grid.levels())};
  return mlp;
}
}  // namespace

OuPolicy::OuPolicy(const ou::OuLevelGrid& grid, PolicyConfig config)
    : grid_(grid), config_(config),
      mlp_(make_mlp_config(grid, config), config.init_seed) {}

OuPolicy OuPolicy::clone() {
  OuPolicy out(grid_, config_);
  const auto src = mlp_.parameters();
  const auto dst = out.mlp_.parameters();
  assert(src.size() == dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;
  return out;
}

ou::OuConfig OuPolicy::predict(const Features& features) {
  const auto arr = features.to_array();
  const auto levels = mlp_.predict(arr);
  assert(levels.size() == 2);
  return grid_.config_at(levels[0], levels[1]);
}

std::vector<std::vector<double>> OuPolicy::predict_proba(
    const Features& features) {
  const auto arr = features.to_array();
  return mlp_.predict_proba(arr);
}

double OuPolicy::prediction_entropy(const Features& features) {
  const auto probs = predict_proba(features);
  double total = 0.0;
  for (const auto& head : probs) {
    double h = 0.0;
    for (double p : head)
      if (p > 0.0) h -= p * std::log(p);
    total += h / std::log(static_cast<double>(head.size()));
  }
  return total / static_cast<double>(probs.size());
}

bool OuPolicy::weights_finite() {
  for (nn::Parameter* p : mlp_.parameters())
    for (double v : p->value.flat())
      if (!std::isfinite(v)) return false;
  return true;
}

nn::TrainResult OuPolicy::train(const nn::Dataset& data,
                                const nn::TrainOptions& options) {
  // Input sanitizer: a non-finite feature (corrupted sensor, poisoned
  // supervision) would propagate NaN through every gradient of the batch.
  // Features are normalized to [0, 1] by construction, so clamping into
  // that range is the faithful repair.
  const nn::Dataset* train_data = &data;
  nn::Dataset sanitized;
  std::size_t repaired = 0;
  for (double v : data.inputs.flat())
    if (!(std::isfinite(v) && v >= 0.0 && v <= 1.0)) ++repaired;
  if (repaired > 0) {
    sanitized = data;
    for (double& v : sanitized.inputs.flat()) {
      if (!std::isfinite(v)) v = 0.0;
      v = std::clamp(v, 0.0, 1.0);
    }
    sanitized_inputs_ += repaired;
    train_data = &sanitized;
  }

  // Snapshot the parameters so a training run that still diverges to
  // NaN/Inf (e.g. an exploding loss) can be undone instead of leaving the
  // serving policy unusable.
  std::vector<nn::Matrix> before;
  for (nn::Parameter* p : mlp_.parameters()) before.push_back(p->value);

  const nn::TrainResult result = nn::fit(mlp_, *train_data, options);

  if (!weights_finite()) {
    const auto params = mlp_.parameters();
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i]->value = before[i];
    ++nonfinite_recoveries_;
  }
  return result;
}

void OuPolicy::append_example(nn::Dataset& data, const Features& features,
                              const ou::OuLevelGrid& grid,
                              ou::OuConfig best) {
  const int rl = grid.level_of(best.rows);
  const int cl = grid.level_of(best.cols);
  assert(rl >= 0 && cl >= 0);
  const std::size_t n = data.inputs.rows();
  nn::Matrix grown(n + 1, Features::kCount);
  for (std::size_t r = 0; r < n; ++r) {
    auto src = data.inputs.row(r);
    auto dst = grown.row(r);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  const auto arr = features.to_array();
  for (std::size_t i = 0; i < arr.size(); ++i) grown(n, i) = arr[i];
  data.inputs = std::move(grown);
  if (data.labels.size() != 2) data.labels.assign(2, {});
  data.labels[0].push_back(rl);
  data.labels[1].push_back(cl);
}

}  // namespace odin::policy
