// Table-based OU policy — the alternative the paper rejects.
//
// Sec. III-A: "it is not scalable to store optimized OU configurations for
// unlimited configurations of DNN models... Thus, we employ a neural
// network-based policy." This class implements the rejected design — a
// stored table of (Phi -> best config) examples answered by nearest
// neighbour — so the claim can be measured instead of assumed:
// bench/ablation_policy_representation compares prediction quality vs
// storage for both representations as the example budget grows.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "nn/train.hpp"
#include "ou/ou_config.hpp"
#include "policy/features.hpp"

namespace odin::policy {

class TablePolicy {
 public:
  explicit TablePolicy(const ou::OuLevelGrid& grid,
                       std::size_t capacity = 500)
      : grid_(grid), capacity_(capacity) {}

  const ou::OuLevelGrid& grid() const noexcept { return grid_; }
  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Insert an example; once full, new examples overwrite the oldest
  /// (ring-buffer semantics — the only bounded-memory option a table has).
  void add(const Features& features, ou::OuConfig best);

  /// Bulk-load from a supervised dataset (as produced by the offline
  /// labelling pipeline).
  void add_dataset(const nn::Dataset& data);

  /// Nearest-neighbour answer (Euclidean over the 4 normalized features).
  /// Falls back to 16x16 when empty.
  ou::OuConfig predict(const Features& features) const;

  /// Bytes to store the table: 4 quantized feature bytes + 1 packed config
  /// byte per entry (same quantization the paper's 0.35 KB buffer uses).
  std::size_t storage_bytes() const noexcept { return entries_.size() * 5; }

  /// Fraction of `data` answered with the exact stored best config.
  double accuracy_on(const nn::Dataset& data) const;

 private:
  struct Entry {
    std::array<double, Features::kCount> phi;
    ou::OuConfig best;
  };
  ou::OuLevelGrid grid_;
  std::size_t capacity_;
  std::size_t next_slot_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace odin::policy
