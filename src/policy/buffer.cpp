#include "policy/buffer.hpp"

#include <algorithm>

#include "policy/policy.hpp"

namespace odin::policy {

bool ReplayBuffer::is_quarantined(const Entry& entry) const noexcept {
  return std::find(quarantine_.begin(), quarantine_.end(), entry) !=
         quarantine_.end();
}

bool ReplayBuffer::add(const Features& features, ou::OuConfig best) {
  const Entry entry{features, best};
  if (is_quarantined(entry)) {
    ++quarantine_hits_;
    return false;
  }
  if (full()) {
    ++dropped_;
    return false;
  }
  entries_.push_back(entry);
  return true;
}

nn::Dataset ReplayBuffer::to_dataset(const ou::OuLevelGrid& grid) const {
  nn::Dataset data;
  data.inputs = nn::Matrix(entries_.size(), Features::kCount);
  data.labels.assign(2, std::vector<int>());
  data.labels[0].reserve(entries_.size());
  data.labels[1].reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto arr = entries_[i].features.to_array();
    for (std::size_t f = 0; f < arr.size(); ++f) data.inputs(i, f) = arr[f];
    data.labels[0].push_back(grid.level_of(entries_[i].best.rows));
    data.labels[1].push_back(grid.level_of(entries_[i].best.cols));
  }
  return data;
}

void ReplayBuffer::quarantine_contents() {
  quarantine_batch(entries_);
  entries_.clear();
}

void ReplayBuffer::quarantine_batch(const std::vector<Entry>& batch) {
  for (const Entry& e : batch)
    if (!is_quarantined(e)) quarantine_.push_back(e);
}

void ReplayBuffer::restore(std::vector<Entry> entries,
                           std::vector<Entry> quarantined,
                           std::size_t dropped,
                           std::size_t quarantine_hits) {
  entries_ = std::move(entries);
  quarantine_ = std::move(quarantined);
  dropped_ = dropped;
  quarantine_hits_ = quarantine_hits;
}

}  // namespace odin::policy
