#include "policy/buffer.hpp"

#include "policy/policy.hpp"

namespace odin::policy {

void ReplayBuffer::add(const Features& features, ou::OuConfig best) {
  if (full()) return;
  entries_.push_back({features, best});
}

nn::Dataset ReplayBuffer::to_dataset(const ou::OuLevelGrid& grid) const {
  nn::Dataset data;
  data.inputs = nn::Matrix(entries_.size(), Features::kCount);
  data.labels.assign(2, std::vector<int>());
  data.labels[0].reserve(entries_.size());
  data.labels[1].reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto arr = entries_[i].features.to_array();
    for (std::size_t f = 0; f < arr.size(); ++f) data.inputs(i, f) = arr[f];
    data.labels[0].push_back(grid.level_of(entries_[i].best.rows));
    data.labels[1].push_back(grid.level_of(entries_[i].best.cols));
  }
  return data;
}

}  // namespace odin::policy
