// The on-chip training-example buffer (Algorithm 1, lines 10-11).
//
// Stores (Phi, (R,C)*) pairs produced when the policy's decision disagrees
// with the search's best decision. When full (paper: 50 entries, 0.35 KB),
// the aggregated examples retrain the policy and the buffer is reset.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/train.hpp"
#include "ou/ou_config.hpp"
#include "policy/features.hpp"

namespace odin::policy {

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity = 50) : capacity_(capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool full() const noexcept { return entries_.size() >= capacity_; }
  bool empty() const noexcept { return entries_.empty(); }

  /// Adds an example; silently drops when already full (the hardware buffer
  /// cannot grow — the update fires before more examples are produced).
  void add(const Features& features, ou::OuConfig best);

  /// Materialize the contents as a supervised dataset for OuPolicy::train.
  nn::Dataset to_dataset(const ou::OuLevelGrid& grid) const;

  void reset() noexcept { entries_.clear(); }

 private:
  struct Entry {
    Features features;
    ou::OuConfig best;
  };
  std::size_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace odin::policy
