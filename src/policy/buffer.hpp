// The on-chip training-example buffer (Algorithm 1, lines 10-11).
//
// Stores (Phi, (R,C)*) pairs produced when the policy's decision disagrees
// with the search's best decision. When full (paper: 50 entries, 0.35 KB),
// the aggregated examples retrain the policy and the buffer is reset.
//
// Two robustness extensions over the paper's buffer:
//  * saturation is observable — examples arriving while the buffer is full
//    cannot be stored (the hardware buffer cannot grow), and every such
//    drop is counted so serving can surface it instead of losing the
//    signal silently;
//  * quarantine — when a retrain produced from the buffer's contents is
//    rejected or rolled back by the update guardrail (core/odin), the
//    offending batch is moved to a quarantine set and `add` refuses
//    byte-identical examples from then on, so poisoned supervision labels
//    (e.g. from a drift-burst window) are not re-learned.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/train.hpp"
#include "ou/ou_config.hpp"
#include "policy/features.hpp"

namespace odin::policy {

class ReplayBuffer {
 public:
  struct Entry {
    Features features;
    ou::OuConfig best;

    bool operator==(const Entry& other) const noexcept {
      return features.to_array() == other.features.to_array() &&
             best == other.best;
    }
  };

  explicit ReplayBuffer(std::size_t capacity = 50) : capacity_(capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool full() const noexcept { return entries_.size() >= capacity_; }
  bool empty() const noexcept { return entries_.empty(); }

  /// Adds an example. Quarantined examples are refused; when the buffer is
  /// already full the example is dropped and counted. Returns whether the
  /// example was stored.
  bool add(const Features& features, ou::OuConfig best);

  /// Examples that arrived while the buffer was full (cumulative).
  std::size_t dropped() const noexcept { return dropped_; }
  /// Examples refused because they matched a quarantined entry.
  std::size_t quarantine_hits() const noexcept { return quarantine_hits_; }
  /// Entries currently held in the quarantine set.
  std::size_t quarantined() const noexcept { return quarantine_.size(); }

  /// Materialize the contents as a supervised dataset for OuPolicy::train.
  nn::Dataset to_dataset(const ou::OuLevelGrid& grid) const;

  /// Move the current contents into the quarantine set (guardrail verdict:
  /// this batch poisoned a retrain) and clear the buffer.
  void quarantine_contents();
  /// Add one batch of previously extracted entries to the quarantine set
  /// (rollback path: the batch was consumed by a promoted update that later
  /// failed probation).
  void quarantine_batch(const std::vector<Entry>& batch);

  void reset() noexcept { entries_.clear(); }

  /// State access for the serving checkpoint (core/checkpoint) and the
  /// guardrail's rollback bookkeeping.
  const std::vector<Entry>& entries() const noexcept { return entries_; }
  const std::vector<Entry>& quarantined_entries() const noexcept {
    return quarantine_;
  }
  void restore(std::vector<Entry> entries, std::vector<Entry> quarantined,
               std::size_t dropped, std::size_t quarantine_hits);

 private:
  bool is_quarantined(const Entry& entry) const noexcept;

  std::size_t capacity_;
  std::vector<Entry> entries_;
  std::vector<Entry> quarantine_;
  std::size_t dropped_ = 0;
  std::size_t quarantine_hits_ = 0;
};

}  // namespace odin::policy
