// Policy persistence: save/load the OU policy parameters as a small,
// human-readable text format. The offline bootstrap (exhaustive labelling
// of the known DNNs) is the expensive step of deployment; persisting its
// result lets a deployment ship the design-time policy the way the paper's
// architecture stores Theta_0 on chip.
#pragma once

#include <iosfwd>
#include <optional>

#include "policy/policy.hpp"

namespace odin::policy {

/// Format: a header line ("odin-policy 1"), the grid's crossbar size, the
/// hidden width, then every parameter tensor as "rows cols" + values.
void save_policy(const OuPolicy& policy, std::ostream& out);

/// Reconstructs a policy; returns nullopt on malformed input or if the
/// architecture in the stream does not round-trip.
std::optional<OuPolicy> load_policy(std::istream& in);

}  // namespace odin::policy
