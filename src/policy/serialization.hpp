// Policy persistence: save/load the OU policy parameters as a small,
// human-readable text format. The offline bootstrap (exhaustive labelling
// of the known DNNs) is the expensive step of deployment; persisting its
// result lets a deployment ship the design-time policy the way the paper's
// architecture stores Theta_0 on chip.
#pragma once

#include <iosfwd>
#include <optional>

#include "common/binary_io.hpp"
#include "policy/policy.hpp"

namespace odin::policy {

/// Format: a header line ("odin-policy 1"), the grid's crossbar size, the
/// hidden width, then every parameter tensor as "rows cols" + values.
void save_policy(const OuPolicy& policy, std::ostream& out);

/// Reconstructs a policy; returns nullopt on malformed input or if the
/// architecture in the stream does not round-trip.
std::optional<OuPolicy> load_policy(std::istream& in);

/// Binary form used inside the crash-safe serving checkpoint
/// (core/checkpoint): exact bit-for-bit parameter round-trip (doubles are
/// encoded as their IEEE-754 bits, not decimal text). Layout: crossbar
/// size, hidden width, then every parameter tensor as rows/cols + values,
/// all little-endian.
void save_policy_binary(const OuPolicy& policy, common::ByteWriter& out);

/// Binary counterpart of load_policy: nullopt on truncated input or an
/// architecture mismatch. The caller owns CRC/framing checks.
std::optional<OuPolicy> load_policy_binary(common::ByteReader& in);

}  // namespace odin::policy
