#include "policy/features.hpp"

#include <algorithm>
#include <cmath>

namespace odin::policy {

namespace {
constexpr double kMaxKernel = 7.0;
constexpr double kLogHorizon = 8.0;  ///< log10 of the 1e8 s drift horizon
}  // namespace

Features extract_features(const dnn::LayerDescriptor& layer, int layer_count,
                          double elapsed_s) noexcept {
  Features f;
  f.layer_position =
      layer_count > 1 ? static_cast<double>(layer.index) /
                            static_cast<double>(layer_count - 1)
                      : 0.0;
  f.sparsity = std::clamp(layer.weight_sparsity, 0.0, 1.0);
  f.kernel = std::clamp(static_cast<double>(layer.kernel) / kMaxKernel,
                        0.0, 1.0);
  const double t = std::max(elapsed_s, 1.0);
  f.log_time = std::clamp(std::log10(t) / kLogHorizon, 0.0, 1.0);
  return f;
}

}  // namespace odin::policy
