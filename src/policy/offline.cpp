#include "policy/offline.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/math.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "ou/search.hpp"

namespace odin::policy {

nn::Dataset build_offline_dataset(
    std::span<const ou::MappedModel* const> known_models,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    const ou::OuLevelGrid& grid, const OfflineTrainConfig& config) {
  struct Example {
    Features features;
    ou::OuConfig best;
  };

  const auto times = common::logspace(config.t_start_s, config.t_end_s,
                                      static_cast<std::size_t>(
                                          config.time_samples));
  // Fan out one task per (model, drift step): every task runs the
  // exhaustive label search over that model's layers with its own NF memo.
  // Tasks are flattened in the sequential nesting order (model outer, time
  // inner), and their example batches concatenate in task order, so the
  // dataset is identical to the single-threaded build.
  const std::size_t tasks = known_models.size() * times.size();
  auto batches = common::parallel_transform(tasks, 1, [&](std::size_t task) {
    const ou::MappedModel* mm = known_models[task / times.size()];
    assert(mm != nullptr);
    const double t = times[task % times.size()];
    const int layer_count = static_cast<int>(mm->layer_count());
    ou::NonIdealityCache nf_cache(nonideal, grid);
    nf_cache.rebuild(t);
    std::vector<Example> batch;
    for (std::size_t j = 0; j < mm->layer_count(); ++j) {
      const auto& layer = mm->model().layers[j];
      ou::LayerContext ctx{
          .mapping = &mm->mapping(j),
          .cost = &cost,
          .nonideal = &nonideal,
          .grid = &grid,
          .cache = &nf_cache,
          .elapsed_s = t,
          .sensitivity = nonideal.layer_sensitivity(layer.index,
                                                    layer_count),
      };
      const auto result = ou::exhaustive_search(ctx);
      if (!result.found) continue;  // reprogram regime: no label to learn
      batch.push_back(
          {extract_features(layer, layer_count, t), result.best});
    }
    return batch;
  });
  std::vector<Example> examples;
  for (auto& batch : batches)
    examples.insert(examples.end(), batch.begin(), batch.end());

  // Deterministic uniform subsample down to the example budget.
  if (examples.size() > config.max_examples) {
    common::Rng rng(config.subsample_seed);
    std::vector<std::size_t> order(examples.size());
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    order.resize(config.max_examples);
    std::sort(order.begin(), order.end());
    std::vector<Example> kept;
    kept.reserve(order.size());
    for (std::size_t idx : order) kept.push_back(examples[idx]);
    examples = std::move(kept);
  }

  nn::Dataset data;
  data.inputs = nn::Matrix(examples.size(), Features::kCount);
  data.labels.assign(2, std::vector<int>());
  for (std::size_t i = 0; i < examples.size(); ++i) {
    const auto arr = examples[i].features.to_array();
    for (std::size_t f = 0; f < arr.size(); ++f) data.inputs(i, f) = arr[f];
    data.labels[0].push_back(grid.level_of(examples[i].best.rows));
    data.labels[1].push_back(grid.level_of(examples[i].best.cols));
  }
  return data;
}

OuPolicy train_offline_policy(
    std::span<const ou::MappedModel* const> known_models,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    const ou::OuLevelGrid& grid, const OfflineTrainConfig& config,
    PolicyConfig policy_config) {
  OuPolicy policy(grid, policy_config);
  const nn::Dataset data = build_offline_dataset(known_models, nonideal,
                                                 cost, grid, config);
  if (data.size() > 0) policy.train(data, config.train_options);
  return policy;
}

}  // namespace odin::policy
