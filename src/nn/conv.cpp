#include "nn/conv.hpp"

#include <algorithm>
#include <cassert>

namespace odin::nn {

Matrix im2col(const Image& img, const ConvSpec& spec) {
  assert(img.channels == spec.in_channels);
  const int oh = spec.out_dim(img.height);
  const int ow = spec.out_dim(img.width);
  Matrix out(static_cast<std::size_t>(oh) * ow,
             static_cast<std::size_t>(spec.patch_size()));
  std::size_t row = 0;
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox, ++row) {
      std::size_t col = 0;
      for (int c = 0; c < spec.in_channels; ++c) {
        for (int ky = 0; ky < spec.kernel; ++ky) {
          for (int kx = 0; kx < spec.kernel; ++kx, ++col) {
            const int y = oy * spec.stride + ky - spec.padding;
            const int x = ox * spec.stride + kx - spec.padding;
            const bool inside =
                y >= 0 && y < img.height && x >= 0 && x < img.width;
            out(row, col) = inside ? img.at(c, y, x) : 0.0;
          }
        }
      }
    }
  }
  return out;
}

Image conv2d(const Image& img, const ConvSpec& spec, const Matrix& weights,
             std::span<const double> bias) {
  assert(weights.rows() == static_cast<std::size_t>(spec.patch_size()));
  assert(weights.cols() == static_cast<std::size_t>(spec.out_channels));
  assert(bias.size() == static_cast<std::size_t>(spec.out_channels));
  const int oh = spec.out_dim(img.height);
  const int ow = spec.out_dim(img.width);
  const Matrix cols = im2col(img, spec);
  const Matrix prod = matmul(cols, weights);  // [positions x out_channels]
  Image out{spec.out_channels, oh, ow,
            std::vector<double>(
                static_cast<std::size_t>(spec.out_channels) * oh * ow)};
  for (int oc = 0; oc < spec.out_channels; ++oc)
    for (int p = 0; p < oh * ow; ++p)
      out.data[static_cast<std::size_t>(oc) * oh * ow + p] =
          prod(static_cast<std::size_t>(p), static_cast<std::size_t>(oc)) +
          bias[static_cast<std::size_t>(oc)];
  return out;
}

Image maxpool2(const Image& img) {
  const int oh = img.height / 2;
  const int ow = img.width / 2;
  Image out{img.channels, oh, ow,
            std::vector<double>(
                static_cast<std::size_t>(img.channels) * oh * ow)};
  for (int c = 0; c < img.channels; ++c)
    for (int y = 0; y < oh; ++y)
      for (int x = 0; x < ow; ++x)
        out.at(c, y, x) = std::max(
            std::max(img.at(c, 2 * y, 2 * x), img.at(c, 2 * y, 2 * x + 1)),
            std::max(img.at(c, 2 * y + 1, 2 * x),
                     img.at(c, 2 * y + 1, 2 * x + 1)));
  return out;
}

void relu_inplace(Image& img) {
  for (double& v : img.data)
    if (v < 0.0) v = 0.0;
}

std::vector<double> global_avg_pool(const Image& img) {
  std::vector<double> out(static_cast<std::size_t>(img.channels), 0.0);
  const double inv = 1.0 / static_cast<double>(img.height * img.width);
  for (int c = 0; c < img.channels; ++c) {
    double acc = 0.0;
    for (int y = 0; y < img.height; ++y)
      for (int x = 0; x < img.width; ++x) acc += img.at(c, y, x);
    out[static_cast<std::size_t>(c)] = acc * inv;
  }
  return out;
}

}  // namespace odin::nn
