// Trainable layers with explicit forward/backward passes.
//
// The engine is batch-first: activations are [batch x features] matrices.
// Each layer owns its parameters and parameter gradients; optimizers walk
// the parameter list exposed via `parameters()`.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace odin::nn {

/// A parameter tensor paired with its gradient accumulator.
struct Parameter {
  Matrix value;
  Matrix grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass; implementations may cache activations for backward.
  virtual Matrix forward(const Matrix& input) = 0;

  /// Backward pass: receives dL/d(output), returns dL/d(input), and
  /// accumulates parameter gradients.
  virtual Matrix backward(const Matrix& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> parameters() { return {}; }
};

/// Fully connected layer: out = in * W + b. W is [in x out], b is [1 x out].
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, common::Rng& rng);

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }

  Parameter& weight() noexcept { return weight_; }
  Parameter& bias() noexcept { return bias_; }

 private:
  Parameter weight_;
  Parameter bias_;
  Matrix cached_input_;
};

/// Elementwise rectifier.
class Relu final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;

 private:
  Matrix cached_input_;
};

/// Softmax + cross-entropy head, fused for numerical stability.
/// Not a Layer: it terminates the graph and produces the loss.
class SoftmaxCrossEntropy {
 public:
  /// Row-wise softmax of logits.
  static Matrix softmax(const Matrix& logits);

  /// Mean cross-entropy of `logits` against integer `labels` (one per row).
  /// Also stores softmax probabilities for backward().
  double loss(const Matrix& logits, std::span<const int> labels);

  /// dL/d(logits) for the last loss() call: (p - onehot) / batch.
  Matrix backward() const;

 private:
  Matrix probs_;
  std::vector<int> labels_;
};

}  // namespace odin::nn
