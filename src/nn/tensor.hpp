// Dense row-major matrix — the only tensor shape the from-scratch NN engine
// needs. Deliberately minimal: contiguous storage, bounds-checked element
// access in debug builds, and the handful of BLAS-1/2/3 kernels the MLP
// trainer uses. No expression templates, no views; clarity over cleverness.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace odin::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix randn(std::size_t rows, std::size_t cols, double stddev,
                      common::Rng& rng);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> flat() noexcept { return data_; }
  std::span<const double> flat() const noexcept { return data_; }

  void fill(double v) noexcept { data_.assign(data_.size(), v); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b  (dims: [m x k] * [k x n] -> [m x n])
Matrix matmul(const Matrix& a, const Matrix& b);

/// out = a^T * b  (dims: [k x m]^T * [k x n] -> [m x n])
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// out = a * b^T  (dims: [m x k] * [n x k]^T -> [m x n])
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// y += alpha * x, elementwise over equal-shaped matrices.
void axpy(double alpha, const Matrix& x, Matrix& y);

}  // namespace odin::nn
