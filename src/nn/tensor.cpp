#include "nn/tensor.hpp"

namespace odin::nn {

Matrix Matrix::randn(std::size_t rows, std::size_t cols, double stddev,
                     common::Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.normal(0.0, stddev);
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aki * b(k, j);
    }
  }
  return out;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(j, k);
      out(i, j) = acc;
    }
  }
  return out;
}

void axpy(double alpha, const Matrix& x, Matrix& y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  auto xs = x.flat();
  auto ys = y.flat();
  for (std::size_t i = 0; i < xs.size(); ++i) ys[i] += alpha * xs[i];
}

}  // namespace odin::nn
