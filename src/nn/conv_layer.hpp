// Trainable convolution and pooling layers for the Sequential container.
//
// The Layer interface is batch-first with flattened rows: a [batch x
// C*H*W] matrix where each row is a channel-major image. Conv2dLayer
// lowers each row with im2col (the same lowering the crossbar mapper
// uses), multiplies by its [patch x out_channels] weight matrix, and
// backpropagates through col2im — completing the from-scratch engine so
// convolutional reference networks can be trained in-repo.
#pragma once

#include <vector>

#include "nn/conv.hpp"
#include "nn/layers.hpp"

namespace odin::nn {

/// Scatter-add the inverse of im2col: accumulates patch gradients back
/// into image pixels.
Image col2im(const Matrix& cols, const ConvSpec& spec, int in_h, int in_w);

class Conv2dLayer final : public Layer {
 public:
  Conv2dLayer(ConvSpec spec, int in_h, int in_w, common::Rng& rng);

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }

  const ConvSpec& spec() const noexcept { return spec_; }
  int out_height() const noexcept { return out_h_; }
  int out_width() const noexcept { return out_w_; }
  std::size_t out_features() const noexcept {
    return static_cast<std::size_t>(spec_.out_channels) * out_h_ * out_w_;
  }

 private:
  ConvSpec spec_;
  int in_h_, in_w_, out_h_, out_w_;
  Parameter weight_;  ///< [patch_size x out_channels]
  Parameter bias_;    ///< [1 x out_channels]
  std::vector<Matrix> cached_cols_;  ///< per-sample im2col matrices
};

/// 2x2 max pooling with stride 2 on flattened channel-major rows.
class MaxPool2Layer final : public Layer {
 public:
  MaxPool2Layer(int channels, int in_h, int in_w);

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;

  std::size_t out_features() const noexcept {
    return static_cast<std::size_t>(channels_) * (in_h_ / 2) * (in_w_ / 2);
  }

 private:
  int channels_, in_h_, in_w_;
  std::vector<std::vector<std::size_t>> argmax_;  ///< winner index per output
};

}  // namespace odin::nn
