#include "nn/mlp.hpp"

#include <cassert>

#include "common/math.hpp"

namespace odin::nn {

MultiHeadMlp::MultiHeadMlp(MlpConfig config, std::uint64_t seed)
    : config_(std::move(config)), losses_(config_.heads.size()) {
  assert(!config_.heads.empty());
  common::Rng rng(seed);
  std::size_t width = config_.inputs;
  for (std::size_t h : config_.hidden) {
    trunk_.push_back(std::make_unique<Dense>(width, h, rng));
    trunk_.push_back(std::make_unique<Relu>());
    width = h;
  }
  for (std::size_t classes : config_.heads)
    heads_.push_back(std::make_unique<Dense>(width, classes, rng));
}

std::vector<Matrix> MultiHeadMlp::forward(const Matrix& input) {
  assert(input.cols() == config_.inputs);
  Matrix x = input;
  for (auto& layer : trunk_) x = layer->forward(x);
  trunk_output_ = x;
  std::vector<Matrix> logits;
  logits.reserve(heads_.size());
  for (auto& head : heads_) logits.push_back(head->forward(x));
  return logits;
}

std::vector<std::vector<double>> MultiHeadMlp::predict_proba(
    std::span<const double> features) {
  assert(features.size() == config_.inputs);
  Matrix input(1, config_.inputs);
  for (std::size_t i = 0; i < features.size(); ++i) input(0, i) = features[i];
  auto logits = forward(input);
  std::vector<std::vector<double>> out;
  out.reserve(logits.size());
  for (auto& l : logits) {
    Matrix p = SoftmaxCrossEntropy::softmax(l);
    out.emplace_back(p.row(0).begin(), p.row(0).end());
  }
  return out;
}

std::vector<int> MultiHeadMlp::predict(std::span<const double> features) {
  auto probs = predict_proba(features);
  std::vector<int> out;
  out.reserve(probs.size());
  for (auto& p : probs)
    out.push_back(static_cast<int>(common::argmax(p)));
  return out;
}

double MultiHeadMlp::compute_gradients(
    const Matrix& input, std::span<const std::vector<int>> labels) {
  assert(labels.size() == heads_.size());
  zero_gradients();
  auto logits = forward(input);
  double total_loss = 0.0;
  Matrix trunk_grad(trunk_output_.rows(), trunk_output_.cols());
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    total_loss += losses_[h].loss(logits[h], labels[h]);
    Matrix head_grad = losses_[h].backward();
    axpy(1.0, heads_[h]->backward(head_grad), trunk_grad);
  }
  Matrix g = trunk_grad;
  for (auto it = trunk_.rbegin(); it != trunk_.rend(); ++it)
    g = (*it)->backward(g);
  return total_loss;
}

std::vector<Dense*> MultiHeadMlp::trunk_dense() {
  std::vector<Dense*> out;
  for (auto& layer : trunk_)
    if (auto* dense = dynamic_cast<Dense*>(layer.get())) out.push_back(dense);
  return out;
}

std::vector<Dense*> MultiHeadMlp::head_dense() {
  std::vector<Dense*> out;
  out.reserve(heads_.size());
  for (auto& head : heads_) out.push_back(head.get());
  return out;
}

std::vector<Parameter*> MultiHeadMlp::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : trunk_)
    for (Parameter* p : layer->parameters()) params.push_back(p);
  for (auto& head : heads_)
    for (Parameter* p : head->parameters()) params.push_back(p);
  return params;
}

std::size_t MultiHeadMlp::parameter_count() {
  std::size_t n = 0;
  for (Parameter* p : parameters()) n += p->value.size();
  return n;
}

void MultiHeadMlp::zero_gradients() {
  for (Parameter* p : parameters()) p->grad.fill(0.0);
}

}  // namespace odin::nn
