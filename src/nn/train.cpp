#include "nn/train.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/rng.hpp"

namespace odin::nn {

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto w = params_[i]->value.flat();
    auto g = params_[i]->grad.flat();
    auto m = m_[i].flat();
    auto v = v_[i].flat();
    for (std::size_t k = 0; k < w.size(); ++k) {
      m[k] = beta1_ * m[k] + (1.0 - beta1_) * g[k];
      v[k] = beta2_ * v[k] + (1.0 - beta2_) * g[k] * g[k];
      const double mhat = m[k] / bc1;
      const double vhat = v[k] / bc2;
      w[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

Sgd::Sgd(std::vector<Parameter*> params, double lr, double momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_)
    velocity_.emplace_back(p->value.rows(), p->value.cols());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto w = params_[i]->value.flat();
    auto g = params_[i]->grad.flat();
    auto vel = velocity_[i].flat();
    for (std::size_t k = 0; k < w.size(); ++k) {
      vel[k] = momentum_ * vel[k] - lr_ * g[k];
      w[k] += vel[k];
    }
  }
}

namespace {

Matrix gather_rows(const Matrix& src, std::span<const std::size_t> idx) {
  Matrix out(idx.size(), src.cols());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    auto dst = out.row(r);
    auto s = src.row(idx[r]);
    std::copy(s.begin(), s.end(), dst.begin());
  }
  return out;
}

double dataset_loss(MultiHeadMlp& model, const Dataset& data) {
  // One gradient computation gives the loss; gradients are discarded.
  std::vector<std::vector<int>> labels(data.labels.begin(),
                                       data.labels.end());
  const double loss = model.compute_gradients(data.inputs, labels);
  model.zero_gradients();
  return loss;
}

}  // namespace

TrainResult fit(MultiHeadMlp& model, const Dataset& data,
                const TrainOptions& options) {
  assert(data.size() > 0);
  assert(data.labels.size() == model.config().heads.size());

  Adam optimizer(model.parameters(), options.learning_rate);
  common::Rng rng(options.shuffle_seed);

  TrainResult result;
  result.initial_loss = dataset_loss(model, data);

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t heads = data.labels.size();

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Fisher-Yates with our deterministic RNG.
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j = rng.uniform_index(i);
      std::swap(order[i - 1], order[j]);
    }
    for (std::size_t start = 0; start < order.size();
         start += options.batch_size) {
      const std::size_t end =
          std::min(start + options.batch_size, order.size());
      std::span<const std::size_t> idx{order.data() + start, end - start};
      Matrix batch = gather_rows(data.inputs, idx);
      std::vector<std::vector<int>> labels(heads);
      for (std::size_t h = 0; h < heads; ++h) {
        labels[h].reserve(idx.size());
        for (std::size_t i : idx) labels[h].push_back(data.labels[h][i]);
      }
      model.compute_gradients(batch, labels);
      optimizer.step();
    }
    ++result.epochs_run;
  }
  result.final_loss = dataset_loss(model, data);
  return result;
}

double exact_match_accuracy(MultiHeadMlp& model, const Dataset& data) {
  if (data.size() == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto pred = model.predict(data.inputs.row(i));
    bool all = true;
    for (std::size_t h = 0; h < pred.size(); ++h)
      all = all && pred[h] == data.labels[h][i];
    if (all) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

std::vector<double> per_head_accuracy(MultiHeadMlp& model,
                                      const Dataset& data) {
  const std::size_t heads = data.labels.size();
  std::vector<double> acc(heads, 0.0);
  if (data.size() == 0) return acc;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto pred = model.predict(data.inputs.row(i));
    for (std::size_t h = 0; h < heads; ++h)
      if (pred[h] == data.labels[h][i]) acc[h] += 1.0;
  }
  for (double& a : acc) a /= static_cast<double>(data.size());
  return acc;
}

}  // namespace odin::nn
