#include "nn/sequential.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/math.hpp"
#include "common/rng.hpp"

namespace odin::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Matrix Sequential::forward(const Matrix& input) {
  Matrix x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

double Sequential::compute_gradients(const Matrix& input,
                                     std::span<const int> labels) {
  zero_gradients();
  const Matrix logits = forward(input);
  const double loss = loss_.loss(logits, labels);
  Matrix g = loss_.backward();
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return loss;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_)
    for (Parameter* p : layer->parameters()) params.push_back(p);
  return params;
}

std::size_t Sequential::parameter_count() {
  std::size_t n = 0;
  for (Parameter* p : parameters()) n += p->value.size();
  return n;
}

void Sequential::zero_gradients() {
  for (Parameter* p : parameters()) p->grad.fill(0.0);
}

int Sequential::predict(std::span<const double> features) {
  Matrix input(1, features.size());
  std::copy(features.begin(), features.end(), input.row(0).begin());
  const Matrix logits = forward(input);
  return static_cast<int>(common::argmax(logits.row(0)));
}

double Sequential::accuracy(const Dataset& data) {
  if (data.size() == 0) return 0.0;
  assert(data.labels.size() == 1);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (predict(data.inputs.row(i)) == data.labels[0][i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

TrainResult fit_sequential(Sequential& model, const Dataset& data,
                           const TrainOptions& options) {
  assert(data.size() > 0 && data.labels.size() == 1);
  Adam optimizer(model.parameters(), options.learning_rate);
  common::Rng rng(options.shuffle_seed);

  TrainResult result;
  result.initial_loss = model.compute_gradients(data.inputs, data.labels[0]);
  model.zero_gradients();

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    for (std::size_t start = 0; start < order.size();
         start += options.batch_size) {
      const std::size_t end =
          std::min(start + options.batch_size, order.size());
      Matrix batch(end - start, data.inputs.cols());
      std::vector<int> labels(end - start);
      for (std::size_t i = start; i < end; ++i) {
        auto src = data.inputs.row(order[i]);
        std::copy(src.begin(), src.end(), batch.row(i - start).begin());
        labels[i - start] = data.labels[0][order[i]];
      }
      model.compute_gradients(batch, labels);
      optimizer.step();
    }
    ++result.epochs_run;
  }
  result.final_loss = model.compute_gradients(data.inputs, data.labels[0]);
  model.zero_gradients();
  return result;
}

}  // namespace odin::nn
