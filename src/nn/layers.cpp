#include "nn/layers.hpp"

#include <cassert>
#include <cmath>

#include "common/math.hpp"

namespace odin::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             common::Rng& rng) {
  // He initialization: suits the ReLU trunks used throughout.
  const double stddev = std::sqrt(2.0 / static_cast<double>(in_features));
  weight_.value = Matrix::randn(in_features, out_features, stddev, rng);
  weight_.grad = Matrix(in_features, out_features);
  bias_.value = Matrix(1, out_features);
  bias_.grad = Matrix(1, out_features);
}

Matrix Dense::forward(const Matrix& input) {
  assert(input.cols() == weight_.value.rows());
  cached_input_ = input;
  Matrix out = matmul(input, weight_.value);
  for (std::size_t r = 0; r < out.rows(); ++r)
    for (std::size_t c = 0; c < out.cols(); ++c)
      out(r, c) += bias_.value(0, c);
  return out;
}

Matrix Dense::backward(const Matrix& grad_output) {
  assert(grad_output.rows() == cached_input_.rows());
  // dW = in^T * dOut ; db = column-sum(dOut) ; dIn = dOut * W^T
  Matrix dw = matmul_at_b(cached_input_, grad_output);
  axpy(1.0, dw, weight_.grad);
  for (std::size_t r = 0; r < grad_output.rows(); ++r)
    for (std::size_t c = 0; c < grad_output.cols(); ++c)
      bias_.grad(0, c) += grad_output(r, c);
  return matmul_a_bt(grad_output, weight_.value);
}

Matrix Relu::forward(const Matrix& input) {
  cached_input_ = input;
  Matrix out = input;
  for (double& v : out.flat())
    if (v < 0.0) v = 0.0;
  return out;
}

Matrix Relu::backward(const Matrix& grad_output) {
  assert(grad_output.rows() == cached_input_.rows() &&
         grad_output.cols() == cached_input_.cols());
  Matrix out = grad_output;
  auto xin = cached_input_.flat();
  auto g = out.flat();
  for (std::size_t i = 0; i < g.size(); ++i)
    if (xin[i] <= 0.0) g[i] = 0.0;
  return out;
}

Matrix SoftmaxCrossEntropy::softmax(const Matrix& logits) {
  Matrix probs = logits;
  for (std::size_t r = 0; r < probs.rows(); ++r)
    common::softmax_inplace(probs.row(r));
  return probs;
}

double SoftmaxCrossEntropy::loss(const Matrix& logits,
                                 std::span<const int> labels) {
  assert(labels.size() == logits.rows());
  probs_ = softmax(logits);
  labels_.assign(labels.begin(), labels.end());
  double total = 0.0;
  for (std::size_t r = 0; r < probs_.rows(); ++r) {
    const int y = labels_[r];
    assert(y >= 0 && static_cast<std::size_t>(y) < probs_.cols());
    total -= std::log(std::max(probs_(r, static_cast<std::size_t>(y)),
                               1e-300));
  }
  return total / static_cast<double>(probs_.rows());
}

Matrix SoftmaxCrossEntropy::backward() const {
  Matrix grad = probs_;
  const double inv_batch = 1.0 / static_cast<double>(grad.rows());
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    grad(r, static_cast<std::size_t>(labels_[r])) -= 1.0;
    for (std::size_t c = 0; c < grad.cols(); ++c) grad(r, c) *= inv_batch;
  }
  return grad;
}

}  // namespace odin::nn
