// Sequential: an ordered stack of Layers with a single softmax
// classification head — the container for convolutional reference models
// (MultiHeadMlp stays the policy's dedicated shape).
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"
#include "nn/train.hpp"

namespace odin::nn {

class Sequential {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  Matrix forward(const Matrix& input);

  /// One gradient accumulation pass (zeroes gradients first); returns the
  /// mean cross-entropy of the batch.
  double compute_gradients(const Matrix& input, std::span<const int> labels);

  std::vector<Parameter*> parameters();
  std::size_t parameter_count();
  void zero_gradients();

  /// Argmax class of a single sample.
  int predict(std::span<const double> features);

  /// Fraction of `data` (single-head labels) classified correctly.
  double accuracy(const Dataset& data);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  SoftmaxCrossEntropy loss_;
};

/// Minibatch-train a Sequential classifier on a single-head dataset.
TrainResult fit_sequential(Sequential& model, const Dataset& data,
                           const TrainOptions& options = {});

}  // namespace odin::nn
