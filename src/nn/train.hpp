// Optimizers and a small supervised-training loop for MultiHeadMlp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/mlp.hpp"

namespace odin::nn {

/// Adam optimizer. Bound to a fixed parameter list at construction; state
/// (first/second moments) is indexed positionally.
class Adam {
 public:
  explicit Adam(std::vector<Parameter*> params, double lr = 1e-2,
                double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

  /// Apply one update from the gradients currently stored in the parameters.
  void step();

  double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr) noexcept { lr_ = lr; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  double lr_, beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
};

/// Plain SGD with optional momentum, same interface as Adam.
class Sgd {
 public:
  explicit Sgd(std::vector<Parameter*> params, double lr = 1e-1,
               double momentum = 0.0);
  void step();

 private:
  std::vector<Parameter*> params_;
  std::vector<Matrix> velocity_;
  double lr_, momentum_;
};

/// A supervised multi-head dataset: row i of `inputs` is labelled
/// `labels[h][i]` by head h.
struct Dataset {
  Matrix inputs;                         ///< [n x features]
  std::vector<std::vector<int>> labels;  ///< [heads][n]

  std::size_t size() const noexcept { return inputs.rows(); }
};

struct TrainOptions {
  int epochs = 100;           ///< paper Sec. V-E: policy trained 100 epochs
  std::size_t batch_size = 16;
  double learning_rate = 1e-2;
  std::uint64_t shuffle_seed = 0x5eed;
};

struct TrainResult {
  double initial_loss = 0.0;
  double final_loss = 0.0;
  int epochs_run = 0;
};

/// Minibatch-train `model` on `data` with Adam. Deterministic given the
/// options' shuffle seed.
TrainResult fit(MultiHeadMlp& model, const Dataset& data,
                const TrainOptions& options = {});

/// Fraction of samples for which every head predicts its label exactly.
double exact_match_accuracy(MultiHeadMlp& model, const Dataset& data);

/// Per-head accuracies.
std::vector<double> per_head_accuracy(MultiHeadMlp& model,
                                      const Dataset& data);

}  // namespace odin::nn
