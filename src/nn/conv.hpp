// Convolution via im2col, forward-only.
//
// Used to (a) exercise the crossbar-mapped inference path — a conv layer's
// im2col matrix is exactly the MVM the PIM crossbars execute — and (b) give
// the Monte-Carlo accuracy evaluator a convolutional reference model whose
// weights can be perturbed layer by layer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/tensor.hpp"

namespace odin::nn {

/// Channel-major image: data[c * h * w + y * w + x].
struct Image {
  int channels = 0;
  int height = 0;
  int width = 0;
  std::vector<double> data;

  double at(int c, int y, int x) const noexcept {
    return data[static_cast<std::size_t>((c * height + y) * width + x)];
  }
  double& at(int c, int y, int x) noexcept {
    return data[static_cast<std::size_t>((c * height + y) * width + x)];
  }
  std::size_t size() const noexcept { return data.size(); }
};

struct ConvSpec {
  int in_channels = 0;
  int out_channels = 0;
  int kernel = 3;
  int stride = 1;
  int padding = 1;

  int out_dim(int in_dim) const noexcept {
    return (in_dim + 2 * padding - kernel) / stride + 1;
  }
  /// Rows of the im2col matrix == fan-in of one output pixel.
  int patch_size() const noexcept { return in_channels * kernel * kernel; }
};

/// Lower `img` into a [positions x patch_size] matrix; row p holds the
/// receptive field of output pixel p (zero padding applied).
Matrix im2col(const Image& img, const ConvSpec& spec);

/// conv weights as a [patch_size x out_channels] matrix -> output image.
Image conv2d(const Image& img, const ConvSpec& spec, const Matrix& weights,
             std::span<const double> bias);

/// 2x2 max-pool with stride 2.
Image maxpool2(const Image& img);

/// Elementwise ReLU.
void relu_inplace(Image& img);

/// Global average pool -> one value per channel.
std::vector<double> global_avg_pool(const Image& img);

}  // namespace odin::nn
