// Multi-head MLP: a shared Dense+ReLU trunk feeding any number of
// independent softmax classification heads.
//
// This is exactly the shape the paper gives Odin's OU policy ("one input
// layer with ReLU activation and two separate output layers with softmax",
// Sec. V-A): head 0 classifies the OU height index, head 1 the width index.
// The same class doubles as the single-head reference classifier used by the
// Monte-Carlo accuracy evaluator.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/layers.hpp"

namespace odin::nn {

struct MlpConfig {
  std::size_t inputs = 4;
  std::vector<std::size_t> hidden = {16};  ///< trunk layer widths
  std::vector<std::size_t> heads = {6, 6}; ///< classes per output head
};

class MultiHeadMlp {
 public:
  MultiHeadMlp(MlpConfig config, std::uint64_t seed);

  const MlpConfig& config() const noexcept { return config_; }

  /// Per-head logits for a batch of inputs ([batch x inputs]).
  std::vector<Matrix> forward(const Matrix& input);

  /// Per-head softmax probabilities for one sample.
  std::vector<std::vector<double>> predict_proba(
      std::span<const double> features);

  /// Per-head argmax class for one sample.
  std::vector<int> predict(std::span<const double> features);

  /// One gradient step on a minibatch. `labels[h][r]` is the head-h class of
  /// row r. Gradients are zeroed, accumulated and returned as the summed
  /// cross-entropy loss across heads; the caller's optimizer applies them.
  double compute_gradients(const Matrix& input,
                           std::span<const std::vector<int>> labels);

  /// All trainable parameters, trunk first, then heads in order.
  std::vector<Parameter*> parameters();

  /// The Dense layers of the trunk, in forward order (each is followed by a
  /// ReLU). Exposed for hardware-in-the-loop execution, which re-implements
  /// the forward pass on crossbar MVMs.
  std::vector<Dense*> trunk_dense();

  /// The per-head output Dense layers.
  std::vector<Dense*> head_dense();

  /// Total scalar parameter count (for the paper's storage-overhead math).
  std::size_t parameter_count();

  void zero_gradients();

 private:
  MlpConfig config_;
  std::vector<std::unique_ptr<Layer>> trunk_;
  std::vector<std::unique_ptr<Dense>> heads_;
  std::vector<SoftmaxCrossEntropy> losses_;
  Matrix trunk_output_;  ///< cached for backward
};

}  // namespace odin::nn
