#include "nn/conv_layer.hpp"

#include <cassert>
#include <cmath>

namespace odin::nn {

Image col2im(const Matrix& cols, const ConvSpec& spec, int in_h, int in_w) {
  Image img{spec.in_channels, in_h, in_w,
            std::vector<double>(
                static_cast<std::size_t>(spec.in_channels) * in_h * in_w,
                0.0)};
  const int oh = spec.out_dim(in_h);
  const int ow = spec.out_dim(in_w);
  assert(cols.rows() == static_cast<std::size_t>(oh) * ow);
  assert(cols.cols() == static_cast<std::size_t>(spec.patch_size()));
  std::size_t row = 0;
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox, ++row) {
      std::size_t col = 0;
      for (int c = 0; c < spec.in_channels; ++c) {
        for (int ky = 0; ky < spec.kernel; ++ky) {
          for (int kx = 0; kx < spec.kernel; ++kx, ++col) {
            const int y = oy * spec.stride + ky - spec.padding;
            const int x = ox * spec.stride + kx - spec.padding;
            if (y >= 0 && y < in_h && x >= 0 && x < in_w)
              img.at(c, y, x) += cols(row, col);
          }
        }
      }
    }
  }
  return img;
}

Conv2dLayer::Conv2dLayer(ConvSpec spec, int in_h, int in_w,
                         common::Rng& rng)
    : spec_(spec), in_h_(in_h), in_w_(in_w), out_h_(spec.out_dim(in_h)),
      out_w_(spec.out_dim(in_w)) {
  const double stddev =
      std::sqrt(2.0 / static_cast<double>(spec.patch_size()));
  weight_.value = Matrix::randn(static_cast<std::size_t>(spec.patch_size()),
                                static_cast<std::size_t>(spec.out_channels),
                                stddev, rng);
  weight_.grad = Matrix(weight_.value.rows(), weight_.value.cols());
  bias_.value = Matrix(1, static_cast<std::size_t>(spec.out_channels));
  bias_.grad = Matrix(1, static_cast<std::size_t>(spec.out_channels));
}

Matrix Conv2dLayer::forward(const Matrix& input) {
  const std::size_t in_features =
      static_cast<std::size_t>(spec_.in_channels) * in_h_ * in_w_;
  assert(input.cols() == in_features);
  (void)in_features;
  const std::size_t positions = static_cast<std::size_t>(out_h_) * out_w_;
  Matrix out(input.rows(), out_features());
  cached_cols_.clear();
  cached_cols_.reserve(input.rows());
  for (std::size_t n = 0; n < input.rows(); ++n) {
    Image img{spec_.in_channels, in_h_, in_w_,
              std::vector<double>(input.row(n).begin(), input.row(n).end())};
    Matrix cols = im2col(img, spec_);
    const Matrix prod = matmul(cols, weight_.value);  // [pos x OC]
    for (int oc = 0; oc < spec_.out_channels; ++oc)
      for (std::size_t p = 0; p < positions; ++p)
        out(n, static_cast<std::size_t>(oc) * positions + p) =
            prod(p, static_cast<std::size_t>(oc)) + bias_.value(0, static_cast<std::size_t>(oc));
    cached_cols_.push_back(std::move(cols));
  }
  return out;
}

Matrix Conv2dLayer::backward(const Matrix& grad_output) {
  assert(grad_output.rows() == cached_cols_.size());
  const std::size_t positions = static_cast<std::size_t>(out_h_) * out_w_;
  Matrix grad_input(grad_output.rows(),
                    static_cast<std::size_t>(spec_.in_channels) * in_h_ *
                        in_w_);
  for (std::size_t n = 0; n < grad_output.rows(); ++n) {
    // Reshape the flattened row gradient into [positions x out_channels].
    Matrix dout(positions, static_cast<std::size_t>(spec_.out_channels));
    for (int oc = 0; oc < spec_.out_channels; ++oc)
      for (std::size_t p = 0; p < positions; ++p)
        dout(p, static_cast<std::size_t>(oc)) =
            grad_output(n, static_cast<std::size_t>(oc) * positions + p);
    // dW += cols^T * dout ; db += column sums ; dcols = dout * W^T.
    axpy(1.0, matmul_at_b(cached_cols_[n], dout), weight_.grad);
    for (std::size_t p = 0; p < positions; ++p)
      for (int oc = 0; oc < spec_.out_channels; ++oc)
        bias_.grad(0, static_cast<std::size_t>(oc)) +=
            dout(p, static_cast<std::size_t>(oc));
    const Matrix dcols = matmul_a_bt(dout, weight_.value);
    const Image dimg = col2im(dcols, spec_, in_h_, in_w_);
    auto dst = grad_input.row(n);
    std::copy(dimg.data.begin(), dimg.data.end(), dst.begin());
  }
  return grad_input;
}

MaxPool2Layer::MaxPool2Layer(int channels, int in_h, int in_w)
    : channels_(channels), in_h_(in_h), in_w_(in_w) {
  assert(in_h % 2 == 0 && in_w % 2 == 0);
}

Matrix MaxPool2Layer::forward(const Matrix& input) {
  const int oh = in_h_ / 2, ow = in_w_ / 2;
  assert(input.cols() ==
         static_cast<std::size_t>(channels_) * in_h_ * in_w_);
  Matrix out(input.rows(), out_features());
  argmax_.assign(input.rows(), {});
  for (std::size_t n = 0; n < input.rows(); ++n) {
    auto row = input.row(n);
    auto& winners = argmax_[n];
    winners.resize(out_features());
    std::size_t o = 0;
    for (int c = 0; c < channels_; ++c) {
      const std::size_t base = static_cast<std::size_t>(c) * in_h_ * in_w_;
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x, ++o) {
          std::size_t best_idx = base + static_cast<std::size_t>(2 * y) * in_w_ + 2 * x;
          double best = row[best_idx];
          const std::size_t candidates[3] = {
              base + static_cast<std::size_t>(2 * y) * in_w_ + 2 * x + 1,
              base + static_cast<std::size_t>(2 * y + 1) * in_w_ + 2 * x,
              base + static_cast<std::size_t>(2 * y + 1) * in_w_ + 2 * x + 1};
          for (std::size_t idx : candidates)
            if (row[idx] > best) {
              best = row[idx];
              best_idx = idx;
            }
          out(n, o) = best;
          winners[o] = best_idx;
        }
      }
    }
  }
  return out;
}

Matrix MaxPool2Layer::backward(const Matrix& grad_output) {
  assert(grad_output.rows() == argmax_.size());
  Matrix grad_input(grad_output.rows(),
                    static_cast<std::size_t>(channels_) * in_h_ * in_w_);
  for (std::size_t n = 0; n < grad_output.rows(); ++n)
    for (std::size_t o = 0; o < argmax_[n].size(); ++o)
      grad_input(n, argmax_[n][o]) += grad_output(n, o);
  return grad_input;
}

}  // namespace odin::nn
