// Analytical energy / latency / EDP model for OU-based computation.
//
// The ADC-dominant terms are the paper's Eqs. 1-2:
//   Latency ~ C * log2(R) * OU_cycles      (per crossbar; crossbars parallel)
//   Energy  ~ log2(R) * R * C * OU_cycles  (summed over crossbars)
// with the ADC precision clamped to Table I's reconfigurable 3..6 bits.
//
// Eqs. 1-2 alone make both energy and latency independent of C for dense
// layers (C cancels against the OU cycle count), which would degenerate the
// search. Real PIM pipelines are not C-degenerate: each OU cycle also pays
//   - a fixed wordline-charge / sample-and-hold settling time (latency),
//   - DAC / wordline drive energy proportional to R,
//   - S&H and shift-and-add energy proportional to C,
//   - input/output register traffic proportional to R + C,
//   - array read energy proportional to R * C.
// These NeuroSim-style peripheral terms are included with pJ/ns-magnitude
// defaults (DESIGN.md §4); they produce the interior optima of Fig. 3
// (fine OUs for sparse/sensitive layers, ~32x32 for dense late layers).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "dnn/layer_desc.hpp"
#include "ou/mapper.hpp"
#include "ou/ou_config.hpp"
#include "reram/device.hpp"

namespace odin::ou {

/// How the pipeline exploits zero *activations* (paper Sec. II: prior OU
/// work exploits both weight and activation sparsity).
enum class ActivationHandling {
  kNone,        ///< every live OU block is computed for every position
  kRowSkip,     ///< skip an OU cycle when all R input activations are zero
  kCompaction,  ///< gather non-zero activations (needs input index fetch)
};

struct CostParams {
  // --- ADC (paper Eq. 1-2) ---
  double adc_energy_unit_j = 0.02 * units::pJ;  ///< x bits * R * C per OU
  double adc_latency_unit_s = 0.83 * units::ns; ///< x bits * C per OU
  int adc_min_bits = 3;  ///< Table I: reconfigurable precision 3..6 bits
  int adc_max_bits = 6;

  // --- peripherals, per OU cycle ---
  /// WL charge + S&H settle. Deliberately small relative to the ADC
  /// conversion train: Eq. 1's latency structure (C * log2 R per cycle)
  /// must stay dominant or fine OUs become an order of magnitude slower
  /// than Eq. 1 predicts, which would contradict the paper's Fig. 8 totals
  /// for the forced-fine-OU regime late in the drift horizon.
  double fixed_latency_s = 8.0 * units::ns;
  /// Cycle-invariant energy: row decode, OU control, IR register access.
  /// This is what makes very fine OUs (many cycles) energy-hungry — the
  /// effect behind the paper's "fine-grained OUs cost more energy than
  /// Odin" observation (Sec. V-C).
  double fixed_energy_j = 3.0 * units::pJ;
  double dac_energy_per_row_j = 0.05 * units::pJ;
  double sh_energy_per_col_j = 0.01 * units::pJ;
  double sa_energy_per_col_j = 0.03 * units::pJ;   ///< shift-and-add merge
  double array_energy_per_cell_j = 0.005 * units::pJ;
  double buffer_energy_per_line_j = 0.02 * units::pJ;  ///< x (R + C)

  // --- activation sparsity (off by default; ablation territory) ---
  ActivationHandling activation_handling = ActivationHandling::kNone;
  /// Index-fetch energy per OU cycle when compaction gathers activations.
  double compaction_index_energy_j = 0.5 * units::pJ;

  /// ADC precision for an OU of height `rows`: clamp(ceil(log2 R), 3, 6).
  int adc_bits(int rows) const noexcept;

  /// Fraction of OU cycles that still execute given the layer's input
  /// activation sparsity: 1 for kNone; 1 - s^R for row skipping (the whole
  /// R-row slice must be zero); 1 - s for compaction.
  double activation_cycle_factor(int rows,
                                 double activation_sparsity) const noexcept;
};

/// Component-resolved cost of executing one layer for one inference.
struct LayerCost {
  common::EnergyLatency adc;
  common::EnergyLatency peripheral;
  common::EnergyLatency total() const noexcept { return adc + peripheral; }
  double edp() const noexcept { return total().edp(); }
};

class OuCostModel {
 public:
  OuCostModel(CostParams params, reram::DeviceParams device)
      : params_(params), device_(device) {}

  const CostParams& params() const noexcept { return params_; }

  /// Inference cost of one layer under `config`, given its OU activity.
  /// `activation_sparsity` only matters when the params enable an
  /// activation-handling mode.
  LayerCost layer_cost(const OuCounts& counts, OuConfig config,
                       double activation_sparsity = 0.0) const;

  /// Convenience: energy * latency of layer_cost.
  double layer_edp(const OuCounts& counts, OuConfig config,
                   double activation_sparsity = 0.0) const;

  /// Cost of reprogramming a layer: every non-zero cell rewritten, rows
  /// driven band by band. `row_writes` = rows * output-column bands.
  common::EnergyLatency reprogram_cost(std::int64_t cells,
                                       std::int64_t row_writes) const;

  /// Reprogramming cost of an entire mapped layer.
  common::EnergyLatency reprogram_cost(const LayerMapping& mapping) const;

 private:
  CostParams params_;
  reram::DeviceParams device_;
};

}  // namespace odin::ou
