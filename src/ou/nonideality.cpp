#include "ou/nonideality.hpp"

#include <algorithm>
#include <cmath>

namespace odin::ou {

double NonIdealityModel::layer_sensitivity(int index,
                                           int layer_count) const noexcept {
  if (layer_count <= 1) return params_.sensitivity_max;
  const double frac =
      static_cast<double>(index) / static_cast<double>(layer_count);
  return 1.0 + (params_.sensitivity_max - 1.0) *
                   std::exp(-params_.sensitivity_decay * frac);
}

double NonIdealityModel::total_nf(double elapsed_s,
                                  OuConfig config) const noexcept {
  return reram::relative_conductance_error(device_, elapsed_s, config.rows,
                                           config.cols, wire_scale_);
}

double NonIdealityModel::ir_nf(double elapsed_s,
                               OuConfig config) const noexcept {
  return reram::nonideality_components(device_, elapsed_s, config.rows,
                                       config.cols, wire_scale_)
      .ir_drop;
}

double NonIdealityModel::drift_nf(double elapsed_s) const noexcept {
  return reram::nonideality_components(device_, elapsed_s, 1, 1, wire_scale_)
      .drift;
}

bool NonIdealityModel::feasible(double elapsed_s, OuConfig config,
                                double sensitivity, double extra_nf,
                                double eta_scale) const noexcept {
  const auto parts =
      reram::nonideality_components(device_, elapsed_s, config.rows,
                                    config.cols, wire_scale_);
  return parts.total() + extra_nf <= params_.eta_total * eta_scale &&
         sensitivity * parts.ir_drop <= params_.eta_ir * eta_scale;
}

bool NonIdealityModel::reprogram_required(double elapsed_s,
                                          const OuLevelGrid& grid,
                                          double sensitivity, double extra_nf,
                                          double eta_scale) const noexcept {
  return !feasible(elapsed_s, grid.min_config(), sensitivity, extra_nf,
                   eta_scale);
}

int NonIdealityModel::max_feasible_sum(double elapsed_s,
                                       const OuLevelGrid& grid,
                                       double sensitivity) const noexcept {
  int best = 0;
  for (const OuConfig& cfg : grid.all_configs())
    if (feasible(elapsed_s, cfg, sensitivity))
      best = std::max(best, cfg.sum());
  return best;
}

NonIdealityCache::NonIdealityCache(const NonIdealityModel& model,
                                   const OuLevelGrid& grid)
    : model_(&model), grid_(grid) {
  const std::size_t entries =
      static_cast<std::size_t>(grid.levels()) * grid.levels();
  total_.resize(entries);
  ir_.resize(entries);
  comp_total_.resize(entries);
}

int NonIdealityCache::index_of(OuConfig config) const noexcept {
  const int rl = grid_.level_of(config.rows);
  const int cl = grid_.level_of(config.cols);
  if (rl < 0 || cl < 0) return -1;
  return rl * grid_.levels() + cl;
}

void NonIdealityCache::rebuild(double elapsed_s) {
  if (matches(elapsed_s)) return;
  // One elapsed time, many OU shapes: the drift pow is shape-independent,
  // so evaluate it once and sweep the grid through the given-drift form of
  // Eq. 4 — bitwise the same values the per-config calls produce.
  const reram::DeviceParams& dev = model_->device();
  const double g_drift = reram::drift_conductance(dev, elapsed_s);
  const double drift_nf = (dev.g_on_s - g_drift) / dev.g_on_s;
  for (int rl = 0; rl < grid_.levels(); ++rl) {
    for (int cl = 0; cl < grid_.levels(); ++cl) {
      const OuConfig cfg = grid_.config_at(rl, cl);
      const std::size_t i = static_cast<std::size_t>(rl) * grid_.levels() +
                            cl;
      const double g_eff = reram::effective_conductance_given_drift(
          dev, g_drift, cfg.rows, cfg.cols, model_->wire_scale());
      total_[i] = std::abs(dev.g_on_s - g_eff) / dev.g_on_s;
      const double ir_nf = (g_drift - g_eff) / dev.g_on_s;
      ir_[i] = ir_nf;
      comp_total_[i] = drift_nf + ir_nf;
    }
  }
  elapsed_s_ = elapsed_s;
  built_ = true;
}

double NonIdealityCache::total_nf(OuConfig config) const noexcept {
  const int i = index_of(config);
  if (i < 0) return model_->total_nf(elapsed_s_, config);
  return total_[static_cast<std::size_t>(i)];
}

double NonIdealityCache::ir_nf(OuConfig config) const noexcept {
  const int i = index_of(config);
  if (i < 0) return model_->ir_nf(elapsed_s_, config);
  return ir_[static_cast<std::size_t>(i)];
}

bool NonIdealityCache::feasible(OuConfig config, double sensitivity,
                                double extra_nf,
                                double eta_scale) const noexcept {
  const int i = index_of(config);
  if (i < 0)
    return model_->feasible(elapsed_s_, config, sensitivity, extra_nf,
                            eta_scale);
  const auto& p = model_->params();
  return comp_total_[static_cast<std::size_t>(i)] + extra_nf <=
             p.eta_total * eta_scale &&
         sensitivity * ir_[static_cast<std::size_t>(i)] <=
             p.eta_ir * eta_scale;
}

}  // namespace odin::ou
