#include "ou/nonideality.hpp"

#include <algorithm>
#include <cmath>

namespace odin::ou {

double NonIdealityModel::layer_sensitivity(int index,
                                           int layer_count) const noexcept {
  if (layer_count <= 1) return params_.sensitivity_max;
  const double frac =
      static_cast<double>(index) / static_cast<double>(layer_count);
  return 1.0 + (params_.sensitivity_max - 1.0) *
                   std::exp(-params_.sensitivity_decay * frac);
}

double NonIdealityModel::total_nf(double elapsed_s,
                                  OuConfig config) const noexcept {
  return reram::relative_conductance_error(device_, elapsed_s, config.rows,
                                           config.cols, wire_scale_);
}

double NonIdealityModel::ir_nf(double elapsed_s,
                               OuConfig config) const noexcept {
  return reram::nonideality_components(device_, elapsed_s, config.rows,
                                       config.cols, wire_scale_)
      .ir_drop;
}

double NonIdealityModel::drift_nf(double elapsed_s) const noexcept {
  return reram::nonideality_components(device_, elapsed_s, 1, 1, wire_scale_)
      .drift;
}

bool NonIdealityModel::feasible(double elapsed_s, OuConfig config,
                                double sensitivity) const noexcept {
  const auto parts =
      reram::nonideality_components(device_, elapsed_s, config.rows,
                                    config.cols, wire_scale_);
  return parts.total() <= params_.eta_total &&
         sensitivity * parts.ir_drop <= params_.eta_ir;
}

bool NonIdealityModel::reprogram_required(double elapsed_s,
                                          const OuLevelGrid& grid,
                                          double sensitivity) const noexcept {
  return !feasible(elapsed_s, grid.min_config(), sensitivity);
}

int NonIdealityModel::max_feasible_sum(double elapsed_s,
                                       const OuLevelGrid& grid,
                                       double sensitivity) const noexcept {
  int best = 0;
  for (const OuConfig& cfg : grid.all_configs())
    if (feasible(elapsed_s, cfg, sensitivity))
      best = std::max(best, cfg.sum());
  return best;
}

}  // namespace odin::ou
