// MappedModel: a pruned DNN workload bound to a crossbar size, with one
// LayerMapping per layer. Owns the pruned model on the heap so the mappings'
// internal pointers stay valid for the object's lifetime.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "dnn/pruning.hpp"
#include "ou/mapper.hpp"

namespace odin::ou {

class MappedModel {
 public:
  MappedModel(dnn::PrunedModel pruned, int crossbar_size)
      : pruned_(std::make_unique<dnn::PrunedModel>(std::move(pruned))),
        crossbar_size_(crossbar_size) {
    mappings_.reserve(pruned_->model.layers.size());
    for (std::size_t i = 0; i < pruned_->model.layers.size(); ++i)
      mappings_.emplace_back(pruned_->model.layers[i], pruned_->patterns[i],
                             crossbar_size);
  }

  MappedModel(const MappedModel&) = delete;
  MappedModel& operator=(const MappedModel&) = delete;
  MappedModel(MappedModel&&) = default;
  MappedModel& operator=(MappedModel&&) = default;

  const dnn::DnnModel& model() const noexcept { return pruned_->model; }
  const dnn::PrunedModel& pruned() const noexcept { return *pruned_; }
  int crossbar_size() const noexcept { return crossbar_size_; }

  std::size_t layer_count() const noexcept { return mappings_.size(); }
  const LayerMapping& mapping(std::size_t layer) const noexcept {
    assert(layer < mappings_.size());
    return mappings_[layer];
  }

 private:
  std::unique_ptr<dnn::PrunedModel> pruned_;
  int crossbar_size_;
  std::vector<LayerMapping> mappings_;
};

}  // namespace odin::ou
