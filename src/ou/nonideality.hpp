// Non-ideality model: paper Eqs. 3-4 with the layer-sensitivity extension
// and the calibrated constants justified in DESIGN.md §4.
//
// Two constraints gate an OU configuration for layer j at elapsed time t:
//
//  1. Total conductance error (Eq. 4, exact):
//         NF_total(R, C, t) = |G_ON - G_eff(R, C, t)| / G_ON  <=  eta
//     The drift component is OU-independent and grows monotonically, so this
//     is what eventually forces OU shrinking (Fig. 4) and, once even the
//     minimum OU violates it, device reprogramming (Algorithm 1 line 7).
//
//  2. IR-drop component scaled by layer sensitivity:
//         s_j * NF_ir(R, C, t)  <=  eta_ir
//     Early layers matter more for accuracy (paper Sec. III-A); IR-drop is
//     the spatially-varying error that hurts them, while the drift component
//     is a global scale factor. Scaling only the IR term keeps the
//     reprogramming cadence device-global (matching Fig. 6's counts) while
//     still forcing fine OUs (e.g. 16x8) onto early layers at t0 (Fig. 3).
#pragma once

#include <vector>

#include "ou/ou_config.hpp"
#include "reram/device.hpp"

namespace odin::ou {

struct NonIdealityParams {
  /// Threshold on NF_total. The paper states eta = 0.5% as an accuracy-loss
  /// budget; our surrogate maps 4% relative conductance error to ~0.5%
  /// accuracy loss (DESIGN.md §4), and 0.04 reproduces Fig. 6's counts.
  double eta_total = 0.04;
  /// IR-drop budget at sensitivity 1. 0.024 allows R+C <= 72 for the least
  /// sensitive layers at t0 and R+C <= 24 for the most sensitive ones.
  double eta_ir = 0.024;
  /// Layer sensitivity s_j = 1 + (max-1) * exp(-decay * index / layers).
  double sensitivity_max = 3.0;
  double sensitivity_decay = 3.0;
};

class NonIdealityModel {
 public:
  /// Reference crossbar dimension for the wire-length scaling of Eq. 4
  /// (the paper's arrays are 128x128).
  static constexpr int kReferenceCrossbar = 128;

  /// `crossbar_size` sets the wire-length scale of the IR-drop term
  /// (Sec. V-D sensitivity analysis); 128 reproduces Eq. 4 verbatim.
  NonIdealityModel(reram::DeviceParams device, NonIdealityParams params,
                   int crossbar_size = kReferenceCrossbar)
      : device_(device), params_(params),
        wire_scale_(static_cast<double>(crossbar_size) /
                    kReferenceCrossbar) {}

  const reram::DeviceParams& device() const noexcept { return device_; }
  const NonIdealityParams& params() const noexcept { return params_; }
  double wire_scale() const noexcept { return wire_scale_; }

  /// s_j for a layer at position `index` of `layer_count`.
  double layer_sensitivity(int index, int layer_count) const noexcept;

  /// Relative total conductance error (Eq. 4 / G_ON) at `elapsed` seconds
  /// since programming.
  double total_nf(double elapsed_s, OuConfig config) const noexcept;

  /// IR-drop component of the error, relative to G_ON.
  double ir_nf(double elapsed_s, OuConfig config) const noexcept;

  /// Drift component (OU-independent), relative to G_ON.
  double drift_nf(double elapsed_s) const noexcept;

  /// Both constraints for a layer with sensitivity s. `extra_nf` is an
  /// OU-independent error floor added to the total term — the measured
  /// stuck-cell fraction a read-verify pass reports (writes cannot remove
  /// it, so unlike drift it survives reprogramming). `eta_scale` widens
  /// both budgets (>= 1), the controlled relaxation a degraded controller
  /// applies instead of reprogramming a permanently damaged array.
  bool feasible(double elapsed_s, OuConfig config, double sensitivity,
                double extra_nf = 0.0, double eta_scale = 1.0) const noexcept;

  /// Algorithm 1 line 7: no OU size can satisfy the constraint. NF is
  /// monotone in R + C, so checking the grid's minimum config is exact.
  bool reprogram_required(double elapsed_s, const OuLevelGrid& grid,
                          double sensitivity, double extra_nf = 0.0,
                          double eta_scale = 1.0) const noexcept;

  /// Largest feasible R + C at `elapsed` for sensitivity s (0 if none);
  /// useful to property-test monotone OU shrinking.
  int max_feasible_sum(double elapsed_s, const OuLevelGrid& grid,
                       double sensitivity) const noexcept;

 private:
  reram::DeviceParams device_;
  NonIdealityParams params_;
  double wire_scale_;
};

/// Memoized NF factors for every configuration of one level grid at a fixed
/// elapsed-time bucket. total_nf / ir_nf are pure in (config, elapsed) yet
/// re-evaluated thousands of times per search sweep (every candidate of
/// every layer of every greedy step shares one drift step), so the
/// controller rebuilds this once per drift step and the searches read it.
///
/// Concurrency contract: rebuild() is single-threaded (call before fanning
/// out); the accessors are const reads and safe to share across threads.
/// Values are produced by the exact NonIdealityModel calls they replace, so
/// cached and uncached searches are bitwise identical.
class NonIdealityCache {
 public:
  NonIdealityCache(const NonIdealityModel& model, const OuLevelGrid& grid);

  /// Recompute every grid entry for a new elapsed bucket; no-op when the
  /// bucket is unchanged.
  void rebuild(double elapsed_s);

  /// True when the cache holds entries for exactly this elapsed time.
  bool matches(double elapsed_s) const noexcept {
    return built_ && elapsed_s == elapsed_s_;
  }

  const NonIdealityModel& model() const noexcept { return *model_; }

  double total_nf(OuConfig config) const noexcept;
  double ir_nf(OuConfig config) const noexcept;
  /// Both constraints, as NonIdealityModel::feasible evaluates them (via
  /// the components' sum, which differs from total_nf by FP rounding).
  /// `extra_nf` / `eta_scale` match NonIdealityModel::feasible.
  bool feasible(OuConfig config, double sensitivity, double extra_nf = 0.0,
                double eta_scale = 1.0) const noexcept;

 private:
  /// Dense slot for an on-grid config; -1 when the config is off-grid
  /// (accessors then fall back to the model).
  int index_of(OuConfig config) const noexcept;

  const NonIdealityModel* model_;
  OuLevelGrid grid_;
  double elapsed_s_ = 0.0;
  bool built_ = false;
  std::vector<double> total_;       ///< relative_conductance_error form
  std::vector<double> ir_;          ///< IR-drop component
  std::vector<double> comp_total_;  ///< drift + ir component sum form
};

}  // namespace odin::ou
