// Non-ideality model: paper Eqs. 3-4 with the layer-sensitivity extension
// and the calibrated constants justified in DESIGN.md §4.
//
// Two constraints gate an OU configuration for layer j at elapsed time t:
//
//  1. Total conductance error (Eq. 4, exact):
//         NF_total(R, C, t) = |G_ON - G_eff(R, C, t)| / G_ON  <=  eta
//     The drift component is OU-independent and grows monotonically, so this
//     is what eventually forces OU shrinking (Fig. 4) and, once even the
//     minimum OU violates it, device reprogramming (Algorithm 1 line 7).
//
//  2. IR-drop component scaled by layer sensitivity:
//         s_j * NF_ir(R, C, t)  <=  eta_ir
//     Early layers matter more for accuracy (paper Sec. III-A); IR-drop is
//     the spatially-varying error that hurts them, while the drift component
//     is a global scale factor. Scaling only the IR term keeps the
//     reprogramming cadence device-global (matching Fig. 6's counts) while
//     still forcing fine OUs (e.g. 16x8) onto early layers at t0 (Fig. 3).
#pragma once

#include "ou/ou_config.hpp"
#include "reram/device.hpp"

namespace odin::ou {

struct NonIdealityParams {
  /// Threshold on NF_total. The paper states eta = 0.5% as an accuracy-loss
  /// budget; our surrogate maps 4% relative conductance error to ~0.5%
  /// accuracy loss (DESIGN.md §4), and 0.04 reproduces Fig. 6's counts.
  double eta_total = 0.04;
  /// IR-drop budget at sensitivity 1. 0.024 allows R+C <= 72 for the least
  /// sensitive layers at t0 and R+C <= 24 for the most sensitive ones.
  double eta_ir = 0.024;
  /// Layer sensitivity s_j = 1 + (max-1) * exp(-decay * index / layers).
  double sensitivity_max = 3.0;
  double sensitivity_decay = 3.0;
};

class NonIdealityModel {
 public:
  /// Reference crossbar dimension for the wire-length scaling of Eq. 4
  /// (the paper's arrays are 128x128).
  static constexpr int kReferenceCrossbar = 128;

  /// `crossbar_size` sets the wire-length scale of the IR-drop term
  /// (Sec. V-D sensitivity analysis); 128 reproduces Eq. 4 verbatim.
  NonIdealityModel(reram::DeviceParams device, NonIdealityParams params,
                   int crossbar_size = kReferenceCrossbar)
      : device_(device), params_(params),
        wire_scale_(static_cast<double>(crossbar_size) /
                    kReferenceCrossbar) {}

  const reram::DeviceParams& device() const noexcept { return device_; }
  const NonIdealityParams& params() const noexcept { return params_; }
  double wire_scale() const noexcept { return wire_scale_; }

  /// s_j for a layer at position `index` of `layer_count`.
  double layer_sensitivity(int index, int layer_count) const noexcept;

  /// Relative total conductance error (Eq. 4 / G_ON) at `elapsed` seconds
  /// since programming.
  double total_nf(double elapsed_s, OuConfig config) const noexcept;

  /// IR-drop component of the error, relative to G_ON.
  double ir_nf(double elapsed_s, OuConfig config) const noexcept;

  /// Drift component (OU-independent), relative to G_ON.
  double drift_nf(double elapsed_s) const noexcept;

  /// Both constraints for a layer with sensitivity s.
  bool feasible(double elapsed_s, OuConfig config,
                double sensitivity) const noexcept;

  /// Algorithm 1 line 7: no OU size can satisfy the constraint. NF is
  /// monotone in R + C, so checking the grid's minimum config is exact.
  bool reprogram_required(double elapsed_s, const OuLevelGrid& grid,
                          double sensitivity) const noexcept;

  /// Largest feasible R + C at `elapsed` for sensitivity s (0 if none);
  /// useful to property-test monotone OU shrinking.
  int max_feasible_sum(double elapsed_s, const OuLevelGrid& grid,
                       double sensitivity) const noexcept;

 private:
  reram::DeviceParams device_;
  NonIdealityParams params_;
  double wire_scale_;
};

}  // namespace odin::ou
