// OU-level weight-compression index storage (paper Sec. II).
//
// Prior OU work (Sparse ReRAM Engine [14], zero compression [16]) compresses
// weights at OU granularity and must therefore store input/output indices —
// computed OFFLINE — so the right activations reach the compressed rows at
// runtime. The paper's argument against applying those schemes to
// drift-adaptive OU sizing: the optimal OU configuration changes over time,
// so the pre-computed index tables would have to exist for every
// configuration ever used ("requiring unlimited storage"). Odin instead
// forms virtual OUs in the controller, paying a small fixed logic area.
//
// This model quantifies that trade-off; bench/ablation_index_storage
// reproduces the argument with numbers.
#pragma once

#include <cstdint>
#include <span>

#include "ou/mapped_model.hpp"
#include "ou/mapper.hpp"
#include "ou/ou_config.hpp"

namespace odin::ou {

class IndexStorageModel {
 public:
  explicit IndexStorageModel(int crossbar_size)
      : crossbar_size_(crossbar_size) {}

  /// Bits to address one wordline / bitline within a crossbar.
  int address_bits() const noexcept;

  /// Index storage for one layer under one OU configuration: each live
  /// block stores the crossbar-local row index of its R rows plus the
  /// column index of its C columns (the fetch lists of [14]/[16]).
  std::int64_t layer_index_bits(const LayerMapping& mapping,
                                OuConfig config) const;

  /// Whole-model storage for a single (homogeneous) configuration.
  std::int64_t model_index_bits(const MappedModel& model,
                                OuConfig config) const;

  /// Storage needed if tables must exist for EVERY configuration in
  /// `configs` (what a stored-table design would need to track Odin's
  /// time-varying choices).
  std::int64_t model_index_bits_union(const MappedModel& model,
                                      std::span<const OuConfig> configs) const;

 private:
  int crossbar_size_;
};

}  // namespace odin::ou
