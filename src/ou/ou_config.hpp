// Operation-Unit (OU) configurations and the discrete size grid Odin
// searches over.
//
// Paper Sec. V-A: for a 128x128 crossbar, R and C are constrained to 2^L
// with integer L in [2, 7] — six discrete values {4, 8, 16, 32, 64, 128}.
// Smaller crossbars truncate the grid at the crossbar dimension.
#pragma once

#include <cassert>
#include <compare>
#include <string>
#include <vector>

#include "common/math.hpp"

namespace odin::ou {

/// One OU shape: `rows` wordlines x `cols` bitlines activated per cycle.
struct OuConfig {
  int rows = 16;
  int cols = 16;

  int sum() const noexcept { return rows + cols; }
  long long product() const noexcept {
    return static_cast<long long>(rows) * cols;
  }
  auto operator<=>(const OuConfig&) const = default;

  std::string to_string() const {
    return std::to_string(rows) + "x" + std::to_string(cols);
  }
};

/// The discrete level grid: level l maps to size 2^(l + kMinExponent).
class OuLevelGrid {
 public:
  static constexpr int kMinExponent = 2;  ///< smallest OU side = 4
  static constexpr int kMaxExponent = 7;  ///< largest OU side = 128

  explicit OuLevelGrid(int crossbar_size) : crossbar_size_(crossbar_size) {
    assert(common::is_pow2(crossbar_size) && crossbar_size >= 4);
    const int top = std::min(kMaxExponent, common::log2_exact(crossbar_size));
    levels_ = top - kMinExponent + 1;
  }

  int crossbar_size() const noexcept { return crossbar_size_; }

  /// Number of discrete sizes per dimension (6 for a 128x128 crossbar).
  int levels() const noexcept { return levels_; }

  int size_at(int level) const noexcept {
    assert(level >= 0 && level < levels_);
    return 1 << (level + kMinExponent);
  }

  /// Level of an exact grid size; -1 if the size is not on the grid.
  int level_of(int size) const noexcept {
    if (!common::is_pow2(size)) return -1;
    const int l = common::log2_exact(size) - kMinExponent;
    return (l >= 0 && l < levels_) ? l : -1;
  }

  OuConfig config_at(int row_level, int col_level) const noexcept {
    return {size_at(row_level), size_at(col_level)};
  }

  /// All levels^2 configurations, row-major in (row_level, col_level).
  std::vector<OuConfig> all_configs() const {
    std::vector<OuConfig> out;
    out.reserve(static_cast<std::size_t>(levels_) * levels_);
    for (int r = 0; r < levels_; ++r)
      for (int c = 0; c < levels_; ++c) out.push_back(config_at(r, c));
    return out;
  }

  /// Smallest (most IR-drop-tolerant) configuration on the grid.
  OuConfig min_config() const noexcept { return config_at(0, 0); }

 private:
  int crossbar_size_;
  int levels_;
};

}  // namespace odin::ou
