#include "ou/mapper.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "common/math.hpp"

namespace odin::ou {

LayerMapping::LayerMapping(const dnn::LayerDescriptor& layer,
                           const dnn::WeightPattern& pattern,
                           int crossbar_size)
    : layer_(&layer), pattern_(&pattern), crossbar_size_(crossbar_size),
      cache_mutex_(std::make_unique<std::shared_mutex>()) {
  assert(pattern.rows() == layer.fan_in && pattern.cols() == layer.outputs);
  assert(crossbar_size > 0);
  crossbars_ = common::ceil_div(layer.fan_in, crossbar_size) *
               common::ceil_div(layer.outputs, crossbar_size);
}

std::int64_t LayerMapping::programmed_cells() const noexcept {
  return pattern_->nonzeros();
}

const OuCounts& LayerMapping::counts(OuConfig config) const {
  {
    std::shared_lock<std::shared_mutex> lock(*cache_mutex_);
    const auto it = cache_.find(config);
    if (it != cache_.end()) return it->second;
  }
  // Compute outside the lock: the scan is pure, and if two threads race on
  // the same config they produce identical values (first insert wins).
  OuCounts fresh = compute(config);
  std::unique_lock<std::shared_mutex> lock(*cache_mutex_);
  // std::map nodes are stable, so the reference survives later inserts.
  return cache_.emplace(config, fresh).first->second;
}

OuCounts LayerMapping::compute(OuConfig config) const {
  assert(config.rows >= 1 && config.cols >= 1);
  const int c = crossbar_size_;
  const int K = layer_->fan_in;
  const int M = layer_->outputs;
  const int R = std::min(config.rows, c);
  const int C = std::min(config.cols, c);

  OuCounts out;
  std::int64_t laid_out = 0;
  // Walk crossbars; within each, walk the OU grid anchored at the crossbar
  // origin (OU blocks never straddle crossbar boundaries).
  for (int xr = 0; xr < K; xr += c) {
    const int xbar_rows = std::min(c, K - xr);
    for (int xc = 0; xc < M; xc += c) {
      const int xbar_cols = std::min(c, M - xc);
      std::int64_t live_here = 0;
      for (int r0 = 0; r0 < xbar_rows; r0 += R) {
        for (int c0 = 0; c0 < xbar_cols; c0 += C) {
          ++laid_out;
          if (pattern_->block_live(xr + r0, xc + c0, R, C)) ++live_here;
        }
      }
      out.live_blocks += live_here;
      out.max_blocks_per_xbar = std::max(out.max_blocks_per_xbar, live_here);
    }
  }
  const auto positions = static_cast<std::int64_t>(layer_->spatial_positions);
  out.total_ou_cycles = out.live_blocks * positions;
  out.max_ou_cycles_per_xbar = out.max_blocks_per_xbar * positions;
  out.occupancy = laid_out > 0 ? static_cast<double>(out.live_blocks) /
                                     static_cast<double>(laid_out)
                               : 0.0;
  return out;
}

}  // namespace odin::ou
