// Best-OU search (Algorithm 1, line 6): exhaustive (EX) and resource-bounded
// (RB) variants.
//
// EX scans the full discrete grid (36 configurations on a 128x128 crossbar).
// RB is the paper's low-overhead alternative: a greedy local search seeded at
// the policy's prediction, taking at most K steps, each step evaluating the
// four +-1-level neighbours and moving to the best. With K = 3 this costs
// ~13 evaluations vs EX's 36 — the ~3x timing-overhead gap the paper reports
// (Sec. V-B), which bench/micro_search_overhead measures.
#pragma once

#include <limits>

#include "common/deadline.hpp"
#include "ou/cost_model.hpp"
#include "ou/mapper.hpp"
#include "ou/nonideality.hpp"
#include "ou/ou_config.hpp"

namespace odin::ou {

/// Everything needed to evaluate OU candidates for one layer at one moment.
struct LayerContext {
  const LayerMapping* mapping = nullptr;
  const OuCostModel* cost = nullptr;
  const NonIdealityModel* nonideal = nullptr;
  const OuLevelGrid* grid = nullptr;
  /// Optional per-drift-step memo of the NF factors (see NonIdealityCache);
  /// consulted only while it matches elapsed_s, so a stale cache degrades
  /// to the direct model calls rather than to wrong answers.
  const NonIdealityCache* cache = nullptr;
  double elapsed_s = 0.0;   ///< time since last programming
  double sensitivity = 1.0; ///< s_j of this layer
  /// Measured OU-independent error floor (stuck-cell fraction from the last
  /// read-verify, already weighted); 0 on a healthy array.
  double nf_floor = 0.0;
  /// Budget relaxation a degraded controller applies (>= 1; 1 = strict).
  double eta_scale = 1.0;
  /// Optional per-request latency budget (see common/deadline.hpp): the
  /// search charges each evaluation against it and stops early with its
  /// best-so-far feasible configuration when it expires. Null = unbounded
  /// (the pre-resilience behaviour, bit for bit).
  common::Deadline* deadline = nullptr;

  double edp(OuConfig config) const {
    return cost->layer_edp(mapping->counts(config), config,
                           mapping->layer().activation_sparsity);
  }
  bool feasible(OuConfig config) const {
    if (cache != nullptr && cache->matches(elapsed_s))
      return cache->feasible(config, sensitivity, nf_floor, eta_scale);
    return nonideal->feasible(elapsed_s, config, sensitivity, nf_floor,
                              eta_scale);
  }
  /// How badly `config` violates the constraints (0 when feasible).
  double violation(OuConfig config) const;
};

struct SearchResult {
  OuConfig best{};
  double edp = std::numeric_limits<double>::infinity();
  bool found = false;   ///< a feasible configuration exists in the search
  int evaluations = 0;  ///< EDP/NF evaluations performed (timing proxy)
  /// The deadline expired before the walk finished its K steps (the
  /// result is the best configuration seen up to that point).
  bool truncated = false;
};

/// Scan every configuration on the grid.
SearchResult exhaustive_search(const LayerContext& ctx);

/// Greedy local search from `start` (snapped to the grid), at most
/// `max_steps` moves (paper's K, default 3). If nothing feasible is reached
/// from `start`, restarts once from the grid's minimum configuration, which
/// is feasible whenever reprogramming is not required.
SearchResult resource_bounded_search(const LayerContext& ctx, OuConfig start,
                                     int max_steps = 3);

}  // namespace odin::ou
