#include "ou/reordering.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace odin::ou {

RowOrder similarity_row_order(const dnn::WeightPattern& pattern,
                              int signature_cols) {
  assert(signature_cols >= 1);
  const int rows = pattern.rows();
  const int cols = pattern.cols();
  const int groups = (cols + signature_cols - 1) / signature_cols;

  struct Key {
    std::int64_t nonzeros;
    std::vector<std::uint8_t> signature;
  };
  std::vector<Key> keys(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    Key& key = keys[static_cast<std::size_t>(r)];
    key.nonzeros = pattern.block_nonzeros(r, 0, 1, cols);
    key.signature.resize(static_cast<std::size_t>(groups));
    for (int g = 0; g < groups; ++g)
      key.signature[static_cast<std::size_t>(g)] =
          pattern.block_live(r, g * signature_cols, 1, signature_cols) ? 1
                                                                       : 0;
  }
  RowOrder order(static_cast<std::size_t>(rows));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const Key& ka = keys[static_cast<std::size_t>(a)];
    const Key& kb = keys[static_cast<std::size_t>(b)];
    if ((ka.nonzeros == 0) != (kb.nonzeros == 0))
      return ka.nonzeros == 0;  // dead rows first
    if (ka.signature != kb.signature) return ka.signature < kb.signature;
    return ka.nonzeros < kb.nonzeros;
  });
  return order;
}

RowOrder density_row_order(const dnn::WeightPattern& pattern) {
  const int rows = pattern.rows();
  std::vector<std::int64_t> count(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r)
    count[static_cast<std::size_t>(r)] =
        pattern.block_nonzeros(r, 0, 1, pattern.cols());
  RowOrder order(static_cast<std::size_t>(rows));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return count[static_cast<std::size_t>(a)] <
           count[static_cast<std::size_t>(b)];
  });
  return order;
}

dnn::WeightPattern apply_row_order(const dnn::WeightPattern& pattern,
                                   std::span<const int> order) {
  assert(is_permutation(order, pattern.rows()));
  dnn::WeightPattern out(pattern.rows(), pattern.cols());
  for (int r = 0; r < pattern.rows(); ++r) {
    const int src = order[static_cast<std::size_t>(r)];
    for (int c = 0; c < pattern.cols(); ++c)
      if (pattern.test(src, c)) out.set(r, c);
  }
  return out;
}

std::int64_t permutation_storage_bits(int rows) {
  int bits = 0;
  int v = 1;
  while (v < rows) {
    v <<= 1;
    ++bits;
  }
  return static_cast<std::int64_t>(rows) * std::max(bits, 1);
}

bool is_permutation(std::span<const int> order, int rows) {
  if (static_cast<int>(order.size()) != rows) return false;
  std::vector<bool> seen(static_cast<std::size_t>(rows), false);
  for (int v : order) {
    if (v < 0 || v >= rows || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

}  // namespace odin::ou
