#include "ou/compression.hpp"

#include <cassert>

namespace odin::ou {

int IndexStorageModel::address_bits() const noexcept {
  int bits = 0;
  int v = 1;
  while (v < crossbar_size_) {
    v <<= 1;
    ++bits;
  }
  return bits > 0 ? bits : 1;
}

std::int64_t IndexStorageModel::layer_index_bits(const LayerMapping& mapping,
                                                 OuConfig config) const {
  assert(mapping.crossbar_size() == crossbar_size_);
  const OuCounts& counts = mapping.counts(config);
  const std::int64_t per_block =
      static_cast<std::int64_t>(config.rows + config.cols) * address_bits();
  return counts.live_blocks * per_block;
}

std::int64_t IndexStorageModel::model_index_bits(const MappedModel& model,
                                                 OuConfig config) const {
  std::int64_t total = 0;
  for (std::size_t j = 0; j < model.layer_count(); ++j)
    total += layer_index_bits(model.mapping(j), config);
  return total;
}

std::int64_t IndexStorageModel::model_index_bits_union(
    const MappedModel& model, std::span<const OuConfig> configs) const {
  std::int64_t total = 0;
  for (const OuConfig& cfg : configs) total += model_index_bits(model, cfg);
  return total;
}

}  // namespace odin::ou
