// Maps a (pruned) layer's weight matrix onto a grid of crossbars and counts
// the live OU blocks for a given OU configuration.
//
// The K x M lowered weight matrix is tiled onto ceil(K/c) x ceil(M/c)
// crossbars of size c. Within each crossbar an (R x C) OU grid is laid over
// the resident weights; a block containing only zeros is skipped entirely
// (the sparse-ReRAM-engine optimization the paper builds on). Counts are
// cached per configuration: they depend only on the weight pattern, never on
// time, so one scan per (layer, OU shape) serves every inference run.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>

#include "dnn/layer_desc.hpp"
#include "dnn/pattern.hpp"
#include "ou/ou_config.hpp"

namespace odin::ou {

/// OU activity for one layer under one OU shape.
struct OuCounts {
  std::int64_t live_blocks = 0;      ///< non-skippable blocks, all crossbars
  std::int64_t max_blocks_per_xbar = 0;  ///< bottleneck crossbar
  std::int64_t total_ou_cycles = 0;  ///< live_blocks * spatial_positions
  std::int64_t max_ou_cycles_per_xbar = 0;
  double occupancy = 0.0;  ///< live / laid-out blocks (1.0 = dense)
};

class LayerMapping {
 public:
  /// `pattern` must match the layer's lowered dimensions.
  LayerMapping(const dnn::LayerDescriptor& layer,
               const dnn::WeightPattern& pattern, int crossbar_size);

  const dnn::LayerDescriptor& layer() const noexcept { return *layer_; }
  int crossbar_size() const noexcept { return crossbar_size_; }

  /// Crossbars the layer occupies: ceil(K/c) * ceil(M/c).
  std::int64_t crossbars() const noexcept { return crossbars_; }

  /// Cells that must be written when (re)programming this layer.
  std::int64_t programmed_cells() const noexcept;

  /// Wordline rows that must be driven during programming.
  std::int64_t programmed_rows() const noexcept { return pattern_->rows(); }

  /// Live-block counts for an OU shape; computed once then cached.
  /// Thread-safe: concurrent searches share one mapping, so the cache is
  /// guarded by a read-mostly lock (the scan itself runs unlocked — it is
  /// pure, and racing computations produce identical values).
  const OuCounts& counts(OuConfig config) const;

 private:
  OuCounts compute(OuConfig config) const;

  const dnn::LayerDescriptor* layer_;
  const dnn::WeightPattern* pattern_;
  int crossbar_size_;
  std::int64_t crossbars_;
  mutable std::map<OuConfig, OuCounts> cache_;
  // Behind unique_ptr so LayerMapping stays movable (vector storage).
  mutable std::unique_ptr<std::shared_mutex> cache_mutex_;
};

}  // namespace odin::ou
