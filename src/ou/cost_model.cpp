#include "ou/cost_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math.hpp"

namespace odin::ou {

int CostParams::adc_bits(int rows) const noexcept {
  assert(rows >= 1);
  int bits = 0;
  int v = 1;
  while (v < rows) {
    v <<= 1;
    ++bits;
  }
  return std::clamp(bits, adc_min_bits, adc_max_bits);
}

double CostParams::activation_cycle_factor(
    int rows, double activation_sparsity) const noexcept {
  const double s = std::clamp(activation_sparsity, 0.0, 1.0);
  switch (activation_handling) {
    case ActivationHandling::kNone:
      return 1.0;
    case ActivationHandling::kRowSkip:
      return 1.0 - std::pow(s, static_cast<double>(rows));
    case ActivationHandling::kCompaction:
      return 1.0 - s;
  }
  return 1.0;
}

LayerCost OuCostModel::layer_cost(const OuCounts& counts, OuConfig config,
                                  double activation_sparsity) const {
  const double R = static_cast<double>(config.rows);
  const double C = static_cast<double>(config.cols);
  const double bits = static_cast<double>(params_.adc_bits(config.rows));
  const double act =
      params_.activation_cycle_factor(config.rows, activation_sparsity);
  const double total_cycles =
      act * static_cast<double>(counts.total_ou_cycles);
  const double max_cycles =
      act * static_cast<double>(counts.max_ou_cycles_per_xbar);

  LayerCost cost;
  // Paper Eq. 2 (energy, all crossbars) and Eq. 1 (latency, bottleneck
  // crossbar; crossbars operate in parallel).
  cost.adc.energy_j = params_.adc_energy_unit_j * bits * R * C * total_cycles;
  cost.adc.latency_s = params_.adc_latency_unit_s * bits * C * max_cycles;

  double per_cycle_peripheral =
      params_.fixed_energy_j + params_.dac_energy_per_row_j * R +
      params_.sh_energy_per_col_j * C + params_.sa_energy_per_col_j * C +
      params_.array_energy_per_cell_j * R * C +
      params_.buffer_energy_per_line_j * (R + C);
  if (params_.activation_handling == ActivationHandling::kCompaction)
    per_cycle_peripheral += params_.compaction_index_energy_j;
  cost.peripheral.energy_j = per_cycle_peripheral * total_cycles;
  cost.peripheral.latency_s = params_.fixed_latency_s * max_cycles;
  return cost;
}

double OuCostModel::layer_edp(const OuCounts& counts, OuConfig config,
                              double activation_sparsity) const {
  return layer_cost(counts, config, activation_sparsity).edp();
}

common::EnergyLatency OuCostModel::reprogram_cost(
    std::int64_t cells, std::int64_t row_writes) const {
  return common::EnergyLatency{
      .energy_j = device_.write_energy_per_cell_j *
                  static_cast<double>(cells),
      .latency_s = device_.write_latency_per_row_s *
                   static_cast<double>(row_writes),
  };
}

common::EnergyLatency OuCostModel::reprogram_cost(
    const LayerMapping& mapping) const {
  const auto& layer = mapping.layer();
  // Wordlines are written one at a time within a crossbar, but every
  // output-column band sits in a different crossbar with its own write
  // drivers, so bands program in parallel: latency is one pass over the
  // layer's fan-in. Energy still counts every rewritten cell.
  const std::int64_t row_writes = layer.fan_in;
  return reprogram_cost(mapping.programmed_cells(), row_writes);
}

}  // namespace odin::ou
