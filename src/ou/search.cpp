#include "ou/search.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

namespace odin::ou {

double LayerContext::violation(OuConfig config) const {
  const auto& p = nonideal->params();
  const double total = nonideal->total_nf(elapsed_s, config);
  const double ir = sensitivity * nonideal->ir_nf(elapsed_s, config);
  return std::max({0.0, total - p.eta_total, ir - p.eta_ir});
}

namespace {

/// Lexicographic candidate score: any feasible config beats any infeasible
/// one; feasible configs compare by EDP, infeasible ones by violation (so a
/// greedy walk still descends toward the feasible region).
struct Score {
  bool feasible = false;
  double value = std::numeric_limits<double>::infinity();

  bool better_than(const Score& o) const noexcept {
    if (feasible != o.feasible) return feasible;
    return value < o.value;
  }
};

Score evaluate(const LayerContext& ctx, OuConfig config, int& evaluations) {
  ++evaluations;
  if (ctx.feasible(config)) return {true, ctx.edp(config)};
  return {false, ctx.violation(config)};
}

int snap_level(const OuLevelGrid& grid, int size) {
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (int l = 0; l < grid.levels(); ++l) {
    const double d = std::abs(std::log2(static_cast<double>(size)) -
                              std::log2(static_cast<double>(grid.size_at(l))));
    if (d < best_dist) {
      best_dist = d;
      best = l;
    }
  }
  return best;
}

/// One greedy descent; updates `result` with the best feasible config seen.
void greedy_from(const LayerContext& ctx, int rl, int cl, int max_steps,
                 SearchResult& result) {
  const OuLevelGrid& grid = *ctx.grid;
  Score current = evaluate(ctx, grid.config_at(rl, cl), result.evaluations);
  auto consider = [&](const Score& s, OuConfig cfg) {
    if (s.feasible && s.value < result.edp) {
      result.found = true;
      result.edp = s.value;
      result.best = cfg;
    }
  };
  consider(current, grid.config_at(rl, cl));

  for (int step = 0; step < max_steps; ++step) {
    constexpr std::array<std::array<int, 2>, 4> kMoves{
        {{+1, 0}, {-1, 0}, {0, +1}, {0, -1}}};
    Score best_neighbor;
    int best_rl = rl, best_cl = cl;
    for (const auto& mv : kMoves) {
      const int nrl = rl + mv[0];
      const int ncl = cl + mv[1];
      if (nrl < 0 || nrl >= grid.levels() || ncl < 0 || ncl >= grid.levels())
        continue;
      const OuConfig cfg = grid.config_at(nrl, ncl);
      const Score s = evaluate(ctx, cfg, result.evaluations);
      consider(s, cfg);
      if (s.better_than(best_neighbor)) {
        best_neighbor = s;
        best_rl = nrl;
        best_cl = ncl;
      }
    }
    if (!best_neighbor.better_than(current)) break;  // local optimum
    current = best_neighbor;
    rl = best_rl;
    cl = best_cl;
  }
}

}  // namespace

SearchResult exhaustive_search(const LayerContext& ctx) {
  assert(ctx.grid != nullptr);
  SearchResult result;
  for (const OuConfig& cfg : ctx.grid->all_configs()) {
    const Score s = evaluate(ctx, cfg, result.evaluations);
    if (s.feasible && s.value < result.edp) {
      result.found = true;
      result.edp = s.value;
      result.best = cfg;
    }
  }
  return result;
}

SearchResult resource_bounded_search(const LayerContext& ctx, OuConfig start,
                                     int max_steps) {
  assert(ctx.grid != nullptr && max_steps >= 0);
  const OuLevelGrid& grid = *ctx.grid;
  SearchResult result;
  greedy_from(ctx, snap_level(grid, start.rows), snap_level(grid, start.cols),
              max_steps, result);
  if (!result.found) {
    // The policy's neighbourhood is entirely infeasible; fall back to the
    // most drift-tolerant corner (feasible unless reprogramming is due).
    greedy_from(ctx, 0, 0, max_steps, result);
  }
  return result;
}

}  // namespace odin::ou
