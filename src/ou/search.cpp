#include "ou/search.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "common/parallel.hpp"

namespace odin::ou {

double LayerContext::violation(OuConfig config) const {
  const auto& p = nonideal->params();
  const bool cached = cache != nullptr && cache->matches(elapsed_s);
  const double total = cached ? cache->total_nf(config)
                              : nonideal->total_nf(elapsed_s, config);
  const double ir =
      sensitivity * (cached ? cache->ir_nf(config)
                            : nonideal->ir_nf(elapsed_s, config));
  return std::max({0.0, total + nf_floor - p.eta_total * eta_scale,
                   ir - p.eta_ir * eta_scale});
}

namespace {

/// Lexicographic candidate score: any feasible config beats any infeasible
/// one; feasible configs compare by EDP, infeasible ones by violation (so a
/// greedy walk still descends toward the feasible region).
struct Score {
  bool feasible = false;
  double value = std::numeric_limits<double>::infinity();

  bool better_than(const Score& o) const noexcept {
    if (feasible != o.feasible) return feasible;
    return value < o.value;
  }
};

/// Pure candidate evaluation — safe to run concurrently; callers account
/// for SearchResult::evaluations themselves.
Score evaluate(const LayerContext& ctx, OuConfig config) {
  if (ctx.feasible(config)) return {true, ctx.edp(config)};
  return {false, ctx.violation(config)};
}

/// Analytic evaluation is ~1us per candidate; fan-outs of a handful of
/// neighbours (or one small grid) sit far below the fork-join break-even,
/// so the hint keeps them on the inline path (BENCH_parallel.json showed
/// sub-1.0x "speedups" when these tiny regions woke the pool).
constexpr std::size_t kEvaluateCostNs = 1000;

int snap_level(const OuLevelGrid& grid, int size) {
  // Grid sizes are exact powers of two: log2(size_at(l)) is the integer
  // l + kMinExponent, so only the start size needs a log2 per call.
  const double target = std::log2(static_cast<double>(size));
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (int l = 0; l < grid.levels(); ++l) {
    const double d =
        std::abs(target - static_cast<double>(l + OuLevelGrid::kMinExponent));
    if (d < best_dist) {
      best_dist = d;
      best = l;
    }
  }
  return best;
}

/// One greedy descent; updates `result` with the best feasible config seen.
/// A deadline on the context is charged per evaluation; when it expires
/// the walk stops where it stands (best-so-far is already in `result`).
void greedy_from(const LayerContext& ctx, int rl, int cl, int max_steps,
                 SearchResult& result) {
  const OuLevelGrid& grid = *ctx.grid;
  common::Deadline* deadline = ctx.deadline;
  Score current = evaluate(ctx, grid.config_at(rl, cl));
  ++result.evaluations;
  if (deadline != nullptr) deadline->charge_evaluations(1);
  auto consider = [&](const Score& s, OuConfig cfg) {
    if (s.feasible && s.value < result.edp) {
      result.found = true;
      result.edp = s.value;
      result.best = cfg;
    }
  };
  consider(current, grid.config_at(rl, cl));

  for (int step = 0; step < max_steps; ++step) {
    if (deadline != nullptr && deadline->expired()) {
      result.truncated = true;
      break;
    }
    constexpr std::array<std::array<int, 2>, 4> kMoves{
        {{+1, 0}, {-1, 0}, {0, +1}, {0, -1}}};
    // Collect the in-grid neighbours, score them concurrently (evaluate is
    // pure), then reduce in move order — the same winner the sequential
    // walk picks, including its first-wins tie-breaking.
    std::array<std::array<int, 2>, 4> candidates{};
    std::size_t n = 0;
    for (const auto& mv : kMoves) {
      const int nrl = rl + mv[0];
      const int ncl = cl + mv[1];
      if (nrl < 0 || nrl >= grid.levels() || ncl < 0 || ncl >= grid.levels())
        continue;
      candidates[n++] = {nrl, ncl};
    }
    const auto scores =
        common::parallel_transform(
            n, 1,
            [&](std::size_t i) {
              return evaluate(ctx, grid.config_at(candidates[i][0],
                                                  candidates[i][1]));
            },
            kEvaluateCostNs,
            deadline != nullptr ? deadline->token() : nullptr);
    result.evaluations += static_cast<int>(n);
    if (deadline != nullptr) deadline->charge_evaluations(static_cast<int>(n));
    Score best_neighbor;
    int best_rl = rl, best_cl = cl;
    for (std::size_t i = 0; i < n; ++i) {
      consider(scores[i], grid.config_at(candidates[i][0], candidates[i][1]));
      if (scores[i].better_than(best_neighbor)) {
        best_neighbor = scores[i];
        best_rl = candidates[i][0];
        best_cl = candidates[i][1];
      }
    }
    if (!best_neighbor.better_than(current)) break;  // local optimum
    current = best_neighbor;
    rl = best_rl;
    cl = best_cl;
  }
}

}  // namespace

SearchResult exhaustive_search(const LayerContext& ctx) {
  assert(ctx.grid != nullptr);
  SearchResult result;
  // Score all candidates concurrently, reduce in grid order (the argmin is
  // scheduling-independent: comparisons only, no FP accumulation).
  const auto configs = ctx.grid->all_configs();
  const auto scores = common::parallel_transform(
      configs.size(), 4,
      [&](std::size_t i) { return evaluate(ctx, configs[i]); },
      kEvaluateCostNs);
  result.evaluations = static_cast<int>(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (scores[i].feasible && scores[i].value < result.edp) {
      result.found = true;
      result.edp = scores[i].value;
      result.best = configs[i];
    }
  }
  return result;
}

SearchResult resource_bounded_search(const LayerContext& ctx, OuConfig start,
                                     int max_steps) {
  assert(ctx.grid != nullptr && max_steps >= 0);
  const OuLevelGrid& grid = *ctx.grid;
  SearchResult result;
  greedy_from(ctx, snap_level(grid, start.rows), snap_level(grid, start.cols),
              max_steps, result);
  if (!result.found &&
      !(ctx.deadline != nullptr && ctx.deadline->expired())) {
    // The policy's neighbourhood is entirely infeasible; fall back to the
    // most drift-tolerant corner (feasible unless reprogramming is due).
    greedy_from(ctx, 0, 0, max_steps, result);
  }
  if (ctx.deadline != nullptr && ctx.deadline->expired())
    result.truncated = true;
  return result;
}

}  // namespace odin::ou
