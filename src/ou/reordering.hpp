// Offline row (filter) reordering — the PattPIM / RePIM-style enhancement
// the paper discusses in Sec. II.
//
// Permuting the rows of a layer's weight matrix so that rows with similar
// zero patterns sit together turns scattered zeros into whole all-zero OU
// blocks, increasing the skip rate. The catch the paper points out: the
// permutation is computed OFFLINE for a given network (and, for stored-
// index designs, per OU configuration), so it fights runtime adaptation —
// bench/ablation_row_reorder quantifies both the benefit and the index
// storage it drags in.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dnn/pattern.hpp"

namespace odin::ou {

/// A permutation: new_row r holds old row `order[r]`.
using RowOrder = std::vector<int>;

/// Group rows by zero-pattern similarity: rows are sorted by their
/// occupancy signature at `signature_cols`-column granularity (dead rows
/// first, then lexicographically by which column groups they touch).
RowOrder similarity_row_order(const dnn::WeightPattern& pattern,
                              int signature_cols = 16);

/// Sort rows by non-zero count only (the simplest density clustering).
RowOrder density_row_order(const dnn::WeightPattern& pattern);

/// Materialize the permuted pattern.
dnn::WeightPattern apply_row_order(const dnn::WeightPattern& pattern,
                                   std::span<const int> order);

/// Bits to store the permutation (one input index per row) — the "input
/// indices" buffer prior work keeps (Sec. II).
std::int64_t permutation_storage_bits(int rows);

/// True iff `order` is a permutation of [0, rows).
bool is_permutation(std::span<const int> order, int rows);

}  // namespace odin::ou
