// Small numeric helpers shared across the library.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace odin::common {

/// Ceiling division for non-negative integers.
constexpr std::int64_t ceil_div(std::int64_t num, std::int64_t den) noexcept {
  assert(den > 0 && num >= 0);
  return (num + den - 1) / den;
}

/// Exact integer log2 of a power of two; asserts on non-powers.
constexpr int log2_exact(std::int64_t v) noexcept {
  assert(v > 0 && (v & (v - 1)) == 0);
  int l = 0;
  while (v > 1) {
    v >>= 1;
    ++l;
  }
  return l;
}

constexpr bool is_pow2(std::int64_t v) noexcept {
  return v > 0 && (v & (v - 1)) == 0;
}

inline double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

/// Geometric mean of strictly positive values (0 for empty input).
inline double geomean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    assert(x > 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

/// Log-uniformly spaced sample points over [lo, hi] inclusive, n >= 2.
inline std::vector<double> logspace(double lo, double hi, std::size_t n) {
  assert(lo > 0.0 && hi > lo && n >= 2);
  std::vector<double> out(n);
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (std::size_t i = 0; i < n; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(n - 1);
    out[i] = std::exp(llo + f * (lhi - llo));
  }
  out.front() = lo;
  out.back() = hi;
  return out;
}

/// Numerically stable softmax over a small vector (in place).
inline void softmax_inplace(std::span<double> xs) noexcept {
  if (xs.empty()) return;
  const double mx = *std::max_element(xs.begin(), xs.end());
  double sum = 0.0;
  for (double& x : xs) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (double& x : xs) x /= sum;
}

/// Index of the maximum element (first on ties). Undefined for empty spans.
inline std::size_t argmax(std::span<const double> xs) noexcept {
  assert(!xs.empty());
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

}  // namespace odin::common
