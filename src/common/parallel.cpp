#include "common/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/env.hpp"

namespace odin::common {

std::atomic<long long> ThreadPool::stalls_{0};

namespace {

/// Set while a thread is executing chunks, so nested regions run inline.
thread_local bool tls_in_parallel_region = false;

int threads_from_env() {
  long long v = 0;
  if (env_long("ODIN_THREADS", v) && v >= 1)
    return static_cast<int>(std::min<long long>(v, 256));
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// Huge sentinel with headroom: stragglers from a finished job fetch_add
// past it harmlessly and can never wrap back into a valid chunk index.
constexpr std::size_t kJobClosed =
    std::numeric_limits<std::size_t>::max() / 2;

std::size_t min_work_from_env() {
  long long v = 0;
  if (env_long("ODIN_PARALLEL_MIN_NS", v) && v >= 0)
    return static_cast<std::size_t>(v);
  // Fork-join (wake + join) costs a handful of microseconds; below ~100us
  // of total work the pool cannot break even even at perfect scaling.
  return 100'000;
}

}  // namespace

std::size_t ThreadPool::min_parallel_work_ns() noexcept {
  static const std::size_t cutoff = min_work_from_env();
  return cutoff;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(threads_from_env());
  return pool;
}

ThreadPool::ThreadPool(int threads) : threads_(std::max(threads, 1)) {
  job_next_.store(kJobClosed, std::memory_order_relaxed);
  start_workers();
}

ThreadPool::~ThreadPool() { stop_workers(); }

void ThreadPool::start_workers() {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  std::lock_guard<std::mutex> lock(wake_mutex_);
  stop_ = false;
}

void ThreadPool::set_threads(int n) {
  std::lock_guard<std::mutex> job_lock(job_mutex_);
  stop_workers();
  threads_ = std::max(n, 1);
  start_workers();
}

void ThreadPool::record_exception() {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!job_failed_.exchange(true, std::memory_order_relaxed))
    job_error_ = std::current_exception();
}

void ThreadPool::drain_job() {
  const bool was_in_region = tls_in_parallel_region;
  tls_in_parallel_region = true;
  for (;;) {
    const std::size_t chunk =
        job_next_.fetch_add(1, std::memory_order_acquire);
    if (chunk >= job_chunks_.load(std::memory_order_relaxed)) break;
    const std::size_t b = job_begin_ + chunk * job_grain_;
    const std::size_t e = std::min(job_end_, b + job_grain_);
    // A failed job skips the remaining bodies; so does a cancelled one
    // (the watchdog fired, or the caller gave up on the region). The
    // chunk counters still drain so the join below completes normally.
    const bool skip =
        job_failed_.load(std::memory_order_relaxed) ||
        (job_token_ != nullptr && job_token_->cancelled());
    if (!skip) {
      try {
        job_fn_(job_ctx_, b, e);
      } catch (...) {
        record_exception();
      }
    }
    if (job_pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      done_cv_.notify_all();
    }
  }
  tls_in_parallel_region = was_in_region;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(wake_mutex_);
  for (;;) {
    wake_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    lock.unlock();
    drain_job();
    lock.lock();
  }
}

void ThreadPool::run_chunks(std::size_t begin, std::size_t end,
                            std::size_t grain, ChunkFn fn, void* ctx,
                            std::size_t cost_hint_ns,
                            CancellationToken* token) {
  if (begin >= end) return;
  if (token != nullptr && token->cancelled()) return;  // already cut short
  const std::size_t n = end - begin;
  std::size_t g = grain;
  if (g == 0)
    g = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(threads_) * 4));
  // Minimum-work grain: when the caller's cost hint says the whole region
  // is below the fork-join break-even point, don't wake the pool at all.
  // (Overflow-safe: treat saturated products as "plenty of work".)
  const bool too_small =
      cost_hint_ns != 0 &&
      n <= min_parallel_work_ns() / cost_hint_ns &&
      n * cost_hint_ns < min_parallel_work_ns();
  // Sequential path: single-lane pool, a range that fits one chunk, a
  // region below the work cutoff, or a nested region (already on a worker
  // — running inline avoids deadlock).
  if (threads_ <= 1 || n <= g || too_small || tls_in_parallel_region) {
    const bool was_in_region = tls_in_parallel_region;
    tls_in_parallel_region = true;
    try {
      fn(ctx, begin, end);
    } catch (...) {
      tls_in_parallel_region = was_in_region;
      throw;
    }
    tls_in_parallel_region = was_in_region;
    return;
  }

  std::lock_guard<std::mutex> job_lock(job_mutex_);
  job_fn_ = fn;
  job_ctx_ = ctx;
  job_token_ = token;
  job_begin_ = begin;
  job_end_ = end;
  job_grain_ = g;
  const std::size_t chunks = (n + g - 1) / g;
  job_chunks_.store(chunks, std::memory_order_relaxed);
  job_pending_.store(chunks, std::memory_order_relaxed);
  job_failed_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++epoch_;
    // Release-publish the descriptor: a worker (or late straggler from the
    // previous job) that claims a chunk sees every field above.
    job_next_.store(0, std::memory_order_release);
  }
  wake_cv_.notify_all();
  drain_job();  // the caller is lane 0
  {
    std::unique_lock<std::mutex> lock(wake_mutex_);
    done_cv_.wait(lock, [&] {
      return job_pending_.load(std::memory_order_acquire) == 0;
    });
    job_next_.store(kJobClosed, std::memory_order_relaxed);
  }
  if (job_failed_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    std::exception_ptr err = std::exchange(job_error_, nullptr);
    if (err) std::rethrow_exception(err);
  }
}

Watchdog::Watchdog() : monitor_([this] { monitor_loop(); }) {}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    ++generation_;
  }
  cv_.notify_all();
  monitor_.join();
}

void Watchdog::arm(CancellationToken* token, std::chrono::nanoseconds bound) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(!armed_ && "Watchdog::arm while already armed");
    armed_token_ = token;
    expiry_ = std::chrono::steady_clock::now() + bound;
    armed_ = true;
    fired_ = false;
    ++generation_;
  }
  cv_.notify_all();
}

bool Watchdog::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool fired = fired_;
  armed_ = false;
  armed_token_ = nullptr;
  fired_ = false;
  ++generation_;
  cv_.notify_all();
  return fired;
}

void Watchdog::monitor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || armed_; });
    if (stop_) return;
    const std::uint64_t gen = generation_;
    // Wait for either the deadline or a disarm (generation bump). A
    // spurious wake re-enters with the same predicate.
    cv_.wait_until(lock, expiry_,
                   [&] { return stop_ || generation_ != gen; });
    if (stop_) return;
    if (generation_ != gen) continue;  // disarmed in time
    if (armed_ && armed_token_ != nullptr) {
      // The operation overran its wall-time bound: cancel cooperatively
      // and count the stall. The armed operation's disarm() reports it.
      armed_token_->cancel();
      fired_ = true;
      stalls_.fetch_add(1, std::memory_order_relaxed);
      ThreadPool::record_stall();
      // Stay quiet until the operation disarms (generation bump).
      cv_.wait(lock, [&] { return stop_ || generation_ != gen; });
      if (stop_) return;
    }
  }
}

}  // namespace odin::common
