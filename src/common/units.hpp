// Physical unit conventions used throughout the library.
//
// All quantities are stored as doubles in SI base units:
//   time    -> seconds      energy -> joules      power -> watts
//   area    -> square millimetres (mm^2; the one deliberate exception,
//              because every accelerator paper reports mm^2)
//   conductance -> siemens  resistance -> ohms
//
// The constants below are multipliers: `3.5 * units::ns` is 3.5 nanoseconds
// expressed in seconds. Helper structs aggregate the (energy, latency) pairs
// that the cost models pass around.
#pragma once

namespace odin::units {

inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;

inline constexpr double J = 1.0;
inline constexpr double mJ = 1e-3;
inline constexpr double uJ = 1e-6;
inline constexpr double nJ = 1e-9;
inline constexpr double pJ = 1e-12;
inline constexpr double fJ = 1e-15;

inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;

inline constexpr double S = 1.0;      // siemens
inline constexpr double uS = 1e-6;
inline constexpr double ohm = 1.0;

inline constexpr double mm2 = 1.0;    // area unit of record
inline constexpr double KiB = 1024.0; // storage, bytes

}  // namespace odin::units

namespace odin::common {

/// An (energy, latency) pair; the currency of all cost models.
struct EnergyLatency {
  double energy_j = 0.0;   ///< joules
  double latency_s = 0.0;  ///< seconds

  constexpr EnergyLatency& operator+=(const EnergyLatency& o) noexcept {
    energy_j += o.energy_j;
    latency_s += o.latency_s;
    return *this;
  }
  friend constexpr EnergyLatency operator+(EnergyLatency a,
                                           const EnergyLatency& b) noexcept {
    a += b;
    return a;
  }
  /// Energy-delay product, the paper's headline metric.
  constexpr double edp() const noexcept { return energy_j * latency_s; }
};

}  // namespace odin::common
