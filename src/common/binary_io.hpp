// Little-endian binary encoding into/out of an in-memory byte buffer.
//
// The serving checkpoint (core/checkpoint) assembles its whole payload in
// memory first so the CRC can be computed over the exact bytes that hit the
// disk, then writes header + payload in one pass. ByteReader is fail-soft:
// any overrun flips ok() to false and every subsequent read returns a zero
// value, so decoders can parse straight through and check ok() once.
//
// Values are encoded little-endian byte-by-byte (not memcpy'd), so the
// format is identical across host endianness.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace odin::common {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }

  const std::string& bytes() const noexcept { return buf_; }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    if (pos_ >= bytes_.size()) {
      ok_ = false;
      return 0;
    }
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint64_t n = u64();
    if (n > bytes_.size() - pos_ || !ok_) {
      ok_ = false;
      return {};
    }
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  bool ok() const noexcept { return ok_; }
  bool exhausted() const noexcept { return pos_ >= bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace odin::common
