// Per-request deadline budget for wall-clock-bounded serving.
//
// The paper's resource-bounded search caps *evaluations* (K steps); a
// serving SLO caps *time*. A Deadline carries the remaining latency budget
// of one inference request, in simulated seconds, so the search and the
// reprogram/retry paths can stop early and return their best-so-far
// feasible configuration instead of blowing the tenant's SLO.
//
// Two clocks feed expiry:
//  * the simulated budget — callers charge() the simulated latency of the
//    work they are about to do (a reprogram campaign, a batch of search
//    evaluations priced at eval_cost_s each). This keeps deadline
//    behaviour bitwise-reproducible: no real clock enters the decision.
//  * an optional CancellationToken — the wall-clock escape hatch. The
//    watchdog (common/parallel.hpp) cancels the token when real time
//    exceeds its bound, which expires the deadline mid-flight even when
//    the simulated budget still has headroom (a genuinely hung worker
//    accrues no simulated cost at all).
//
// A null Deadline pointer everywhere means "no deadline" and preserves the
// pre-resilience behaviour bit for bit.
#pragma once

#include "common/cancellation.hpp"

namespace odin::common {

class Deadline {
 public:
  /// `budget_s`: simulated latency budget (the tenant's SLO minus whatever
  /// queueing delay the request already paid). `eval_cost_s`: simulated
  /// cost of one search evaluation (the analytic search's timing proxy).
  /// `token` (optional, caller-owned): wall-clock cancellation.
  explicit Deadline(double budget_s, double eval_cost_s = 0.0,
                    CancellationToken* token = nullptr) noexcept
      : remaining_s_(budget_s), eval_cost_s_(eval_cost_s), token_(token) {}

  /// Budget exhausted or wall-clock cancelled.
  bool expired() const noexcept {
    return remaining_s_ <= 0.0 || (token_ != nullptr && token_->cancelled());
  }

  /// Would `cost_s` of simulated work still fit? (Does not charge.)
  bool allows(double cost_s) const noexcept {
    return !expired() && cost_s <= remaining_s_;
  }

  /// Deduct `cost_s`; returns false when the deduction exhausted the
  /// budget (the work charged is still considered done — callers charge
  /// work they have committed to).
  bool charge(double cost_s) noexcept {
    remaining_s_ -= cost_s;
    return !expired();
  }

  /// Deduct `n` search evaluations at the configured per-eval price.
  bool charge_evaluations(int n) noexcept {
    return charge(static_cast<double>(n) * eval_cost_s_);
  }

  double remaining_s() const noexcept { return remaining_s_; }
  double eval_cost_s() const noexcept { return eval_cost_s_; }
  CancellationToken* token() const noexcept { return token_; }

 private:
  double remaining_s_ = 0.0;
  double eval_cost_s_ = 0.0;
  CancellationToken* token_ = nullptr;  ///< caller-owned, may be null
};

}  // namespace odin::common
