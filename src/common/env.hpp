// Strict environment-variable parsing, shared by every ODIN_* knob.
//
// std::strtol alone maps "abc" to 0 and "8cores" to 8, both silently — a
// typo in a deployment manifest would change behaviour without a trace.
// Every knob therefore parses strictly: the whole value must be well
// formed, anything else warns once to stderr and falls back to the
// built-in default (ODIN_THREADS, ODIN_PARALLEL_MIN_NS, ODIN_BATCH_MAX,
// ODIN_SIMD, ODIN_SPARE_ROWS and ODIN_WEAR_BUDGET all follow this
// contract).
#pragma once

namespace odin::common {

/// Strict integer env parse: the whole value must be a decimal number.
/// Returns false (and leaves `out` untouched) when the variable is unset
/// or empty; on garbage, warns to stderr and reports "unset" so the
/// caller's default applies.
bool env_long(const char* name, long long& out);

/// Raw value of `name`, or nullptr when unset or empty.
const char* env_string(const char* name);

}  // namespace odin::common
