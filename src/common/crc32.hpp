// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the serving-state checkpoint (core/checkpoint) to detect torn or
// corrupted writes before any payload byte is trusted. Not cryptographic —
// it guards against disk/crash corruption, not adversaries.
#pragma once

#include <cstddef>
#include <cstdint>

namespace odin::common {

/// CRC of `size` bytes at `data`. Chain blocks by passing the previous
/// result as `seed` (standard init/finalize xor handled internally).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0) noexcept;

}  // namespace odin::common
