#include "common/env.hpp"

#include <cstdio>
#include <cstdlib>

namespace odin::common {

bool env_long(const char* name, long long& out) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return false;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  // strtoll skips leading whitespace; the strict contract does not.
  if (end == env || *end != '\0' ||
      (*env != '-' && *env != '+' && (*env < '0' || *env > '9'))) {
    std::fprintf(stderr,
                 "odin: ignoring %s='%s' (not an integer); using default\n",
                 name, env);
    return false;
  }
  out = v;
  return true;
}

const char* env_string(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return nullptr;
  return env;
}

}  // namespace odin::common
