// Deterministic, explicitly seeded random number generation.
//
// Every stochastic component in the library (synthetic weights, pruning,
// datasets, policy initialization, Monte-Carlo noise injection) draws from an
// explicitly constructed Rng; there is no global generator. This keeps all
// tests and benchmark tables bit-reproducible across runs and platforms.
#pragma once

#include <cstdint>
#include <cmath>
#include <numbers>

namespace odin::common {

/// splitmix64: used to expand a user seed into the xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — small, fast, high-quality PRNG with a 64-bit seed
/// interface. Not cryptographic; used only for simulation workloads.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  constexpr std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Rejection-free modulo is fine for simulation purposes; bias is < 2^-53
    // for any n that fits in the mantissa range we use.
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(n));
  }

  /// Standard normal via Box-Muller (no cached second value, keeps state
  /// strictly sequential and therefore easy to reason about in tests).
  double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derive an independent child generator (for per-layer / per-module
  /// streams that must not perturb each other when one consumes more draws).
  Rng fork(std::uint64_t stream) noexcept {
    std::uint64_t sm = next_u64() ^ (0x6a09e667f3bcc909ULL + stream);
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace odin::common
