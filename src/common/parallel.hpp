// Parallel execution layer: a lazily-initialized global thread pool and
// deterministic fork-join helpers built on it.
//
// Design contract (see DESIGN.md "Threading model"):
//   * Pool size comes from the ODIN_THREADS environment variable at first
//     use (default: hardware_concurrency). ODIN_THREADS=1 forces every
//     helper onto the plain sequential path — no worker threads exist.
//   * parallel_for / parallel_transform split [begin, end) into fixed
//     chunks of `grain` indices. Chunk *assignment* to workers is dynamic,
//     but every index writes only its own slot, so outputs never depend on
//     scheduling. Reductions are the caller's job and must combine results
//     in index order; under that rule parallel runs are bitwise identical
//     to ODIN_THREADS=1.
//   * The first exception thrown by any chunk is captured and rethrown on
//     the calling thread; remaining chunks are skipped (not cancelled
//     mid-flight).
//   * Steady state performs no heap allocation inside the pool: one job
//     descriptor is reused, workers claim chunks with an atomic counter.
//   * Nested calls (a parallel region spawned from inside a worker) run
//     inline on the worker — parallelism does not compound and can never
//     deadlock.
//   * Callers that know their per-item cost pass it as `cost_hint_ns`
//     (estimated nanoseconds per index). When items x cost_hint_ns is
//     below the fork-join break-even threshold the region runs on the
//     plain inline path — waking workers for a few microseconds of work
//     is a slowdown, not a speedup. cost_hint_ns = 0 (the default) means
//     "unknown / heavy": always eligible for the pool, the pre-hint
//     behaviour.
//   * A region may carry a CancellationToken. Chunks that have not
//     started when the token is cancelled are skipped (their indices are
//     simply not visited); a chunk already running must poll the token
//     itself. Cancellation is cooperative, never preemptive — see the
//     Watchdog below for who cancels and why.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/cancellation.hpp"

namespace odin::common {

class ThreadPool {
 public:
  /// The process-wide pool, created on first use. Thread count is read
  /// from ODIN_THREADS once; use set_threads() to override afterwards.
  static ThreadPool& instance();

  /// Total execution lanes including the calling thread (>= 1).
  int threads() const noexcept { return threads_; }

  /// Reconfigure the pool (tears down and respawns workers). Intended for
  /// tests and startup code; must not race with an active parallel region.
  void set_threads(int n);

  using ChunkFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

  /// Invoke fn(ctx, b, e) over chunks of [begin, end) no larger than
  /// `grain` (0 = pick automatically). Blocks until every chunk finished;
  /// rethrows the first chunk exception. Runs inline when the range fits
  /// one chunk, the pool is single-threaded, we are already inside a
  /// worker, or the estimated total work (items x cost_hint_ns, when the
  /// hint is nonzero) is below the fork-join break-even threshold.
  /// `token` (optional, caller-owned): chunks not yet claimed when the
  /// token is cancelled are skipped; the call still returns normally and
  /// the caller checks token->cancelled() to learn the region was cut
  /// short. Skipped chunks leave their output slots untouched.
  void run_chunks(std::size_t begin, std::size_t end, std::size_t grain,
                  ChunkFn fn, void* ctx, std::size_t cost_hint_ns = 0,
                  CancellationToken* token = nullptr);

  /// Process-wide count of watchdog-detected stalls (hung chunks that had
  /// to be cancelled). Incremented by Watchdog when it fires.
  static long long stall_count() noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }
  static void record_stall() noexcept {
    stalls_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total-work cutoff (nanoseconds) below which hinted regions run
  /// inline. Read once from ODIN_PARALLEL_MIN_NS (default 100000 = 100us,
  /// several times the measured fork-join wake+join overhead).
  static std::size_t min_parallel_work_ns() noexcept;

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  explicit ThreadPool(int threads);

  void start_workers();
  void stop_workers();
  void worker_loop();
  /// Claim and execute chunks of the current job until none remain.
  void drain_job();
  void record_exception();

  int threads_ = 1;
  std::vector<std::thread> workers_;

  static std::atomic<long long> stalls_;

  // Serializes top-level parallel regions (one job at a time).
  std::mutex job_mutex_;

  // Current job descriptor; reused across jobs, no per-job allocation.
  ChunkFn job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  CancellationToken* job_token_ = nullptr;
  std::size_t job_begin_ = 0;
  std::size_t job_end_ = 0;
  std::size_t job_grain_ = 1;
  // Atomic: a straggler from the previous job re-checks the chunk count
  // while the next descriptor is being written (its claimed index is past
  // kJobClosed either way, but the load must still be race-free).
  std::atomic<std::size_t> job_chunks_{0};
  std::atomic<std::size_t> job_next_{0};
  std::atomic<std::size_t> job_pending_{0};
  std::atomic<bool> job_failed_{false};
  std::exception_ptr job_error_;
  std::mutex error_mutex_;

  // Worker wakeup: epoch bumps when a job is posted.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

namespace detail {

template <typename Fn>
void invoke_chunk(void* ctx, std::size_t begin, std::size_t end) {
  (*static_cast<std::decay_t<Fn>*>(ctx))(begin, end);
}

}  // namespace detail

/// fn(chunk_begin, chunk_end) per chunk. Use when the body wants per-chunk
/// scratch state (allocated once per chunk, not once per index).
/// `cost_hint_ns` estimates the per-item cost in nanoseconds; nonzero
/// hints let small regions skip the pool entirely (see ThreadPool).
/// `token` (optional): unclaimed chunks are skipped once it is cancelled.
template <typename Fn>
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         std::size_t grain, Fn&& fn,
                         std::size_t cost_hint_ns = 0,
                         CancellationToken* token = nullptr) {
  ThreadPool::instance().run_chunks(begin, end, grain,
                                    &detail::invoke_chunk<Fn>,
                                    const_cast<void*>(
                                        static_cast<const void*>(&fn)),
                                    cost_hint_ns, token);
}

/// fn(i) for every i in [begin, end).
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn, std::size_t cost_hint_ns = 0,
                  CancellationToken* token = nullptr) {
  parallel_for_chunks(begin, end, grain,
                      [&fn](std::size_t b, std::size_t e) {
                        for (std::size_t i = b; i < e; ++i) fn(i);
                      },
                      cost_hint_ns, token);
}

/// out[i] = fn(i) for i in [0, n); results land in index order regardless
/// of scheduling, so reductions over `out` are deterministic. With a
/// cancelled token, slots of skipped chunks keep their default value.
template <typename Fn>
auto parallel_transform(std::size_t n, std::size_t grain, Fn&& fn,
                        std::size_t cost_hint_ns = 0,
                        CancellationToken* token = nullptr)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
  std::vector<std::decay_t<decltype(fn(std::size_t{}))>> out(n);
  parallel_for_chunks(
      0, n, grain,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) out[i] = fn(i);
      },
      cost_hint_ns, token);
  return out;
}

/// Hung-work watchdog: one monitor thread that cancels a CancellationToken
/// when an armed operation fails to disarm within its wall-time bound.
///
/// Usage per guarded operation:
///   watchdog.arm(&token, bound);
///   ... run the work, which polls token.cancelled() ...
///   bool stalled = watchdog.disarm();
///
/// The fired token makes pool regions skip their unclaimed chunks and
/// makes Deadline::expired() true, so a cooperatively written worker
/// unwinds with best-so-far results; the serving loop then marks the run
/// shed instead of deadlocking on it. Every fire bumps the per-instance
/// stall counter and the process-wide ThreadPool::stall_count().
class Watchdog {
 public:
  Watchdog();
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Start the clock on one operation. `token` must outlive the matching
  /// disarm(). Re-arming while armed is a bug (asserted in debug builds).
  void arm(CancellationToken* token, std::chrono::nanoseconds bound);

  /// Stop the clock; returns true when the watchdog fired (the operation
  /// overran its bound and the token was cancelled).
  bool disarm();

  /// Stalls detected by THIS watchdog instance.
  long long stall_count() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  void monitor_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  CancellationToken* armed_token_ = nullptr;
  std::chrono::steady_clock::time_point expiry_{};
  std::uint64_t generation_ = 0;  ///< bumps on every arm/disarm
  bool armed_ = false;
  bool fired_ = false;
  bool stop_ = false;
  std::atomic<long long> stalls_{0};
  // Declared (and therefore constructed) last: the monitor thread starts
  // only once every member it reads is initialized.
  std::thread monitor_;
};

}  // namespace odin::common
