// Cooperative cancellation primitive shared by the thread pool, the
// hung-work watchdog and the deadline-bounded serving paths.
//
// A CancellationToken is a one-way latch: once cancelled it stays
// cancelled until reset(). Cancellation is *cooperative* — nothing is
// preempted; long-running work (a search loop, a pool chunk, a simulated
// hung worker) polls cancelled() at its natural yield points and unwinds
// with its best-so-far result. The watchdog (common/parallel.hpp) cancels
// tokens from its monitor thread, so all accesses are atomic.
#pragma once

#include <atomic>

namespace odin::common {

class CancellationToken {
 public:
  CancellationToken() = default;

  // The token is shared by address between the issuing side (watchdog,
  // serving loop) and the cancelled side (pool chunks, search); it must
  // stay put.
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }
  /// Re-arm the token for the next operation. Only safe once every observer
  /// of the previous cancellation has quiesced (e.g. between serving runs).
  void reset() noexcept { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace odin::common
