#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace odin::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string Table::integer(long long v) { return std::to_string(v); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c];
      out << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << "|" << std::string(widths[c] + 2, '-');
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      const bool quote = row[c].find(',') != std::string::npos;
      if (quote) out << '"';
      out << row[c];
      if (quote) out << '"';
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void print_table(std::string_view title, const Table& table) {
  std::printf("\n== %.*s ==\n%s", static_cast<int>(title.size()), title.data(),
              table.to_string().c_str());
  std::fflush(stdout);
}

}  // namespace odin::common
