// Minimal fixed-column table emitter for benchmark / example output.
//
// Every bench binary reproduces one of the paper's tables or figures by
// printing rows; this class keeps that output aligned, parseable (also
// emitted as CSV on request) and free of iostream formatting noise at the
// call sites.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace odin::common {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 4);
  static std::string integer(long long v);

  /// Render as an aligned ASCII table.
  std::string to_string() const;
  /// Render as CSV (RFC-4180-ish; cells containing commas are quoted).
  std::string to_csv() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner followed by the table to stdout.
void print_table(std::string_view title, const Table& table);

}  // namespace odin::common
