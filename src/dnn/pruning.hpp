// Crossbar-aware weight pruning (substitute for the paper's ref. [29]
// mixed pruning; see DESIGN.md §3).
//
// Synthetic per-layer weight magnitudes are drawn with a shared row
// importance factor — mimicking filter/channel-level structure — times
// per-weight noise, then thresholded to a layer-specific target sparsity.
// Low-importance rows fall below threshold across the whole output width,
// which is exactly the row-aligned zero structure that crossbar-aware
// pruning produces and that OU row-skipping exploits.
//
// The target-sparsity heuristic encodes the standard empirical pruning
// result: redundancy (and hence achievable sparsity) grows with fan-in,
// while compact 1x1 projections and classifier layers tolerate less. On
// ResNet18 this lands the 1x1 skip projections (the paper's layers 13, 18)
// at ~35% and the wide 3x3 convs at 80-88%, matching Fig. 3.
#pragma once

#include <cstdint>
#include <vector>

#include "dnn/model.hpp"
#include "dnn/pattern.hpp"

namespace odin::dnn {

struct PruningConfig {
  double row_importance_sigma = 1.0;  ///< spread of the per-row factor
  double sparsity_jitter = 0.04;      ///< seeded per-layer wobble
  /// Quantile-threshold sample cap; larger = tighter sparsity targeting.
  std::int64_t quantile_samples = 200'000;
};

/// Heuristic target sparsity for a layer (before jitter).
double target_sparsity(const LayerDescriptor& layer);

/// Deterministically generate-and-prune one layer; returns the zero mask.
WeightPattern prune_layer(const LayerDescriptor& layer, std::uint64_t seed,
                          const PruningConfig& config = {});

/// A workload with pruned weight patterns attached; `model.layers[i]`'s
/// weight_sparsity is updated to the achieved value.
struct PrunedModel {
  DnnModel model;
  std::vector<WeightPattern> patterns;  ///< one per layer

  std::int64_t total_nonzeros() const noexcept {
    std::int64_t n = 0;
    for (const auto& p : patterns) n += p.nonzeros();
    return n;
  }
};

PrunedModel prune_model(DnnModel model, std::uint64_t seed,
                        const PruningConfig& config = {});

}  // namespace odin::dnn
