#include "dnn/pattern.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace odin::dnn {

WeightPattern::WeightPattern(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_(static_cast<std::size_t>((cols + 63) / 64)),
      words_(static_cast<std::size_t>(rows) * words_per_row_, 0) {
  assert(rows > 0 && cols > 0);
}

void WeightPattern::set(int r, int c) noexcept {
  assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  std::uint64_t& w = words_[word_index(r, c)];
  const std::uint64_t bit = 1ULL << (c & 63);
  if (!(w & bit)) {
    w |= bit;
    ++nonzeros_;
  }
}

void WeightPattern::clear(int r, int c) noexcept {
  assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  std::uint64_t& w = words_[word_index(r, c)];
  const std::uint64_t bit = 1ULL << (c & 63);
  if (w & bit) {
    w &= ~bit;
    --nonzeros_;
  }
}

bool WeightPattern::test(int r, int c) const noexcept {
  assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return (words_[word_index(r, c)] >> (c & 63)) & 1ULL;
}

double WeightPattern::sparsity() const noexcept {
  const double total = static_cast<double>(rows_) * cols_;
  return total > 0 ? 1.0 - static_cast<double>(nonzeros_) / total : 0.0;
}

namespace {

/// Mask selecting bit positions [lo, hi) of a 64-bit word.
constexpr std::uint64_t range_mask(int lo, int hi) noexcept {
  const std::uint64_t upper =
      hi >= 64 ? ~0ULL : ((1ULL << hi) - 1);
  const std::uint64_t lower = (1ULL << lo) - 1;
  return upper & ~lower;
}

}  // namespace

bool WeightPattern::block_live(int r0, int c0, int h, int w) const noexcept {
  const int r1 = std::min(r0 + h, rows_);
  const int c1 = std::min(c0 + w, cols_);
  if (r0 >= r1 || c0 >= c1) return false;
  const int word_lo = c0 >> 6;
  const int word_hi = (c1 - 1) >> 6;
  for (int r = r0; r < r1; ++r) {
    const std::size_t base = static_cast<std::size_t>(r) * words_per_row_;
    for (int wi = word_lo; wi <= word_hi; ++wi) {
      const int lo = wi == word_lo ? (c0 & 63) : 0;
      const int hi = wi == word_hi ? ((c1 - 1) & 63) + 1 : 64;
      if (words_[base + static_cast<std::size_t>(wi)] & range_mask(lo, hi))
        return true;
    }
  }
  return false;
}

std::int64_t WeightPattern::block_nonzeros(int r0, int c0, int h,
                                           int w) const noexcept {
  const int r1 = std::min(r0 + h, rows_);
  const int c1 = std::min(c0 + w, cols_);
  if (r0 >= r1 || c0 >= c1) return 0;
  const int word_lo = c0 >> 6;
  const int word_hi = (c1 - 1) >> 6;
  std::int64_t count = 0;
  for (int r = r0; r < r1; ++r) {
    const std::size_t base = static_cast<std::size_t>(r) * words_per_row_;
    for (int wi = word_lo; wi <= word_hi; ++wi) {
      const int lo = wi == word_lo ? (c0 & 63) : 0;
      const int hi = wi == word_hi ? ((c1 - 1) & 63) + 1 : 64;
      count += std::popcount(
          words_[base + static_cast<std::size_t>(wi)] & range_mask(lo, hi));
    }
  }
  return count;
}

}  // namespace odin::dnn
