#include "dnn/pruning.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"

namespace odin::dnn {
namespace {

/// Deterministic per-(layer, row) generator: both pruning passes must see
/// identical magnitude streams.
common::Rng row_rng(std::uint64_t layer_seed, int row) {
  std::uint64_t s = layer_seed ^ (0xd1b54a32d192ed03ULL *
                                  (static_cast<std::uint64_t>(row) + 1));
  return common::Rng(common::splitmix64(s));
}

double row_importance(common::Rng& rng, double sigma) {
  return std::exp(sigma * rng.normal());
}

}  // namespace

double target_sparsity(const LayerDescriptor& layer) {
  if (layer.type == LayerType::kDepthwise) {
    // Structural block-diagonal zeros dominate; within each k*k filter
    // block only mild magnitude pruning is possible.
    const double per_filter = static_cast<double>(layer.kernel) *
                              layer.kernel / layer.fan_in;
    return std::clamp(1.0 - per_filter * 0.9, 0.10, 0.999);
  }
  double s = 0.16 * std::log(static_cast<double>(layer.fan_in)) - 0.28;
  if (layer.type == LayerType::kConv && layer.kernel == 1) s -= 0.15;
  if (layer.type == LayerType::kFullyConnected) s -= 0.08;
  if (layer.type == LayerType::kAttention) s -= 0.05;
  return std::clamp(s, 0.10, 0.80);
}

/// Depthwise layers are block-diagonal by construction: column c's weights
/// live in rows [k*k*c, k*k*(c+1)); ~10% of in-block weights are magnitude
/// pruned.
WeightPattern prune_depthwise(const LayerDescriptor& layer,
                              std::uint64_t seed) {
  const int filter = layer.kernel * layer.kernel;
  WeightPattern pattern(layer.fan_in, layer.outputs);
  common::Rng rng(seed ^ 0xdee9f11ceULL);
  for (int c = 0; c < layer.outputs; ++c) {
    bool any = false;
    for (int t = 0; t < filter; ++t) {
      const int r = c * filter + t;
      if (r >= layer.fan_in) break;
      if (rng.bernoulli(0.9)) {
        pattern.set(r, c);
        any = true;
      }
    }
    if (!any && c * filter < layer.fan_in) pattern.set(c * filter, c);
  }
  return pattern;
}

WeightPattern prune_layer(const LayerDescriptor& layer, std::uint64_t seed,
                          const PruningConfig& config) {
  assert(layer.fan_in > 0 && layer.outputs > 0);
  if (layer.type == LayerType::kDepthwise)
    return prune_depthwise(layer, seed);
  common::Rng jitter_rng(seed ^ 0xabcdef12345ULL);
  const double target = std::clamp(
      target_sparsity(layer) +
          jitter_rng.uniform(-config.sparsity_jitter, config.sparsity_jitter),
      0.05, 0.95);

  const std::int64_t total = layer.weight_count();
  const std::int64_t stride =
      std::max<std::int64_t>(1, total / config.quantile_samples);

  // Pass 1: strided sample of magnitudes -> quantile threshold.
  std::vector<double> sample;
  sample.reserve(static_cast<std::size_t>(total / stride + 1));
  std::int64_t flat = 0;
  for (int r = 0; r < layer.fan_in; ++r) {
    common::Rng rng = row_rng(seed, r);
    const double imp = row_importance(rng, config.row_importance_sigma);
    for (int c = 0; c < layer.outputs; ++c, ++flat) {
      const double mag = imp * std::abs(rng.normal());
      if (flat % stride == 0) sample.push_back(mag);
    }
  }
  std::sort(sample.begin(), sample.end());
  const auto cut = static_cast<std::size_t>(
      target * static_cast<double>(sample.size()));
  const double threshold =
      cut >= sample.size() ? sample.back() + 1.0 : sample[cut];

  // Pass 2: regenerate the identical stream; keep weights above threshold.
  WeightPattern pattern(layer.fan_in, layer.outputs);
  for (int r = 0; r < layer.fan_in; ++r) {
    common::Rng rng = row_rng(seed, r);
    const double imp = row_importance(rng, config.row_importance_sigma);
    for (int c = 0; c < layer.outputs; ++c) {
      const double mag = imp * std::abs(rng.normal());
      if (mag >= threshold) pattern.set(r, c);
    }
  }
  // Never prune a layer to fully-zero: keep at least one weight so the
  // mapper always has work (mirrors real pruners' per-layer floors).
  if (pattern.nonzeros() == 0) pattern.set(0, 0);
  return pattern;
}

PrunedModel prune_model(DnnModel model, std::uint64_t seed,
                        const PruningConfig& config) {
  PrunedModel out;
  out.patterns.reserve(model.layers.size());
  for (auto& layer : model.layers) {
    const std::uint64_t layer_seed =
        seed ^ (0x9e3779b97f4a7c15ULL *
                (static_cast<std::uint64_t>(layer.index) + 17));
    out.patterns.push_back(prune_layer(layer, layer_seed, config));
    layer.weight_sparsity = out.patterns.back().sparsity();
  }
  out.model = std::move(model);
  return out;
}

}  // namespace odin::dnn
