// Model zoo: layer-accurate shape descriptions of the nine DNN workloads the
// paper evaluates (Sec. V-A). Architectures follow the canonical papers with
// the usual CIFAR-style stem adaptations (3x3 stride-1 first conv, no
// aggressive early downsampling) for 32x32 / 64x64 inputs.
//
// Skip-connection projection (downsample) convolutions are included as their
// own layers — Fig. 3 plots ResNet18 "including skip connections", and those
// 1x1 layers are exactly the low-sparsity layers (13, 18) the paper calls
// out as receiving coarse OUs.
#pragma once

#include <vector>

#include "dnn/model.hpp"

namespace odin::dnn {

DnnModel make_vgg11(data::DatasetKind dataset);
DnnModel make_vgg16(data::DatasetKind dataset);
DnnModel make_vgg19(data::DatasetKind dataset);
DnnModel make_resnet18(data::DatasetKind dataset);
DnnModel make_resnet34(data::DatasetKind dataset);
DnnModel make_resnet50(data::DatasetKind dataset);
DnnModel make_googlenet(data::DatasetKind dataset);
DnnModel make_densenet121(data::DatasetKind dataset);
DnnModel make_vit(data::DatasetKind dataset);

/// Extension beyond the paper's zoo: MobileNetV1, whose depthwise layers
/// lower to block-diagonal (1 - 1/C sparse) matrices — the extreme case
/// for OU-level zero skipping.
DnnModel make_mobilenetv1(data::DatasetKind dataset);

/// The paper's nine workload (model, dataset) pairs, in Fig. 8 order:
/// ResNet18, VGG11, GoogLeNet, DenseNet121, ViT on CIFAR-10; ResNet34,
/// VGG16 on CIFAR-100; ResNet50, VGG19 on TinyImageNet.
std::vector<DnnModel> paper_workloads();

}  // namespace odin::dnn
