// A DNN workload: an ordered list of layer descriptors plus the metadata
// Odin's leave-one-family-out evaluation needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "dnn/layer_desc.hpp"

namespace odin::dnn {

/// Architectural family, used for the paper's "offline policy trained on
/// (N-1) families, evaluated on the held-out one" protocol.
enum class Family { kResNet, kVgg, kGoogLeNet, kDenseNet, kViT, kMobileNet };

std::string family_name(Family f);

struct DnnModel {
  std::string name;
  Family family = Family::kResNet;
  data::DatasetKind dataset = data::DatasetKind::kCifar10;
  std::vector<LayerDescriptor> layers;

  std::int64_t total_weights() const noexcept;
  std::int64_t total_macs() const noexcept;
  /// Mean weight sparsity across layers, weight-count weighted.
  double overall_sparsity() const noexcept;
};

}  // namespace odin::dnn
