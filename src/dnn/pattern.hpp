// WeightPattern: the zero/non-zero mask of a layer's lowered weight matrix.
//
// OU-based computation skips an R x C operation-unit block whose weights are
// all zero; everything the OU mapper and cost models need from the pruned
// network is therefore this bit pattern, not the weight values. One bit per
// weight keeps even ResNet50-scale layers at a few megabytes.
#pragma once

#include <cstdint>
#include <vector>

namespace odin::dnn {

class WeightPattern {
 public:
  WeightPattern() = default;
  /// rows = fan_in, cols = outputs of the lowered weight matrix.
  WeightPattern(int rows, int cols);

  int rows() const noexcept { return rows_; }
  int cols() const noexcept { return cols_; }

  void set(int r, int c) noexcept;
  void clear(int r, int c) noexcept;
  bool test(int r, int c) const noexcept;

  std::int64_t nonzeros() const noexcept { return nonzeros_; }
  double sparsity() const noexcept;

  /// True iff the rectangle [r0, r0+h) x [c0, c0+w) contains at least one
  /// non-zero weight (rectangle clipped to the matrix bounds).
  bool block_live(int r0, int c0, int h, int w) const noexcept;

  /// Non-zero count in the clipped rectangle.
  std::int64_t block_nonzeros(int r0, int c0, int h, int w) const noexcept;

 private:
  std::size_t word_index(int r, int c) const noexcept {
    return static_cast<std::size_t>(r) * words_per_row_ +
           static_cast<std::size_t>(c >> 6);
  }

  int rows_ = 0;
  int cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::int64_t nonzeros_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace odin::dnn
