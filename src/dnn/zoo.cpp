#include "dnn/zoo.hpp"

#include <cassert>

namespace odin::dnn {
namespace {

/// Incrementally builds a model while tracking the spatial feature-map size,
/// so spatial_positions is always consistent with the stride history.
class Builder {
 public:
  Builder(std::string name, Family family, data::DatasetKind dataset)
      : spec_(data::DatasetSpec::for_kind(dataset)) {
    model_.name = std::move(name);
    model_.family = family;
    model_.dataset = dataset;
    h_ = spec_.height;
    w_ = spec_.width;
    channels_ = spec_.channels;
  }

  int channels() const noexcept { return channels_; }
  int height() const noexcept { return h_; }
  int classes() const noexcept { return spec_.classes; }

  /// Square conv, `same` padding unless stride shrinks the map.
  Builder& conv(std::string name, int out_channels, int kernel,
                int stride = 1) {
    h_ = out_dim(h_, kernel, stride);
    w_ = out_dim(w_, kernel, stride);
    push(std::move(name), LayerType::kConv, kernel, channels_, out_channels,
         channels_ * kernel * kernel, out_channels, h_ * w_);
    channels_ = out_channels;
    return *this;
  }

  /// Conv that reads from an explicit input-channel count (inception /
  /// dense-block branches where `channels_` tracking does not apply).
  Builder& conv_from(std::string name, int in_channels, int out_channels,
                     int kernel) {
    push(std::move(name), LayerType::kConv, kernel, in_channels, out_channels,
         in_channels * kernel * kernel, out_channels, h_ * w_);
    return *this;
  }

  Builder& pool(int stride = 2) {
    h_ /= stride;
    w_ /= stride;
    return *this;
  }

  Builder& set_channels(int c) {
    channels_ = c;
    return *this;
  }

  Builder& global_pool() {
    h_ = 1;
    w_ = 1;
    return *this;
  }

  Builder& fc(std::string name, int in_features, int out_features) {
    push(std::move(name), LayerType::kFullyConnected, 1, in_features,
         out_features, in_features, out_features, 1);
    return *this;
  }

  /// Depthwise 3x3 conv: one k*k filter per channel; the lowered matrix is
  /// block-diagonal [9C x C].
  Builder& depthwise(std::string name, int kernel, int stride = 1) {
    h_ = out_dim(h_, kernel, stride);
    w_ = out_dim(w_, kernel, stride);
    push(std::move(name), LayerType::kDepthwise, kernel, channels_,
         channels_, channels_ * kernel * kernel, channels_, h_ * w_);
    return *this;
  }

  /// Transformer projection applied per token.
  Builder& attention(std::string name, int in_features, int out_features,
                     int tokens) {
    push(std::move(name), LayerType::kAttention, 1, in_features, out_features,
         in_features, out_features, tokens);
    return *this;
  }

  DnnModel build() { return std::move(model_); }

 private:
  static int out_dim(int dim, int kernel, int stride) {
    // `same` padding: output = ceil(dim / stride).
    (void)kernel;
    return (dim + stride - 1) / stride;
  }

  void push(std::string name, LayerType type, int kernel, int in_ch,
            int out_ch, int fan_in, int outputs, int positions) {
    LayerDescriptor l;
    l.name = std::move(name);
    l.type = type;
    l.index = static_cast<int>(model_.layers.size());
    l.kernel = kernel;
    l.in_channels = in_ch;
    l.out_channels = out_ch;
    l.fan_in = fan_in;
    l.outputs = outputs;
    l.spatial_positions = positions;
    l.activation_sparsity = typical_activation_sparsity(l);
    model_.layers.push_back(std::move(l));
  }

  /// Standard empirical activation sparsity: the first layer reads dense
  /// pixels; post-ReLU feature maps are ~45% zero; classifier inputs after
  /// global pooling ~30%; transformer activations (GELU-ish) ~15%.
  static double typical_activation_sparsity(const LayerDescriptor& l) {
    if (l.index == 0) return 0.0;
    switch (l.type) {
      case LayerType::kConv: return 0.45;
      case LayerType::kDepthwise: return 0.45;
      case LayerType::kFullyConnected: return 0.30;
      case LayerType::kAttention: return 0.15;
    }
    return 0.0;
  }

  data::DatasetSpec spec_;
  DnnModel model_;
  int h_ = 0, w_ = 0, channels_ = 0;
};

DnnModel make_vgg(std::string name, data::DatasetKind dataset,
                  const std::vector<std::vector<int>>& groups) {
  Builder b(std::move(name), Family::kVgg, dataset);
  int gi = 0;
  for (const auto& group : groups) {
    int ci = 0;
    for (int width : group) {
      b.conv("conv" + std::to_string(gi + 1) + "_" + std::to_string(ci + 1),
             width, 3);
      ++ci;
    }
    b.pool();
    ++gi;
  }
  const int flat = b.channels() * b.height() * b.height();
  b.fc("fc1", flat, 512);
  b.fc("fc2", 512, b.classes());
  return b.build();
}

/// One ResNet stage of basic blocks (two 3x3 convs each); the first block
/// may downsample and then carries a 1x1 projection on the skip path.
void basic_stage(Builder& b, int stage, int blocks, int width, int stride) {
  for (int blk = 0; blk < blocks; ++blk) {
    const int s = blk == 0 ? stride : 1;
    const bool project = blk == 0 && (s != 1 || b.channels() != width);
    const int skip_in = b.channels();
    const std::string base =
        "conv" + std::to_string(stage) + "_" + std::to_string(blk + 1);
    b.conv(base + "a", width, 3, s);
    b.conv(base + "b", width, 3, 1);
    if (project) b.conv_from(base + "_skip", skip_in, width, 1);
  }
}

/// One ResNet stage of bottleneck blocks (1x1 -> 3x3 -> 1x1, expansion 4).
void bottleneck_stage(Builder& b, int stage, int blocks, int width,
                      int stride) {
  const int expanded = width * 4;
  for (int blk = 0; blk < blocks; ++blk) {
    const int s = blk == 0 ? stride : 1;
    const bool project = blk == 0;
    const int skip_in = b.channels();
    const std::string base =
        "conv" + std::to_string(stage) + "_" + std::to_string(blk + 1);
    b.conv(base + "a", width, 1, 1);
    b.conv(base + "b", width, 3, s);
    b.conv(base + "c", expanded, 1, 1);
    if (project) b.conv_from(base + "_skip", skip_in, expanded, 1);
  }
}

DnnModel make_resnet_basic(std::string name, data::DatasetKind dataset,
                           const std::vector<int>& blocks) {
  Builder b(std::move(name), Family::kResNet, dataset);
  b.conv("conv1", 64, 3, 1);
  basic_stage(b, 2, blocks[0], 64, 1);
  basic_stage(b, 3, blocks[1], 128, 2);
  basic_stage(b, 4, blocks[2], 256, 2);
  basic_stage(b, 5, blocks[3], 512, 2);
  b.global_pool();
  b.fc("fc", 512, b.classes());
  return b.build();
}

/// GoogLeNet inception module: all six convolutions become layers; the
/// module output is the concatenation width c1 + c3 + c5 + pp.
int inception(Builder& b, const std::string& name, int in, int c1, int c3r,
              int c3, int c5r, int c5, int pp) {
  b.conv_from(name + "_1x1", in, c1, 1);
  b.conv_from(name + "_3x3r", in, c3r, 1);
  b.conv_from(name + "_3x3", c3r, c3, 3);
  b.conv_from(name + "_5x5r", in, c5r, 1);
  b.conv_from(name + "_5x5", c5r, c5, 5);
  b.conv_from(name + "_pool", in, pp, 1);
  const int out = c1 + c3 + c5 + pp;
  b.set_channels(out);
  return out;
}

}  // namespace

DnnModel make_vgg11(data::DatasetKind dataset) {
  return make_vgg("VGG11", dataset,
                  {{64}, {128}, {256, 256}, {512, 512}, {512, 512}});
}

DnnModel make_vgg16(data::DatasetKind dataset) {
  return make_vgg("VGG16", dataset,
                  {{64, 64},
                   {128, 128},
                   {256, 256, 256},
                   {512, 512, 512},
                   {512, 512, 512}});
}

DnnModel make_vgg19(data::DatasetKind dataset) {
  return make_vgg("VGG19", dataset,
                  {{64, 64},
                   {128, 128},
                   {256, 256, 256, 256},
                   {512, 512, 512, 512},
                   {512, 512, 512, 512}});
}

DnnModel make_resnet18(data::DatasetKind dataset) {
  return make_resnet_basic("ResNet18", dataset, {2, 2, 2, 2});
}

DnnModel make_resnet34(data::DatasetKind dataset) {
  return make_resnet_basic("ResNet34", dataset, {3, 4, 6, 3});
}

DnnModel make_resnet50(data::DatasetKind dataset) {
  Builder b("ResNet50", Family::kResNet, dataset);
  b.conv("conv1", 64, 3, 1);
  bottleneck_stage(b, 2, 3, 64, 1);
  bottleneck_stage(b, 3, 4, 128, 2);
  bottleneck_stage(b, 4, 6, 256, 2);
  bottleneck_stage(b, 5, 3, 512, 2);
  b.global_pool();
  b.fc("fc", 2048, b.classes());
  return b.build();
}

DnnModel make_googlenet(data::DatasetKind dataset) {
  Builder b("GoogLeNet", Family::kGoogLeNet, dataset);
  b.conv("conv1", 64, 3, 1);
  b.conv("conv2_1x1", 64, 1, 1);
  b.conv("conv2_3x3", 192, 3, 1);
  int ch = 192;
  ch = inception(b, "3a", ch, 64, 96, 128, 16, 32, 32);
  ch = inception(b, "3b", ch, 128, 128, 192, 32, 96, 64);
  b.pool();
  ch = inception(b, "4a", ch, 192, 96, 208, 16, 48, 64);
  ch = inception(b, "4b", ch, 160, 112, 224, 24, 64, 64);
  ch = inception(b, "4c", ch, 128, 128, 256, 24, 64, 64);
  ch = inception(b, "4d", ch, 112, 144, 288, 32, 64, 64);
  ch = inception(b, "4e", ch, 256, 160, 320, 32, 128, 128);
  b.pool();
  ch = inception(b, "5a", ch, 256, 160, 320, 32, 128, 128);
  ch = inception(b, "5b", ch, 384, 192, 384, 48, 128, 128);
  b.global_pool();
  b.fc("fc", ch, b.classes());
  return b.build();
}

DnnModel make_densenet121(data::DatasetKind dataset) {
  constexpr int kGrowth = 32;
  constexpr int kBottleneck = 4 * kGrowth;
  Builder b("DenseNet121", Family::kDenseNet, dataset);
  b.conv("conv1", 2 * kGrowth, 3, 1);
  int ch = 2 * kGrowth;
  const int block_sizes[4] = {6, 12, 24, 16};
  for (int blk = 0; blk < 4; ++blk) {
    for (int layer = 0; layer < block_sizes[blk]; ++layer) {
      const std::string base = "dense" + std::to_string(blk + 1) + "_" +
                               std::to_string(layer + 1);
      b.conv_from(base + "_1x1", ch, kBottleneck, 1);
      b.conv_from(base + "_3x3", kBottleneck, kGrowth, 3);
      ch += kGrowth;
    }
    if (blk < 3) {
      // Transition: 1x1 conv halving channels, then 2x2 average pool.
      ch /= 2;
      b.set_channels(ch);
      b.conv("trans" + std::to_string(blk + 1), ch, 1, 1);
      b.pool();
    }
  }
  b.set_channels(ch);
  b.global_pool();
  b.fc("fc", ch, b.classes());
  return b.build();
}

DnnModel make_vit(data::DatasetKind dataset) {
  // ViT-Lite configuration suited to 32x32: patch 4, dim 256, depth 6,
  // MLP ratio 4. Token count = (H/4)*(W/4) + 1 class token.
  constexpr int kPatch = 4;
  constexpr int kDim = 256;
  constexpr int kDepth = 6;
  Builder b("ViT", Family::kViT, dataset);
  const auto spec = data::DatasetSpec::for_kind(dataset);
  const int tokens = (spec.height / kPatch) * (spec.width / kPatch) + 1;
  b.conv("patch_embed", kDim, kPatch, kPatch);
  for (int d = 0; d < kDepth; ++d) {
    const std::string base = "block" + std::to_string(d + 1);
    b.attention(base + "_qkv", kDim, 3 * kDim, tokens);
    b.attention(base + "_proj", kDim, kDim, tokens);
    b.attention(base + "_mlp1", kDim, 4 * kDim, tokens);
    b.attention(base + "_mlp2", 4 * kDim, kDim, tokens);
  }
  b.fc("head", kDim, b.classes());
  return b.build();
}

DnnModel make_mobilenetv1(data::DatasetKind dataset) {
  Builder b("MobileNetV1", Family::kMobileNet, dataset);
  b.conv("conv1", 32, 3, 1);
  struct Stage {
    int out_channels, stride;
  };
  const Stage stages[] = {{64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
                          {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
                          {512, 1}, {1024, 2}, {1024, 1}};
  int i = 0;
  for (const Stage& s : stages) {
    ++i;
    b.depthwise("dw" + std::to_string(i), 3, s.stride);
    b.conv("pw" + std::to_string(i), s.out_channels, 1, 1);
  }
  b.global_pool();
  b.fc("fc", 1024, b.classes());
  return b.build();
}

std::vector<DnnModel> paper_workloads() {
  using data::DatasetKind;
  std::vector<DnnModel> w;
  w.push_back(make_resnet18(DatasetKind::kCifar10));
  w.push_back(make_vgg11(DatasetKind::kCifar10));
  w.push_back(make_googlenet(DatasetKind::kCifar10));
  w.push_back(make_densenet121(DatasetKind::kCifar10));
  w.push_back(make_vit(DatasetKind::kCifar10));
  w.push_back(make_resnet34(DatasetKind::kCifar100));
  w.push_back(make_vgg16(DatasetKind::kCifar100));
  w.push_back(make_resnet50(DatasetKind::kTinyImageNet));
  w.push_back(make_vgg19(DatasetKind::kTinyImageNet));
  return w;
}

}  // namespace odin::dnn
