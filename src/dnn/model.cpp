#include "dnn/model.hpp"

namespace odin::dnn {

std::string family_name(Family f) {
  switch (f) {
    case Family::kResNet: return "ResNet";
    case Family::kVgg: return "VGG";
    case Family::kGoogLeNet: return "GoogLeNet";
    case Family::kDenseNet: return "DenseNet";
    case Family::kViT: return "ViT";
    case Family::kMobileNet: return "MobileNet";
  }
  return "?";
}

std::int64_t DnnModel::total_weights() const noexcept {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.weight_count();
  return n;
}

std::int64_t DnnModel::total_macs() const noexcept {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.macs();
  return n;
}

double DnnModel::overall_sparsity() const noexcept {
  double weighted = 0.0;
  std::int64_t total = 0;
  for (const auto& l : layers) {
    weighted += l.weight_sparsity * static_cast<double>(l.weight_count());
    total += l.weight_count();
  }
  return total > 0 ? weighted / static_cast<double>(total) : 0.0;
}

}  // namespace odin::dnn
