// Per-layer shape descriptors — everything Odin's models need to know about
// a neural layer to map it onto ReRAM crossbars and cost it.
//
// A layer is treated as the matrix-vector multiplication it lowers to:
//   fan_in  = rows of the weight matrix (conv: in_ch * k * k via im2col)
//   outputs = columns of the weight matrix (conv: out channels)
//   spatial_positions = how many times the MVM is applied per input sample
//                       (conv: output H*W; fc: 1; transformer: token count)
#pragma once

#include <cstdint>
#include <string>

namespace odin::dnn {

enum class LayerType {
  kConv,            ///< spatial convolution (includes 1x1 projections)
  kFullyConnected,  ///< classifier / MLP layer
  kAttention,       ///< transformer projection (qkv / output / mlp)
  /// Depthwise convolution: lowered to a block-diagonal weight matrix
  /// (each output channel reads only its own k*k patch), i.e. structural
  /// sparsity of 1 - 1/channels — an extreme stress test for OU skipping.
  kDepthwise,
};

struct LayerDescriptor {
  std::string name;
  LayerType type = LayerType::kConv;
  int index = 0;        ///< 0-based position in the network (feature Phi_1)
  int kernel = 1;       ///< kernel size (feature Phi_3; 1 for fc/attention)
  int in_channels = 0;
  int out_channels = 0;
  int fan_in = 0;       ///< MVM rows
  int outputs = 0;      ///< MVM cols
  int spatial_positions = 1;
  double weight_sparsity = 0.0;  ///< zero fraction after pruning (Phi_2)
  /// Expected zero fraction of this layer's *input* activations (post-ReLU
  /// feature maps are typically ~half zero). Used by the optional
  /// activation-skipping modes of the cost model; 0 disables the effect.
  double activation_sparsity = 0.0;

  /// Total weight count of the lowered matrix.
  std::int64_t weight_count() const noexcept {
    return static_cast<std::int64_t>(fan_in) * outputs;
  }
  /// Multiply-accumulate operations per input sample.
  std::int64_t macs() const noexcept {
    return weight_count() * spatial_positions;
  }
};

}  // namespace odin::dnn
