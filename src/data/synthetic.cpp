#include "data/synthetic.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace odin::data {

DatasetSpec DatasetSpec::for_kind(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCifar10:
      return {.name = "CIFAR-10", .channels = 3, .height = 32, .width = 32,
              .classes = 10};
    case DatasetKind::kCifar100:
      return {.name = "CIFAR-100", .channels = 3, .height = 32, .width = 32,
              .classes = 100};
    case DatasetKind::kTinyImageNet:
      return {.name = "TinyImageNet", .channels = 3, .height = 64,
              .width = 64, .classes = 200};
  }
  return {};
}

SyntheticDataset::SyntheticDataset(DatasetSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  common::Rng rng(seed_);
  class_waves_.resize(static_cast<std::size_t>(spec_.classes));
  constexpr int kWavesPerClass = 6;
  for (auto& waves : class_waves_) {
    waves.reserve(kWavesPerClass);
    for (int w = 0; w < kWavesPerClass; ++w) {
      waves.push_back(Wave{
          .fx = rng.uniform(0.5, 4.0),
          .fy = rng.uniform(0.5, 4.0),
          .phase = rng.uniform(0.0, 2.0 * std::numbers::pi),
          .amp = rng.uniform(0.3, 1.0),
          .channel = static_cast<int>(rng.uniform_index(
              static_cast<std::uint64_t>(spec_.channels))),
      });
    }
  }
}

nn::Image SyntheticDataset::prototype(int label) const {
  assert(label >= 0 && label < spec_.classes);
  nn::Image img{spec_.channels, spec_.height, spec_.width,
                std::vector<double>(spec_.pixels(), 0.0)};
  for (const Wave& w : class_waves_[static_cast<std::size_t>(label)]) {
    for (int y = 0; y < spec_.height; ++y) {
      const double fy = static_cast<double>(y) / spec_.height;
      for (int x = 0; x < spec_.width; ++x) {
        const double fx = static_cast<double>(x) / spec_.width;
        img.at(w.channel, y, x) +=
            w.amp * std::sin(2.0 * std::numbers::pi *
                                 (w.fx * fx + w.fy * fy) +
                             w.phase);
      }
    }
  }
  return img;
}

Sample SyntheticDataset::sample(std::uint64_t index) const {
  common::Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  const int label =
      static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(spec_.classes)));
  Sample s{.image = prototype(label), .label = label};
  const double brightness = rng.uniform(0.8, 1.2);
  for (double& v : s.image.data)
    v = v * brightness + rng.normal(0.0, 0.25);
  return s;
}

std::size_t SyntheticDataset::feature_count(int pool) const noexcept {
  const int ph = spec_.height / pool;
  const int pw = spec_.width / pool;
  return static_cast<std::size_t>(spec_.channels) * ph * pw;
}

nn::Dataset SyntheticDataset::as_feature_dataset(std::size_t n,
                                                 int pool) const {
  assert(pool >= 1 && spec_.height % pool == 0 && spec_.width % pool == 0);
  const int ph = spec_.height / pool;
  const int pw = spec_.width / pool;
  nn::Dataset ds;
  ds.inputs = nn::Matrix(n, feature_count(pool));
  ds.labels.assign(1, std::vector<int>(n, 0));
  const double inv_area = 1.0 / static_cast<double>(pool * pool);
  for (std::size_t i = 0; i < n; ++i) {
    const Sample s = sample(i);
    ds.labels[0][i] = s.label;
    std::size_t f = 0;
    for (int c = 0; c < spec_.channels; ++c) {
      for (int y = 0; y < ph; ++y) {
        for (int x = 0; x < pw; ++x, ++f) {
          double acc = 0.0;
          for (int dy = 0; dy < pool; ++dy)
            for (int dx = 0; dx < pool; ++dx)
              acc += s.image.at(c, y * pool + dy, x * pool + dx);
          ds.inputs(i, f) = acc * inv_area;
        }
      }
    }
  }
  return ds;
}

}  // namespace odin::data
