// Procedural image-classification datasets.
//
// Substitution (DESIGN.md §3): the paper evaluates on CIFAR-10, CIFAR-100
// and TinyImageNet. Odin's models consume only dataset *shape* (input
// dimensions, class count) and the layer sparsity of the pruned networks —
// never pixel content — so we generate separable synthetic datasets with the
// same shapes. Each class gets a smooth procedural prototype (sum of random
// sinusoids); samples are noisy, brightness-jittered draws around it. A
// small classifier trained on these reaches high accuracy, which gives the
// Monte-Carlo accuracy evaluator real headroom to *lose* when conductance
// errors are injected.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/conv.hpp"
#include "nn/train.hpp"

namespace odin::data {

enum class DatasetKind { kCifar10, kCifar100, kTinyImageNet };

struct DatasetSpec {
  std::string name;
  int channels = 3;
  int height = 32;
  int width = 32;
  int classes = 10;

  static DatasetSpec for_kind(DatasetKind kind);
  std::size_t pixels() const noexcept {
    return static_cast<std::size_t>(channels) * height * width;
  }
};

struct Sample {
  nn::Image image;
  int label = 0;
};

class SyntheticDataset {
 public:
  SyntheticDataset(DatasetSpec spec, std::uint64_t seed);

  const DatasetSpec& spec() const noexcept { return spec_; }

  /// Deterministic sample `index` (same index -> same sample).
  Sample sample(std::uint64_t index) const;

  /// `n` samples flattened to a feature matrix, optionally spatially
  /// downsampled by `pool` (e.g. pool=4 turns 32x32 into 8x8) so reference
  /// classifiers stay small. Single-head labels.
  nn::Dataset as_feature_dataset(std::size_t n, int pool = 4) const;

  /// Feature count produced by as_feature_dataset for a given pool.
  std::size_t feature_count(int pool) const noexcept;

 private:
  nn::Image prototype(int label) const;

  DatasetSpec spec_;
  std::uint64_t seed_;
  // Per-class sinusoid banks, generated once.
  struct Wave {
    double fx, fy, phase, amp;
    int channel;
  };
  std::vector<std::vector<Wave>> class_waves_;
};

}  // namespace odin::data
