// Tests for the run-trace CSV recorder.
#include <gtest/gtest.h>

#include <sstream>

#include "core/trace.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

TEST(RunTrace, RecordsDistilledRunData) {
  const ou::MappedModel model = testing::tiny_mapped();
  const ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                      ou::NonIdealityParams{}};
  const ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  OdinController controller(model, nonideal, cost,
                            policy::OuPolicy(ou::OuLevelGrid(128)));
  RunTrace trace;
  int i = 0;
  for (double t : {1.0, 10.0, 100.0})
    trace.record(i++, controller.run_inference(t));
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.records()[0].run, 0);
  EXPECT_DOUBLE_EQ(trace.records()[2].time_s, 100.0);
  EXPECT_GT(trace.records()[0].energy_j, 0.0);
  EXPECT_GT(trace.records()[0].mean_ou_product, 0.0);
}

TEST(RunTrace, CsvHasHeaderAndOneLinePerRecord) {
  RunTrace trace;
  RunResult run;
  run.time_s = 5.0;
  run.elapsed_s = 5.0;
  run.mismatches = 2;
  run.inference = {.energy_j = 1e-6, .latency_s = 1e-3};
  run.decisions.push_back({{16, 16}, {16, 8}, true, 9});
  trace.record(7, run);
  std::stringstream out;
  trace.write_csv(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("run,time_s"), std::string::npos);
  EXPECT_NE(text.find("\n7,5,"), std::string::npos);
  // header + 1 record = 2 newline-terminated lines
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  // mean product of the single decision: 16*8 = 128
  EXPECT_NE(text.find(",128"), std::string::npos);
}

TEST(RunTrace, ReprogramEventsAreFlagged) {
  const ou::MappedModel model = testing::tiny_mapped();
  const ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                      ou::NonIdealityParams{}};
  const ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  OdinController controller(model, nonideal, cost,
                            policy::OuPolicy(ou::OuLevelGrid(128)));
  RunTrace trace;
  trace.record(0, controller.run_inference(1.0));
  trace.record(1, controller.run_inference(1e8));  // forces a reprogram
  EXPECT_FALSE(trace.records()[0].reprogrammed);
  EXPECT_TRUE(trace.records()[1].reprogrammed);
  EXPECT_GT(trace.records()[1].energy_j, trace.records()[0].energy_j);
}

}  // namespace
}  // namespace odin::core
