// Shared fixtures for the core-level tests: a small synthetic DNN so the
// online-learning loops run in milliseconds.
#pragma once

#include <string>

#include "core/experiment.hpp"
#include "ou/mapped_model.hpp"

namespace odin::testing {

/// A 6-layer CNN-shaped workload, small enough for fast tests but with the
/// sparsity/kernel/position diversity the policy features need.
inline dnn::DnnModel tiny_model(const std::string& name = "TinyNet",
                                dnn::Family family = dnn::Family::kVgg) {
  dnn::DnnModel model;
  model.name = name;
  model.family = family;
  model.dataset = data::DatasetKind::kCifar10;
  struct Spec {
    const char* layer_name;
    int in_ch, out_ch, kernel, positions;
  };
  const Spec specs[] = {
      {"conv1", 3, 32, 3, 16 * 16},  {"conv2", 32, 64, 3, 8 * 8},
      {"skip", 32, 64, 1, 8 * 8},    {"conv3", 64, 128, 3, 4 * 4},
      {"conv4", 128, 128, 3, 4 * 4}, {"fc", 128, 10, 1, 1},
  };
  int index = 0;
  for (const Spec& s : specs) {
    dnn::LayerDescriptor l;
    l.name = s.layer_name;
    l.type = s.kernel == 1 && s.positions == 1
                 ? dnn::LayerType::kFullyConnected
                 : dnn::LayerType::kConv;
    l.index = index++;
    l.kernel = s.kernel;
    l.in_channels = s.in_ch;
    l.out_channels = s.out_ch;
    l.fan_in = s.in_ch * s.kernel * s.kernel;
    l.outputs = s.out_ch;
    l.spatial_positions = s.positions;
    model.layers.push_back(std::move(l));
  }
  return model;
}

inline ou::MappedModel tiny_mapped(int crossbar_size = 128,
                                   std::uint64_t seed = 0xbeef) {
  return ou::MappedModel(dnn::prune_model(tiny_model(), seed), crossbar_size);
}

}  // namespace odin::testing
