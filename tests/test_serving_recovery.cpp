// Crash-recovery integration: serve to run N, kill the process (simulated
// with ServingConfig::max_runs), rebuild a completely fresh simulator from
// the newest on-disk checkpoint, and require the resumed walk to finish
// with a result bitwise identical to the uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/checkpoint.hpp"
#include "core/serving.hpp"
#include "reram/fault_injection.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

struct Fixture {
  ou::MappedModel tenant_a = testing::tiny_mapped(128, 21);
  ou::MappedModel tenant_b = testing::tiny_mapped(128, 22);
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};

  std::vector<const ou::MappedModel*> tenants() const {
    return {&tenant_a, &tenant_b};
  }
  ServingConfig config(const std::string& base) const {
    ServingConfig cfg;
    cfg.horizon = HorizonConfig{.t_start_s = 1.0, .t_end_s = 1e8,
                                .runs = 80};
    cfg.segments = 4;
    cfg.odin.buffer_capacity = 12;
    cfg.odin.update_options.epochs = 30;
    cfg.checkpoint.base_path = base;
    cfg.checkpoint.every_runs = 7;
    return cfg;
  }
  policy::OuPolicy fresh_policy() const {
    return policy::OuPolicy(ou::OuLevelGrid(128));
  }

  reram::FaultScheduleParams fault_params() const {
    reram::FaultScheduleParams p;
    // Aggressive enough that a handful of campaigns produces real,
    // seed-dependent wear — the fingerprint check must be able to tell
    // two seeds apart (an unworn device fingerprints identically).
    p.endurance.characteristic_cycles = 10.0;
    p.endurance.shape = 1.8;
    p.wordline_fail_rate = 2e-2;
    p.bitline_fail_rate = 2e-2;
    p.bursts = {{1e4, 1e5, 50.0}};
    return p;
  }
};

std::string temp_base(const std::string& tag) {
  return ::testing::TempDir() + "odin_recovery_" + tag;
}

void remove_slots(const std::string& base) {
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
}

void expect_identical(const ServingResult& a, const ServingResult& b) {
  EXPECT_EQ(a.total_runs(), b.total_runs());
  EXPECT_EQ(a.total_mismatches(), b.total_mismatches());
  EXPECT_EQ(a.policy_updates, b.policy_updates);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.total_buffer_dropped(), b.total_buffer_dropped());
  EXPECT_EQ(a.total().energy_j, b.total().energy_j);
  EXPECT_EQ(a.total().latency_s, b.total().latency_s);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].runs, b.tenants[i].runs);
    EXPECT_EQ(a.tenants[i].mismatches, b.tenants[i].mismatches);
    EXPECT_EQ(a.tenants[i].reprograms, b.tenants[i].reprograms);
    EXPECT_EQ(a.tenants[i].inference.energy_j, b.tenants[i].inference.energy_j);
    EXPECT_EQ(a.tenants[i].inference.latency_s,
              b.tenants[i].inference.latency_s);
  }
}

TEST(ServingRecovery, ResumedRunMatchesUninterruptedRun) {
  Fixture fx;
  const std::string base = temp_base("basic");
  remove_slots(base);
  ServingConfig cfg = fx.config(base);

  // Ground truth: the whole horizon in one process.
  ServingConfig uninterrupted = cfg;
  uninterrupted.checkpoint.base_path.clear();
  const auto expected = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                        fx.fresh_policy(), uninterrupted);

  // Crash after 33 runs (mid-segment, mid-checkpoint-period).
  ServingConfig crashed = cfg;
  crashed.max_runs = 33;
  const auto partial = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                       fx.fresh_policy(), crashed);
  EXPECT_EQ(partial.total_runs(), 33);

  // A fresh process: everything rebuilt from scratch + the checkpoint.
  const auto ckpt = load_latest_checkpoint(base);
  ASSERT_TRUE(ckpt.has_value());
  const auto resumed = resume_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                        *ckpt, cfg);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_TRUE(resumed->resumed);
  expect_identical(expected, *resumed);
  remove_slots(base);
}

TEST(ServingRecovery, DoubleCrashStillConvergesToSameResult) {
  Fixture fx;
  const std::string base = temp_base("double");
  remove_slots(base);
  ServingConfig cfg = fx.config(base);

  ServingConfig uninterrupted = cfg;
  uninterrupted.checkpoint.base_path.clear();
  const auto expected = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                        fx.fresh_policy(), uninterrupted);

  ServingConfig crash1 = cfg;
  crash1.max_runs = 21;
  serve_with_odin(fx.tenants(), fx.nonideal, fx.cost, fx.fresh_policy(),
                  crash1);
  auto ckpt1 = load_latest_checkpoint(base);
  ASSERT_TRUE(ckpt1.has_value());

  ServingConfig crash2 = cfg;
  crash2.max_runs = 25;  // crash again 25 runs into the resumed process
  const auto partial2 = resume_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                         *ckpt1, crash2);
  ASSERT_TRUE(partial2.has_value());
  auto ckpt2 = load_latest_checkpoint(base);
  ASSERT_TRUE(ckpt2.has_value());
  EXPECT_GT(ckpt2->sequence, ckpt1->sequence);

  const auto resumed = resume_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                        *ckpt2, cfg);
  ASSERT_TRUE(resumed.has_value());
  expect_identical(expected, *resumed);
  remove_slots(base);
}

TEST(ServingRecovery, ResumeReplaysDeviceWearExactly) {
  Fixture fx;
  const std::string base = temp_base("wear");
  remove_slots(base);
  ServingConfig cfg = fx.config(base);

  ServingConfig uninterrupted = cfg;
  uninterrupted.checkpoint.base_path.clear();
  reram::FaultInjector clean(fx.fault_params(), 0x5eed);
  const auto expected =
      serve_with_odin(fx.tenants(), fx.nonideal, fx.cost, fx.fresh_policy(),
                      uninterrupted, &clean);

  ServingConfig crashed = cfg;
  crashed.max_runs = 40;
  reram::FaultInjector first(fx.fault_params(), 0x5eed);
  serve_with_odin(fx.tenants(), fx.nonideal, fx.cost, fx.fresh_policy(),
                  crashed, &first);
  const auto ckpt = load_latest_checkpoint(base);
  ASSERT_TRUE(ckpt.has_value());
  ASSERT_TRUE(ckpt->has_faults);

  // The resuming process constructs a brand-new injector with the original
  // seed; resume replays the wear campaigns and verifies the fingerprint.
  reram::FaultInjector second(fx.fault_params(), 0x5eed);
  const auto resumed = resume_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                        *ckpt, cfg, &second);
  ASSERT_TRUE(resumed.has_value());
  expect_identical(expected, *resumed);
  EXPECT_EQ(second.campaigns(), clean.campaigns());
  EXPECT_EQ(second.fault_fraction(), clean.fault_fraction());

  // A wrong-seed injector fails the wear fingerprint => refused, no crash.
  reram::FaultInjector wrong(fx.fault_params(), 0xbad);
  EXPECT_FALSE(resume_with_odin(fx.tenants(), fx.nonideal, fx.cost, *ckpt,
                                cfg, &wrong)
                   .has_value());
  remove_slots(base);
}

TEST(ServingRecovery, MismatchedConfigurationIsRefused) {
  Fixture fx;
  const std::string base = temp_base("refuse");
  remove_slots(base);
  ServingConfig cfg = fx.config(base);
  ServingConfig crashed = cfg;
  crashed.max_runs = 20;
  serve_with_odin(fx.tenants(), fx.nonideal, fx.cost, fx.fresh_policy(),
                  crashed);
  const auto ckpt = load_latest_checkpoint(base);
  ASSERT_TRUE(ckpt.has_value());

  ServingConfig wrong_segments = cfg;
  wrong_segments.segments = 8;
  EXPECT_FALSE(resume_with_odin(fx.tenants(), fx.nonideal, fx.cost, *ckpt,
                                wrong_segments)
                   .has_value());
  ServingConfig wrong_horizon = cfg;
  wrong_horizon.horizon.runs = 200;
  EXPECT_FALSE(resume_with_odin(fx.tenants(), fx.nonideal, fx.cost, *ckpt,
                                wrong_horizon)
                   .has_value());
  // Different tenant set (one tenant instead of two).
  EXPECT_FALSE(resume_with_odin({&fx.tenant_a}, fx.nonideal, fx.cost, *ckpt,
                                cfg)
                   .has_value());
  // A faults pointer when the original run had none.
  reram::FaultInjector faults(fx.fault_params(), 0x5eed);
  EXPECT_FALSE(resume_with_odin(fx.tenants(), fx.nonideal, fx.cost, *ckpt,
                                cfg, &faults)
                   .has_value());
  remove_slots(base);
}

TEST(ServingRecovery, CheckpointingItselfDoesNotPerturbTheWalk) {
  Fixture fx;
  const std::string base = temp_base("noeffect");
  remove_slots(base);
  ServingConfig with = fx.config(base);
  ServingConfig without = with;
  without.checkpoint.base_path.clear();
  const auto a = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                 fx.fresh_policy(), with);
  const auto b = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                 fx.fresh_policy(), without);
  expect_identical(a, b);
  remove_slots(base);
}

}  // namespace
}  // namespace odin::core
