// Scenario-engine tests (DESIGN.md §17): trace expansion determinism and
// shaping (tiers, churn, diurnal, flash, storm adjacency), the replayable
// arrival stream, campaign-summary bitwise determinism, mid-storm
// crash/resume through checkpoint payload v6 with the wrong-geometry
// refusal, the autoscaled-vs-static flash-phase comparison, the streaming
// percentile sketches against exact nearest-rank, the capped TenantStats
// fallback, rescale_shard_blocks invariants, the scenario-file parser, and
// the trace -> serving-schedule export.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/binary_io.hpp"
#include "common/rng.hpp"
#include "core/fleet.hpp"
#include "core/resilience.hpp"
#include "core/scenario.hpp"
#include "core/serving.hpp"
#include "core/sketch.hpp"

namespace odin::core {
namespace {

std::string temp_base(const std::string& tag) {
  return ::testing::TempDir() + "odin_campaign_" + tag;
}

void remove_slots(const std::string& base) {
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
}

ScenarioConfig small_scenario() {
  ScenarioConfig sc;
  sc.seed = 11;
  sc.tenants = 24;
  sc.requests = 6000;
  return sc;
}

/// A small campaign with one wide explicit storm so a kill at half the
/// request budget provably lands inside the storm window.
CampaignConfig small_campaign() {
  CampaignConfig cfg;
  cfg.scenario = small_scenario();
  FaultStorm storm;
  storm.start_frac = 0.30;
  storm.duration_frac = 0.40;
  storm.drift_multiplier = 3.0;
  storm.center_pe = 14;
  storm.radius = 1;
  storm.campaigns = 4;
  cfg.scenario.storms = {storm};
  cfg.shards = 4;
  cfg.autoscale.enabled = 1;  // pin: tests must not depend on ODIN_AUTOSCALE
  cfg.epochs = 12;
  return cfg;
}

TEST(Scenario, TraceExpansionIsDeterministic) {
  const ScenarioConfig sc = small_scenario();
  const ScenarioTrace a = build_trace(sc);
  const ScenarioTrace b = build_trace(sc);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].name, b.tenants[i].name);
    EXPECT_EQ(a.tenants[i].tier, b.tenants[i].tier);
    EXPECT_EQ(a.tenants[i].slo_s, b.tenants[i].slo_s);
    EXPECT_EQ(a.tenants[i].weight, b.tenants[i].weight);
    EXPECT_EQ(a.tenants[i].service_s, b.tenants[i].service_s);
    EXPECT_EQ(a.tenants[i].energy_j, b.tenants[i].energy_j);
    EXPECT_EQ(a.tenants[i].arrive_s, b.tenants[i].arrive_s);
    EXPECT_EQ(a.tenants[i].depart_s, b.tenants[i].depart_s);
    EXPECT_EQ(a.tenants[i].flash_mask, b.tenants[i].flash_mask);
  }
  ASSERT_EQ(a.storms.size(), b.storms.size());
  for (std::size_t s = 0; s < a.storms.size(); ++s) {
    EXPECT_EQ(a.storms[s].start_frac, b.storms[s].start_frac);
    EXPECT_EQ(a.storms[s].center_pe, b.storms[s].center_pe);
  }
  EXPECT_EQ(a.base_rate, b.base_rate);
  // A different seed produces a different cast.
  ScenarioConfig other = sc;
  other.seed = 12;
  const ScenarioTrace c = build_trace(other);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.tenants.size(); ++i)
    any_diff = any_diff || a.tenants[i].weight != c.tenants[i].weight;
  EXPECT_TRUE(any_diff);
}

TEST(Scenario, TiersChurnAndSlosFollowTheConfig) {
  const ScenarioConfig sc = small_scenario();
  const ScenarioTrace trace = build_trace(sc);
  // Tier populations by index share: 10% gold, next 30% silver.
  double gold_slo = 0.0, silver_slo = 0.0, bronze_slo = 0.0;
  int gold_n = 0, silver_n = 0, bronze_n = 0;
  for (const ScenarioTenant& t : trace.tenants) {
    switch (t.tier) {
      case PriorityTier::kGold: gold_slo = t.slo_s; ++gold_n; break;
      case PriorityTier::kSilver: silver_slo = t.slo_s; ++silver_n; break;
      case PriorityTier::kBronze: bronze_slo = t.slo_s; ++bronze_n; break;
    }
  }
  EXPECT_EQ(gold_n, 2);     // floor(24 * 0.10)
  EXPECT_EQ(silver_n, 7);   // up to floor(24 * (0.10 + 0.30))
  EXPECT_EQ(bronze_n, 15);  // the remainder
  // Gold pays for priority with the tightest deadline budget.
  EXPECT_GT(gold_slo, 0.0);
  EXPECT_LT(gold_slo, silver_slo);
  EXPECT_LT(silver_slo, bronze_slo);
  // Tenant 0 is pinned always-active; churned tenants have a partial
  // window, non-churned ones never depart.
  EXPECT_EQ(trace.tenants[0].arrive_s, 0.0);
  EXPECT_TRUE(std::isinf(trace.tenants[0].depart_s));
  int churned = 0;
  for (const ScenarioTenant& t : trace.tenants) {
    if (std::isinf(t.depart_s)) {
      EXPECT_EQ(t.arrive_s, 0.0);
    } else {
      ++churned;
      EXPECT_GE(t.depart_s, 0.55 * sc.horizon_s);
      EXPECT_LE(t.depart_s, sc.horizon_s);
      EXPECT_LE(t.arrive_s, 0.5 * sc.horizon_s);
    }
  }
  EXPECT_GT(churned, 0);
  EXPECT_LT(churned, sc.tenants);
}

TEST(Scenario, DiurnalAndFlashShapeTheWeights) {
  const ScenarioConfig sc = small_scenario();
  const ScenarioTrace trace = build_trace(sc);
  const double h = sc.horizon_s;
  // One cycle, trough at t = 0, crest half-way.
  EXPECT_NEAR(trace.diurnal(0.0), 1.0 - sc.diurnal_amplitude, 1e-12);
  EXPECT_NEAR(trace.diurnal(0.5 * h), 1.0 + sc.diurnal_amplitude, 1e-12);
  ASSERT_FALSE(trace.flash.empty());
  const FlashCrowd& crowd = trace.flash[0];
  const double mid = (crowd.start_frac + 0.5 * crowd.duration_frac) * h;
  const double before = (crowd.start_frac - 0.01) * h;
  EXPECT_TRUE(trace.crowd_active(0, mid));
  EXPECT_TRUE(trace.in_flash_phase(mid));
  EXPECT_FALSE(trace.crowd_active(0, before));
  // A targeted, active tenant's pick weight is amplified by the crowd.
  bool checked = false;
  for (std::size_t i = 0; i < trace.tenants.size() && !checked; ++i) {
    const ScenarioTenant& t = trace.tenants[i];
    if ((t.flash_mask & 1u) == 0) continue;
    if (mid < t.arrive_s || mid >= t.depart_s) continue;
    if (before < t.arrive_s || before >= t.depart_s) continue;
    EXPECT_EQ(trace.tenant_weight(i, mid),
              crowd.multiplier * trace.tenant_weight(i, before));
    checked = true;
  }
  EXPECT_TRUE(checked);
  // Outside its active window a tenant's weight is exactly zero.
  for (std::size_t i = 0; i < trace.tenants.size(); ++i) {
    const ScenarioTenant& t = trace.tenants[i];
    if (t.arrive_s > 0.0)
      EXPECT_EQ(trace.tenant_weight(i, 0.5 * t.arrive_s), 0.0);
  }
}

TEST(Scenario, StormFootprintIsChebyshevAdjacency) {
  ScenarioConfig sc = small_scenario();
  FaultStorm corner;  // clipped at the mesh edge
  corner.center_pe = 0;
  corner.radius = 1;
  FaultStorm interior;
  interior.center_pe = 14;  // (2, 2) on the 6x6 mesh
  interior.radius = 2;
  sc.storms = {corner, interior};
  const ScenarioTrace trace = build_trace(sc);
  ASSERT_EQ(trace.storms.size(), 2u);
  for (std::size_t s = 0; s < trace.storms.size(); ++s) {
    const FaultStorm& storm = trace.storms[s];
    const int cx = storm.center_pe % trace.pim.mesh_x;
    const int cy = storm.center_pe / trace.pim.mesh_x;
    const std::vector<int> pes = trace.storm_pes(s);
    // Exactly the PEs within Chebyshev distance `radius` of the center —
    // spatial adjacency on the mesh, not independent draws.
    EXPECT_NE(std::find(pes.begin(), pes.end(), storm.center_pe), pes.end());
    for (int pe : pes) {
      ASSERT_GE(pe, 0);
      ASSERT_LT(pe, trace.pim.pes);
      const int dx = std::abs(pe % trace.pim.mesh_x - cx);
      const int dy = std::abs(pe / trace.pim.mesh_x - cy);
      EXPECT_LE(std::max(dx, dy), storm.radius);
    }
    int expected = 0;
    for (int pe = 0; pe < trace.pim.pes; ++pe) {
      const int dx = std::abs(pe % trace.pim.mesh_x - cx);
      const int dy = std::abs(pe / trace.pim.mesh_x - cy);
      if (std::max(dx, dy) <= storm.radius) ++expected;
    }
    EXPECT_EQ(static_cast<int>(pes.size()), expected);
  }
  // The corner storm is clipped: 2x2, not (2r+1)^2.
  EXPECT_EQ(trace.storm_pes(0).size(), 4u);
  EXPECT_EQ(trace.storm_pes(1).size(), 25u);
}

TEST(Scenario, ArrivalStreamReplaysViaSkip) {
  const ScenarioTrace trace = build_trace(small_scenario());
  ArrivalGenerator full(trace);
  std::vector<ArrivalGenerator::Arrival> events;
  for (int i = 0; i < 500; ++i) events.push_back(full.next());
  double prev = 0.0;
  for (const auto& e : events) {
    EXPECT_GE(e.t_s, prev);
    prev = e.t_s;
    ASSERT_GE(e.tenant, 0);
    ASSERT_LT(e.tenant, static_cast<int>(trace.tenants.size()));
    // The picked tenant was active (nonzero weight) at its arrival time.
    EXPECT_GT(trace.tenant_weight(static_cast<std::size_t>(e.tenant), e.t_s),
              0.0);
  }
  // skip(n) reaches the identical stream state n calls of next() would —
  // the replay idiom resume relies on instead of serializing the RNG.
  ArrivalGenerator resumed(trace);
  resumed.skip(200);
  EXPECT_EQ(resumed.emitted(), 200u);
  for (std::size_t i = 200; i < events.size(); ++i) {
    const auto e = resumed.next();
    EXPECT_EQ(e.t_s, events[i].t_s);
    EXPECT_EQ(e.tenant, events[i].tenant);
  }
}

TEST(Scenario, CampaignSummaryIsByteIdenticalAcrossRuns) {
  const CampaignConfig cfg = small_campaign();
  const CampaignResult a = run_campaign(cfg);
  const CampaignResult b = run_campaign(cfg);
  EXPECT_EQ(a.requests(), cfg.scenario.requests);
  EXPECT_EQ(a.summary(), b.summary());
  // The campaign actually exercised the chaos surface.
  EXPECT_EQ(a.state.storms_fired, 1);
  EXPECT_GT(a.state.storm_campaigns_fired, 0);
  EXPECT_GT(a.state.rescales, 0);
}

TEST(Scenario, CampaignStateCodecRoundTripsExactly) {
  const CampaignResult r = run_campaign(small_campaign());
  common::ByteWriter out;
  encode_campaign_state(r.state, out);
  common::ByteReader in(out.bytes());
  const auto decoded = decode_campaign_state(in);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seed, r.state.seed);
  EXPECT_EQ(decoded->next_event, r.state.next_event);
  EXPECT_EQ(decoded->clock_s, r.state.clock_s);
  EXPECT_EQ(decoded->misses, r.state.misses);
  EXPECT_EQ(decoded->shard_pes, r.state.shard_pes);
  EXPECT_EQ(decoded->tenant_shard, r.state.tenant_shard);
  EXPECT_EQ(decoded->storm_shard_mask, r.state.storm_shard_mask);
  EXPECT_TRUE(decoded->slack_p1 == r.state.slack_p1);
  EXPECT_TRUE(decoded->sojourn == r.state.sojourn);
  ASSERT_EQ(decoded->shard_wear.size(), r.state.shard_wear.size());
  for (std::size_t k = 0; k < decoded->shard_wear.size(); ++k)
    EXPECT_EQ(decoded->shard_wear[k].campaigns, r.state.shard_wear[k].campaigns);
  // Re-encoding the decoded state reproduces the identical byte stream, so
  // every field (including the epoch sketch vector) survived.
  common::ByteWriter again;
  encode_campaign_state(*decoded, again);
  EXPECT_EQ(out.bytes(), again.bytes());
  // Truncated prefixes are refused, never misparsed.
  for (std::size_t cut : {std::size_t{0}, std::size_t{9},
                          out.bytes().size() / 2, out.bytes().size() - 1}) {
    common::ByteReader short_in(std::string_view(out.bytes()).substr(0, cut));
    EXPECT_FALSE(decode_campaign_state(short_in).has_value()) << "cut=" << cut;
  }
}

TEST(Scenario, MidStormCrashResumeIsBitwise) {
  const std::string base = temp_base("midstorm");
  remove_slots(base);
  CampaignConfig cfg = small_campaign();
  cfg.checkpoint.base_path = base;
  cfg.checkpoint.every_runs = 500;

  const CampaignResult full = run_campaign(cfg);

  CampaignConfig crash = cfg;
  crash.max_requests = cfg.scenario.requests / 2;
  const CampaignResult interrupted = run_campaign(crash);
  EXPECT_LT(interrupted.requests(), full.requests());
  // The kill point really is mid-storm: the storm spans [0.30 h, 0.70 h]
  // and the clock at half the request budget sits inside it.
  const double h = cfg.scenario.horizon_s;
  EXPECT_GT(interrupted.state.clock_s, 0.30 * h);
  EXPECT_LT(interrupted.state.clock_s, 0.70 * h);
  EXPECT_EQ(interrupted.state.storms_fired, 1);

  const auto resumed = resume_campaign(cfg);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->requests(), full.requests());
  // Bitwise: the resumed campaign's deterministic summary is identical to
  // the uninterrupted run's, including every sketch-derived percentile.
  EXPECT_EQ(resumed->summary(), full.summary());
  remove_slots(base);
}

TEST(Scenario, ResumeRefusesWrongGeometry) {
  const std::string base = temp_base("geometry");
  remove_slots(base);
  CampaignConfig cfg = small_campaign();
  cfg.checkpoint.base_path = base;
  cfg.checkpoint.every_runs = 500;
  cfg.max_requests = cfg.scenario.requests / 2;
  run_campaign(cfg);  // leaves a mid-campaign checkpoint behind
  cfg.max_requests = 0;

  {
    CampaignConfig wrong = cfg;
    wrong.scenario.seed = cfg.scenario.seed + 1;
    EXPECT_FALSE(resume_campaign(wrong).has_value());
  }
  {
    CampaignConfig wrong = cfg;
    wrong.scenario.requests *= 2;
    EXPECT_FALSE(resume_campaign(wrong).has_value());
  }
  {
    CampaignConfig wrong = cfg;
    wrong.scenario.tenants += 1;
    EXPECT_FALSE(resume_campaign(wrong).has_value());
  }
  {
    CampaignConfig wrong = cfg;
    wrong.shards += 1;
    EXPECT_FALSE(resume_campaign(wrong).has_value());
  }
  {
    CampaignConfig wrong = cfg;
    wrong.epochs += 1;
    EXPECT_FALSE(resume_campaign(wrong).has_value());
  }
  {
    CampaignConfig wrong = cfg;
    wrong.autoscale.enabled = 0;
    EXPECT_FALSE(resume_campaign(wrong).has_value());
  }
  {
    CampaignConfig wrong = cfg;
    wrong.sojourn_cap += 1;
    EXPECT_FALSE(resume_campaign(wrong).has_value());
  }
  // The unmodified geometry still resumes.
  EXPECT_TRUE(resume_campaign(cfg).has_value());
  remove_slots(base);
}

TEST(Scenario, AutoscaledBeatsStaticOnFlashPhaseSlack) {
  CampaignConfig cfg;
  cfg.scenario.seed = 1;
  cfg.scenario.tenants = 120;
  cfg.scenario.requests = 30'000;
  FaultStorm storm1;
  storm1.start_frac = 0.40;
  storm1.duration_frac = 0.25;
  storm1.drift_multiplier = 3.0;
  storm1.radius = 1;
  storm1.campaigns = 4;
  FaultStorm storm2;
  storm2.start_frac = 0.78;
  storm2.duration_frac = 0.05;
  storm2.drift_multiplier = 5.0;
  storm2.radius = 2;
  storm2.campaigns = 6;
  cfg.scenario.storms = {storm1, storm2};
  cfg.shards = 6;
  cfg.epochs = 96;
  cfg.queue_shed_slo_mult = 400.0;  // keep flash backlogs visible (bench)

  cfg.autoscale.enabled = 1;
  const CampaignResult autoscaled = run_campaign(cfg);
  cfg.autoscale.enabled = 0;
  const CampaignResult fixed = run_campaign(cfg);

  EXPECT_GT(autoscaled.state.rescales, 0);
  EXPECT_GT(autoscaled.state.migrations, 0);
  EXPECT_EQ(fixed.state.rescales, 0);
  EXPECT_EQ(fixed.state.migrations, 0);
  // Rebalancing PE blocks under the flash crowds buys real tail slack
  // during the flash phase — the autoscaler's reason to exist.
  EXPECT_GT(autoscaled.flash_p99_slack_s(), fixed.flash_p99_slack_s());
  // Migration costs are charged to their own ledger, off the serving path.
  EXPECT_GT(autoscaled.state.migration_s, 0.0);
}

TEST(Scenario, QuantileSketchTracksExactNearestRank) {
  common::Rng rng(0x5ca1e);
  QuantileSketch p1(0.01);
  SojournSketch sojourn;
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) {
    // Skewed positive samples (squared uniform) — a sojourn-like shape.
    const double u = rng.uniform();
    const double x = 1e-3 + u * u;
    samples.push_back(x);
    p1.add(x);
    sojourn.add(x);
  }
  EXPECT_EQ(p1.count(), 20'000u);
  const double exact_p1 = percentile(samples, 1.0);
  EXPECT_NEAR(p1.estimate(), exact_p1, 0.05 * exact_p1 + 1e-4);
  const double exact_p50 = percentile(samples, 50.0);
  const double exact_p99 = percentile(samples, 99.0);
  EXPECT_NEAR(sojourn.percentile(50.0), exact_p50, 0.05 * exact_p50);
  EXPECT_NEAR(sojourn.percentile(99.0), exact_p99, 0.05 * exact_p99);
  // Extremes and the mean are exact, not estimated.
  EXPECT_EQ(sojourn.min(), *std::min_element(samples.begin(), samples.end()));
  EXPECT_EQ(sojourn.max(), *std::max_element(samples.begin(), samples.end()));
  double sum = 0.0;
  for (double x : samples) sum += x;
  EXPECT_NEAR(sojourn.mean(), sum / 20'000.0, 1e-12);
}

TEST(Scenario, CappedTenantStatsFallBackToTheSketch) {
  common::Rng rng(0xcab);
  TenantStats capped;
  TenantStats uncapped;
  std::vector<double> samples;
  for (int i = 0; i < 5'000; ++i) {
    const double u = rng.uniform();
    const double x = 1e-3 + u * u;
    samples.push_back(x);
    capped.record_sojourn(x, 32);
    uncapped.record_sojourn(x, 0);
  }
  // The cap bounds the raw vector; the sketch absorbed every sample.
  EXPECT_EQ(capped.sojourn_s.size(), 32u);
  EXPECT_EQ(capped.sojourn_dropped, 5'000 - 32);
  EXPECT_EQ(capped.sojourn_sketch.count(), 5'000u);
  EXPECT_EQ(uncapped.sojourn_s.size(), 5'000u);
  EXPECT_EQ(uncapped.sojourn_dropped, 0);
  // Uncapped reporting stays exact; capped reporting switches to the
  // sketch and stays close to the exact nearest-rank percentile.
  const double exact_p99 = percentile(samples, 99.0);
  EXPECT_EQ(uncapped.sojourn_percentile(99.0), exact_p99);
  EXPECT_NEAR(capped.sojourn_percentile(99.0), exact_p99, 0.05 * exact_p99);
}

TEST(Scenario, RescaleShardBlocksKeepsTheFillOrderInvariants) {
  const arch::PimConfig pim;
  const std::vector<int> order = fleet_fill_order(pim, true);
  {
    // Demand-proportional: the hot shard gets the biggest block, every
    // shard keeps at least one PE, and the concatenated blocks are exactly
    // the snake order (contiguity — neighbours trade adjacent PEs).
    const std::vector<double> demand = {8.0, 1.0, 1.0, 0.0};
    const auto blocks = rescale_shard_blocks(pim, true, demand);
    ASSERT_EQ(blocks.size(), demand.size());
    std::vector<int> concat;
    for (const auto& b : blocks) {
      EXPECT_GE(b.size(), 1u);
      concat.insert(concat.end(), b.begin(), b.end());
    }
    EXPECT_EQ(concat, order);
    EXPECT_GT(blocks[0].size(), blocks[1].size());
    EXPECT_EQ(blocks[3].size(), 1u);  // zero demand floors at one PE
  }
  {
    // All-zero demand degenerates to the near-equal static cut.
    const auto blocks = rescale_shard_blocks(pim, true, {0.0, 0.0, 0.0, 0.0});
    std::size_t lo = blocks[0].size(), hi = blocks[0].size();
    std::size_t total = 0;
    for (const auto& b : blocks) {
      lo = std::min(lo, b.size());
      hi = std::max(hi, b.size());
      total += b.size();
    }
    EXPECT_EQ(total, static_cast<std::size_t>(pim.pes));
    EXPECT_LE(hi - lo, 1u);
  }
}

TEST(Scenario, ParserAcceptsTheDocumentedFormat) {
  std::istringstream in(
      "# a seeded campaign (docs/scenario_format.md)\n"
      "seed 42\n"
      "tenants 96\n"
      "requests 50000\n"
      "horizon-s 3600\n"
      "diurnal-cycles 2\n"
      "diurnal-amplitude 0.4\n"
      "churn-frac 0.2\n"
      "target-utilization 0.5\n"
      "gold-share 0.2\n"
      "silver-share 0.3\n"
      "gold-slo-mult 10\n"
      "flash 0.25 0.05 6.0 0.15\n"
      "flash 0.70 0.02 9.0\n"
      "storm 0.40 0.10 3.5 2 5 14\n"
      "shards 5\n"
      "epochs 24\n"
      "autoscale off\n"
      "sojourn-cap 128\n"
      "checkpoint /tmp/campaign_ckpt\n"
      "checkpoint-every 1000\n"
      "fault-seed 7\n"
      "shed-slo-mult 16\n");
  const auto cfg = parse_scenario(in);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->scenario.seed, 42u);
  EXPECT_EQ(cfg->scenario.tenants, 96);
  EXPECT_EQ(cfg->scenario.requests, 50'000);
  EXPECT_EQ(cfg->scenario.horizon_s, 3600.0);
  EXPECT_EQ(cfg->scenario.diurnal_cycles, 2);
  EXPECT_EQ(cfg->scenario.diurnal_amplitude, 0.4);
  EXPECT_EQ(cfg->scenario.churn_frac, 0.2);
  EXPECT_EQ(cfg->scenario.target_utilization, 0.5);
  EXPECT_EQ(cfg->scenario.gold_share, 0.2);
  EXPECT_EQ(cfg->scenario.gold_slo_mult, 10.0);
  ASSERT_EQ(cfg->scenario.flash.size(), 2u);
  EXPECT_EQ(cfg->scenario.flash[0].start_frac, 0.25);
  EXPECT_EQ(cfg->scenario.flash[0].tenant_frac, 0.15);
  EXPECT_EQ(cfg->scenario.flash[1].multiplier, 9.0);
  ASSERT_EQ(cfg->scenario.storms.size(), 1u);
  EXPECT_EQ(cfg->scenario.storms[0].drift_multiplier, 3.5);
  EXPECT_EQ(cfg->scenario.storms[0].radius, 2);
  EXPECT_EQ(cfg->scenario.storms[0].campaigns, 5);
  EXPECT_EQ(cfg->scenario.storms[0].center_pe, 14);
  EXPECT_EQ(cfg->shards, 5);
  EXPECT_EQ(cfg->epochs, 24);
  EXPECT_EQ(cfg->autoscale.enabled, 0);
  EXPECT_EQ(cfg->sojourn_cap, 128u);
  EXPECT_EQ(cfg->checkpoint.base_path, "/tmp/campaign_ckpt");
  EXPECT_EQ(cfg->checkpoint.every_runs, 1000);
  EXPECT_EQ(cfg->fault_seed, 7u);
  EXPECT_EQ(cfg->queue_shed_slo_mult, 16.0);
}

TEST(Scenario, ParserRejectsMalformedInputWithNullopt) {
  // Unknown keys are an error, not silently ignored — a typo must never
  // run a subtly different campaign.
  {
    std::istringstream in("tennants 96\n");
    EXPECT_FALSE(parse_scenario(in).has_value());
  }
  {
    std::istringstream in("tenants ninety\n");  // unparsable value
    EXPECT_FALSE(parse_scenario(in).has_value());
  }
  {
    std::istringstream in("tenants 0\n");  // out of range
    EXPECT_FALSE(parse_scenario(in).has_value());
  }
  {
    std::istringstream in("flash 0.5\n");  // too few storm/flash fields
    EXPECT_FALSE(parse_scenario(in).has_value());
  }
  {
    std::istringstream in("autoscale maybe\n");  // strict tri-state
    EXPECT_FALSE(parse_scenario(in).has_value());
  }
  {
    std::istringstream in("diurnal-amplitude 1.5\n");  // out of [0, 1)
    EXPECT_FALSE(parse_scenario(in).has_value());
  }
  // A missing file is a nullopt too, not a crash.
  EXPECT_FALSE(parse_scenario_file("/nonexistent/campaign.scn").has_value());
}

TEST(Scenario, TraceExportShapesTheServingSchedule) {
  const ScenarioTrace trace = build_trace(small_scenario());
  ServingConfig sc;
  sc.horizon.runs = 60;
  sc.segments = 6;
  apply_trace_to_serving(trace, sc);
  ASSERT_EQ(sc.schedule.size(), 60u);
  // Ascending times, affinely mapped into the serving horizon.
  for (std::size_t i = 1; i < sc.schedule.size(); ++i)
    EXPECT_GE(sc.schedule[i], sc.schedule[i - 1]);
  EXPECT_GE(sc.schedule.front(), sc.horizon.t_start_s);
  EXPECT_LE(sc.schedule.back(), sc.horizon.t_end_s);
  // Per-segment run counts follow the arrival density but always keep the
  // segment alive.
  ASSERT_EQ(sc.segment_sizes.size(), 6u);
  std::size_t total = 0;
  for (std::size_t n : sc.segment_sizes) {
    EXPECT_GE(n, 1u);
    total += n;
  }
  EXPECT_EQ(total, 60u);
  // Density shaping is visible: the crest-adjacent segment (the diurnal
  // peak sits at the segment-2/3 boundary, before churn departures start
  // thinning the roster) carries strictly more runs than the trough
  // segment at the start of the horizon.
  EXPECT_EQ(*std::max_element(sc.segment_sizes.begin(),
                              sc.segment_sizes.end()),
            sc.segment_sizes[2]);
  EXPECT_GT(sc.segment_sizes[2], sc.segment_sizes[0]);
}

}  // namespace
}  // namespace odin::core
