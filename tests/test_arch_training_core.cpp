// Tests for the digital PIM training-core model and its derivation of the
// paper's 0.22 uJ policy-update energy.
#include <gtest/gtest.h>

#include "arch/training_core.hpp"
#include "ou/ou_config.hpp"
#include "policy/policy.hpp"

namespace odin::arch {
namespace {

TEST(TrainingCore, MacCountIsEpochsTimesExamplesTimesParams) {
  const TrainingCoreModel core;
  const auto macs = core.update_macs(300, 50, 100);
  EXPECT_EQ(macs,
            static_cast<std::int64_t>(300LL * 50 * 100 *
                                      core.params().backprop_factor));
}

TEST(TrainingCore, CostScalesLinearly) {
  const TrainingCoreModel core;
  const auto one = core.update_cost(300, 50, 100);
  const auto two = core.update_cost(600, 50, 100);
  EXPECT_NEAR(two.energy_j, 2.0 * one.energy_j, 1e-18);
  EXPECT_NEAR(two.latency_s, 2.0 * one.latency_s, 1e-12);
}

TEST(TrainingCore, DerivesThePaperUpdateEnergy) {
  // Sec. V-E: a policy update (100 epochs, 50-example buffer) costs
  // 0.22 uJ. Our MLP has ~300 parameters; the training core's MAC energy
  // must land within 25% of the reported figure.
  const TrainingCoreModel core;
  policy::OuPolicy policy{ou::OuLevelGrid(128)};
  const auto cost = core.update_cost(
      static_cast<std::int64_t>(policy.parameter_count()), 50, 100);
  EXPECT_NEAR(cost.energy_j, 0.22e-6, 0.25 * 0.22e-6);
  // And it completes in well under an inference run.
  EXPECT_LT(cost.latency_s, 1e-3);
}

}  // namespace
}  // namespace odin::arch
