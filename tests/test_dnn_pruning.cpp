// Tests for the crossbar-aware pruner: sparsity targeting, determinism,
// and the row-structured zero patterns that OU skipping relies on.
#include <gtest/gtest.h>

#include "dnn/pruning.hpp"
#include "dnn/zoo.hpp"

namespace odin::dnn {
namespace {

LayerDescriptor conv_layer(int in_ch, int out_ch, int kernel, int index = 0) {
  LayerDescriptor l;
  l.name = "test";
  l.type = LayerType::kConv;
  l.index = index;
  l.kernel = kernel;
  l.in_channels = in_ch;
  l.out_channels = out_ch;
  l.fan_in = in_ch * kernel * kernel;
  l.outputs = out_ch;
  l.spatial_positions = 64;
  return l;
}

TEST(TargetSparsity, GrowsWithFanIn) {
  const double small = target_sparsity(conv_layer(3, 64, 3));    // fan_in 27
  const double mid = target_sparsity(conv_layer(64, 64, 3));     // 576
  const double large = target_sparsity(conv_layer(512, 512, 3)); // 4608
  EXPECT_LT(small, mid);
  EXPECT_LE(mid, large);
  EXPECT_LE(large, 0.80);
  EXPECT_GE(small, 0.10);
}

TEST(TargetSparsity, CompactProjectionsPrunedLess) {
  // Same fan-in, but a 1x1 projection is less redundant than a 3x3 conv.
  const auto proj = conv_layer(128, 128, 1);
  auto conv = conv_layer(128, 128, 3);
  conv.fan_in = proj.fan_in;  // equalize fan-in to isolate the kernel term
  EXPECT_LT(target_sparsity(proj), target_sparsity(conv));
}

TEST(PruneLayer, AchievesTargetWithinTolerance) {
  const auto layer = conv_layer(64, 128, 3);
  const WeightPattern p = prune_layer(layer, 42);
  const double target = target_sparsity(layer);
  EXPECT_NEAR(p.sparsity(), target, 0.06);  // jitter 0.04 + quantile error
}

TEST(PruneLayer, IsDeterministic) {
  const auto layer = conv_layer(32, 64, 3);
  const WeightPattern a = prune_layer(layer, 7);
  const WeightPattern b = prune_layer(layer, 7);
  ASSERT_EQ(a.nonzeros(), b.nonzeros());
  for (int r = 0; r < layer.fan_in; ++r)
    for (int c = 0; c < layer.outputs; ++c)
      ASSERT_EQ(a.test(r, c), b.test(r, c));
}

TEST(PruneLayer, DifferentSeedsDiffer) {
  const auto layer = conv_layer(32, 64, 3);
  const WeightPattern a = prune_layer(layer, 7);
  const WeightPattern b = prune_layer(layer, 8);
  bool differs = a.nonzeros() != b.nonzeros();
  for (int r = 0; !differs && r < layer.fan_in; ++r)
    for (int c = 0; !differs && c < layer.outputs; ++c)
      differs = a.test(r, c) != b.test(r, c);
  EXPECT_TRUE(differs);
}

TEST(PruneLayer, ProducesRowStructuredZeros) {
  // The shared row-importance factor should kill entire rows — the pattern
  // crossbar-aware pruning creates and OU row-skipping exploits. Expect the
  // fraction of fully-dead rows to be well above what an independent
  // Bernoulli pattern would produce (which is s^cols ~ 0 for 256 cols).
  const auto layer = conv_layer(64, 256, 3);
  const WeightPattern p = prune_layer(layer, 99);
  int dead_rows = 0;
  for (int r = 0; r < layer.fan_in; ++r)
    if (!p.block_live(r, 0, 1, layer.outputs)) ++dead_rows;
  EXPECT_GT(dead_rows, layer.fan_in / 10);
  EXPECT_LT(dead_rows, layer.fan_in);  // but not everything
}

TEST(PruneLayer, NeverFullyZero) {
  auto layer = conv_layer(2, 2, 1);
  layer.fan_in = 2;
  const WeightPattern p = prune_layer(layer, 1);
  EXPECT_GE(p.nonzeros(), 1);
}

TEST(PruneModel, UpdatesDescriptorsAndKeepsAlignment) {
  const PrunedModel pm =
      prune_model(make_vgg11(data::DatasetKind::kCifar10), 2024);
  ASSERT_EQ(pm.patterns.size(), pm.model.layers.size());
  for (std::size_t i = 0; i < pm.patterns.size(); ++i) {
    const auto& layer = pm.model.layers[i];
    const auto& pattern = pm.patterns[i];
    EXPECT_EQ(pattern.rows(), layer.fan_in);
    EXPECT_EQ(pattern.cols(), layer.outputs);
    EXPECT_DOUBLE_EQ(layer.weight_sparsity, pattern.sparsity());
    EXPECT_GT(layer.weight_sparsity, 0.05);
    EXPECT_LT(layer.weight_sparsity, 0.95);
  }
  EXPECT_GT(pm.total_nonzeros(), 0);
  EXPECT_LT(pm.total_nonzeros(), pm.model.total_weights());
}

TEST(PruneModel, SkipProjectionsAreLowSparsity) {
  // Fig. 3: ResNet18 layers 13/18 (the 1x1 skips) have markedly lower
  // sparsity than the wide 3x3 convs around them.
  const PrunedModel pm =
      prune_model(make_resnet18(data::DatasetKind::kCifar10), 2024);
  const double skip = pm.model.layers[12].weight_sparsity;   // conv4_1_skip
  const double conv = pm.model.layers[13].weight_sparsity;   // conv4_2a
  EXPECT_LT(skip, conv - 0.15);
}

}  // namespace
}  // namespace odin::dnn
