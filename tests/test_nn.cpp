// Tests for the from-scratch NN engine: linear algebra, layer gradients
// (checked numerically), optimizers and the multi-head trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hpp"
#include "nn/mlp.hpp"
#include "nn/tensor.hpp"
#include "nn/train.hpp"

namespace odin::nn {
namespace {

TEST(Matrix, MatmulKnownValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [[1,2,3],[4,5,6]]; b = [[7,8],[9,10],[11,12]]
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.flat().begin());
  std::copy(bv, bv + 6, b.flat().begin());
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, TransposedProductsAgreeWithExplicitTranspose) {
  common::Rng rng(3);
  const Matrix a = Matrix::randn(4, 3, 1.0, rng);
  const Matrix b = Matrix::randn(4, 5, 1.0, rng);
  const Matrix atb = matmul_at_b(a, b);  // [3 x 5]
  Matrix at(3, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j) at(j, i) = a(i, j);
  const Matrix ref = matmul(at, b);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_NEAR(atb(i, j), ref(i, j), 1e-12);
}

TEST(Matrix, AxpyAccumulates) {
  Matrix x(2, 2, 1.0);
  Matrix y(2, 2, 2.0);
  axpy(0.5, x, y);
  for (double v : y.flat()) EXPECT_DOUBLE_EQ(v, 2.5);
}

/// Central-difference gradient check of Dense through a scalar loss
/// L = sum(out^2) / 2, so dL/dout = out.
TEST(Dense, GradientsMatchNumericalDifferences) {
  common::Rng rng(7);
  Dense dense(3, 2, rng);
  Matrix input = Matrix::randn(4, 3, 1.0, rng);

  auto loss_fn = [&]() {
    const Matrix out = dense.forward(input);
    double l = 0.0;
    for (double v : out.flat()) l += 0.5 * v * v;
    return l;
  };

  // Analytical gradients.
  const Matrix out = dense.forward(input);
  dense.weight().grad.fill(0.0);
  dense.bias().grad.fill(0.0);
  dense.backward(out);

  const double eps = 1e-6;
  auto w = dense.weight().value.flat();
  auto gw = dense.weight().grad.flat();
  for (std::size_t i = 0; i < w.size(); i += 2) {  // spot-check half
    const double orig = w[i];
    w[i] = orig + eps;
    const double lp = loss_fn();
    w[i] = orig - eps;
    const double lm = loss_fn();
    w[i] = orig;
    EXPECT_NEAR(gw[i], (lp - lm) / (2 * eps), 1e-4);
  }
}

TEST(Relu, ForwardAndBackwardMask) {
  Relu relu;
  Matrix x(1, 4);
  x(0, 0) = -1.0; x(0, 1) = 0.0; x(0, 2) = 2.0; x(0, 3) = -0.5;
  const Matrix y = relu.forward(x);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 2), 2.0);
  Matrix g(1, 4, 1.0);
  const Matrix gx = relu.backward(g);
  EXPECT_DOUBLE_EQ(gx(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(gx(0, 1), 0.0);  // gradient zero at the kink's left side
  EXPECT_DOUBLE_EQ(gx(0, 2), 1.0);
}

TEST(SoftmaxCrossEntropy, LossOfUniformLogitsIsLogK) {
  SoftmaxCrossEntropy ce;
  Matrix logits(2, 4, 0.0);
  const std::vector<int> labels{1, 3};
  EXPECT_NEAR(ce.loss(logits, labels), std::log(4.0), 1e-12);
}

TEST(SoftmaxCrossEntropy, GradientMatchesNumerical) {
  SoftmaxCrossEntropy ce;
  common::Rng rng(9);
  Matrix logits = Matrix::randn(3, 5, 1.0, rng);
  const std::vector<int> labels{0, 2, 4};
  ce.loss(logits, labels);
  const Matrix grad = ce.backward();
  const double eps = 1e-6;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      Matrix lp = logits, lm = logits;
      lp(r, c) += eps;
      lm(r, c) -= eps;
      SoftmaxCrossEntropy tmp;
      const double num =
          (tmp.loss(lp, labels) - tmp.loss(lm, labels)) / (2 * eps);
      EXPECT_NEAR(grad(r, c), num, 1e-5);
    }
  }
}

TEST(MultiHeadMlp, PredictProbaSumsToOnePerHead) {
  MultiHeadMlp mlp({.inputs = 4, .hidden = {16}, .heads = {6, 6}}, 1);
  const std::array<double, 4> x{0.1, 0.5, 0.3, 0.9};
  const auto probs = mlp.predict_proba(x);
  ASSERT_EQ(probs.size(), 2u);
  for (const auto& head : probs) {
    ASSERT_EQ(head.size(), 6u);
    double sum = 0.0;
    for (double p : head) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(MultiHeadMlp, ParameterCountMatchesArchitecture) {
  MultiHeadMlp mlp({.inputs = 4, .hidden = {16}, .heads = {6, 6}}, 1);
  // trunk: 4*16 + 16; heads: 2 * (16*6 + 6)
  EXPECT_EQ(mlp.parameter_count(), 4u * 16 + 16 + 2 * (16 * 6 + 6));
}

Dataset make_separable_multihead(std::size_t n, common::Rng& rng) {
  // Head 0 label: whether x0 > 0.5; head 1 label: bucket of x1.
  Dataset ds;
  ds.inputs = Matrix(n, 4);
  ds.labels.assign(2, std::vector<int>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < 4; ++f) ds.inputs(i, f) = rng.uniform();
    ds.labels[0][i] = ds.inputs(i, 0) > 0.5 ? 1 : 0;
    ds.labels[1][i] = static_cast<int>(ds.inputs(i, 1) * 3.0);
    if (ds.labels[1][i] > 2) ds.labels[1][i] = 2;
  }
  return ds;
}

TEST(Training, FitReducesLossAndLearnsSeparableTask) {
  common::Rng rng(21);
  const Dataset ds = make_separable_multihead(300, rng);
  MultiHeadMlp mlp({.inputs = 4, .hidden = {16}, .heads = {2, 3}}, 5);
  TrainOptions opt;
  opt.epochs = 120;
  const TrainResult result = fit(mlp, ds, opt);
  EXPECT_LT(result.final_loss, result.initial_loss * 0.5);
  EXPECT_GT(exact_match_accuracy(mlp, ds), 0.85);
  const auto per_head = per_head_accuracy(mlp, ds);
  EXPECT_GT(per_head[0], 0.9);
  EXPECT_GT(per_head[1], 0.85);
}

TEST(Training, FitIsDeterministic) {
  common::Rng rng(22);
  const Dataset ds = make_separable_multihead(100, rng);
  MultiHeadMlp a({.inputs = 4, .hidden = {8}, .heads = {2, 3}}, 5);
  MultiHeadMlp b({.inputs = 4, .hidden = {8}, .heads = {2, 3}}, 5);
  TrainOptions opt;
  opt.epochs = 10;
  fit(a, ds, opt);
  fit(b, ds, opt);
  const std::array<double, 4> x{0.2, 0.4, 0.6, 0.8};
  const auto pa = a.predict_proba(x);
  const auto pb = b.predict_proba(x);
  for (std::size_t h = 0; h < pa.size(); ++h)
    for (std::size_t k = 0; k < pa[h].size(); ++k)
      EXPECT_DOUBLE_EQ(pa[h][k], pb[h][k]);
}

TEST(Training, SgdAlsoDescends) {
  common::Rng rng(23);
  const Dataset ds = make_separable_multihead(200, rng);
  MultiHeadMlp mlp({.inputs = 4, .hidden = {8}, .heads = {2, 3}}, 6);
  Sgd opt(mlp.parameters(), 0.1, 0.9);
  std::vector<std::vector<int>> labels(ds.labels.begin(), ds.labels.end());
  const double first = mlp.compute_gradients(ds.inputs, labels);
  opt.step();
  double last = first;
  for (int i = 0; i < 50; ++i) {
    last = mlp.compute_gradients(ds.inputs, labels);
    opt.step();
  }
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace odin::nn
