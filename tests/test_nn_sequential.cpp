// Tests for the convolutional layers (gradient-checked) and the Sequential
// trainer, culminating in a small CNN learning the synthetic dataset.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/conv_layer.hpp"
#include "nn/sequential.hpp"

namespace odin::nn {
namespace {

TEST(Col2Im, IsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property
  // of a correct backward pass.
  common::Rng rng(3);
  const ConvSpec spec{.in_channels = 2, .out_channels = 1, .kernel = 3,
                      .stride = 1, .padding = 1};
  Image x{2, 5, 5, std::vector<double>(50)};
  for (double& v : x.data) v = rng.normal();
  const Matrix cols = im2col(x, spec);
  Matrix y(cols.rows(), cols.cols());
  for (double& v : y.flat()) v = rng.normal();

  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.rows(); ++i)
    for (std::size_t j = 0; j < cols.cols(); ++j) lhs += cols(i, j) * y(i, j);
  const Image back = col2im(y, spec, 5, 5);
  double rhs = 0.0;
  for (std::size_t k = 0; k < x.data.size(); ++k)
    rhs += x.data[k] * back.data[k];
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST(Conv2dLayer, GradientsMatchNumericalDifferences) {
  common::Rng rng(7);
  const ConvSpec spec{.in_channels = 2, .out_channels = 3, .kernel = 3,
                      .stride = 1, .padding = 1};
  Conv2dLayer conv(spec, 4, 4, rng);
  Matrix input = Matrix::randn(2, 2 * 4 * 4, 1.0, rng);

  auto loss_fn = [&]() {
    const Matrix out = conv.forward(input);
    double l = 0.0;
    for (double v : out.flat()) l += 0.5 * v * v;
    return l;
  };
  const Matrix out = conv.forward(input);
  for (Parameter* p : conv.parameters()) p->grad.fill(0.0);
  conv.backward(out);

  const double eps = 1e-6;
  auto params = conv.parameters();
  for (Parameter* p : params) {
    auto w = p->value.flat();
    auto g = p->grad.flat();
    for (std::size_t i = 0; i < w.size(); i += 5) {  // strided spot check
      const double orig = w[i];
      w[i] = orig + eps;
      const double lp = loss_fn();
      w[i] = orig - eps;
      const double lm = loss_fn();
      w[i] = orig;
      EXPECT_NEAR(g[i], (lp - lm) / (2 * eps), 1e-4);
    }
  }
}

TEST(Conv2dLayer, InputGradientMatchesNumerical) {
  common::Rng rng(9);
  const ConvSpec spec{.in_channels = 1, .out_channels = 2, .kernel = 3,
                      .stride = 1, .padding = 1};
  Conv2dLayer conv(spec, 4, 4, rng);
  Matrix input = Matrix::randn(1, 16, 1.0, rng);
  auto loss_fn = [&]() {
    const Matrix out = conv.forward(input);
    double l = 0.0;
    for (double v : out.flat()) l += 0.5 * v * v;
    return l;
  };
  const Matrix out = conv.forward(input);
  for (Parameter* p : conv.parameters()) p->grad.fill(0.0);
  const Matrix din = conv.backward(out);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < 16; i += 3) {
    const double orig = input(0, i);
    input(0, i) = orig + eps;
    const double lp = loss_fn();
    input(0, i) = orig - eps;
    const double lm = loss_fn();
    input(0, i) = orig;
    EXPECT_NEAR(din(0, i), (lp - lm) / (2 * eps), 1e-4);
  }
}

TEST(MaxPool2Layer, ForwardPicksMaxAndBackwardRoutesToWinner) {
  MaxPool2Layer pool(1, 4, 4);
  Matrix input(1, 16);
  for (std::size_t i = 0; i < 16; ++i) input(0, i) = static_cast<double>(i);
  const Matrix out = pool.forward(input);
  ASSERT_EQ(out.cols(), 4u);
  EXPECT_DOUBLE_EQ(out(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(out(0, 3), 15.0);
  Matrix g(1, 4, 1.0);
  const Matrix gin = pool.backward(g);
  EXPECT_DOUBLE_EQ(gin(0, 5), 1.0);
  EXPECT_DOUBLE_EQ(gin(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(gin(0, 15), 1.0);
}

TEST(Sequential, SmallCnnLearnsTheSyntheticTask) {
  // 16x16x3 images (pool-2 of the CIFAR-10-shaped data) -> conv8 -> pool
  // -> conv16 -> pool -> dense 10.
  data::SyntheticDataset dataset(
      data::DatasetSpec::for_kind(data::DatasetKind::kCifar10), 55);
  const Dataset train = dataset.as_feature_dataset(200, 2);  // 3x16x16

  common::Rng rng(5);
  Sequential cnn;
  auto conv1 = std::make_unique<Conv2dLayer>(
      ConvSpec{.in_channels = 3, .out_channels = 8, .kernel = 3,
               .stride = 1, .padding = 1},
      16, 16, rng);
  cnn.add(std::move(conv1));
  cnn.add(std::make_unique<Relu>());
  cnn.add(std::make_unique<MaxPool2Layer>(8, 16, 16));
  auto conv2 = std::make_unique<Conv2dLayer>(
      ConvSpec{.in_channels = 8, .out_channels = 16, .kernel = 3,
               .stride = 1, .padding = 1},
      8, 8, rng);
  cnn.add(std::move(conv2));
  cnn.add(std::make_unique<Relu>());
  cnn.add(std::make_unique<MaxPool2Layer>(16, 8, 8));
  cnn.add(std::make_unique<Dense>(16 * 4 * 4, 10, rng));

  EXPECT_GT(cnn.parameter_count(), 1000u);
  TrainOptions opt;
  opt.epochs = 8;
  opt.batch_size = 16;
  opt.learning_rate = 2e-3;
  const TrainResult result = fit_sequential(cnn, train, opt);
  EXPECT_LT(result.final_loss, result.initial_loss * 0.6);
  EXPECT_GT(cnn.accuracy(train), 0.6);  // chance = 0.1
}

TEST(Sequential, DenseOnlyStackMatchesMultiHeadBehaviour) {
  common::Rng rng(13);
  Sequential mlp;
  mlp.add(std::make_unique<Dense>(4, 16, rng));
  mlp.add(std::make_unique<Relu>());
  mlp.add(std::make_unique<Dense>(16, 3, rng));
  Dataset data;
  data.inputs = Matrix(60, 4);
  data.labels.assign(1, std::vector<int>(60));
  common::Rng drng(17);
  for (std::size_t i = 0; i < 60; ++i) {
    for (std::size_t f = 0; f < 4; ++f) data.inputs(i, f) = drng.uniform();
    data.labels[0][i] = data.inputs(i, 0) > 0.66   ? 2
                        : data.inputs(i, 0) > 0.33 ? 1
                                                   : 0;
  }
  TrainOptions opt;
  opt.epochs = 150;
  fit_sequential(mlp, data, opt);
  EXPECT_GT(mlp.accuracy(data), 0.85);
}

}  // namespace
}  // namespace odin::nn
