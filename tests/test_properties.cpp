// Cross-module property sweeps (TEST_P): invariants that must hold for
// every OU configuration, crossbar size, drift time and layer shape the
// framework can combine — the contracts the analytical pipeline rests on.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "ou/search.hpp"
#include "test_helpers.hpp"

namespace odin::ou {
namespace {

// ---------------------------------------------------------------------
// Mapper conservation: for any OU tiling, the per-block non-zero counts
// partition the layer's non-zeros exactly (no weight lost or duplicated).
// ---------------------------------------------------------------------

class MapperConservation
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MapperConservation, BlocksPartitionNonzeros) {
  const auto [crossbar, rows, cols] = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(rows) * 1000 + cols);
  dnn::WeightPattern pattern(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      if (rng.bernoulli(0.35)) pattern.set(r, c);

  const OuLevelGrid grid(crossbar);
  for (const OuConfig& cfg : grid.all_configs()) {
    std::int64_t covered = 0;
    for (int xr = 0; xr < rows; xr += crossbar) {
      for (int xc = 0; xc < cols; xc += crossbar) {
        const int xrows = std::min(crossbar, rows - xr);
        const int xcols = std::min(crossbar, cols - xc);
        for (int r0 = 0; r0 < xrows; r0 += cfg.rows)
          for (int c0 = 0; c0 < xcols; c0 += cfg.cols)
            covered += pattern.block_nonzeros(
                xr + r0, xc + c0,
                std::min(cfg.rows, xrows - r0),
                std::min(cfg.cols, xcols - c0));
      }
    }
    EXPECT_EQ(covered, pattern.nonzeros()) << cfg.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndCrossbars, MapperConservation,
    ::testing::Values(std::make_tuple(128, 200, 130),
                      std::make_tuple(128, 27, 64),
                      std::make_tuple(64, 300, 70),
                      std::make_tuple(32, 64, 64),
                      std::make_tuple(32, 33, 97)));

// ---------------------------------------------------------------------
// Cost-model dominance: strictly more OU cycles can never cost less, for
// any configuration on the grid.
// ---------------------------------------------------------------------

class CostDominance : public ::testing::TestWithParam<int> {};

TEST_P(CostDominance, MoreCyclesNeverCheaper) {
  const int crossbar = GetParam();
  const OuCostModel model{CostParams{}, reram::DeviceParams{}};
  const OuLevelGrid grid(crossbar);
  for (const OuConfig& cfg : grid.all_configs()) {
    OuCounts small, large;
    small.total_ou_cycles = 100;
    small.max_ou_cycles_per_xbar = 10;
    large.total_ou_cycles = 200;
    large.max_ou_cycles_per_xbar = 20;
    const auto cs = model.layer_cost(small, cfg);
    const auto cl = model.layer_cost(large, cfg);
    EXPECT_GT(cl.total().energy_j, cs.total().energy_j) << cfg.to_string();
    EXPECT_GT(cl.total().latency_s, cs.total().latency_s) << cfg.to_string();
    EXPECT_GT(cl.edp(), cs.edp()) << cfg.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Crossbars, CostDominance,
                         ::testing::Values(32, 64, 128));

// ---------------------------------------------------------------------
// Search consistency: across times and sensitivities, (a) EX's choice is
// feasible and minimal over the feasible set, (b) RB seeded at EX's answer
// reproduces it, (c) RB from any corner is within the K-step reachable
// quality envelope (never better than EX).
// ---------------------------------------------------------------------

class SearchConsistency
    : public ::testing::TestWithParam<std::tuple<double, double>> {
 protected:
  static const ou::MappedModel& model() {
    static ou::MappedModel m = odin::testing::tiny_mapped(128, 777);
    return m;
  }
};

TEST_P(SearchConsistency, ExhaustiveIsOptimalAndRbAgrees) {
  const auto [t, sensitivity] = GetParam();
  const NonIdealityModel nonideal{reram::DeviceParams{},
                                  NonIdealityParams{}};
  const OuCostModel cost{CostParams{}, reram::DeviceParams{}};
  const OuLevelGrid grid(128);
  for (std::size_t j = 0; j < model().layer_count(); ++j) {
    LayerContext ctx{.mapping = &model().mapping(j), .cost = &cost,
                     .nonideal = &nonideal, .grid = &grid,
                     .elapsed_s = t, .sensitivity = sensitivity};
    const SearchResult ex = exhaustive_search(ctx);
    if (!ex.found) {
      // Then nothing on the grid is feasible.
      for (const OuConfig& cfg : grid.all_configs())
        EXPECT_FALSE(ctx.feasible(cfg)) << cfg.to_string();
      continue;
    }
    EXPECT_TRUE(ctx.feasible(ex.best));
    for (const OuConfig& cfg : grid.all_configs())
      if (ctx.feasible(cfg))
        EXPECT_LE(ex.edp, ctx.edp(cfg) * (1 + 1e-12)) << cfg.to_string();

    const SearchResult rb_seeded = resource_bounded_search(ctx, ex.best, 3);
    ASSERT_TRUE(rb_seeded.found);
    EXPECT_EQ(rb_seeded.best, ex.best);

    const SearchResult rb_corner =
        resource_bounded_search(ctx, grid.config_at(0, 0), 3);
    ASSERT_TRUE(rb_corner.found);
    EXPECT_GE(rb_corner.edp, ex.edp * (1 - 1e-12));
  }
}

INSTANTIATE_TEST_SUITE_P(
    TimesAndSensitivities, SearchConsistency,
    ::testing::Combine(::testing::Values(1.0, 1e3, 1e6, 4e7, 1e9),
                       ::testing::Values(1.0, 1.8, 3.0)));

// ---------------------------------------------------------------------
// Non-ideality / budget consistency: max_feasible_sum is exactly the
// largest sum among feasible grid configs, at every time and sensitivity.
// ---------------------------------------------------------------------

class BudgetConsistency
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(BudgetConsistency, MaxFeasibleSumMatchesEnumeration) {
  const auto [t, sensitivity, crossbar] = GetParam();
  const NonIdealityModel nonideal{reram::DeviceParams{},
                                  NonIdealityParams{}, crossbar};
  const OuLevelGrid grid(crossbar);
  int expected = 0;
  for (const OuConfig& cfg : grid.all_configs())
    if (nonideal.feasible(t, cfg, sensitivity))
      expected = std::max(expected, cfg.sum());
  EXPECT_EQ(nonideal.max_feasible_sum(t, grid, sensitivity), expected);
  EXPECT_EQ(nonideal.reprogram_required(t, grid, sensitivity),
            expected == 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BudgetConsistency,
    ::testing::Combine(::testing::Values(1.0, 1e4, 1e7, 2e8),
                       ::testing::Values(1.0, 3.0),
                       ::testing::Values(32, 128)));

// ---------------------------------------------------------------------
// End-to-end EDP sanity across the homogeneous family: on a realistic
// pruned layer set, inference EDP is finite, positive, and the EDP-vs-OU
// landscape has the fine-OU penalty the paper describes.
// ---------------------------------------------------------------------

class HomogeneousLandscape : public ::testing::TestWithParam<double> {};

TEST_P(HomogeneousLandscape, FineOusPayPerCycleCosts) {
  const double t = GetParam();
  const auto& model = odin::testing::tiny_mapped(128, 4242);
  const OuCostModel cost{CostParams{}, reram::DeviceParams{}};
  common::EnergyLatency fine, mid;
  for (std::size_t j = 0; j < model.layer_count(); ++j) {
    fine += cost.layer_cost(model.mapping(j).counts({4, 4}), {4, 4}).total();
    mid += cost.layer_cost(model.mapping(j).counts({16, 16}), {16, 16})
               .total();
  }
  (void)t;  // cost is time-invariant; the sweep guards determinism
  EXPECT_GT(fine.energy_j, mid.energy_j);
  EXPECT_GT(fine.latency_s, mid.latency_s);
}

INSTANTIATE_TEST_SUITE_P(Times, HomogeneousLandscape,
                         ::testing::Values(1.0, 1e4, 1e8));

}  // namespace
}  // namespace odin::ou
