// Architecture checks for the model zoo: layer counts, shapes, parameter
// totals and the specific structural facts the paper's figures rely on.
#include <gtest/gtest.h>

#include "dnn/zoo.hpp"

namespace odin::dnn {
namespace {

using data::DatasetKind;

TEST(Zoo, ResNet18LayerStructure) {
  const DnnModel m = make_resnet18(DatasetKind::kCifar10);
  // conv1 + 16 block convs + 3 skip projections + fc = 21 layers.
  EXPECT_EQ(m.layers.size(), 21u);
  // Fig. 3's low-sparsity layers 13 and 18 (1-based) are the 1x1 skip
  // projections; our 0-based indices 7, 12, 17.
  for (int idx : {7, 12, 17}) {
    const auto& l = m.layers[static_cast<std::size_t>(idx)];
    EXPECT_EQ(l.kernel, 1) << l.name;
    EXPECT_NE(l.name.find("skip"), std::string::npos);
  }
  EXPECT_EQ(m.layers.front().in_channels, 3);
  EXPECT_EQ(m.layers.back().outputs, 10);
}

TEST(Zoo, ResNet18ParameterCountIsCanonical) {
  const DnnModel m = make_resnet18(DatasetKind::kCifar10);
  // CIFAR ResNet18 has ~11.2M conv/fc weights.
  EXPECT_GT(m.total_weights(), 10'500'000);
  EXPECT_LT(m.total_weights(), 11'500'000);
}

TEST(Zoo, Vgg11ShapesForCifar) {
  const DnnModel m = make_vgg11(DatasetKind::kCifar10);
  EXPECT_EQ(m.layers.size(), 10u);  // 8 convs + 2 fc
  EXPECT_EQ(m.layers[0].out_channels, 64);
  EXPECT_EQ(m.layers[0].spatial_positions, 32 * 32);
  // After 5 pools a 32x32 input is 1x1; fc1 reads 512 features.
  EXPECT_EQ(m.layers[8].fan_in, 512);
  EXPECT_EQ(m.layers[9].outputs, 10);
  EXPECT_GT(m.total_weights(), 9'000'000);
  EXPECT_LT(m.total_weights(), 10'000'000);
}

TEST(Zoo, Vgg19OnTinyImageNetScalesSpatially) {
  const DnnModel m = make_vgg19(DatasetKind::kTinyImageNet);
  EXPECT_EQ(m.layers.size(), 18u);  // 16 convs + 2 fc
  EXPECT_EQ(m.layers[0].spatial_positions, 64 * 64);
  // 64 input -> 2x2 after 5 pools -> flat = 512*4.
  EXPECT_EQ(m.layers[16].fan_in, 2048);
  EXPECT_EQ(m.layers.back().outputs, 200);
}

TEST(Zoo, ResNet34And50BlockCounts) {
  const DnnModel r34 = make_resnet34(DatasetKind::kCifar100);
  // conv1 + 2*(3+4+6+3) convs + 3 skips + fc = 1 + 32 + 3 + 1.
  EXPECT_EQ(r34.layers.size(), 37u);
  EXPECT_EQ(r34.layers.back().outputs, 100);

  const DnnModel r50 = make_resnet50(DatasetKind::kTinyImageNet);
  // conv1 + 3*(3+4+6+3) convs + 4 skips + fc = 1 + 48 + 4 + 1.
  EXPECT_EQ(r50.layers.size(), 54u);
  EXPECT_EQ(r50.layers.back().fan_in, 2048);
  // Bottleneck expansion: last conv stage outputs 2048 channels.
  EXPECT_GT(r50.total_weights(), 20'000'000);
}

TEST(Zoo, GoogLeNetInceptionWidths) {
  const DnnModel m = make_googlenet(DatasetKind::kCifar10);
  // Stem 3 convs + 9 inception modules * 6 convs + fc.
  EXPECT_EQ(m.layers.size(), 3u + 9 * 6 + 1);
  // 5b output concat = 384+384+128+128 = 1024 -> fc fan-in.
  EXPECT_EQ(m.layers.back().fan_in, 1024);
  EXPECT_EQ(m.layers.back().outputs, 10);
}

TEST(Zoo, DenseNet121LayerCountAndGrowth) {
  const DnnModel m = make_densenet121(DatasetKind::kCifar10);
  // conv1 + 2*(6+12+24+16) + 3 transitions + fc = 1 + 116 + 3 + 1.
  EXPECT_EQ(m.layers.size(), 121u);
  // Final channel count: standard DenseNet-121 ends at 1024.
  EXPECT_EQ(m.layers.back().fan_in, 1024);
}

TEST(Zoo, ViTTokenArithmetic) {
  const DnnModel m = make_vit(DatasetKind::kCifar10);
  // patch embed + 6 blocks * 4 projections + head.
  EXPECT_EQ(m.layers.size(), 1u + 24 + 1);
  const auto& qkv = m.layers[1];
  EXPECT_EQ(qkv.type, LayerType::kAttention);
  EXPECT_EQ(qkv.fan_in, 256);
  EXPECT_EQ(qkv.outputs, 768);
  EXPECT_EQ(qkv.spatial_positions, 8 * 8 + 1);  // 64 patches + cls token
}

TEST(Zoo, PaperWorkloadsMatchSectionVA) {
  const auto w = paper_workloads();
  ASSERT_EQ(w.size(), 9u);
  EXPECT_EQ(w[0].name, "ResNet18");
  EXPECT_EQ(w[0].dataset, DatasetKind::kCifar10);
  EXPECT_EQ(w[5].name, "ResNet34");
  EXPECT_EQ(w[5].dataset, DatasetKind::kCifar100);
  EXPECT_EQ(w[8].name, "VGG19");
  EXPECT_EQ(w[8].dataset, DatasetKind::kTinyImageNet);
}

TEST(Zoo, LayerIndicesAreSequential) {
  for (const auto& model : paper_workloads()) {
    for (std::size_t i = 0; i < model.layers.size(); ++i)
      EXPECT_EQ(model.layers[i].index, static_cast<int>(i)) << model.name;
  }
}

TEST(Zoo, AllLayersHaveConsistentLoweredShapes) {
  for (const auto& model : paper_workloads()) {
    for (const auto& l : model.layers) {
      EXPECT_GT(l.fan_in, 0) << model.name << "/" << l.name;
      EXPECT_GT(l.outputs, 0) << model.name << "/" << l.name;
      EXPECT_GT(l.spatial_positions, 0) << model.name << "/" << l.name;
      if (l.type == LayerType::kConv)
        EXPECT_EQ(l.fan_in, l.in_channels * l.kernel * l.kernel)
            << model.name << "/" << l.name;
      EXPECT_EQ(l.macs(), l.weight_count() * l.spatial_positions);
    }
  }
}

TEST(Zoo, FamilyNames) {
  EXPECT_EQ(family_name(Family::kVgg), "VGG");
  EXPECT_EQ(family_name(Family::kViT), "ViT");
}

}  // namespace
}  // namespace odin::dnn
