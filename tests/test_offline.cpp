// Tests for the offline policy bootstrap (paper Sec. V-A protocol).
#include <gtest/gtest.h>

#include "policy/offline.hpp"
#include "test_helpers.hpp"

namespace odin::policy {
namespace {

struct Fixture {
  ou::MappedModel model_a = testing::tiny_mapped(128, 1);
  ou::MappedModel model_b = testing::tiny_mapped(128, 2);
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  ou::OuLevelGrid grid{128};

  std::vector<const ou::MappedModel*> models() const {
    return {&model_a, &model_b};
  }
  OfflineTrainConfig fast_config() const {
    OfflineTrainConfig cfg;
    cfg.time_samples = 4;
    cfg.train_options.epochs = 60;
    return cfg;
  }
};

TEST(Offline, DatasetRespectsExampleBudget) {
  Fixture fx;
  auto cfg = fx.fast_config();
  cfg.max_examples = 10;
  const auto models = fx.models();
  const nn::Dataset data =
      build_offline_dataset(models, fx.nonideal, fx.cost, fx.grid, cfg);
  EXPECT_EQ(data.size(), 10u);
}

TEST(Offline, DatasetLabelsAreValidGridLevels) {
  Fixture fx;
  const auto models = fx.models();
  const nn::Dataset data = build_offline_dataset(models, fx.nonideal,
                                                 fx.cost, fx.grid,
                                                 fx.fast_config());
  // 2 models x 4 time samples x 6 layers = 48 candidates, but the last
  // sample (t = 1e8 s) is in the reprogram regime where no OU is feasible
  // and no label exists, leaving 36.
  EXPECT_EQ(data.size(), 36u);
  ASSERT_EQ(data.labels.size(), 2u);
  for (std::size_t h = 0; h < 2; ++h) {
    for (int label : data.labels[h]) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, fx.grid.levels());
    }
  }
  // Feature values are normalized.
  for (std::size_t i = 0; i < data.size(); ++i)
    for (std::size_t f = 0; f < data.inputs.cols(); ++f) {
      EXPECT_GE(data.inputs(i, f), 0.0);
      EXPECT_LE(data.inputs(i, f), 1.0);
    }
}

TEST(Offline, DatasetIsDeterministic) {
  Fixture fx;
  const auto models = fx.models();
  const nn::Dataset a = build_offline_dataset(models, fx.nonideal, fx.cost,
                                              fx.grid, fx.fast_config());
  const nn::Dataset b = build_offline_dataset(models, fx.nonideal, fx.cost,
                                              fx.grid, fx.fast_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t f = 0; f < a.inputs.cols(); ++f)
      EXPECT_DOUBLE_EQ(a.inputs(i, f), b.inputs(i, f));
}

TEST(Offline, TrainedPolicyBeatsUntrainedOnItsOwnData) {
  Fixture fx;
  const auto models = fx.models();
  const auto cfg = fx.fast_config();
  const nn::Dataset data =
      build_offline_dataset(models, fx.nonideal, fx.cost, fx.grid, cfg);

  OuPolicy untrained(fx.grid);
  OuPolicy trained =
      train_offline_policy(models, fx.nonideal, fx.cost, fx.grid, cfg);
  const double acc_untrained =
      nn::exact_match_accuracy(untrained.mlp(), data);
  const double acc_trained = nn::exact_match_accuracy(trained.mlp(), data);
  EXPECT_GT(acc_trained, acc_untrained + 0.1);
  EXPECT_GT(acc_trained, 0.5);
}

TEST(Offline, LateTimeLabelsAreFinerThanEarly) {
  // The offline labels must encode the Fig. 4 shift: best configs at the
  // end of the horizon have smaller R+C than at t0.
  Fixture fx;
  auto cfg = fx.fast_config();
  cfg.time_samples = 2;  // exactly t0 and 1e8... 1e8 is infeasible, use 5e7
  cfg.t_end_s = 5e7;
  const auto models = fx.models();
  const nn::Dataset data = build_offline_dataset(models, fx.nonideal,
                                                 fx.cost, fx.grid, cfg);
  ASSERT_EQ(data.size(), 24u);  // 2 models x 2 times x 6 layers
  double early_sum = 0.0, late_sum = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double sum = fx.grid.size_at(data.labels[0][i]) +
                       fx.grid.size_at(data.labels[1][i]);
    if (data.inputs(i, 3) < 0.5)
      early_sum += sum;
    else
      late_sum += sum;
  }
  EXPECT_GT(early_sum, late_sum);
}

}  // namespace
}  // namespace odin::policy
