// Deadline-aware batch formation in the resilience serving loop
// (DESIGN.md §14): under queue pressure the drain groups same-tenant
// arrivals into one pipelined pass (the controller search runs once per
// batch, members ride the arch::BatchCost pipeline), but never grows a
// batch past a member's SLO slack. Batching is opt-in; with a cap of 1 the
// walk must be bit-identical to the PR-5 resilience behaviour.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/serving.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

struct Fixture {
  ou::MappedModel tenant_a = testing::tiny_mapped(128, 21);
  ou::MappedModel tenant_b = testing::tiny_mapped(128, 22);
  ou::MappedModel tenant_c = testing::tiny_mapped(128, 23);
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};

  std::vector<const ou::MappedModel*> tenants() const {
    return {&tenant_a, &tenant_b, &tenant_c};
  }
  ServingConfig config() const {
    ServingConfig cfg;
    cfg.horizon = HorizonConfig{.t_start_s = 1.0, .t_end_s = 1e8,
                                .runs = 120};
    cfg.segments = 6;
    return cfg;
  }
  policy::OuPolicy policy() const {
    return policy::OuPolicy(ou::OuLevelGrid(128));
  }
};

/// Overload scenario shared by the formation tests: service inflated far
/// past the early-horizon inter-arrival gaps, deep queue, no shedding, a
/// breaker that cannot trip — the backlog is the only variable.
ServingConfig overloaded(const Fixture& fx) {
  ServingConfig cfg = fx.config();
  cfg.resilience.enabled = true;
  cfg.resilience.queue_capacity = 1'000;
  cfg.resilience.shed = ShedPolicy::kBlock;
  cfg.resilience.search_eval_cost_s = 0.5;
  cfg.resilience.breaker = {.failure_threshold = 1'000'000};
  return cfg;
}

std::vector<double> pooled_sojourns(const ServingResult& r) {
  std::vector<double> all;
  for (const TenantStats& t : r.tenants)
    all.insert(all.end(), t.sojourn_s.begin(), t.sojourn_s.end());
  return all;
}

TEST(ServingBatching, DisabledByDefaultAndCapOneIsTransparent) {
  Fixture fx;
  ServingConfig plain_cfg = overloaded(fx);
  const auto plain = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                     fx.policy(), plain_cfg);
  EXPECT_EQ(plain.total_batches_formed(), 0);
  EXPECT_EQ(plain.total_batch_members(), 0);
  EXPECT_EQ(plain.max_batch(), 0);
  EXPECT_EQ(plain.mean_batch_occupancy(), 0.0);

  // Cap 1: every drain forms a single-member batch that delegates to the
  // plain full-service path — only the occupancy counters may differ.
  ServingConfig capped_cfg = overloaded(fx);
  capped_cfg.resilience.batching.enabled = true;
  capped_cfg.resilience.batching.max_batch = 1;
  const auto capped = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                      fx.policy(), capped_cfg);
  EXPECT_EQ(capped.total_runs(), 120);
  EXPECT_EQ(capped.total_batches_formed(), 120);
  EXPECT_EQ(capped.total_batch_members(), 120);
  EXPECT_EQ(capped.max_batch(), 1);
  EXPECT_EQ(capped.mean_batch_occupancy(), 1.0);
  EXPECT_EQ(capped.total().energy_j, plain.total().energy_j);
  EXPECT_EQ(capped.total().latency_s, plain.total().latency_s);
  ASSERT_EQ(capped.tenants.size(), plain.tenants.size());
  for (std::size_t i = 0; i < capped.tenants.size(); ++i) {
    EXPECT_EQ(capped.tenants[i].runs, plain.tenants[i].runs);
    EXPECT_EQ(capped.tenants[i].sojourn_s, plain.tenants[i].sojourn_s)
        << "tenant " << i;
  }
}

TEST(ServingBatching, OverloadFormsBatchesAndDrainsBacklogFaster) {
  Fixture fx;
  const ServingConfig plain_cfg = overloaded(fx);
  const auto plain = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                     fx.policy(), plain_cfg);

  ServingConfig batched_cfg = overloaded(fx);
  batched_cfg.resilience.batching.enabled = true;
  batched_cfg.resilience.batching.max_batch = 8;
  const auto batched = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                       fx.policy(), batched_cfg);

  // Every arrival is still served exactly once, all through the batch path.
  EXPECT_EQ(batched.total_runs(), 120);
  EXPECT_EQ(batched.total_batch_members(), 120);
  EXPECT_EQ(static_cast<int>(pooled_sojourns(batched).size()), 120);
  // The backlog actually produced multi-member batches...
  EXPECT_LT(batched.total_batches_formed(), 120);
  EXPECT_GE(batched.max_batch(), 2);
  EXPECT_LE(batched.max_batch(), 8);
  EXPECT_GT(batched.mean_batch_occupancy(), 1.0);
  EXPECT_EQ(batched.total_batch_slo_capped(), 0);  // no SLO in force
  // ...and batching one search + a pipelined pass per group drains the
  // queue faster than one full serve per arrival.
  const double worst_plain = percentile(pooled_sojourns(plain), 100.0);
  const double worst_batched = percentile(pooled_sojourns(batched), 100.0);
  EXPECT_LT(worst_batched, worst_plain)
      << "batched=" << worst_batched << " plain=" << worst_plain;
}

TEST(ServingBatching, TightSloCapsBatchGrowth) {
  Fixture fx;
  ServingConfig cfg = overloaded(fx);
  cfg.resilience.batching.enabled = true;
  cfg.resilience.batching.max_batch = 8;
  // Far below the inflated service time: a waiting member's slack can
  // never absorb riding along in a batch, so growth is refused and every
  // arrival is served in its own pass (the leader always ships).
  cfg.resilience.default_slo_s = 1e-3;
  const auto result = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                      fx.policy(), cfg);
  EXPECT_EQ(result.total_runs(), 120);
  EXPECT_GT(result.total_batch_slo_capped(), 0);
  EXPECT_EQ(result.max_batch(), 1);
  EXPECT_EQ(result.total_batch_members(), 120);
}

// --- Checkpoint/resume of the batch-formation state ---

TEST(ServingBatching, CheckpointResumeRoundTripsBatchStateBitwise) {
  Fixture fx;
  ServingConfig cfg = overloaded(fx);
  cfg.resilience.batching.enabled = true;
  cfg.resilience.batching.max_batch = 8;

  const auto uninterrupted = serve_with_odin(
      fx.tenants(), fx.nonideal, fx.cost, fx.policy(), cfg);
  EXPECT_GT(uninterrupted.total_batches_formed(), 0);
  EXPECT_GE(uninterrupted.max_batch(), 2);  // the state is exercised

  const std::string base = ::testing::TempDir() + "odin_batching_ckpt";
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
  ServingConfig crashed = cfg;
  crashed.checkpoint.base_path = base;
  crashed.checkpoint.every_runs = 10;
  crashed.max_runs = 25;  // die inside segment 1 with the queue backed up
  const auto partial = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                       fx.policy(), crashed);
  EXPECT_LT(partial.total_runs(), 120);

  const auto ckpt = load_latest_checkpoint(base);
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_TRUE(ckpt->has_resilience);
  EXPECT_TRUE(ckpt->batching_enabled);
  EXPECT_EQ(ckpt->batch_cap, 8);

  const auto resumed = resume_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                        *ckpt, cfg);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->total_batches_formed(),
            uninterrupted.total_batches_formed());
  EXPECT_EQ(resumed->total_batch_members(),
            uninterrupted.total_batch_members());
  EXPECT_EQ(resumed->max_batch(), uninterrupted.max_batch());
  EXPECT_EQ(resumed->total_batch_slo_capped(),
            uninterrupted.total_batch_slo_capped());
  EXPECT_EQ(resumed->total().energy_j, uninterrupted.total().energy_j);
  EXPECT_EQ(resumed->total().latency_s, uninterrupted.total().latency_s);
  ASSERT_EQ(resumed->tenants.size(), uninterrupted.tenants.size());
  for (std::size_t i = 0; i < resumed->tenants.size(); ++i) {
    const TenantStats& a = resumed->tenants[i];
    const TenantStats& b = uninterrupted.tenants[i];
    EXPECT_EQ(a.runs, b.runs) << "tenant " << i;
    EXPECT_EQ(a.batches_formed, b.batches_formed) << "tenant " << i;
    EXPECT_EQ(a.batch_members, b.batch_members) << "tenant " << i;
    EXPECT_EQ(a.max_batch, b.max_batch) << "tenant " << i;
    EXPECT_EQ(a.batch_slo_capped, b.batch_slo_capped) << "tenant " << i;
    EXPECT_EQ(a.sojourn_s, b.sojourn_s) << "tenant " << i;  // bitwise
  }

  // The batching fingerprint is validated: the queued state must not
  // transfer onto a different batching geometry.
  ServingConfig other = cfg;
  other.resilience.batching.enabled = false;
  EXPECT_FALSE(resume_with_odin(fx.tenants(), fx.nonideal, fx.cost, *ckpt,
                                other)
                   .has_value());
  other = cfg;
  other.resilience.batching.max_batch = 4;
  EXPECT_FALSE(resume_with_odin(fx.tenants(), fx.nonideal, fx.cost, *ckpt,
                                other)
                   .has_value());
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
}

}  // namespace
}  // namespace odin::core
