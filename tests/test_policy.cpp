// Tests for feature extraction, the MLP OU policy and the replay buffer.
#include <gtest/gtest.h>

#include "policy/buffer.hpp"
#include "policy/features.hpp"
#include "policy/policy.hpp"

namespace odin::policy {
namespace {

dnn::LayerDescriptor layer_at(int index, double sparsity, int kernel) {
  dnn::LayerDescriptor l;
  l.index = index;
  l.weight_sparsity = sparsity;
  l.kernel = kernel;
  l.fan_in = 64;
  l.outputs = 64;
  return l;
}

TEST(Features, NormalizedIntoUnitRanges) {
  const Features f = extract_features(layer_at(10, 0.6, 3), 21, 1e4);
  EXPECT_NEAR(f.layer_position, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(f.sparsity, 0.6);
  EXPECT_NEAR(f.kernel, 3.0 / 7.0, 1e-12);
  EXPECT_NEAR(f.log_time, 0.5, 1e-9);  // log10(1e4)/8
}

TEST(Features, ClampsExtremes) {
  const Features early = extract_features(layer_at(0, 0.0, 1), 10, 0.1);
  EXPECT_DOUBLE_EQ(early.layer_position, 0.0);
  EXPECT_DOUBLE_EQ(early.log_time, 0.0);  // below t0 clamps
  const Features late = extract_features(layer_at(9, 1.0, 7), 10, 1e12);
  EXPECT_DOUBLE_EQ(late.layer_position, 1.0);
  EXPECT_DOUBLE_EQ(late.log_time, 1.0);
  EXPECT_DOUBLE_EQ(late.kernel, 1.0);
}

TEST(Features, SingleLayerNetworkPositionIsZero) {
  const Features f = extract_features(layer_at(0, 0.5, 3), 1, 1.0);
  EXPECT_DOUBLE_EQ(f.layer_position, 0.0);
}

TEST(OuPolicy, PredictsConfigsOnTheGrid) {
  const ou::OuLevelGrid grid(128);
  OuPolicy policy(grid);
  const Features f = extract_features(layer_at(3, 0.5, 3), 10, 100.0);
  const ou::OuConfig cfg = policy.predict(f);
  EXPECT_GE(grid.level_of(cfg.rows), 0);
  EXPECT_GE(grid.level_of(cfg.cols), 0);
}

TEST(OuPolicy, ProbabilitiesAreDistributions) {
  const ou::OuLevelGrid grid(64);
  OuPolicy policy(grid);
  const Features f = extract_features(layer_at(1, 0.3, 1), 5, 10.0);
  const auto probs = policy.predict_proba(f);
  ASSERT_EQ(probs.size(), 2u);
  for (const auto& head : probs) {
    ASSERT_EQ(head.size(), static_cast<std::size_t>(grid.levels()));
    double sum = 0.0;
    for (double p : head) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(OuPolicy, LearnsADeterministicMapping) {
  // Rule: high sparsity -> small OU (level 0), low sparsity -> big (level 4).
  const ou::OuLevelGrid grid(128);
  OuPolicy policy(grid);
  nn::Dataset data;
  common::Rng rng(8);
  for (int i = 0; i < 120; ++i) {
    const double sparsity = rng.uniform();
    Features f;
    f.layer_position = rng.uniform();
    f.sparsity = sparsity;
    f.kernel = 3.0 / 7.0;
    f.log_time = rng.uniform();
    const int level = sparsity > 0.5 ? 0 : 4;
    OuPolicy::append_example(data, f, grid,
                             grid.config_at(level, level));
  }
  nn::TrainOptions opt;
  opt.epochs = 150;
  const auto result = policy.train(data, opt);
  EXPECT_LT(result.final_loss, result.initial_loss);

  Features sparse;
  sparse.sparsity = 0.9;
  sparse.kernel = 3.0 / 7.0;
  sparse.layer_position = 0.5;
  sparse.log_time = 0.5;
  Features dense = sparse;
  dense.sparsity = 0.1;
  EXPECT_EQ(policy.predict(sparse), grid.config_at(0, 0));
  EXPECT_EQ(policy.predict(dense), grid.config_at(4, 4));
}

TEST(OuPolicy, ParameterCountIsTiny) {
  // The paper stresses low overhead: 4 -> 16 -> 2x6 is O(300) parameters.
  const ou::OuLevelGrid grid(128);
  OuPolicy policy(grid);
  EXPECT_LT(policy.parameter_count(), 1000u);
}

TEST(ReplayBuffer, FillsAndReportsFull) {
  ReplayBuffer buffer(3);
  const ou::OuLevelGrid grid(128);
  Features f;
  EXPECT_TRUE(buffer.empty());
  buffer.add(f, {4, 4});
  buffer.add(f, {8, 8});
  EXPECT_FALSE(buffer.full());
  buffer.add(f, {16, 16});
  EXPECT_TRUE(buffer.full());
  EXPECT_EQ(buffer.size(), 3u);
  // Overflow is dropped.
  buffer.add(f, {32, 32});
  EXPECT_EQ(buffer.size(), 3u);
}

TEST(ReplayBuffer, DatasetRoundTripsLabels) {
  ReplayBuffer buffer(4);
  const ou::OuLevelGrid grid(128);
  Features f;
  f.sparsity = 0.25;
  buffer.add(f, {16, 8});
  buffer.add(f, {4, 128});
  const nn::Dataset data = buffer.to_dataset(grid);
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data.labels[0][0], grid.level_of(16));
  EXPECT_EQ(data.labels[1][0], grid.level_of(8));
  EXPECT_EQ(data.labels[0][1], grid.level_of(4));
  EXPECT_EQ(data.labels[1][1], grid.level_of(128));
  EXPECT_DOUBLE_EQ(data.inputs(0, 1), 0.25);
}

TEST(ReplayBuffer, ResetEmpties) {
  ReplayBuffer buffer(2);
  Features f;
  buffer.add(f, {4, 4});
  buffer.reset();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(ReplayBuffer, DefaultCapacityMatchesPaper) {
  ReplayBuffer buffer;
  EXPECT_EQ(buffer.capacity(), 50u);
}

}  // namespace
}  // namespace odin::policy
