// Tests for feature extraction, the MLP OU policy and the replay buffer.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "policy/buffer.hpp"
#include "policy/features.hpp"
#include "policy/policy.hpp"

namespace odin::policy {
namespace {

dnn::LayerDescriptor layer_at(int index, double sparsity, int kernel) {
  dnn::LayerDescriptor l;
  l.index = index;
  l.weight_sparsity = sparsity;
  l.kernel = kernel;
  l.fan_in = 64;
  l.outputs = 64;
  return l;
}

TEST(Features, NormalizedIntoUnitRanges) {
  const Features f = extract_features(layer_at(10, 0.6, 3), 21, 1e4);
  EXPECT_NEAR(f.layer_position, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(f.sparsity, 0.6);
  EXPECT_NEAR(f.kernel, 3.0 / 7.0, 1e-12);
  EXPECT_NEAR(f.log_time, 0.5, 1e-9);  // log10(1e4)/8
}

TEST(Features, ClampsExtremes) {
  const Features early = extract_features(layer_at(0, 0.0, 1), 10, 0.1);
  EXPECT_DOUBLE_EQ(early.layer_position, 0.0);
  EXPECT_DOUBLE_EQ(early.log_time, 0.0);  // below t0 clamps
  const Features late = extract_features(layer_at(9, 1.0, 7), 10, 1e12);
  EXPECT_DOUBLE_EQ(late.layer_position, 1.0);
  EXPECT_DOUBLE_EQ(late.log_time, 1.0);
  EXPECT_DOUBLE_EQ(late.kernel, 1.0);
}

TEST(Features, SingleLayerNetworkPositionIsZero) {
  const Features f = extract_features(layer_at(0, 0.5, 3), 1, 1.0);
  EXPECT_DOUBLE_EQ(f.layer_position, 0.0);
}

TEST(OuPolicy, PredictsConfigsOnTheGrid) {
  const ou::OuLevelGrid grid(128);
  OuPolicy policy(grid);
  const Features f = extract_features(layer_at(3, 0.5, 3), 10, 100.0);
  const ou::OuConfig cfg = policy.predict(f);
  EXPECT_GE(grid.level_of(cfg.rows), 0);
  EXPECT_GE(grid.level_of(cfg.cols), 0);
}

TEST(OuPolicy, ProbabilitiesAreDistributions) {
  const ou::OuLevelGrid grid(64);
  OuPolicy policy(grid);
  const Features f = extract_features(layer_at(1, 0.3, 1), 5, 10.0);
  const auto probs = policy.predict_proba(f);
  ASSERT_EQ(probs.size(), 2u);
  for (const auto& head : probs) {
    ASSERT_EQ(head.size(), static_cast<std::size_t>(grid.levels()));
    double sum = 0.0;
    for (double p : head) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(OuPolicy, LearnsADeterministicMapping) {
  // Rule: high sparsity -> small OU (level 0), low sparsity -> big (level 4).
  const ou::OuLevelGrid grid(128);
  OuPolicy policy(grid);
  nn::Dataset data;
  common::Rng rng(8);
  for (int i = 0; i < 120; ++i) {
    const double sparsity = rng.uniform();
    Features f;
    f.layer_position = rng.uniform();
    f.sparsity = sparsity;
    f.kernel = 3.0 / 7.0;
    f.log_time = rng.uniform();
    const int level = sparsity > 0.5 ? 0 : 4;
    OuPolicy::append_example(data, f, grid,
                             grid.config_at(level, level));
  }
  nn::TrainOptions opt;
  opt.epochs = 150;
  const auto result = policy.train(data, opt);
  EXPECT_LT(result.final_loss, result.initial_loss);

  Features sparse;
  sparse.sparsity = 0.9;
  sparse.kernel = 3.0 / 7.0;
  sparse.layer_position = 0.5;
  sparse.log_time = 0.5;
  Features dense = sparse;
  dense.sparsity = 0.1;
  EXPECT_EQ(policy.predict(sparse), grid.config_at(0, 0));
  EXPECT_EQ(policy.predict(dense), grid.config_at(4, 4));
}

TEST(OuPolicy, ParameterCountIsTiny) {
  // The paper stresses low overhead: 4 -> 16 -> 2x6 is O(300) parameters.
  const ou::OuLevelGrid grid(128);
  OuPolicy policy(grid);
  EXPECT_LT(policy.parameter_count(), 1000u);
}

TEST(OuPolicy, TrainSanitizesNonFiniteFeaturesAndStaysFinite) {
  // Poisoned supervision: NaN/Inf feature values (e.g. from a corrupted
  // sensor path) must not leave the policy with non-finite weights.
  const ou::OuLevelGrid grid(128);
  OuPolicy policy(grid);
  nn::Dataset data;
  common::Rng rng(99);
  for (int i = 0; i < 40; ++i) {
    Features f;
    f.layer_position = rng.uniform();
    f.sparsity = rng.uniform();
    f.kernel = 3.0 / 7.0;
    f.log_time = rng.uniform();
    OuPolicy::append_example(data, f, grid, grid.config_at(2, 2));
  }
  // Corrupt a handful of rows with every flavour of non-finite value.
  data.inputs(3, 0) = std::numeric_limits<double>::quiet_NaN();
  data.inputs(7, 1) = std::numeric_limits<double>::infinity();
  data.inputs(11, 2) = -std::numeric_limits<double>::infinity();
  data.inputs(13, 3) = 1e300;  // finite but absurd: clamped to [0, 1]

  nn::TrainOptions opt;
  opt.epochs = 60;
  const auto result = policy.train(data, opt);
  EXPECT_TRUE(policy.weights_finite());
  EXPECT_GE(policy.sanitized_inputs(), 4u);
  EXPECT_TRUE(std::isfinite(result.final_loss));
  // Predictions remain well-formed after the poisoned training round.
  Features probe;
  probe.sparsity = 0.5;
  probe.kernel = 3.0 / 7.0;
  const ou::OuConfig cfg = policy.predict(probe);
  EXPECT_GE(grid.level_of(cfg.rows), 0);
  EXPECT_GE(grid.level_of(cfg.cols), 0);
}

TEST(OuPolicy, CleanDataIsNeverSanitized) {
  // Legitimate features are clamped to [0, 1] at extraction, so the
  // sanitizer must be a bitwise no-op on them (guards the vanilla loop's
  // determinism).
  const ou::OuLevelGrid grid(128);
  OuPolicy policy(grid);
  nn::Dataset data;
  common::Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    Features f;
    f.layer_position = rng.uniform();
    f.sparsity = rng.uniform();
    f.kernel = 1.0;
    f.log_time = rng.uniform();
    OuPolicy::append_example(data, f, grid, grid.config_at(1, 1));
  }
  nn::TrainOptions opt;
  opt.epochs = 30;
  policy.train(data, opt);
  EXPECT_EQ(policy.sanitized_inputs(), 0u);
  EXPECT_EQ(policy.nonfinite_recoveries(), 0u);
}

TEST(ReplayBuffer, FillsAndReportsFull) {
  ReplayBuffer buffer(3);
  const ou::OuLevelGrid grid(128);
  Features f;
  EXPECT_TRUE(buffer.empty());
  buffer.add(f, {4, 4});
  buffer.add(f, {8, 8});
  EXPECT_FALSE(buffer.full());
  buffer.add(f, {16, 16});
  EXPECT_TRUE(buffer.full());
  EXPECT_EQ(buffer.size(), 3u);
  // Overflow is dropped.
  buffer.add(f, {32, 32});
  EXPECT_EQ(buffer.size(), 3u);
}

TEST(ReplayBuffer, DatasetRoundTripsLabels) {
  ReplayBuffer buffer(4);
  const ou::OuLevelGrid grid(128);
  Features f;
  f.sparsity = 0.25;
  buffer.add(f, {16, 8});
  buffer.add(f, {4, 128});
  const nn::Dataset data = buffer.to_dataset(grid);
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data.labels[0][0], grid.level_of(16));
  EXPECT_EQ(data.labels[1][0], grid.level_of(8));
  EXPECT_EQ(data.labels[0][1], grid.level_of(4));
  EXPECT_EQ(data.labels[1][1], grid.level_of(128));
  EXPECT_DOUBLE_EQ(data.inputs(0, 1), 0.25);
}

TEST(ReplayBuffer, ResetEmpties) {
  ReplayBuffer buffer(2);
  Features f;
  buffer.add(f, {4, 4});
  buffer.reset();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(ReplayBuffer, DefaultCapacityMatchesPaper) {
  ReplayBuffer buffer;
  EXPECT_EQ(buffer.capacity(), 50u);
}

TEST(ReplayBuffer, CountsSaturationDrops) {
  ReplayBuffer buffer(2);
  Features f;
  EXPECT_TRUE(buffer.add(f, {4, 4}));
  f.sparsity = 0.5;
  EXPECT_TRUE(buffer.add(f, {8, 8}));
  EXPECT_EQ(buffer.dropped(), 0u);
  f.sparsity = 0.75;
  EXPECT_FALSE(buffer.add(f, {16, 16}));
  EXPECT_FALSE(buffer.add(f, {32, 32}));
  EXPECT_EQ(buffer.dropped(), 2u);
  // Drops survive a retrain reset (cumulative observability).
  buffer.reset();
  EXPECT_EQ(buffer.dropped(), 2u);
}

TEST(ReplayBuffer, QuarantineRefusesPoisonedExamples) {
  ReplayBuffer buffer(4);
  Features poisoned;
  poisoned.log_time = 0.9;
  buffer.add(poisoned, {4, 4});
  buffer.quarantine_contents();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.quarantined(), 1u);
  // The identical (features, label) pair is refused from now on...
  EXPECT_FALSE(buffer.add(poisoned, {4, 4}));
  EXPECT_EQ(buffer.quarantine_hits(), 1u);
  // ...but the same features with a different label are fresh evidence.
  EXPECT_TRUE(buffer.add(poisoned, {8, 8}));

  // quarantine_batch covers the rollback path (batch already extracted).
  Features other;
  other.sparsity = 0.3;
  buffer.quarantine_batch({{other, {16, 16}}});
  EXPECT_EQ(buffer.quarantined(), 2u);
  EXPECT_FALSE(buffer.add(other, {16, 16}));
}

TEST(ReplayBuffer, RestoreReinstatesCheckpointedState) {
  ReplayBuffer original(3);
  Features f;
  f.kernel = 1.0;
  original.add(f, {4, 8});
  original.quarantine_contents();
  original.add(f, {8, 8});

  ReplayBuffer restored(3);
  restored.restore(original.entries(), original.quarantined_entries(),
                   original.dropped(), original.quarantine_hits());
  EXPECT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored.quarantined(), 1u);
  EXPECT_TRUE(restored.entries() == original.entries());
  // The restored quarantine keeps refusing the poisoned pair.
  EXPECT_FALSE(restored.add(f, {4, 8}));
}

}  // namespace
}  // namespace odin::policy
