// Fleet-scale sharded serving (DESIGN.md §16): NoC-/wear-aware tenant
// placement over the mesh, per-shard serving loops with placement-derived
// service models, and the v5 checkpoint surface. The two regression pins
// the whole subsystem hangs off: a single-shard fleet is bitwise identical
// to serve_with_odin, and a mid-campaign multi-shard checkpoint/resume is
// bitwise identical to an uninterrupted fleet run.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/fleet.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

/// tiny_model scaled by a channel multiplier, so placements see tenants of
/// genuinely different crossbar footprints.
dnn::DnnModel scaled_model(const std::string& name, int scale) {
  dnn::DnnModel model = testing::tiny_model(name);
  for (dnn::LayerDescriptor& l : model.layers) {
    l.in_channels *= scale;
    l.out_channels *= scale;
    l.fan_in *= scale;
    l.outputs *= scale;
  }
  return model;
}

ou::MappedModel scaled_mapped(const std::string& name, int scale,
                              std::uint64_t seed) {
  return ou::MappedModel(dnn::prune_model(scaled_model(name, scale), seed),
                         128);
}

struct Fixture {
  ou::MappedModel tenant_a = testing::tiny_mapped(128, 31);
  ou::MappedModel tenant_b = testing::tiny_mapped(128, 32);
  ou::MappedModel tenant_c = testing::tiny_mapped(128, 33);
  ou::MappedModel tenant_d = testing::tiny_mapped(128, 34);
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};

  std::vector<const ou::MappedModel*> tenants() const {
    return {&tenant_a, &tenant_b, &tenant_c, &tenant_d};
  }
  policy::OuPolicy policy() const {
    return policy::OuPolicy(ou::OuLevelGrid(128));
  }
  /// Queueing scenario (same shape as the batching tests): inflated
  /// per-eval service cost, deep kBlock queue, untrippable breaker, an SLO
  /// so slack percentiles are meaningful.
  FleetConfig fleet(int shards) const {
    FleetConfig cfg;
    cfg.shards = shards;
    cfg.serving.horizon =
        HorizonConfig{.t_start_s = 1.0, .t_end_s = 1e8, .runs = 120};
    cfg.serving.segments = 8;
    cfg.serving.resilience.enabled = true;
    cfg.serving.resilience.queue_capacity = 1'000;
    cfg.serving.resilience.shed = ShedPolicy::kBlock;
    cfg.serving.resilience.search_eval_cost_s = 0.5;
    cfg.serving.resilience.breaker = {.failure_threshold = 1'000'000};
    cfg.serving.resilience.default_slo_s = 1e7;
    return cfg;
  }
};

void expect_bitwise_equal(const ServingResult& a, const ServingResult& b) {
  EXPECT_EQ(a.total().energy_j, b.total().energy_j);
  EXPECT_EQ(a.total().latency_s, b.total().latency_s);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.policy_updates, b.policy_updates);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    const TenantStats& x = a.tenants[i];
    const TenantStats& y = b.tenants[i];
    EXPECT_EQ(x.runs, y.runs) << "tenant " << i;
    EXPECT_EQ(x.inference.energy_j, y.inference.energy_j) << "tenant " << i;
    EXPECT_EQ(x.inference.latency_s, y.inference.latency_s) << "tenant " << i;
    EXPECT_EQ(x.reprogram.energy_j, y.reprogram.energy_j) << "tenant " << i;
    EXPECT_EQ(x.reprogram.latency_s, y.reprogram.latency_s) << "tenant " << i;
    EXPECT_EQ(x.service_s, y.service_s) << "tenant " << i;
    EXPECT_EQ(x.pipelined_runs, y.pipelined_runs) << "tenant " << i;
    EXPECT_EQ(x.sojourn_s, y.sojourn_s) << "tenant " << i;  // bitwise
  }
}

// --- shards=1 regression pin -----------------------------------------------

TEST(Fleet, SingleShardIsBitwiseIdenticalToServeWithOdin) {
  Fixture fx;
  const FleetConfig cfg = fx.fleet(1);
  const FleetResult fleet = serve_fleet(fx.tenants(), fx.nonideal, fx.cost,
                                        fx.policy(), cfg);
  const ServingResult direct = serve_with_odin(
      fx.tenants(), fx.nonideal, fx.cost, fx.policy(), cfg.serving);
  ASSERT_EQ(fleet.shards.size(), 1u);
  // The single-shard path must not inject service models or scale the
  // horizon — the ServingConfig passes through untouched.
  expect_bitwise_equal(fleet.shards[0], direct);
  EXPECT_EQ(fleet.shards[0].total_pipelined_runs(), 0);
  EXPECT_EQ(fleet.total_runs(), direct.total_runs());
}

// --- placement properties ---------------------------------------------------

TEST(Fleet, PlacementInvariantsAndDeterminism) {
  Fixture fx;
  const FleetConfig cfg = fx.fleet(9);
  const auto tenants = fx.tenants();
  const FleetPlacement p = place_fleet(tenants, fx.cost, cfg);
  ASSERT_EQ(p.shards, 9);
  ASSERT_EQ(p.shard_pes.size(), 9u);
  // The shard blocks tile the whole mesh exactly once.
  std::vector<int> seen(static_cast<std::size_t>(cfg.pim.pes), 0);
  for (const auto& pes : p.shard_pes) {
    EXPECT_FALSE(pes.empty());
    for (int pe : pes) {
      ASSERT_GE(pe, 0);
      ASSERT_LT(pe, cfg.pim.pes);
      ++seen[static_cast<std::size_t>(pe)];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  // Every tenant placed exactly once, on a real shard, with its footprint
  // accounted in exactly its shard's load.
  ASSERT_EQ(p.tenants.size(), tenants.size());
  std::vector<std::int64_t> load(9, 0);
  for (std::size_t t = 0; t < p.tenants.size(); ++t) {
    EXPECT_EQ(p.tenants[t].tenant, static_cast<int>(t));
    ASSERT_GE(p.tenants[t].shard, 0);
    ASSERT_LT(p.tenants[t].shard, 9);
    EXPECT_GT(p.tenants[t].crossbars, 0);
    EXPECT_GE(p.tenants[t].pes_spanned, 1);
    EXPECT_GT(p.tenants[t].pipeline_overlap, 0.0);
    EXPECT_LE(p.tenants[t].pipeline_overlap, 1.0);
    load[static_cast<std::size_t>(p.tenants[t].shard)] +=
        p.tenants[t].crossbars;
  }
  ASSERT_EQ(p.shard_load.size(), 9u);
  for (std::size_t k = 0; k < 9; ++k) EXPECT_EQ(p.shard_load[k], load[k]);
  EXPECT_GE(p.load_imbalance, 1.0);
  // Pure function: a second evaluation reproduces the placement exactly.
  const FleetPlacement q = place_fleet(tenants, fx.cost, cfg);
  ASSERT_EQ(q.tenants.size(), p.tenants.size());
  for (std::size_t t = 0; t < p.tenants.size(); ++t) {
    EXPECT_EQ(q.tenants[t].shard, p.tenants[t].shard);
    EXPECT_EQ(q.tenants[t].noc_per_inference.latency_s,
              p.tenants[t].noc_per_inference.latency_s);
    EXPECT_EQ(q.tenants[t].pipeline_overlap, p.tenants[t].pipeline_overlap);
  }
  EXPECT_EQ(q.objective, p.objective);
}

TEST(Fleet, NocAwarePlacementBalancesUnevenTenantsBetterThanOblivious) {
  // Two big tenants at indices 0 and 2 collide on shard 0 under the
  // oblivious round-robin (t % 2); the aware placement splits them.
  std::vector<ou::MappedModel> models;
  models.push_back(scaled_mapped("big0", 4, 41));
  models.push_back(scaled_mapped("small1", 1, 42));
  models.push_back(scaled_mapped("big2", 4, 43));
  models.push_back(scaled_mapped("small3", 1, 44));
  std::vector<const ou::MappedModel*> tenants;
  for (const auto& m : models) tenants.push_back(&m);
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};

  FleetConfig aware;
  aware.shards = 2;
  FleetConfig oblivious = aware;
  oblivious.noc_aware = false;

  const FleetPlacement pa = place_fleet(tenants, cost, aware);
  const FleetPlacement po = place_fleet(tenants, cost, oblivious);
  EXPECT_EQ(po.tenants[0].shard, po.tenants[2].shard);  // the collision
  EXPECT_NE(pa.tenants[0].shard, pa.tenants[2].shard);  // resolved
  EXPECT_LT(pa.load_imbalance, po.load_imbalance);
}

TEST(Fleet, WearAwarePlacementAvoidsWornShard) {
  Fixture fx;
  FleetConfig cfg = fx.fleet(4);
  // Shard 0's device has burned far past its lifetime budget; the others
  // are fresh.
  reram::FaultScheduleParams worn;
  worn.endurance.characteristic_cycles = 10.0;
  worn.endurance.shape = 1.8;
  reram::FaultInjector hot(worn, 7);
  for (int i = 0; i < 8; ++i) hot.program_campaign();
  EXPECT_GT(hot.wear_fraction(), 1.0);
  reram::FaultInjector fresh1(worn, 8), fresh2(worn, 9), fresh3(worn, 10);
  const std::vector<const reram::FaultInjector*> faults = {
      &hot, &fresh1, &fresh2, &fresh3};

  const FleetPlacement p =
      place_fleet(fx.tenants(), fx.cost, cfg, faults);
  bool any_displaced = false;
  for (const TenantPlacement& t : p.tenants) {
    EXPECT_NE(t.shard, 0) << "tenant " << t.tenant << " on the worn shard";
    any_displaced = any_displaced || t.wear_displaced;
  }
  EXPECT_TRUE(any_displaced);

  // Wear-blind placement is happy to use shard 0.
  cfg.wear_aware = false;
  const FleetPlacement blind =
      place_fleet(fx.tenants(), fx.cost, cfg, faults);
  bool uses_worn = false;
  for (const TenantPlacement& t : blind.tenants)
    uses_worn = uses_worn || t.shard == 0;
  EXPECT_TRUE(uses_worn);
}

// --- service-model charging -------------------------------------------------

TEST(Fleet, ServiceModelsChargeNocAndCreditPipelining) {
  Fixture fx;
  // Tenants big enough to spill across PEs of their shard block (a 9-PE
  // block at crossbar 128 holds 3456 slots; scale 6 needs ~900), so the
  // inter-layer pipeline has real stages.
  std::vector<ou::MappedModel> models;
  models.push_back(scaled_mapped("wide0", 6, 51));
  models.push_back(scaled_mapped("wide1", 6, 52));
  models.push_back(scaled_mapped("wide2", 6, 53));
  models.push_back(scaled_mapped("wide3", 6, 54));
  std::vector<const ou::MappedModel*> tenants;
  for (const auto& m : models) tenants.push_back(&m);

  const FleetConfig cfg = fx.fleet(4);
  const FleetPlacement placed = place_fleet(tenants, fx.cost, cfg);
  bool any_overlap = false;
  for (const TenantPlacement& t : placed.tenants) {
    EXPECT_GT(t.noc_per_inference.latency_s, 0.0);
    any_overlap = any_overlap || t.pipeline_overlap < 1.0;
  }
  EXPECT_TRUE(any_overlap);

  const FleetResult fleet =
      serve_fleet(tenants, fx.nonideal, fx.cost, fx.policy(), cfg);
  ASSERT_EQ(fleet.shards.size(), 4u);
  // Every tenant spans several PEs of its shard block, so pipelining is in
  // force and queued (back-to-back) serves ran at the overlapped rate.
  int pipelined = 0, served_shards = 0;
  for (const ServingResult& s : fleet.shards) {
    pipelined += s.total_pipelined_runs();
    if (s.total_runs() > 0) {
      ++served_shards;
      EXPECT_GT(s.total_service_s(), 0.0);
    }
  }
  EXPECT_GT(served_shards, 1);
  EXPECT_GT(pipelined, 0);
  EXPECT_EQ(fleet.total_runs(), 120);
  EXPECT_GT(fleet.makespan_s(), 0.0);
  EXPECT_GT(fleet.aggregate_images_per_s(), 0.0);
  EXPECT_GT(fleet.edp_per_request(), 0.0);
  // Sharding the same traffic over 4 devices beats the single device on
  // aggregate throughput.
  const FleetResult single =
      serve_fleet(tenants, fx.nonideal, fx.cost, fx.policy(), fx.fleet(1));
  EXPECT_GT(fleet.aggregate_images_per_s(),
            single.aggregate_images_per_s());
}

// --- multi-shard checkpoint/resume ------------------------------------------

TEST(Fleet, MultiShardCheckpointResumeIsBitwise) {
  Fixture fx;
  const FleetConfig cfg = fx.fleet(2);
  const FleetResult uninterrupted = serve_fleet(
      fx.tenants(), fx.nonideal, fx.cost, fx.policy(), cfg);

  const std::string base = ::testing::TempDir() + "odin_fleet_ckpt";
  auto cleanup = [&] {
    for (int k = 0; k < 2; ++k) {
      const std::string shard_base = base + ".shard" + std::to_string(k);
      std::remove((shard_base + ".a").c_str());
      std::remove((shard_base + ".b").c_str());
    }
  };
  cleanup();
  FleetConfig crashed = cfg;
  crashed.serving.checkpoint.base_path = base;
  crashed.serving.checkpoint.every_runs = 10;
  crashed.serving.max_runs = 25;  // every shard dies mid-campaign
  const FleetResult partial = serve_fleet(fx.tenants(), fx.nonideal, fx.cost,
                                          fx.policy(), crashed);
  EXPECT_LT(partial.total_runs(), uninterrupted.total_runs());

  // The shard checkpoints carry the v5 fleet surface.
  const auto ckpt = load_latest_checkpoint(base + ".shard0");
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_EQ(ckpt->fleet_shards, 2);
  EXPECT_EQ(ckpt->fleet_shard_index, 0);
  EXPECT_TRUE(ckpt->has_service_models);
  EXPECT_FALSE(ckpt->service_models.empty());

  FleetConfig resume_cfg = cfg;
  resume_cfg.serving.checkpoint.base_path = base;
  resume_cfg.serving.checkpoint.every_runs = 10;
  const auto resumed = resume_fleet(fx.tenants(), fx.nonideal, fx.cost,
                                    fx.policy(), resume_cfg);
  ASSERT_TRUE(resumed.has_value());
  ASSERT_EQ(resumed->shards.size(), uninterrupted.shards.size());
  for (std::size_t k = 0; k < resumed->shards.size(); ++k) {
    if (uninterrupted.shards[k].total_runs() > 0) {
      EXPECT_TRUE(resumed->shards[k].resumed) << "shard " << k;
    }
    expect_bitwise_equal(resumed->shards[k], uninterrupted.shards[k]);
  }
  EXPECT_EQ(resumed->total_runs(), uninterrupted.total_runs());
  EXPECT_EQ(resumed->edp_per_request(), uninterrupted.edp_per_request());

  // A shard checkpoint refuses a different fleet geometry: resuming the
  // same files as a 3-shard fleet must fail, not silently mix state.
  FleetConfig wrong = resume_cfg;
  wrong.shards = 3;
  EXPECT_FALSE(resume_fleet(fx.tenants(), fx.nonideal, fx.cost, fx.policy(),
                            wrong)
                   .has_value());
  cleanup();
}

}  // namespace
}  // namespace odin::core
