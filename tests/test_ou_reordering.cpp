// Tests for the offline row-reordering optimization.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ou/mapper.hpp"
#include "ou/reordering.hpp"

namespace odin::ou {
namespace {

dnn::WeightPattern scattered_pattern(int rows, int cols, double density,
                                     std::uint64_t seed) {
  // Rows alternate dead / dense, interleaved — the worst case for block
  // skipping, the best case for reordering.
  common::Rng rng(seed);
  dnn::WeightPattern p(rows, cols);
  for (int r = 0; r < rows; ++r) {
    if (r % 2 == 1) continue;  // every odd row dead
    for (int c = 0; c < cols; ++c)
      if (rng.bernoulli(density)) p.set(r, c);
  }
  return p;
}

TEST(Reordering, ProducesValidPermutations) {
  const auto p = scattered_pattern(64, 64, 0.6, 3);
  const RowOrder sim = similarity_row_order(p);
  const RowOrder den = density_row_order(p);
  EXPECT_TRUE(is_permutation(sim, 64));
  EXPECT_TRUE(is_permutation(den, 64));
}

TEST(Reordering, PreservesNonzeroCount) {
  const auto p = scattered_pattern(48, 32, 0.5, 7);
  const auto reordered = apply_row_order(p, similarity_row_order(p));
  EXPECT_EQ(reordered.nonzeros(), p.nonzeros());
  EXPECT_EQ(reordered.rows(), p.rows());
  EXPECT_EQ(reordered.cols(), p.cols());
}

TEST(Reordering, ClustersDeadRowsFirst) {
  const auto p = scattered_pattern(32, 32, 0.8, 11);
  const auto reordered = apply_row_order(p, similarity_row_order(p));
  // The 16 dead rows must now be the leading rows.
  for (int r = 0; r < 16; ++r)
    EXPECT_FALSE(reordered.block_live(r, 0, 1, 32)) << r;
  for (int r = 16; r < 32; ++r)
    EXPECT_TRUE(reordered.block_live(r, 0, 1, 32)) << r;
}

TEST(Reordering, ImprovesOuSkippingOnInterleavedPatterns) {
  dnn::LayerDescriptor layer;
  layer.fan_in = 128;
  layer.outputs = 128;
  layer.spatial_positions = 1;
  const auto p = scattered_pattern(128, 128, 0.7, 13);
  const auto reordered = apply_row_order(p, similarity_row_order(p));
  const LayerMapping before(layer, p, 128);
  const LayerMapping after(layer, reordered, 128);
  // Interleaved dead rows defeat 8-row blocks entirely; clustering halves
  // the live blocks.
  const OuConfig cfg{8, 16};
  EXPECT_LT(after.counts(cfg).live_blocks, before.counts(cfg).live_blocks);
  EXPECT_LE(after.counts(cfg).live_blocks,
            before.counts(cfg).live_blocks / 2 + 1);
}

TEST(Reordering, NeverHurtsRowGranularSkipping) {
  // At R = 1 every dead row is already skipped; reordering cannot change
  // the live count.
  dnn::LayerDescriptor layer;
  layer.fan_in = 64;
  layer.outputs = 64;
  layer.spatial_positions = 1;
  const auto p = scattered_pattern(64, 64, 0.5, 17);
  const auto reordered = apply_row_order(p, similarity_row_order(p));
  const LayerMapping before(layer, p, 64);
  const LayerMapping after(layer, reordered, 64);
  EXPECT_EQ(after.counts({1, 64}).live_blocks,
            before.counts({1, 64}).live_blocks);
}

TEST(Reordering, PermutationStorageBits) {
  EXPECT_EQ(permutation_storage_bits(128), 128 * 7);
  EXPECT_EQ(permutation_storage_bits(1), 1);
  EXPECT_EQ(permutation_storage_bits(4608), 4608 * 13);
}

TEST(Reordering, IsPermutationRejectsBadInputs) {
  EXPECT_FALSE(is_permutation(std::vector<int>{0, 0, 1}, 3));
  EXPECT_FALSE(is_permutation(std::vector<int>{0, 1}, 3));
  EXPECT_FALSE(is_permutation(std::vector<int>{0, 1, 3}, 3));
  EXPECT_TRUE(is_permutation(std::vector<int>{2, 0, 1}, 3));
}

}  // namespace
}  // namespace odin::ou
