// Serving-resilience layer: per-request deadline budgets, admission control
// with load shedding, per-tenant circuit breakers, the hung-work watchdog,
// and checkpoint/resume of all of it (core/resilience.hpp, DESIGN.md §13).
//
// The scenario tests steer the deterministic serving walk with quantities
// measured from the fixture itself (plain inference latency, full-reprogram
// latency) so the SLO thresholds track the cost model instead of hard-coded
// seconds. One empirical anchor they rely on: a drift burst of [3s, 11s]
// x 1e9 over the 120-run log-spaced horizon makes segment-0 runs 8..15
// reprogram on every run (the storm), while a fresh programming pass stays
// feasible — the burst multiplies elapsed-since-programming, not the
// post-reprogram reference point, so the campaigns are never "unrecoverable".
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/checkpoint.hpp"
#include "core/serving.hpp"
#include "reram/fault_injection.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

struct Fixture {
  ou::MappedModel tenant_a = testing::tiny_mapped(128, 21);
  ou::MappedModel tenant_b = testing::tiny_mapped(128, 22);
  ou::MappedModel tenant_c = testing::tiny_mapped(128, 23);
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};

  std::vector<const ou::MappedModel*> tenants() const {
    return {&tenant_a, &tenant_b, &tenant_c};
  }
  ServingConfig config() const {
    ServingConfig cfg;
    cfg.horizon = HorizonConfig{.t_start_s = 1.0, .t_end_s = 1e8,
                                .runs = 120};
    cfg.segments = 6;
    return cfg;
  }
  policy::OuPolicy policy() const {
    return policy::OuPolicy(ou::OuLevelGrid(128));
  }
};

/// Latency scales of the fixture, measured instead of hard-coded so the
/// SLO thresholds below survive cost-model retuning.
struct Costs {
  double inference_s = 0.0;  ///< one plain full-service inference
  double reprogram_s = 0.0;  ///< one whole-model write-verify campaign
};

Costs measure_costs(const Fixture& fx) {
  OdinController ctl(fx.tenant_a, fx.nonideal, fx.cost, fx.policy(), {});
  const RunResult run = ctl.run_inference(1.0);
  return {run.inference.latency_s, ctl.full_reprogram_cost().latency_s};
}

std::vector<double> pooled_sojourns(const ServingResult& r) {
  std::vector<double> all;
  for (const TenantStats& t : r.tenants)
    all.insert(all.end(), t.sojourn_s.begin(), t.sojourn_s.end());
  return all;
}

/// A breaker config that can never trip (the 64-bit window cannot hold
/// threshold failures), for tests that isolate the deadline/queue paths.
BreakerConfig never_trips() {
  BreakerConfig b;
  b.failure_threshold = 1'000'000;
  return b;
}

// --- CircuitBreaker unit tests (pure state machine, no serving loop) ---

TEST(CircuitBreaker, OpensAfterThresholdFailuresAndProbesAfterHold) {
  CircuitBreaker b({.window = 4, .failure_threshold = 2, .hold_runs = 3});
  EXPECT_TRUE(b.allow());
  b.record(false);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  b.record(false);  // second failure in the window trips it
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.opens(), 1);
  // hold_runs = 3: two denied runs, then the third is the probe.
  EXPECT_FALSE(b.allow());
  EXPECT_FALSE(b.allow());
  EXPECT_TRUE(b.allow());
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(b.probes(), 1);
  b.record(true);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.closes(), 1);
  // Recovery cleared the window: one fresh failure must not re-trip.
  b.record(false);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, FailedProbeBacksOffExponentiallyWithCap) {
  CircuitBreaker b({.window = 4, .failure_threshold = 1, .hold_runs = 2,
                    .backoff_factor = 2.0, .hold_max_runs = 5});
  auto denied_before_probe = [&b] {
    int denied = 0;
    while (!b.allow()) ++denied;
    return denied;
  };
  b.record(false);  // trip (threshold 1)
  EXPECT_EQ(denied_before_probe(), 1);  // hold 2 = 1 denied + probe
  b.record(false);                      // probe fails: hold 2 -> 4
  EXPECT_EQ(b.reopens(), 1);
  EXPECT_EQ(denied_before_probe(), 3);
  b.record(false);  // hold 4 -> 8, capped at 5
  EXPECT_EQ(denied_before_probe(), 4);
  b.record(true);  // recovery resets the backoff to the base hold
  EXPECT_EQ(b.closes(), 1);
  b.record(false);
  EXPECT_EQ(denied_before_probe(), 1);
  EXPECT_EQ(b.opens(), 2);
}

TEST(CircuitBreaker, SnapshotRestoreRoundTripsMidEpisode) {
  CircuitBreaker a({.window = 8, .failure_threshold = 3, .hold_runs = 4});
  a.record(true);
  a.record(false);
  a.record(false);
  a.record(false);  // open
  EXPECT_FALSE(a.allow());
  const CircuitBreaker::Snapshot snap = a.snapshot();

  CircuitBreaker b({.window = 8, .failure_threshold = 3, .hold_runs = 4});
  b.restore(snap);
  // Both continue identically from the middle of the hold.
  for (int i = 0; i < 6; ++i) EXPECT_EQ(a.allow(), b.allow());
  a.record(true);
  b.record(true);
  EXPECT_EQ(a.state(), b.state());
  EXPECT_EQ(a.closes(), b.closes());
}

TEST(Percentile, NearestRankSemantics) {
  EXPECT_EQ(percentile({}, 99.0), 0.0);
  EXPECT_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.0);
  EXPECT_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 100.0), 4.0);
  EXPECT_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 0.0), 1.0);
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_EQ(percentile(v, 99.0), 99.0);
  EXPECT_EQ(percentile(v, 50.0), 50.0);
}

// --- Serving-loop scenario tests ---

TEST(ServingResilience, EnabledWithoutSloServesEveryArrivalOnce) {
  Fixture fx;
  ServingConfig cfg = fx.config();
  cfg.resilience.enabled = true;  // default SLO = infinity: no deadlines
  const auto result = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                      fx.policy(), cfg);
  EXPECT_EQ(result.total_runs(), 120);
  for (const TenantStats& t : result.tenants) {
    EXPECT_EQ(static_cast<int>(t.sojourn_s.size()), t.runs);
    EXPECT_EQ(t.slo_s, 0.0);  // no SLO in force
    EXPECT_GT(t.sojourn_percentile(50.0), 0.0);
  }
  EXPECT_EQ(result.total_deadline_misses(), 0);
  EXPECT_EQ(result.total_shed_runs(), 0);
  EXPECT_EQ(result.total_breaker_opens(), 0);
  EXPECT_EQ(result.total_watchdog_stalls(), 0);
}

TEST(ServingResilience, DeadlineBoundsTailLatencyUnderDriftBurst) {
  // The acceptance scenario: a drift burst makes the unbounded controller
  // reprogram on every storm run and grind through the full K-step search,
  // while the deadline arm truncates each search at best-so-far and defers
  // the campaigns — p99 sojourn must come out >= 10x tighter.
  Fixture fx;
  const Costs costs = measure_costs(fx);
  ASSERT_LT(costs.inference_s, 0.5 * costs.reprogram_s);

  ServingConfig cfg = fx.config();
  cfg.odin.search_steps = 6;  // deep search: the work the deadline bounds
  cfg.resilience.enabled = true;
  cfg.resilience.queue_capacity = 1'000;  // isolate the deadline effect
  cfg.resilience.shed = ShedPolicy::kBlock;
  cfg.resilience.breaker = never_trips();
  cfg.resilience.search_eval_cost_s = 5e-3;

  reram::FaultScheduleParams storm;
  storm.bursts = {{3.0, 8.0, 1e9}};

  ServingConfig bounded = cfg;
  bounded.resilience.default_slo_s = 0.5 * costs.reprogram_s;
  reram::FaultInjector faults_bounded(storm, 0x5eed);
  const auto with_deadline =
      serve_with_odin(fx.tenants(), fx.nonideal, fx.cost, fx.policy(),
                      bounded, &faults_bounded);

  reram::FaultInjector faults_unbounded(storm, 0x5eed);
  const auto unbounded =
      serve_with_odin(fx.tenants(), fx.nonideal, fx.cost, fx.policy(), cfg,
                      &faults_unbounded);

  EXPECT_EQ(with_deadline.total_runs(), 120);
  EXPECT_EQ(unbounded.total_runs(), 120);
  // The storm reprograms in the unbounded arm and defers in the deadline
  // arm (the SLO budget cannot absorb a campaign's latency).
  int unbounded_reprograms = 0;
  for (const TenantStats& t : unbounded.tenants)
    unbounded_reprograms += t.reprograms;
  EXPECT_GE(unbounded_reprograms, 4);
  EXPECT_EQ(unbounded.total_deferred_reprograms(), 0);
  int bounded_reprograms = 0;
  for (const TenantStats& t : with_deadline.tenants)
    bounded_reprograms += t.reprograms;
  EXPECT_EQ(bounded_reprograms, 0);
  EXPECT_GE(with_deadline.total_deferred_reprograms(), 4);
  EXPECT_GE(with_deadline.total_searches_truncated(), 100);
  EXPECT_EQ(unbounded.total_searches_truncated(), 0);

  const double p99_bounded =
      percentile(pooled_sojourns(with_deadline), 99.0);
  const double p99_unbounded = percentile(pooled_sojourns(unbounded), 99.0);
  ASSERT_GT(p99_bounded, 0.0);
  EXPECT_GE(p99_unbounded, 10.0 * p99_bounded)
      << "p99 unbounded=" << p99_unbounded << " bounded=" << p99_bounded;
}

TEST(ServingResilience, ShedPoliciesBoundQueueAndTailUnderOverload) {
  // Inflate per-run service (search evaluations charged at 0.5 s each)
  // far past the early-horizon inter-arrival gaps: the run queue backs up
  // and the shed policy decides who eats the backlog.
  Fixture fx;
  ServingConfig cfg = fx.config();
  cfg.resilience.enabled = true;  // SLO stays infinite: pure queue pressure
  cfg.resilience.queue_capacity = 2;
  cfg.resilience.search_eval_cost_s = 0.5;

  auto serve_with = [&](ShedPolicy shed) {
    ServingConfig arm = cfg;
    arm.resilience.shed = shed;
    return serve_with_odin(fx.tenants(), fx.nonideal, fx.cost, fx.policy(),
                           arm);
  };
  const auto block = serve_with(ShedPolicy::kBlock);
  const auto oldest = serve_with(ShedPolicy::kShedOldest);
  const auto newest = serve_with(ShedPolicy::kShedNewest);

  // Every arrival is served exactly once under every policy.
  for (const ServingResult* r : {&block, &oldest, &newest}) {
    EXPECT_EQ(r->total_runs(), 120);
    EXPECT_EQ(static_cast<int>(pooled_sojourns(*r).size()), 120);
  }
  // Blocking absorbs the overload as waiting time; shedding converts it
  // into degraded fallback serves.
  EXPECT_EQ(block.total_shed_runs(), 0);
  EXPECT_GT(oldest.total_shed_runs(), 0);
  EXPECT_GT(newest.total_shed_runs(), 0);
  const double worst_block = percentile(pooled_sojourns(block), 100.0);
  const double worst_oldest = percentile(pooled_sojourns(oldest), 100.0);
  const double worst_newest = percentile(pooled_sojourns(newest), 100.0);
  EXPECT_LT(worst_oldest, worst_block);
  EXPECT_LT(worst_newest, worst_block);
}

TEST(ServingResilience, BreakerIsolatesChronicallyFailingTenant) {
  // Tenant 0 gets an unmeetable SLO: every full serve misses, the breaker
  // opens, and the tenant is served by the degraded fallback. The other
  // tenants' energy-delay product must stay within 5% of a run where
  // tenant 0 is healthy.
  Fixture fx;
  ServingConfig cfg = fx.config();
  cfg.odin.buffer_capacity = 1'000'000;  // freeze the policy: arms compare
  cfg.resilience.enabled = true;
  cfg.resilience.breaker = {.window = 8, .failure_threshold = 4,
                            .hold_runs = 4};

  ServingConfig failing = cfg;
  failing.resilience.tenant_slo_s = {1e-9, 0.0, 0.0};
  const auto isolated = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                        fx.policy(), failing);
  const auto healthy = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                       fx.policy(), cfg);

  const TenantStats& bad = isolated.tenants[0];
  EXPECT_EQ(bad.slo_s, 1e-9);
  EXPECT_GE(bad.deadline_misses, 4);
  EXPECT_GE(bad.breaker_opens, 1);
  EXPECT_GE(bad.breaker_open_runs, 10);
  EXPECT_GE(bad.breaker_probes, 1);
  EXPECT_GE(bad.breaker_reopens, 1);  // probes keep missing the SLO
  EXPECT_EQ(bad.breaker_closes, 0);
  EXPECT_EQ(bad.runs, 40);  // still served every arrival (degraded)

  for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
    const TenantStats& t = isolated.tenants[i];
    EXPECT_EQ(t.breaker_opens, 0) << "tenant " << i;
    EXPECT_EQ(t.deadline_misses, 0) << "tenant " << i;
    EXPECT_EQ(t.shed_runs, 0) << "tenant " << i;
    const double edp = (t.inference + t.reprogram).edp();
    const double edp_healthy = (healthy.tenants[i].inference +
                                healthy.tenants[i].reprogram)
                                   .edp();
    EXPECT_NEAR(edp, edp_healthy, 0.05 * edp_healthy) << "tenant " << i;
  }
}

TEST(ServingResilience, BreakerRecoversThroughHalfOpenProbeAfterBurst) {
  // Transient failure: the drift-burst storm (segment-0 runs 8..15) makes
  // every full serve reprogram, overshooting an SLO sized to fit plain
  // inference but not a campaign. The breaker opens during the storm, its
  // first probe lands inside the burst and fails (backoff), and the second
  // probe lands after the burst, succeeds, and restores full service.
  Fixture fx;
  const Costs costs = measure_costs(fx);
  ASSERT_LT(costs.inference_s, 0.5 * costs.reprogram_s);

  ServingConfig cfg = fx.config();
  cfg.resilience.enabled = true;
  // A campaign fits the budget (no deferral) but blows the SLO. Only the
  // burst-hit tenant gets the tight SLO: late in the horizon the OTHER
  // tenants legitimately reprogram on natural drift, and those misses
  // would be theirs, not collateral from tenant 0.
  cfg.resilience.tenant_slo_s = {costs.reprogram_s, 0.0, 0.0};
  cfg.resilience.breaker = {.window = 8, .failure_threshold = 3,
                            .hold_runs = 2, .backoff_factor = 2.0,
                            .hold_max_runs = 64};

  reram::FaultScheduleParams storm;
  storm.bursts = {{3.0, 8.0, 1e9}};
  reram::FaultInjector faults(storm, 0x5eed);
  const auto result = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                      fx.policy(), cfg, &faults);

  const TenantStats& hit = result.tenants[0];  // segment 0 owns the burst
  EXPECT_GE(hit.deadline_misses, 3);
  EXPECT_EQ(hit.breaker_opens, 1);
  EXPECT_GE(hit.breaker_probes, 2);
  EXPECT_GE(hit.breaker_reopens, 1);  // the in-burst probe fails
  EXPECT_GE(hit.breaker_closes, 1);   // ...the post-burst probe recovers
  EXPECT_GE(hit.breaker_open_runs, 3);
  EXPECT_EQ(hit.runs, 40);
  EXPECT_EQ(hit.deferred_reprograms, 0);  // the budget fits the campaign
  // The burst never reaches the other tenants' segments.
  EXPECT_EQ(result.tenants[1].breaker_opens, 0);
  EXPECT_EQ(result.tenants[2].breaker_opens, 0);
  EXPECT_EQ(result.tenants[1].deadline_misses +
                result.tenants[2].deadline_misses,
            0);
}

TEST(ServingResilience, WatchdogCancelsHungRunAndMarksItShed) {
  // The hang hook makes one run spin (polling its CancellationToken) the
  // way a stuck worker would; the watchdog must cancel it within the
  // wall-time bound and the serving loop must shed it — not deadlock.
  Fixture fx;
  const long long stalls_before = common::ThreadPool::stall_count();
  ServingConfig cfg;
  cfg.horizon = HorizonConfig{.t_start_s = 1.0, .t_end_s = 1e6, .runs = 20};
  cfg.segments = 2;
  cfg.resilience.enabled = true;
  // Generous bound: under TSan a healthy run can take tens of ms, and a
  // spurious fire on a healthy run only adds a stall (assertions are >=).
  cfg.resilience.watchdog_bound_s = 0.5;
  cfg.resilience.hang_run_index = 2;
  const auto result =
      serve_with_odin({&fx.tenant_a, &fx.tenant_b}, fx.nonideal, fx.cost,
                      fx.policy(), cfg);

  EXPECT_EQ(result.total_runs(), 20);  // the hung run was still served
  EXPECT_GE(result.total_watchdog_stalls(), 1);
  EXPECT_GE(result.tenants[0].watchdog_stalls, 1);  // run 2 is segment 0
  EXPECT_GE(result.tenants[0].shed_runs, 1);
  EXPECT_EQ(static_cast<int>(result.tenants[0].sojourn_s.size()),
            result.tenants[0].runs);
  EXPECT_GE(common::ThreadPool::stall_count(), stalls_before + 1);
}

// --- Checkpoint/resume of the resilience state ---

void expect_same_tenant(const TenantStats& a, const TenantStats& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.reprograms, b.reprograms);
  EXPECT_EQ(a.mismatches, b.mismatches);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.degraded_runs, b.degraded_runs);
  EXPECT_EQ(a.slo_s, b.slo_s);
  EXPECT_EQ(a.shed_runs, b.shed_runs);
  EXPECT_EQ(a.breaker_open_runs, b.breaker_open_runs);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.deferred_reprograms, b.deferred_reprograms);
  EXPECT_EQ(a.deadline_stopped_retries, b.deadline_stopped_retries);
  EXPECT_EQ(a.searches_truncated, b.searches_truncated);
  EXPECT_EQ(a.breaker_opens, b.breaker_opens);
  EXPECT_EQ(a.breaker_reopens, b.breaker_reopens);
  EXPECT_EQ(a.breaker_probes, b.breaker_probes);
  EXPECT_EQ(a.breaker_closes, b.breaker_closes);
  EXPECT_EQ(a.watchdog_stalls, b.watchdog_stalls);
  EXPECT_EQ(a.sojourn_s, b.sojourn_s);  // bitwise, every sample
  EXPECT_EQ(a.inference.energy_j, b.inference.energy_j);
  EXPECT_EQ(a.inference.latency_s, b.inference.latency_s);
  EXPECT_EQ(a.reprogram.energy_j, b.reprogram.energy_j);
  EXPECT_EQ(a.reprogram.latency_s, b.reprogram.latency_s);
}

TEST(ServingResilience, CheckpointResumeRoundTripsResilienceStateBitwise) {
  // Crash mid-horizon with the queue backed up, breakers mid-episode and
  // sheds on the books; the resumed walk must reproduce the uninterrupted
  // walk bit for bit — sojourn samples, counters and energy totals alike.
  Fixture fx;
  ServingConfig cfg = fx.config();
  cfg.resilience.enabled = true;
  cfg.resilience.default_slo_s = 2e-3;        // every full serve misses...
  cfg.resilience.search_eval_cost_s = 0.5;    // ...and overloads the queue
  cfg.resilience.queue_capacity = 2;
  cfg.resilience.shed = ShedPolicy::kShedOldest;
  cfg.resilience.breaker = {.window = 4, .failure_threshold = 2,
                            .hold_runs = 2};

  const auto uninterrupted = serve_with_odin(
      fx.tenants(), fx.nonideal, fx.cost, fx.policy(), cfg);
  // Sanity: the scenario actually exercises the state being checkpointed.
  EXPECT_GT(uninterrupted.total_shed_runs(), 0);
  EXPECT_GT(uninterrupted.total_deadline_misses(), 0);
  EXPECT_GT(uninterrupted.total_breaker_opens(), 0);

  const std::string base = ::testing::TempDir() + "odin_resilience_ckpt";
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
  ServingConfig crashed = cfg;
  crashed.checkpoint.base_path = base;
  crashed.checkpoint.every_runs = 10;
  crashed.max_runs = 25;  // die inside segment 1
  const auto partial = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                       fx.policy(), crashed);
  EXPECT_LT(partial.total_runs(), 120);

  const auto ckpt = load_latest_checkpoint(base);
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_TRUE(ckpt->has_resilience);
  EXPECT_EQ(ckpt->shed_policy,
            static_cast<std::int32_t>(ShedPolicy::kShedOldest));
  EXPECT_EQ(ckpt->queue_capacity, 2u);
  EXPECT_EQ(ckpt->breakers.size(), 3u);
  EXPECT_EQ(ckpt->fallback_ous.size(), 3u);

  const auto resumed = resume_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                        *ckpt, cfg);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->label, uninterrupted.label);
  EXPECT_EQ(resumed->switches, uninterrupted.switches);
  EXPECT_EQ(resumed->policy_updates, uninterrupted.policy_updates);
  EXPECT_EQ(resumed->programming.energy_j,
            uninterrupted.programming.energy_j);
  EXPECT_EQ(resumed->programming.latency_s,
            uninterrupted.programming.latency_s);
  ASSERT_EQ(resumed->tenants.size(), uninterrupted.tenants.size());
  for (std::size_t i = 0; i < resumed->tenants.size(); ++i)
    expect_same_tenant(resumed->tenants[i], uninterrupted.tenants[i]);

  // The resilience fingerprint is validated: a checkpoint taken under a
  // different admission geometry (or without resilience) must be refused.
  ServingConfig other = cfg;
  other.resilience.queue_capacity = 3;
  EXPECT_FALSE(resume_with_odin(fx.tenants(), fx.nonideal, fx.cost, *ckpt,
                                other)
                   .has_value());
  other = cfg;
  other.resilience.shed = ShedPolicy::kShedNewest;
  EXPECT_FALSE(resume_with_odin(fx.tenants(), fx.nonideal, fx.cost, *ckpt,
                                other)
                   .has_value());
  other = cfg;
  other.resilience.enabled = false;
  EXPECT_FALSE(resume_with_odin(fx.tenants(), fx.nonideal, fx.cost, *ckpt,
                                other)
                   .has_value());
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
}

}  // namespace
}  // namespace odin::core
