// Guarded online policy updates under a drift-burst poisoning campaign
// (the ISSUE's acceptance scenario): a thermal burst inflates the apparent
// drift clock while the replay buffer is filling, so the retrain batch
// teaches the policy burst-era configurations. Unguarded Algorithm 1
// promotes that retrain unconditionally and serves the rest of the horizon
// from a poisoned policy; the guard either rejects the candidate at
// shadow-evaluation or rolls it back after its probation window, then
// quarantines the offending batch.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "reram/fault_injection.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

struct Arms {
  AggregateResult clean;      ///< fault-free, guard off
  AggregateResult unguarded;  ///< burst campaign, guard off
  AggregateResult guarded;    ///< burst campaign, guard on
};

OdinConfig base_config() {
  OdinConfig cfg;
  cfg.buffer_capacity = 10;
  cfg.update_options.epochs = 80;
  // The entropy gate is what turns a poisoned retrain into *persistent*
  // damage: a confidently-wrong policy executes its own predictions
  // without invoking the search, so mismatches are never detected, the
  // buffer never refills, and the loop cannot retrain its way back to
  // health. (Without the gate the very next buffer-full retrain heals the
  // poisoning, and both arms converge to the same EDP.) All three arms —
  // including the fault-free baseline — run with the same gate.
  cfg.entropy_gate = 0.3;
  return cfg;
}

reram::FaultScheduleParams burst_params() {
  reram::FaultScheduleParams p;
  // One intense, bounded thermal event. It spans a few runs of the
  // log-spaced horizon — long enough for the buffer to fill with poisoned
  // labels and trigger a retrain inside the burst, short enough that its
  // direct (guard-independent) reprogramming cost is small against the
  // whole horizon.
  p.bursts = {{1e4, 2e4, 3e2}};
  return p;
}

AggregateResult run_arm(const ou::MappedModel& tenant, bool with_faults,
                        bool with_guard, const HorizonConfig& horizon) {
  const ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                      ou::NonIdealityParams{}};
  const ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  OdinConfig cfg = base_config();
  cfg.guard.enabled = with_guard;
  reram::FaultInjector faults(burst_params(), 0x6a1d);
  OdinController controller(tenant, nonideal, cost,
                            policy::OuPolicy(ou::OuLevelGrid(128)), cfg,
                            with_faults ? &faults : nullptr);
  return simulate_odin(controller, horizon);
}

Arms run_campaign() {
  const auto tenant = testing::tiny_mapped();
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e8,
                              .runs = 160};
  Arms arms;
  arms.clean = run_arm(tenant, false, false, horizon);
  arms.unguarded = run_arm(tenant, true, false, horizon);
  arms.guarded = run_arm(tenant, true, true, horizon);
  return arms;
}

TEST(Guardrails, GuardedServingStaysNearFaultFreeWhileUnguardedRegresses) {
  const Arms arms = run_campaign();
  // The poisoned retrain must hurt the unguarded loop measurably...
  EXPECT_GT(arms.unguarded.total_edp(), arms.clean.total_edp() * 1.05)
      << "burst campaign did not measurably regress the unguarded loop";
  // ...while the guarded loop stays within 5% of the fault-free walk (the
  // ISSUE's acceptance threshold).
  EXPECT_LE(arms.guarded.total_edp(), arms.clean.total_edp() * 1.05)
      << "guarded EDP " << arms.guarded.total_edp() << " vs clean "
      << arms.clean.total_edp();
  EXPECT_LT(arms.guarded.total_edp(), arms.unguarded.total_edp());
}

TEST(Guardrails, GuardActuallyFiredAndQuarantinedTheBatch) {
  const Arms arms = run_campaign();
  // At least one poisoned update was caught (rejected at shadow evaluation
  // or reverted at probation end), and its batch went to quarantine.
  EXPECT_GE(arms.guarded.updates_rejected + arms.guarded.updates_rolled_back,
            1);
  EXPECT_GE(arms.guarded.buffer_quarantined, 1);
  // The unguarded loop promotes everything and never rolls back.
  EXPECT_EQ(arms.unguarded.updates_rejected, 0);
  EXPECT_EQ(arms.unguarded.updates_rolled_back, 0);
  EXPECT_EQ(arms.unguarded.updates_accepted, arms.unguarded.policy_updates);
}

TEST(Guardrails, GuardIsInertOnACleanHorizon) {
  // Without a poisoning campaign the guard should accept the same updates
  // the vanilla loop performs — EDP parity within noise, no rollbacks.
  const auto tenant = testing::tiny_mapped();
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e8,
                              .runs = 120};
  const auto vanilla = run_arm(tenant, false, false, horizon);
  const auto guarded = run_arm(tenant, false, true, horizon);
  EXPECT_EQ(guarded.updates_rolled_back, 0);
  EXPECT_LE(guarded.total_edp(), vanilla.total_edp() * 1.10);
  EXPECT_GE(guarded.updates_accepted, 1);
}

TEST(Guardrails, DisabledGuardKeepsVanillaCountersConsistent) {
  const auto tenant = testing::tiny_mapped();
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e8, .runs = 60};
  const auto vanilla = run_arm(tenant, false, false, horizon);
  EXPECT_EQ(vanilla.updates_accepted, vanilla.policy_updates);
  EXPECT_EQ(vanilla.updates_rejected, 0);
  EXPECT_EQ(vanilla.updates_rolled_back, 0);
}

}  // namespace
}  // namespace odin::core
