// Cluster-layer tests (DESIGN.md §18): single-mesh bitwise parity with the
// campaign engine, mesh-loss fault domains with failover evacuation vs
// unbounded loss with failover off, replica staleness (RPO) surfacing, the
// outage-during-storm overlap with byte-identical replay and mid-failover
// crash/resume through checkpoint payload v7, the wrong-cluster-geometry
// resume refusal (both directions: cluster frames refuse resume_campaign),
// the ClusterState codec, and the cluster scenario-file parser.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/binary_io.hpp"
#include "core/cluster.hpp"
#include "core/scenario.hpp"
#include "core/serving.hpp"

namespace odin::core {
namespace {

std::string temp_base(const std::string& tag) {
  return ::testing::TempDir() + "odin_cluster_" + tag;
}

void remove_slots(const std::string& base) {
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
}

/// A small cluster campaign with every knob pinned so tests never depend on
/// ODIN_MESHES / ODIN_REPLICATION_EPOCHS / ODIN_FAILOVER / ODIN_AUTOSCALE.
ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.campaign.scenario.seed = 11;
  cfg.campaign.scenario.tenants = 48;
  cfg.campaign.scenario.requests = 20'000;
  cfg.campaign.shards = 4;
  cfg.campaign.autoscale.enabled = 1;
  cfg.campaign.epochs = 12;
  cfg.meshes = 3;
  cfg.replication_epochs = 4;
  cfg.failover.enabled = 1;
  MeshOutage outage;
  outage.start_frac = 0.55;
  outage.duration_frac = 0.25;
  outage.mesh = 0;
  cfg.outages = {outage};
  return cfg;
}

TEST(Cluster, SingleMeshClusterMatchesCampaignBitwise) {
  ClusterConfig cfg = small_cluster();
  cfg.meshes = 1;
  cfg.outages.clear();
  cfg.mesh_outages = 0;  // no outage windows: pure parity check
  const ClusterResult one = run_cluster(cfg);
  const CampaignResult plain = run_campaign(cfg.campaign);
  EXPECT_EQ(one.meshes, 1);
  // The campaign block of a one-mesh cluster is the campaign engine's
  // output byte for byte — same arrivals, same pricing, same sketches.
  EXPECT_EQ(one.campaign.summary(), plain.summary());
  EXPECT_EQ(one.cluster.failovers, 0);
  EXPECT_EQ(one.cluster.outage_dropped, 0);
  EXPECT_EQ(one.cluster.replication_rounds, 0);  // nowhere to replicate
  EXPECT_EQ(one.victim_recovery(), 1.0);
}

TEST(Cluster, SummaryIsByteIdenticalAcrossRuns) {
  const ClusterConfig cfg = small_cluster();
  const ClusterResult a = run_cluster(cfg);
  const ClusterResult b = run_cluster(cfg);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.cluster.outages_fired, 1);
  EXPECT_GT(a.cluster.replication_rounds, 0);
}

TEST(Cluster, MeshOutageWithFailoverEvacuatesWithinRto) {
  const ClusterConfig cfg = small_cluster();
  const ClusterResult on = run_cluster(cfg);
  ClusterConfig off_cfg = cfg;
  off_cfg.failover.enabled = 0;
  const ClusterResult off = run_cluster(off_cfg);

  // The outage fired and failover actually evacuated tenants.
  ASSERT_EQ(on.cluster.outages_fired, 1);
  EXPECT_GT(on.cluster.failovers, 0);
  EXPECT_GT(on.cluster.bootstrap_campaigns, 0);
  EXPECT_GT(on.cluster.degraded_runs, 0);
  // Every evacuation reports a bounded, nonzero recovery time that is at
  // least the detection delay.
  EXPECT_GE(on.rto_mean_s(), cfg.failover.detection_s);
  EXPECT_GE(on.cluster.rto_max_s, on.rto_mean_s());
  // Replication moved real bytes over the inter-mesh link.
  EXPECT_GT(on.cluster.replication_bytes, 0.0);
  EXPECT_GT(on.cluster.replication_energy_j, 0.0);

  // With failover off nobody is evacuated: the dark mesh's arrivals are
  // dropped for the whole outage and recovery is strictly worse.
  EXPECT_EQ(off.cluster.failovers, 0);
  EXPECT_EQ(off.cluster.bootstrap_campaigns, 0);
  EXPECT_GT(off.cluster.outage_dropped, on.cluster.outage_dropped);
  EXPECT_GT(on.victim_recovery(), off.victim_recovery());
  // The acceptance bar the bench enforces at full scale holds here too.
  EXPECT_GE(on.victim_recovery(), 0.95);
  // Victim tenants are marked, and the drop/serve ledgers reconcile.
  std::int64_t victims = 0;
  for (std::uint8_t v : on.cluster.tenant_victim) victims += v;
  EXPECT_EQ(victims, on.cluster.failovers);
  EXPECT_GE(on.cluster.victim_offered, on.cluster.victim_served);
}

TEST(Cluster, StaleReplicaSurfacesRpoAndCounter) {
  // Replications land when epochs 3, 7, 11 close (R = 4, E = 12); the
  // outage at 0.55 h hits between rounds, so every victim that served
  // after the 0.33 h replication restores from a stale replica.
  const ClusterConfig cfg = small_cluster();
  const ClusterResult r = run_cluster(cfg);
  ASSERT_GT(r.cluster.failovers, 0);
  EXPECT_GT(r.cluster.restored_stale, 0);
  EXPECT_GT(r.cluster.lost_runs, 0);
  EXPECT_GT(r.cluster.rpo_max_s, 0.0);
  EXPECT_GE(r.cluster.rpo_max_s, r.rpo_mean_s());
  // The per-tenant counters mirror the cluster ledgers exactly — the
  // regression pin for the staleness edge.
  std::int64_t stale = 0, lost = 0, failovers = 0, dropped = 0;
  double rpo_max = 0.0, rto_max = 0.0;
  for (const TenantStats& t : r.campaign.tenants) {
    stale += t.restored_stale;
    lost += t.lost_runs;
    failovers += t.failovers;
    dropped += t.outage_dropped;
    rpo_max = std::max(rpo_max, t.rpo_s);
    rto_max = std::max(rto_max, t.rto_s);
  }
  EXPECT_EQ(stale, r.cluster.restored_stale);
  EXPECT_EQ(lost, r.cluster.lost_runs);
  EXPECT_EQ(failovers, r.cluster.failovers);
  EXPECT_EQ(dropped, r.cluster.outage_dropped);
  EXPECT_EQ(rpo_max, r.cluster.rpo_max_s);
  EXPECT_EQ(rto_max, r.cluster.rto_max_s);
  // A stale restore lost exactly the post-replication serves, never more
  // than the victim's total.
  for (const TenantStats& t : r.campaign.tenants) {
    EXPECT_LE(t.lost_runs, static_cast<long long>(t.runs));
    if (t.restored_stale > 0) EXPECT_GT(t.rpo_s, 0.0);
  }
}

TEST(Cluster, OutageDuringStormReplaysAndResumesByteIdentical) {
  const std::string base = temp_base("stormoutage");
  remove_slots(base);
  ClusterConfig cfg = small_cluster();
  // A wide storm spanning [0.45 h, 0.80 h] overlaps the outage window
  // [0.55 h, 0.80 h]: the mesh dies while the fleet is mid-storm.
  FaultStorm storm;
  storm.start_frac = 0.45;
  storm.duration_frac = 0.35;
  storm.drift_multiplier = 3.0;
  storm.center_pe = 7;
  storm.radius = 1;
  storm.campaigns = 4;
  cfg.campaign.scenario.storms = {storm};
  cfg.campaign.checkpoint.base_path = base;
  cfg.campaign.checkpoint.every_runs = 500;

  const ClusterResult full = run_cluster(cfg);
  EXPECT_EQ(full.campaign.state.storms_fired, 1);
  ASSERT_EQ(full.cluster.outages_fired, 1);
  // Same-seed replay of the overlap is byte-identical.
  EXPECT_EQ(run_cluster(cfg).summary(), full.summary());

  // Kill mid-failover: at 70% of the request budget the clock sits inside
  // both the storm and the outage window.
  ClusterConfig crash = cfg;
  crash.campaign.max_requests = cfg.campaign.scenario.requests * 7 / 10;
  const ClusterResult interrupted = run_cluster(crash);
  const double h = cfg.campaign.scenario.horizon_s;
  EXPECT_GT(interrupted.campaign.state.clock_s, 0.55 * h);
  EXPECT_LT(interrupted.campaign.state.clock_s, 0.80 * h);
  EXPECT_EQ(interrupted.campaign.state.storms_fired, 1);
  EXPECT_EQ(interrupted.cluster.outages_fired, 1);

  const auto resumed = resume_cluster(cfg);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_TRUE(resumed->campaign.resumed);
  // Bitwise: the resumed cluster reproduces the uninterrupted summary,
  // including the failover ledgers and every sketch-derived percentile.
  EXPECT_EQ(resumed->summary(), full.summary());
  remove_slots(base);
}

TEST(Cluster, ResumeRefusesWrongClusterGeometry) {
  const std::string base = temp_base("geometry");
  remove_slots(base);
  ClusterConfig cfg = small_cluster();
  cfg.campaign.checkpoint.base_path = base;
  cfg.campaign.checkpoint.every_runs = 500;
  cfg.campaign.max_requests = cfg.campaign.scenario.requests * 7 / 10;
  run_cluster(cfg);  // leaves a mid-campaign cluster checkpoint behind
  cfg.campaign.max_requests = 0;

  {
    ClusterConfig wrong = cfg;
    wrong.meshes = 2;
    EXPECT_FALSE(resume_cluster(wrong).has_value());
  }
  {
    ClusterConfig wrong = cfg;
    wrong.replication_epochs = 8;
    EXPECT_FALSE(resume_cluster(wrong).has_value());
  }
  {
    ClusterConfig wrong = cfg;
    wrong.failover.enabled = 0;
    EXPECT_FALSE(resume_cluster(wrong).has_value());
  }
  {
    ClusterConfig wrong = cfg;
    wrong.campaign.scenario.seed += 1;
    EXPECT_FALSE(resume_cluster(wrong).has_value());
  }
  // A cluster frame must never resume as a plain campaign: the campaign
  // fingerprint inside it describes the *global* shard layout and the
  // cluster ledgers would be silently dropped.
  EXPECT_FALSE(resume_campaign(cfg.campaign).has_value());
  // The unmodified geometry still resumes.
  EXPECT_TRUE(resume_cluster(cfg).has_value());
  remove_slots(base);
}

TEST(Cluster, ClusterStateCodecRoundTripsExactly) {
  const ClusterResult r = run_cluster(small_cluster());
  common::ByteWriter out;
  encode_cluster_state(r.cluster, out);
  common::ByteReader in(out.bytes());
  const auto decoded = decode_cluster_state(in);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->meshes, r.cluster.meshes);
  EXPECT_EQ(decoded->outages_fired, r.cluster.outages_fired);
  EXPECT_EQ(decoded->replication_rounds, r.cluster.replication_rounds);
  EXPECT_EQ(decoded->mesh_down, r.cluster.mesh_down);
  EXPECT_EQ(decoded->mesh_served, r.cluster.mesh_served);
  EXPECT_EQ(decoded->replica_runs, r.cluster.replica_runs);
  EXPECT_EQ(decoded->replica_time_s, r.cluster.replica_time_s);
  EXPECT_EQ(decoded->replica_mesh, r.cluster.replica_mesh);
  EXPECT_EQ(decoded->tenant_victim, r.cluster.tenant_victim);
  EXPECT_EQ(decoded->failovers, r.cluster.failovers);
  EXPECT_EQ(decoded->restored_stale, r.cluster.restored_stale);
  EXPECT_EQ(decoded->rpo_max_s, r.cluster.rpo_max_s);
  EXPECT_EQ(decoded->replication_bytes, r.cluster.replication_bytes);
  // Re-encoding reproduces the identical byte stream, so every field
  // (including the breaker snapshots) survived the round trip.
  common::ByteWriter again;
  encode_cluster_state(*decoded, again);
  EXPECT_EQ(out.bytes(), again.bytes());
  // Truncated prefixes are refused, never misparsed.
  for (std::size_t cut : {std::size_t{0}, std::size_t{7},
                          out.bytes().size() / 2, out.bytes().size() - 1}) {
    common::ByteReader short_in(std::string_view(out.bytes()).substr(0, cut));
    EXPECT_FALSE(decode_cluster_state(short_in).has_value()) << "cut=" << cut;
  }
}

TEST(Cluster, ParserAcceptsTheDocumentedFormat) {
  std::istringstream in(
      "# a seeded cluster campaign (docs/scenario_format.md)\n"
      "seed 42\n"
      "tenants 96\n"
      "requests 50000\n"
      "shards 4\n"
      "epochs 24\n"
      "autoscale on\n"
      "meshes 3\n"
      "replication-epochs 6\n"
      "failover on\n"
      "outage 0.5 0.2 1\n"
      "outage 0.8 0.1\n"
      "mesh-outages 2\n"
      "outage-duration-frac 0.15\n"
      "detection-s 20\n"
      "restore-s 1.5\n"
      "degraded-window 10\n");
  const auto cfg = parse_cluster(in);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->campaign.scenario.seed, 42u);
  EXPECT_EQ(cfg->campaign.scenario.tenants, 96);
  EXPECT_EQ(cfg->campaign.shards, 4);
  EXPECT_EQ(cfg->campaign.epochs, 24);
  EXPECT_EQ(cfg->campaign.autoscale.enabled, 1);
  EXPECT_EQ(cfg->meshes, 3);
  EXPECT_EQ(cfg->replication_epochs, 6);
  EXPECT_EQ(cfg->failover.enabled, 1);
  ASSERT_EQ(cfg->outages.size(), 2u);
  EXPECT_EQ(cfg->outages[0].start_frac, 0.5);
  EXPECT_EQ(cfg->outages[0].duration_frac, 0.2);
  EXPECT_EQ(cfg->outages[0].mesh, 1);
  EXPECT_EQ(cfg->outages[1].mesh, -1);  // drawn from the seed
  EXPECT_EQ(cfg->mesh_outages, 2);
  EXPECT_EQ(cfg->outage_duration_frac, 0.15);
  EXPECT_EQ(cfg->failover.detection_s, 20.0);
  EXPECT_EQ(cfg->failover.restore_s, 1.5);
  EXPECT_EQ(cfg->failover.degraded_window, 10);
}

TEST(Cluster, ParserRejectsMalformedInputWithNullopt) {
  {
    std::istringstream in("meshes 9\n");  // above the [1, 8] clamp
    EXPECT_FALSE(parse_cluster(in).has_value());
  }
  {
    std::istringstream in("meshes three\n");
    EXPECT_FALSE(parse_cluster(in).has_value());
  }
  {
    std::istringstream in("replication-epochs 0\n");
    EXPECT_FALSE(parse_cluster(in).has_value());
  }
  {
    std::istringstream in("failover maybe\n");  // strict tri-state
    EXPECT_FALSE(parse_cluster(in).has_value());
  }
  {
    std::istringstream in("outage 0.5\n");  // too few fields
    EXPECT_FALSE(parse_cluster(in).has_value());
  }
  {
    std::istringstream in("outage-duration-frac 1.5\n");  // out of (0, 1]
    EXPECT_FALSE(parse_cluster(in).has_value());
  }
  {
    std::istringstream in("tennants 96\n");  // scenario typo still refused
    EXPECT_FALSE(parse_cluster(in).has_value());
  }
  EXPECT_FALSE(parse_cluster_file("/nonexistent/cluster.scn").has_value());
}

}  // namespace
}  // namespace odin::core
