// Tests for the fault-injection layer: FaultInjector campaign scheduling,
// Crossbar endurance wear, and the post-programming read-verify health map.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "reram/fault_injection.hpp"

namespace odin::reram {
namespace {

std::vector<double> ones(int n) {
  return std::vector<double>(static_cast<std::size_t>(n), 1.0);
}

FaultScheduleParams worn_schedule() {
  FaultScheduleParams p;
  p.endurance.characteristic_cycles = 10.0;
  p.endurance.shape = 1.8;
  p.tracked_cells = 4096;
  return p;
}

TEST(FaultInjector, DeterministicGivenSeedAndCampaignHistory) {
  FaultScheduleParams p = worn_schedule();
  p.wordline_fail_rate = 0.05;
  p.bitline_fail_rate = 0.05;
  p.write_fail_rate = 0.3;
  FaultInjector a(p, 42);
  FaultInjector b(p, 42);
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(a.program_campaign(), b.program_campaign()) << "campaign " << k;
    EXPECT_EQ(a.failed_wordlines(), b.failed_wordlines());
    EXPECT_EQ(a.failed_bitlines(), b.failed_bitlines());
    EXPECT_DOUBLE_EQ(a.fault_fraction(), b.fault_fraction());
  }
  FaultInjector c(p, 43);  // different seed, different trajectory
  for (int k = 0; k < 20; ++k) c.program_campaign();
  EXPECT_NE(a.fault_fraction(), c.fault_fraction());
}

TEST(FaultInjector, StuckFractionTracksWeibullExpectation) {
  const FaultScheduleParams p = worn_schedule();
  FaultInjector inj(p, 7);
  EXPECT_DOUBLE_EQ(inj.stuck_cell_fraction(), 0.0);
  const EnduranceModel model(p.endurance);
  double prev = 0.0;
  for (int n : {2, 5, 10, 20}) {
    while (inj.campaigns() < n) inj.program_campaign();
    const double measured = inj.stuck_cell_fraction();
    const double expected = model.failure_fraction(static_cast<double>(n));
    EXPECT_GE(measured, prev);  // wear never heals
    // 4096 tracked cells: Monte-Carlo slack ~4 sigma of the binomial.
    const double sigma =
        std::sqrt(expected * (1.0 - expected) / p.tracked_cells);
    EXPECT_NEAR(measured, expected, 4.0 * sigma + 1e-3) << "n=" << n;
    prev = measured;
  }
}

TEST(FaultInjector, PeripheralFailuresAccumulateAndCompound) {
  FaultScheduleParams p;  // no endurance wear: isolate the peripherals
  p.endurance.characteristic_cycles = 1e12;
  p.wordline_fail_rate = 0.1;
  p.bitline_fail_rate = 0.1;
  p.array_lines = 128;
  FaultInjector inj(p, 11);
  for (int k = 0; k < 40; ++k) inj.program_campaign();
  EXPECT_GT(inj.failed_wordlines(), 0);
  EXPECT_GT(inj.failed_bitlines(), 0);
  EXPECT_LE(inj.failed_wordlines(), p.array_lines);
  const double wl = static_cast<double>(inj.failed_wordlines()) /
                    p.array_lines;
  const double bl = static_cast<double>(inj.failed_bitlines()) /
                    p.array_lines;
  // Independent-overlap composition, and the total includes it.
  EXPECT_NEAR(inj.peripheral_fraction(), 1.0 - (1.0 - wl) * (1.0 - bl),
              1e-12);
  EXPECT_GE(inj.fault_fraction(), inj.peripheral_fraction() - 1e-12);
  EXPECT_LE(inj.fault_fraction(), 1.0);
}

TEST(FaultInjector, WriteConvergenceFollowsFailRate) {
  FaultScheduleParams always = worn_schedule();
  always.write_fail_rate = 0.0;
  FaultInjector ok(always, 3);
  for (int k = 0; k < 10; ++k) EXPECT_TRUE(ok.program_campaign());

  FaultScheduleParams never = worn_schedule();
  never.write_fail_rate = 1.0;
  FaultInjector bad(never, 3);
  for (int k = 0; k < 10; ++k) EXPECT_FALSE(bad.program_campaign());
}

TEST(FaultInjector, DriftBurstsMultiplyInsideTheirWindows) {
  FaultScheduleParams p;
  p.bursts = {{.start_s = 100.0, .duration_s = 50.0, .multiplier = 4.0},
              {.start_s = 120.0, .duration_s = 100.0, .multiplier = 3.0}};
  FaultInjector inj(p, 1);
  EXPECT_DOUBLE_EQ(inj.drift_time_multiplier(50.0), 1.0);    // before
  EXPECT_DOUBLE_EQ(inj.drift_time_multiplier(110.0), 4.0);   // first only
  EXPECT_DOUBLE_EQ(inj.drift_time_multiplier(130.0), 12.0);  // overlap
  EXPECT_DOUBLE_EQ(inj.drift_time_multiplier(180.0), 3.0);   // second only
  EXPECT_DOUBLE_EQ(inj.drift_time_multiplier(500.0), 1.0);   // after
}

TEST(FaultInjector, PowerDownWindowsZeroTheDriftClock) {
  // A mesh-loss window (core/cluster) pauses the device entirely: inside
  // it the drift multiplier is 0, not 1 — the array is unpowered, so
  // neither drift nor bursts advance. Outside, bursts still compound.
  FaultScheduleParams p;
  p.bursts = {{.start_s = 100.0, .duration_s = 100.0, .multiplier = 4.0}};
  FaultInjector inj(p, 1);
  EXPECT_FALSE(inj.powered_down(150.0));
  inj.add_power_down(140.0, 30.0);  // [140, 170) inside the burst
  EXPECT_FALSE(inj.powered_down(139.0));
  EXPECT_TRUE(inj.powered_down(140.0));
  EXPECT_TRUE(inj.powered_down(169.0));
  EXPECT_FALSE(inj.powered_down(170.0));
  EXPECT_DOUBLE_EQ(inj.drift_time_multiplier(50.0), 1.0);    // before all
  EXPECT_DOUBLE_EQ(inj.drift_time_multiplier(120.0), 4.0);   // burst only
  EXPECT_DOUBLE_EQ(inj.drift_time_multiplier(150.0), 0.0);   // powered down
  EXPECT_DOUBLE_EQ(inj.drift_time_multiplier(180.0), 4.0);   // burst resumes
  EXPECT_DOUBLE_EQ(inj.drift_time_multiplier(500.0), 1.0);   // after all
  // Windows accumulate like bursts do.
  inj.add_power_down(300.0, 10.0);
  EXPECT_TRUE(inj.powered_down(305.0));
  EXPECT_DOUBLE_EQ(inj.drift_time_multiplier(305.0), 0.0);
}

TEST(CrossbarEndurance, WearAccumulatesAcrossCampaigns) {
  Crossbar xbar(32, DeviceParams{});
  xbar.attach_endurance(EnduranceModel({.characteristic_cycles = 5.0,
                                        .shape = 1.8}),
                        99);
  EXPECT_EQ(xbar.program_campaigns(), 0);
  std::int64_t prev = 0;
  for (int k = 1; k <= 10; ++k) {
    xbar.program(ones(1024), 32, 32, static_cast<double>(k));
    EXPECT_EQ(xbar.program_campaigns(), k);
    EXPECT_GE(xbar.faulty_cells(), prev);  // monotone: writes cannot heal
    prev = xbar.faulty_cells();
  }
  // After 2x the characteristic lifetime most cells are gone:
  // F(10) = 1 - exp(-2^1.8) ~ 0.97.
  EXPECT_GT(static_cast<double>(prev), 0.8 * 1024);
}

TEST(CrossbarEndurance, NoWearWithoutAttachedModel) {
  Crossbar xbar(16, DeviceParams{});
  for (int k = 1; k <= 50; ++k)
    xbar.program(ones(256), 16, 16, static_cast<double>(k));
  EXPECT_EQ(xbar.faulty_cells(), 0);
  EXPECT_EQ(xbar.program_campaigns(), 50);
}

TEST(ReadVerify, CleanArrayReportsHealthy) {
  Crossbar xbar(32, DeviceParams{});
  xbar.program(ones(1024), 32, 32, 0.0);
  const CrossbarHealth health = read_verify(xbar, 8, 8, 0.01);
  EXPECT_EQ(health.stuck_cells, 0);
  EXPECT_EQ(health.scanned_cells, 1024);
  EXPECT_EQ(health.windows.size(), 16u);  // (32/8)^2
  EXPECT_DOUBLE_EQ(health.fault_fraction, 0.0);
  EXPECT_FALSE(health.degraded);
}

TEST(ReadVerify, CountsMatchTheCrossbarFaultMap) {
  NoiseParams np;
  np.stuck_on_rate = 0.03;
  np.stuck_off_rate = 0.03;
  Crossbar xbar(64, DeviceParams{}, NoiseModel(np, 21));
  xbar.program(ones(64 * 64), 64, 64, 0.0);
  const CrossbarHealth health = read_verify(xbar, 16, 16, 0.01);
  EXPECT_EQ(health.stuck_cells, xbar.faulty_cells());
  EXPECT_EQ(health.scanned_cells, 64 * 64);
  // The per-window counts decompose the total.
  std::int64_t sum = 0;
  int worst = 0;
  for (const OuWindowHealth& w : health.windows) {
    sum += w.stuck;
    worst = std::max(worst, w.stuck);
  }
  EXPECT_EQ(sum, health.stuck_cells);
  EXPECT_EQ(worst, health.worst_window_stuck);
  // ~6% stuck against a 1% budget: degraded.
  EXPECT_TRUE(health.degraded);
  EXPECT_GT(health.worst_window_fraction, 0.0);
}

TEST(ReadVerify, BudgetGatesTheDegradedFlag) {
  NoiseParams np;
  np.stuck_off_rate = 0.02;
  Crossbar xbar(64, DeviceParams{}, NoiseModel(np, 5));
  xbar.program(ones(64 * 64), 64, 64, 0.0);
  const CrossbarHealth tight = read_verify(xbar, 8, 8, 1e-4);
  const CrossbarHealth loose = read_verify(xbar, 8, 8, 0.5);
  EXPECT_TRUE(tight.degraded);
  EXPECT_FALSE(loose.degraded);
  EXPECT_DOUBLE_EQ(tight.fault_fraction, loose.fault_fraction);
}

TEST(ReadVerify, WindowsTileThePartiallyProgrammedRegion) {
  // A 20x12 block on a 32-array with 8x8 windows: ragged edges must still
  // be scanned exactly once.
  Crossbar xbar(32, DeviceParams{});
  xbar.program(ones(20 * 12), 20, 12, 0.0);
  const CrossbarHealth health = read_verify(xbar, 8, 8, 0.01);
  EXPECT_EQ(health.scanned_cells, 20 * 12);
  EXPECT_EQ(health.windows.size(), 3u * 2u);  // ceil(20/8) x ceil(12/8)
}

}  // namespace
}  // namespace odin::reram
