// Tests for OdinController — Algorithm 1's online loop.
#include <gtest/gtest.h>

#include "core/odin.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

struct Fixture {
  ou::MappedModel model = testing::tiny_mapped();
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};

  OdinController controller(OdinConfig cfg = {}) {
    return OdinController(model, nonideal, cost,
                          policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  }
};

TEST(OdinController, RunProducesOneDecisionPerLayer) {
  Fixture fx;
  auto ctl = fx.controller();
  const RunResult run = ctl.run_inference(1.0);
  EXPECT_EQ(run.decisions.size(), fx.model.layer_count());
  EXPECT_FALSE(run.reprogrammed);
  EXPECT_GT(run.inference.energy_j, 0.0);
  EXPECT_GT(run.inference.latency_s, 0.0);
  EXPECT_DOUBLE_EQ(run.reprogram.energy_j, 0.0);
}

TEST(OdinController, ExecutedConfigsAreFeasible) {
  Fixture fx;
  auto ctl = fx.controller();
  for (double t : {1.0, 1e3, 1e6, 4e7}) {
    const RunResult run = ctl.run_inference(t);
    const int n = static_cast<int>(fx.model.layer_count());
    for (int j = 0; j < n; ++j) {
      const double s = fx.nonideal.layer_sensitivity(j, n);
      EXPECT_TRUE(fx.nonideal.feasible(run.elapsed_s,
                                       run.decisions[static_cast<std::size_t>(j)].executed, s))
          << "t=" << t << " layer " << j;
    }
  }
}

TEST(OdinController, ReprogramsWhenDriftExceedsAllOus) {
  Fixture fx;
  auto ctl = fx.controller();
  ctl.run_inference(1.0);
  const RunResult run = ctl.run_inference(1e8);  // beyond the 4x4 crossing
  EXPECT_TRUE(run.reprogrammed);
  EXPECT_EQ(ctl.reprogram_count(), 1);
  EXPECT_GT(run.reprogram.energy_j, 0.0);
  EXPECT_DOUBLE_EQ(ctl.programmed_at_s(), 1e8);
  // After reprogramming the drift clock restarts: the next run far later
  // triggers again.
  const RunResult run2 = ctl.run_inference(2.5e8);
  EXPECT_TRUE(run2.reprogrammed);
  EXPECT_EQ(ctl.reprogram_count(), 2);
}

TEST(OdinController, ElapsedResetAfterReprogram) {
  Fixture fx;
  auto ctl = fx.controller();
  const RunResult run = ctl.run_inference(1e8);
  EXPECT_TRUE(run.reprogrammed);
  EXPECT_DOUBLE_EQ(run.elapsed_s, fx.nonideal.device().t0_s);
}

TEST(OdinController, BufferFillTriggersPolicyUpdate) {
  Fixture fx;
  OdinConfig cfg;
  cfg.buffer_capacity = 6;  // one run's worth of mismatches at most
  cfg.update_options.epochs = 10;
  auto ctl = fx.controller(cfg);
  // An untrained policy mismatches almost every layer; within a few runs
  // the 6-entry buffer must fill and trigger an update.
  int updates = 0;
  for (int i = 0; i < 6; ++i) {
    const RunResult run = ctl.run_inference(1.0 + i);
    if (run.policy_updated) ++updates;
  }
  EXPECT_GE(updates, 1);
  EXPECT_EQ(ctl.update_count(), updates);
}

TEST(OdinController, MismatchesDecreaseAsPolicyAdapts) {
  Fixture fx;
  OdinConfig cfg;
  cfg.buffer_capacity = 12;
  cfg.update_options.epochs = 120;
  auto ctl = fx.controller(cfg);
  int early_mismatches = 0, late_mismatches = 0;
  for (int i = 0; i < 5; ++i)
    early_mismatches += ctl.run_inference(1.0 + i).mismatches;
  for (int i = 0; i < 30; ++i) ctl.run_inference(10.0 + i);
  for (int i = 0; i < 5; ++i)
    late_mismatches += ctl.run_inference(50.0 + i).mismatches;
  EXPECT_LT(late_mismatches, early_mismatches);
}

TEST(OdinController, ExhaustiveSearchModeMatchesOrBeatsRb) {
  Fixture fx;
  OdinConfig rb_cfg;
  OdinConfig ex_cfg;
  ex_cfg.search = SearchKind::kExhaustive;
  auto rb = fx.controller(rb_cfg);
  auto ex = fx.controller(ex_cfg);
  const RunResult rb_run = rb.run_inference(1.0);
  const RunResult ex_run = ex.run_inference(1.0);
  // EX evaluates the full grid; RB must not evaluate more.
  int rb_evals = 0, ex_evals = 0;
  for (const auto& d : rb_run.decisions) rb_evals += d.evaluations;
  for (const auto& d : ex_run.decisions) ex_evals += d.evaluations;
  EXPECT_LT(rb_evals, ex_evals);
  // Paper Sec. V-B: EX timing overhead ~3x RB.
  EXPECT_GT(static_cast<double>(ex_evals) / rb_evals, 2.0);
}

TEST(OdinController, DeterministicAcrossIdenticalRuns) {
  Fixture fx;
  auto a = fx.controller();
  auto b = fx.controller();
  for (double t : {1.0, 10.0, 100.0}) {
    const RunResult ra = a.run_inference(t);
    const RunResult rb = b.run_inference(t);
    EXPECT_DOUBLE_EQ(ra.inference.energy_j, rb.inference.energy_j);
    EXPECT_EQ(ra.mismatches, rb.mismatches);
    for (std::size_t j = 0; j < ra.decisions.size(); ++j)
      EXPECT_EQ(ra.decisions[j].executed, rb.decisions[j].executed);
  }
}

TEST(OdinController, FullReprogramCostCoversAllLayers) {
  Fixture fx;
  auto ctl = fx.controller();
  const auto cost = ctl.full_reprogram_cost();
  common::EnergyLatency manual;
  for (std::size_t j = 0; j < fx.model.layer_count(); ++j)
    manual += fx.cost.reprogram_cost(fx.model.mapping(j));
  EXPECT_DOUBLE_EQ(cost.energy_j, manual.energy_j);
  EXPECT_DOUBLE_EQ(cost.latency_s, manual.latency_s);
}

}  // namespace
}  // namespace odin::core
