// Tests for the write-verify programming model, including the coherence
// check that derives DeviceParams' flat write-cost constants from it.
#include <gtest/gtest.h>

#include "reram/programming.hpp"

namespace odin::reram {
namespace {

TEST(ProgramVerify, ToleranceTightensWithMoreBitsPerCell) {
  const ProgramVerifyModel model;
  DeviceParams two_bit;
  DeviceParams three_bit;
  three_bit.bits_per_cell = 3;
  EXPECT_GT(model.tolerance_for(two_bit), model.tolerance_for(three_bit));
}

TEST(ProgramVerify, IterationsGrowLogarithmicallyWithPrecision) {
  const ProgramVerifyModel model;
  const int loose = model.iterations_for(0.1);
  const int tight = model.iterations_for(0.01);
  const int tighter = model.iterations_for(0.001);
  EXPECT_LT(loose, tight);
  EXPECT_LT(tight, tighter);
  // Log scaling: each decade of precision costs the same extra iterations.
  EXPECT_NEAR(tighter - tight, tight - loose, 2);
}

TEST(ProgramVerify, TrivialToleranceTakesOnePulse) {
  const ProgramVerifyModel model;
  EXPECT_EQ(model.iterations_for(0.5), 1);
}

TEST(ProgramVerify, IterationsAreCappedAtMax) {
  ProgramVerifyParams params;
  params.max_iterations = 10;
  const ProgramVerifyModel model(params);
  EXPECT_EQ(model.iterations_for(1e-12), 10);
}

TEST(ProgramVerify, DerivesTheDeviceWriteConstants) {
  // DeviceParams' flat constants (900 pJ/cell, 2 us/row) must agree with
  // the physical write-verify model within 25% — they are the same story
  // told twice (see programming.hpp).
  const ProgramVerifyModel model;
  const DeviceParams dev;
  const auto cost = model.cell_cost(dev);
  EXPECT_NEAR(cost.energy_j, dev.write_energy_per_cell_j,
              0.25 * dev.write_energy_per_cell_j);
  EXPECT_NEAR(model.row_latency_s(dev), dev.write_latency_per_row_s,
              0.25 * dev.write_latency_per_row_s);
}

TEST(ProgramVerify, CellCostDecomposition) {
  const ProgramVerifyModel model;
  const DeviceParams dev;
  const auto& p = model.params();
  const int iters = model.iterations_for(model.tolerance_for(dev));
  const auto cost = model.cell_cost(dev);
  EXPECT_DOUBLE_EQ(cost.energy_j,
                   p.reset_energy_j +
                       iters * (p.pulse_energy_j + p.verify_energy_j));
  EXPECT_DOUBLE_EQ(cost.latency_s,
                   p.reset_duration_s +
                       iters * (p.pulse_duration_s + p.verify_duration_s));
}

TEST(ProgramVerify, StochasticWritesCenterOnDeterministicCount) {
  const ProgramVerifyModel model;
  const DeviceParams dev;
  const int nominal = model.iterations_for(model.tolerance_for(dev));
  common::Rng rng(42);
  double mean = 0.0;
  constexpr int kTrials = 500;
  for (int i = 0; i < kTrials; ++i)
    mean += model.simulate_write(dev, rng);
  mean /= kTrials;
  EXPECT_NEAR(mean, nominal, 0.35 * nominal);
}

TEST(ProgramVerify, StochasticWritesAlwaysTerminate) {
  const ProgramVerifyModel model;
  const DeviceParams dev;
  common::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const int iters = model.simulate_write(dev, rng);
    EXPECT_GE(iters, 1);
    EXPECT_LE(iters, model.params().max_iterations);
  }
}

}  // namespace
}  // namespace odin::reram
